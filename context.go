package strtree

// Context-aware query entry points, the hooks the serving subsystem
// (internal/server, cmd/strserve) uses to enforce per-request deadlines.
// Each variant threads ctx down into the tree traversal, which checks it
// once per node visit: a cancelled or expired context stops the query
// within one page fetch and surfaces ctx's error. The context-free
// methods remain the canonical paper-reproduction paths.

import (
	"context"
	"time"

	"strtree/internal/node"
	"strtree/internal/storage"
)

// SearchContext is Search with cooperative cancellation: the traversal
// checks ctx before every node read and returns ctx's error (typically
// context.DeadlineExceeded) as soon as it observes it. Items already
// streamed to fn stay delivered.
func (t *Tree) SearchContext(ctx context.Context, q Rect, fn func(Item) bool) error {
	return t.inner.SearchContext(ctx, q, func(e node.Entry) bool {
		return fn(Item{Rect: e.Rect, ID: e.Ref})
	})
}

// SearchPointContext is SearchPoint under a context.
func (t *Tree) SearchPointContext(ctx context.Context, p Point, fn func(Item) bool) error {
	return t.SearchContext(ctx, PointRect(p), fn)
}

// CountContext is Count under a context.
func (t *Tree) CountContext(ctx context.Context, q Rect) (int, error) {
	return t.inner.CountContext(ctx, q)
}

// NearestKContext is NearestK under a context, checked once per node
// visit of the best-first traversal.
func (t *Tree) NearestKContext(ctx context.Context, p Point, k int) ([]Item, []float64, error) {
	entries, dists, err := t.inner.NearestKContext(ctx, p, k)
	if err != nil {
		return nil, nil, err
	}
	items := make([]Item, len(entries))
	for i, e := range entries {
		items[i] = Item{Rect: e.Rect, ID: e.Ref}
	}
	return items, dists, nil
}

// SearchBatchContext is SearchBatch under a context: every worker's
// traversal checks ctx per node visit, so one deadline bounds the whole
// batch. The first error — a page-read failure or the context's own —
// aborts the batch and is returned wrapped with the failing query's
// index.
func (t *Tree) SearchBatchContext(ctx context.Context, qs []Rect, workers int) ([][]Item, error) {
	ex := t.batchExecutor(workers)
	ex.Search = func(q Rect, emit func(e node.Entry) bool) error {
		return t.inner.SearchContext(ctx, q, emit)
	}
	res, err := ex.Run(qs)
	if err != nil {
		return nil, err
	}
	out := make([][]Item, len(res))
	for i, entries := range res {
		if entries == nil {
			continue
		}
		items := make([]Item, len(entries))
		for j, e := range entries {
			items[j] = Item{Rect: e.Rect, ID: e.Ref}
		}
		out[i] = items
	}
	return out, nil
}

// SearchBatchCountTimed is SearchBatchCount with per-query latency
// observation: observe receives each query's index and wall-clock
// duration, called from the worker goroutines as queries complete — it
// must be safe for concurrent use. cmd/strbench -concurrency feeds an
// internal/histo histogram through this to report percentiles comparable
// with the serving layer's.
func (t *Tree) SearchBatchCountTimed(qs []Rect, workers int, observe func(i int, d time.Duration)) ([]int, error) {
	ex := t.batchExecutor(workers)
	ex.Observe = observe
	return ex.RunCount(qs)
}

// NewOnPager creates an empty tree on a caller-supplied pager. The pager
// interface lives in an internal package, so this constructor serves the
// module's own tools and tests — fault injection through
// storage.FaultyPager, instrumented or tracing pagers — rather than
// external callers, who use New, Create or Open. The tree takes ownership
// of pg: Close closes it.
func NewOnPager(pg storage.Pager, opts Options) (*Tree, error) {
	opts = opts.withDefaults()
	return create(pg, opts)
}
