package strtree

import (
	"math"
	"testing"
)

func TestNearestPublic(t *testing.T) {
	tree, err := New(Options{Capacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	items := randItems(800, 21)
	if err := tree.BulkLoad(items, PackSTR); err != nil {
		t.Fatal(err)
	}
	p := Pt2(0.5, 0.5)
	got, dists, err := tree.NearestK(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || len(dists) != 5 {
		t.Fatalf("NearestK returned %d items, %d dists", len(got), len(dists))
	}
	for i := 1; i < 5; i++ {
		if dists[i] < dists[i-1] {
			t.Fatalf("distances unsorted: %v", dists)
		}
	}
	// Streaming form stops on demand.
	n := 0
	if err := tree.Nearest(p, func(Item, float64) bool { n++; return n < 3 }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("streaming nearest visited %d", n)
	}
}

func TestJoinPublic(t *testing.T) {
	build := func(seed int64, n int) (*Tree, []Item) {
		tree, err := New(Options{Capacity: 16})
		if err != nil {
			t.Fatal(err)
		}
		items := randItems(n, seed)
		if err := tree.BulkLoad(items, PackSTR); err != nil {
			t.Fatal(err)
		}
		return tree, items
	}
	ta, ia := build(22, 300)
	tb, ib := build(23, 250)
	want := 0
	for _, a := range ia {
		for _, b := range ib {
			if a.Rect.Intersects(b.Rect) {
				want++
			}
		}
	}
	got := 0
	if err := Join(ta, tb, func(a, b Item) bool { got++; return true }); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("join pairs = %d, want %d", got, want)
	}
}

func TestJoinWithinPublic(t *testing.T) {
	a, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Insert(R2(0.1, 0.1, 0.2, 0.2), 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Insert(R2(0.3, 0.1, 0.4, 0.2), 2); err != nil { // 0.1 away in x
		t.Fatal(err)
	}
	count := func(dist float64) int {
		n := 0
		if err := JoinWithin(a, b, dist, func(Item, Item) bool { n++; return true }); err != nil {
			t.Fatal(err)
		}
		return n
	}
	if count(0.05) != 0 {
		t.Fatal("pair 0.1 apart matched at dist 0.05")
	}
	if count(0.15) != 1 {
		t.Fatal("pair 0.1 apart missed at dist 0.15")
	}
	if count(0) != 0 {
		t.Fatal("non-intersecting pair matched at dist 0")
	}
}

func TestSelfJoinDistinctPairs(t *testing.T) {
	tree, err := New(Options{Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	items := randItems(200, 24)
	if err := tree.BulkLoad(items, PackSTR); err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := range items {
		for j := i + 1; j < len(items); j++ {
			if items[i].Rect.Intersects(items[j].Rect) {
				want++
			}
		}
	}
	got := 0
	if err := Join(tree, tree, func(a, b Item) bool {
		if a.ID < b.ID {
			got++
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("self-join distinct pairs = %d, want %d", got, want)
	}
}

func TestScanAndItems(t *testing.T) {
	tree, err := New(Options{Capacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	items := randItems(300, 25)
	if err := tree.BulkLoad(items, PackSTR); err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	if err := tree.Scan(func(it Item) bool { seen[it.ID] = true; return true }); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 300 {
		t.Fatalf("scan saw %d items", len(seen))
	}
	all, err := tree.Items()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 300 {
		t.Fatalf("Items returned %d", len(all))
	}
}

func TestCompactIntoPublic(t *testing.T) {
	src, err := New(Options{Capacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	items := randItems(1000, 26)
	for _, it := range items {
		if err := src.Insert(it.Rect, it.ID); err != nil {
			t.Fatal(err)
		}
	}
	for _, it := range items[:500] {
		if _, err := src.Delete(it.Rect, it.ID); err != nil {
			t.Fatal(err)
		}
	}
	srcM, err := src.Metrics()
	if err != nil {
		t.Fatal(err)
	}

	dst, err := New(Options{Capacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := src.CompactInto(dst, PackSTR); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 500 {
		t.Fatalf("compacted len = %d", dst.Len())
	}
	dstM, err := dst.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if dstM.LeafNodes >= srcM.LeafNodes {
		t.Fatalf("compaction grew leaves: %d -> %d", srcM.LeafNodes, dstM.LeafNodes)
	}
	if err := dst.Validate(); err != nil {
		t.Fatal(err)
	}
	// Unknown packing propagates.
	empty, _ := New(Options{})
	if err := src.CompactInto(empty, Packing(77)); err == nil {
		t.Fatal("bad packing accepted")
	}
}

func TestBounds(t *testing.T) {
	tree, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := tree.Bounds(); err != nil || ok {
		t.Fatalf("empty tree bounds: ok=%v err=%v", ok, err)
	}
	if err := tree.Insert(R2(0.2, 0.3, 0.4, 0.5), 1); err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(R2(0.7, 0.1, 0.9, 0.2), 2); err != nil {
		t.Fatal(err)
	}
	b, ok, err := tree.Bounds()
	if err != nil || !ok {
		t.Fatalf("bounds: ok=%v err=%v", ok, err)
	}
	if !b.Equal(R2(0.2, 0.1, 0.9, 0.5)) {
		t.Fatalf("bounds = %v", b)
	}
}

func TestNearestDistanceValues(t *testing.T) {
	tree, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(R2(0.2, 0.2, 0.3, 0.3), 1); err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(R2(0.8, 0.8, 0.9, 0.9), 2); err != nil {
		t.Fatal(err)
	}
	items, dists, err := tree.NearestK(Pt2(0.25, 0.25), 2)
	if err != nil {
		t.Fatal(err)
	}
	if items[0].ID != 1 || dists[0] != 0 {
		t.Fatalf("first hit = %+v at %g", items[0], dists[0])
	}
	wantD := math.Hypot(0.8-0.25, 0.8-0.25)
	if items[1].ID != 2 || math.Abs(dists[1]-wantD) > 1e-12 {
		t.Fatalf("second hit = %+v at %g, want %g", items[1], dists[1], wantD)
	}
}
