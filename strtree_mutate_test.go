package strtree

// Differential mutation-oracle harness over the public API: the same
// seeded op sequence is applied to a Tree (via Insert/Delete) and to a
// plain slice oracle, and after every op the tree must pass the full
// structural verifier and answer Search/Count exactly like the linear
// scan. A failing seed is replayed by name — every subtest title carries
// the seed and configuration. This is the public-API half of the harness;
// internal/rtree/mutateoracle_test.go drives the same discipline against
// the engine directly (including byte-identity of the in-place and
// structural write paths).

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"
)

// mutOracle is the ground truth: a flat slice scanned linearly.
type mutOracle struct {
	items []Item
}

func (o *mutOracle) insert(it Item) { o.items = append(o.items, it) }

// delete removes the first item matching (rect, id) exactly, mirroring
// Tree.Delete's exact-match contract. It reports whether one was found.
func (o *mutOracle) delete(r Rect, id uint64) bool {
	for i, it := range o.items {
		if it.ID == id && it.Rect.Equal(r) {
			o.items = append(o.items[:i], o.items[i+1:]...)
			return true
		}
	}
	return false
}

// searchIDs returns the sorted IDs of items intersecting q.
func (o *mutOracle) searchIDs(q Rect) []uint64 {
	var ids []uint64
	for _, it := range o.items {
		if it.Rect.Intersects(q) {
			ids = append(ids, it.ID)
		}
	}
	slices.Sort(ids)
	return ids
}

// mutHarnessConfig is one cell of the public-API matrix.
type mutHarnessConfig struct {
	seed     int64
	ops      int
	dims     int
	pageSize int
	split    SplitAlgorithm
	reinsert bool
	// seedItems bulk-loads this many items before mutating (0 starts
	// empty); the packed invariants must hold before the first op.
	seedItems int
	// dupHeavy snaps rectangles to a coarse grid so exact-duplicate keys
	// and ties dominate.
	dupHeavy bool
	// pInsert is the probability an op is an insert.
	pInsert float64
	// queryEvery runs the Search/Count cross-check every this many ops
	// (invariants are verified after every op regardless).
	queryEvery int
}

func (c mutHarnessConfig) name() string {
	return fmt.Sprintf("seed=%d/ops=%d/dims=%d/page=%d/bulk=%d/dup=%t",
		c.seed, c.ops, c.dims, c.pageSize, c.seedItems, c.dupHeavy)
}

// randMutRect draws a rectangle in [0,100)^dims. Duplicate-heavy mode
// snaps corners to a 5-unit grid of unit cells so the same key recurs.
func randMutRect(rng *rand.Rand, dims int, dupHeavy bool) Rect {
	min := make(Point, dims)
	max := make(Point, dims)
	for d := 0; d < dims; d++ {
		if dupHeavy {
			lo := float64(rng.Intn(5)) * 5
			min[d], max[d] = lo, lo+1
		} else {
			lo := rng.Float64() * 100
			min[d], max[d] = lo, lo+rng.Float64()*10
		}
	}
	return Rect{Min: min, Max: max}
}

// runMutHarness drives one configuration to completion.
func runMutHarness(t *testing.T, cfg mutHarnessConfig) {
	t.Helper()
	rng := rand.New(rand.NewSource(cfg.seed))
	tree, err := New(Options{
		Dims:           cfg.dims,
		PageSize:       cfg.pageSize,
		BufferPages:    64,
		Split:          cfg.split,
		ForcedReinsert: cfg.reinsert,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer tree.Close()

	var o mutOracle
	nextID := uint64(1)
	if cfg.seedItems > 0 {
		items := make([]Item, cfg.seedItems)
		for i := range items {
			items[i] = Item{Rect: randMutRect(rng, cfg.dims, cfg.dupHeavy), ID: nextID}
			nextID++
		}
		if err := tree.BulkLoad(items, PackSTR); err != nil {
			t.Fatalf("BulkLoad: %v", err)
		}
		// Bulk load must hand the write path a tree that satisfies the
		// strict packed-fill invariant before the first mutation.
		if err := tree.CheckPackedInvariants(); err != nil {
			t.Fatalf("pre-mutation CheckPackedInvariants: %v", err)
		}
		o.items = append(o.items, items...)
	}

	for op := 0; op < cfg.ops; op++ {
		switch {
		case len(o.items) == 0 || rng.Float64() < cfg.pInsert:
			it := Item{Rect: randMutRect(rng, cfg.dims, cfg.dupHeavy), ID: nextID}
			nextID++
			if err := tree.Insert(it.Rect, it.ID); err != nil {
				t.Fatalf("op %d: Insert: %v", op, err)
			}
			o.insert(it)
		case rng.Float64() < 0.1:
			// Absent key: both sides must agree nothing was removed.
			r := randMutRect(rng, cfg.dims, cfg.dupHeavy)
			id := nextID + 1<<40
			found, err := tree.Delete(r, id)
			if err != nil {
				t.Fatalf("op %d: absent Delete: %v", op, err)
			}
			if found {
				t.Fatalf("op %d: Delete of absent id %d reported found", op, id)
			}
			if o.delete(r, id) {
				t.Fatalf("op %d: oracle removed an absent key", op)
			}
		default:
			victim := o.items[rng.Intn(len(o.items))]
			found, err := tree.Delete(victim.Rect, victim.ID)
			if err != nil {
				t.Fatalf("op %d: Delete: %v", op, err)
			}
			if !found {
				t.Fatalf("op %d: Delete of live id %d not found", op, victim.ID)
			}
			if !o.delete(victim.Rect, victim.ID) {
				t.Fatalf("op %d: oracle lost id %d", op, victim.ID)
			}
		}
		if err := tree.CheckInvariants(); err != nil {
			t.Fatalf("op %d: CheckInvariants: %v", op, err)
		}
		if tree.Len() != len(o.items) {
			t.Fatalf("op %d: tree Len %d, oracle %d", op, tree.Len(), len(o.items))
		}
		if cfg.queryEvery > 0 && op%cfg.queryEvery == 0 {
			compareMutQueries(t, op, tree, &o, rng, cfg)
		}
	}
	compareMutQueries(t, cfg.ops, tree, &o, rng, cfg)

	ms := tree.MutatePathStats()
	t.Logf("%s: in-place %d+%d, structural %d+%d",
		cfg.name(), ms.InPlaceInserts, ms.InPlaceDeletes, ms.StructuralInserts, ms.StructuralDeletes)
}

// compareMutQueries cross-checks Search and Count against the oracle on
// a handful of random windows.
func compareMutQueries(t *testing.T, op int, tree *Tree, o *mutOracle, rng *rand.Rand, cfg mutHarnessConfig) {
	t.Helper()
	for i := 0; i < 3; i++ {
		q := randMutRect(rng, cfg.dims, false)
		var got []uint64
		if err := tree.Search(q, func(it Item) bool {
			got = append(got, it.ID)
			return true
		}); err != nil {
			t.Fatalf("op %d: Search: %v", op, err)
		}
		slices.Sort(got)
		want := o.searchIDs(q)
		if !slices.Equal(got, want) {
			t.Fatalf("op %d: Search(%v) returned %d IDs, oracle %d", op, q, len(got), len(want))
		}
		n, err := tree.Count(q)
		if err != nil {
			t.Fatalf("op %d: Count: %v", op, err)
		}
		if n != len(want) {
			t.Fatalf("op %d: Count(%v) = %d, oracle %d", op, q, n, len(want))
		}
	}
}

// TestMutateOraclePublicAPI runs the seeded differential harness across
// page sizes, dimensionalities, split heuristics, duplicate-heavy keys,
// and both empty and bulk-loaded starting trees.
func TestMutateOraclePublicAPI(t *testing.T) {
	configs := []mutHarnessConfig{
		{seed: 4001, ops: 900, dims: 2, pageSize: 256, split: SplitQuadratic,
			pInsert: 0.55, queryEvery: 7},
		{seed: 4002, ops: 700, dims: 2, pageSize: 4096, split: SplitQuadratic,
			seedItems: 1500, pInsert: 0.45, queryEvery: 7},
		{seed: 4003, ops: 700, dims: 3, pageSize: 512, split: SplitLinear,
			pInsert: 0.6, queryEvery: 7},
		{seed: 4004, ops: 700, dims: 2, pageSize: 256, split: SplitRStar,
			reinsert: true, dupHeavy: true, pInsert: 0.5, queryEvery: 7},
		{seed: 4005, ops: 600, dims: 2, pageSize: 1024, split: SplitQuadratic,
			seedItems: 800, dupHeavy: true, pInsert: 0.35, queryEvery: 7},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name(), func(t *testing.T) {
			t.Parallel()
			runMutHarness(t, cfg)
		})
	}
}

// TestMutateDrainPublicAPI bulk-loads a tree, deletes every item in
// seeded random order (verifying invariants throughout), and checks the
// tree ends empty and can be grown again.
func TestMutateDrainPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(4100))
	tree, err := New(Options{PageSize: 256, BufferPages: 64})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer tree.Close()
	items := randItems(600, 4101)
	if err := tree.BulkLoad(items, PackSTR); err != nil {
		t.Fatalf("BulkLoad: %v", err)
	}
	if err := tree.CheckPackedInvariants(); err != nil {
		t.Fatalf("pre-drain CheckPackedInvariants: %v", err)
	}
	order := rng.Perm(len(items))
	for i, idx := range order {
		it := items[idx]
		found, err := tree.Delete(it.Rect, it.ID)
		if err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
		if !found {
			t.Fatalf("delete %d: id %d not found", i, it.ID)
		}
		if err := tree.CheckInvariants(); err != nil {
			t.Fatalf("delete %d: CheckInvariants: %v", i, err)
		}
	}
	if tree.Len() != 0 || tree.Height() != 0 {
		t.Fatalf("drained tree: Len=%d Height=%d, want 0/0", tree.Len(), tree.Height())
	}
	// The emptied tree must accept fresh inserts.
	for i, it := range items[:50] {
		if err := tree.Insert(it.Rect, it.ID); err != nil {
			t.Fatalf("regrow insert %d: %v", i, err)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("regrown tree: %v", err)
	}
	if tree.Len() != 50 {
		t.Fatalf("regrown Len = %d, want 50", tree.Len())
	}
}

// TestMutateStatsSplitPublicAPI pins the MutatePathStats contract: a
// workload that appends into non-full leaves takes the in-place path,
// one that forces splits and condensation takes the structural path, and
// the two sums account for every op.
func TestMutateStatsSplitPublicAPI(t *testing.T) {
	tree, err := New(Options{PageSize: 256, BufferPages: 64})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer tree.Close()
	rng := rand.New(rand.NewSource(4200))
	const n = 400
	for i := 0; i < n; i++ {
		if err := tree.Insert(randMutRect(rng, 2, false), uint64(i+1)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	ms := tree.MutatePathStats()
	if ms.InPlaceInserts+ms.StructuralInserts != n {
		t.Fatalf("insert counters %d+%d do not sum to %d ops",
			ms.InPlaceInserts, ms.StructuralInserts, n)
	}
	if ms.InPlaceInserts == 0 {
		t.Fatal("no insert took the in-place path")
	}
	if ms.StructuralInserts == 0 {
		t.Fatal("no insert split a node; workload too small")
	}
}

// TestMutateReadOnlyViewRejected pins that the write path respects the
// read-only view contract.
func TestMutateReadOnlyViewRejected(t *testing.T) {
	tree, err := New(Options{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer tree.Close()
	if err := tree.BulkLoad(randItems(100, 4300), PackSTR); err != nil {
		t.Fatalf("BulkLoad: %v", err)
	}
	v, err := tree.View(16)
	if err != nil {
		t.Fatalf("View: %v", err)
	}
	defer v.Close()
	if err := v.Insert(R2(0, 0, 1, 1), 999); err != ErrReadOnly {
		t.Fatalf("view Insert error = %v, want ErrReadOnly", err)
	}
	if _, err := v.Delete(R2(0, 0, 1, 1), 999); err != ErrReadOnly {
		t.Fatalf("view Delete error = %v, want ErrReadOnly", err)
	}
}
