// Quickstart: build an STR-packed R-tree over a handful of rectangles,
// run point and region queries, and inspect the tree — a minimal tour of
// the public API using only inline data.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"strtree"
)

func main() {
	// An in-memory tree with small nodes so even 64 rectangles produce a
	// multi-level structure (like the paper's Figure 1: 64 rectangles, 16
	// leaves, 4 internal nodes, 1 root).
	tree, err := strtree.New(strtree.Options{Capacity: 4})
	if err != nil {
		log.Fatal(err)
	}

	// 64 small rectangles on a jittered 8x8 grid.
	rng := rand.New(rand.NewSource(1))
	items := make([]strtree.Item, 0, 64)
	for i := 0; i < 64; i++ {
		x := float64(i%8)/8 + rng.Float64()*0.05
		y := float64(i/8)/8 + rng.Float64()*0.05
		items = append(items, strtree.Item{
			Rect: strtree.R2(x, y, x+0.04, y+0.04),
			ID:   uint64(i),
		})
	}

	// Bulk-load with Sort-Tile-Recursive packing: the preprocessing path
	// the paper recommends when the data is known up front.
	if err := tree.BulkLoad(items, strtree.PackSTR); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("packed %d rectangles into a height-%d tree (fan-out %d)\n",
		tree.Len(), tree.Height(), tree.Capacity())

	// Region query: everything intersecting the center of the space.
	q := strtree.R2(0.4, 0.4, 0.6, 0.6)
	fmt.Printf("\nrectangles intersecting %v:\n", q)
	if err := tree.Search(q, func(it strtree.Item) bool {
		fmt.Printf("  id=%-3d %v\n", it.ID, it.Rect)
		return true
	}); err != nil {
		log.Fatal(err)
	}

	// Point query.
	p := strtree.Pt2(0.52, 0.52)
	n := 0
	if err := tree.SearchPoint(p, func(strtree.Item) bool { n++; return true }); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d rectangle(s) contain the point %v\n", n, p)

	// Dynamic updates work on packed trees too.
	if err := tree.Insert(strtree.R2(0.45, 0.45, 0.55, 0.55), 1000); err != nil {
		log.Fatal(err)
	}
	if ok, err := tree.Delete(items[0].Rect, items[0].ID); err != nil || !ok {
		log.Fatalf("delete failed: ok=%v err=%v", ok, err)
	}
	fmt.Printf("\nafter one insert and one delete: %d items, tree still valid: %v\n",
		tree.Len(), tree.Validate() == nil)

	// The paper's metrics: disk accesses and MBR geometry.
	tree.ResetStats()
	if err := tree.DropCaches(); err != nil {
		log.Fatal(err)
	}
	if _, err := tree.Count(q); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nthat region query cost %d disk accesses (cold buffer)\n", tree.Stats().DiskReads)
	m, err := tree.Metrics()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tree geometry: %d nodes, leaf area %.3f, leaf perimeter %.3f\n",
		m.Nodes, m.LeafArea, m.LeafPerimeter)
}
