// CFD example: index a simulated airfoil mesh (the repository's stand-in
// for the paper's Boeing 737 cross-section data) and run the probe
// queries a flow-visualization tool would issue: point lookups and small
// windows concentrated around the wing, where the mesh is densest —
// highly skewed point data, the paper's Section 4.4 scenario.
package main

import (
	"fmt"
	"log"
	"math"

	"strtree"
	"strtree/internal/datagen"
)

func main() {
	const meshNodes = 52510 // the paper's CFD mesh size
	fmt.Printf("generating %d mesh nodes (simulated 737 cross-section)...\n", meshNodes)
	entries := datagen.CFD(meshNodes, 1)
	items := make([]strtree.Item, len(entries))
	for i, e := range entries {
		items[i] = strtree.Item{Rect: e.Rect, ID: e.Ref}
	}

	tree, err := strtree.New(strtree.Options{Capacity: 100, BufferPages: 25})
	if err != nil {
		log.Fatal(err)
	}
	if err := tree.BulkLoad(items, strtree.PackSTR); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed into %d-level tree\n", tree.Height())

	// Density profile: how many mesh nodes fall within 0.005 of sample
	// points along a horizontal cut through the wing — the kind of probe
	// a post-processor runs to extract a pressure profile.
	fmt.Println("\nmesh density along the y=0.502 cut (nodes within r=0.005):")
	for x := 0.48; x <= 0.60; x += 0.02 {
		probe := strtree.R2(x-0.005, 0.502-0.005, x+0.005, 0.502+0.005)
		n, err := tree.Count(probe)
		if err != nil {
			log.Fatal(err)
		}
		bar := ""
		for i := 0; i < n/25 && i < 60; i++ {
			bar += "#"
		}
		fmt.Printf("  x=%.2f %5d %s\n", x, n, bar)
	}

	// The paper's restricted workload: queries confined to the box around
	// the wing where the data lives.
	box := datagen.CFDQueryRegion()
	inBox, err := tree.Count(box)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%.1f%% of the mesh is inside the query box %v\n",
		100*float64(inBox)/float64(tree.Len()), box)

	// Nearest-node lookup by expanding search: a mesh interpolator's
	// primitive. (The library exposes intersection search; expanding rings
	// turn it into nearest-neighbor.)
	target := strtree.Pt2(0.55, 0.51)
	id, dist := nearest(tree, target)
	fmt.Printf("nearest mesh node to %v: id=%d at distance %.5f\n", target, id, dist)

	tree.ResetStats()
	if err := tree.DropCaches(); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		x := box.Min[0] + float64(i%32)/32*box.Side(0)
		y := box.Min[1] + float64(i/32)/32*box.Side(1)
		if _, err := tree.Count(strtree.R2(x, y, math.Min(x+0.01, 0.6), math.Min(y+0.01, 0.6))); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("1000 probe windows cost %.2f disk accesses each (25-page buffer)\n",
		float64(tree.Stats().DiskReads)/1000)
}

// nearest finds the closest point item by searching expanding boxes.
func nearest(tree *strtree.Tree, p strtree.Point) (uint64, float64) {
	for r := 0.001; r < 2; r *= 2 {
		q := strtree.R2(p[0]-r, p[1]-r, p[0]+r, p[1]+r)
		bestID, bestDist := uint64(0), math.Inf(1)
		err := tree.Search(q, func(it strtree.Item) bool {
			dx := it.Rect.Min[0] - p[0]
			dy := it.Rect.Min[1] - p[1]
			if d := math.Hypot(dx, dy); d < bestDist {
				bestID, bestDist = it.ID, d
			}
			return true
		})
		if err != nil {
			log.Fatal(err)
		}
		// Only accept when the best hit is within the box's inradius;
		// otherwise a closer point could hide just outside the box.
		if bestDist <= r {
			return bestID, bestDist
		}
	}
	return 0, math.Inf(1)
}
