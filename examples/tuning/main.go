// Tuning example: how a user picks an index configuration for their own
// workload using nothing but the public API — the paper's methodology in
// miniature. It measures disk accesses per query for a grid of packing
// algorithm x buffer size combinations over the user's data and queries,
// then prints the grid so the trade-offs are visible.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"strtree"
)

func main() {
	// Stand-in for "the user's data": 30,000 clustered rectangles (a mix
	// the paper would call mildly skewed).
	rng := rand.New(rand.NewSource(1))
	items := make([]strtree.Item, 30000)
	for i := range items {
		var x, y float64
		if rng.Intn(3) == 0 { // cluster
			x = 0.3 + rng.NormFloat64()*0.05
			y = 0.6 + rng.NormFloat64()*0.05
		} else {
			x, y = rng.Float64(), rng.Float64()
		}
		x, y = clamp(x), clamp(y)
		r, err := strtree.NewRect(
			strtree.Pt2(x, y),
			strtree.Pt2(clamp(x+0.005), clamp(y+0.005)),
		)
		if err != nil {
			log.Fatal(err)
		}
		items[i] = strtree.Item{Rect: r, ID: uint64(i)}
	}

	// Stand-in for "the user's queries": 2% x 2% windows biased toward
	// the cluster, like map views over a downtown.
	queries := make([]strtree.Rect, 500)
	for i := range queries {
		var x, y float64
		if rng.Intn(2) == 0 {
			x = clamp(0.3 + rng.NormFloat64()*0.08)
			y = clamp(0.6 + rng.NormFloat64()*0.08)
		} else {
			x, y = rng.Float64()*0.98, rng.Float64()*0.98
		}
		q, err := strtree.NewRect(
			strtree.Pt2(x, y),
			strtree.Pt2(clamp(x+0.02), clamp(y+0.02)),
		)
		if err != nil {
			log.Fatal(err)
		}
		queries[i] = q
	}

	packings := []strtree.Packing{strtree.PackSTR, strtree.PackHilbert, strtree.PackTGS}
	buffers := []int{8, 32, 128}

	fmt.Printf("%-10s", "packing")
	for _, b := range buffers {
		fmt.Printf("  buf=%-6d", b)
	}
	fmt.Println(" (disk accesses per query, lower is better)")

	for _, p := range packings {
		fmt.Printf("%-10s", p)
		for _, buf := range buffers {
			tree, err := strtree.New(strtree.Options{Capacity: 100, BufferPages: buf})
			if err != nil {
				log.Fatal(err)
			}
			if err := tree.BulkLoad(append([]strtree.Item(nil), items...), p); err != nil {
				log.Fatal(err)
			}
			if err := tree.DropCaches(); err != nil {
				log.Fatal(err)
			}
			tree.ResetStats()
			for _, q := range queries {
				if _, err := tree.Count(q); err != nil {
					log.Fatal(err)
				}
			}
			acc := float64(tree.Stats().DiskReads) / float64(len(queries))
			fmt.Printf("  %-10.2f", acc)
		}
		fmt.Println()
	}

	fmt.Println("\nPick the cheapest cell your memory budget allows; rerun with your")
	fmt.Println("own items and queries to tune for your workload.")
}

func clamp(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
