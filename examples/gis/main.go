// GIS example: index a county-scale street network (the repository's
// simulated stand-in for the paper's TIGER Long Beach data) and serve
// map-viewport queries from it, comparing the three packing algorithms
// under a small LRU buffer — the paper's Section 4.2 scenario as an
// application.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"strtree"
	"strtree/internal/datagen"
)

func main() {
	const segments = 53145 // the Long Beach data-set size
	fmt.Printf("generating %d street segments (simulated TIGER Long Beach)...\n", segments)
	entries := datagen.Tiger(segments, 1)
	items := make([]strtree.Item, len(entries))
	for i, e := range entries {
		items[i] = strtree.Item{Rect: e.Rect, ID: e.Ref}
	}

	// A map client panning across the city: each viewport is 2% x 2% of
	// the county, moving in a random walk — consecutive viewports overlap,
	// which is exactly the access pattern an LRU buffer rewards.
	rng := rand.New(rand.NewSource(2))
	viewports := make([]strtree.Rect, 0, 1000)
	x, y := 0.3, 0.5
	for i := 0; i < 1000; i++ {
		x += (rng.Float64() - 0.5) * 0.05
		y += (rng.Float64() - 0.5) * 0.05
		x, y = clamp(x, 0, 0.86), clamp(y, 0, 0.86)
		viewports = append(viewports, strtree.R2(x, y, x+0.14, y+0.14))
	}

	fmt.Printf("\n%-8s %12s %14s %14s\n", "packing", "tree height", "segments/view", "accesses/view")
	for _, p := range []strtree.Packing{strtree.PackSTR, strtree.PackHilbert, strtree.PackNearestX} {
		// A 32-page buffer: about 6% of the ~540-page tree, in the range
		// the paper studies.
		tree, err := strtree.New(strtree.Options{Capacity: 100, BufferPages: 32})
		if err != nil {
			log.Fatal(err)
		}
		if err := tree.BulkLoad(items, p); err != nil {
			log.Fatal(err)
		}
		if err := tree.DropCaches(); err != nil {
			log.Fatal(err)
		}
		tree.ResetStats()
		total := 0
		for _, v := range viewports {
			n, err := tree.Count(v)
			if err != nil {
				log.Fatal(err)
			}
			total += n
		}
		s := tree.Stats()
		fmt.Printf("%-8s %12d %14.1f %14.2f\n",
			p, tree.Height(),
			float64(total)/float64(len(viewports)),
			float64(s.DiskReads)/float64(len(viewports)))
	}
	fmt.Println("\nAll packings return identical result sets; only the I/O differs.")
	fmt.Println("Expect STR lowest, HS close behind, NX several times worse (paper Table 5).")
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
