// VLSI example: index a highly skewed chip layout (the repository's
// simulated stand-in for the paper's Bell Labs CIF data) and run a
// design-rule-style overlap check in a chip region. Also contrasts packed
// loading against one-rectangle-at-a-time dynamic insertion — the paper's
// motivation (a)-(c): load time, space utilization, query quality.
package main

import (
	"fmt"
	"log"
	"time"

	"strtree"
	"strtree/internal/datagen"
)

func main() {
	const rects = 100000 // a slice of the paper's 453,994-rectangle chip
	fmt.Printf("generating %d layout rectangles (simulated CIF chip)...\n", rects)
	entries := datagen.VLSI(rects, 1)
	items := make([]strtree.Item, len(entries))
	for i, e := range entries {
		items[i] = strtree.Item{Rect: e.Rect, ID: e.Ref}
	}

	// Packed build.
	packed, err := strtree.New(strtree.Options{Capacity: 100})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if err := packed.BulkLoad(items, strtree.PackSTR); err != nil {
		log.Fatal(err)
	}
	packTime := time.Since(start)

	// Dynamic build of the same data: Guttman insertion.
	dynamic, err := strtree.New(strtree.Options{Capacity: 100, BufferPages: 4096})
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	for _, it := range items {
		if err := dynamic.Insert(it.Rect, it.ID); err != nil {
			log.Fatal(err)
		}
	}
	dynTime := time.Since(start)

	pm, err := packed.Metrics()
	if err != nil {
		log.Fatal(err)
	}
	dm, err := dynamic.Metrics()
	if err != nil {
		log.Fatal(err)
	}
	packedUtil, err := packed.Utilization()
	if err != nil {
		log.Fatal(err)
	}
	dynamicUtil, err := dynamic.Utilization()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-10s %10s %8s %12s %12s %12s\n",
		"build", "time", "nodes", "leaf util", "leaf area", "leaf perim")
	fmt.Printf("%-10s %10v %8d %11.1f%% %12.3f %12.1f\n",
		"STR pack", packTime.Round(time.Millisecond), pm.Nodes, 100*packedUtil, pm.LeafArea, pm.LeafPerimeter)
	fmt.Printf("%-10s %10v %8d %11.1f%% %12.3f %12.1f\n",
		"dynamic", dynTime.Round(time.Millisecond), dm.Nodes, 100*dynamicUtil, dm.LeafArea, dm.LeafPerimeter)

	// Overlap check: report geometry pairs that intersect within a window
	// of the die — a simplified design-rule screen.
	window := strtree.R2(0.45, 0.45, 0.55, 0.55)
	inWindow, err := packed.All(window)
	if err != nil {
		log.Fatal(err)
	}
	packed.ResetStats()
	overlaps := 0
	for _, it := range inWindow {
		err := packed.Search(it.Rect, func(other strtree.Item) bool {
			if other.ID > it.ID { // count each pair once
				overlaps++
			}
			return true
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\noverlap screen in %v: %d rectangles, %d intersecting pairs, %d page requests\n",
		window, len(inWindow), overlaps, packed.Stats().LogicalReads)
}
