// Spatial-join example: overlay two named layers of one LayerSet store —
// land parcels and flood zones — to find every parcel touched by a flood
// zone, using the synchronized-traversal join. Then demonstrates STR-based
// compaction: after a burst of dynamic edits the parcels layer is
// repacked, recovering bulk-loaded utilization (the maintenance pattern
// behind the paper's proposed dynamic STR variants).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"strtree"
)

func main() {
	rng := rand.New(rand.NewSource(1))

	// One store, two named layers sharing a buffer pool.
	store, err := strtree.NewLayers(strtree.Options{Capacity: 100})
	if err != nil {
		log.Fatal(err)
	}

	// Layer 1: 40,000 parcels, small rectangles tiling the region.
	parcels, err := store.Create("parcels")
	if err != nil {
		log.Fatal(err)
	}
	var parcelItems []strtree.Item
	for i := 0; i < 40000; i++ {
		x, y := rng.Float64()*0.995, rng.Float64()*0.995
		parcelItems = append(parcelItems, strtree.Item{
			Rect: strtree.R2(x, y, x+0.004, y+0.004),
			ID:   uint64(i),
		})
	}
	if err := parcels.BulkLoad(parcelItems, strtree.PackSTR); err != nil {
		log.Fatal(err)
	}

	// Layer 2: 60 flood zones, larger irregular boxes along a "river"
	// running diagonally across the region.
	floods, err := store.Create("floods")
	if err != nil {
		log.Fatal(err)
	}
	var floodItems []strtree.Item
	for i := 0; i < 60; i++ {
		t := float64(i) / 60
		cx := t
		cy := 0.3 + 0.4*t + rng.NormFloat64()*0.02
		w := 0.02 + rng.Float64()*0.03
		h := 0.01 + rng.Float64()*0.02
		r, err := strtree.NewRect(strtree.Pt2(cx-w, cy-h), strtree.Pt2(cx+w, cy+h))
		if err != nil {
			log.Fatal(err)
		}
		floodItems = append(floodItems, strtree.Item{Rect: r, ID: uint64(i)})
	}
	if err := floods.BulkLoad(floodItems, strtree.PackSTR); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("store layers: %v\n", store.Names())

	// The join: every (parcel, flood zone) intersection.
	parcels.ResetStats()
	affected := map[uint64]bool{}
	pairs := 0
	if err := strtree.Join(parcels, floods, func(p, f strtree.Item) bool {
		affected[p.ID] = true
		pairs++
		return true
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("join: %d intersecting pairs, %d distinct parcels in flood zones\n",
		pairs, len(affected))
	fmt.Printf("join cost: %d page requests over %d parcels x %d zones\n",
		parcels.Stats().LogicalReads, len(parcelItems), len(floodItems))

	// Simulate a year of edits: delete a tenth of the parcels, add new
	// subdivided ones dynamically.
	for i := 0; i < 4000; i++ {
		if _, err := parcels.Delete(parcelItems[i].Rect, parcelItems[i].ID); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 8000; i++ {
		x, y := rng.Float64()*0.997, rng.Float64()*0.997
		if err := parcels.Insert(strtree.R2(x, y, x+0.002, y+0.002), uint64(100000+i)); err != nil {
			log.Fatal(err)
		}
	}
	before, err := parcels.Metrics()
	if err != nil {
		log.Fatal(err)
	}

	// Compact: repack everything with STR into a fresh tree.
	fresh, err := strtree.New(strtree.Options{Capacity: 100})
	if err != nil {
		log.Fatal(err)
	}
	if err := parcels.CompactInto(fresh, strtree.PackSTR); err != nil {
		log.Fatal(err)
	}
	after, err := fresh.Metrics()
	if err != nil {
		log.Fatal(err)
	}
	util := func(m strtree.Metrics, len, cap int) float64 {
		return 100 * float64(len) / float64(m.LeafNodes*cap)
	}
	fmt.Printf("\nafter edits:   %d items in %d leaves (%.1f%% full), leaf perimeter %.1f\n",
		parcels.Len(), before.LeafNodes, util(before, parcels.Len(), parcels.Capacity()), before.LeafPerimeter)
	fmt.Printf("after compact: %d items in %d leaves (%.1f%% full), leaf perimeter %.1f\n",
		fresh.Len(), after.LeafNodes, util(after, fresh.Len(), fresh.Capacity()), after.LeafPerimeter)
}
