// 3-D example: the paper's k > 2 generalization (Section 2.2) through
// the public API. Index bounding boxes of particles in a unit cube,
// run box queries and nearest-neighbor probes, and compare STR's 3-D
// tiling against Nearest-X's slabs.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"strtree"
)

func main() {
	const particles = 60000
	rng := rand.New(rand.NewSource(1))

	items := make([]strtree.Item, particles)
	for i := range items {
		// A filament: particles denser along a diagonal curve, the kind
		// of structure an n-body snapshot has.
		var x, y, z float64
		if rng.Intn(3) > 0 {
			t := rng.Float64()
			x = clamp(t + rng.NormFloat64()*0.05)
			y = clamp(t*t + rng.NormFloat64()*0.05)
			z = clamp(0.5 + 0.4*(t-0.5) + rng.NormFloat64()*0.05)
		} else {
			x, y, z = rng.Float64(), rng.Float64(), rng.Float64()
		}
		lo := strtree.Point{x, y, z}
		hi := strtree.Point{clamp(x + 0.002), clamp(y + 0.002), clamp(z + 0.002)}
		r, err := strtree.NewRect(lo, hi)
		if err != nil {
			log.Fatal(err)
		}
		items[i] = strtree.Item{Rect: r, ID: uint64(i)}
	}

	fmt.Printf("%-8s %8s %14s\n", "packing", "height", "accesses/query")
	for _, p := range []strtree.Packing{strtree.PackSTR, strtree.PackNearestX} {
		tree, err := strtree.New(strtree.Options{Dims: 3, BufferPages: 32})
		if err != nil {
			log.Fatal(err)
		}
		if err := tree.BulkLoad(append([]strtree.Item(nil), items...), p); err != nil {
			log.Fatal(err)
		}
		if err := tree.DropCaches(); err != nil {
			log.Fatal(err)
		}
		tree.ResetStats()
		const queries = 400
		for i := 0; i < queries; i++ {
			lo := strtree.Point{rng.Float64() * 0.9, rng.Float64() * 0.9, rng.Float64() * 0.9}
			hi := strtree.Point{lo[0] + 0.1, lo[1] + 0.1, lo[2] + 0.1}
			q, err := strtree.NewRect(lo, hi)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := tree.Count(q); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("%-8s %8d %14.2f\n",
			p, tree.Height(), float64(tree.Stats().DiskReads)/queries)

		if p == strtree.PackSTR {
			// Nearest neighbors work in any dimension.
			probe := strtree.Point{0.5, 0.25, 0.5}
			nn, dists, err := tree.NearestK(probe, 3)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\n3 nearest particles to %v:\n", probe)
			for i, it := range nn {
				fmt.Printf("  id=%-6d dist=%.4f\n", it.ID, dists[i])
			}
			fmt.Println()
		}
	}
	fmt.Println("\nSTR's recursive slabs tile the cube; NX's x-slabs span full y-z planes.")
}

func clamp(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
