package strtree

import (
	"testing"

	"strtree/internal/query"
)

// batchTree builds a packed tree with the given buffer geometry over a
// fixed item set.
func batchTree(t *testing.T, bufferPages, bufferShards int) (*Tree, []Item) {
	t.Helper()
	tree, err := New(Options{Capacity: 16, BufferPages: bufferPages, BufferShards: bufferShards})
	if err != nil {
		t.Fatal(err)
	}
	items := randItems(5000, 61)
	if err := tree.BulkLoad(items, PackSTR); err != nil {
		t.Fatal(err)
	}
	return tree, items
}

func batchQueries(n int) []Rect {
	return query.Regions(n, query.Extent9Pct, 62)
}

// TestSearchBatchMatchesSequential checks batched results equal per-query
// All calls — same matches, same per-query order — across worker counts,
// on a sharded buffer small enough to evict constantly.
func TestSearchBatchMatchesSequential(t *testing.T) {
	tree, _ := batchTree(t, 64, 8)
	qs := batchQueries(200)
	want := make([][]Item, len(qs))
	for i, q := range qs {
		var err error
		want[i], err = tree.All(q)
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 4, 8} {
		got, err := tree.SearchBatch(qs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("workers=%d query %d: %d items, want %d", workers, i, len(got[i]), len(want[i]))
			}
			for j := range want[i] {
				if got[i][j].ID != want[i][j].ID || !got[i][j].Rect.Equal(want[i][j].Rect) {
					t.Fatalf("workers=%d query %d item %d: %v != %v", workers, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

// TestSearchBatchCountMatchesCount cross-checks the count path.
func TestSearchBatchCountMatchesCount(t *testing.T) {
	tree, _ := batchTree(t, 32, 4)
	qs := batchQueries(150)
	counts, err := tree.SearchBatchCount(qs, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		want, err := tree.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		if counts[i] != want {
			t.Fatalf("query %d: batch count %d, Count %d", i, counts[i], want)
		}
	}
}

// TestSingleShardBatchReproducesSeedMisses is the paper-reproduction
// guarantee: a single-shard tree queried through SearchBatch with one
// worker produces exactly the buffer-miss counts of a plain sequential
// Search loop over the same queries.
func TestSingleShardBatchReproducesSeedMisses(t *testing.T) {
	qs := batchQueries(300)

	seq, _ := batchTree(t, 10, 0)
	if err := seq.DropCaches(); err != nil {
		t.Fatal(err)
	}
	seq.ResetStats()
	for _, q := range qs {
		if _, err := seq.Count(q); err != nil {
			t.Fatal(err)
		}
	}
	wantMisses := seq.Stats().DiskReads

	batch, _ := batchTree(t, 10, 1)
	if err := batch.DropCaches(); err != nil {
		t.Fatal(err)
	}
	batch.ResetStats()
	if _, err := batch.SearchBatchCount(qs, 1); err != nil {
		t.Fatal(err)
	}
	if got := batch.Stats().DiskReads; got != wantMisses {
		t.Fatalf("single-shard one-worker batch misses = %d, sequential loop = %d", got, wantMisses)
	}
}

// TestSearchBatchShardedStats checks the sharded buffer's merged
// accounting: every logical read of the batch lands in the aggregated
// Stats, and misses stay within [cold-tree minimum, logical total].
func TestSearchBatchShardedStats(t *testing.T) {
	tree, _ := batchTree(t, 64, 8)
	qs := batchQueries(200)
	if err := tree.DropCaches(); err != nil {
		t.Fatal(err)
	}
	tree.ResetStats()
	if _, err := tree.SearchBatchCount(qs, 8); err != nil {
		t.Fatal(err)
	}
	s := tree.Stats()
	if s.LogicalReads == 0 {
		t.Fatal("batch produced no logical reads")
	}
	if s.DiskReads == 0 || s.DiskReads > s.LogicalReads {
		t.Fatalf("implausible miss accounting: %+v", s)
	}
}

// TestBufferShardsValidation pins the Options contract.
func TestBufferShardsValidation(t *testing.T) {
	if _, err := New(Options{BufferShards: 3}); err == nil {
		t.Fatal("non-power-of-two shard count accepted")
	}
	if _, err := New(Options{BufferPages: 2, BufferShards: 4}); err == nil {
		t.Fatal("more shards than buffer pages accepted")
	}
	tree, err := New(Options{BufferPages: 64, BufferShards: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.BulkLoad(randItems(500, 63), PackSTR); err != nil {
		t.Fatal(err)
	}
	if err := tree.CheckPackedInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSearchBatchOnDynamicTree exercises the batch path on a tree built by
// inserts (no packing assumptions) and after deletes.
func TestSearchBatchOnDynamicTree(t *testing.T) {
	tree, err := New(Options{Capacity: 16, BufferPages: 32, BufferShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	items := randItems(1500, 64)
	for _, it := range items {
		if err := tree.Insert(it.Rect, it.ID); err != nil {
			t.Fatal(err)
		}
	}
	for _, it := range items[:200] {
		ok, err := tree.Delete(it.Rect, it.ID)
		if err != nil || !ok {
			t.Fatalf("delete: ok=%v err=%v", ok, err)
		}
	}
	qs := batchQueries(100)
	counts, err := tree.SearchBatchCount(qs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		want, err := tree.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		if counts[i] != want {
			t.Fatalf("query %d: %d != %d", i, counts[i], want)
		}
	}
}
