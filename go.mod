module strtree

go 1.22
