package strtree

import "fmt"

// Collection pairs a spatial index with typed in-memory payloads, so
// callers can store and retrieve their own values instead of managing
// opaque IDs. The rectangles and IDs live in the R-tree (and can be
// packed, searched and joined like any tree via Tree); the values live in
// a map keyed by the IDs the collection assigns.
//
// A Collection is for in-memory use: payloads do not persist with a
// file-backed tree. It is safe for one goroutine, like Tree.
type Collection[T any] struct {
	tree   *Tree
	values map[uint64]collectionEntry[T]
	nextID uint64
}

type collectionEntry[T any] struct {
	rect  Rect
	value T
}

// NewCollection creates an empty typed collection over an in-memory tree.
func NewCollection[T any](opts Options) (*Collection[T], error) {
	tree, err := New(opts)
	if err != nil {
		return nil, err
	}
	return &Collection[T]{
		tree:   tree,
		values: map[uint64]collectionEntry[T]{},
	}, nil
}

// Add indexes value under rect and returns the assigned id.
func (c *Collection[T]) Add(rect Rect, value T) (uint64, error) {
	id := c.nextID
	if err := c.tree.Insert(rect, id); err != nil {
		return 0, err
	}
	c.values[id] = collectionEntry[T]{rect: rect.Clone(), value: value}
	c.nextID++
	return id, nil
}

// BulkAdd packs the collection from scratch with the given algorithm.
// The collection must be empty. It returns the assigned ids in input
// order.
func (c *Collection[T]) BulkAdd(rects []Rect, values []T, p Packing) ([]uint64, error) {
	if len(rects) != len(values) {
		return nil, fmt.Errorf("strtree: %d rects but %d values", len(rects), len(values))
	}
	if len(c.values) != 0 {
		return nil, fmt.Errorf("strtree: BulkAdd on non-empty collection")
	}
	items := make([]Item, len(rects))
	ids := make([]uint64, len(rects))
	for i, r := range rects {
		id := c.nextID
		c.nextID++
		items[i] = Item{Rect: r, ID: id}
		ids[i] = id
	}
	if err := c.tree.BulkLoad(items, p); err != nil {
		c.nextID -= uint64(len(rects))
		return nil, err
	}
	for i, id := range ids {
		c.values[id] = collectionEntry[T]{rect: rects[i].Clone(), value: values[i]}
	}
	return ids, nil
}

// Get returns the value stored under id.
func (c *Collection[T]) Get(id uint64) (T, bool) {
	e, ok := c.values[id]
	return e.value, ok
}

// Update replaces the value under id (the rectangle is unchanged).
func (c *Collection[T]) Update(id uint64, value T) bool {
	e, ok := c.values[id]
	if !ok {
		return false
	}
	e.value = value
	c.values[id] = e
	return true
}

// Move re-indexes the item under a new rectangle.
func (c *Collection[T]) Move(id uint64, rect Rect) error {
	e, ok := c.values[id]
	if !ok {
		return fmt.Errorf("strtree: no item %d", id)
	}
	removed, err := c.tree.Delete(e.rect, id)
	if err != nil {
		return err
	}
	if !removed {
		return fmt.Errorf("strtree: item %d missing from index", id)
	}
	if err := c.tree.Insert(rect, id); err != nil {
		return err
	}
	e.rect = rect.Clone()
	c.values[id] = e
	return nil
}

// Remove deletes the item, reporting whether it existed.
func (c *Collection[T]) Remove(id uint64) (bool, error) {
	e, ok := c.values[id]
	if !ok {
		return false, nil
	}
	removed, err := c.tree.Delete(e.rect, id)
	if err != nil {
		return false, err
	}
	if removed {
		delete(c.values, id)
	}
	return removed, nil
}

// Search streams every stored item intersecting q. Returning false stops.
func (c *Collection[T]) Search(q Rect, fn func(id uint64, rect Rect, value T) bool) error {
	return c.tree.Search(q, func(it Item) bool {
		e := c.values[it.ID]
		return fn(it.ID, e.rect, e.value)
	})
}

// NearestK returns the ids and values of the k items nearest to p.
func (c *Collection[T]) NearestK(p Point, k int) ([]uint64, []T, error) {
	items, _, err := c.tree.NearestK(p, k)
	if err != nil {
		return nil, nil, err
	}
	ids := make([]uint64, len(items))
	vals := make([]T, len(items))
	for i, it := range items {
		ids[i] = it.ID
		vals[i] = c.values[it.ID].value
	}
	return ids, vals, nil
}

// Len returns the number of stored items.
func (c *Collection[T]) Len() int { return len(c.values) }

// Tree exposes the underlying index for advanced operations (metrics,
// joins with other trees, compaction). Mutating it directly desynchronizes
// the payload map; use the Collection methods for changes.
func (c *Collection[T]) Tree() *Tree { return c.tree }
