package strtree

import (
	"errors"
	"sync"
	"testing"
)

func TestViewReadOnly(t *testing.T) {
	tree, err := New(Options{Capacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	items := randItems(500, 51)
	if err := tree.BulkLoad(items, PackSTR); err != nil {
		t.Fatal(err)
	}
	v, err := tree.View(32)
	if err != nil {
		t.Fatal(err)
	}
	// Reads agree with the base tree.
	q := R2(0.2, 0.2, 0.6, 0.6)
	a, err := tree.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := v.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("view count %d != base count %d", b, a)
	}
	// Mutations are rejected.
	if err := v.Insert(R2(0, 0, 0.1, 0.1), 9999); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("view insert: %v", err)
	}
	if _, err := v.Delete(items[0].Rect, items[0].ID); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("view delete: %v", err)
	}
	if err := v.BulkLoad(items, PackSTR); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("view bulk load: %v", err)
	}
	other, _ := New(Options{})
	if err := other.CompactInto(v, PackSTR); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("compact into view: %v", err)
	}
	// View stats are independent.
	tree.ResetStats()
	if _, err := v.Count(q); err != nil {
		t.Fatal(err)
	}
	if tree.Stats().LogicalReads != 0 {
		t.Fatal("view reads leaked into base stats")
	}
	if v.Stats().LogicalReads == 0 {
		t.Fatal("view stats not counting")
	}
	// Closing the view leaves the base usable.
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Count(q); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentViews(t *testing.T) {
	tree, err := New(Options{Capacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	items := randItems(3000, 52)
	if err := tree.BulkLoad(items, PackSTR); err != nil {
		t.Fatal(err)
	}
	q := R2(0.3, 0.3, 0.5, 0.5)
	want, err := tree.Count(q)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		v, err := tree.View(16)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(v *Tree) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got, err := v.Count(q)
				if err != nil {
					errs <- err
					return
				}
				if got != want {
					errs <- errors.New("concurrent view returned wrong count")
					return
				}
			}
		}(v)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestViewSeesFlushedState(t *testing.T) {
	tree, err := New(Options{Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range randItems(100, 53) {
		if err := tree.Insert(it.Rect, it.ID); err != nil {
			t.Fatal(err)
		}
	}
	v, err := tree.View(0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 100 {
		t.Fatalf("view len = %d", v.Len())
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSearchWithinPublic(t *testing.T) {
	tree, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(R2(0.1, 0.1, 0.2, 0.2), 1); err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(R2(0.15, 0.15, 0.5, 0.5), 2); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	if err := tree.SearchWithin(R2(0, 0, 0.3, 0.3), func(it Item) bool {
		got = append(got, it.ID)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("SearchWithin = %v", got)
	}
}

func TestSplitRStarPublic(t *testing.T) {
	tree, err := New(Options{Capacity: 16, Split: SplitRStar})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range randItems(400, 54) {
		if err := tree.Insert(it.Rect, it.ID); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}
