package strtree_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"strtree"
	"strtree/internal/datagen"
)

// buildFile bulk-loads items into a fresh index file with the given
// packing and worker count and returns the file's bytes.
func buildFile(t *testing.T, items []strtree.Item, p strtree.Packing, workers int) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "w"+strconv.Itoa(workers)+".str")
	tree, err := strtree.Create(path, strtree.Options{Capacity: 16, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	cp := append([]strtree.Item(nil), items...)
	if err := tree.BulkLoad(cp, p); err != nil {
		t.Fatal(err)
	}
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestParallelBuildByteIdentical asserts the pipeline's central guarantee
// at the public API: for every packing algorithm, the index file a
// parallel build writes is byte-for-byte the file a sequential build
// writes.
func TestParallelBuildByteIdentical(t *testing.T) {
	entries := datagen.UniformSquares(5000, 5.0, 3)
	items := make([]strtree.Item, len(entries))
	for i, e := range entries {
		items[i] = strtree.Item{Rect: strtree.Rect(e.Rect), ID: e.Ref}
	}
	packings := []strtree.Packing{
		strtree.PackSTR, strtree.PackHilbert, strtree.PackNearestX,
		strtree.PackSTRSerpentine, strtree.PackTGS,
	}
	for _, p := range packings {
		t.Run(p.String(), func(t *testing.T) {
			seq := buildFile(t, items, p, 1)
			par := buildFile(t, items, p, 8)
			if !bytes.Equal(seq, par) {
				t.Fatalf("%s: index bytes differ between workers=1 (%d bytes) and workers=8 (%d bytes)",
					p, len(seq), len(par))
			}
		})
	}
}

// TestParallelExternalBuildByteIdentical asserts the same guarantee for
// the bounded-memory external build, whose sort phases spill runs from
// concurrent workers.
func TestParallelExternalBuildByteIdentical(t *testing.T) {
	entries := datagen.UniformSquares(20000, 5.0, 4)
	items := make([]strtree.Item, len(entries))
	for i, e := range entries {
		items[i] = strtree.Item{Rect: strtree.Rect(e.Rect), ID: e.Ref}
	}
	build := func(workers int) []byte {
		path := filepath.Join(t.TempDir(), "ext.str")
		tree, err := strtree.Create(path, strtree.Options{Capacity: 16, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		i := 0
		src := func() (strtree.Item, bool) {
			if i >= len(items) {
				return strtree.Item{}, false
			}
			it := items[i]
			i++
			return it, true
		}
		if err := tree.BulkLoadExternal(src, strtree.ExternalOptions{RunSize: 2048, TmpDir: t.TempDir()}); err != nil {
			t.Fatal(err)
		}
		if err := tree.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	seq := build(1)
	par := build(8)
	if !bytes.Equal(seq, par) {
		t.Fatalf("external build bytes differ between workers=1 (%d bytes) and workers=8 (%d bytes)",
			len(seq), len(par))
	}
}
