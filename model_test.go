package strtree

// Model-based randomized testing at the public API level: the tree is
// driven through long random operation sequences mirrored into a naive
// reference model; at every checkpoint the tree must answer exactly like
// the model and pass structural validation. This complements the unit
// tests by exploring interactions no hand-written case covers.

import (
	"math/rand"
	"testing"
)

// refModel is the brute-force oracle.
type refModel struct {
	items map[uint64]Rect
}

func (m *refModel) count(q Rect) int {
	n := 0
	for _, r := range m.items {
		if q.Intersects(r) {
			n++
		}
	}
	return n
}

func (m *refModel) countWithin(q Rect) int {
	n := 0
	for _, r := range m.items {
		if q.Contains(r) {
			n++
		}
	}
	return n
}

func TestModelRandomOps(t *testing.T) {
	configs := []Options{
		{Capacity: 6, Split: SplitLinear},
		{Capacity: 10, Split: SplitQuadratic},
		{Capacity: 8, Split: SplitRStar, ForcedReinsert: true},
	}
	for ci, opts := range configs {
		opts := opts
		t.Run(opts.Split.String(), func(t *testing.T) {
			t.Parallel()
			tree, err := New(opts)
			if err != nil {
				t.Fatal(err)
			}
			model := &refModel{items: map[uint64]Rect{}}
			rng := rand.New(rand.NewSource(int64(100 + ci)))
			nextID := uint64(0)

			randRect := func() Rect {
				x, y := rng.Float64(), rng.Float64()
				w, h := rng.Float64()*0.1, rng.Float64()*0.1
				if rng.Intn(5) == 0 { // degenerate shapes stress ties
					w, h = 0, 0
				}
				r, err := NewRect(Pt2(x, y), Pt2(min1(x+w), min1(y+h)))
				if err != nil {
					t.Fatal(err)
				}
				return r
			}

			for op := 0; op < 3000; op++ {
				switch {
				case len(model.items) == 0 || rng.Intn(5) < 3: // insert
					r := randRect()
					if err := tree.Insert(r, nextID); err != nil {
						t.Fatalf("op %d insert: %v", op, err)
					}
					model.items[nextID] = r
					nextID++
				case rng.Intn(2) == 0: // delete one
					var id uint64
					for id = range model.items {
						break
					}
					ok, err := tree.Delete(model.items[id], id)
					if err != nil {
						t.Fatalf("op %d delete: %v", op, err)
					}
					if !ok {
						t.Fatalf("op %d: live item %d not found", op, id)
					}
					delete(model.items, id)
				default: // range delete
					x, y := rng.Float64(), rng.Float64()
					q, _ := NewRect(Pt2(x, y), Pt2(min1(x+0.05), min1(y+0.05)))
					want := model.count(q)
					got, err := tree.DeleteRange(q)
					if err != nil {
						t.Fatalf("op %d range delete: %v", op, err)
					}
					if got != want {
						t.Fatalf("op %d: range delete removed %d, model says %d", op, got, want)
					}
					for id, r := range model.items {
						if q.Intersects(r) {
							delete(model.items, id)
						}
					}
				}

				if op%250 == 249 {
					if err := tree.Validate(); err != nil {
						t.Fatalf("op %d: %v", op, err)
					}
					if tree.Len() != len(model.items) {
						t.Fatalf("op %d: Len %d, model %d", op, tree.Len(), len(model.items))
					}
					for i := 0; i < 5; i++ {
						x, y := rng.Float64(), rng.Float64()
						e := rng.Float64() * 0.4
						q, _ := NewRect(Pt2(x, y), Pt2(min1(x+e), min1(y+e)))
						if got, _ := tree.Count(q); got != model.count(q) {
							t.Fatalf("op %d: count(%v) = %d, model %d", op, q, got, model.count(q))
						}
						within := 0
						if err := tree.SearchWithin(q, func(Item) bool { within++; return true }); err != nil {
							t.Fatal(err)
						}
						if within != model.countWithin(q) {
							t.Fatalf("op %d: within(%v) = %d, model %d", op, q, within, model.countWithin(q))
						}
					}
				}
			}
		})
	}
}

// TestModelPackedThenDynamic starts from a packed tree and continues with
// dynamic churn: the transition is where packed-full nodes meet the
// min-fill machinery.
func TestModelPackedThenDynamic(t *testing.T) {
	tree, err := New(Options{Capacity: 12})
	if err != nil {
		t.Fatal(err)
	}
	model := &refModel{items: map[uint64]Rect{}}
	rng := rand.New(rand.NewSource(200))
	items := randItems(2000, 201)
	if err := tree.BulkLoad(items, PackSTR); err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		model.items[it.ID] = it.Rect
	}
	nextID := uint64(10000)
	for op := 0; op < 1500; op++ {
		if rng.Intn(2) == 0 {
			x, y := rng.Float64(), rng.Float64()
			r, _ := NewRect(Pt2(x, y), Pt2(min1(x+0.02), min1(y+0.02)))
			if err := tree.Insert(r, nextID); err != nil {
				t.Fatal(err)
			}
			model.items[nextID] = r
			nextID++
		} else {
			var id uint64
			for id = range model.items {
				break
			}
			if _, err := tree.Delete(model.items[id], id); err != nil {
				t.Fatal(err)
			}
			delete(model.items, id)
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != len(model.items) {
		t.Fatalf("Len %d, model %d", tree.Len(), len(model.items))
	}
	for i := 0; i < 25; i++ {
		x, y := rng.Float64(), rng.Float64()
		q, _ := NewRect(Pt2(x, y), Pt2(min1(x+0.3), min1(y+0.3)))
		if got, _ := tree.Count(q); got != model.count(q) {
			t.Fatalf("count(%v) = %d, model %d", q, got, model.count(q))
		}
	}
}
