package strtree

import (
	"fmt"
	"io"

	"strtree/internal/node"
	"strtree/internal/pack"
	"strtree/internal/rtree"
	"strtree/internal/storage"
)

// Nearest streams items in order of increasing Euclidean distance from p
// (distance from p to the item's rectangle; items containing p come first
// with distance 0). Returning false from fn stops the search. This is the
// incremental best-first nearest-neighbor search of Hjaltason and Samet
// over the same paged tree the range queries use.
func (t *Tree) Nearest(p Point, fn func(it Item, dist float64) bool) error {
	return t.inner.Nearest(p, func(e node.Entry, d float64) bool {
		return fn(Item{Rect: e.Rect, ID: e.Ref}, d)
	})
}

// NearestK returns the k items nearest to p and their distances, closest
// first.
func (t *Tree) NearestK(p Point, k int) ([]Item, []float64, error) {
	entries, dists, err := t.inner.NearestK(p, k)
	if err != nil {
		return nil, nil, err
	}
	items := make([]Item, len(entries))
	for i, e := range entries {
		items[i] = Item{Rect: e.Rect, ID: e.Ref}
	}
	return items, dists, nil
}

// Join streams every intersecting pair of items between two trees using a
// synchronized traversal that skips disjoint subtrees — the standard
// R-tree spatial join. Joining a tree with itself reports symmetric pairs
// twice and self-pairs; filter with a.ID < b.ID for distinct unordered
// pairs. Returning false from fn stops the join.
func Join(a, b *Tree, fn func(ia, ib Item) bool) error {
	return rtree.Join(a.inner, b.inner, func(ea, eb node.Entry) bool {
		return fn(Item{Rect: ea.Rect, ID: ea.Ref}, Item{Rect: eb.Rect, ID: eb.Ref})
	})
}

// JoinWithin streams every pair of items from the two trees whose
// rectangles lie within Euclidean distance dist of each other — the
// within-distance spatial join ("all hydrants within 100m of a building").
// dist 0 is the intersection join.
func JoinWithin(a, b *Tree, dist float64, fn func(ia, ib Item) bool) error {
	return rtree.JoinWithin(a.inner, b.inner, dist, func(ea, eb node.Entry) bool {
		return fn(Item{Rect: ea.Rect, ID: ea.Ref}, Item{Rect: eb.Rect, ID: eb.Ref})
	})
}

// Scan streams every item in leaf order (the packing order for
// bulk-loaded trees). Returning false stops the scan. The item's rectangle
// is only valid during the callback; Clone it to retain it.
func (t *Tree) Scan(fn func(it Item) bool) error {
	return t.inner.Scan(func(e node.Entry) bool {
		return fn(Item{Rect: e.Rect, ID: e.Ref})
	})
}

// Items collects a deep copy of every item in the tree.
func (t *Tree) Items() ([]Item, error) {
	entries, err := t.inner.Entries()
	if err != nil {
		return nil, err
	}
	items := make([]Item, len(entries))
	for i, e := range entries {
		items[i] = Item{Rect: e.Rect, ID: e.Ref}
	}
	return items, nil
}

// CompactInto repacks this tree's contents into dst (an empty tree of the
// same dimensionality) with the chosen packing algorithm. After a long run
// of dynamic updates this restores packed-tree utilization and query
// performance — the maintenance pattern behind the paper's proposed
// STR-based dynamic variants.
func (t *Tree) CompactInto(dst *Tree, p Packing) error {
	if dst.readonly {
		return ErrReadOnly
	}
	o, err := p.orderer(dst.inner.Workers())
	if err != nil {
		return err
	}
	return t.inner.CompactInto(dst.inner, o)
}

// SearchWithin streams every item whose rectangle is fully contained in q
// (window containment, versus Search's intersection semantics).
func (t *Tree) SearchWithin(q Rect, fn func(it Item) bool) error {
	return t.inner.SearchWithin(q, func(e node.Entry) bool {
		return fn(Item{Rect: e.Rect, ID: e.Ref})
	})
}

// Bounds returns the bounding rectangle of everything in the tree, and
// false when the tree is empty.
func (t *Tree) Bounds() (Rect, bool, error) { return t.inner.Bounds() }

// Utilization returns the average leaf fill fraction (1.0 = every leaf
// full, the hallmark of a packed tree).
func (t *Tree) Utilization() (float64, error) { return t.inner.Utilization() }

// DeleteRange removes every item whose rectangle intersects q and returns
// how many were removed. It collects the matches first, then deletes them
// one by one, so the tree stays valid even if the callback-free bulk
// operation is interrupted by an error partway.
func (t *Tree) DeleteRange(q Rect) (int, error) {
	if t.readonly {
		return 0, ErrReadOnly
	}
	victims, err := t.All(q)
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, it := range victims {
		ok, err := t.Delete(it.Rect, it.ID)
		if err != nil {
			return removed, err
		}
		if ok {
			removed++
		}
	}
	return removed, nil
}

// SaveTo writes a compacted copy of the tree to a new index file at path,
// repacked with the given algorithm — a backup that is also a defragment.
// The original tree is unchanged.
func (t *Tree) SaveTo(path string, p Packing) error {
	dst, err := Create(path, Options{
		Dims:     t.Dims(),
		PageSize: t.pager.PageSize(),
		Capacity: t.Capacity(),
	})
	if err != nil {
		return err
	}
	if err := t.CompactInto(dst, p); err != nil {
		dst.Close()
		return err
	}
	return dst.Close()
}

// DumpDOT writes the tree's structure in Graphviz DOT format: one box per
// node showing its page, level and fill, with edges to children. Render
// with `dot -Tsvg`. Intended for debugging and teaching; large trees make
// large graphs.
func (t *Tree) DumpDOT(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "digraph rtree {"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, `  node [shape=box, fontname="monospace"];`); err != nil {
		return err
	}
	err := t.inner.Walk(func(id storage.PageID, n *node.Node) bool {
		fmt.Fprintf(w, "  p%d [label=\"page %d\\nlevel %d\\n%d/%d entries\"];\n",
			id, id, n.Level, len(n.Entries), t.Capacity())
		if !n.IsLeaf() {
			for _, e := range n.Entries {
				fmt.Fprintf(w, "  p%d -> p%d;\n", id, storage.PageID(e.Ref))
			}
		}
		return true
	})
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, "}")
	return err
}

// ExternalOptions bound the memory used by BulkLoadExternal.
type ExternalOptions struct {
	// RunSize is the maximum number of items held in memory during the
	// sort phases. Zero means 1 << 20 (about 40 MB of 2-D items).
	RunSize int
	// TmpDir hosts the spill files ("" = the OS temporary directory).
	TmpDir string
	// Workers bounds the goroutines the external sort phases use to
	// overlap run sorting and spilling with input streaming. 0 means the
	// tree's Workers setting (Options.Workers). The packed tree is
	// byte-for-byte identical for every setting.
	Workers int
}

// BulkLoadExternal packs the tree with STR from a stream of items,
// keeping memory bounded by ExternalOptions.RunSize regardless of input
// size: items spill to temporary files, the STR sort phases run as
// external merge sorts, and leaves are written as the ordered stream
// arrives. Use it when the data set does not fit in RAM; for in-memory
// slices BulkLoad is faster. 2-D trees only. The tree must be empty.
func (t *Tree) BulkLoadExternal(next func() (Item, bool), opts ExternalOptions) error {
	if t.readonly {
		return ErrReadOnly
	}
	if t.Dims() != 2 {
		return fmt.Errorf("strtree: BulkLoadExternal supports 2-D trees, this tree is %d-D", t.Dims())
	}
	workers := opts.Workers
	if workers == 0 {
		workers = t.inner.Workers()
	}
	packer := pack.STRExternal{RunSize: opts.RunSize, TmpDir: opts.TmpDir, Workers: workers, StatsOut: &t.extSortStats}
	ch := make(chan node.Entry, 256)
	errc := make(chan error, 1)
	go func() {
		defer close(ch)
		errc <- packer.Pack(t.Capacity(),
			func() (node.Entry, bool) {
				it, ok := next()
				if !ok {
					return node.Entry{}, false
				}
				return node.Entry{Rect: it.Rect, Ref: it.ID}, true
			},
			func(e node.Entry) error {
				ch <- e
				return nil
			})
	}()
	loadErr := t.inner.BulkLoadOrdered(func() (node.Entry, bool, error) {
		e, ok := <-ch
		return e, ok, nil
	}, pack.STR{Workers: workers})
	// Drain so the packer goroutine can finish even if loading failed.
	for range ch {
	}
	packErr := <-errc
	if packErr != nil {
		return packErr
	}
	return loadErr
}
