package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"strtree"
)

func writeCSV(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadItems(t *testing.T) {
	path := writeCSV(t, "0.1,0.1,0.2,0.2\n0.5,0.5,0.6,0.6,99\n")
	items, err := readItems(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("read %d items", len(items))
	}
	if items[0].ID != 0 {
		t.Fatalf("default id = %d, want row index 0", items[0].ID)
	}
	if items[1].ID != 99 {
		t.Fatalf("explicit id = %d", items[1].ID)
	}
	if !items[1].Rect.Equal(strtree.R2(0.5, 0.5, 0.6, 0.6)) {
		t.Fatalf("rect = %v", items[1].Rect)
	}
}

func TestReadItemsReordersCorners(t *testing.T) {
	path := writeCSV(t, "0.9,0.9,0.1,0.1\n")
	items, err := readItems(path)
	if err != nil {
		t.Fatal(err)
	}
	if !items[0].Rect.Equal(strtree.R2(0.1, 0.1, 0.9, 0.9)) {
		t.Fatalf("corners not reordered: %v", items[0].Rect)
	}
}

func TestReadItemsErrors(t *testing.T) {
	cases := map[string]string{
		"wrong field count": "1,2,3\n",
		"bad float":         "a,b,c,d\n",
		"bad id":            "0,0,1,1,xyz\n",
		"NaN rect":          "NaN,0,1,1\n",
	}
	for name, content := range cases {
		if _, err := readItems(writeCSV(t, content)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := readItems(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestParseRect(t *testing.T) {
	r, err := parseRect("0.1, 0.2, 0.3, 0.4")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equal(strtree.R2(0.1, 0.2, 0.3, 0.4)) {
		t.Fatalf("parsed %v", r)
	}
	for _, bad := range []string{"1,2,3", "a,b,c,d", ""} {
		if _, err := parseRect(bad); err == nil {
			t.Errorf("parseRect(%q) accepted", bad)
		}
	}
}

func TestBuildQueryStatsEndToEnd(t *testing.T) {
	csvPath := writeCSV(t, "0.1,0.1,0.2,0.2,1\n0.5,0.5,0.6,0.6,2\n0.15,0.15,0.17,0.17,3\n")
	idx := filepath.Join(t.TempDir(), "e2e.str")
	if err := runBuild([]string{"-in", csvPath, "-out", idx, "-pack", "STR", "-cap", "16"}); err != nil {
		t.Fatal(err)
	}
	// Reopen and verify contents through the library.
	tree, err := strtree.Open(idx, strtree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	if tree.Len() != 3 || tree.Capacity() != 16 {
		t.Fatalf("len %d cap %d", tree.Len(), tree.Capacity())
	}
	n, err := tree.Count(strtree.R2(0, 0, 0.3, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("count = %d", n)
	}
	// The subcommand paths run clean (stdout noise is fine in tests).
	if err := runQuery([]string{"-idx", idx, "-rect", "0,0,0.3,0.3"}); err != nil {
		t.Fatal(err)
	}
	if err := runStats([]string{"-idx", idx}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildVerifyFlag(t *testing.T) {
	var rows strings.Builder
	for i := 0; i < 300; i++ {
		x := float64(i%20) / 20
		y := float64(i/20) / 20
		fmt.Fprintf(&rows, "%g,%g,%g,%g,%d\n", x, y, x+0.01, y+0.01, i)
	}
	csvPath := writeCSV(t, rows.String())
	idx := filepath.Join(t.TempDir(), "verified.str")
	if err := runBuild([]string{"-in", csvPath, "-out", idx, "-cap", "8", "-verify"}); err != nil {
		t.Fatal(err)
	}
	if err := runStats([]string{"-idx", idx, "-verify"}); err != nil {
		t.Fatal(err)
	}
}

func TestReadWKTItems(t *testing.T) {
	path := writeCSV(t, "# comment\nPOINT (1 2)\n\n7\tLINESTRING (0 0, 4 4)\nPOLYGON ((0 0, 2 0, 2 2, 0 0))\n")
	items, err := readWKTItems(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 {
		t.Fatalf("parsed %d items", len(items))
	}
	if !items[0].Rect.Equal(strtree.R2(1, 2, 1, 2)) || items[0].ID != 0 {
		t.Fatalf("item 0 = %+v", items[0])
	}
	if !items[1].Rect.Equal(strtree.R2(0, 0, 4, 4)) || items[1].ID != 7 {
		t.Fatalf("item 1 = %+v", items[1])
	}
	if !items[2].Rect.Equal(strtree.R2(0, 0, 2, 2)) {
		t.Fatalf("item 2 = %+v", items[2])
	}
}

func TestReadWKTItemsErrors(t *testing.T) {
	if _, err := readWKTItems(writeCSV(t, "CIRCLE (1 2 3)\n")); err == nil {
		t.Error("unsupported geometry accepted")
	}
	if _, err := readWKTItems(writeCSV(t, "x\tPOINT (1 2)\n")); err == nil {
		t.Error("bad id accepted")
	}
	if _, err := readWKTItems(filepath.Join(t.TempDir(), "missing.wkt")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestBuildFromWKT(t *testing.T) {
	path := writeCSV(t, "POINT (0.1 0.1)\nPOLYGON ((0.4 0.4, 0.6 0.4, 0.6 0.6, 0.4 0.4))\n")
	idx := filepath.Join(t.TempDir(), "wkt.str")
	if err := runBuild([]string{"-wkt", path, "-out", idx}); err != nil {
		t.Fatal(err)
	}
	tree, err := strtree.Open(idx, strtree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	if tree.Len() != 2 {
		t.Fatalf("len = %d", tree.Len())
	}
	n, err := tree.Count(strtree.R2(0.45, 0.45, 0.5, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("count = %d", n)
	}
}

func TestBuildFromGeoJSON(t *testing.T) {
	doc := `{"type":"FeatureCollection","features":[
		{"type":"Feature","id":10,"geometry":{"type":"Point","coordinates":[0.1,0.1]},"properties":{}},
		{"type":"Feature","id":20,"geometry":{"type":"Polygon","coordinates":[[[0.4,0.4],[0.6,0.4],[0.6,0.6],[0.4,0.4]]]},"properties":{}}
	]}`
	path := writeCSV(t, doc)
	idx := filepath.Join(t.TempDir(), "gj.str")
	if err := runBuild([]string{"-geojson", path, "-out", idx}); err != nil {
		t.Fatal(err)
	}
	tree, err := strtree.Open(idx, strtree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	if tree.Len() != 2 {
		t.Fatalf("len = %d", tree.Len())
	}
	found := false
	if err := tree.SearchPoint(strtree.Pt2(0.5, 0.45), func(it strtree.Item) bool {
		found = it.ID == 20
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("polygon feature not found by id")
	}
	// Two inputs at once rejected.
	if err := runBuild([]string{"-geojson", path, "-in", path, "-out", idx}); err == nil {
		t.Fatal("two inputs accepted")
	}
}

func TestBuildExternalFromCSV(t *testing.T) {
	// A small external build exercising the bounded-memory path.
	var sb strings.Builder
	for i := 0; i < 500; i++ {
		x := float64(i%25) / 25
		y := float64(i/25) / 25
		fmt.Fprintf(&sb, "%g,%g,%g,%g\n", x, y, x+0.01, y+0.01)
	}
	csvPath := writeCSV(t, sb.String())
	idx := filepath.Join(t.TempDir(), "ext.str")
	if err := runBuild([]string{"-in", csvPath, "-out", idx, "-external", "-runsize", "64", "-cap", "20"}); err != nil {
		t.Fatal(err)
	}
	tree, err := strtree.Open(idx, strtree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	if tree.Len() != 500 {
		t.Fatalf("len = %d", tree.Len())
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunBuildErrors(t *testing.T) {
	if err := runBuild([]string{"-out", filepath.Join(t.TempDir(), "x.str")}); err == nil {
		t.Error("missing -in accepted")
	}
	csvPath := writeCSV(t, "0,0,1,1\n")
	if err := runBuild([]string{"-in", csvPath, "-out", filepath.Join(t.TempDir(), "x.str"), "-pack", "BOGUS"}); err == nil {
		t.Error("bogus packing accepted")
	}
}

func TestMutateEndToEnd(t *testing.T) {
	var rows strings.Builder
	for i := 0; i < 400; i++ {
		x := float64(i%20) / 20
		y := float64(i/20) / 20
		fmt.Fprintf(&rows, "%g,%g,%g,%g,%d\n", x, y, x+0.01, y+0.01, i)
	}
	csvPath := writeCSV(t, rows.String())
	idx := filepath.Join(t.TempDir(), "mutated.str")
	if err := runBuild([]string{"-in", csvPath, "-out", idx, "-cap", "16"}); err != nil {
		t.Fatal(err)
	}
	if err := runMutate([]string{"-idx", idx, "-ops", "300", "-seed", "7", "-verify"}); err != nil {
		t.Fatal(err)
	}
	// The mutated file must reopen as a structurally sound tree whose
	// length matches the seeded op accounting (runMutate already checked
	// Len against its live list before flushing).
	tree, err := strtree.Open(idx, strtree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer tree.Close()
	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("reopened mutated index: %v", err)
	}
	if err := runStats([]string{"-idx", idx, "-verify"}); err != nil {
		t.Fatal(err)
	}
}

func TestMutateDrainsToEmpty(t *testing.T) {
	csvPath := writeCSV(t, "0.1,0.1,0.2,0.2,1\n0.5,0.5,0.6,0.6,2\n")
	idx := filepath.Join(t.TempDir(), "drain.str")
	if err := runBuild([]string{"-in", csvPath, "-out", idx}); err != nil {
		t.Fatal(err)
	}
	// p-insert 0 deletes a live item every op until none remain; with
	// exactly as many ops as items the index must end empty — after
	// which runMutate's insert branch is the only choice left, so one
	// more run regrows it from the degenerate empty-bounds fallback.
	if err := runMutate([]string{"-idx", idx, "-ops", "2", "-p-insert", "0", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
	tree, err := strtree.Open(idx, strtree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 0 {
		t.Fatalf("drained index holds %d items", tree.Len())
	}
	tree.Close()
	if err := runMutate([]string{"-idx", idx, "-ops", "5", "-seed", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMutateErrors(t *testing.T) {
	if err := runMutate([]string{"-idx", filepath.Join(t.TempDir(), "nope.str")}); err == nil {
		t.Error("missing index accepted")
	}
	if err := runMutate([]string{"-idx", "whatever.str", "-ops", "0"}); err == nil {
		t.Error("zero ops accepted")
	}
}

func TestRunQueryErrors(t *testing.T) {
	if err := runQuery([]string{"-idx", "nope.str"}); err == nil {
		t.Error("missing -rect accepted")
	}
	if err := runQuery([]string{"-idx", filepath.Join(t.TempDir(), "nope.str"), "-rect", "0,0,1,1"}); err == nil {
		t.Error("missing index accepted")
	}
}
