package main

import (
	"path/filepath"
	"testing"

	"strtree"
	"strtree/internal/geom"
	"strtree/internal/router/shardmap"
)

func TestShardIndexName(t *testing.T) {
	cases := []struct{ out, want string }{
		{"index.str", "index.shard2.str"},
		{"/data/idx/world.str", "world.shard2.str"},
		{"bare", "bare.shard2.str"},
		{"a.b.idx", "a.b.shard2.idx"},
	}
	for _, tc := range cases {
		if got := shardIndexName(tc.out, 2); got != tc.want {
			t.Errorf("shardIndexName(%q, 2) = %q, want %q", tc.out, got, tc.want)
		}
	}
}

// TestBuildShards runs the partitioned build end to end in a temp dir:
// the manifest must validate, every shard index must open with the
// manifest's count, and the shard counts must cover the input exactly.
func TestBuildShards(t *testing.T) {
	items := make([]strtree.Item, 900)
	for i := range items {
		x := float64(i%30) / 30
		y := float64(i/30) / 30
		items[i] = strtree.Item{Rect: geom.R2(x, y, x+0.02, y+0.02), ID: uint64(i)}
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "index.str")
	if err := buildShards(items, out, 3, 16, 1, true); err != nil {
		t.Fatal(err)
	}

	manifest := filepath.Join(dir, "shards.json")
	m, err := shardmap.Load(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Shards) != 3 || m.Dims != 2 {
		t.Fatalf("manifest: %d shards, %d dims", len(m.Shards), m.Dims)
	}
	total := 0
	for i, s := range m.Shards {
		tree, err := strtree.Open(m.IndexPath(manifest, i), strtree.Options{BufferPages: 32})
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if tree.Len() != s.Count {
			t.Errorf("shard %d: index holds %d items, manifest says %d", i, tree.Len(), s.Count)
		}
		// Every item in the shard must sit inside the manifest MBR.
		mbr := s.MBR.Rect()
		n, err := tree.Count(mbr)
		if err != nil {
			t.Fatal(err)
		}
		if n != tree.Len() {
			t.Errorf("shard %d: MBR contains %d of %d items", i, n, tree.Len())
		}
		total += tree.Len()
		if err := tree.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if total != len(items) {
		t.Errorf("shards hold %d items, input had %d", total, len(items))
	}
}

func TestBuildShardsEdgeCounts(t *testing.T) {
	// More shards than items clamps to one shard per item (the documented
	// STRPartition behavior); the manifest records what was actually built.
	items := []strtree.Item{{Rect: geom.R2(0, 0, 1, 1), ID: 1}}
	dir := t.TempDir()
	if err := buildShards(items, filepath.Join(dir, "index.str"), 5, 16, 1, false); err != nil {
		t.Fatal(err)
	}
	m, err := shardmap.Load(filepath.Join(dir, "shards.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Shards) != 1 {
		t.Errorf("1 item across 5 requested shards built %d shards, want 1", len(m.Shards))
	}

	if err := buildShards(nil, filepath.Join(t.TempDir(), "index.str"), 2, 16, 1, false); err == nil {
		t.Error("empty input accepted")
	}
}
