package main

// This file is `strload build -shards N`: the dataset-level STR
// partition. The items are reordered into STR tiling order and cut into
// N contiguous slabs (internal/router/shardmap over internal/pack); each
// slab becomes its own index file, and a shards.json manifest records
// every shard's MBR, count and index file so strserve (-map/-shard) can
// serve one shard and strrouter can prune fan-out by MBR overlap.

import (
	"fmt"
	"path/filepath"
	"strings"

	"strtree"
	"strtree/internal/node"
	"strtree/internal/router/shardmap"
)

// shardIndexName is shard i's index file name for a given -out: the out
// path's stem plus ".shard<i>" plus the original extension, e.g.
// index.str -> index.shard0.str.
func shardIndexName(out string, i int) string {
	base := filepath.Base(out)
	ext := filepath.Ext(base)
	stem := strings.TrimSuffix(base, ext)
	if ext == "" {
		ext = ".str"
	}
	return fmt.Sprintf("%s.shard%d%s", stem, i, ext)
}

// buildShards partitions items into shards spatial slabs and builds one
// packed index per slab next to out, plus the shards.json manifest in
// out's directory. Addrs are left empty: the deployment decides which
// server holds which shard (strrouter -backends fills them in, or the
// manifest is edited in place).
func buildShards(items []strtree.Item, out string, shards, capacity, workers int, verify bool) error {
	entries := make([]node.Entry, len(items))
	for i, it := range items {
		entries[i] = node.Entry{Rect: it.Rect, Ref: uint64(i)}
	}
	m, parts, err := shardmap.Partition(entries, shards, workers)
	if err != nil {
		return err
	}
	dir := filepath.Dir(out)
	total := 0
	for i, part := range parts {
		name := shardIndexName(out, i)
		m.Shards[i].Index = name
		sub := make([]strtree.Item, len(part))
		for j, e := range part {
			sub[j] = items[e.Ref]
		}
		path := filepath.Join(dir, name)
		tree, err := strtree.Create(path, strtree.Options{Capacity: capacity, Workers: workers})
		if err != nil {
			return err
		}
		if err := tree.BulkLoad(sub, strtree.PackSTR); err != nil {
			_ = tree.Close()
			return fmt.Errorf("shard %d: %w", i, err)
		}
		if verify {
			if err := tree.CheckPackedInvariants(); err != nil {
				_ = tree.Close()
				return fmt.Errorf("shard %d: verification failed: %w", i, err)
			}
		}
		h := tree.Height()
		n := tree.Len()
		if err := tree.Close(); err != nil {
			return err
		}
		total += n
		fmt.Printf("built %s: shard %d/%d, %d items, height %d, mbr %v\n",
			path, i, len(parts), n, h, m.Shards[i].MBR.Rect())
	}
	manifest := filepath.Join(dir, "shards.json")
	if err := m.Save(manifest); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d shards, %d items total", manifest, len(parts), total)
	if verify {
		fmt.Print(", invariants verified")
	}
	fmt.Println()
	return nil
}
