// Command strload builds and queries persistent STR-tree index files from
// CSV rectangle data.
//
// Usage:
//
//	strload build -in rects.csv -out index.str [-pack STR|HS|NX] [-cap 100] [-workers N] [-metrics]
//	strload build -in rects.csv -out index.str -shards 3
//	strload query -idx index.str -rect x0,y0,x1,y1 [-buffer 256]
//	strload stats -idx index.str
//	strload mutate -idx index.str [-ops 1000] [-seed 1] [-verify]
//
// The CSV rows are "x0,y0,x1,y1[,id]"; a missing id defaults to the row
// number. Query prints one matching item per line (id and rectangle)
// followed by the disk-access count for the query. -metrics appends an
// end-of-build JSON report with phase times, the write-behind queue's
// high-water mark, external-sort spill counts and buffer I/O counters.
// -shards N STR-partitions the dataset into N spatial slabs, builds one
// index file per slab and writes a shards.json manifest for the
// multi-node pipeline (strserve -map/-shard behind strrouter). Mutate is
// the dynamic write path's smoke: it applies a seeded random insert/
// delete sequence to the index in place (replayable by seed), verifies
// the structural invariants, and prints how many ops took the in-place
// page-patch path versus the structural split/condense path.
package main

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"strtree"
	"strtree/internal/geojson"
	"strtree/internal/wkt"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = runBuild(os.Args[2:])
	case "query":
		err = runQuery(os.Args[2:])
	case "stats":
		err = runStats(os.Args[2:])
	case "mutate":
		err = runMutate(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "strload: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: strload build|query|stats|mutate [flags]")
	os.Exit(2)
}

func runBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	in := fs.String("in", "", "input CSV of rectangles (x0,y0,x1,y1[,id])")
	wktIn := fs.String("wkt", "", "input file of WKT geometries, one per line (optional leading \"id<TAB>\")")
	geojsonIn := fs.String("geojson", "", "input GeoJSON file (FeatureCollection, Feature, or Geometry)")
	out := fs.String("out", "index.str", "output index file")
	packName := fs.String("pack", "STR", "packing algorithm: STR, HS, NX")
	capacity := fs.Int("cap", 100, "node capacity (entries per page)")
	external := fs.Bool("external", false, "bounded-memory STR build (for inputs larger than RAM; STR only)")
	runSize := fs.Int("runsize", 1<<20, "max items in memory during an -external build")
	workers := fs.Int("workers", 0, "goroutines for the build's sort and page-write phases (0 = GOMAXPROCS); the index bytes are identical for every value")
	verify := fs.Bool("verify", false, "after building, re-walk the index and check every structural invariant (balance, MBR tightness, packed fill, page round-trips)")
	metricsOut := fs.Bool("metrics", false, "print an end-of-build JSON metrics report (phase times, pages, write-behind queue peak, external-sort spills, I/O counters)")
	shards := fs.Int("shards", 0, "split the dataset into N spatial shards by STR slab partitioning: writes one index file per shard plus a shards.json manifest for strserve -map and strrouter (STR packing, in-memory build only)")
	fs.Parse(args)
	inputs := 0
	for _, s := range []string{*in, *wktIn, *geojsonIn} {
		if s != "" {
			inputs++
		}
	}
	if inputs != 1 {
		return fmt.Errorf("build: exactly one of -in, -wkt or -geojson is required")
	}
	if *external && *in == "" {
		return fmt.Errorf("build: -external works with -in CSV input only")
	}

	var packing strtree.Packing
	switch strings.ToUpper(*packName) {
	case "STR":
		packing = strtree.PackSTR
	case "HS":
		packing = strtree.PackHilbert
	case "NX":
		packing = strtree.PackNearestX
	default:
		return fmt.Errorf("build: unknown packing %q", *packName)
	}
	if *external && packing != strtree.PackSTR {
		return fmt.Errorf("build: -external supports only STR packing")
	}
	if *shards > 0 {
		if *external {
			return fmt.Errorf("build: -shards requires an in-memory build (drop -external)")
		}
		if packing != strtree.PackSTR {
			return fmt.Errorf("build: -shards uses STR slab partitioning; only -pack STR is supported")
		}
		var items []strtree.Item
		var err error
		switch {
		case *wktIn != "":
			items, err = readWKTItems(*wktIn)
		case *geojsonIn != "":
			items, err = readGeoJSONItems(*geojsonIn)
		default:
			items, err = readItems(*in)
		}
		if err != nil {
			return err
		}
		return buildShards(items, *out, *shards, *capacity, *workers, *verify)
	}

	tree, err := strtree.Create(*out, strtree.Options{Capacity: *capacity, Workers: *workers})
	if err != nil {
		return err
	}
	if *external {
		src, closeSrc, srcErr, err := streamItems(*in)
		if err != nil {
			tree.Close()
			return err
		}
		err = tree.BulkLoadExternal(src, strtree.ExternalOptions{RunSize: *runSize})
		closeSrc()
		if err == nil {
			err = srcErr() // surface a CSV read error that ended the stream early
		}
		if err != nil {
			tree.Close()
			return err
		}
	} else {
		var items []strtree.Item
		var err error
		switch {
		case *wktIn != "":
			items, err = readWKTItems(*wktIn)
		case *geojsonIn != "":
			items, err = readGeoJSONItems(*geojsonIn)
		default:
			items, err = readItems(*in)
		}
		if err != nil {
			tree.Close()
			return err
		}
		if err := tree.BulkLoad(items, packing); err != nil {
			tree.Close()
			return err
		}
	}
	if *verify {
		if err := tree.CheckPackedInvariants(); err != nil {
			tree.Close()
			return fmt.Errorf("build: verification failed: %w", err)
		}
	}
	h := tree.Height()
	n := tree.Len()
	report := buildReport(tree, n, h, packing, *external)
	if err := tree.Close(); err != nil {
		return err
	}
	fmt.Printf("built %s: %d items, height %d, packing %s", *out, n, h, packing)
	if *verify {
		fmt.Print(", invariants verified")
	}
	fmt.Println()
	if *metricsOut {
		enc, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(enc))
	}
	return nil
}

// buildMetrics is the -metrics JSON report: what the observability layer
// sees of one build — phase times, write-behind pressure, external-sort
// spills, and the buffer's I/O counters. Durations are in seconds to
// match the serving layer's Prometheus convention.
type buildMetrics struct {
	Items   int    `json:"items"`
	Height  int    `json:"height"`
	Packing string `json:"packing"`
	Build   struct {
		OrderSeconds   float64 `json:"order_seconds"`
		WriteSeconds   float64 `json:"write_seconds"`
		Pages          int     `json:"pages"`
		WriteQueuePeak int     `json:"write_queue_peak"`
	} `json:"build"`
	ExtSort *struct {
		Sorts         uint64 `json:"sorts"`
		EntriesSorted uint64 `json:"entries_sorted"`
		RunsSpilled   uint64 `json:"runs_spilled"`
		Merges        uint64 `json:"merges"`
	} `json:"extsort,omitempty"`
	IO struct {
		LogicalReads int64 `json:"logical_reads"`
		DiskReads    int64 `json:"disk_reads"`
		DiskWrites   int64 `json:"disk_writes"`
		Evictions    int64 `json:"evictions"`
	} `json:"io"`
}

// buildReport snapshots the tree's build statistics; it must run before
// Close invalidates the handle.
func buildReport(tree *strtree.Tree, n, h int, packing strtree.Packing, external bool) buildMetrics {
	var m buildMetrics
	m.Items = n
	m.Height = h
	m.Packing = packing.String()
	bs := tree.LastBuildStats()
	m.Build.OrderSeconds = bs.Order.Seconds()
	m.Build.WriteSeconds = bs.Write.Seconds()
	m.Build.Pages = bs.Pages
	m.Build.WriteQueuePeak = bs.QueuePeak
	if external {
		es := tree.LastExternalSortStats()
		m.ExtSort = &struct {
			Sorts         uint64 `json:"sorts"`
			EntriesSorted uint64 `json:"entries_sorted"`
			RunsSpilled   uint64 `json:"runs_spilled"`
			Merges        uint64 `json:"merges"`
		}{es.Sorts, es.EntriesSorted, es.RunsSpilled, es.Merges}
	}
	io := tree.Stats()
	m.IO.LogicalReads = io.LogicalReads
	m.IO.DiskReads = io.DiskReads
	m.IO.DiskWrites = io.DiskWrites
	m.IO.Evictions = io.Evictions
	return m
}

func runQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	idx := fs.String("idx", "index.str", "index file")
	rect := fs.String("rect", "", "query rectangle x0,y0,x1,y1")
	bufPages := fs.Int("buffer", 256, "buffer pool pages")
	fs.Parse(args)
	if *rect == "" {
		return fmt.Errorf("query: -rect is required")
	}
	q, err := parseRect(*rect)
	if err != nil {
		return err
	}

	tree, err := strtree.Open(*idx, strtree.Options{BufferPages: *bufPages})
	if err != nil {
		return err
	}
	defer tree.Close()
	tree.ResetStats()
	n := 0
	err = tree.Search(q, func(it strtree.Item) bool {
		fmt.Printf("%d\t%v\n", it.ID, it.Rect)
		n++
		return true
	})
	if err != nil {
		return err
	}
	s := tree.Stats()
	fmt.Printf("# %d results, %d disk accesses (%d page requests)\n", n, s.DiskReads, s.LogicalReads)
	return nil
}

func runStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	idx := fs.String("idx", "index.str", "index file")
	verify := fs.Bool("verify", false, "also re-walk the index and check the universal structural invariants (an index mutated since its build may legitimately fail the packed fill factor, so that check is skipped here)")
	fs.Parse(args)
	tree, err := strtree.Open(*idx, strtree.Options{})
	if err != nil {
		return err
	}
	defer tree.Close()
	if *verify {
		if err := tree.CheckInvariants(); err != nil {
			return fmt.Errorf("stats: verification failed: %w", err)
		}
		fmt.Println("invariants:      ok")
	}
	m, err := tree.Metrics()
	if err != nil {
		return err
	}
	fmt.Printf("items:           %d\n", tree.Len())
	fmt.Printf("height:          %d\n", tree.Height())
	fmt.Printf("capacity:        %d entries/node\n", tree.Capacity())
	fmt.Printf("nodes:           %d (%d leaves)\n", m.Nodes, m.LeafNodes)
	fmt.Printf("leaf area:       %.4f\n", m.LeafArea)
	fmt.Printf("leaf perimeter:  %.4f\n", m.LeafPerimeter)
	fmt.Printf("total area:      %.4f\n", m.TotalArea)
	fmt.Printf("total perimeter: %.4f\n", m.TotalPerimeter)
	return nil
}

// runMutate applies a seeded random insert/delete sequence to an index
// in place — the dynamic write path's command-line smoke. The sequence
// is fully determined by -seed, so a failure replays exactly.
func runMutate(args []string) error {
	fs := flag.NewFlagSet("mutate", flag.ExitOnError)
	idx := fs.String("idx", "index.str", "index file (mutated in place)")
	ops := fs.Int("ops", 1000, "mutation ops to apply")
	seed := fs.Int64("seed", 1, "op-sequence seed; the same seed replays the same sequence")
	pInsert := fs.Float64("p-insert", 0.5, "probability an op is an insert (deletes pick a random live item)")
	bufPages := fs.Int("buffer", 256, "buffer pool pages")
	verify := fs.Bool("verify", false, "re-check every structural invariant after every op (slow) instead of once at the end")
	fs.Parse(args)
	if *ops < 1 {
		return fmt.Errorf("mutate: -ops must be positive")
	}

	tree, err := strtree.Open(*idx, strtree.Options{BufferPages: *bufPages})
	if err != nil {
		return err
	}
	defer tree.Close()

	// The live-item list doubles as the delete pool and keeps inserted
	// IDs unique above everything already in the index.
	live, err := tree.Items()
	if err != nil {
		return err
	}
	nextID := uint64(1)
	for _, it := range live {
		if it.ID >= nextID {
			nextID = it.ID + 1
		}
	}
	bounds, ok, err := tree.Bounds()
	if err != nil {
		return err
	}
	if !ok {
		bounds = strtree.R2(0, 0, 1, 1)
	}

	rng := rand.New(rand.NewSource(*seed))
	randRect := func() strtree.Rect {
		min := make(strtree.Point, tree.Dims())
		max := make(strtree.Point, tree.Dims())
		for d := range min {
			span := bounds.Max[d] - bounds.Min[d]
			if span <= 0 {
				span = 1
			}
			lo := bounds.Min[d] + rng.Float64()*span
			min[d], max[d] = lo, lo+rng.Float64()*span/20
		}
		return strtree.Rect{Min: min, Max: max}
	}

	inserts, deletes := 0, 0
	for op := 0; op < *ops; op++ {
		if len(live) == 0 || rng.Float64() < *pInsert {
			it := strtree.Item{Rect: randRect(), ID: nextID}
			nextID++
			if err := tree.Insert(it.Rect, it.ID); err != nil {
				return fmt.Errorf("mutate: op %d: insert: %w", op, err)
			}
			live = append(live, it)
			inserts++
		} else {
			i := rng.Intn(len(live))
			it := live[i]
			found, err := tree.Delete(it.Rect, it.ID)
			if err != nil {
				return fmt.Errorf("mutate: op %d: delete: %w", op, err)
			}
			if !found {
				return fmt.Errorf("mutate: op %d: live item id %d not found — index corrupt", op, it.ID)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			deletes++
		}
		if *verify {
			if err := tree.CheckInvariants(); err != nil {
				return fmt.Errorf("mutate: op %d: invariants violated: %w", op, err)
			}
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		return fmt.Errorf("mutate: final invariant check failed: %w", err)
	}
	if tree.Len() != len(live) {
		return fmt.Errorf("mutate: tree holds %d items, op accounting says %d", tree.Len(), len(live))
	}
	if err := tree.Flush(); err != nil {
		return err
	}
	ms := tree.MutatePathStats()
	fmt.Printf("mutated %s: %d inserts, %d deletes (seed %d), %d items, height %d\n",
		*idx, inserts, deletes, *seed, tree.Len(), tree.Height())
	fmt.Printf("write path: %d in-place / %d structural inserts, %d in-place / %d structural deletes\n",
		ms.InPlaceInserts, ms.StructuralInserts, ms.InPlaceDeletes, ms.StructuralDeletes)
	fmt.Println("invariants:  ok")
	return nil
}

// readGeoJSONItems parses a GeoJSON document into indexable items.
func readGeoJSONItems(path string) ([]strtree.Item, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	features, err := geojson.Collection(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	items := make([]strtree.Item, len(features))
	for i, f := range features {
		items[i] = strtree.Item{Rect: f.Rect, ID: f.ID}
	}
	return items, nil
}

// readWKTItems parses a file of WKT geometries, one per line, optionally
// prefixed with "id<TAB>". Blank lines and lines starting with '#' are
// skipped; each geometry is indexed by its minimum bounding rectangle.
func readWKTItems(path string) ([]strtree.Item, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var items []strtree.Item
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24) // polygons can be long
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		id := uint64(len(items))
		body := line
		if tab := strings.IndexByte(line, '\t'); tab >= 0 {
			parsed, err := strconv.ParseUint(strings.TrimSpace(line[:tab]), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%s line %d: id: %w", path, lineNo, err)
			}
			id = parsed
			body = line[tab+1:]
		}
		mbr, err := wkt.MBR(body)
		if err != nil {
			return nil, fmt.Errorf("%s line %d: %w", path, lineNo, err)
		}
		items = append(items, strtree.Item{Rect: mbr, ID: id})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return items, nil
}

// streamItems opens the CSV and returns a pull source for it, so an
// external build never holds the whole file in memory. Malformed rows are
// skipped with a warning; a reader error ends the stream and is surfaced
// through srcErr so the caller fails the build instead of silently
// indexing a truncated file.
func streamItems(path string) (src func() (strtree.Item, bool), closeFn func(), srcErr func() error, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, nil, err
	}
	r := csv.NewReader(f)
	r.FieldsPerRecord = -1
	row := 0
	var readErr error
	src = func() (strtree.Item, bool) {
		for {
			rec, err := r.Read()
			if err == io.EOF {
				return strtree.Item{}, false
			}
			if err != nil {
				readErr = fmt.Errorf("%s: %w", path, err)
				return strtree.Item{}, false
			}
			row++
			it, perr := parseItem(rec, row)
			if perr != nil {
				fmt.Fprintf(os.Stderr, "strload: %s row %d skipped: %v\n", path, row, perr)
				continue
			}
			return it, true
		}
	}
	return src, func() { f.Close() }, func() error { return readErr }, nil
}

// parseItem converts one CSV record into an item.
func parseItem(rec []string, row int) (strtree.Item, error) {
	if len(rec) != 4 && len(rec) != 5 {
		return strtree.Item{}, fmt.Errorf("want 4 or 5 fields, got %d", len(rec))
	}
	var v [4]float64
	for i := 0; i < 4; i++ {
		f, err := strconv.ParseFloat(strings.TrimSpace(rec[i]), 64)
		if err != nil {
			return strtree.Item{}, fmt.Errorf("field %d: %w", i+1, err)
		}
		v[i] = f
	}
	id := uint64(row - 1)
	if len(rec) == 5 {
		parsed, err := strconv.ParseUint(strings.TrimSpace(rec[4]), 10, 64)
		if err != nil {
			return strtree.Item{}, fmt.Errorf("id: %w", err)
		}
		id = parsed
	}
	rect, err := strtree.NewRect(strtree.Pt2(v[0], v[1]), strtree.Pt2(v[2], v[3]))
	if err != nil {
		return strtree.Item{}, err
	}
	return strtree.Item{Rect: rect, ID: id}, nil
}

// readItems parses the CSV rectangle file.
func readItems(path string) ([]strtree.Item, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.FieldsPerRecord = -1
	var items []strtree.Item
	row := 0
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		row++
		it, err := parseItem(rec, row)
		if err != nil {
			return nil, fmt.Errorf("%s row %d: %w", path, row, err)
		}
		items = append(items, it)
	}
	return items, nil
}

func parseRect(s string) (strtree.Rect, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return strtree.Rect{}, fmt.Errorf("rect %q: want x0,y0,x1,y1", s)
	}
	var v [4]float64
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return strtree.Rect{}, fmt.Errorf("rect %q: %w", s, err)
		}
		v[i] = f
	}
	return strtree.NewRect(strtree.Pt2(v[0], v[1]), strtree.Pt2(v[2], v[3]))
}
