package main

import (
	"path/filepath"
	"testing"

	"strtree/internal/router/shardmap"
)

func writeManifest(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	m := &shardmap.Map{
		Version: shardmap.FormatVersion,
		Dims:    2,
		Shards: []shardmap.Shard{
			{ID: 0, MBR: shardmap.RectJSON{Min: []float64{0, 0}, Max: []float64{0.5, 1}}, Count: 1, Index: "index.shard0.str"},
			{ID: 1, MBR: shardmap.RectJSON{Min: []float64{0.5, 0}, Max: []float64{1, 1}}, Count: 1},
		},
	}
	path := filepath.Join(dir, "shards.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestResolveShardIndex(t *testing.T) {
	manifest := writeManifest(t)

	// -idx wins over the manifest.
	got, err := resolveShardIndex(manifest, 0, "explicit.str")
	if err != nil || got != "explicit.str" {
		t.Errorf("explicit idx: %q, %v", got, err)
	}

	// Shard 0 resolves to its index file next to the manifest.
	got, err = resolveShardIndex(manifest, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(filepath.Dir(manifest), "index.shard0.str"); got != want {
		t.Errorf("resolved %q, want %q", got, want)
	}

	// Out-of-range and index-less shards are errors.
	if _, err := resolveShardIndex(manifest, 2, ""); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if _, err := resolveShardIndex(manifest, -1, ""); err == nil {
		t.Error("negative shard accepted")
	}
	if _, err := resolveShardIndex(manifest, 1, ""); err == nil {
		t.Error("shard without an index file accepted")
	}
	if _, err := resolveShardIndex(filepath.Join(t.TempDir(), "nosuch.json"), 0, ""); err == nil {
		t.Error("missing manifest accepted")
	}
}

func TestParseRect(t *testing.T) {
	r, err := parseRect("0.1, 0.2,0.3,0.4")
	if err != nil {
		t.Fatal(err)
	}
	if r.Min[0] != 0.1 || r.Max[1] != 0.4 {
		t.Errorf("parsed %v", r)
	}
	for _, bad := range []string{"", "1,2,3", "a,b,c,d", "0,0,1"} {
		if _, err := parseRect(bad); err == nil {
			t.Errorf("parseRect(%q) accepted", bad)
		}
	}
}
