// Command strserve serves queries against a packed STR-tree index file
// over TCP, using the wire protocol in internal/server/wire.
//
// Usage:
//
//	strserve -idx index.str [-addr :7070] [-buffer 256] [-shards 8]
//	         [-max-inflight 64] [-timeout 5s] [-drain-timeout 10s]
//	         [-admin 127.0.0.1:9090] [-slowlog 250ms] [-drain-grace 2s]
//	         [-slowlog-json slow.jsonl]
//	strserve -map shards.json -shard 0 [flags as above]
//	strserve -query x0,y0,x1,y1 [-addr host:7070]
//	strserve -count x0,y0,x1,y1 [-addr host:7070]
//	strserve -stats [-addr host:7070]
//	strserve -selftest [-clients 32] [-queries 200] [-size 20000]
//	         [-admin 127.0.0.1:0]
//
// The serving mode runs until SIGTERM or SIGINT, then drains gracefully:
// it flips the admin health check to 503, waits -drain-grace so load
// balancers stop routing here, stops accepting connections, refuses new
// requests, finishes in-flight queries under -drain-timeout, and closes
// the index. -query, -count and -stats are one-shot clients against a
// running server (used by CI's loopback smoke test). -selftest runs an
// in-process server-plus-clients load harness and reports throughput and
// latency percentiles.
//
// -admin binds an operational HTTP endpoint serving Prometheus /metrics,
// a JSON /stats mirror, the drain-aware /healthz and /debug/pprof. Bind
// it to loopback or a trusted network only — the profiles and stats are
// internals. -slowlog logs every request at or over the threshold with
// its op, duration and result count; -slowlog-json additionally appends
// each one as a JSON line that strbench -replay can re-execute.
//
// -map/-shard serve one shard of a partitioned build (strload build
// -shards N): the index path is resolved from the manifest, so the same
// manifest drives the backends and the strrouter fan-out proxy.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"strtree"
	"strtree/internal/router/shardmap"
	"strtree/internal/server"
)

func main() {
	var (
		idx          = flag.String("idx", "", "index file to serve")
		addr         = flag.String("addr", "127.0.0.1:7070", "listen (or connect) address")
		bufPages     = flag.Int("buffer", 256, "buffer pool pages")
		shards       = flag.Int("shards", 8, "buffer pool shards (1 = single deterministic LRU)")
		maxInFlight  = flag.Int("max-inflight", 64, "admission cap on concurrently executing requests")
		timeout      = flag.Duration("timeout", 5*time.Second, "default per-request deadline")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "grace period for in-flight requests on shutdown")
		adminAddr    = flag.String("admin", "", "admin HTTP endpoint (/metrics, /stats, /healthz, /debug/pprof); empty disables; bind to loopback")
		slowlog      = flag.Duration("slowlog", 0, "log requests at or over this duration (0 disables)")
		slowlogJSON  = flag.String("slowlog-json", "", "append slow queries as JSON lines to this file (one object per query; requires -slowlog > 0); strbench -replay re-executes the capture")
		drainGrace   = flag.Duration("drain-grace", 0, "delay between flipping /healthz to 503 and starting the drain")
		mapPath      = flag.String("map", "", "shards.json manifest written by strload build -shards; -shard selects which entry to serve")
		shardID      = flag.Int("shard", -1, "shard number to serve from the -map manifest")
		mutable      = flag.Bool("mutable", false, "accept insert/delete ops over the wire; mutations serialize behind a write lock")

		queryRect  = flag.String("query", "", "one-shot client: search rectangle x0,y0,x1,y1")
		countRect  = flag.String("count", "", "one-shot client: count matches of rectangle x0,y0,x1,y1")
		stats      = flag.Bool("stats", false, "one-shot client: print server stats")
		insertSpec = flag.String("insert", "", "one-shot client: insert item x0,y0,x1,y1:id (server must run -mutable)")
		deleteSpec = flag.String("delete", "", "one-shot client: delete item x0,y0,x1,y1:id, exact match (server must run -mutable)")

		selftest = flag.Bool("selftest", false, "run the in-process load harness and exit")
		clients  = flag.Int("clients", 32, "selftest: concurrent clients")
		queries  = flag.Int("queries", 200, "selftest: queries per client")
		size     = flag.Int("size", 20000, "selftest: indexed items")
		seed     = flag.Int64("seed", 1, "selftest: data and workload seed")
	)
	flag.Parse()

	var err error
	switch {
	case *selftest:
		err = server.Selftest(os.Stdout, server.SelftestConfig{
			Clients:          *clients,
			QueriesPerClient: *queries,
			Size:             *size,
			Shards:           *shards,
			Seed:             *seed,
			AdminAddr:        *adminAddr,
		})
	case *queryRect != "":
		err = runClientQuery(*addr, *queryRect, false)
	case *countRect != "":
		err = runClientQuery(*addr, *countRect, true)
	case *stats:
		err = runClientStats(*addr)
	case *insertSpec != "":
		err = runClientMutate(*addr, *insertSpec, false)
	case *deleteSpec != "":
		err = runClientMutate(*addr, *deleteSpec, true)
	case *idx != "" || *mapPath != "":
		target := *idx
		if *mapPath != "" {
			target, err = resolveShardIndex(*mapPath, *shardID, *idx)
		}
		if err == nil {
			err = serve(target, *addr, serveConfig{
				bufPages:     *bufPages,
				shards:       *shards,
				maxInFlight:  *maxInFlight,
				timeout:      *timeout,
				drainTimeout: *drainTimeout,
				adminAddr:    *adminAddr,
				slowlog:      *slowlog,
				slowlogJSON:  *slowlogJSON,
				drainGrace:   *drainGrace,
				mutable:      *mutable,
			})
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: strserve -idx index.str | -query rect | -count rect | -stats | -selftest")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "strserve: %v\n", err)
		os.Exit(1)
	}
}

type serveConfig struct {
	bufPages     int
	shards       int
	maxInFlight  int
	timeout      time.Duration
	drainTimeout time.Duration
	adminAddr    string
	slowlog      time.Duration
	slowlogJSON  string
	drainGrace   time.Duration
	mutable      bool
}

// resolveShardIndex maps -map/-shard to the shard's index file. An
// explicit -idx wins (the manifest then only documents the topology).
func resolveShardIndex(mapPath string, shardID int, idx string) (string, error) {
	if idx != "" {
		return idx, nil
	}
	m, err := shardmap.Load(mapPath)
	if err != nil {
		return "", err
	}
	if shardID < 0 || shardID >= len(m.Shards) {
		return "", fmt.Errorf("-shard %d out of range: manifest has %d shards", shardID, len(m.Shards))
	}
	if m.Shards[shardID].Index == "" {
		return "", fmt.Errorf("shard %d has no index file in %s", shardID, mapPath)
	}
	return m.IndexPath(mapPath, shardID), nil
}

// serve opens the index read-only-shaped (queries only) and runs the
// server until a termination signal starts the drain.
func serve(idx, addr string, cfg serveConfig) error {
	tree, err := strtree.Open(idx, strtree.Options{
		BufferPages:  cfg.bufPages,
		BufferShards: cfg.shards,
	})
	if err != nil {
		return err
	}

	var slowFile *os.File
	if cfg.slowlogJSON != "" {
		if cfg.slowlog <= 0 {
			_ = tree.Close()
			return fmt.Errorf("-slowlog-json requires -slowlog > 0 (the threshold decides what is captured)")
		}
		slowFile, err = os.OpenFile(cfg.slowlogJSON, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			_ = tree.Close()
			return err
		}
		defer func() { _ = slowFile.Close() }()
	}

	srvCfg := server.Config{
		MaxInFlight:        cfg.maxInFlight,
		DefaultTimeout:     cfg.timeout,
		SlowQueryThreshold: cfg.slowlog,
		Mutable:            cfg.mutable,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	if slowFile != nil {
		srvCfg.SlowLogJSON = slowFile
	}
	srv := server.New(tree, srvCfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		_ = tree.Close()
		return err
	}
	mode := "read-only"
	if cfg.mutable {
		mode = "mutable"
	}
	fmt.Printf("strserve: serving %s (%d items, height %d, %s) on %s\n",
		idx, tree.Len(), tree.Height(), mode, ln.Addr())

	var adminSrv *http.Server
	adminDone := make(chan struct{})
	if cfg.adminAddr != "" {
		adminLn, err := net.Listen("tcp", cfg.adminAddr)
		if err != nil {
			_ = ln.Close()
			_ = tree.Close()
			return fmt.Errorf("admin listen: %w", err)
		}
		adminSrv = &http.Server{Handler: srv.AdminHandler()}
		go func() {
			defer close(adminDone)
			if err := adminSrv.Serve(adminLn); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "strserve: admin: %v\n", err)
			}
		}()
		fmt.Printf("strserve: admin endpoint on http://%s\n", adminLn.Addr())
	}
	// The admin endpoint outlives the drain — it must answer 503 and
	// serve final metrics while requests finish — and closes last.
	defer func() {
		if adminSrv != nil {
			_ = adminSrv.Close()
			<-adminDone
		}
	}()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		if cfg.drainGrace > 0 {
			// Readiness-first shutdown: flip /healthz to 503, keep serving
			// for the grace period so routers drain us, then stop.
			fmt.Printf("strserve: %v: not ready; draining in %v\n", sig, cfg.drainGrace)
			srv.MarkNotReady()
			time.Sleep(cfg.drainGrace)
		}
		fmt.Printf("strserve: %v: draining (up to %v)\n", sig, cfg.drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
		defer cancel()
		drainErr := srv.Shutdown(ctx)
		if err := <-serveErr; err != nil {
			return err
		}
		if err := tree.Close(); err != nil {
			return err
		}
		if drainErr != nil {
			return fmt.Errorf("drain: %w", drainErr)
		}
		fmt.Println("strserve: drained cleanly")
		return nil
	case err := <-serveErr:
		closeErr := tree.Close()
		if err != nil {
			return err
		}
		return closeErr
	}
}

// runClientQuery runs one window query against a running server.
func runClientQuery(addr, rect string, countOnly bool) error {
	q, err := parseRect(rect)
	if err != nil {
		return err
	}
	cl := server.Dial(addr)
	defer func() { _ = cl.Close() }()
	if countOnly {
		n, err := cl.Count(q)
		if err != nil {
			return err
		}
		fmt.Println(n)
		return nil
	}
	items, err := cl.Search(q)
	if err != nil {
		return err
	}
	for _, it := range items {
		fmt.Printf("%d\t%v\n", it.ID, it.Rect)
	}
	fmt.Printf("# %d results\n", len(items))
	return nil
}

// runClientMutate sends one insert or delete to a running server. The
// spec is "x0,y0,x1,y1:id" — the item's rectangle and identifier.
func runClientMutate(addr, spec string, del bool) error {
	rectPart, idPart, ok := strings.Cut(spec, ":")
	if !ok {
		return fmt.Errorf("mutation %q: want x0,y0,x1,y1:id", spec)
	}
	q, err := parseRect(rectPart)
	if err != nil {
		return err
	}
	id, err := strconv.ParseUint(strings.TrimSpace(idPart), 10, 64)
	if err != nil {
		return fmt.Errorf("mutation %q: id: %w", spec, err)
	}
	cl := server.Dial(addr)
	defer func() { _ = cl.Close() }()
	if del {
		found, n, err := cl.Delete(q, id)
		if err != nil {
			return err
		}
		fmt.Printf("deleted=%t items=%d\n", found, n)
		return nil
	}
	n, err := cl.Insert(q, id)
	if err != nil {
		return err
	}
	fmt.Printf("inserted id=%d items=%d\n", id, n)
	return nil
}

// runClientStats fetches and prints a running server's stats snapshot.
func runClientStats(addr string) error {
	cl := server.Dial(addr)
	defer func() { _ = cl.Close() }()
	st, err := cl.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("in-flight:     %d\n", st.InFlight)
	fmt.Printf("accepted:      %d\n", st.Accepted)
	fmt.Printf("rejected:      %d\n", st.Rejected)
	fmt.Printf("completed:     %d\n", st.Completed)
	fmt.Printf("timed out:     %d\n", st.TimedOut)
	fmt.Printf("failed:        %d\n", st.Failed)
	fmt.Printf("draining:      %v\n", st.Draining)
	fmt.Printf("logical reads: %d\n", st.LogicalReads)
	fmt.Printf("disk reads:    %d\n", st.DiskReads)
	fmt.Printf("latency:       p50 %v  p95 %v  p99 %v  max %v (%d reqs)\n",
		time.Duration(st.Latency.P50), time.Duration(st.Latency.P95),
		time.Duration(st.Latency.P99), time.Duration(st.Latency.Max),
		st.Latency.Count)
	return nil
}

func parseRect(s string) (strtree.Rect, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return strtree.Rect{}, fmt.Errorf("rect %q: want x0,y0,x1,y1", s)
	}
	var v [4]float64
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return strtree.Rect{}, fmt.Errorf("rect %q: %w", s, err)
		}
		v[i] = f
	}
	return strtree.NewRect(strtree.Pt2(v[0], v[1]), strtree.Pt2(v[2], v[3]))
}
