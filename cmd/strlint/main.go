// Command strlint runs the repository's custom static analyzer (package
// internal/lint) over the module. Ten checks cover float equality,
// dropped errors, library panics, loop-variable capture, cross-layer
// imports, map-iteration order and time/rand use in the deterministic
// build layers, guarded-by lock discipline, goroutine completion
// signals, and context propagation; an eleventh validates the ignore
// directives themselves.
//
// Usage:
//
//	strlint [-checks c1,c2] [-format text|json|sarif] [-fix] [packages]
//
// Packages are module-relative paths or Go-style patterns: "./...", ".",
// "./internal/geom", "internal/geom". With no arguments, the whole module
// is checked. Exit status is 1 when findings are reported, 2 on usage or
// load errors.
//
// -fix applies every suggested fix and re-runs the analysis; applying
// fixes twice is a no-op. -format sarif emits SARIF 2.1.0 for GitHub
// code-scanning annotations. Findings are suppressed with an in-source
// directive on the same or the preceding line:
//
//	//strlint:ignore <check>[,<check>...] <reason>
//
// or grandfathered in the committed baseline (-baseline, default
// .strlint-baseline.json at the module root); -write-baseline regenerates
// that file from the current findings.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"strtree/internal/lint"
)

func main() {
	checksFlag := flag.String("checks", "", "comma-separated checks to run (default: all)")
	listFlag := flag.Bool("list", false, "list available checks and exit")
	fixFlag := flag.Bool("fix", false, "apply suggested fixes, then re-run the analysis")
	formatFlag := flag.String("format", "text", "output format: text, json or sarif")
	baselineFlag := flag.String("baseline", ".strlint-baseline.json", "baseline file relative to the module root (missing file = empty baseline)")
	writeBaselineFlag := flag.Bool("write-baseline", false, "write the current findings to the baseline file and exit")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: strlint [-checks c1,c2] [-format text|json|sarif] [-fix] [packages]")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listFlag {
		for _, c := range lint.Checks() {
			fmt.Printf("%-12s %s\n", c.Name, c.Doc)
		}
		return
	}
	switch *formatFlag {
	case "text", "json", "sarif":
	default:
		fail(fmt.Errorf("unknown format %q (want text, json or sarif)", *formatFlag))
	}

	root, err := findModuleRoot()
	if err != nil {
		fail(err)
	}
	var checks []string
	if *checksFlag != "" {
		checks = strings.Split(*checksFlag, ",")
	}

	findings, err := analyze(root, checks, flag.Args())
	if err != nil {
		fail(err)
	}

	if *fixFlag {
		changed, err := lint.ApplyFixes(findings)
		if err != nil {
			fail(err)
		}
		for _, name := range changed {
			if rel, err := filepath.Rel(root, name); err == nil {
				name = rel
			}
			fmt.Fprintf(os.Stderr, "strlint: fixed %s\n", name)
		}
		// Re-run on the rewritten sources so the report below reflects
		// what is actually left.
		if len(changed) > 0 {
			findings, err = analyze(root, checks, flag.Args())
			if err != nil {
				fail(err)
			}
		}
	}

	if *writeBaselineFlag {
		path := filepath.Join(root, *baselineFlag)
		if err := lint.WriteBaseline(path, findings, root); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "strlint: wrote %d finding(s) to %s\n", len(findings), *baselineFlag)
		return
	}

	entries, err := lint.LoadBaseline(filepath.Join(root, *baselineFlag))
	if err != nil {
		fail(err)
	}
	findings, stale := lint.ApplyBaseline(findings, entries, root)
	for _, msg := range stale {
		fmt.Fprintf(os.Stderr, "strlint: %s\n", msg)
	}

	switch *formatFlag {
	case "json":
		if err := lint.WriteJSON(os.Stdout, findings, root); err != nil {
			fail(err)
		}
	case "sarif":
		if err := lint.WriteSARIF(os.Stdout, findings, root); err != nil {
			fail(err)
		}
	default:
		for _, f := range findings {
			rel := f
			if r, err := filepath.Rel(root, f.Pos.Filename); err == nil {
				rel.Pos.Filename = r
			}
			fmt.Println(rel)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "strlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// analyze loads the module and runs the selected checks over the
// requested packages.
func analyze(root string, checks, patterns []string) ([]lint.Finding, error) {
	a, err := lint.Load(root)
	if err != nil {
		return nil, err
	}
	pkgs, err := resolvePatterns(a, patterns)
	if err != nil {
		return nil, err
	}
	return a.Run(pkgs, checks)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "strlint: %v\n", err)
	os.Exit(2)
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// resolvePatterns maps command-line package patterns onto loaded package
// paths. Supported forms: "./...", "all", ".", "dir/...", "./dir", "dir".
func resolvePatterns(a *lint.Analyzer, args []string) ([]string, error) {
	if len(args) == 0 {
		return nil, nil // all packages
	}
	known := a.Packages()
	var out []string
	seen := map[string]bool{}
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, arg := range args {
		norm := strings.TrimPrefix(filepath.ToSlash(arg), "./")
		switch {
		case norm == "..." || norm == "all":
			return nil, nil
		case strings.HasSuffix(norm, "/..."):
			prefix := strings.TrimSuffix(norm, "/...")
			matched := false
			for _, p := range known {
				if p == prefix || strings.HasPrefix(p, prefix+"/") {
					add(p)
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("pattern %q matches no packages", arg)
			}
		default:
			if norm == "." {
				norm = ""
			}
			found := false
			for _, p := range known {
				if p == norm {
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("package %q not found in module", arg)
			}
			add(norm)
		}
	}
	return out, nil
}
