// Command strlint runs the repository's custom static analyzer (package
// internal/lint) over the module: float equality comparisons, dropped
// errors from the storage/buffer/binary layers, library panics, loop
// variable capture and cross-layer imports.
//
// Usage:
//
//	strlint [-checks floateq,droppederr,...] [packages]
//
// Packages are module-relative paths or Go-style patterns: "./...", ".",
// "./internal/geom", "internal/geom". With no arguments, the whole module
// is checked. Exit status is 1 when findings are reported, 2 on usage or
// load errors.
//
// Findings are suppressed with an in-source directive on the same or the
// preceding line:
//
//	//strlint:ignore <check>[,<check>...] <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"strtree/internal/lint"
)

func main() {
	checksFlag := flag.String("checks", "", "comma-separated checks to run (default: all)")
	listFlag := flag.Bool("list", false, "list available checks and exit")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: strlint [-checks c1,c2] [packages]")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listFlag {
		for _, c := range lint.AllChecks {
			fmt.Println(c)
		}
		return
	}

	root, err := findModuleRoot()
	if err != nil {
		fail(err)
	}
	a, err := lint.Load(root)
	if err != nil {
		fail(err)
	}

	var checks []string
	if *checksFlag != "" {
		checks = strings.Split(*checksFlag, ",")
	}
	pkgs, err := resolvePatterns(a, flag.Args())
	if err != nil {
		fail(err)
	}
	findings, err := a.Run(pkgs, checks)
	if err != nil {
		fail(err)
	}
	for _, f := range findings {
		rel := f
		if r, err := filepath.Rel(root, f.Pos.Filename); err == nil {
			rel.Pos.Filename = r
		}
		fmt.Println(rel)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "strlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "strlint: %v\n", err)
	os.Exit(2)
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// resolvePatterns maps command-line package patterns onto loaded package
// paths. Supported forms: "./...", "all", ".", "dir/...", "./dir", "dir".
func resolvePatterns(a *lint.Analyzer, args []string) ([]string, error) {
	if len(args) == 0 {
		return nil, nil // all packages
	}
	known := a.Packages()
	var out []string
	seen := map[string]bool{}
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, arg := range args {
		norm := strings.TrimPrefix(filepath.ToSlash(arg), "./")
		switch {
		case norm == "..." || norm == "all":
			return nil, nil
		case strings.HasSuffix(norm, "/..."):
			prefix := strings.TrimSuffix(norm, "/...")
			matched := false
			for _, p := range known {
				if p == prefix || strings.HasPrefix(p, prefix+"/") {
					add(p)
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("pattern %q matches no packages", arg)
			}
		default:
			if norm == "." {
				norm = ""
			}
			found := false
			for _, p := range known {
				if p == norm {
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("package %q not found in module", arg)
			}
			add(norm)
		}
	}
	return out, nil
}
