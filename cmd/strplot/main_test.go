package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"strtree/internal/pack"
)

func TestPlotLeavesWritesSVG(t *testing.T) {
	dir := t.TempDir()
	if err := plotLeaves(dir, "test_str.svg", "STR", pack.STR{}, 1, 2000); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "test_str.svg"))
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.HasPrefix(s, "<svg") || !strings.Contains(s, "</svg>") {
		t.Fatal("not a complete SVG document")
	}
	// 2000 segments at capacity 100 = 20 leaf rectangles (+1 background).
	if got := strings.Count(s, "<rect"); got < 21 {
		t.Fatalf("only %d rects drawn", got)
	}
	if !strings.Contains(s, "STR") {
		t.Fatal("label missing")
	}
}

func TestPlotCFDWritesSVGs(t *testing.T) {
	dir := t.TempDir()
	if err := plotCFDFull(dir, 1, 500); err != nil {
		t.Fatal(err)
	}
	if err := plotCFDCenter(dir, 1, 500); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(filepath.Join(dir, "figure5_cfd_full.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(string(full), "<circle") != 500 {
		t.Fatalf("full plot drew %d dots", strings.Count(string(full), "<circle"))
	}
	center, err := os.ReadFile(filepath.Join(dir, "figure6_cfd_center.svg"))
	if err != nil {
		t.Fatal(err)
	}
	// The zoom shows a subset of the 500 points.
	dots := strings.Count(string(center), "<circle")
	if dots == 0 || dots >= 500 {
		t.Fatalf("center plot drew %d dots", dots)
	}
}

func TestPlotFailsOnBadDirectory(t *testing.T) {
	if err := plotLeaves("/nonexistent-dir-xyz", "x.svg", "STR", pack.STR{}, 1, 500); err == nil {
		t.Fatal("write into missing directory succeeded")
	}
}
