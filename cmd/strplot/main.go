// Command strplot renders the STR paper's Figures 2-6 as SVG files:
//
//	Figure 2: leaf bounding rectangles of the Long Beach data under NX
//	Figure 3: the same under HS
//	Figure 4: the same under STR (note the vertical slices)
//	Figure 5: the full 5,088-node CFD data set
//	Figure 6: the CFD data around the centroid (the wing cut-outs)
//
// Usage:
//
//	strplot [-fig 2|3|4|5|6|all] [-o .] [-seed 1] [-n 0]
//
// The Long Beach and CFD data are the repository's simulated stand-ins
// (see DESIGN.md Section 4).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"strtree/internal/buffer"
	"strtree/internal/datagen"
	"strtree/internal/geom"
	"strtree/internal/node"
	"strtree/internal/pack"
	"strtree/internal/rtree"
	"strtree/internal/storage"
	"strtree/internal/svg"
)

func main() {
	var (
		fig  = flag.String("fig", "all", "figure to render: 2,3,4,5,6 or all")
		out  = flag.String("o", ".", "output directory")
		seed = flag.Int64("seed", 1, "data generator seed")
		n    = flag.Int("n", 0, "override data size (0 = paper sizes)")
	)
	flag.Parse()

	figs := map[string]func() error{
		"2": func() error { return plotLeaves(*out, "figure2_nx.svg", "NX", pack.NX{}, *seed, *n) },
		"3": func() error { return plotLeaves(*out, "figure3_hs.svg", "HS", pack.HS{}, *seed, *n) },
		"4": func() error { return plotLeaves(*out, "figure4_str.svg", "STR", pack.STR{}, *seed, *n) },
		"5": func() error { return plotCFDFull(*out, *seed, *n) },
		"6": func() error { return plotCFDCenter(*out, *seed, *n) },
	}

	var ids []string
	if *fig == "all" {
		ids = []string{"2", "3", "4", "5", "6"}
	} else {
		ids = strings.Split(*fig, ",")
	}
	for _, id := range ids {
		f, ok := figs[strings.TrimSpace(id)]
		if !ok {
			fmt.Fprintf(os.Stderr, "strplot: unknown figure %q\n", id)
			os.Exit(2)
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "strplot: figure %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}

// plotLeaves draws the leaf-level MBRs of the Long Beach data packed with
// one algorithm (Figures 2-4; node capacity 100 as in the paper).
func plotLeaves(dir, name, label string, o rtree.Orderer, seed int64, n int) error {
	if n == 0 {
		n = datagen.TigerSize
	}
	entries := datagen.Tiger(n, seed)
	pool := buffer.NewPool(storage.NewMemPager(4096), 1024)
	tr, err := rtree.Create(pool, rtree.Config{Dims: 2, Capacity: 100})
	if err != nil {
		return err
	}
	if err := tr.BulkLoad(entries, o); err != nil {
		return err
	}
	c := svg.New(640, 640)
	err = tr.Walk(func(_ storage.PageID, nd *node.Node) bool {
		if !nd.IsLeaf() {
			return true
		}
		m := nd.MBR()
		c.Rect(m.Min[0], m.Min[1], m.Max[0], m.Max[1], "black", 0.7, "none")
		return true
	})
	if err != nil {
		return err
	}
	c.Text(0.02, 0.97, 14, fmt.Sprintf("Leaf MBRs, Long Beach (simulated), %s", label))
	return write(dir, name, c)
}

// plotCFDFull draws the small CFD data set (Figure 5).
func plotCFDFull(dir string, seed int64, n int) error {
	if n == 0 {
		n = datagen.CFDSmallSize
	}
	entries := datagen.CFD(n, seed)
	c := svg.New(640, 640)
	for _, e := range entries {
		c.Dot(e.Rect.Min[0], e.Rect.Min[1], 1.0, "black")
	}
	c.Text(0.02, 0.97, 14, fmt.Sprintf("CFD data (simulated), %d nodes", n))
	return write(dir, "figure5_cfd_full.svg", c)
}

// plotCFDCenter zooms on the area around the data centroid, exposing the
// point-free wing cut-outs (Figure 6).
func plotCFDCenter(dir string, seed int64, n int) error {
	if n == 0 {
		n = datagen.CFDSmallSize
	}
	entries := datagen.CFD(n, seed)
	box := geom.R2(0.48, 0.48, 0.60, 0.53)
	c := svg.New(960, 400)
	for _, e := range entries {
		x, y := e.Rect.Min[0], e.Rect.Min[1]
		if !box.ContainsPoint(geom.Pt2(x, y)) {
			continue
		}
		// Rescale the window to the canvas.
		u := (x - box.Min[0]) / box.Side(0)
		v := (y - box.Min[1]) / box.Side(1)
		c.Dot(u, v, 1.4, "black")
	}
	c.Text(0.02, 0.95, 14, "CFD data around the wing ("+rectLabel(box)+")")
	return write(dir, "figure6_cfd_center.svg", c)
}

func rectLabel(r geom.Rect) string {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 3, 64) }
	return "[" + f(r.Min[0]) + "," + f(r.Min[1]) + "]-[" + f(r.Max[0]) + "," + f(r.Max[1]) + "]"
}

func write(dir, name string, c *svg.Canvas) error {
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := c.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
