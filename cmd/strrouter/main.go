// Command strrouter is the fan-out proxy over a sharded strserve fleet.
// It speaks the same wire protocol as strserve on both sides: clients
// connect to the router exactly as they would to a single server, and
// the router scatters each query to the shard backends whose MBRs
// overlap it, gathers the per-shard answers, and merges them
// deterministically (see internal/router).
//
// Usage:
//
//	strrouter -map shards.json [-backends host0:7070,host1:7070,...]
//	          [-addr :7080] [-admin 127.0.0.1:9091]
//	          [-max-inflight 64] [-timeout 5s] [-max-timeout 60s]
//	          [-backend-conc 4] [-fail-threshold 3] [-probe 2s]
//	          [-drain-timeout 10s] [-drain-grace 2s]
//	strrouter -selftest [-shards 3] [-size 6000] [-queries 60] [-seed 1]
//	          [-admin 127.0.0.1:0]
//
// -map is the shards.json manifest written by strload build -shards N.
// If the manifest does not carry backend addresses (strload leaves Addrs
// empty — deployment's job), -backends supplies one comma-separated
// address per shard, in shard order; a shard may list several
// replica addresses separated by '|' and idempotent reads get one retry
// on another replica. -backends also overrides any addresses already in
// the manifest.
//
// The router runs until SIGTERM or SIGINT, then drains like strserve:
// /healthz flips to 503, -drain-grace lets load balancers route away,
// new connections are refused, in-flight fan-outs finish under
// -drain-timeout, and backend client pools close last.
//
// -selftest builds an in-process topology — N strserve backends over an
// STR-partitioned dataset plus this router — and proves the three router
// contracts: answers identical to a single unsharded tree, fan-out
// pruned to overlapping shards (verified by backend request counters),
// and a killed backend surfacing as StatusUnavailable quickly rather
// than a hang.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"strtree/internal/router"
	"strtree/internal/router/shardmap"
)

func main() {
	var (
		mapPath      = flag.String("map", "", "shards.json manifest (required for serving)")
		backends     = flag.String("backends", "", "comma-separated backend address per shard, in shard order ('|' separates replicas); overrides manifest addresses")
		addr         = flag.String("addr", "127.0.0.1:7080", "listen address for the client-facing wire protocol")
		adminAddr    = flag.String("admin", "", "admin HTTP endpoint (/metrics, /stats, /healthz, /debug/pprof); empty disables; bind to loopback")
		maxInFlight  = flag.Int("max-inflight", 64, "admission cap on concurrently executing client requests")
		timeout      = flag.Duration("timeout", 5*time.Second, "default per-request deadline")
		maxTimeout   = flag.Duration("max-timeout", 60*time.Second, "cap on client-requested deadlines")
		backendConc  = flag.Int("backend-conc", 4, "max in-flight requests per backend (client pool size)")
		failThresh   = flag.Int("fail-threshold", 3, "consecutive transport failures that eject a backend")
		probeEvery   = flag.Duration("probe", 2*time.Second, "re-probe interval for ejected backends")
		dialTimeout  = flag.Duration("dial-timeout", 2*time.Second, "backend connection establishment cap")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "grace period for in-flight fan-outs on shutdown")
		drainGrace   = flag.Duration("drain-grace", 0, "delay between flipping /healthz to 503 and starting the drain")

		selftest = flag.Bool("selftest", false, "run the in-process topology proof and exit")
		shards   = flag.Int("shards", 3, "selftest: backend count")
		size     = flag.Int("size", 6000, "selftest: indexed items")
		queries  = flag.Int("queries", 60, "selftest: window/point/kNN probes")
		seed     = flag.Int64("seed", 1, "selftest: data and workload seed")
	)
	flag.Parse()

	var err error
	switch {
	case *selftest:
		err = router.Selftest(os.Stdout, router.SelftestConfig{
			Shards:    *shards,
			Size:      *size,
			Queries:   *queries,
			Seed:      *seed,
			AdminAddr: *adminAddr,
		})
	case *mapPath != "":
		err = serve(*mapPath, *backends, *addr, serveConfig{
			adminAddr:    *adminAddr,
			maxInFlight:  *maxInFlight,
			timeout:      *timeout,
			maxTimeout:   *maxTimeout,
			backendConc:  *backendConc,
			failThresh:   *failThresh,
			probeEvery:   *probeEvery,
			dialTimeout:  *dialTimeout,
			drainTimeout: *drainTimeout,
			drainGrace:   *drainGrace,
		})
	default:
		fmt.Fprintln(os.Stderr, "usage: strrouter -map shards.json [-backends a,b,c] | -selftest")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "strrouter: %v\n", err)
		os.Exit(1)
	}
}

type serveConfig struct {
	adminAddr    string
	maxInFlight  int
	timeout      time.Duration
	maxTimeout   time.Duration
	backendConc  int
	failThresh   int
	probeEvery   time.Duration
	dialTimeout  time.Duration
	drainTimeout time.Duration
	drainGrace   time.Duration
}

// applyBackends fills or overrides the manifest's per-shard addresses
// from the -backends flag: one comma-separated entry per shard, each
// entry optionally listing '|'-separated replicas.
func applyBackends(m *shardmap.Map, backends string) error {
	if backends == "" {
		for i, s := range m.Shards {
			if len(s.Addrs) == 0 {
				return fmt.Errorf("shard %d has no backend address in the manifest; pass -backends", i)
			}
		}
		return nil
	}
	parts := strings.Split(backends, ",")
	if len(parts) != len(m.Shards) {
		return fmt.Errorf("-backends lists %d entries, manifest has %d shards", len(parts), len(m.Shards))
	}
	for i, p := range parts {
		var addrs []string
		for _, a := range strings.Split(p, "|") {
			a = strings.TrimSpace(a)
			if a == "" {
				return fmt.Errorf("-backends entry %d has an empty address", i)
			}
			addrs = append(addrs, a)
		}
		m.Shards[i].Addrs = addrs
	}
	return nil
}

// serve loads the manifest, builds the router and runs it until a
// termination signal starts the drain — the same readiness-first
// sequence strserve uses.
func serve(mapPath, backends, addr string, cfg serveConfig) error {
	m, err := shardmap.Load(mapPath)
	if err != nil {
		return err
	}
	if err := applyBackends(m, backends); err != nil {
		return err
	}

	r, err := router.New(router.Config{
		Map:                m,
		MaxInFlight:        cfg.maxInFlight,
		DefaultTimeout:     cfg.timeout,
		MaxTimeout:         cfg.maxTimeout,
		BackendConcurrency: cfg.backendConc,
		FailureThreshold:   cfg.failThresh,
		ProbeInterval:      cfg.probeEvery,
		DialTimeout:        cfg.dialTimeout,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		shutdownRouter(r)
		return err
	}
	fmt.Printf("strrouter: routing %d shards (%d backends) on %s\n",
		len(m.Shards), len(r.BackendStats()), ln.Addr())

	var adminSrv *http.Server
	adminDone := make(chan struct{})
	if cfg.adminAddr != "" {
		adminLn, err := net.Listen("tcp", cfg.adminAddr)
		if err != nil {
			_ = ln.Close()
			shutdownRouter(r)
			return fmt.Errorf("admin listen: %w", err)
		}
		adminSrv = &http.Server{Handler: r.AdminHandler()}
		go func() {
			defer close(adminDone)
			if err := adminSrv.Serve(adminLn); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "strrouter: admin: %v\n", err)
			}
		}()
		fmt.Printf("strrouter: admin endpoint on http://%s\n", adminLn.Addr())
	}
	// The admin endpoint outlives the drain — it must answer 503 and
	// serve final metrics while fan-outs finish — and closes last.
	defer func() {
		if adminSrv != nil {
			_ = adminSrv.Close()
			<-adminDone
		}
	}()

	serveErr := make(chan error, 1)
	go func() { serveErr <- r.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		if cfg.drainGrace > 0 {
			fmt.Printf("strrouter: %v: not ready; draining in %v\n", sig, cfg.drainGrace)
			r.MarkNotReady()
			time.Sleep(cfg.drainGrace)
		}
		fmt.Printf("strrouter: %v: draining (up to %v)\n", sig, cfg.drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
		defer cancel()
		drainErr := r.Shutdown(ctx)
		if err := <-serveErr; err != nil {
			return err
		}
		if drainErr != nil {
			return fmt.Errorf("drain: %w", drainErr)
		}
		fmt.Println("strrouter: drained cleanly")
		return nil
	case err := <-serveErr:
		shutdownRouter(r)
		return err
	}
}

// shutdownRouter tears a router down with a short bound, for error paths
// where no drain is in progress.
func shutdownRouter(r *router.Router) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = r.Shutdown(ctx)
}
