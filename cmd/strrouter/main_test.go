package main

import (
	"reflect"
	"testing"

	"strtree/internal/router/shardmap"
)

func twoShardMap(addrs ...[]string) *shardmap.Map {
	m := &shardmap.Map{
		Version: shardmap.FormatVersion,
		Dims:    2,
		Shards: []shardmap.Shard{
			{ID: 0, MBR: shardmap.RectJSON{Min: []float64{0, 0}, Max: []float64{0.5, 1}}, Count: 1},
			{ID: 1, MBR: shardmap.RectJSON{Min: []float64{0.5, 0}, Max: []float64{1, 1}}, Count: 1},
		},
	}
	for i, a := range addrs {
		m.Shards[i].Addrs = a
	}
	return m
}

func TestApplyBackends(t *testing.T) {
	// Positional fill, with '|'-separated replicas and whitespace trim.
	m := twoShardMap()
	if err := applyBackends(m, "a:1, b:1|b:2"); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Shards[0].Addrs, []string{"a:1"}) {
		t.Errorf("shard 0 addrs = %v", m.Shards[0].Addrs)
	}
	if !reflect.DeepEqual(m.Shards[1].Addrs, []string{"b:1", "b:2"}) {
		t.Errorf("shard 1 addrs = %v", m.Shards[1].Addrs)
	}

	// -backends overrides manifest addresses.
	m = twoShardMap([]string{"old:1"}, []string{"old:2"})
	if err := applyBackends(m, "new:1,new:2"); err != nil {
		t.Fatal(err)
	}
	if m.Shards[0].Addrs[0] != "new:1" {
		t.Errorf("override failed: %v", m.Shards[0].Addrs)
	}

	// Empty flag keeps complete manifest addresses.
	m = twoShardMap([]string{"a:1"}, []string{"b:1"})
	if err := applyBackends(m, ""); err != nil {
		t.Fatal(err)
	}
	if m.Shards[0].Addrs[0] != "a:1" {
		t.Errorf("manifest addrs lost: %v", m.Shards[0].Addrs)
	}
}

func TestApplyBackendsErrors(t *testing.T) {
	// No flag and a shard without addresses.
	if err := applyBackends(twoShardMap([]string{"a:1"}), ""); err == nil {
		t.Error("manifest with an addressless shard accepted")
	}
	// Entry count must match the shard count.
	if err := applyBackends(twoShardMap(), "only:1"); err == nil {
		t.Error("one entry for two shards accepted")
	}
	// Empty replica address.
	if err := applyBackends(twoShardMap(), "a:1,|b:2"); err == nil {
		t.Error("empty replica address accepted")
	}
}
