// Command strdata generates the repository's data sets as CSV, in the
// format cmd/strload builds indexes from:
//
//	strdata -set tiger -out tiger.csv
//	strdata -set uniform -n 10000 -seed 7 -out -     # stdout
//
// Available sets: uniform (density-5 squares), points, tiger, vlsi, cfd —
// the paper's four families (tiger/vlsi/cfd are the simulated stand-ins
// described in DESIGN.md).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"slices"

	"strtree/internal/datagen"
)

func main() {
	var (
		set  = flag.String("set", "uniform", "data set name")
		n    = flag.Int("n", 0, "number of items (0 = the paper's size)")
		seed = flag.Int64("seed", 1, "generator seed")
		out  = flag.String("out", "-", "output file, or - for stdout")
	)
	flag.Parse()

	catalog := datagen.Catalog()
	gen, ok := catalog[*set]
	if !ok {
		var names []string
		for name := range catalog {
			names = append(names, name)
		}
		slices.Sort(names)
		fmt.Fprintf(os.Stderr, "strdata: unknown set %q; available: %v\n", *set, names)
		os.Exit(2)
	}
	size := *n
	if size == 0 {
		size = datagen.DefaultSize(*set)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "strdata: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "strdata: %v\n", err)
				os.Exit(1)
			}
		}()
		w = f
	}

	entries := gen(size, *seed)
	if err := datagen.WriteCSV(w, entries); err != nil {
		fmt.Fprintf(os.Stderr, "strdata: %v\n", err)
		os.Exit(1)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "wrote %d %s items to %s\n", len(entries), *set, *out)
	}
}
