package main

import (
	"os"
	"path/filepath"
	"testing"

	"strtree"
	"strtree/internal/trace"
)

func TestQueryRects(t *testing.T) {
	qs := queryRects(200, 0.1, 1)
	if len(qs) != 200 {
		t.Fatalf("len = %d", len(qs))
	}
	u := strtree.R2(0, 0, 1, 1)
	for i, q := range qs {
		if !u.Contains(q) {
			t.Fatalf("query %d outside unit square: %v", i, q)
		}
		if q.Side(0) > 0.1+1e-12 {
			t.Fatalf("query %d wider than extent", i)
		}
	}
	// Deterministic per seed.
	again := queryRects(200, 0.1, 1)
	for i := range qs {
		if !qs[i].Equal(again[i]) {
			t.Fatal("same seed produced different queries")
		}
	}
	other := queryRects(200, 0.1, 2)
	same := true
	for i := range qs {
		if !qs[i].Equal(other[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical queries")
	}
	// Point queries are points.
	for _, q := range queryRects(10, 0, 3) {
		if q.Area() != 0 {
			t.Fatal("extent 0 produced non-point query")
		}
	}
}

func TestRecordSimulateEndToEnd(t *testing.T) {
	dir := t.TempDir()
	idx := filepath.Join(dir, "idx.str")
	tree, err := strtree.Create(idx, strtree.Options{Capacity: 50})
	if err != nil {
		t.Fatal(err)
	}
	items := make([]strtree.Item, 3000)
	for i := range items {
		x := float64(i%60) / 60
		y := float64(i/60) / 60
		items[i] = strtree.Item{Rect: strtree.R2(x, y, x+0.01, y+0.01), ID: uint64(i)}
	}
	if err := tree.BulkLoad(items, strtree.PackSTR); err != nil {
		t.Fatal(err)
	}
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}

	out := filepath.Join(dir, "a.trace")
	if err := runRecord([]string{"-idx", idx, "-queries", "100", "-extent", "0.05", "-out", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Load(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) == 0 {
		t.Fatal("empty trace recorded")
	}
	// Every access must target a page of the index.
	if err := runSimulate([]string{"-trace", out, "-buffers", "5,10", "-queries", "100"}); err != nil {
		t.Fatal(err)
	}
	// Bad inputs.
	if err := runSimulate([]string{"-trace", out, "-buffers", "0"}); err == nil {
		t.Fatal("buffer size 0 accepted")
	}
	if err := runSimulate([]string{"-trace", filepath.Join(dir, "missing.trace")}); err == nil {
		t.Fatal("missing trace accepted")
	}
	if err := runRecord([]string{"-idx", filepath.Join(dir, "missing.str"), "-out", out}); err == nil {
		t.Fatal("missing index accepted")
	}
}
