// Command strtrace records page-access traces from an index file and
// replays them against simulated buffer replacement policies — the
// trace-driven analysis behind the extpolicy experiment, as a standalone
// tool.
//
//	strtrace record -idx index.str -queries 2000 -extent 0.1 -out q.trace
//	strtrace simulate -trace q.trace -buffers 10,25,50,100,250
//
// Record runs uniform region queries (extent 0 = point queries) against
// the index and writes the page-access sequence. Simulate prints the
// per-query miss counts of LRU, Clock and Belady's optimal policy at each
// buffer size; OPT is the unbeatable offline lower bound.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"strtree"
	"strtree/internal/buffer"
	"strtree/internal/node"
	"strtree/internal/rtree"
	"strtree/internal/storage"
	"strtree/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = runRecord(os.Args[2:])
	case "simulate":
		err = runSimulate(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "strtrace: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: strtrace record|simulate [flags]")
	os.Exit(2)
}

func runRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	idx := fs.String("idx", "index.str", "index file to query")
	queries := fs.Int("queries", 2000, "number of queries")
	extent := fs.Float64("extent", 0.1, "query extent per axis (0 = point queries)")
	seed := fs.Int64("seed", 1, "query generator seed")
	out := fs.String("out", "access.trace", "output trace file")
	fs.Parse(args)

	pg, err := storage.OpenFilePager(*idx, storage.DefaultPageSize)
	if err != nil {
		return err
	}
	//strlint:ignore droppederr read-only pager: a close error after queries cannot lose data
	defer pg.Close()
	pool := buffer.NewPool(pg, 8)
	tree, err := rtree.Open(pool)
	if err != nil {
		return err
	}

	var rec trace.Recorder
	pool.SetTracer(rec.Observe)
	rects := queryRects(*queries, *extent, *seed)
	for _, q := range rects {
		if err := tree.Search(q, func(node.Entry) bool { return true }); err != nil {
			return err
		}
	}
	pool.SetTracer(nil)

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := rec.Trace().Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("recorded %d page accesses from %d queries into %s\n",
		len(rec.Trace()), len(rects), *out)
	return nil
}

func queryRects(n int, extent float64, seed int64) []strtree.Rect {
	// A tiny deterministic LCG keeps the tool free of the internal query
	// package (and documents the workload precisely).
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
	out := make([]strtree.Rect, n)
	for i := range out {
		x, y := next(), next()
		hi := strtree.Pt2(min(x+extent, 1), min(y+extent, 1))
		r, _ := strtree.NewRect(strtree.Pt2(x, y), hi)
		out[i] = r
	}
	return out
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func runSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	in := fs.String("trace", "access.trace", "trace file from 'strtrace record'")
	buffers := fs.String("buffers", "10,25,50,100,250", "comma-separated buffer sizes in pages")
	queries := fs.Int("queries", 0, "queries the trace covers (0 = report totals, not per-query)")
	fs.Parse(args)

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	tr, err := trace.Load(f)
	f.Close()
	if err != nil {
		return err
	}
	div := 1.0
	unit := "misses"
	if *queries > 0 {
		div = float64(*queries)
		unit = "misses/query"
	}
	fmt.Printf("trace: %d accesses, %d distinct pages\n\n", len(tr), tr.Distinct())
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "buffer\tLRU %s\tClock %s\tOPT %s\tLRU/OPT\n", unit, unit, unit)
	for _, s := range strings.Split(*buffers, ",") {
		capacity, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || capacity < 1 {
			return fmt.Errorf("bad buffer size %q", s)
		}
		lru := float64(tr.SimulateLRU(capacity)) / div
		clock := float64(tr.SimulateClock(capacity)) / div
		opt := float64(tr.SimulateOPT(capacity)) / div
		ratio := "-"
		if opt > 0 {
			ratio = fmt.Sprintf("%.2f", lru/opt)
		}
		fmt.Fprintf(tw, "%d\t%.2f\t%.2f\t%.2f\t%s\n", capacity, lru, clock, opt, ratio)
	}
	return tw.Flush()
}
