package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"strtree/internal/experiments"
)

// The -ci mode runs a fixed, fully deterministic slice of the experiment
// suite and writes the results as JSON. CI commits one such report as
// BENCH_BASELINE.json; every build regenerates BENCH_CI.json and compares.
// All table cells are access counts or structural measures — never wall
// time — so they must match the baseline exactly. Wall time is recorded
// per experiment for observability and only fails the build when an
// experiment gets an order of magnitude slower than the baseline, so
// noisy shared runners don't flake the gate.

// ciConfig is deliberately hardcoded: the baseline is only meaningful if
// every run uses the same scale, query count and seed. It matches the
// package benchmarks' reduced configuration.
func ciConfig() experiments.Config {
	return experiments.Config{Scale: 0.05, Queries: 100, Capacity: 100, Seed: 1}
}

// ciTimeTolerance is the factor by which an experiment's wall time may
// exceed the baseline before the gate fails. Access counts are exact;
// time is hardware-dependent, so the tolerance is generous.
const ciTimeTolerance = 10

// ciTimeFloor suppresses the wall-time check entirely for experiments the
// baseline ran in under this duration: multiplicative tolerances are
// meaningless at millisecond scale.
const ciTimeFloor = 250 * time.Millisecond

type ciReport struct {
	// Go records the toolchain that produced the report (informational).
	Go     string         `json:"go"`
	Scale  float64        `json:"scale"`
	Quers  int            `json:"queries"`
	Seed   int64          `json:"seed"`
	Tables []ciTableEntry `json:"tables"`
}

type ciTableEntry struct {
	ID        string     `json:"id"`
	Header    []string   `json:"header"`
	Rows      [][]string `json:"rows"`
	ElapsedNs int64      `json:"elapsed_ns"`
}

// runCI executes every registered experiment under ciConfig, writes the
// report to outPath, and — if baselinePath is non-empty — compares it
// against the committed baseline, returning an error describing the first
// drift found.
func runCI(outPath, baselinePath string) error {
	cfg := ciConfig()
	report := ciReport{
		Go:    runtime.Version(),
		Scale: cfg.Scale,
		Quers: cfg.Queries,
		Seed:  cfg.Seed,
	}
	for _, id := range experiments.IDs() {
		runner, ok := experiments.Lookup(id)
		if !ok {
			return fmt.Errorf("ci: experiment %q vanished from the registry", id)
		}
		start := time.Now()
		table, err := runner(cfg)
		if err != nil {
			return fmt.Errorf("ci: %s: %w", id, err)
		}
		report.Tables = append(report.Tables, ciTableEntry{
			ID:        id,
			Header:    table.Header,
			Rows:      table.Rows,
			ElapsedNs: time.Since(start).Nanoseconds(),
		})
		fmt.Fprintf(os.Stderr, "ci: %s done in %v\n", id, time.Since(start).Round(time.Millisecond))
	}

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ci: wrote %s (%d experiments)\n", outPath, len(report.Tables))

	if baselinePath == "" {
		return nil
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("ci: reading baseline: %w", err)
	}
	var base ciReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("ci: parsing baseline %s: %w", baselinePath, err)
	}
	return compareCI(&base, &report)
}

// compareCI checks cur against base: identical experiment set, identical
// headers, cell-for-cell identical rows, and wall time within tolerance.
func compareCI(base, cur *ciReport) error {
	//strlint:ignore floateq the scale is a literal constant round-tripped through JSON; config identity must be exact
	if base.Scale != cur.Scale || base.Quers != cur.Quers || base.Seed != cur.Seed {
		return fmt.Errorf("ci: baseline config (scale=%v queries=%d seed=%d) differs from current (scale=%v queries=%d seed=%d) — regenerate the baseline",
			base.Scale, base.Quers, base.Seed, cur.Scale, cur.Quers, cur.Seed)
	}
	baseByID := make(map[string]*ciTableEntry, len(base.Tables))
	for i := range base.Tables {
		baseByID[base.Tables[i].ID] = &base.Tables[i]
	}
	for i := range cur.Tables {
		c := &cur.Tables[i]
		b, ok := baseByID[c.ID]
		if !ok {
			// A brand-new experiment has no baseline yet; report it so the
			// author regenerates, but as guidance rather than silence.
			fmt.Fprintf(os.Stderr, "ci: note: experiment %s has no baseline entry (regenerate BENCH_BASELINE.json)\n", c.ID)
			continue
		}
		delete(baseByID, c.ID)
		if err := compareTable(b, c); err != nil {
			return err
		}
	}
	for id := range baseByID {
		return fmt.Errorf("ci: experiment %s is in the baseline but no longer runs", id)
	}
	fmt.Fprintln(os.Stderr, "ci: all experiments match the baseline")
	return nil
}

func compareTable(b, c *ciTableEntry) error {
	if len(b.Header) != len(c.Header) {
		return fmt.Errorf("ci: %s: header has %d columns, baseline %d", c.ID, len(c.Header), len(b.Header))
	}
	for j := range b.Header {
		if b.Header[j] != c.Header[j] {
			return fmt.Errorf("ci: %s: column %d is %q, baseline %q", c.ID, j, c.Header[j], b.Header[j])
		}
	}
	if len(b.Rows) != len(c.Rows) {
		return fmt.Errorf("ci: %s: %d rows, baseline %d", c.ID, len(c.Rows), len(b.Rows))
	}
	for i := range b.Rows {
		if len(b.Rows[i]) != len(c.Rows[i]) {
			return fmt.Errorf("ci: %s row %d: %d cells, baseline %d", c.ID, i, len(c.Rows[i]), len(b.Rows[i]))
		}
		for j := range b.Rows[i] {
			if b.Rows[i][j] != c.Rows[i][j] {
				return fmt.Errorf("ci: %s row %d col %d (%s): got %q, baseline %q — access counts drifted",
					c.ID, i, j, c.Header[j], c.Rows[i][j], b.Rows[i][j])
			}
		}
	}
	if bd := time.Duration(b.ElapsedNs); bd >= ciTimeFloor {
		if cd := time.Duration(c.ElapsedNs); cd > bd*ciTimeTolerance {
			return fmt.Errorf("ci: %s took %v, baseline %v (tolerance %dx)", c.ID, cd.Round(time.Millisecond), bd.Round(time.Millisecond), ciTimeTolerance)
		}
	}
	return nil
}
