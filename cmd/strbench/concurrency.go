package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"strtree"
	"strtree/internal/datagen"
	"strtree/internal/histo"
	"strtree/internal/query"
)

// concurrencyConfig parameterizes the -concurrency mode: a packed tree
// behind a sharded buffer, hammered by the paper's 1%-region workload
// through Tree.SearchBatchCount at increasing worker counts.
type concurrencyConfig struct {
	Scale   float64 // fraction of the 100k-rectangle reference data set
	Queries int     // queries per worker-count run
	Seed    int64
	Shards  int    // buffer shards (power of two)
	Workers []int  // worker counts to sweep
	OutPath string // optional JSON artifact path ("" = table only)
}

// concurrencyRow is one worker count's measurements, both printed in the
// table and serialized into the JSON artifact. AllocsPerQuery and
// BytesPerQuery are process-wide runtime.MemStats deltas (Mallocs,
// TotalAlloc — both monotonic, so GC cannot shrink them) divided by the
// query count: the whole serving path's allocation cost per query, not
// just the traversal's.
type concurrencyRow struct {
	Workers        int     `json:"workers"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	QueriesPerSec  float64 `json:"queries_per_sec"`
	Speedup        float64 `json:"speedup"`
	AccessesPerQry float64 `json:"accesses_per_query"`
	P50Seconds     float64 `json:"p50_seconds"`
	P95Seconds     float64 `json:"p95_seconds"`
	P99Seconds     float64 `json:"p99_seconds"`
	AllocsPerQuery float64 `json:"allocs_per_query"`
	BytesPerQuery  float64 `json:"bytes_per_query"`
}

// concurrencyArtifact is the JSON artifact schema for -concurrency-out.
type concurrencyArtifact struct {
	Rects       int              `json:"rects"`
	BufferPages int              `json:"buffer_pages"`
	Shards      int              `json:"shards"`
	Queries     int              `json:"queries"`
	GOMAXPROCS  int              `json:"gomaxprocs"`
	Rows        []concurrencyRow `json:"rows"`
}

// parseWorkers parses the -workers flag ("1,2,4,8").
func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad worker count %q", part)
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty worker list")
	}
	return out, nil
}

// runConcurrency builds one tree and sweeps the worker counts, printing a
// throughput/scaling table. The buffer is dropped cold before each run so
// every worker count faces the same steady-state mix; access counts come
// from the sharded buffer's aggregated stats, allocation counts from
// runtime.MemStats deltas around the batch.
func runConcurrency(w io.Writer, cfg concurrencyConfig) error {
	size := int(100000 * cfg.Scale)
	if size < 20000 {
		size = 20000
	}
	bufPages := size / 100 / 2 // roughly half the leaf level
	if bufPages < 8*cfg.Shards {
		bufPages = 8 * cfg.Shards
	}
	entries := datagen.UniformSquares(size, 5.0, cfg.Seed)
	items := make([]strtree.Item, len(entries))
	for i, e := range entries {
		items[i] = strtree.Item{Rect: e.Rect, ID: e.Ref}
	}
	tree, err := strtree.New(strtree.Options{
		Capacity:     100,
		BufferPages:  bufPages,
		BufferShards: cfg.Shards,
	})
	if err != nil {
		return err
	}
	if err := tree.BulkLoad(items, strtree.PackSTR); err != nil {
		return err
	}
	qs := query.Regions(cfg.Queries, query.Extent1Pct, cfg.Seed+1)

	fmt.Fprintf(w, "== concurrent query serving: %d rects, %d buffer pages, %d shards, %d queries, GOMAXPROCS=%d ==\n",
		size, bufPages, cfg.Shards, len(qs), runtime.GOMAXPROCS(0))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workers\telapsed\tqueries/s\tspeedup\taccesses/query\tp50\tp95\tp99\tallocs/query\tB/query")
	var base float64
	var lat histo.Histogram
	var rows []concurrencyRow
	var msBefore, msAfter runtime.MemStats
	for i, workers := range cfg.Workers {
		if err := tree.DropCaches(); err != nil {
			return err
		}
		tree.ResetStats()
		lat.Reset()
		runtime.ReadMemStats(&msBefore)
		start := time.Now()
		_, err := tree.SearchBatchCountTimed(qs, workers, func(_ int, d time.Duration) {
			lat.Observe(d)
		})
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&msAfter)
		qps := float64(len(qs)) / elapsed.Seconds()
		if i == 0 {
			base = qps
		}
		acc := float64(tree.Stats().DiskReads) / float64(len(qs))
		allocs := float64(msAfter.Mallocs-msBefore.Mallocs) / float64(len(qs))
		bytesPer := float64(msAfter.TotalAlloc-msBefore.TotalAlloc) / float64(len(qs))
		sum := lat.Summarize()
		fmt.Fprintf(tw, "%d\t%v\t%.0f\t%.2fx\t%.2f\t%v\t%v\t%v\t%.1f\t%.0f\n",
			workers, elapsed.Round(time.Microsecond), qps, qps/base, acc,
			time.Duration(sum.P50).Round(time.Microsecond),
			time.Duration(sum.P95).Round(time.Microsecond),
			time.Duration(sum.P99).Round(time.Microsecond),
			allocs, bytesPer)
		rows = append(rows, concurrencyRow{
			Workers:        workers,
			ElapsedSeconds: elapsed.Seconds(),
			QueriesPerSec:  qps,
			Speedup:        qps / base,
			AccessesPerQry: acc,
			P50Seconds:     time.Duration(sum.P50).Seconds(),
			P95Seconds:     time.Duration(sum.P95).Seconds(),
			P99Seconds:     time.Duration(sum.P99).Seconds(),
			AllocsPerQuery: allocs,
			BytesPerQuery:  bytesPer,
		})
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "   (speedup is relative to the first worker count; accesses/query from the aggregated shard stats;")
	fmt.Fprintln(w, "    percentiles are per-query wall times from a log-bucketed histogram, <=12.5% relative error;")
	fmt.Fprintln(w, "    allocs/query and B/query are process-wide MemStats deltas over the batch, so they include")
	fmt.Fprintln(w, "    executor and histogram overhead, not just the zero-copy traversal)")
	if cfg.OutPath != "" {
		art := concurrencyArtifact{
			Rects:       size,
			BufferPages: bufPages,
			Shards:      cfg.Shards,
			Queries:     len(qs),
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			Rows:        rows,
		}
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(cfg.OutPath, data, 0o644); err != nil {
			return fmt.Errorf("write concurrency artifact: %w", err)
		}
		fmt.Fprintf(w, "wrote %s\n", cfg.OutPath)
	}
	return nil
}
