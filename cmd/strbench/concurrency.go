package main

import (
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"strtree"
	"strtree/internal/datagen"
	"strtree/internal/histo"
	"strtree/internal/query"
)

// concurrencyConfig parameterizes the -concurrency mode: a packed tree
// behind a sharded buffer, hammered by the paper's 1%-region workload
// through Tree.SearchBatchCount at increasing worker counts.
type concurrencyConfig struct {
	Scale   float64 // fraction of the 100k-rectangle reference data set
	Queries int     // queries per worker-count run
	Seed    int64
	Shards  int   // buffer shards (power of two)
	Workers []int // worker counts to sweep
}

// parseWorkers parses the -workers flag ("1,2,4,8").
func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad worker count %q", part)
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty worker list")
	}
	return out, nil
}

// runConcurrency builds one tree and sweeps the worker counts, printing a
// throughput/scaling table. The buffer is dropped cold before each run so
// every worker count faces the same steady-state mix; access counts come
// from the sharded buffer's aggregated stats.
func runConcurrency(w io.Writer, cfg concurrencyConfig) error {
	size := int(100000 * cfg.Scale)
	if size < 20000 {
		size = 20000
	}
	bufPages := size / 100 / 2 // roughly half the leaf level
	if bufPages < 8*cfg.Shards {
		bufPages = 8 * cfg.Shards
	}
	entries := datagen.UniformSquares(size, 5.0, cfg.Seed)
	items := make([]strtree.Item, len(entries))
	for i, e := range entries {
		items[i] = strtree.Item{Rect: e.Rect, ID: e.Ref}
	}
	tree, err := strtree.New(strtree.Options{
		Capacity:     100,
		BufferPages:  bufPages,
		BufferShards: cfg.Shards,
	})
	if err != nil {
		return err
	}
	if err := tree.BulkLoad(items, strtree.PackSTR); err != nil {
		return err
	}
	qs := query.Regions(cfg.Queries, query.Extent1Pct, cfg.Seed+1)

	fmt.Fprintf(w, "== concurrent query serving: %d rects, %d buffer pages, %d shards, %d queries, GOMAXPROCS=%d ==\n",
		size, bufPages, cfg.Shards, len(qs), runtime.GOMAXPROCS(0))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workers\telapsed\tqueries/s\tspeedup\taccesses/query\tp50\tp95\tp99")
	var base float64
	var lat histo.Histogram
	for i, workers := range cfg.Workers {
		if err := tree.DropCaches(); err != nil {
			return err
		}
		tree.ResetStats()
		lat.Reset()
		start := time.Now()
		_, err := tree.SearchBatchCountTimed(qs, workers, func(_ int, d time.Duration) {
			lat.Observe(d)
		})
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		qps := float64(len(qs)) / elapsed.Seconds()
		if i == 0 {
			base = qps
		}
		acc := float64(tree.Stats().DiskReads) / float64(len(qs))
		sum := lat.Summarize()
		fmt.Fprintf(tw, "%d\t%v\t%.0f\t%.2fx\t%.2f\t%v\t%v\t%v\n",
			workers, elapsed.Round(time.Microsecond), qps, qps/base, acc,
			time.Duration(sum.P50).Round(time.Microsecond),
			time.Duration(sum.P95).Round(time.Microsecond),
			time.Duration(sum.P99).Round(time.Microsecond))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "   (speedup is relative to the first worker count; accesses/query from the aggregated shard stats;")
	fmt.Fprintln(w, "    percentiles are per-query wall times from a log-bucketed histogram, <=12.5% relative error)")
	return nil
}
