package main

import (
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"text/tabwriter"
	"time"

	"strtree/internal/buffer"
	"strtree/internal/datagen"
	"strtree/internal/node"
	"strtree/internal/pack"
	"strtree/internal/rtree"
	"strtree/internal/storage"
)

// buildConfig parameterizes the -build mode: bulk-load throughput sweeps
// over worker counts, for the in-memory STR path and the external
// (bounded-memory) STR path, with a per-phase breakdown and a checksum
// proving the packed trees are byte-identical at every worker count.
type buildConfig struct {
	N        int   // entries for the in-memory sweep
	ExtN     int   // entries for the external sweep (0 skips it)
	RunSize  int   // external sort run size
	Capacity int   // node capacity (the paper's n)
	Workers  []int // worker counts to sweep
	Seed     int64
}

// treeChecksum hashes every page of the pager — the whole packed tree,
// metadata included — so two builds compare byte for byte.
func treeChecksum(pg storage.Pager) (uint64, error) {
	h := fnv.New64a()
	buf := make([]byte, pg.PageSize())
	for id := 0; id < pg.NumPages(); id++ {
		if err := pg.ReadPage(storage.PageID(id), buf); err != nil {
			return 0, err
		}
		if _, err := h.Write(buf); err != nil {
			return 0, err
		}
	}
	return h.Sum64(), nil
}

// buildResult is one row of a sweep.
type buildResult struct {
	workers  int
	wall     time.Duration
	sort     time.Duration
	tile     time.Duration
	write    time.Duration
	checksum uint64
}

func fmtRate(n int, wall time.Duration) string {
	return fmt.Sprintf("%.2f", float64(n)/wall.Seconds()/1e6)
}

func printSweep(w io.Writer, n int, rs []buildResult) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workers\twall\tMentries/s\tspeedup\tsort\ttile\twrite\tchecksum")
	base := rs[0].wall.Seconds()
	for _, r := range rs {
		fmt.Fprintf(tw, "%d\t%v\t%s\t%.2fx\t%v\t%v\t%v\t%016x\n",
			r.workers, r.wall.Round(time.Millisecond), fmtRate(n, r.wall),
			base/r.wall.Seconds(),
			r.sort.Round(time.Millisecond), r.tile.Round(time.Millisecond),
			r.write.Round(time.Millisecond), r.checksum)
	}
	tw.Flush()
}

// checkIdentical fails the run if any worker count produced different
// tree bytes — the determinism guarantee the CI smoke asserts via this
// command's exit code.
func checkIdentical(rs []buildResult) error {
	for _, r := range rs[1:] {
		if r.checksum != rs[0].checksum {
			return fmt.Errorf("tree checksum mismatch: workers=%d gave %016x, workers=%d gave %016x",
				rs[0].workers, rs[0].checksum, r.workers, r.checksum)
		}
	}
	return nil
}

// runBuildBench sweeps the worker counts over the in-memory STR build and
// (when cfg.ExtN > 0) the external STR build, reporting throughput, the
// sort/tile/write phase split, and the tree checksum per worker count.
func runBuildBench(w io.Writer, cfg buildConfig) error {
	entries := datagen.UniformSquares(cfg.N, 5.0, cfg.Seed)
	fmt.Fprintf(w, "== build throughput: in-memory STR, %d entries, capacity %d, GOMAXPROCS=%d ==\n",
		cfg.N, cfg.Capacity, runtime.GOMAXPROCS(0))

	var results []buildResult
	for _, workers := range cfg.Workers {
		pg := storage.NewMemPager(storage.DefaultPageSize)
		pool := buffer.NewPool(pg, 1024)
		tr, err := rtree.Create(pool, rtree.Config{Dims: 2, Capacity: cfg.Capacity, Workers: workers})
		if err != nil {
			return err
		}
		timing := &pack.STRTiming{}
		cp := make([]node.Entry, len(entries))
		copy(cp, entries)
		t0 := time.Now()
		if err := tr.BulkLoad(cp, pack.STR{Workers: workers, Timing: timing}); err != nil {
			return err
		}
		wall := time.Since(t0)
		sum, err := treeChecksum(pg)
		if err != nil {
			return err
		}
		stats := tr.LastBuildStats()
		results = append(results, buildResult{
			workers:  workers,
			wall:     wall,
			sort:     time.Duration(timing.SortNanos.Load()),
			tile:     time.Duration(timing.TileNanos.Load()),
			write:    stats.Write,
			checksum: sum,
		})
	}
	printSweep(w, cfg.N, results)
	if err := checkIdentical(results); err != nil {
		return err
	}

	if cfg.ExtN <= 0 {
		return nil
	}
	extEntries := datagen.UniformSquares(cfg.ExtN, 5.0, cfg.Seed+1)
	fmt.Fprintf(w, "\n== build throughput: external STR, %d entries, run size %d, capacity %d ==\n",
		cfg.ExtN, cfg.RunSize, cfg.Capacity)
	var extResults []buildResult
	for _, workers := range cfg.Workers {
		pg := storage.NewMemPager(storage.DefaultPageSize)
		pool := buffer.NewPool(pg, 1024)
		tr, err := rtree.Create(pool, rtree.Config{Dims: 2, Capacity: cfg.Capacity, Workers: workers})
		if err != nil {
			return err
		}
		packer := pack.STRExternal{RunSize: cfg.RunSize, Workers: workers}
		t0 := time.Now()
		if err := loadExternal(tr, packer, extEntries, workers); err != nil {
			return err
		}
		wall := time.Since(t0)
		sum, err := treeChecksum(pg)
		if err != nil {
			return err
		}
		stats := tr.LastBuildStats()
		extResults = append(extResults, buildResult{
			workers:  workers,
			wall:     wall,
			write:    stats.Write,
			checksum: sum,
		})
	}
	// The external path has no sort/tile split (ordering happens inside
	// the external merge sorts), so those columns read as zero.
	printSweep(w, cfg.ExtN, extResults)
	return checkIdentical(extResults)
}

// loadExternal packs entries through the external sorter into tr, the
// same wiring strtree.BulkLoadExternal uses.
func loadExternal(tr *rtree.Tree, packer pack.STRExternal, entries []node.Entry, workers int) error {
	i := 0
	src := func() (node.Entry, bool) {
		if i >= len(entries) {
			return node.Entry{}, false
		}
		e := entries[i]
		i++
		return e, true
	}
	ch := make(chan node.Entry, 256)
	errc := make(chan error, 1)
	go func() {
		defer close(ch)
		errc <- packer.Pack(tr.Capacity(), src, func(e node.Entry) error {
			ch <- e
			return nil
		})
	}()
	loadErr := tr.BulkLoadOrdered(func() (node.Entry, bool, error) {
		e, ok := <-ch
		return e, ok, nil
	}, pack.STR{Workers: workers})
	for range ch {
	}
	if packErr := <-errc; packErr != nil {
		return packErr
	}
	return loadErr
}
