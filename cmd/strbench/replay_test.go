package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"strtree"
	"strtree/internal/geom"
)

// writeReplayFixture builds a small packed index and a slow-query
// capture covering every replayable op, returning both paths.
func writeReplayFixture(t *testing.T) (idxPath, logPath string) {
	t.Helper()
	dir := t.TempDir()
	idxPath = filepath.Join(dir, "index.str")
	tree, err := strtree.Create(idxPath, strtree.Options{Capacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	items := make([]strtree.Item, 200)
	for i := range items {
		x := float64(i%20) / 20
		y := float64(i/20) / 10
		items[i] = strtree.Item{Rect: geom.R2(x, y, x+0.03, y+0.03), ID: uint64(i)}
	}
	if err := tree.BulkLoad(items, strtree.PackSTR); err != nil {
		t.Fatal(err)
	}
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}

	logPath = filepath.Join(dir, "slow.jsonl")
	capture := strings.Join([]string{
		`{"op":"search","rect":{"min":[0.1,0.1],"max":[0.5,0.5]},"duration_ns":1000,"results":1,"status":"ok"}`,
		`{"op":"count","rect":{"min":[0,0],"max":[1,1]},"duration_ns":1000,"results":200,"status":"ok"}`,
		`{"op":"searchpoint","point":[0.25,0.25],"duration_ns":1000,"results":1,"status":"ok"}`,
		`{"op":"nearest","point":[0.5,0.5],"k":3,"duration_ns":1000,"results":3,"status":"ok"}`,
		`{"op":"batch","batch":[{"min":[0,0],"max":[0.2,0.2]},{"min":[0.5,0.5],"max":[0.7,0.7]}],"duration_ns":1000,"results":9,"status":"ok"}`,
		`{"op":"stats","duration_ns":1000,"results":0,"status":"ok"}`,
	}, "\n") + "\n"
	if err := os.WriteFile(logPath, []byte(capture), 0o644); err != nil {
		t.Fatal(err)
	}
	return idxPath, logPath
}

func TestRunReplay(t *testing.T) {
	idxPath, logPath := writeReplayFixture(t)
	var out bytes.Buffer
	err := runReplay(&out, logPath, replayConfig{idx: idxPath, bufPages: 64, shards: 1})
	if err != nil {
		t.Fatalf("replay failed: %v\n%s", err, out.String())
	}
	report := out.String()
	for _, want := range []string{
		"replaying 6 captured queries",
		"search", "count", "searchpoint", "nearest", "batch",
		"total: 6 queries",
		"logical reads",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

// TestRunReplaySkipsBadRecords proves one malformed record is reported
// and skipped rather than aborting the replay.
func TestRunReplaySkipsBadRecords(t *testing.T) {
	idxPath, logPath := writeReplayFixture(t)
	f, err := os.OpenFile(logPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"nearest","point":[0.5,0.5],"duration_ns":1,"results":0,"status":"ok"}` + "\n"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := runReplay(&out, logPath, replayConfig{idx: idxPath, bufPages: 64, shards: 1}); err != nil {
		t.Fatalf("replay failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "1 skipped") {
		t.Errorf("missing-k record not skipped:\n%s", out.String())
	}
}

func TestRunReplayErrors(t *testing.T) {
	idxPath, logPath := writeReplayFixture(t)
	var out bytes.Buffer
	if err := runReplay(&out, logPath, replayConfig{}); err == nil {
		t.Error("missing -idx accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runReplay(&out, empty, replayConfig{idx: idxPath}); err == nil {
		t.Error("empty capture accepted")
	}
	if err := runReplay(&out, filepath.Join(t.TempDir(), "nosuch.jsonl"), replayConfig{idx: idxPath}); err == nil {
		t.Error("missing capture file accepted")
	}
}
