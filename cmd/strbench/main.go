// Command strbench regenerates the tables and figures of the STR paper's
// evaluation section.
//
// Usage:
//
//	strbench [-exp table2,fig9|all] [-scale 0.2] [-queries 500] [-full] [-seed 1]
//	strbench -concurrency [-workers 1,2,4,8] [-shards 8] [-scale 0.2] [-queries 500] [-concurrency-out sweep.json]
//	strbench -build [-n 1000000] [-extn 200000] [-runsize 65536] [-workers 1,2,4,8]
//	strbench -ci BENCH_CI.json [-baseline BENCH_BASELINE.json]
//	strbench -replay slow.jsonl -idx index.str [-buffer 256] [-k 10]
//
// Each experiment prints the same rows the paper reports (figures are
// emitted as their data series). By default the suite runs at one fifth of
// the paper's data and buffer sizes so it finishes in minutes; -full uses
// the paper's exact configuration (hundreds of millions of page requests —
// expect a long run).
//
// -concurrency benchmarks the concurrent query path instead: it builds one
// packed tree over a sharded buffer and sweeps the batch executor's worker
// count, reporting throughput, scaling and accesses per query.
//
// -build benchmarks the bulk-load pipeline instead: it sweeps the worker
// count over an in-memory STR build and an external (bounded-memory) STR
// build, reporting entries/sec, the sort/tile/write phase split, and a
// checksum over the packed tree's pages — the run exits non-zero if any
// worker count produces different tree bytes.
//
// -ci runs a fixed deterministic experiment slice and writes the results
// as JSON; with -baseline it compares against a committed report and exits
// non-zero on any access-count drift (see ci.go).
//
// -replay re-executes a slow-query capture (strserve -slowlog-json)
// against an index file and reports per-op counts, latency percentiles
// and buffer-pool access counts — the offline half of the capture-replay
// loop (see replay.go).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"strtree/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "comma-separated experiment ids (e.g. table2,fig9) or 'all'")
		scale   = flag.Float64("scale", 0.2, "fraction of the paper's data and buffer sizes")
		queries = flag.Int("queries", 500, "queries per experiment (paper: 2000)")
		full    = flag.Bool("full", false, "run the paper's exact configuration (overrides -scale/-queries)")
		seed    = flag.Int64("seed", 1, "random seed for data and queries")
		format  = flag.String("format", "table", "output format: table or csv")
		jobs    = flag.Int("j", 1, "experiments to run concurrently")
		trials  = flag.Int("trials", 1, "trials to average per experiment (different seeds)")
		list    = flag.Bool("list", false, "list available experiments and exit")

		concurrency    = flag.Bool("concurrency", false, "run the concurrent query benchmark instead of the paper suite")
		workers        = flag.String("workers", "1,2,4,8", "worker counts to sweep in -concurrency and -build modes (comma-separated)")
		shards         = flag.Int("shards", 8, "buffer shards in -concurrency mode (power of two)")
		concurrencyOut = flag.String("concurrency-out", "", "with -concurrency: also write the sweep as a JSON artifact to this file")

		build   = flag.Bool("build", false, "run the bulk-load throughput benchmark instead of the paper suite")
		buildN  = flag.Int("n", 1000000, "entries for the in-memory sweep in -build mode")
		extN    = flag.Int("extn", 200000, "entries for the external sweep in -build mode (0 skips it)")
		runSize = flag.Int("runsize", 1<<16, "external sort run size in -build mode")

		ci       = flag.String("ci", "", "write a deterministic benchmark report (JSON) to this file and exit")
		baseline = flag.String("baseline", "", "with -ci: compare the report against this baseline, exit 1 on drift")

		replay    = flag.String("replay", "", "replay a strserve -slowlog-json capture against -idx and report per-op cost")
		replayIdx = flag.String("idx", "", "with -replay: index file to replay against")
		bufPages  = flag.Int("buffer", 256, "with -replay: buffer pool pages")
		bufShards = flag.Int("bufshards", 1, "with -replay: buffer pool shards")
		replayK   = flag.Int("k", 0, "with -replay: override k for nearest records (0 keeps the captured k)")
	)
	flag.Parse()

	if *replay != "" {
		err := runReplay(os.Stdout, *replay, replayConfig{
			idx:      *replayIdx,
			bufPages: *bufPages,
			shards:   *bufShards,
			k:        *replayK,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "strbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *ci != "" {
		if err := runCI(*ci, *baseline); err != nil {
			fmt.Fprintf(os.Stderr, "strbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *build {
		ws, err := parseWorkers(*workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "strbench: -workers: %v\n", err)
			os.Exit(2)
		}
		err = runBuildBench(os.Stdout, buildConfig{
			N:        *buildN,
			ExtN:     *extN,
			RunSize:  *runSize,
			Capacity: 100,
			Workers:  ws,
			Seed:     *seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "strbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *concurrency {
		ws, err := parseWorkers(*workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "strbench: -workers: %v\n", err)
			os.Exit(2)
		}
		err = runConcurrency(os.Stdout, concurrencyConfig{
			Scale:   *scale,
			Queries: *queries,
			Seed:    *seed,
			Shards:  *shards,
			Workers: ws,
			OutPath: *concurrencyOut,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "strbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	cfg := experiments.Config{Scale: *scale, Queries: *queries, Capacity: 100, Seed: *seed}
	if *full {
		cfg = experiments.Full()
		cfg.Seed = *seed
	}

	var ids []string
	if *exp == "all" {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	// Validate up front so a typo fails before any long run starts.
	runners := make([]experiments.Runner, len(ids))
	for i, id := range ids {
		runner, ok := experiments.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "strbench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		runners[i] = runner
	}

	// Run with bounded concurrency, emitting results in request order.
	type result struct {
		table   *experiments.Table
		err     error
		elapsed time.Duration
	}
	results := make([]chan result, len(ids))
	sem := make(chan struct{}, maxInt(*jobs, 1))
	for i := range ids {
		results[i] = make(chan result, 1)
		go func(i int) {
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			table, err := experiments.RunTrials(runners[i], cfg, *trials)
			results[i] <- result{table: table, err: err, elapsed: time.Since(start)}
		}(i)
	}

	for i, id := range ids {
		res := <-results[i]
		if res.err != nil {
			fmt.Fprintf(os.Stderr, "strbench: %s: %v\n", id, res.err)
			os.Exit(1)
		}
		table := res.table
		switch *format {
		case "csv":
			fmt.Printf("# %s: %s\n", table.ID, table.Title)
			if err := table.FprintCSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "strbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Println()
		case "table":
			if err := table.Fprint(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "strbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("   [%s completed in %v]\n\n", id, res.elapsed.Round(time.Millisecond))
		default:
			fmt.Fprintf(os.Stderr, "strbench: unknown format %q\n", *format)
			os.Exit(2)
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
