package main

// This file is `strbench -replay`: the replay half of the slow-query
// capture loop. strserve -slowlog-json appends one JSON record per slow
// request; -replay re-executes that captured workload against an index
// file and reports per-op counts, latency percentiles and buffer-pool
// access counts, so a production slow tail can be reproduced and
// measured offline against different buffer sizes or packings.

import (
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"strtree"
	"strtree/internal/server"
	"strtree/internal/server/wire"
)

type replayConfig struct {
	idx      string
	bufPages int
	shards   int
	k        int // override for nearest records missing k (0 keeps capture)
}

type replayOpStats struct {
	count   int
	results uint64
	lats    []time.Duration
}

// runReplay loads the captured slow queries, re-executes them in capture
// order against the index, and prints the per-op cost report.
func runReplay(w io.Writer, logPath string, cfg replayConfig) error {
	f, err := os.Open(logPath)
	if err != nil {
		return err
	}
	records, err := server.ReadSlowLog(f)
	_ = f.Close()
	if err != nil {
		return err
	}
	if len(records) == 0 {
		return fmt.Errorf("replay: %s holds no records", logPath)
	}
	if cfg.idx == "" {
		return fmt.Errorf("replay: -idx is required")
	}

	tree, err := strtree.Open(cfg.idx, strtree.Options{
		BufferPages:  cfg.bufPages,
		BufferShards: cfg.shards,
	})
	if err != nil {
		return err
	}
	defer func() { _ = tree.Close() }()
	tree.ResetStats()

	fmt.Fprintf(w, "replaying %d captured queries from %s against %s (%d items, height %d)\n",
		len(records), logPath, cfg.idx, tree.Len(), tree.Height())

	perOp := map[string]*replayOpStats{}
	var all []time.Duration
	skipped := 0
	start := time.Now()
	for i := range records {
		req, err := records[i].Request()
		if err != nil {
			fmt.Fprintf(w, "  skip record %d: %v\n", i+1, err)
			skipped++
			continue
		}
		n, err := replayOne(tree, req, cfg.k)
		if err != nil {
			return fmt.Errorf("replay record %d (%s): %w", i+1, records[i].Op, err)
		}
		elapsed := n.elapsed
		st := perOp[records[i].Op]
		if st == nil {
			st = &replayOpStats{}
			perOp[records[i].Op] = st
		}
		st.count++
		st.results += n.results
		st.lats = append(st.lats, elapsed)
		all = append(all, elapsed)
	}
	wall := time.Since(start)
	if len(all) == 0 {
		return fmt.Errorf("replay: all %d records were unreplayable", len(records))
	}

	ops := make([]string, 0, len(perOp))
	for op := range perOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	fmt.Fprintf(w, "%-12s %8s %10s %10s %10s %10s %10s\n",
		"op", "queries", "results", "p50", "p95", "p99", "max")
	for _, op := range ops {
		st := perOp[op]
		sort.Slice(st.lats, func(a, b int) bool { return st.lats[a] < st.lats[b] })
		fmt.Fprintf(w, "%-12s %8d %10d %10v %10v %10v %10v\n",
			op, st.count, st.results,
			quantileDur(st.lats, 0.50), quantileDur(st.lats, 0.95),
			quantileDur(st.lats, 0.99), st.lats[len(st.lats)-1])
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	io1 := tree.Stats()
	fmt.Fprintf(w, "total: %d queries in %v (%.0f q/s), p50 %v, p99 %v",
		len(all), wall.Round(time.Millisecond),
		float64(len(all))/wall.Seconds(),
		quantileDur(all, 0.50), quantileDur(all, 0.99))
	if skipped > 0 {
		fmt.Fprintf(w, ", %d skipped", skipped)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "io: %d logical reads, %d disk reads, %d evictions (%.2f logical reads/query)\n",
		io1.LogicalReads, io1.DiskReads, io1.Evictions,
		float64(io1.LogicalReads)/float64(len(all)))
	return nil
}

type replayResult struct {
	results uint64
	elapsed time.Duration
}

// replayOne executes one captured request against the tree, timing the
// query alone.
func replayOne(tree *strtree.Tree, req *wire.Request, kOverride int) (replayResult, error) {
	var results uint64
	start := time.Now()
	var err error
	switch req.Op {
	case wire.OpSearch:
		err = tree.Search(req.Query, func(strtree.Item) bool { results++; return true })
	case wire.OpCount:
		var n int
		n, err = tree.Count(req.Query)
		results = uint64(n)
	case wire.OpSearchPoint:
		err = tree.SearchPoint(req.Point, func(strtree.Item) bool { results++; return true })
	case wire.OpNearest:
		k := int(req.K)
		if kOverride > 0 {
			k = kOverride
		}
		var items []strtree.Item
		items, _, err = tree.NearestK(req.Point, k)
		results = uint64(len(items))
	case wire.OpBatch:
		var per [][]strtree.Item
		per, err = tree.SearchBatch(req.Batch, 1)
		for _, r := range per {
			results += uint64(len(r))
		}
	case wire.OpStats:
		// Nothing to execute locally; a stats record is cost-free.
	default:
		return replayResult{}, fmt.Errorf("unsupported op %v", req.Op)
	}
	elapsed := time.Since(start)
	if err != nil {
		return replayResult{}, err
	}
	return replayResult{results: results, elapsed: elapsed}, nil
}

// quantileDur reads the q-quantile from an ascending-sorted sample by
// nearest rank.
func quantileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
