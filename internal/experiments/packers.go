package experiments

import (
	"fmt"

	"strtree/internal/datagen"
	"strtree/internal/node"
	"strtree/internal/pack"
	"strtree/internal/rtree"
)

func init() {
	Register("extpackers", ExtPackers)
}

// ExtPackers runs the full packing-algorithm roster — the paper's three
// plus TGS (the same authors' follow-up) and serpentine STR — across all
// four data-set families at one small-buffer operating point. It answers
// the paper's concluding question ("developing a new algorithm that works
// well for all types of data is a challenge") for the algorithms this
// repository implements.
func ExtPackers(cfg Config) (*Table, error) {
	packers := []rtree.Orderer{
		pack.STR{}, pack.HS{}, pack.NX{}, pack.TGS{}, pack.Serpentine{},
	}
	header := []string{"Data Set", "Query Class"}
	for _, p := range packers {
		header = append(header, p.Name())
	}
	t := &Table{
		ID:     "Extension Packers",
		Title:  "Disk Accesses per Query, All Packing Algorithms x All Data Families, Buffer = paper 50",
		Note:   scaleNote(cfg),
		Header: header,
	}
	buf := cfg.bufPages(50)
	families := []struct {
		name    string
		entries []node.Entry
	}{
		{"uniform d=5", datagen.UniformSquares(cfg.size(100000), 5.0, cfg.Seed)},
		{"tiger (sim)", datagen.Tiger(cfg.size(datagen.TigerSize), cfg.Seed)},
		{"vlsi (sim)", datagen.VLSI(cfg.size(100000), cfg.Seed)},
		{"cfd (sim)", datagen.CFD(cfg.size(datagen.CFDSize), cfg.Seed)},
	}
	for _, fam := range families {
		var workloads []workload
		if fam.name == "cfd (sim)" {
			workloads = cfdWorkloads(cfg)[:2]
		} else {
			workloads = fullSpaceWorkloads(cfg)[:2]
		}
		// Build each packer's tree once per family, reuse per workload.
		trees := make([]*rtree.Tree, len(packers))
		for i, p := range packers {
			tr, err := BuildPacked(fam.entries, p, buf, cfg.Capacity)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", fam.name, p.Name(), err)
			}
			trees[i] = tr
		}
		for _, w := range workloads {
			row := []string{fam.name, shortLabel(w.label)}
			for i := range packers {
				acc, err := AvgAccesses(trees[i], w.queries)
				if err != nil {
					return nil, err
				}
				row = append(row, f2(acc))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

func shortLabel(l string) string {
	switch {
	case l == "Point Queries":
		return "point"
	default:
		return "region 1%"
	}
}
