package experiments

import (
	"fmt"
	"math/rand"

	"strtree/internal/buffer"
	"strtree/internal/datagen"
	"strtree/internal/geom"
	"strtree/internal/metrics"
	"strtree/internal/node"
	"strtree/internal/pack"
	"strtree/internal/query"
	"strtree/internal/rtree"
	"strtree/internal/storage"
)

func init() {
	Register("ext3d", Ext3D)
	Register("extdynamic", ExtDynamic)
	Register("extsplits", ExtSplits)
	Register("extwarmup", ExtWarmup)
	Register("extmodel", ExtModel)
}

// ExtensionIDs lists the experiments that go beyond the paper's tables
// and figures.
func ExtensionIDs() []string {
	return []string{
		"ext3d", "extdynamic", "extsplits", "extwarmup", "extmodel",
		"extpolicy", "extqorder", "extpackers", "extlevels",
	}
}

// Ext3D evaluates the k = 3 generalization of STR (paper Section 2.2
// describes the recursion for k > 2 but evaluates only k = 2): disk
// accesses for cube queries on uniform 3-D points, STR vs HS vs NX.
func Ext3D(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "Extension 3-D",
		Title:  "Disk Accesses, Uniform 3-D Points, Cube Region Queries",
		Note:   scaleNote(cfg),
		Header: []string{"Data Size", "Query Side", "STR", "HS", "NX", "HS/STR", "NX/STR"},
	}
	capacity := 72 // 3-D capacity of a 4 KiB page
	algs := []Algorithm{
		{Name: "STR", Orderer: pack.STR{}},
		{Name: "HS", Orderer: pack.HS{}},
		{Name: "NX", Orderer: pack.NX{}},
	}
	for _, paperSize := range []int{25000, 100000} {
		r := cfg.size(paperSize)
		entries := uniform3D(r, cfg.Seed)
		for _, side := range []float64{0.1, 0.3} {
			qs := cubes(cfg.Queries, side, cfg.Seed+200)
			var acc [3]float64
			for ai, alg := range algs {
				pool := buffer.NewPool(storage.NewMemPager(4096), cfg.bufPages(50))
				tr, err := rtree.Create(pool, rtree.Config{Dims: 3, Capacity: capacity})
				if err != nil {
					return nil, err
				}
				cp := make([]node.Entry, len(entries))
				copy(cp, entries)
				if err := tr.BulkLoad(cp, alg.Orderer); err != nil {
					return nil, err
				}
				a, err := AvgAccesses(tr, qs)
				if err != nil {
					return nil, err
				}
				acc[ai] = a
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", r), fmt.Sprintf("%.1f", side),
				f2(acc[0]), f2(acc[1]), f2(acc[2]),
				ratio(acc[1], acc[0]), ratio(acc[2], acc[0]),
			})
		}
	}
	return t, nil
}

func uniform3D(r int, seed int64) []node.Entry {
	rng := rand.New(rand.NewSource(seed))
	out := make([]node.Entry, r)
	for i := range out {
		p := geom.Point{rng.Float64(), rng.Float64(), rng.Float64()}
		out[i] = node.Entry{Rect: geom.PointRect(p), Ref: uint64(i)}
	}
	return out
}

func cubes(n int, side float64, seed int64) []geom.Rect {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Rect, n)
	for i := range out {
		lo := geom.Point{rng.Float64(), rng.Float64(), rng.Float64()}
		hi := geom.Point{min1(lo[0] + side), min1(lo[1] + side), min1(lo[2] + side)}
		out[i] = geom.Rect{Min: lo, Max: hi}
	}
	return out
}

func min1(v float64) float64 {
	if v > 1 {
		return 1
	}
	return v
}

// ExtDynamic quantifies the paper's motivation: Guttman one-at-a-time
// loading versus STR packing, on space utilization and query accesses.
func ExtDynamic(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "Extension Dynamic",
		Title:  "Packed (STR) vs Dynamic (Guttman) Loading, Density-5 Data, 1% Region Queries",
		Note:   scaleNote(cfg),
		Header: []string{"Data Size", "Build", "Leaf Nodes", "Utilization", "Accesses/Query"},
	}
	qs := query.Regions(cfg.Queries, query.Extent1Pct, cfg.Seed+300)
	for _, paperSize := range []int{25000, 100000} {
		r := cfg.size(paperSize)
		entries := datagen.UniformSquares(r, 5.0, cfg.Seed)
		buf := cfg.bufPages(50)

		packed, err := BuildPacked(entries, pack.STR{}, buf, cfg.Capacity)
		if err != nil {
			return nil, err
		}

		pool := buffer.NewPool(storage.NewMemPager(4096), buf)
		dynamic, err := rtree.Create(pool, rtree.Config{Dims: 2, Capacity: cfg.Capacity, Split: rtree.SplitQuadratic})
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if err := dynamic.Insert(e.Rect, e.Ref); err != nil {
				return nil, err
			}
		}

		for _, tc := range []struct {
			name string
			tr   *rtree.Tree
		}{{"STR pack", packed}, {"Guttman", dynamic}} {
			perLevel, err := tc.tr.NodesPerLevel()
			if err != nil {
				return nil, err
			}
			leaves := perLevel[len(perLevel)-1]
			acc, err := AvgAccesses(tc.tr, qs)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", r), tc.name,
				fmt.Sprintf("%d", leaves),
				fmt.Sprintf("%.1f%%", 100*float64(r)/float64(leaves*cfg.Capacity)),
				f2(acc),
			})
		}
	}
	return t, nil
}

// ExtWarmup traces the LRU warm-up transient the paper's methodology
// accounts for (it cites Bhide, Dan & Dias on exactly this effect): mean
// disk accesses per point query over successive windows of the batch,
// starting from a cold buffer, for LRU and its Clock approximation.
func ExtWarmup(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "Extension Warm-up",
		Title:  "Buffer Warm-up: Accesses per Point Query by Batch Window, Uniform Data",
		Note:   scaleNote(cfg),
		Header: []string{"Query Window", "LRU", "Clock", "Clock/LRU"},
	}
	r := cfg.size(100000)
	entries := datagen.UniformPoints(r, cfg.Seed)
	buf := cfg.bufPages(250)
	qs := query.Points(cfg.Queries, cfg.Seed+500)
	const windows = 5
	win := len(qs) / windows
	if win == 0 {
		win = 1
	}
	series := make([][]float64, 2)
	for pi, policy := range []buffer.Policy{buffer.LRU, buffer.Clock} {
		pool := buffer.NewPoolWithPolicy(storage.NewMemPager(4096), buf, policy)
		tr, err := rtree.Create(pool, rtree.Config{Dims: 2, Capacity: cfg.Capacity})
		if err != nil {
			return nil, err
		}
		cp := make([]node.Entry, len(entries))
		copy(cp, entries)
		if err := tr.BulkLoad(cp, pack.STR{}); err != nil {
			return nil, err
		}
		if err := pool.Invalidate(); err != nil {
			return nil, err
		}
		pool.ResetStats()
		prev := int64(0)
		for start := 0; start < len(qs); start += win {
			end := start + win
			if end > len(qs) {
				end = len(qs)
			}
			for _, q := range qs[start:end] {
				if err := tr.Search(q, func(node.Entry) bool { return true }); err != nil {
					return nil, err
				}
			}
			cur := pool.Stats().DiskReads
			series[pi] = append(series[pi], float64(cur-prev)/float64(end-start))
			prev = cur
		}
	}
	for w := range series[0] {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d-%d", w*win+1, (w+1)*win),
			f2(series[0][w]), f2(series[1][w]),
			ratio(series[1][w], series[0][w]),
		})
	}
	return t, nil
}

// ExtModel compares the Kamel-Faloutsos analytical access model (no
// buffering) against measured buffer misses across buffer sizes. The
// model should track the measured numbers closely at tiny buffers and
// overshoot increasingly as the buffer absorbs re-accesses — the paper's
// argument for measuring with buffers instead of trusting geometry.
func ExtModel(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "Extension Cost Model",
		Title:  "Analytical Expected Accesses vs Measured, STR, Density-5 Data, 1% Region Queries",
		Note:   scaleNote(cfg),
		Header: []string{"Buffer Size", "Model (no buffer)", "Measured", "Measured/Model"},
	}
	r := cfg.size(100000)
	entries := datagen.UniformSquares(r, 5.0, cfg.Seed)
	qs := query.Regions(cfg.Queries, query.Extent1Pct, cfg.Seed+600)
	for _, pb := range []int{10, 50, 250, 1000} {
		buf := cfg.bufPages(pb)
		tr, err := BuildPacked(entries, pack.STR{}, buf, cfg.Capacity)
		if err != nil {
			return nil, err
		}
		model, err := metrics.ExpectedAccesses(tr, []float64{query.Extent1Pct, query.Extent1Pct})
		if err != nil {
			return nil, err
		}
		measured, err := AvgAccesses(tr, qs)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", buf), f2(model), f2(measured), ratio(measured, model),
		})
	}
	return t, nil
}

// ExtSplits compares the three dynamic split heuristics (linear,
// quadratic, R*) on query accesses after a pure-insert load.
func ExtSplits(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "Extension Splits",
		Title:  "Dynamic Split Heuristics, Density-5 Data, 1% Region Queries",
		Note:   scaleNote(cfg),
		Header: []string{"Data Size", "Split", "Leaf Nodes", "Accesses/Query"},
	}
	qs := query.Regions(cfg.Queries, query.Extent1Pct, cfg.Seed+400)
	r := cfg.size(25000)
	entries := datagen.UniformSquares(r, 5.0, cfg.Seed)
	buf := cfg.bufPages(50)
	for _, split := range []rtree.SplitAlgorithm{rtree.SplitLinear, rtree.SplitQuadratic, rtree.SplitRStar} {
		pool := buffer.NewPool(storage.NewMemPager(4096), buf)
		tr, err := rtree.Create(pool, rtree.Config{Dims: 2, Capacity: cfg.Capacity, Split: split})
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if err := tr.Insert(e.Rect, e.Ref); err != nil {
				return nil, err
			}
		}
		perLevel, err := tr.NodesPerLevel()
		if err != nil {
			return nil, err
		}
		acc, err := AvgAccesses(tr, qs)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r), split.String(),
			fmt.Sprintf("%d", perLevel[len(perLevel)-1]),
			f2(acc),
		})
	}
	return t, nil
}
