package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"strtree/internal/datagen"
	"strtree/internal/pack"
	"strtree/internal/query"
)

// tinyConfig keeps every experiment fast enough for the unit-test suite.
func tinyConfig() Config {
	return Config{Scale: 0.02, Queries: 60, Capacity: 25, Seed: 7}
}

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the paper's evaluation must be present.
	want := []string{
		"table1", "table2", "table3", "table4", "table5",
		"table6", "table7", "table8", "table9", "table10",
		"fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
	}
	want = append(want, ExtensionIDs()...)
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if got := len(IDs()); got != len(want) {
		t.Errorf("registry holds %d experiments, want %d: %v", got, len(want), IDs())
	}
}

func TestIDsOrdering(t *testing.T) {
	ids := IDs()
	// Tables first, in numeric order.
	if ids[0] != "table1" || ids[1] != "table2" {
		t.Fatalf("IDs start with %v", ids[:2])
	}
	if ids[len(ids)-1] != "fig12" {
		t.Fatalf("IDs end with %v", ids[len(ids)-1])
	}
}

func TestLookupCaseInsensitive(t *testing.T) {
	if _, ok := Lookup("Table2"); !ok {
		t.Fatal("case-insensitive lookup failed")
	}
	if _, ok := Lookup("table99"); ok {
		t.Fatal("phantom experiment found")
	}
}

func TestAllExperimentsRun(t *testing.T) {
	cfg := tinyConfig()
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			r, _ := Lookup(id)
			tbl, err := r(cfg)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if tbl.ID == "" || tbl.Title == "" {
				t.Fatalf("%s: missing identification", id)
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s: no rows", id)
			}
			for i, row := range tbl.Rows {
				if len(row) != len(tbl.Header) {
					t.Fatalf("%s row %d: %d cells, header has %d", id, i, len(row), len(tbl.Header))
				}
			}
			var sb strings.Builder
			if err := tbl.Fprint(&sb); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(sb.String(), tbl.Title) {
				t.Fatalf("%s: printed output missing the title", id)
			}
		})
	}
}

// cell parses a numeric table cell.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("cell %q: %v", s, err)
	}
	return v
}

// TestTable2Shape verifies the headline directional claims on a larger
// scaled run: on uniform data STR needs fewer accesses than HS, and NX is
// far worse than STR for region queries on region data.
func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Config{Scale: 0.1, Queries: 300, Capacity: 100, Seed: 3}
	tbl, err := syntheticAccesses(cfg, 10, "Table 2")
	if err != nil {
		t.Fatal(err)
	}
	var strWins, rows int
	for _, row := range tbl.Rows {
		rows++
		str := cell(t, row[2])
		hs := cell(t, row[3])
		if str <= hs*1.02 {
			strWins++
		}
		// The NX penalty needs enough leaves for its strips to be skinny;
		// skip the 10-leaf smallest size.
		if strings.HasPrefix(row[0], "Region") && cell(t, row[1]) >= 2500 {
			// NX/STR ratio on density-5 data must exceed 1.5 for region
			// queries (paper: 2-8x).
			if nxRatio := cell(t, row[11]); nxRatio < 1.5 {
				t.Errorf("row %v: NX/STR ratio %.2f too small", row[:2], nxRatio)
			}
		}
	}
	if strWins < rows*3/4 {
		t.Errorf("STR beat HS on only %d/%d synthetic rows", strWins, rows)
	}
}

func TestBuildPackedAndAvgAccesses(t *testing.T) {
	entries := datagen.UniformPoints(2000, 1)
	tr, err := BuildPacked(entries, pack.STR{}, 10, 50)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Stats arrive zeroed.
	if s := tr.Pool().Stats(); s.DiskReads != 0 {
		// Validate walks the tree, so reset before measuring.
		tr.Pool().ResetStats()
	}
	qs := query.Points(100, 2)
	acc, err := AvgAccesses(tr, qs)
	if err != nil {
		t.Fatal(err)
	}
	// A point query on a 3-level tree (41 leaves) with a 10-page buffer
	// must average at least one access and fewer than the tree height
	// times a small overlap factor.
	if acc <= 0 || acc > 6 {
		t.Fatalf("avg accesses = %g", acc)
	}
	// A huge buffer drives accesses toward zero after warm-up.
	tr2, err := BuildPacked(entries, pack.STR{}, 512, 50)
	if err != nil {
		t.Fatal(err)
	}
	acc2, err := AvgAccesses(tr2, qs)
	if err != nil {
		t.Fatal(err)
	}
	if acc2 >= acc {
		t.Fatalf("bigger buffer did not help: %g vs %g", acc2, acc)
	}
}

func TestConfigScaling(t *testing.T) {
	cfg := Config{Scale: 0.1, Queries: 10, Capacity: 100, Seed: 1}
	if got := cfg.size(10000); got != 1000 {
		t.Fatalf("size(10000) = %d", got)
	}
	if got := cfg.size(100); got != 200 {
		t.Fatalf("size floor: %d, want 200 (two leaves)", got)
	}
	if got := cfg.bufPages(250); got != 25 {
		t.Fatalf("bufPages(250) = %d", got)
	}
	if got := cfg.bufPages(10); got != 3 {
		t.Fatalf("bufPages floor: %d, want 3", got)
	}
	full := Full()
	if full.Scale != 1 || full.Queries != query.PaperCount || full.Capacity != 100 {
		t.Fatalf("Full() = %+v", full)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register("table1", Table1)
}

func TestPaperAlgorithmsOrder(t *testing.T) {
	algs := PaperAlgorithms()
	if len(algs) != 3 || algs[0].Name != "STR" || algs[1].Name != "HS" || algs[2].Name != "NX" {
		t.Fatalf("algorithms = %+v", algs)
	}
}

func TestRunTrialsAverages(t *testing.T) {
	calls := 0
	r := func(cfg Config) (*Table, error) {
		calls++
		v := fmt.Sprintf("%d", cfg.Seed) // numeric cell varying by seed
		return &Table{
			ID: "T", Title: "t", Note: "n",
			Header: []string{"label", "value"},
			Rows:   [][]string{{"row", v}},
		}, nil
	}
	tbl, err := RunTrials(r, Config{Seed: 10}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("runner called %d times", calls)
	}
	// Seeds 10, 1010, 2010: mean 1010.
	if tbl.Rows[0][1] != "1010.00" {
		t.Fatalf("averaged cell = %q", tbl.Rows[0][1])
	}
	if tbl.Rows[0][0] != "row" {
		t.Fatalf("label cell mutated: %q", tbl.Rows[0][0])
	}
	if !strings.Contains(tbl.Note, "mean of 3 trials") {
		t.Fatalf("note = %q", tbl.Note)
	}
	// trials <= 1 passes through.
	calls = 0
	if _, err := RunTrials(r, Config{Seed: 5}, 1); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("pass-through called %d times", calls)
	}
}

func TestFprintCSV(t *testing.T) {
	tbl := &Table{
		ID: "Table X", Title: "t",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}, {"3", "4"}},
	}
	var sb strings.Builder
	if err := tbl.FprintCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "a,b\n1,2\n3,4\n" {
		t.Fatalf("csv = %q", sb.String())
	}
}

func TestDefaultConfig(t *testing.T) {
	d := Default()
	if d.Scale != 0.2 || d.Queries != 500 || d.Capacity != 100 {
		t.Fatalf("Default() = %+v", d)
	}
}

func TestRatioGuards(t *testing.T) {
	if ratio(1, 0) != "-" {
		t.Fatal("divide-by-zero ratio not guarded")
	}
	if ratio(3, 2) != "1.50" {
		t.Fatalf("ratio = %s", ratio(3, 2))
	}
	if f2(1.234) != "1.23" {
		t.Fatalf("f2 = %s", f2(1.234))
	}
}
