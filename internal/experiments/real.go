package experiments

import (
	"fmt"

	"strtree/internal/datagen"
	"strtree/internal/geom"
	"strtree/internal/metrics"
	"strtree/internal/node"
	"strtree/internal/query"
	"strtree/internal/rtree"
)

func init() {
	Register("table5", Table5)
	Register("table6", func(c Config) (*Table, error) {
		return metricTable(c, "Table 6", "Tiger Long Beach Data, Areas and Perimeters",
			datagen.Tiger(c.size(datagen.TigerSize), c.Seed))
	})
	Register("table7", Table7)
	Register("table8", func(c Config) (*Table, error) {
		return metricTable(c, "Table 8", "VLSI Data, Areas and Perimeters",
			datagen.VLSI(c.size(datagen.VLSISize), c.Seed))
	})
	Register("table9", Table9)
	Register("table10", func(c Config) (*Table, error) {
		return metricTable(c, "Table 10", "CFD Node Data Set, Areas and Perimeters",
			datagen.CFD(c.size(datagen.CFDSize), c.Seed))
	})
	Register("fig10", Fig10)
	Register("fig11", Fig11)
	Register("fig12", Fig12)
}

// workload is one labelled query batch.
type workload struct {
	label   string
	queries []geom.Rect
}

// fullSpaceWorkloads is the standard point / 1% / 9% trio over the unit
// square.
func fullSpaceWorkloads(cfg Config) []workload {
	return []workload{
		{"Point Queries", query.Points(cfg.Queries, cfg.Seed+100)},
		{"Region Queries, Query Region = 1% of Data", query.Regions(cfg.Queries, query.Extent1Pct, cfg.Seed+101)},
		{"Region Queries, Query Region = 9% of Data", query.Regions(cfg.Queries, query.Extent9Pct, cfg.Seed+102)},
	}
}

// cfdWorkloads restricts point and region queries to the paper's box
// around the wing, with region extents 0.01 and 0.03 truncated at the box
// boundary ("This area roughly corresponds to the 1% and 9% of the data
// region used in the other experiments").
func cfdWorkloads(cfg Config) []workload {
	box := datagen.CFDQueryRegion()
	return []workload{
		{"Point Queries", query.PointsIn(cfg.Queries, box, cfg.Seed+110)},
		{"Region Queries, Query Region Area = 0.0001", query.RegionsIn(cfg.Queries, box, 0.01, cfg.Seed+111)},
		{"Region Queries, Query Region Area = 0.0009", query.RegionsIn(cfg.Queries, box, 0.03, cfg.Seed+112)},
	}
}

// bufferSweep builds each algorithm's tree at every buffer size and
// reports accesses per query for every workload: the shape of Tables 5, 7
// and 9.
func bufferSweep(cfg Config, id, title string, entries []node.Entry, paperBuffers []int, workloads []workload) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  title,
		Note:   scaleNote(cfg),
		Header: []string{"Query Class", "Buffer Size", "STR", "HS", "NX", "HS/STR", "NX/STR"},
	}
	type res struct{ acc [3]float64 }
	results := make([][]res, len(workloads))
	buffers := dedupBuffers(cfg, paperBuffers)
	for _, buf := range buffers {
		// Build the three trees once per buffer size, then run every
		// workload against them.
		var algTrees [3]*rtree.Tree
		for ai, alg := range PaperAlgorithms() {
			tr, err := BuildPacked(entries, alg.Orderer, buf, cfg.Capacity)
			if err != nil {
				return nil, err
			}
			algTrees[ai] = tr
		}
		for wi, w := range workloads {
			var r res
			for ai := range algTrees {
				acc, err := AvgAccesses(algTrees[ai], w.queries)
				if err != nil {
					return nil, err
				}
				r.acc[ai] = acc
			}
			results[wi] = append(results[wi], r)
		}
	}
	for wi, w := range workloads {
		for bi, r := range results[wi] {
			t.Rows = append(t.Rows, []string{
				w.label, fmt.Sprintf("%d", buffers[bi]),
				f2(r.acc[0]), f2(r.acc[1]), f2(r.acc[2]),
				ratio(r.acc[1], r.acc[0]), ratio(r.acc[2], r.acc[0]),
			})
		}
	}
	return t, nil
}

// dedupBuffers scales the paper's buffer sizes and removes duplicates
// introduced by the 3-page floor at small scales, preserving order.
func dedupBuffers(cfg Config, paperBuffers []int) []int {
	seen := map[int]bool{}
	out := make([]int, 0, len(paperBuffers))
	for _, pb := range paperBuffers {
		buf := cfg.bufPages(pb)
		if seen[buf] {
			continue
		}
		seen[buf] = true
		out = append(out, buf)
	}
	return out
}

// metricTable builds the three packed trees over one data set and reports
// leaf/total area and perimeter: the shape of Tables 6, 8 and 10.
func metricTable(cfg Config, id, title string, entries []node.Entry) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  title,
		Note:   scaleNote(cfg),
		Header: []string{"Metric", "STR", "HS", "NX"},
	}
	var ms [3]metrics.TreeMetrics
	for ai, alg := range PaperAlgorithms() {
		tr, err := BuildPacked(entries, alg.Orderer, 64, cfg.Capacity)
		if err != nil {
			return nil, err
		}
		m, err := metrics.Measure(tr)
		if err != nil {
			return nil, err
		}
		ms[ai] = m
	}
	rows := []struct {
		label string
		get   func(metrics.TreeMetrics) float64
	}{
		{"leaf area", func(m metrics.TreeMetrics) float64 { return m.LeafArea }},
		{"total area", func(m metrics.TreeMetrics) float64 { return m.TotalArea }},
		{"leaf perimeter", func(m metrics.TreeMetrics) float64 { return m.LeafMargin }},
		{"total perimeter", func(m metrics.TreeMetrics) float64 { return m.TotalMargin }},
	}
	for _, row := range rows {
		t.Rows = append(t.Rows, []string{row.label, f2(row.get(ms[0])), f2(row.get(ms[1])), f2(row.get(ms[2]))})
	}
	return t, nil
}

// Table5 reproduces the Long Beach disk-access table across buffer sizes.
func Table5(cfg Config) (*Table, error) {
	entries := datagen.Tiger(cfg.size(datagen.TigerSize), cfg.Seed)
	return bufferSweep(cfg, "Table 5",
		"Number of Disk Accesses, Long Beach Data, Point and Region Queries and Different Buffer Sizes",
		entries, []int{10, 25, 50, 100, 250}, fullSpaceWorkloads(cfg))
}

// Table7 reproduces the VLSI disk-access table across buffer sizes.
func Table7(cfg Config) (*Table, error) {
	entries := datagen.VLSI(cfg.size(datagen.VLSISize), cfg.Seed)
	return bufferSweep(cfg, "Table 7",
		"Number of Disk Accesses, VLSI Data, Buffer Size Varied for Point and Region Queries",
		entries, []int{10, 25, 50, 100, 250, 500}, fullSpaceWorkloads(cfg))
}

// Table9 reproduces the CFD disk-access table across buffer sizes, with
// the paper's restricted query area around the wing.
func Table9(cfg Config) (*Table, error) {
	entries := datagen.CFD(cfg.size(datagen.CFDSize), cfg.Seed)
	return bufferSweep(cfg, "Table 9",
		"Number of Disk Accesses, CFD Node Data, Buffer Size Varied for Point and Region Queries",
		entries, []int{250, 100, 50, 25, 20, 15, 10}, cfdWorkloads(cfg))
}

// figureSweep renders an access-vs-buffer-size series for chosen
// algorithms and workloads, the shape of Figures 10-12.
func figureSweep(cfg Config, id, title string, entries []node.Entry, paperBuffers []int, workloads []workload, algIdx []int) (*Table, error) {
	header := []string{"Buffer Size"}
	algs := PaperAlgorithms()
	for _, w := range workloads {
		for _, ai := range algIdx {
			header = append(header, fmt.Sprintf("%s %s", algs[ai].Name, w.label))
		}
	}
	t := &Table{ID: id, Title: title, Note: scaleNote(cfg), Header: header}
	for _, buf := range dedupBuffers(cfg, paperBuffers) {
		row := []string{fmt.Sprintf("%d", buf)}
		trees := make(map[int]*rtree.Tree)
		for _, ai := range algIdx {
			tr, err := BuildPacked(entries, algs[ai].Orderer, buf, cfg.Capacity)
			if err != nil {
				return nil, err
			}
			trees[ai] = tr
		}
		for _, w := range workloads {
			for _, ai := range algIdx {
				acc, err := AvgAccesses(trees[ai], w.queries)
				if err != nil {
					return nil, err
				}
				row = append(row, f2(acc))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig10 reproduces "Disk Accesses vs Buffer Size for Point Queries on Long
// Beach Tiger Data" (STR vs HS).
func Fig10(cfg Config) (*Table, error) {
	entries := datagen.Tiger(cfg.size(datagen.TigerSize), cfg.Seed)
	w := fullSpaceWorkloads(cfg)[:1]
	return figureSweep(cfg, "Figure 10",
		"Disk Accesses vs Buffer Size for Point Queries on Long Beach Tiger Data",
		entries, []int{10, 25, 50, 100, 250, 500}, w, []int{0, 1})
}

// Fig11 reproduces "Disk Accesses vs. Buffer Size for Point and Region
// Queries on VLSI Data" (STR vs HS for all three workloads).
func Fig11(cfg Config) (*Table, error) {
	entries := datagen.VLSI(cfg.size(datagen.VLSISize), cfg.Seed)
	return figureSweep(cfg, "Figure 11",
		"Disk Accesses vs. Buffer Size for Point and Region Queries on VLSI Data",
		entries, []int{10, 25, 50, 100, 250, 500}, fullSpaceWorkloads(cfg), []int{0, 1})
}

// Fig12 reproduces "Disk Accesses vs. Buffer Size for Point Queries on CFD
// Data" (STR vs HS at small buffers).
func Fig12(cfg Config) (*Table, error) {
	entries := datagen.CFD(cfg.size(datagen.CFDSize), cfg.Seed)
	w := cfdWorkloads(cfg)[:1]
	return figureSweep(cfg, "Figure 12",
		"Disk Accesses vs. Buffer Size for Point Queries on CFD Data",
		entries, []int{10, 15, 20, 25, 50, 75, 100}, w, []int{0, 1})
}
