package experiments

import (
	"cmp"
	"fmt"
	"slices"

	"strtree/internal/datagen"
	"strtree/internal/geom"
	"strtree/internal/hilbert"
	"strtree/internal/node"
	"strtree/internal/pack"
	"strtree/internal/query"
	"strtree/internal/storage"
	"strtree/internal/trace"
)

func init() {
	Register("extpolicy", ExtPolicy)
	Register("extqorder", ExtQOrder)
	Register("extlevels", ExtLevels)
}

// ExtLevels breaks disk accesses down by tree level across buffer sizes.
// The paper argues the leaf-level area/perimeter metrics matter most
// "since the non-leaf level nodes will likely be buffered" (Section 3);
// this experiment shows that directly: as the buffer grows, the internal
// levels' share of misses collapses first.
func ExtLevels(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "Extension Access Levels",
		Title:  "Share of Disk Accesses by Tree Level vs Buffer Size, STR, Point Queries",
		Note:   scaleNote(cfg),
		Header: []string{"Buffer Size", "Accesses/query", "Root+Internal %", "Leaf %"},
	}
	r := cfg.size(100000)
	entries := datagen.UniformPoints(r, cfg.Seed)
	qs := query.Points(cfg.Queries, cfg.Seed+900)
	for _, pb := range []int{10, 50, 250, 1000} {
		buf := cfg.bufPages(pb)
		tr, err := BuildPacked(entries, pack.STR{}, buf, cfg.Capacity)
		if err != nil {
			return nil, err
		}
		// Map pages to levels.
		leafPage := map[storage.PageID]bool{}
		if err := tr.Walk(func(id storage.PageID, n *node.Node) bool {
			leafPage[id] = n.IsLeaf()
			return true
		}); err != nil {
			return nil, err
		}
		if err := tr.Pool().Invalidate(); err != nil {
			return nil, err
		}
		tr.Pool().ResetStats()
		var internal, leaf int
		tr.Pool().SetTracer(func(id storage.PageID, hit bool) {
			if hit {
				return
			}
			if leafPage[id] {
				leaf++
			} else {
				internal++
			}
		})
		for _, q := range qs {
			if err := tr.Search(q, func(node.Entry) bool { return true }); err != nil {
				return nil, err
			}
		}
		tr.Pool().SetTracer(nil)
		total := internal + leaf
		pct := func(v int) string {
			if total == 0 {
				return "-"
			}
			return fmt.Sprintf("%.1f%%", 100*float64(v)/float64(total))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", buf),
			f2(float64(total) / float64(len(qs))),
			pct(internal), pct(leaf),
		})
	}
	return t, nil
}

// ExtPolicy records the page-access trace of the paper's 1%-region
// workload on an STR tree once, then replays it against simulated LRU,
// Clock and Belady-optimal buffers across the paper's buffer sizes — the
// complete miss-ratio curve from a single measured run, with the
// unbeatable OPT lower bound as context for the paper's LRU numbers.
func ExtPolicy(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "Extension Replacement Policy",
		Title:  "Miss-Ratio Curve from One Trace: LRU vs Clock vs Belady OPT, STR, 1% Region Queries",
		Note:   scaleNote(cfg),
		Header: []string{"Buffer Size", "LRU/query", "Clock/query", "OPT/query", "LRU/OPT"},
	}
	r := cfg.size(100000)
	entries := datagen.UniformSquares(r, 5.0, cfg.Seed)
	qs := query.Regions(cfg.Queries, query.Extent1Pct, cfg.Seed+700)

	// Record the access trace with a large pool (the trace is the logical
	// access sequence; pool size does not affect it).
	tr, err := BuildPacked(entries, pack.STR{}, 64, cfg.Capacity)
	if err != nil {
		return nil, err
	}
	var rec trace.Recorder
	tr.Pool().SetTracer(rec.Observe)
	for _, q := range qs {
		if err := tr.Search(q, func(node.Entry) bool { return true }); err != nil {
			return nil, err
		}
	}
	tr.Pool().SetTracer(nil)
	accesses := rec.Trace()

	n := float64(len(qs))
	for _, pb := range []int{10, 25, 50, 100, 250} {
		buf := cfg.bufPages(pb)
		lru := float64(accesses.SimulateLRU(buf)) / n
		clock := float64(accesses.SimulateClock(buf)) / n
		opt := float64(accesses.SimulateOPT(buf)) / n
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", buf), f2(lru), f2(clock), f2(opt), ratio(lru, opt),
		})
	}
	return t, nil
}

// ExtQOrder measures how much the *order* of a query batch matters to a
// small LRU buffer: the same 2,000 region queries issued in random order
// versus sorted along the Hilbert curve of their centers (consecutive
// queries then touch overlapping subtrees). A client that can batch its
// queries gets this locality for free.
func ExtQOrder(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "Extension Query Ordering",
		Title:  "Disk Accesses per Query: Random vs Hilbert-Ordered Query Batch, STR, 1% Region Queries",
		Note:   scaleNote(cfg),
		Header: []string{"Buffer Size", "Random Order", "Hilbert Order", "Hilbert/Random"},
	}
	r := cfg.size(100000)
	entries := datagen.UniformSquares(r, 5.0, cfg.Seed)
	qs := query.Regions(cfg.Queries, query.Extent1Pct, cfg.Seed+800)

	// Hilbert-order a copy of the batch by query centers.
	ordered := append([]geom.Rect(nil), qs...)
	m, err := hilbert.NewMapper(16, []float64{0, 0}, []float64{1, 1})
	if err != nil {
		return nil, err
	}
	keys := make([]uint64, len(ordered))
	for i, q := range ordered {
		keys[i] = m.Key([]float64{q.CenterAxis(0), q.CenterAxis(1)})
	}
	idx := make([]int, len(ordered))
	for i := range idx {
		idx[i] = i
	}
	slices.SortFunc(idx, func(a, b int) int {
		if c := cmp.Compare(keys[a], keys[b]); c != 0 {
			return c
		}
		return a - b
	})
	permuted := make([]geom.Rect, len(ordered))
	for i, j := range idx {
		permuted[i] = ordered[j]
	}
	ordered = permuted

	for _, pb := range []int{10, 25, 50, 100} {
		buf := cfg.bufPages(pb)
		tr, err := BuildPacked(entries, pack.STR{}, buf, cfg.Capacity)
		if err != nil {
			return nil, err
		}
		random, err := AvgAccesses(tr, qs)
		if err != nil {
			return nil, err
		}
		hilberted, err := AvgAccesses(tr, ordered)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", buf), f2(random), f2(hilberted), ratio(hilberted, random),
		})
	}
	return t, nil
}
