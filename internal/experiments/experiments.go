// Package experiments reproduces the STR paper's evaluation: one function
// per table and figure, each returning a Table whose rows mirror what the
// paper reports. The methodology follows Section 3: R-trees with 100
// rectangles per node, one node per 4 KiB page, an LRU buffer pool, 2,000
// queries per experiment, and disk accesses (buffer misses) as the
// primary metric.
//
// The paper's full grid took two months of Sparc 5 time; Config.Scale
// shrinks data sizes (and buffer sizes proportionally, preserving the
// buffer-to-tree ratios that drive the results) so the whole suite runs in
// minutes. Scale = 1 reproduces the paper's exact sizes.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"slices"
	"strconv"
	"strings"
	"text/tabwriter"

	"strtree/internal/buffer"
	"strtree/internal/geom"
	"strtree/internal/node"
	"strtree/internal/pack"
	"strtree/internal/rtree"
	"strtree/internal/storage"
)

// Config controls experiment scale. The zero value is not useful; use
// Default or Full.
type Config struct {
	// Scale multiplies every data-set size and buffer size. 1.0 is the
	// paper's configuration.
	Scale float64
	// Queries per experiment; the paper uses 2,000.
	Queries int
	// Capacity is the R-tree fan-out; the paper uses 100.
	Capacity int
	// Seed drives all data and query generation.
	Seed int64
}

// Default is a configuration that runs the full suite in minutes: one
// fifth of the paper's data sizes and a quarter of its query count.
func Default() Config {
	return Config{Scale: 0.2, Queries: 500, Capacity: 100, Seed: 1}
}

// Full is the paper's exact configuration.
func Full() Config {
	return Config{Scale: 1, Queries: 2000, Capacity: 100, Seed: 1}
}

// size scales a paper data-set size.
func (c Config) size(n int) int {
	s := int(float64(n)*c.Scale + 0.5)
	if s < c.Capacity*2 {
		s = c.Capacity * 2 // keep at least two leaves so there is a tree
	}
	return s
}

// bufPages scales a paper buffer size, keeping at least 3 pages.
func (c Config) bufPages(b int) int {
	s := int(float64(b)*c.Scale + 0.5)
	if s < 3 {
		s = 3
	}
	return s
}

// Table is one reproduced table or figure: a title, column header, and
// formatted rows. Figures are emitted as their underlying data series.
type Table struct {
	// ID is the paper artifact this reproduces, e.g. "Table 2" or
	// "Figure 9".
	ID string
	// Title describes the contents.
	Title string
	// Note carries scale caveats.
	Note string
	// Header names the columns.
	Header []string
	// Rows are the formatted cells.
	Rows [][]string
}

// FprintCSV renders the table as CSV (one header row, then data rows),
// for feeding plotting tools.
func (t *Table) FprintCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "   (%s)\n", t.Note); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Runner is an experiment entry point.
type Runner func(Config) (*Table, error)

// RunTrials executes the runner `trials` times with consecutive seeds and
// averages every numeric cell, leaving non-numeric cells (labels,
// percentages, ratios rendered as "-") from the first trial. The paper
// runs each configuration once and warns that "differences of less than
// a few percent should not be considered significant"; averaging trials
// tightens that.
func RunTrials(r Runner, cfg Config, trials int) (*Table, error) {
	if trials <= 1 {
		return r(cfg)
	}
	var base *Table
	var sums [][]float64
	var numeric [][]bool
	for trial := 0; trial < trials; trial++ {
		c := cfg
		c.Seed = cfg.Seed + int64(trial*1000)
		tbl, err := r(c)
		if err != nil {
			return nil, fmt.Errorf("trial %d: %w", trial, err)
		}
		if base == nil {
			base = tbl
			sums = make([][]float64, len(tbl.Rows))
			numeric = make([][]bool, len(tbl.Rows))
			for i, row := range tbl.Rows {
				sums[i] = make([]float64, len(row))
				numeric[i] = make([]bool, len(row))
				for j, cell := range row {
					if v, err := strconv.ParseFloat(cell, 64); err == nil {
						numeric[i][j] = true
						sums[i][j] = v
					}
				}
			}
			continue
		}
		if len(tbl.Rows) != len(base.Rows) {
			return nil, fmt.Errorf("trial %d produced %d rows, first trial %d", trial, len(tbl.Rows), len(base.Rows))
		}
		for i, row := range tbl.Rows {
			for j, cell := range row {
				if !numeric[i][j] {
					continue
				}
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					numeric[i][j] = false
					continue
				}
				sums[i][j] += v
			}
		}
	}
	for i := range base.Rows {
		for j := range base.Rows[i] {
			if numeric[i][j] {
				base.Rows[i][j] = f2(sums[i][j] / float64(trials))
			}
		}
	}
	base.Note = fmt.Sprintf("%s; mean of %d trials", base.Note, trials)
	return base, nil
}

// registry maps experiment ids (lower-case, no space: "table2", "fig9")
// to runners. Populated by init functions in the per-experiment files.
var registry = map[string]Runner{}

// Register adds an experiment to the registry; it panics on duplicates.
func Register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		//strlint:ignore panics init-time registry misuse must fail loudly at startup
		panic("experiments: duplicate id " + id)
	}
	registry[id] = r
}

// Lookup returns the runner for an experiment id.
func Lookup(id string) (Runner, bool) {
	r, ok := registry[strings.ToLower(id)]
	return r, ok
}

// IDs returns all registered experiment ids, sorted tables-first.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	slices.SortFunc(ids, func(a, b string) int {
		ta := strings.HasPrefix(a, "table")
		tb := strings.HasPrefix(b, "table")
		if ta != tb {
			if ta {
				return -1
			}
			return 1
		}
		// Numeric suffix order.
		return numSuffix(a) - numSuffix(b)
	})
	return ids
}

func numSuffix(s string) int {
	n := 0
	for _, c := range s {
		if c >= '0' && c <= '9' {
			n = n*10 + int(c-'0')
		}
	}
	return n
}

// Algorithm pairs a packing order with its paper name.
type Algorithm struct {
	Name    string
	Orderer rtree.Orderer
}

// PaperAlgorithms returns the three algorithms of the comparison in the
// paper's column order: STR, HS, NX.
func PaperAlgorithms() []Algorithm {
	return []Algorithm{
		{Name: "STR", Orderer: pack.STR{}},
		{Name: "HS", Orderer: pack.HS{}},
		{Name: "NX", Orderer: pack.NX{}},
	}
}

// BuildPacked bulk-loads a fresh in-memory tree from a copy of entries
// using the given packing order, behind an LRU pool of bufPages pages.
// The pool arrives invalidated with zeroed statistics, ready to measure.
func BuildPacked(entries []node.Entry, o rtree.Orderer, bufPages, capacity int) (*rtree.Tree, error) {
	pool := buffer.NewPool(storage.NewMemPager(4096), bufPages)
	tr, err := rtree.Create(pool, rtree.Config{Dims: 2, Capacity: capacity})
	if err != nil {
		return nil, err
	}
	cp := make([]node.Entry, len(entries))
	copy(cp, entries)
	if err := tr.BulkLoad(cp, o); err != nil {
		return nil, err
	}
	if err := pool.Invalidate(); err != nil {
		return nil, err
	}
	pool.ResetStats()
	return tr, nil
}

// AvgAccesses runs the query batch against a cold buffer and returns the
// mean number of disk accesses per query — the paper's primary metric.
// The LRU pool stays warm across the batch, exactly as in the paper's
// runs.
func AvgAccesses(tr *rtree.Tree, queries []geom.Rect) (float64, error) {
	pool := tr.Pool()
	if err := pool.Invalidate(); err != nil {
		return 0, err
	}
	pool.ResetStats()
	for _, q := range queries {
		if err := tr.Search(q, func(node.Entry) bool { return true }); err != nil {
			return 0, err
		}
	}
	return float64(pool.Stats().DiskReads) / float64(len(queries)), nil
}

// f2 formats a metric to two decimals, the paper's table precision.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// ratio formats v/base, guarding the divide.
func ratio(v, base float64) string {
	//strlint:ignore floateq exact zero sentinel guards the division
	if base == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", v/base)
}
