package experiments

import (
	"fmt"

	"strtree/internal/datagen"
	"strtree/internal/geom"
	"strtree/internal/metrics"
	"strtree/internal/node"
	"strtree/internal/query"
	"strtree/internal/rtree"
)

func init() {
	Register("table1", Table1)
	Register("table2", func(c Config) (*Table, error) { return syntheticAccesses(c, 10, "Table 2") })
	Register("table3", func(c Config) (*Table, error) { return syntheticAccesses(c, 250, "Table 3") })
	Register("table4", Table4)
	Register("fig7", func(c Config) (*Table, error) { return syntheticFigure(c, "Figure 7", qcPoint, 10) })
	Register("fig8", func(c Config) (*Table, error) { return syntheticFigure(c, "Figure 8", qcPoint, 250) })
	Register("fig9", func(c Config) (*Table, error) { return syntheticFigure(c, "Figure 9", qcRegion1, 10) })
}

// paperSizes are the synthetic data-set sizes (rectangles) of Section 4.1.
var paperSizes = []int{10000, 25000, 50000, 100000, 300000}

// queryClass identifies the paper's three query workloads.
type queryClass int

const (
	qcPoint queryClass = iota
	qcRegion1
	qcRegion9
)

func (q queryClass) label() string {
	switch q {
	case qcPoint:
		return "Point Queries"
	case qcRegion1:
		return "Region Queries, Query Region = 1% of Data"
	default:
		return "Region Queries, Query Region = 9% of Data"
	}
}

// queries builds the workload for a class.
func (q queryClass) queries(n int, seed int64) []geom.Rect {
	switch q {
	case qcPoint:
		return query.Points(n, seed)
	case qcRegion1:
		return query.Regions(n, query.Extent1Pct, seed)
	default:
		return query.Regions(n, query.Extent9Pct, seed)
	}
}

// Table1 reproduces "Percent of R-Tree Held By Buffer": data size, R-tree
// pages (at fan-out 100), and the percentage a 10-page and a 250-page
// buffer hold.
func Table1(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "Table 1",
		Title:  "Percent of R-Tree Held By Buffer",
		Note:   scaleNote(cfg),
		Header: []string{"Data Size", "R-Tree Pages", fmt.Sprintf("Buffer = %d", cfg.bufPages(10)), fmt.Sprintf("Buffer = %d", cfg.bufPages(250))},
	}
	for _, paperSize := range paperSizes {
		r := cfg.size(paperSize)
		entries := datagen.UniformPoints(r, cfg.Seed)
		tr, err := BuildPacked(entries, PaperAlgorithms()[0].Orderer, 64, cfg.Capacity)
		if err != nil {
			return nil, err
		}
		pages, err := tr.NumNodes()
		if err != nil {
			return nil, err
		}
		pct := func(buf int) string {
			p := 100 * float64(buf) / float64(pages)
			if p > 100 {
				p = 100
			}
			return fmt.Sprintf("%.2f%%", p)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r),
			fmt.Sprintf("%d", pages),
			pct(cfg.bufPages(10)),
			pct(cfg.bufPages(250)),
		})
	}
	return t, nil
}

// syntheticAccesses reproduces Tables 2 and 3: disk accesses per query on
// synthetic point data and density-5 region data, for the three packing
// algorithms across data sizes, at one buffer size.
func syntheticAccesses(cfg Config, paperBuf int, id string) (*Table, error) {
	buf := cfg.bufPages(paperBuf)
	t := &Table{
		ID:    id,
		Title: fmt.Sprintf("Number of Disk Accesses, Synthetic Data, Buffersize = %d", buf),
		Note:  scaleNote(cfg),
		Header: []string{
			"Query Class", "Data Size",
			"STR", "HS", "NX", "HS/STR", "NX/STR", // point data
			"STR(d5)", "HS(d5)", "NX(d5)", "HS/STR", "NX/STR", // density 5
		},
	}
	type cell struct{ acc [2][3]float64 } // [dataset][algorithm]
	results := make(map[queryClass][]cell)
	sizes := make([]int, len(paperSizes))
	for si, paperSize := range paperSizes {
		r := cfg.size(paperSize)
		sizes[si] = r
		datasets := [2][]node.Entry{
			datagen.UniformPoints(r, cfg.Seed),
			datagen.UniformSquares(r, 5.0, cfg.Seed+1),
		}
		// Build all six trees for this size once; reuse across classes.
		var trees [2][3]*rtree.Tree
		for di, data := range datasets {
			for ai, alg := range PaperAlgorithms() {
				tr, err := BuildPacked(data, alg.Orderer, buf, cfg.Capacity)
				if err != nil {
					return nil, err
				}
				trees[di][ai] = tr
			}
		}
		for _, qc := range []queryClass{qcPoint, qcRegion1, qcRegion9} {
			qs := qc.queries(cfg.Queries, cfg.Seed+100+int64(qc))
			var c cell
			for di := range trees {
				for ai := range trees[di] {
					acc, err := AvgAccesses(trees[di][ai], qs)
					if err != nil {
						return nil, err
					}
					c.acc[di][ai] = acc
				}
			}
			results[qc] = append(results[qc], c)
		}
	}
	for _, qc := range []queryClass{qcPoint, qcRegion1, qcRegion9} {
		for si, c := range results[qc] {
			p, d5 := c.acc[0], c.acc[1]
			t.Rows = append(t.Rows, []string{
				qc.label(), fmt.Sprintf("%d", sizes[si]),
				f2(p[0]), f2(p[1]), f2(p[2]), ratio(p[1], p[0]), ratio(p[2], p[0]),
				f2(d5[0]), f2(d5[1]), f2(d5[2]), ratio(d5[1], d5[0]), ratio(d5[2], d5[0]),
			})
		}
	}
	return t, nil
}

// Table4 reproduces "Synthetic Data Areas and Perimeters" for the 50K and
// 300K data sets: leaf and total area and perimeter per algorithm, for
// point data and density-5 region data.
func Table4(cfg Config) (*Table, error) {
	small, big := cfg.size(50000), cfg.size(300000)
	t := &Table{
		ID:    "Table 4",
		Title: "Synthetic Data Areas and Perimeters",
		Note:  scaleNote(cfg),
		Header: []string{
			"Data", "Metric",
			fmt.Sprintf("STR %dK", small/1000), fmt.Sprintf("HS %dK", small/1000), fmt.Sprintf("NX %dK", small/1000),
			fmt.Sprintf("STR %dK", big/1000), fmt.Sprintf("HS %dK", big/1000), fmt.Sprintf("NX %dK", big/1000),
		},
	}
	for di, dataset := range []struct {
		name    string
		density float64
	}{
		{"Point Data", 0},
		{"Region Data, Density = 5.0", 5.0},
	} {
		// metrics[sizeIdx][algIdx]
		var ms [2][3]metrics.TreeMetrics
		for si, r := range []int{small, big} {
			entries := datagen.UniformSquares(r, dataset.density, cfg.Seed+int64(di))
			for ai, alg := range PaperAlgorithms() {
				tr, err := BuildPacked(entries, alg.Orderer, 64, cfg.Capacity)
				if err != nil {
					return nil, err
				}
				m, err := metrics.Measure(tr)
				if err != nil {
					return nil, err
				}
				ms[si][ai] = m
			}
		}
		rows := []struct {
			label string
			get   func(metrics.TreeMetrics) float64
		}{
			{"leaf area", func(m metrics.TreeMetrics) float64 { return m.LeafArea }},
			{"total area", func(m metrics.TreeMetrics) float64 { return m.TotalArea }},
			{"leaf perimeter", func(m metrics.TreeMetrics) float64 { return m.LeafMargin }},
			{"total perimeter", func(m metrics.TreeMetrics) float64 { return m.TotalMargin }},
		}
		for _, row := range rows {
			t.Rows = append(t.Rows, []string{
				dataset.name, row.label,
				f2(row.get(ms[0][0])), f2(row.get(ms[0][1])), f2(row.get(ms[0][2])),
				f2(row.get(ms[1][0])), f2(row.get(ms[1][1])), f2(row.get(ms[1][2])),
			})
		}
	}
	return t, nil
}

// syntheticFigure reproduces Figures 7-9: disk accesses versus data size
// for STR and HS on point data (density 0) and density-5 region data at
// one buffer size. NX is omitted exactly as in the paper ("the NX
// algorithm is not competitive").
func syntheticFigure(cfg Config, id string, qc queryClass, paperBuf int) (*Table, error) {
	buf := cfg.bufPages(paperBuf)
	t := &Table{
		ID: id,
		Title: fmt.Sprintf("Disk Accesses vs. Data Size, %s, Buffer Size %d",
			qc.label(), buf),
		Note:   scaleNote(cfg),
		Header: []string{"Data Size", "HS density=5", "STR density=5", "HS density=0", "STR density=0"},
	}
	qs := qc.queries(cfg.Queries, cfg.Seed+100+int64(qc))
	algs := PaperAlgorithms()
	for _, paperSize := range paperSizes {
		r := cfg.size(paperSize)
		points := datagen.UniformPoints(r, cfg.Seed)
		dense := datagen.UniformSquares(r, 5.0, cfg.Seed+1)
		row := []string{fmt.Sprintf("%d", r)}
		for _, data := range [][]node.Entry{dense, points} {
			var hs, str float64
			for _, alg := range algs[:2] { // STR, HS
				tr, err := BuildPacked(data, alg.Orderer, buf, cfg.Capacity)
				if err != nil {
					return nil, err
				}
				acc, err := AvgAccesses(tr, qs)
				if err != nil {
					return nil, err
				}
				if alg.Name == "STR" {
					str = acc
				} else {
					hs = acc
				}
			}
			row = append(row, f2(hs), f2(str))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func scaleNote(cfg Config) string {
	//strlint:ignore floateq Scale is assigned from exact literals; 1 means an unscaled paper run
	if cfg.Scale == 1 {
		return fmt.Sprintf("paper-scale run, %d queries", cfg.Queries)
	}
	return fmt.Sprintf("scaled run: %.0f%% of paper data sizes and buffers, %d queries", cfg.Scale*100, cfg.Queries)
}
