package experiments

// Shape tests: each paper table's directional claims, asserted at a
// reduced scale. These are the regression suite for the reproduction
// itself — if a refactor flips who wins on some data family, these fail.

import (
	"strings"
	"testing"
)

// shapeConfig is larger than tinyConfig so skew effects are visible, but
// still fast.
func shapeConfig() Config {
	return Config{Scale: 0.1, Queries: 300, Capacity: 100, Seed: 3}
}

// rowsByClass groups a buffer-sweep table's rows by query-class prefix.
func rowsByClass(tbl *Table) map[string][][]string {
	out := map[string][][]string{}
	for _, row := range tbl.Rows {
		key := "region"
		if strings.HasPrefix(row[0], "Point") {
			key = "point"
		} else if strings.Contains(row[0], "9%") || strings.Contains(row[0], "0.0009") {
			key = "region9"
		}
		out[key] = append(out[key], row)
	}
	return out
}

// TestTable5Shape: tiger (mild skew) — STR beats HS for point queries,
// near-tie for 9% regions, NX uncompetitive.
func TestTable5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl, err := Table5(shapeConfig())
	if err != nil {
		t.Fatal(err)
	}
	classes := rowsByClass(tbl)
	for _, row := range classes["point"] {
		hsRatio := cell(t, row[5])
		if hsRatio < 1.05 {
			t.Errorf("tiger point queries buffer %s: HS/STR %.2f, paper says STR clearly wins", row[1], hsRatio)
		}
		if nx := cell(t, row[6]); nx < 1.3 {
			t.Errorf("tiger point queries buffer %s: NX/STR %.2f, paper says NX uncompetitive", row[1], nx)
		}
	}
	for _, row := range classes["region9"] {
		if hsRatio := cell(t, row[5]); hsRatio > 1.25 {
			t.Errorf("tiger 9%% regions buffer %s: HS/STR %.2f, paper says near-tie", row[1], hsRatio)
		}
	}
}

// TestTable7Shape: VLSI (high skew region data) — the reversal: HS at
// least ties STR for point queries; NX far behind.
func TestTable7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl, err := Table7(shapeConfig())
	if err != nil {
		t.Fatal(err)
	}
	classes := rowsByClass(tbl)
	for _, row := range classes["point"] {
		// The paper's buffer range starts at 10 pages; our scaled rows
		// below that are outside its operating envelope (and there STR
		// retakes the lead).
		if cell(t, row[1]) < 10 {
			continue
		}
		if hsRatio := cell(t, row[5]); hsRatio > 1.1 {
			t.Errorf("vlsi point queries buffer %s: HS/STR %.2f, paper says HS ties or wins", row[1], hsRatio)
		}
		if nx := cell(t, row[6]); nx < 1.5 {
			t.Errorf("vlsi point queries buffer %s: NX/STR only %.2f", row[1], nx)
		}
	}
}

// TestTable9Shape: CFD (high skew point data) — the other reversal: STR
// wins point queries at the smallest buffers.
func TestTable9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl, err := Table9(shapeConfig())
	if err != nil {
		t.Fatal(err)
	}
	classes := rowsByClass(tbl)
	rows := classes["point"]
	if len(rows) == 0 {
		t.Fatal("no point-query rows")
	}
	// Table 9 lists buffers large-to-small; check the smallest buffer row.
	last := rows[len(rows)-1]
	if hsRatio := cell(t, last[5]); hsRatio < 1.0 {
		t.Errorf("cfd point queries smallest buffer: HS/STR %.2f, paper says STR wins sharply", hsRatio)
	}
}

// TestHeadlineClaim asserts the abstract's claim at one operating point:
// on uniform data STR needs substantially fewer accesses than HS.
func TestHeadlineClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl, err := syntheticAccesses(shapeConfig(), 10, "headline")
	if err != nil {
		t.Fatal(err)
	}
	best := 0.0
	for _, row := range tbl.Rows {
		if !strings.HasPrefix(row[0], "Point") {
			continue
		}
		if r := cell(t, row[5]); r > best {
			best = r
		}
	}
	// Paper: HS needs up to ~1.4x STR's accesses (STR saves ~30-50%).
	if best < 1.25 {
		t.Errorf("best HS/STR on uniform point queries is only %.2f; headline claim not visible", best)
	}
}
