package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// gather renders the registry's Prometheus text exposition as a string.
func gather(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return sb.String()
}

// TestPrometheusExposition is the table-driven format pin: each case
// builds a registry and asserts the exact text exposition, covering label
// escaping, label ordering, help escaping and all three kinds.
func TestPrometheusExposition(t *testing.T) {
	cases := []struct {
		name  string
		build func(r *Registry)
		want  string
	}{
		{
			name: "counter no labels",
			build: func(r *Registry) {
				r.Counter("requests_total", "Requests served.").Add(3)
			},
			want: "# HELP requests_total Requests served.\n" +
				"# TYPE requests_total counter\n" +
				"requests_total 3\n",
		},
		{
			name: "labels sorted by key regardless of registration order",
			build: func(r *Registry) {
				r.Counter("hits_total", "Hits.", L("zone", "b"), L("app", "x")).Inc()
			},
			want: "# HELP hits_total Hits.\n" +
				"# TYPE hits_total counter\n" +
				"hits_total{app=\"x\",zone=\"b\"} 1\n",
		},
		{
			name: "series sorted within a family",
			build: func(r *Registry) {
				r.Counter("ops_total", "Ops.", L("op", "search")).Add(2)
				r.Counter("ops_total", "Ops.", L("op", "count")).Add(5)
				r.Counter("ops_total", "Ops.", L("op", "batch")).Add(1)
			},
			want: "# HELP ops_total Ops.\n" +
				"# TYPE ops_total counter\n" +
				"ops_total{op=\"batch\"} 1\n" +
				"ops_total{op=\"count\"} 5\n" +
				"ops_total{op=\"search\"} 2\n",
		},
		{
			name: "families sorted by name",
			build: func(r *Registry) {
				r.Gauge("zz_gauge", "Last.").Set(1)
				r.Counter("aa_total", "First.").Inc()
			},
			want: "# HELP aa_total First.\n" +
				"# TYPE aa_total counter\n" +
				"aa_total 1\n" +
				"# HELP zz_gauge Last.\n" +
				"# TYPE zz_gauge gauge\n" +
				"zz_gauge 1\n",
		},
		{
			name: "label value escaping: quote, backslash, newline",
			build: func(r *Registry) {
				r.Gauge("g", "Gauge.", L("path", `C:\tmp`), L("q", "say \"hi\"\nbye")).Set(2.5)
			},
			want: "# HELP g Gauge.\n" +
				"# TYPE g gauge\n" +
				"g{path=\"C:\\\\tmp\",q=\"say \\\"hi\\\"\\nbye\"} 2.5\n",
		},
		{
			name: "help escaping: backslash and newline, not quotes",
			build: func(r *Registry) {
				r.Counter("c_total", "line one\nline \\two \"quoted\"").Inc()
			},
			want: "# HELP c_total line one\\nline \\\\two \"quoted\"\n" +
				"# TYPE c_total counter\n" +
				"c_total 1\n",
		},
		{
			name: "gauge func and counter func sample at exposition",
			build: func(r *Registry) {
				n := uint64(7)
				r.CounterFunc("sampled_total", "Sampled.", func() uint64 { return n })
				r.GaugeFunc("depth", "Depth.", func() float64 { return 1.25 })
			},
			want: "# HELP depth Depth.\n" +
				"# TYPE depth gauge\n" +
				"depth 1.25\n" +
				"# HELP sampled_total Sampled.\n" +
				"# TYPE sampled_total counter\n" +
				"sampled_total 7\n",
		},
		{
			name: "empty summary renders NaN quantiles and zero count",
			build: func(r *Registry) {
				r.Histogram("lat_seconds", "Latency.", L("op", "search"))
			},
			want: "# HELP lat_seconds Latency.\n" +
				"# TYPE lat_seconds summary\n" +
				"lat_seconds{op=\"search\",quantile=\"0.5\"} NaN\n" +
				"lat_seconds{op=\"search\",quantile=\"0.95\"} NaN\n" +
				"lat_seconds{op=\"search\",quantile=\"0.99\"} NaN\n" +
				"lat_seconds_sum{op=\"search\"} 0\n" +
				"lat_seconds_count{op=\"search\"} 0\n",
		},
		{
			name: "summary observations in seconds",
			build: func(r *Registry) {
				h := r.Histogram("dur_seconds", "Duration.")
				// One exact-bucket observation: quantile == value.
				h.Observe(7 * time.Nanosecond)
			},
			want: "# HELP dur_seconds Duration.\n" +
				"# TYPE dur_seconds summary\n" +
				"dur_seconds{quantile=\"0.5\"} 7e-09\n" +
				"dur_seconds{quantile=\"0.95\"} 7e-09\n" +
				"dur_seconds{quantile=\"0.99\"} 7e-09\n" +
				"dur_seconds_sum 7e-09\n" +
				"dur_seconds_count 1\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			tc.build(r)
			if got := gather(t, r); got != tc.want {
				t.Errorf("exposition mismatch:\n got: %q\nwant: %q", got, tc.want)
			}
		})
	}
}

// TestExpositionDeterministic registers the same metrics in two different
// orders and requires byte-identical output — the property strlint's
// maporder check guards structurally and this test pins behaviorally.
func TestExpositionDeterministic(t *testing.T) {
	build := func(perm []int) *Registry {
		r := NewRegistry()
		type reg func(*Registry)
		regs := []reg{
			func(r *Registry) { r.Counter("b_total", "B.", L("op", "x")).Add(1) },
			func(r *Registry) { r.Counter("b_total", "B.", L("op", "y")).Add(2) },
			func(r *Registry) { r.Gauge("a", "A.", L("shard", "1")).Set(3) },
			func(r *Registry) { r.Gauge("a", "A.", L("shard", "0")).Set(4) },
			func(r *Registry) { r.Histogram("c_seconds", "C.") },
		}
		for _, i := range perm {
			regs[i](r)
		}
		return r
	}
	first := build([]int{0, 1, 2, 3, 4})
	second := build([]int{4, 3, 2, 1, 0})
	if a, b := gather(t, first), gather(t, second); a != b {
		t.Errorf("registration order leaked into exposition:\n a: %q\n b: %q", a, b)
	}

	var ja, jb strings.Builder
	if err := first.WriteJSON(&ja); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := second.WriteJSON(&jb); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if ja.String() != jb.String() {
		t.Errorf("JSON exposition depends on registration order")
	}
}

// TestJSONExposition checks the JSON mirror parses and carries the same
// values as the handles report.
func TestJSONExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "Requests.", L("op", "search")).Add(11)
	r.Gauge("in_flight", "In flight.").Set(2)
	h := r.Histogram("lat_seconds", "Latency.")
	h.Observe(5 * time.Nanosecond)
	r.Histogram("idle_seconds", "Never observed.")

	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var families []struct {
		Name   string `json:"name"`
		Kind   string `json:"kind"`
		Series []struct {
			Labels map[string]string `json:"labels"`
			Value  *float64          `json:"value"`
			Count  *uint64           `json:"count"`
			P50    *float64          `json:"p50_seconds"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &families); err != nil {
		t.Fatalf("exposed JSON does not parse: %v\n%s", err, sb.String())
	}
	byName := map[string]int{}
	for i, f := range families {
		byName[f.Name] = i
	}
	if f := families[byName["reqs_total"]]; *f.Series[0].Value != 11 || f.Series[0].Labels["op"] != "search" {
		t.Errorf("reqs_total series = %+v", f.Series[0])
	}
	if f := families[byName["in_flight"]]; *f.Series[0].Value != 2 {
		t.Errorf("in_flight = %+v", f.Series[0])
	}
	if f := families[byName["lat_seconds"]]; *f.Series[0].Count != 1 || *f.Series[0].P50 != 5e-9 {
		t.Errorf("lat_seconds = %+v", f.Series[0])
	}
	// Empty summary quantiles are JSON null (NaN is unrepresentable).
	if f := families[byName["idle_seconds"]]; f.Series[0].P50 != nil {
		t.Errorf("idle_seconds p50 = %v, want null", *f.Series[0].P50)
	}
}

// TestRegistrationContracts pins the loud-failure contract for wiring
// mistakes: bad names, duplicate series, kind conflicts.
func TestRegistrationContracts(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	mustPanic("invalid metric name", func() { r.Counter("9bad", "x") })
	mustPanic("invalid label key", func() { r.Counter("ok_total", "x", L("9k", "v")) })
	mustPanic("duplicate label key", func() { r.Counter("ok2_total", "x", L("k", "a"), L("k", "b")) })
	r.Counter("dup_total", "x", L("op", "a"))
	mustPanic("duplicate series", func() { r.Counter("dup_total", "x", L("op", "a")) })
	mustPanic("kind conflict", func() { r.Gauge("dup_total", "x", L("op", "b")) })
}

// TestConcurrentUpdatesAndScrapes exercises handle updates racing with
// exposition under -race.
func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "C.")
	g := r.Gauge("g", "G.")
	h := r.Histogram("h_seconds", "H.")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 2000; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(time.Duration(j))
			}
		}()
	}
	var swg sync.WaitGroup
	swg.Add(1)
	go func() {
		defer swg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	swg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %v, want 0", g.Value())
	}
}

// TestGaugeNonFinite pins the text rendering of the IEEE edge values.
func TestGaugeNonFinite(t *testing.T) {
	r := NewRegistry()
	r.Gauge("weird", "W.", L("v", "nan")).Set(math.NaN())
	r.Gauge("weird", "W.", L("v", "pinf")).Set(math.Inf(1))
	want := "# HELP weird W.\n# TYPE weird gauge\n" +
		"weird{v=\"nan\"} NaN\n" +
		"weird{v=\"pinf\"} +Inf\n"
	if got := gather(t, r); got != want {
		t.Errorf("got %q want %q", got, want)
	}
}
