// Package obs is the repository's runtime metrics registry: a
// dependency-free substrate for counters, gauges and latency histograms
// that the serving layer exposes over its admin HTTP endpoint. The paper's
// whole experimental argument rests on measuring node accesses and buffer
// behavior (Section 3); this package makes those same measurements
// continuously visible on a running server instead of only at the end of a
// benchmark run.
//
// Design:
//
//   - A Registry holds metric families; a family holds one or more series
//     distinguished by label sets. Registration returns live handles
//     (Counter, Gauge) whose updates are lock-free atomics, or binds
//     callbacks (CounterFunc, GaugeFunc, HistogramFunc) that sample an
//     existing source at exposition time — the natural fit for the many
//     atomic counters the server, buffer and executor layers already keep.
//   - Histograms ride on internal/histo's lock-free log-bucketed
//     histogram and are exposed as Prometheus summaries (quantile series
//     plus _sum and _count), in seconds per Prometheus convention.
//   - Exposition is deterministic: families are written in name order,
//     series in label order, labels sorted by key at registration. Equal
//     registry state always serializes to identical bytes, which is what
//     the exposition tests (and strlint's maporder check) pin down.
//
// The package imports only the standard library and internal/histo, so
// any layer may depend on it without entangling the build core.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"strtree/internal/histo"
)

// Kind is a metric family's type, named after the Prometheus exposition
// types it renders as.
type Kind uint8

// The metric kinds.
const (
	KindCounter Kind = iota // monotonically increasing uint64
	KindGauge               // instantaneous float64
	KindSummary             // latency digest: quantiles, sum, count
)

// String returns the Prometheus TYPE name.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindSummary:
		return "summary"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Label is one name/value pair attached to a series. Values may contain
// any UTF-8; exposition escapes them.
type Label struct {
	Key, Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing counter. The zero value is ready
// to use, but counters are normally created through Registry.Counter so
// they are exported.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous value that can go up and down.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set stores the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (which may be negative). It is a CAS
// loop, safe for concurrent use.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		newV := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, newV) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// summaryQuantiles are the quantiles every summary exposes, ascending as
// histo.Quantiles requires.
var summaryQuantiles = []float64{0.5, 0.95, 0.99}

// series is one labeled instance inside a family.
type series struct {
	labels []Label // sorted by key at registration
	key    string  // canonical label signature, the sort key

	// Exactly one of the following backs the series, per the family kind.
	counter     *Counter
	counterFn   func() uint64
	gauge       *Gauge
	gaugeFn     func() float64
	hist        *histo.Histogram // owned or borrowed; summaries only
	scaleToSecs bool             // render histogram nanoseconds as seconds
}

// family is all series sharing one metric name. Both fields below are
// written only under the owning Registry's mu.
type family struct {
	name   string
	help   string
	kind   Kind
	byKey  map[string]*series // duplicate detection
	sorted []*series          // insertion-sorted by canonical label key
}

// Registry is a set of metric families. All methods are safe for
// concurrent use; metric updates through returned handles never take the
// registry lock.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family // guarded by mu
	ordered  []*family          // guarded by mu; insertion-sorted by name
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// validName matches the Prometheus metric-name grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// validLabelKey matches the Prometheus label-name grammar (no colons).
func validLabelKey(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// canonLabels sorts a copy of the labels by key and builds the series'
// canonical signature. Duplicate keys and invalid names are registration
// errors.
func canonLabels(name string, labels []Label) ([]Label, string) {
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if !validLabelKey(l.Key) {
			//strlint:ignore panics documented contract: metric registration with a bad label key is a programming error
			panic(fmt.Sprintf("obs: metric %s: invalid label key %q", name, l.Key))
		}
		if i > 0 && ls[i-1].Key == l.Key {
			//strlint:ignore panics documented contract: duplicate label keys on one series are a programming error
			panic(fmt.Sprintf("obs: metric %s: duplicate label key %q", name, l.Key))
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
		b.WriteByte(',')
	}
	return ls, b.String()
}

// register adds a series, creating its family on first use. Registering
// the same name with a different kind, or the same name+labels twice, is a
// programming error and panics — metrics are wired once at startup, so
// failing loudly there beats silently double-counting at runtime.
func (r *Registry) register(name, help string, kind Kind, s *series) {
	if !validName(name) {
		//strlint:ignore panics documented contract: an invalid metric name is a programming error
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, byKey: map[string]*series{}}
		r.families[name] = f
		// Keep the exposition order ready-made: families insertion-sorted
		// by name, so snapshot never ranges over the map.
		j := sort.Search(len(r.ordered), func(j int) bool { return r.ordered[j].name >= name })
		r.ordered = append(r.ordered, nil)
		copy(r.ordered[j+1:], r.ordered[j:])
		r.ordered[j] = f
	}
	if f.kind != kind {
		//strlint:ignore panics documented contract: re-registering a name under a different kind is a programming error
		panic(fmt.Sprintf("obs: metric %s re-registered as %v (was %v)", name, kind, f.kind))
	}
	if _, dup := f.byKey[s.key]; dup {
		//strlint:ignore panics documented contract: registering the same name+labels twice is a programming error
		panic(fmt.Sprintf("obs: metric %s{%s} registered twice", name, s.key))
	}
	f.byKey[s.key] = s
	// Insertion-sort into the exposition order so writers never sort.
	i := sort.Search(len(f.sorted), func(i int) bool { return f.sorted[i].key >= s.key })
	f.sorted = append(f.sorted, nil)
	copy(f.sorted[i+1:], f.sorted[i:])
	f.sorted[i] = s
}

// Counter registers and returns a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	ls, key := canonLabels(name, labels)
	r.register(name, help, KindCounter, &series{labels: ls, key: key, counter: c})
	return c
}

// CounterFunc registers a counter whose value is sampled from fn at
// exposition time. fn must be monotone and safe for concurrent use — the
// shape of an existing atomic counter's Load.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	ls, key := canonLabels(name, labels)
	r.register(name, help, KindCounter, &series{labels: ls, key: key, counterFn: fn})
}

// Gauge registers and returns a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	ls, key := canonLabels(name, labels)
	r.register(name, help, KindGauge, &series{labels: ls, key: key, gauge: g})
	return g
}

// GaugeFunc registers a gauge sampled from fn at exposition time. fn must
// be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	ls, key := canonLabels(name, labels)
	r.register(name, help, KindGauge, &series{labels: ls, key: key, gaugeFn: fn})
}

// Histogram registers a new latency histogram exposed as a summary in
// seconds, returning the histogram for the caller to Observe into.
func (r *Registry) Histogram(name, help string, labels ...Label) *histo.Histogram {
	h := &histo.Histogram{}
	r.HistogramFunc(name, help, h, labels...)
	return h
}

// HistogramFunc registers an existing histogram — the serving layer's
// per-op latency histograms, for example — as a summary series in seconds.
// The histogram keeps its single owner; the registry only reads it.
func (r *Registry) HistogramFunc(name, help string, h *histo.Histogram, labels ...Label) {
	ls, key := canonLabels(name, labels)
	r.register(name, help, KindSummary, &series{labels: ls, key: key, hist: h, scaleToSecs: true})
}

// snapshot returns the families in exposition (name) order with their
// series slices copied, so writers run without the registry lock. The
// order comes from the insertion-sorted r.ordered slice, never from map
// iteration.
func (r *Registry) snapshot() []familySnap {
	r.mu.Lock()
	out := make([]familySnap, 0, len(r.ordered))
	for _, f := range r.ordered {
		out = append(out, familySnap{
			name: f.name, help: f.help, kind: f.kind,
			series: append([]*series(nil), f.sorted...),
		})
	}
	r.mu.Unlock()
	return out
}

// familySnap is one family frozen for exposition.
type familySnap struct {
	name   string
	help   string
	kind   Kind
	series []*series
}

// sampleCounter reads a counter series' current value.
func (s *series) sampleCounter() uint64 {
	if s.counterFn != nil {
		return s.counterFn()
	}
	return s.counter.Value()
}

// sampleGauge reads a gauge series' current value.
func (s *series) sampleGauge() float64 {
	if s.gaugeFn != nil {
		return s.gaugeFn()
	}
	return s.gauge.Value()
}

// summarySample is a summary series' digest at exposition time.
type summarySample struct {
	count     uint64
	sum       float64   // seconds
	quantiles []float64 // seconds, aligned with summaryQuantiles; NaN when empty
}

// sampleSummary digests a histogram series. Quantiles of an empty
// histogram are histo.NoData; they surface as NaN, which Prometheus
// defines as "no observation" for summary quantiles.
func (s *series) sampleSummary() summarySample {
	qs := s.hist.Quantiles(summaryQuantiles...)
	out := summarySample{
		count:     uint64(s.hist.Count()),
		sum:       s.hist.Sum().Seconds(),
		quantiles: make([]float64, len(qs)),
	}
	for i, q := range qs {
		if q == histo.NoData {
			out.quantiles[i] = math.NaN()
			continue
		}
		out.quantiles[i] = time.Duration(q).Seconds()
	}
	return out
}
