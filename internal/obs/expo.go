package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// This file renders a Registry in the two exposition formats the admin
// endpoint serves: the Prometheus text format (version 0.0.4, what
// `/metrics` scrapes expect) and a JSON mirror for humans and scripts.
// Both walk the same deterministic snapshot, so equal registry state
// always produces identical bytes.

// escapeHelp escapes a HELP string per the text format: backslash and
// newline only.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes a label value per the text format: backslash,
// double quote and newline.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a float sample the way Prometheus expects: shortest
// round-trip representation, with NaN and infinities spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// appendLabels renders `{k="v",...}` (empty string for no labels), with
// extra appended after the series' own labels — the summary quantile
// label's slot.
func appendLabels(dst []byte, labels []Label, extra ...Label) []byte {
	if len(labels)+len(extra) == 0 {
		return dst
	}
	dst = append(dst, '{')
	first := true
	for _, set := range [][]Label{labels, extra} {
		for _, l := range set {
			if !first {
				dst = append(dst, ',')
			}
			first = false
			dst = append(dst, l.Key...)
			dst = append(dst, '=', '"')
			dst = append(dst, escapeLabelValue(l.Value)...)
			dst = append(dst, '"')
		}
	}
	return append(dst, '}')
}

// WritePrometheus renders every family in the Prometheus text exposition
// format, families in name order and series in label order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var buf []byte
	for _, f := range r.snapshot() {
		buf = buf[:0]
		buf = append(buf, "# HELP "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, escapeHelp(f.help)...)
		buf = append(buf, "\n# TYPE "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, f.kind.String()...)
		buf = append(buf, '\n')
		for _, s := range f.series {
			switch f.kind {
			case KindCounter:
				buf = append(buf, f.name...)
				buf = appendLabels(buf, s.labels)
				buf = append(buf, ' ')
				buf = strconv.AppendUint(buf, s.sampleCounter(), 10)
				buf = append(buf, '\n')
			case KindGauge:
				buf = append(buf, f.name...)
				buf = appendLabels(buf, s.labels)
				buf = append(buf, ' ')
				buf = append(buf, formatValue(s.sampleGauge())...)
				buf = append(buf, '\n')
			case KindSummary:
				sum := s.sampleSummary()
				for i, q := range summaryQuantiles {
					buf = append(buf, f.name...)
					buf = appendLabels(buf, s.labels, L("quantile", formatValue(q)))
					buf = append(buf, ' ')
					buf = append(buf, formatValue(sum.quantiles[i])...)
					buf = append(buf, '\n')
				}
				buf = append(buf, f.name...)
				buf = append(buf, "_sum"...)
				buf = appendLabels(buf, s.labels)
				buf = append(buf, ' ')
				buf = append(buf, formatValue(sum.sum)...)
				buf = append(buf, '\n')
				buf = append(buf, f.name...)
				buf = append(buf, "_count"...)
				buf = appendLabels(buf, s.labels)
				buf = append(buf, ' ')
				buf = strconv.AppendUint(buf, sum.count, 10)
				buf = append(buf, '\n')
			}
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the registry as a JSON array of families, each with
// its name, kind, help and series (labels plus a kind-shaped value).
// Ordering matches WritePrometheus. The JSON is built by hand from the
// sorted snapshot — no map marshaling — so the bytes are deterministic.
func (r *Registry) WriteJSON(w io.Writer) error {
	var buf []byte
	buf = append(buf, '[')
	for fi, f := range r.snapshot() {
		if fi > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, "{\"name\":"...)
		buf = appendJSONString(buf, f.name)
		buf = append(buf, ",\"kind\":"...)
		buf = appendJSONString(buf, f.kind.String())
		buf = append(buf, ",\"help\":"...)
		buf = appendJSONString(buf, f.help)
		buf = append(buf, ",\"series\":["...)
		for si, s := range f.series {
			if si > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, "{\"labels\":{"...)
			for li, l := range s.labels {
				if li > 0 {
					buf = append(buf, ',')
				}
				buf = appendJSONString(buf, l.Key)
				buf = append(buf, ':')
				buf = appendJSONString(buf, l.Value)
			}
			buf = append(buf, '}')
			switch f.kind {
			case KindCounter:
				buf = append(buf, ",\"value\":"...)
				buf = strconv.AppendUint(buf, s.sampleCounter(), 10)
			case KindGauge:
				buf = append(buf, ",\"value\":"...)
				buf = appendJSONFloat(buf, s.sampleGauge())
			case KindSummary:
				sum := s.sampleSummary()
				buf = append(buf, ",\"count\":"...)
				buf = strconv.AppendUint(buf, sum.count, 10)
				buf = append(buf, ",\"sum_seconds\":"...)
				buf = appendJSONFloat(buf, sum.sum)
				for i, q := range summaryQuantiles {
					buf = append(buf, ",\"p"...)
					// 0.5 -> "p50", 0.95 -> "p95", 0.99 -> "p99"
					buf = strconv.AppendInt(buf, int64(q*100+0.5), 10)
					buf = append(buf, "_seconds\":"...)
					buf = appendJSONFloat(buf, sum.quantiles[i])
				}
			}
			buf = append(buf, '}')
		}
		buf = append(buf, "]}"...)
	}
	buf = append(buf, ']', '\n')
	_, err := w.Write(buf)
	return err
}

// appendJSONString appends s as a JSON string literal. Metric names, label
// keys and values are plain UTF-8; the escapes JSON requires are quotes,
// backslashes, and control characters.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for _, r := range s {
		switch {
		case r == '"':
			dst = append(dst, '\\', '"')
		case r == '\\':
			dst = append(dst, '\\', '\\')
		case r == '\n':
			dst = append(dst, '\\', 'n')
		case r == '\t':
			dst = append(dst, '\\', 't')
		case r == '\r':
			dst = append(dst, '\\', 'r')
		case r < 0x20:
			dst = append(dst, fmt.Sprintf(`\u%04x`, r)...)
		default:
			dst = utf8AppendRune(dst, r)
		}
	}
	return append(dst, '"')
}

// utf8AppendRune appends the UTF-8 encoding of r.
func utf8AppendRune(dst []byte, r rune) []byte {
	return append(dst, string(r)...)
}

// appendJSONFloat appends v as a JSON number; NaN and infinities (not
// representable in JSON) become null.
func appendJSONFloat(dst []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return append(dst, "null"...)
	}
	return strconv.AppendFloat(dst, v, 'g', -1, 64)
}
