// Package geom provides the k-dimensional axis-aligned geometry used by the
// R-tree: points, hyper-rectangles, and the measures the STR paper reports
// (area and perimeter/margin of minimum bounding rectangles).
//
// A hyper-rectangle is defined, as in the paper, by k intervals [Min[i],
// Max[i]] and is the locus of points whose i-th coordinate falls inside the
// i-th interval. The two-dimensional case dominates the paper's evaluation,
// so convenience constructors for 2-D are provided, but every operation works
// for arbitrary k.
package geom

import (
	"fmt"
	"math"
	"strings"
)

// Point is a location in k-dimensional space. The dimension is len(p).
type Point []float64

// Pt2 returns a 2-D point.
func Pt2(x, y float64) Point { return Point{x, y} }

// Dim reports the dimensionality of the point.
func (p Point) Dim() int { return len(p) }

// Equal reports whether p and q have identical coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		//strlint:ignore floateq exact coordinate equality is the contract: MBR tightness and page round-trips are bit-exact
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// String renders the point as "(x, y, ...)".
func (p Point) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range p {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%g", c)
	}
	b.WriteByte(')')
	return b.String()
}

// Rect is a closed axis-aligned hyper-rectangle. A Rect is valid when
// len(Min) == len(Max) and Min[i] <= Max[i] for all i. A degenerate Rect
// (Min == Max in some or all axes) represents a point or lower-dimensional
// box and is valid.
type Rect struct {
	Min, Max Point
}

// R2 returns the 2-D rectangle [x0,x1] x [y0,y1]. It panics if x0 > x1 or
// y0 > y1; use NewRect for checked construction.
func R2(x0, y0, x1, y1 float64) Rect {
	if x0 > x1 || y0 > y1 {
		//strlint:ignore panics documented contract: R2 panics on inverted input, NewRect is the checked constructor
		panic(fmt.Sprintf("geom: inverted rectangle [%g,%g]x[%g,%g]", x0, x1, y0, y1))
	}
	return Rect{Min: Point{x0, y0}, Max: Point{x1, y1}}
}

// NewRect builds a rectangle from two corner points, reordering coordinates
// so the result is valid. It returns an error if the dimensions disagree or
// any coordinate is NaN.
func NewRect(a, b Point) (Rect, error) {
	if len(a) != len(b) {
		return Rect{}, fmt.Errorf("geom: corner dimensions disagree: %d vs %d", len(a), len(b))
	}
	lo := make(Point, len(a))
	hi := make(Point, len(a))
	for i := range a {
		if math.IsNaN(a[i]) || math.IsNaN(b[i]) {
			return Rect{}, fmt.Errorf("geom: NaN coordinate in axis %d", i)
		}
		lo[i] = math.Min(a[i], b[i])
		hi[i] = math.Max(a[i], b[i])
	}
	return Rect{Min: lo, Max: hi}, nil
}

// PointRect returns the degenerate rectangle containing exactly p.
func PointRect(p Point) Rect {
	return Rect{Min: p.Clone(), Max: p.Clone()}
}

// Dim reports the dimensionality of the rectangle.
func (r Rect) Dim() int { return len(r.Min) }

// Valid reports whether r is a well-formed rectangle: matching dimensions,
// no NaNs, and Min <= Max on every axis.
func (r Rect) Valid() bool {
	if len(r.Min) == 0 || len(r.Min) != len(r.Max) {
		return false
	}
	for i := range r.Min {
		if math.IsNaN(r.Min[i]) || math.IsNaN(r.Max[i]) || r.Min[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of r.
func (r Rect) Clone() Rect {
	return Rect{Min: r.Min.Clone(), Max: r.Max.Clone()}
}

// Equal reports whether r and s are the same rectangle.
func (r Rect) Equal(s Rect) bool {
	return r.Min.Equal(s.Min) && r.Max.Equal(s.Max)
}

// Center returns the center point of r. The paper sorts rectangles by the
// coordinates of their centers in all three packing algorithms.
func (r Rect) Center() Point {
	c := make(Point, len(r.Min))
	for i := range r.Min {
		c[i] = r.Min[i] + (r.Max[i]-r.Min[i])/2
	}
	return c
}

// CenterAxis returns the center coordinate along one axis without
// allocating. It is the hot operation in every packing sort.
func (r Rect) CenterAxis(axis int) float64 {
	return r.Min[axis] + (r.Max[axis]-r.Min[axis])/2
}

// Side returns the extent of r along one axis.
func (r Rect) Side(axis int) float64 { return r.Max[axis] - r.Min[axis] }

// Area returns the k-dimensional volume of r (the paper's "area" metric in
// 2-D). A degenerate rectangle has area zero.
func (r Rect) Area() float64 {
	a := 1.0
	for i := range r.Min {
		a *= r.Max[i] - r.Min[i]
	}
	return a
}

// Margin returns the sum of the side lengths of r times 2^(k-1), which in
// two dimensions is exactly the perimeter the paper reports. (This is the
// standard generalization used by the R*-tree literature.)
func (r Rect) Margin() float64 {
	s := 0.0
	for i := range r.Min {
		s += r.Max[i] - r.Min[i]
	}
	if k := len(r.Min); k > 1 {
		s *= float64(int(1) << (k - 1))
	}
	return s
}

// Intersects reports whether r and s share at least one point (closed-box
// semantics: touching edges intersect). This is the predicate used by both
// point and region queries in the paper.
func (r Rect) Intersects(s Rect) bool {
	for i := range r.Min {
		if r.Min[i] > s.Max[i] || s.Min[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Contains reports whether r fully contains s.
func (r Rect) Contains(s Rect) bool {
	for i := range r.Min {
		if s.Min[i] < r.Min[i] || s.Max[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// ContainsPoint reports whether p lies inside r (boundary inclusive).
func (r Rect) ContainsPoint(p Point) bool {
	for i := range r.Min {
		if p[i] < r.Min[i] || p[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Union returns the minimum bounding rectangle of r and s.
func (r Rect) Union(s Rect) Rect {
	u := Rect{Min: make(Point, len(r.Min)), Max: make(Point, len(r.Max))}
	for i := range r.Min {
		u.Min[i] = math.Min(r.Min[i], s.Min[i])
		u.Max[i] = math.Max(r.Max[i], s.Max[i])
	}
	return u
}

// UnionInPlace grows r to cover s, avoiding allocation. r must already be a
// valid rectangle of the same dimension as s.
func (r *Rect) UnionInPlace(s Rect) {
	for i := range r.Min {
		if s.Min[i] < r.Min[i] {
			r.Min[i] = s.Min[i]
		}
		if s.Max[i] > r.Max[i] {
			r.Max[i] = s.Max[i]
		}
	}
}

// Intersect returns the intersection of r and s and whether it is non-empty.
func (r Rect) Intersect(s Rect) (Rect, bool) {
	out := Rect{Min: make(Point, len(r.Min)), Max: make(Point, len(r.Max))}
	for i := range r.Min {
		out.Min[i] = math.Max(r.Min[i], s.Min[i])
		out.Max[i] = math.Min(r.Max[i], s.Max[i])
		if out.Min[i] > out.Max[i] {
			return Rect{}, false
		}
	}
	return out, true
}

// Enlargement returns the increase in area needed for r to cover s. It is
// the quantity minimized by Guttman's ChooseLeaf.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// Dist returns the minimum Euclidean distance between two rectangles
// (zero when they intersect).
func (r Rect) Dist(s Rect) float64 {
	sum := 0.0
	for i := range r.Min {
		var d float64
		switch {
		case s.Min[i] > r.Max[i]:
			d = s.Min[i] - r.Max[i]
		case r.Min[i] > s.Max[i]:
			d = r.Min[i] - s.Max[i]
		}
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Expand returns r grown by d on every side (shrunk for negative d; sides
// collapse to the center rather than inverting).
func (r Rect) Expand(d float64) Rect {
	out := Rect{Min: make(Point, len(r.Min)), Max: make(Point, len(r.Max))}
	for i := range r.Min {
		lo, hi := r.Min[i]-d, r.Max[i]+d
		if lo > hi {
			mid := r.Min[i] + (r.Max[i]-r.Min[i])/2
			lo, hi = mid, mid
		}
		out.Min[i], out.Max[i] = lo, hi
	}
	return out
}

// MBR returns the minimum bounding rectangle of a non-empty set of
// rectangles. It panics on an empty input because an empty set has no MBR.
func MBR(rects []Rect) Rect {
	if len(rects) == 0 {
		//strlint:ignore panics documented contract: an empty set has no MBR
		panic("geom: MBR of empty set")
	}
	m := rects[0].Clone()
	for _, r := range rects[1:] {
		m.UnionInPlace(r)
	}
	return m
}

// String renders r as "[min .. max]".
func (r Rect) String() string {
	return fmt.Sprintf("[%s .. %s]", r.Min, r.Max)
}

// UnitSquare is the normalized data space of the paper's experiments: all
// data sets are normalized to [0,1]^2.
func UnitSquare() Rect { return R2(0, 0, 1, 1) }

// UnitCube returns [0,1]^k.
func UnitCube(k int) Rect {
	r := Rect{Min: make(Point, k), Max: make(Point, k)}
	for i := 0; i < k; i++ {
		r.Max[i] = 1
	}
	return r
}

// Clamp returns p with every coordinate clamped into r. The paper's query
// generator clamps region query corners at 1.0 this way.
func (r Rect) Clamp(p Point) Point {
	q := p.Clone()
	for i := range q {
		if q[i] < r.Min[i] {
			q[i] = r.Min[i]
		}
		if q[i] > r.Max[i] {
			q[i] = r.Max[i]
		}
	}
	return q
}
