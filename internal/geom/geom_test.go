package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPt2AndDim(t *testing.T) {
	p := Pt2(0.25, 0.75)
	if p.Dim() != 2 {
		t.Fatalf("Dim() = %d, want 2", p.Dim())
	}
	if p[0] != 0.25 || p[1] != 0.75 {
		t.Fatalf("Pt2 coords = %v", p)
	}
}

func TestPointEqual(t *testing.T) {
	cases := []struct {
		a, b Point
		want bool
	}{
		{Pt2(1, 2), Pt2(1, 2), true},
		{Pt2(1, 2), Pt2(2, 1), false},
		{Pt2(1, 2), Point{1, 2, 3}, false},
		{Point{}, Point{}, true},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestPointCloneIndependent(t *testing.T) {
	p := Pt2(1, 2)
	q := p.Clone()
	q[0] = 99
	if p[0] != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestPointString(t *testing.T) {
	if got := Pt2(0.5, 1).String(); got != "(0.5, 1)" {
		t.Fatalf("String() = %q", got)
	}
}

func TestR2PanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("R2 with inverted x did not panic")
		}
	}()
	R2(1, 0, 0, 1)
}

func TestNewRectReorders(t *testing.T) {
	r, err := NewRect(Pt2(1, 0), Pt2(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equal(R2(0, 0, 1, 1)) {
		t.Fatalf("NewRect = %v, want unit square", r)
	}
}

func TestNewRectErrors(t *testing.T) {
	if _, err := NewRect(Pt2(0, 0), Point{1}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := NewRect(Pt2(math.NaN(), 0), Pt2(1, 1)); err == nil {
		t.Error("NaN coordinate accepted")
	}
}

func TestValid(t *testing.T) {
	cases := []struct {
		r    Rect
		want bool
	}{
		{R2(0, 0, 1, 1), true},
		{PointRect(Pt2(0.5, 0.5)), true},
		{Rect{Min: Pt2(0, 0), Max: Point{1}}, false},
		{Rect{Min: Pt2(1, 0), Max: Pt2(0, 1)}, false},
		{Rect{Min: Pt2(math.NaN(), 0), Max: Pt2(1, 1)}, false},
		{Rect{}, false},
	}
	for i, c := range cases {
		if got := c.r.Valid(); got != c.want {
			t.Errorf("case %d: Valid(%v) = %v, want %v", i, c.r, got, c.want)
		}
	}
}

func TestAreaMargin2D(t *testing.T) {
	r := R2(0, 0, 2, 3)
	if got := r.Area(); got != 6 {
		t.Errorf("Area = %g, want 6", got)
	}
	// 2-D margin is the perimeter: 2*(2+3) = 10.
	if got := r.Margin(); got != 10 {
		t.Errorf("Margin = %g, want 10", got)
	}
	if got := PointRect(Pt2(1, 1)).Area(); got != 0 {
		t.Errorf("point area = %g, want 0", got)
	}
}

func TestAreaMargin3D(t *testing.T) {
	r := Rect{Min: Point{0, 0, 0}, Max: Point{1, 2, 3}}
	if got := r.Area(); got != 6 {
		t.Errorf("3-D volume = %g, want 6", got)
	}
	// 3-D margin: 4*(1+2+3) = 24 (sum of edge lengths).
	if got := r.Margin(); got != 24 {
		t.Errorf("3-D margin = %g, want 24", got)
	}
}

func TestCenter(t *testing.T) {
	r := R2(0, 1, 2, 3)
	if !r.Center().Equal(Pt2(1, 2)) {
		t.Fatalf("Center = %v, want (1, 2)", r.Center())
	}
	if r.CenterAxis(0) != 1 || r.CenterAxis(1) != 2 {
		t.Fatalf("CenterAxis = (%g, %g)", r.CenterAxis(0), r.CenterAxis(1))
	}
}

func TestSide(t *testing.T) {
	r := R2(0, 1, 2, 4)
	if r.Side(0) != 2 || r.Side(1) != 3 {
		t.Fatalf("Side = (%g, %g), want (2, 3)", r.Side(0), r.Side(1))
	}
}

func TestIntersects(t *testing.T) {
	a := R2(0, 0, 1, 1)
	cases := []struct {
		b    Rect
		want bool
	}{
		{R2(0.5, 0.5, 2, 2), true},
		{R2(1, 1, 2, 2), true}, // touching corner counts (closed boxes)
		{R2(1.001, 0, 2, 1), false},
		{R2(0.25, 0.25, 0.75, 0.75), true}, // containment is intersection
		{R2(-1, -1, 2, 2), true},           // b contains a
		{R2(0, 2, 1, 3), false},            // disjoint in y only
	}
	for i, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("case %d: %v.Intersects(%v) = %v, want %v", i, a, c.b, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("case %d: intersection not symmetric", i)
		}
	}
}

func TestContains(t *testing.T) {
	a := R2(0, 0, 1, 1)
	if !a.Contains(R2(0, 0, 1, 1)) {
		t.Error("rect should contain itself")
	}
	if !a.Contains(R2(0.2, 0.2, 0.8, 0.8)) {
		t.Error("inner rect not contained")
	}
	if a.Contains(R2(0.5, 0.5, 1.5, 1)) {
		t.Error("overlapping rect reported as contained")
	}
	if !a.ContainsPoint(Pt2(1, 1)) {
		t.Error("boundary point not contained")
	}
	if a.ContainsPoint(Pt2(1.01, 0.5)) {
		t.Error("outside point contained")
	}
}

func TestUnion(t *testing.T) {
	a, b := R2(0, 0, 1, 1), R2(2, -1, 3, 0.5)
	u := a.Union(b)
	if !u.Equal(R2(0, -1, 3, 1)) {
		t.Fatalf("Union = %v", u)
	}
	// In place.
	c := a.Clone()
	c.UnionInPlace(b)
	if !c.Equal(u) {
		t.Fatalf("UnionInPlace = %v, want %v", c, u)
	}
	// Original untouched by Union.
	if !a.Equal(R2(0, 0, 1, 1)) {
		t.Fatal("Union mutated its receiver")
	}
}

func TestIntersect(t *testing.T) {
	a := R2(0, 0, 1, 1)
	got, ok := a.Intersect(R2(0.5, 0.5, 2, 2))
	if !ok || !got.Equal(R2(0.5, 0.5, 1, 1)) {
		t.Fatalf("Intersect = %v, %v", got, ok)
	}
	if _, ok := a.Intersect(R2(2, 2, 3, 3)); ok {
		t.Fatal("disjoint rects reported intersecting")
	}
}

func TestEnlargement(t *testing.T) {
	a := R2(0, 0, 1, 1)
	if got := a.Enlargement(R2(0.2, 0.2, 0.8, 0.8)); got != 0 {
		t.Errorf("enlargement by contained rect = %g, want 0", got)
	}
	if got := a.Enlargement(R2(0, 0, 2, 1)); got != 1 {
		t.Errorf("enlargement = %g, want 1", got)
	}
}

func TestMBR(t *testing.T) {
	rs := []Rect{R2(0, 0, 1, 1), R2(2, 2, 3, 3), R2(-1, 0.5, 0, 0.6)}
	if got := MBR(rs); !got.Equal(R2(-1, 0, 3, 3)) {
		t.Fatalf("MBR = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MBR of empty set did not panic")
		}
	}()
	MBR(nil)
}

func TestClamp(t *testing.T) {
	u := UnitSquare()
	if got := u.Clamp(Pt2(1.3, -0.2)); !got.Equal(Pt2(1, 0)) {
		t.Fatalf("Clamp = %v", got)
	}
	if got := u.Clamp(Pt2(0.5, 0.5)); !got.Equal(Pt2(0.5, 0.5)) {
		t.Fatalf("Clamp of interior point = %v", got)
	}
}

func TestUnitCube(t *testing.T) {
	c := UnitCube(3)
	if c.Dim() != 3 || c.Area() != 1 {
		t.Fatalf("UnitCube(3) = %v", c)
	}
	if !UnitCube(2).Equal(UnitSquare()) {
		t.Fatal("UnitCube(2) != UnitSquare()")
	}
}

func TestRectString(t *testing.T) {
	if got := R2(0, 0, 1, 2).String(); got != "[(0, 0) .. (1, 2)]" {
		t.Fatalf("String = %q", got)
	}
}

func TestDist(t *testing.T) {
	a := R2(0, 0, 1, 1)
	cases := []struct {
		b    Rect
		want float64
	}{
		{R2(0.5, 0.5, 2, 2), 0},      // overlapping
		{R2(1, 1, 2, 2), 0},          // touching
		{R2(2, 0, 3, 1), 1},          // 1 apart in x
		{R2(0, 3, 1, 4), 2},          // 2 apart in y
		{R2(2, 2, 3, 3), math.Sqrt2}, // diagonal corner gap of (1,1)
		{R2(4, 5, 6, 7), 5},          // 3-4-5 triangle
	}
	for i, c := range cases {
		if got := a.Dist(c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: Dist = %g, want %g", i, got, c.want)
		}
		if got := c.b.Dist(a); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: Dist not symmetric", i)
		}
	}
}

func TestExpand(t *testing.T) {
	r := R2(0.25, 0.5, 0.5, 0.75)
	if got := r.Expand(0.25); !got.Equal(R2(0, 0.25, 0.75, 1)) {
		t.Fatalf("Expand(0.25) = %v", got)
	}
	// Shrinking past the center collapses to the center.
	if got := r.Expand(-1); !got.Equal(R2(0.375, 0.625, 0.375, 0.625)) {
		t.Fatalf("Expand(-1) = %v", got)
	}
	// Original untouched.
	if !r.Equal(R2(0.25, 0.5, 0.5, 0.75)) {
		t.Fatal("Expand mutated the receiver")
	}
}

func TestPropDistExpandConsistency(t *testing.T) {
	// Expand is the L-infinity inflation, Dist the L2 distance, so:
	// Dist <= d implies Expand(d) intersects, and Expand(d) intersecting
	// implies Dist <= d*sqrt(2) (in 2-D). Both directions must hold.
	rng := rand.New(rand.NewSource(6))
	f := func() bool {
		a, b := randRect(rng), randRect(rng)
		d := rng.Float64() * 5
		dist := a.Dist(b)
		overlapExpanded := a.Expand(d).Intersects(b)
		if dist <= d && !overlapExpanded {
			return false
		}
		if overlapExpanded && dist > d*math.Sqrt2+1e-9 {
			return false
		}
		// Dist symmetry and zero-on-intersection.
		if a.Intersects(b) && dist != 0 {
			return false
		}
		return dist == b.Dist(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// randRect produces a valid random rectangle in roughly [-10,10]^2 for
// property tests.
func randRect(rng *rand.Rand) Rect {
	x0, y0 := rng.Float64()*20-10, rng.Float64()*20-10
	r, _ := NewRect(Pt2(x0, y0), Pt2(x0+rng.Float64()*5, y0+rng.Float64()*5))
	return r
}

func TestPropUnionContainsBoth(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		a, b := randRect(rng), randRect(rng)
		u := a.Union(b)
		return u.Contains(a) && u.Contains(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropUnionAreaMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		a, b := randRect(rng), randRect(rng)
		u := a.Union(b)
		return u.Area() >= a.Area() && u.Area() >= b.Area() && u.Margin() >= a.Margin()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropIntersectSymmetricAndContained(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func() bool {
		a, b := randRect(rng), randRect(rng)
		i1, ok1 := a.Intersect(b)
		i2, ok2 := b.Intersect(a)
		if ok1 != ok2 || ok1 != a.Intersects(b) {
			return false
		}
		if !ok1 {
			return true
		}
		return i1.Equal(i2) && a.Contains(i1) && b.Contains(i1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropContainmentImpliesIntersection(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func() bool {
		a, b := randRect(rng), randRect(rng)
		if a.Contains(b) && !a.Intersects(b) {
			return false
		}
		u := a.Union(b)
		// Center of each rect must be inside the union.
		return u.ContainsPoint(a.Center()) && u.ContainsPoint(b.Center())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropEnlargementNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func() bool {
		a, b := randRect(rng), randRect(rng)
		return a.Enlargement(b) >= -1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIntersects(b *testing.B) {
	r := R2(0.2, 0.2, 0.4, 0.4)
	q := R2(0.3, 0.3, 0.5, 0.5)
	for i := 0; i < b.N; i++ {
		if !r.Intersects(q) {
			b.Fatal("unexpected miss")
		}
	}
}

func BenchmarkUnionInPlace(b *testing.B) {
	r := R2(0.2, 0.2, 0.4, 0.4)
	q := R2(0.3, 0.3, 0.5, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.UnionInPlace(q)
	}
}
