// Package histo provides a fixed-size, log-bucketed latency histogram
// safe for concurrent observation without locks. It is the measurement
// substrate shared by the serving layer (internal/server's per-op request
// latencies) and the benchmark harness (cmd/strbench -concurrency's
// per-query percentiles), so the two report comparable numbers.
//
// Buckets follow the classic log-linear scheme: values below 2^subBits
// nanoseconds get exact unit buckets; above that, every power-of-two
// octave is split into 2^subBits equal sub-buckets, bounding the relative
// quantile error at 1/2^subBits (12.5% with subBits = 3). The whole range
// of an int64 nanosecond duration — up to ~292 years — fits in a few
// hundred counters, so a Histogram is a flat value type with no growth
// path and no allocation after creation.
package histo

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// subBits sets the sub-buckets per octave: 2^subBits buckets of equal
	// width per power of two, i.e. at most 12.5% relative error.
	subBits = 3
	// subCount is the number of sub-buckets per octave.
	subCount = 1 << subBits
	// numBuckets covers every representable int64 nanosecond value:
	// subCount exact unit buckets plus subCount per remaining octave.
	numBuckets = (63 - subBits + 1) * subCount
)

// Histogram counts duration observations in log-spaced buckets. The zero
// value is ready to use. All methods are safe for concurrent use; Observe
// is wait-free (three atomic adds and a CAS loop only when a new maximum
// is set).
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// bucketIndex maps a non-negative nanosecond value to its bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < subCount {
		return int(u)
	}
	e := bits.Len64(u) - 1 // floor(log2 u), >= subBits
	shift := e - subBits
	sub := int(u>>uint(shift)) - subCount // 0 .. subCount-1
	return (shift+1)*subCount + sub
}

// bucketUpper returns the largest value mapping to bucket idx, the bound
// Quantile reports (quantiles are pessimistic, never underestimates).
func bucketUpper(idx int) int64 {
	if idx < subCount {
		return int64(idx)
	}
	shift := idx/subCount - 1
	sub := idx % subCount
	lower := uint64(subCount+sub) << uint(shift)
	return int64(lower + (1 << uint(shift)) - 1)
}

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketIndex(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observed durations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Max returns the largest observed duration (0 when empty).
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Mean returns the average observed duration (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// NoData is the sentinel Quantile and Quantiles return for every
// requested quantile of an empty histogram. A zero return would be
// indistinguishable from "all observations were zero", and the serving
// layer's dashboards must tell an idle op (no data) apart from a very
// fast one (real 0ns measurements). NoData is negative, which no real
// observation can produce (Observe clamps negatives to zero), so
// `q == NoData` — or simply `q < 0` — is a reliable emptiness test.
const NoData = time.Duration(-1)

// Quantile returns an upper bound for the q-quantile (q in [0, 1]) of the
// observed durations, within one bucket width. It returns NoData when the
// histogram is empty. Quantile(0.5) is the median, Quantile(0.99) the p99.
func (h *Histogram) Quantile(q float64) time.Duration {
	return h.Quantiles(q)[0]
}

// Quantiles computes several quantiles from one consistent snapshot of the
// buckets, cheaper and more coherent than repeated Quantile calls under
// concurrent writes. qs must be ascending; results match qs positionally.
// Every result is NoData when the histogram is empty.
func (h *Histogram) Quantiles(qs ...float64) []time.Duration {
	var snap [numBuckets]int64
	total := int64(0)
	for i := range snap {
		c := h.buckets[i].Load()
		snap[i] = c
		total += c
	}
	out := make([]time.Duration, len(qs))
	if total == 0 {
		for i := range out {
			out[i] = NoData
		}
		return out
	}
	maxSeen := h.max.Load()
	cum := int64(0)
	bucket := 0
	for qi, q := range qs {
		// rank is the 1-based index of the order statistic for q.
		rank := int64(q*float64(total) + 0.5)
		if rank < 1 {
			rank = 1
		}
		if rank > total {
			rank = total
		}
		for bucket < numBuckets && cum < rank {
			cum += snap[bucket]
			bucket++
		}
		upper := bucketUpper(bucket - 1)
		// The recorded exact max beats the last bucket's upper bound.
		if upper > maxSeen {
			upper = maxSeen
		}
		out[qi] = time.Duration(upper)
	}
	return out
}

// Reset zeroes all counters. Not atomic with respect to concurrent
// Observe calls: reset during a quiet period.
func (h *Histogram) Reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Summary is a fixed-size digest of a histogram, the form the serving
// layer's stats response carries over the wire. All fields are in
// nanoseconds except Count.
type Summary struct {
	Count                    uint64
	Mean, P50, P95, P99, Max uint64
}

// Summarize digests the histogram into counters and headline quantiles.
// An empty histogram yields the zero Summary (Count 0 disambiguates it);
// the NoData sentinel never leaks into the unsigned wire fields.
func (h *Histogram) Summarize() Summary {
	if h.Count() == 0 {
		return Summary{}
	}
	qs := h.Quantiles(0.50, 0.95, 0.99)
	for i, q := range qs {
		// Observe bumps count before the bucket add, so a concurrent
		// snapshot can still see empty buckets; clamp the sentinel rather
		// than let it wrap the unsigned wire fields.
		if q < 0 {
			qs[i] = 0
		}
	}
	return Summary{
		Count: uint64(h.Count()),
		Mean:  uint64(h.Mean()),
		P50:   uint64(qs[0]),
		P95:   uint64(qs[1]),
		P99:   uint64(qs[2]),
		Max:   uint64(h.Max()),
	}
}
