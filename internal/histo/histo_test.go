package histo

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestBucketMapping pins the log-linear scheme: unit buckets below
// subCount, then subCount sub-buckets per octave, contiguous and
// monotone, with every value inside its bucket's bounds.
func TestBucketMapping(t *testing.T) {
	for v := int64(0); v < subCount; v++ {
		if got := bucketIndex(v); got != int(v) {
			t.Fatalf("bucketIndex(%d) = %d, want unit bucket %d", v, got, v)
		}
	}
	prev := -1
	for _, v := range []int64{0, 1, 7, 8, 9, 15, 16, 31, 32, 100, 1000, 1 << 20, 1<<40 + 12345, 1<<62 + 99} {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
		if up := bucketUpper(idx); v > up {
			t.Errorf("value %d above its bucket %d upper bound %d", v, idx, up)
		}
		if idx > 0 {
			if lo := bucketUpper(idx - 1); v <= lo {
				t.Errorf("value %d not above previous bucket's upper bound %d", v, lo)
			}
		}
	}
}

// TestBucketUpperRoundTrip checks bucketUpper is the exact inverse
// boundary: the upper bound maps back into its own bucket, and one more
// maps into the next.
func TestBucketUpperRoundTrip(t *testing.T) {
	for idx := 0; idx < numBuckets; idx++ {
		up := bucketUpper(idx)
		if up < 0 {
			// Top octave overflows int64; the scheme never reaches it
			// from a real duration.
			continue
		}
		if got := bucketIndex(up); got != idx {
			t.Fatalf("bucketIndex(bucketUpper(%d)) = %d", idx, got)
		}
		if up+1 > 0 {
			if got := bucketIndex(up + 1); got != idx+1 {
				t.Fatalf("bucketIndex(%d) = %d, want %d", up+1, got, idx+1)
			}
		}
	}
}

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("zero-value histogram not empty")
	}
	// Quantiles of an empty histogram are the documented NoData sentinel,
	// not zero: a zero would be indistinguishable from real 0ns samples.
	if q := h.Quantile(0.5); q != NoData {
		t.Fatalf("empty Quantile(0.5) = %v, want NoData", q)
	}
	for i, q := range h.Quantiles(0, 0.5, 0.99, 1) {
		if q != NoData {
			t.Fatalf("empty Quantiles[%d] = %v, want NoData", i, q)
		}
	}
	if NoData >= 0 {
		t.Fatal("NoData must be negative so no real observation can produce it")
	}
	s := h.Summarize()
	if s.Count != 0 || s.P99 != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	// One zero-duration observation must be distinguishable from empty.
	h.Observe(0)
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("Quantile(0.5) after Observe(0) = %v, want 0", q)
	}
}

// TestQuantileConcurrentWriters hammers one histogram from many writers
// while readers take quantile snapshots, under -race. Every snapshot must
// be internally consistent: either the NoData sentinel (nothing observed
// yet) or a value within the observed range.
func TestQuantileConcurrentWriters(t *testing.T) {
	var h Histogram
	const (
		writers = 4
		perG    = 5000
		maxVal  = int64(1 << 20)
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(rng.Int63n(maxVal)))
			}
		}(g)
	}
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			qs := h.Quantiles(0.5, 0.99)
			for i, q := range qs {
				if q == NoData {
					continue
				}
				// Quantile upper bounds never exceed one bucket above the
				// largest possible observation.
				if q < 0 || int64(q) > maxVal*2 {
					t.Errorf("mid-flight Quantiles[%d] = %v out of range", i, q)
					return
				}
			}
			if qs[0] != NoData && qs[1] != NoData && qs[0] > qs[1] {
				t.Errorf("p50 %v > p99 %v in one snapshot", qs[0], qs[1])
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	rwg.Wait()
	if got := h.Count(); got != writers*perG {
		t.Fatalf("count = %d, want %d", got, writers*perG)
	}
	if q := h.Quantile(1.0); q == NoData || q < 0 {
		t.Fatalf("final p100 = %v", q)
	}
}

// TestQuantileAccuracy compares against exact order statistics on a
// random workload: every reported quantile must be >= the true one and
// within the bucket scheme's 12.5% relative error (plus one unit).
func TestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var h Histogram
	n := 20000
	vals := make([]int64, n)
	for i := range vals {
		// Log-uniform spread from ~100ns to ~100ms.
		v := int64(100 * (1 << uint(rng.Intn(20))))
		v += rng.Int63n(v)
		vals[i] = v
		h.Observe(time.Duration(v))
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		rank := int(q*float64(n) + 0.5)
		exact := vals[rank-1]
		got := int64(h.Quantile(q))
		if got < exact {
			t.Errorf("q=%v: got %d below exact %d", q, got, exact)
		}
		if limit := exact + exact/subCount + 1; got > limit {
			t.Errorf("q=%v: got %d above error bound %d (exact %d)", q, got, limit, exact)
		}
	}
	if h.Count() != int64(n) {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != time.Duration(vals[n-1]) {
		t.Fatalf("max = %v, want %v", h.Max(), time.Duration(vals[n-1]))
	}
}

// TestQuantilesSinglePass checks the multi-quantile path agrees with the
// one-shot path and respects ascending order.
func TestQuantilesSinglePass(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	qs := h.Quantiles(0.5, 0.95, 0.99)
	if !(qs[0] <= qs[1] && qs[1] <= qs[2]) {
		t.Fatalf("quantiles not ascending: %v", qs)
	}
	for i, q := range []float64{0.5, 0.95, 0.99} {
		if single := h.Quantile(q); single != qs[i] {
			t.Errorf("Quantile(%v) = %v, Quantiles gave %v", q, single, qs[i])
		}
	}
}

func TestMeanSumReset(t *testing.T) {
	var h Histogram
	h.Observe(10 * time.Millisecond)
	h.Observe(30 * time.Millisecond)
	if h.Sum() != 40*time.Millisecond || h.Mean() != 20*time.Millisecond {
		t.Fatalf("sum %v mean %v", h.Sum(), h.Mean())
	}
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestNegativeDurationCountsAsZero(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	if h.Count() != 1 || h.Max() != 0 || h.Sum() != 0 {
		t.Fatalf("negative observation mishandled: count %d max %v", h.Count(), h.Max())
	}
}

// TestConcurrentObserve hammers one histogram from many goroutines; run
// under -race by check.sh. Totals must be exact — observation is atomic.
func TestConcurrentObserve(t *testing.T) {
	var h Histogram
	const workers = 8
	const per = 5000
	var wg sync.WaitGroup
	wg.Add(workers)
	for g := 0; g < workers; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g*per+i) * time.Nanosecond)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	if h.Max() != time.Duration(workers*per-1) {
		t.Fatalf("max = %v", h.Max())
	}
	if h.Quantile(1.0) > h.Max() {
		t.Fatalf("p100 %v above max %v", h.Quantile(1.0), h.Max())
	}
}

func TestSummarize(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.Summarize()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	// All observations identical: every quantile lands in the same bucket.
	if s.P50 != s.P99 {
		t.Fatalf("p50 %d != p99 %d for constant input", s.P50, s.P99)
	}
	if s.Max != uint64(time.Millisecond) {
		t.Fatalf("max = %d", s.Max)
	}
}
