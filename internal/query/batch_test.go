package query

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"strtree/internal/geom"
	"strtree/internal/node"
)

// bruteSearch returns a SearchFunc scanning items linearly — the oracle the
// executor is checked against. It is trivially safe for concurrent use.
func bruteSearch(items []node.Entry) SearchFunc {
	return func(q geom.Rect, emit func(node.Entry) bool) error {
		for _, it := range items {
			if q.Intersects(it.Rect) {
				if !emit(it) {
					return nil
				}
			}
		}
		return nil
	}
}

// grid returns n*n unit-cell entries tiling [0,n)x[0,n).
func grid(n int) []node.Entry {
	out := make([]node.Entry, 0, n*n)
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			out = append(out, node.Entry{
				Rect: geom.R2(float64(x), float64(y), float64(x)+1, float64(y)+1),
				Ref:  uint64(x*n + y),
			})
		}
	}
	return out
}

func TestBatchRunMatchesSequentialOracle(t *testing.T) {
	items := grid(16)
	qs := Regions(64, 0.3, 7)
	// Scale paper-space queries up to the grid's extent.
	for i := range qs {
		r, err := geom.NewRect(
			geom.Pt2(qs[i].Min[0]*16, qs[i].Min[1]*16),
			geom.Pt2(qs[i].Max[0]*16, qs[i].Max[1]*16),
		)
		if err != nil {
			t.Fatal(err)
		}
		qs[i] = r
	}
	want := make([][]node.Entry, len(qs))
	oracle := bruteSearch(items)
	for i, q := range qs {
		if err := oracle(q, func(e node.Entry) bool {
			want[i] = append(want[i], e)
			return true
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{0, 1, 3, 8} {
		ex := BatchExecutor{Search: bruteSearch(items), Workers: workers}
		got, err := ex.Run(qs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d result sets, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("workers=%d query %d: %d matches, want %d", workers, i, len(got[i]), len(want[i]))
			}
			for j := range want[i] {
				if got[i][j].Ref != want[i][j].Ref || !got[i][j].Rect.Equal(want[i][j].Rect) {
					t.Fatalf("workers=%d query %d entry %d: got %v, want %v", workers, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

func TestBatchRunCount(t *testing.T) {
	items := grid(8)
	qs := []geom.Rect{
		geom.R2(0, 0, 8, 8),     // everything
		geom.R2(0.5, 0.5, 1, 1), // one cell's interior plus 3 neighbors' edges
		geom.R2(-5, -5, -1, -1), // nothing
	}
	ex := BatchExecutor{Search: bruteSearch(items), Workers: 4}
	got, err := ex.RunCount(qs)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{64, 4, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("counts = %v, want %v", got, want)
		}
	}
}

func TestBatchEmpty(t *testing.T) {
	ex := BatchExecutor{Search: bruteSearch(nil), Workers: 4}
	res, err := ex.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("results = %v", res)
	}
}

// TestBatchErrorPropagates proves a worker's page-read error reaches the
// caller instead of being dropped, for every pool size, and that it is the
// search error itself.
func TestBatchErrorPropagates(t *testing.T) {
	sentinel := errors.New("page read failed")
	qs := Points(100, 11)
	for _, workers := range []int{1, 2, 8} {
		var calls atomic.Int64
		ex := BatchExecutor{
			Workers: workers,
			Search: func(q geom.Rect, emit func(node.Entry) bool) error {
				if calls.Add(1) == 37 {
					return sentinel
				}
				return nil
			},
		}
		if _, err := ex.Run(qs); !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: Run err = %v, want sentinel", workers, err)
		}
		calls.Store(0)
		if _, err := ex.RunCount(qs); !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: RunCount err = %v, want sentinel", workers, err)
		}
	}
}

// TestBatchErrorCarriesQueryIndex pins the first-error-wins wrapping: the
// returned error names the failing query's index ("query %d: ...") so
// server logs can identify the offending request, on both the sequential
// fast path and the worker-pool path.
func TestBatchErrorCarriesQueryIndex(t *testing.T) {
	sentinel := errors.New("page read failed")
	qs := Points(10, 19)
	for _, workers := range []int{1, 4} {
		ex := BatchExecutor{
			Workers: workers,
			Search: func(q geom.Rect, emit func(node.Entry) bool) error {
				if q.Equal(qs[7]) {
					return sentinel
				}
				return nil
			},
		}
		_, err := ex.Run(qs)
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v, want wrapped sentinel", workers, err)
		}
		if !strings.Contains(err.Error(), "query 7:") {
			t.Fatalf("workers=%d: err %q does not name query 7", workers, err)
		}
	}
}

// TestBatchObserve checks the latency hook fires exactly once per query
// with its index, on both execution paths.
func TestBatchObserve(t *testing.T) {
	items := grid(4)
	qs := Regions(50, 0.3, 23)
	for _, workers := range []int{1, 4} {
		var seen [50]atomic.Int64
		var total atomic.Int64
		ex := BatchExecutor{
			Workers: workers,
			Search:  bruteSearch(items),
			Observe: func(i int, d time.Duration) {
				seen[i].Add(1)
				total.Add(1)
				if d < 0 {
					t.Errorf("negative latency for query %d", i)
				}
			},
		}
		if _, err := ex.RunCount(qs); err != nil {
			t.Fatal(err)
		}
		if total.Load() != int64(len(qs)) {
			t.Fatalf("workers=%d: %d observations for %d queries", workers, total.Load(), len(qs))
		}
		for i := range seen {
			if seen[i].Load() != 1 {
				t.Fatalf("workers=%d: query %d observed %d times", workers, i, seen[i].Load())
			}
		}
	}
}

// TestBatchErrorStopsBatch checks the pool abandons remaining queries
// after a failure rather than grinding through the whole batch.
func TestBatchErrorStopsBatch(t *testing.T) {
	const total = 10000
	var calls atomic.Int64
	ex := BatchExecutor{
		Workers: 4,
		Search: func(q geom.Rect, emit func(node.Entry) bool) error {
			if calls.Add(1) == 5 {
				return fmt.Errorf("boom")
			}
			return nil
		},
	}
	if _, err := ex.RunCount(Points(total, 13)); err == nil {
		t.Fatal("error lost")
	}
	if n := calls.Load(); n >= total {
		t.Fatalf("batch ran to completion (%d calls) despite early error", n)
	}
}

// TestBatchConcurrentStress drives many workers over a shared counter so
// the race detector can see the claim/write protocol.
func TestBatchConcurrentStress(t *testing.T) {
	items := grid(8)
	qs := Regions(500, 0.3, 17)
	var inFlight, peak atomic.Int64
	base := bruteSearch(items)
	ex := BatchExecutor{
		Workers: 8,
		Search: func(q geom.Rect, emit func(node.Entry) bool) error {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			defer inFlight.Add(-1)
			return base(q, emit)
		},
	}
	counts, err := ex.RunCount(qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != len(qs) {
		t.Fatalf("%d counts for %d queries", len(counts), len(qs))
	}
	if peak.Load() > 8 {
		t.Fatalf("worker pool exceeded its size: peak %d", peak.Load())
	}
}
