// Package query generates the query workloads of the paper's methodology
// (Section 3): 2,000 point queries uniformly distributed in the unit
// square, and region queries whose lower-left corner is uniform in the
// unit square with the upper-right corner at (+e, +e) clamped to 1.0 —
// e = 0.1 for 1%-area queries and e = 0.3 for 9%-area queries. The CFD
// experiments use the same shapes restricted to a sub-box (Section 4.4).
package query

import (
	"math/rand"

	"strtree/internal/geom"
)

// PaperCount is the number of queries per experiment in the paper.
const PaperCount = 2000

// Paper extents: a region query of extent e covers e*e of the unit square.
const (
	// Extent1Pct gives region queries covering 1% of the data space.
	Extent1Pct = 0.1
	// Extent9Pct gives region queries covering 9% of the data space.
	Extent9Pct = 0.3
)

// Points returns n point queries uniformly distributed in the unit square,
// as degenerate rectangles.
func Points(n int, seed int64) []geom.Rect {
	return PointsIn(n, geom.UnitSquare(), seed)
}

// PointsIn returns n point queries uniformly distributed in box.
func PointsIn(n int, box geom.Rect, seed int64) []geom.Rect {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Rect, n)
	for i := range out {
		p := geom.Pt2(
			box.Min[0]+rng.Float64()*box.Side(0),
			box.Min[1]+rng.Float64()*box.Side(1),
		)
		out[i] = geom.PointRect(p)
	}
	return out
}

// Regions returns n region queries of the given extent: the lower-left
// corner uniform in the unit square, the upper-right corner extent higher
// in both axes, clamped at 1.0 ("If the x- or y-coordinate is larger than
// 1.0 we set the coordinate to 1.0").
func Regions(n int, extent float64, seed int64) []geom.Rect {
	return RegionsIn(n, geom.UnitSquare(), extent, seed)
}

// RegionsIn returns n region queries restricted to box: the lower-left
// corner uniform in box, the upper-right corner extent away, truncated at
// box's upper bounds — the construction the paper uses for the CFD data
// ("truncating at 0.6 if needed").
func RegionsIn(n int, box geom.Rect, extent float64, seed int64) []geom.Rect {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Rect, n)
	for i := range out {
		x := box.Min[0] + rng.Float64()*box.Side(0)
		y := box.Min[1] + rng.Float64()*box.Side(1)
		hi := box.Clamp(geom.Pt2(x+extent, y+extent))
		r, err := geom.NewRect(geom.Pt2(x, y), hi)
		if err != nil {
			// Unreachable for a valid box; keep the workload total stable.
			r = geom.PointRect(geom.Pt2(x, y))
		}
		out[i] = r
	}
	return out
}
