// Batch execution: a worker pool that fans a slice of window/point queries
// across goroutines sharing one tree and one (ideally sharded) buffer.
// This is the read-path counterpart of the parallel STR sort (pack.Workers):
// queries, like the paper's packing partitions, are independent units of
// work, so throughput scales with cores once the buffer stops serializing
// them — the same "parallelize the independent partitions" idea the
// MapReduce k-d-tree construction literature applies to spatial trees.
package query

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"strtree/internal/geom"
	"strtree/internal/node"
)

// SearchFunc runs one window query, streaming every matching entry to
// emit; returning false from emit stops that query early. It must be safe
// for concurrent use — a paged R-tree's Search through a pinned buffer is
// (see rtree.Tree.Search).
type SearchFunc func(q geom.Rect, emit func(e node.Entry) bool) error

// BatchExecutor fans batches of queries across a fixed worker pool. The
// zero value is not usable: Search must be set. One executor may run many
// batches; it keeps no per-batch state.
type BatchExecutor struct {
	// Search executes a single query. Typically a closure over
	// rtree.Tree.Search with the tree behind a sharded buffer.
	Search SearchFunc
	// Workers is the number of concurrent query goroutines; values < 1
	// mean GOMAXPROCS. One worker executes the batch strictly
	// sequentially, preserving deterministic buffer accounting.
	Workers int
	// Observe, when non-nil, receives each query's index and wall-clock
	// latency as it completes. With more than one worker it is called
	// concurrently and must be safe for concurrent use. Latency-histogram
	// consumers (strbench -concurrency, the serving layer's selftest)
	// hang their percentile accounting here.
	Observe func(i int, d time.Duration)
	// Metrics, when non-nil, receives the executor's activity counters
	// and gauges. One ExecMetrics may be shared by many executors (a
	// served tree creates one executor per batch request); all updates
	// are atomic.
	Metrics *ExecMetrics
}

// ExecMetrics aggregates batch-executor activity across batches for the
// observability layer: how deep the work queue currently is, how many
// workers are executing, and cumulative batch/query throughput. All
// fields are atomics — read them with Load or snapshot with Stats. The
// zero value is ready to use.
type ExecMetrics struct {
	// BatchesStarted and BatchesDone count Run/RunCount calls.
	BatchesStarted atomic.Uint64
	BatchesDone    atomic.Uint64
	// QueriesDone counts individually completed queries (failed ones
	// included — they consumed a worker).
	QueriesDone atomic.Uint64
	// QueuedQueries is a gauge: queries admitted to some batch but not yet
	// claimed by a worker.
	QueuedQueries atomic.Int64
	// ActiveWorkers is a gauge: worker goroutines (or the sequential fast
	// path) currently executing a query.
	ActiveWorkers atomic.Int64
}

// ExecStats is a point-in-time snapshot of ExecMetrics.
type ExecStats struct {
	BatchesStarted, BatchesDone, QueriesDone uint64
	QueuedQueries, ActiveWorkers             int64
}

// Stats snapshots the metrics. The fields are read independently, so the
// snapshot is coherent only to within in-flight updates — fine for
// monitoring, not for invariant checks.
func (m *ExecMetrics) Stats() ExecStats {
	return ExecStats{
		BatchesStarted: m.BatchesStarted.Load(),
		BatchesDone:    m.BatchesDone.Load(),
		QueriesDone:    m.QueriesDone.Load(),
		QueuedQueries:  m.QueuedQueries.Load(),
		ActiveWorkers:  m.ActiveWorkers.Load(),
	}
}

// workers resolves the pool size for one batch.
func (e *BatchExecutor) workers(n int) int {
	w := e.Workers
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes every query and collects its matches, returned in input
// order (results[i] holds query qs[i]'s matches; a query with no matches
// gets a nil slice). Workers claim queries from a shared counter, so a
// slow query does not idle the rest of the pool. The first error stops the
// batch: remaining queries are abandoned, and the error — a page read
// failure, typically — is propagated, never dropped, wrapped as
// "query %d: ..." so logs can identify the offending request.
func (e *BatchExecutor) Run(qs []geom.Rect) ([][]node.Entry, error) {
	results := make([][]node.Entry, len(qs))
	err := e.run(qs, func(i int, q geom.Rect) error {
		var out []node.Entry
		if err := e.Search(q, func(ent node.Entry) bool {
			ent.Rect = ent.Rect.Clone()
			out = append(out, ent)
			return true
		}); err != nil {
			return err
		}
		results[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// RunCount executes every query and returns per-query match counts in
// input order, without materializing result sets — the shape the paper's
// access-count experiments use.
func (e *BatchExecutor) RunCount(qs []geom.Rect) ([]int, error) {
	counts := make([]int, len(qs))
	err := e.run(qs, func(i int, q geom.Rect) error {
		n := 0
		if err := e.Search(q, func(node.Entry) bool { n++; return true }); err != nil {
			return err
		}
		counts[i] = n
		return nil
	})
	if err != nil {
		return nil, err
	}
	return counts, nil
}

// run drives the worker pool: an atomic cursor hands out query indices,
// each worker writes only its own claimed slots, and the first error wins
// and stops everyone. Distinct workers never touch the same index, so the
// per-slot writes need no lock. Errors are wrapped with the failing
// query's index ("query %d: ...") — errors.Is/As still reach the cause.
func (e *BatchExecutor) run(qs []geom.Rect, do func(i int, q geom.Rect) error) error {
	n := len(qs)
	if n == 0 {
		return nil
	}
	if e.Observe != nil {
		inner := do
		do = func(i int, q geom.Rect) error {
			start := time.Now()
			err := inner(i, q)
			e.Observe(i, time.Since(start))
			return err
		}
	}
	claimed := 0 // queries handed to a worker, for the queue-gauge drain
	if m := e.Metrics; m != nil {
		m.BatchesStarted.Add(1)
		m.QueuedQueries.Add(int64(n))
		defer func() {
			// An aborted batch abandons its unclaimed queries; they must
			// leave the queue gauge with it or the gauge leaks upward.
			m.QueuedQueries.Add(int64(claimed - n))
			m.BatchesDone.Add(1)
		}()
		inner := do
		do = func(i int, q geom.Rect) error {
			m.QueuedQueries.Add(-1)
			m.ActiveWorkers.Add(1)
			err := inner(i, q)
			m.ActiveWorkers.Add(-1)
			m.QueriesDone.Add(1)
			return err
		}
	}
	w := e.workers(n)
	if w == 1 {
		// Sequential fast path: no goroutines, deterministic fetch order.
		for i, q := range qs {
			claimed = i + 1
			if err := do(i, q); err != nil {
				return fmt.Errorf("query %d: %w", i, err)
			}
		}
		return nil
	}
	var (
		cursor   atomic.Int64
		stop     atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		stop.Store(true)
	}
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				if err := do(i, qs[i]); err != nil {
					fail(fmt.Errorf("query %d: %w", i, err))
					return
				}
			}
		}()
	}
	wg.Wait()
	if c := int(cursor.Load()); c < n {
		claimed = c
	} else {
		claimed = n
	}
	return firstErr
}
