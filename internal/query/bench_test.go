package query

import (
	"fmt"
	"testing"
)

// BenchmarkBatchRunCount measures the executor's per-batch overhead and
// allocation profile over a constant-work search function, at the worker
// counts the serving layer uses. RunCount is the alloc-sensitive variant:
// it returns one int per query, so everything else it allocates is
// executor overhead.
func BenchmarkBatchRunCount(b *testing.B) {
	items := grid(32)
	qs := Regions(256, 0.1, 3)
	for i := range qs {
		r := qs[i]
		for d := range r.Min {
			r.Min[d] *= 32
			r.Max[d] *= 32
		}
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			ex := BatchExecutor{Search: bruteSearch(items), Workers: workers}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ex.RunCount(qs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
