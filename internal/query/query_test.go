package query

import (
	"math"
	"testing"

	"strtree/internal/geom"
)

func TestPoints(t *testing.T) {
	qs := Points(500, 1)
	if len(qs) != 500 {
		t.Fatalf("len = %d", len(qs))
	}
	u := geom.UnitSquare()
	for i, q := range qs {
		if q.Area() != 0 {
			t.Fatalf("query %d not a point", i)
		}
		if !u.Contains(q) {
			t.Fatalf("query %d outside unit square: %v", i, q)
		}
	}
}

func TestPointsDeterministic(t *testing.T) {
	a, b := Points(100, 7), Points(100, 7)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("same seed, different queries")
		}
	}
	c := Points(100, 8)
	same := true
	for i := range a {
		if !a[i].Equal(c[i]) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds, same queries")
	}
}

func TestRegionsExtentAndClamp(t *testing.T) {
	qs := Regions(2000, Extent1Pct, 2)
	u := geom.UnitSquare()
	clamped := 0
	for i, q := range qs {
		if !u.Contains(q) {
			t.Fatalf("query %d outside unit square: %v", i, q)
		}
		w, h := q.Side(0), q.Side(1)
		if w > Extent1Pct+1e-12 || h > Extent1Pct+1e-12 {
			t.Fatalf("query %d larger than extent: %g x %g", i, w, h)
		}
		if w < Extent1Pct-1e-12 || h < Extent1Pct-1e-12 {
			clamped++
			// Clamped queries must touch the upper boundary.
			if q.Max[0] != 1 && q.Max[1] != 1 {
				t.Fatalf("query %d short of extent without touching boundary: %v", i, q)
			}
		}
	}
	// With extent 0.1, about 19% of queries hit the boundary.
	frac := float64(clamped) / float64(len(qs))
	if frac < 0.10 || frac > 0.30 {
		t.Fatalf("clamped fraction %.3f, expected around 0.19", frac)
	}
}

func TestRegionsMeanArea(t *testing.T) {
	// Unclamped 9% queries cover 0.09 exactly; clamping reduces the mean
	// somewhat. Sanity-check the ballpark.
	qs := Regions(5000, Extent9Pct, 3)
	sum := 0.0
	for _, q := range qs {
		sum += q.Area()
	}
	mean := sum / float64(len(qs))
	if mean < 0.05 || mean > 0.09+1e-9 {
		t.Fatalf("mean area %.4f out of expected range", mean)
	}
}

func TestRegionsInRestrictedBox(t *testing.T) {
	box := geom.R2(0.48, 0.48, 0.6, 0.6)
	qs := RegionsIn(1000, box, 0.03, 4)
	for i, q := range qs {
		if !box.Contains(q) {
			t.Fatalf("query %d escapes the box: %v", i, q)
		}
	}
	ps := PointsIn(1000, box, 5)
	for i, p := range ps {
		if !box.Contains(p) {
			t.Fatalf("point query %d escapes the box: %v", i, p)
		}
	}
}

func TestPaperConstants(t *testing.T) {
	if PaperCount != 2000 {
		t.Fatal("paper runs 2000 queries per experiment")
	}
	if math.Abs(Extent1Pct*Extent1Pct-0.01) > 1e-12 {
		t.Fatal("1% extent wrong")
	}
	if math.Abs(Extent9Pct*Extent9Pct-0.09) > 1e-12 {
		t.Fatal("9% extent wrong")
	}
}
