// Package trace records page-access sequences and replays them against
// simulated buffer replacement policies, so one measured workload yields
// the whole miss-ratio curve. Besides LRU (the paper's policy) and Clock,
// the package implements Belady's optimal offline policy (OPT), the lower
// bound no online policy can beat — which places the paper's LRU numbers
// in context.
package trace

import (
	"bufio"
	"container/heap"
	"encoding/binary"
	"fmt"
	"io"

	"strtree/internal/storage"
)

// Trace is a sequence of page accesses in order.
type Trace []storage.PageID

// Recorder collects a trace from a buffer pool; attach its Observe method
// with pool.SetTracer(rec.Observe).
type Recorder struct {
	t Trace
}

// Observe appends one access. The hit flag is ignored: hits and misses
// are a property of the policy being simulated, not of the trace.
func (r *Recorder) Observe(id storage.PageID, hit bool) {
	r.t = append(r.t, id)
}

// Trace returns the accesses recorded so far.
func (r *Recorder) Trace() Trace { return r.t }

// Reset clears the recorder.
func (r *Recorder) Reset() { r.t = r.t[:0] }

// traceMagic identifies a serialized trace stream.
const traceMagic uint32 = 0x53545254 // "TRTS"

// Save writes the trace in a compact binary form.
func (t Trace) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], traceMagic)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(len(t)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [4]byte
	for _, id := range t {
		binary.LittleEndian.PutUint32(buf[:], uint32(id))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a trace written by Save.
func Load(r io.Reader) (Trace, error) {
	br := bufio.NewReader(r)
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic")
	}
	n := binary.LittleEndian.Uint64(hdr[4:])
	const maxReasonable = 1 << 32
	if n > maxReasonable {
		return nil, fmt.Errorf("trace: implausible length %d", n)
	}
	t := make(Trace, n)
	var buf [4]byte
	for i := range t {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("trace: truncated at access %d: %w", i, err)
		}
		t[i] = storage.PageID(binary.LittleEndian.Uint32(buf[:]))
	}
	return t, nil
}

// SimulateLRU returns the miss count of an LRU buffer of the given
// capacity over the trace.
func (t Trace) SimulateLRU(capacity int) int {
	if capacity < 1 {
		return len(t)
	}
	// Simple intrusive list + map, mirroring the real pool.
	pos := make(map[storage.PageID]*cellNode, capacity)
	var head, tail *cellNode
	remove := func(c *cellNode) {
		if c.prev != nil {
			c.prev.next = c.next
		} else {
			head = c.next
		}
		if c.next != nil {
			c.next.prev = c.prev
		} else {
			tail = c.prev
		}
		c.prev, c.next = nil, nil
	}
	pushFront := func(c *cellNode) {
		c.next = head
		if head != nil {
			head.prev = c
		}
		head = c
		if tail == nil {
			tail = c
		}
	}
	misses := 0
	for _, id := range t {
		if c, ok := pos[id]; ok {
			remove(c)
			pushFront(c)
			continue
		}
		misses++
		if len(pos) == capacity {
			victim := tail
			remove(victim)
			delete(pos, victim.id)
		}
		c := &cellNode{id: id}
		pos[id] = c
		pushFront(c)
	}
	return misses
}

type cellNode struct {
	id         storage.PageID
	prev, next *cellNode
}

// SimulateClock returns the miss count of a Clock (second chance) buffer
// of the given capacity over the trace.
func (t Trace) SimulateClock(capacity int) int {
	if capacity < 1 {
		return len(t)
	}
	type frame struct {
		id  storage.PageID
		ref bool
	}
	frames := make([]frame, 0, capacity)
	pos := make(map[storage.PageID]int, capacity)
	hand := 0
	misses := 0
	for _, id := range t {
		if i, ok := pos[id]; ok {
			frames[i].ref = true
			continue
		}
		misses++
		if len(frames) < capacity {
			pos[id] = len(frames)
			frames = append(frames, frame{id: id, ref: true})
			continue
		}
		for {
			if frames[hand].ref {
				frames[hand].ref = false
				hand = (hand + 1) % capacity
				continue
			}
			delete(pos, frames[hand].id)
			frames[hand] = frame{id: id, ref: true}
			pos[id] = hand
			hand = (hand + 1) % capacity
			break
		}
	}
	return misses
}

// SimulateOPT returns the miss count of Belady's optimal offline policy:
// on eviction, discard the resident page whose next use is farthest in
// the future (or never). No online policy can miss less on this trace.
func (t Trace) SimulateOPT(capacity int) int {
	if capacity < 1 {
		return len(t)
	}
	// Precompute, for each access, the index of the next access to the
	// same page (len(t) = never).
	next := make([]int, len(t))
	last := make(map[storage.PageID]int)
	for i := len(t) - 1; i >= 0; i-- {
		if j, ok := last[t[i]]; ok {
			next[i] = j
		} else {
			next[i] = len(t)
		}
		last[t[i]] = i
	}
	// Resident set with a max-heap on next-use; entries may be stale, so
	// validate against nextUse on pop (lazy deletion).
	nextUse := make(map[storage.PageID]int, capacity)
	h := &optHeap{}
	misses := 0
	for i, id := range t {
		if _, ok := nextUse[id]; ok {
			nextUse[id] = next[i]
			heap.Push(h, optItem{id: id, next: next[i]})
			continue
		}
		misses++
		if len(nextUse) == capacity {
			for {
				top := heap.Pop(h).(optItem)
				if cur, ok := nextUse[top.id]; ok && cur == top.next {
					delete(nextUse, top.id)
					break
				}
				// Stale entry; keep popping.
			}
		}
		nextUse[id] = next[i]
		heap.Push(h, optItem{id: id, next: next[i]})
	}
	return misses
}

type optItem struct {
	id   storage.PageID
	next int
}

type optHeap []optItem

func (h optHeap) Len() int           { return len(h) }
func (h optHeap) Less(i, j int) bool { return h[i].next > h[j].next }
func (h optHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *optHeap) Push(x any)        { *h = append(*h, x.(optItem)) }
func (h *optHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// Distinct returns the number of distinct pages in the trace: the miss
// count of an infinite buffer.
func (t Trace) Distinct() int {
	seen := make(map[storage.PageID]bool)
	for _, id := range t {
		seen[id] = true
	}
	return len(seen)
}
