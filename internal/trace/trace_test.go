package trace

import (
	"bytes"
	"math/rand"
	"testing"

	"strtree/internal/buffer"
	"strtree/internal/storage"
)

// randTrace builds a skewed access sequence over the given page universe.
func randTrace(n, pages int, seed int64) Trace {
	rng := rand.New(rand.NewSource(seed))
	t := make(Trace, n)
	for i := range t {
		if rng.Intn(2) == 0 {
			t[i] = storage.PageID(rng.Intn(pages / 4)) // hot set
		} else {
			t[i] = storage.PageID(rng.Intn(pages))
		}
	}
	return t
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tr := randTrace(1000, 50, 1)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tr) {
		t.Fatalf("loaded %d of %d", len(got), len(tr))
	}
	for i := range tr {
		if got[i] != tr[i] {
			t.Fatalf("access %d differs", i)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := Load(bytes.NewReader(make([]byte, 12))); err == nil {
		t.Error("bad magic accepted")
	}
	var buf bytes.Buffer
	if err := (Trace{1, 2, 3}).Save(&buf); err != nil {
		t.Fatal(err)
	}
	short := buf.Bytes()[:buf.Len()-2]
	if _, err := Load(bytes.NewReader(short)); err == nil {
		t.Error("truncated stream accepted")
	}
}

// TestSimulateLRUMatchesRealPool is the load-bearing cross-check: the
// simulator and the actual buffer pool must report identical miss counts
// for the same trace and capacity.
func TestSimulateLRUMatchesRealPool(t *testing.T) {
	const pages = 60
	tr := randTrace(5000, pages, 2)
	for _, capacity := range []int{1, 3, 8, 20, 60} {
		pg := storage.NewMemPager(64)
		for i := 0; i < pages; i++ {
			if _, err := pg.Alloc(); err != nil {
				t.Fatal(err)
			}
		}
		pool := buffer.NewPool(pg, capacity)
		for _, id := range tr {
			f, err := pool.Fetch(id)
			if err != nil {
				t.Fatal(err)
			}
			pool.Release(f)
		}
		real := int(pool.Stats().DiskReads)
		sim := tr.SimulateLRU(capacity)
		if real != sim {
			t.Fatalf("capacity %d: pool %d misses, simulator %d", capacity, real, sim)
		}
	}
}

// TestSimulateClockMatchesRealPool does the same for the Clock policy.
func TestSimulateClockMatchesRealPool(t *testing.T) {
	const pages = 60
	tr := randTrace(5000, pages, 3)
	for _, capacity := range []int{1, 3, 8, 20} {
		pg := storage.NewMemPager(64)
		for i := 0; i < pages; i++ {
			if _, err := pg.Alloc(); err != nil {
				t.Fatal(err)
			}
		}
		pool := buffer.NewPoolWithPolicy(pg, capacity, buffer.Clock)
		for _, id := range tr {
			f, err := pool.Fetch(id)
			if err != nil {
				t.Fatal(err)
			}
			pool.Release(f)
		}
		real := int(pool.Stats().DiskReads)
		sim := tr.SimulateClock(capacity)
		if real != sim {
			t.Fatalf("capacity %d: pool %d misses, simulator %d", capacity, real, sim)
		}
	}
}

func TestOPTIsOptimalOrdering(t *testing.T) {
	tr := randTrace(4000, 40, 4)
	for _, capacity := range []int{2, 5, 10, 20} {
		opt := tr.SimulateOPT(capacity)
		lru := tr.SimulateLRU(capacity)
		clock := tr.SimulateClock(capacity)
		if opt > lru || opt > clock {
			t.Fatalf("capacity %d: OPT %d exceeds LRU %d or Clock %d", capacity, opt, lru, clock)
		}
		// Compulsory misses are a floor for every policy.
		if d := tr.Distinct(); opt < d {
			t.Fatalf("capacity %d: OPT %d below compulsory %d", capacity, opt, d)
		}
	}
}

func TestOPTHandCheck(t *testing.T) {
	// Classic example: trace a b c a b c with capacity 2.
	// OPT: miss a, miss b, miss c (evict b, since a is next), hit a,
	// miss b (evict a or c; both next-never after their use... b's eviction
	// chain), hit/miss c. Hand-verified optimal is 5 misses? Work it out:
	// accesses: a b c a b c, cap 2.
	// a: miss {a}
	// b: miss {a b}
	// c: miss; next use: a at 3, b at 4 -> evict b (farther) {a c}
	// a: hit {a c}
	// b: miss; next: a never(after 3? a has no later use), c at 5 -> evict a {b c}...
	// a's next use after position 4 is none (last a was at 3); c's next is 5.
	// farthest-future = a (never) -> evict a -> {c b}
	// c: hit.
	// total 4 misses.
	tr := Trace{1, 2, 3, 1, 2, 3}
	if got := tr.SimulateOPT(2); got != 4 {
		t.Fatalf("OPT misses = %d, want 4", got)
	}
	// LRU thrashes: every access misses.
	if got := tr.SimulateLRU(2); got != 6 {
		t.Fatalf("LRU misses = %d, want 6", got)
	}
}

func TestSimulatorsDegenerateCapacity(t *testing.T) {
	tr := randTrace(100, 10, 5)
	if tr.SimulateLRU(0) != len(tr) || tr.SimulateClock(0) != len(tr) || tr.SimulateOPT(0) != len(tr) {
		t.Fatal("capacity 0 should miss on every access")
	}
	// Infinite-like capacity: only compulsory misses.
	d := tr.Distinct()
	if tr.SimulateLRU(1000) != d || tr.SimulateClock(1000) != d || tr.SimulateOPT(1000) != d {
		t.Fatal("oversized buffer should miss only on first access")
	}
}

func TestRecorder(t *testing.T) {
	var rec Recorder
	pg := storage.NewMemPager(64)
	for i := 0; i < 8; i++ {
		if _, err := pg.Alloc(); err != nil {
			t.Fatal(err)
		}
	}
	pool := buffer.NewPool(pg, 4)
	pool.SetTracer(rec.Observe)
	seq := []storage.PageID{0, 1, 2, 1, 0, 5}
	for _, id := range seq {
		f, err := pool.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		pool.Release(f)
	}
	got := rec.Trace()
	if len(got) != len(seq) {
		t.Fatalf("recorded %d accesses", len(got))
	}
	for i := range seq {
		if got[i] != seq[i] {
			t.Fatalf("access %d: %d, want %d", i, got[i], seq[i])
		}
	}
	rec.Reset()
	if len(rec.Trace()) != 0 {
		t.Fatal("reset did not clear")
	}
	// Detach: no more recording.
	pool.SetTracer(nil)
	f, err := pool.Fetch(0)
	if err != nil {
		t.Fatal(err)
	}
	pool.Release(f)
	if len(rec.Trace()) != 0 {
		t.Fatal("tracer not detached")
	}
}

func BenchmarkSimulateOPT(b *testing.B) {
	tr := randTrace(100000, 500, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.SimulateOPT(50)
	}
}
