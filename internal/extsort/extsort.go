// Package extsort provides external-memory sorting of R-tree entries, so
// STR packing scales past main memory — the regime the paper targets
// ("data sets likely to be used by near term future applications" exceed
// the buffer, and packing is preprocessing over files).
//
// The implementation is the classical two-phase external merge sort with
// the classical concurrency on top: during run generation the ingest loop
// keeps streaming while a bounded worker pool sorts and spills completed
// runs (run buffers are recycled through a free list, so ingest rarely
// waits on an allocation); during the merge each run gets a background
// prefetch reader that keeps a couple of decoded batches ahead of the
// k-way heap. Entries are serialized with the same fixed-width binary
// layout the node pages use.
//
// Determinism: run boundaries depend only on the input order and the run
// size, runs are sorted stably, and the merge heap is seeded with runs in
// spill order — every heap operation therefore sees the same state
// regardless of which goroutine spilled which run, so the emitted
// sequence is identical for every Workers setting, and identical to the
// sequential implementation this one replaced.
package extsort

import (
	"bufio"
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"slices"
	"sync"
	"sync/atomic"

	"strtree/internal/geom"
	"strtree/internal/node"
)

// Less orders entries; it must be a strict weak ordering.
type Less func(a, b *node.Entry) bool

// ByCenter returns a comparator on the center coordinate of one axis, the
// ordering every STR phase uses.
func ByCenter(axis int) Less {
	return func(a, b *node.Entry) bool {
		return a.Rect.CenterAxis(axis) < b.Rect.CenterAxis(axis)
	}
}

// prefetchBatch is how many decoded entries one merge read-ahead batch
// holds; each run keeps up to two batches in flight.
const prefetchBatch = 512

// Sorter sorts streams of entries, spilling to disk when a run exceeds
// the in-memory budget.
type Sorter struct {
	dims    int
	runSize int
	tmpDir  string

	// Workers bounds the goroutines that sort and spill completed runs
	// while ingest continues (< 1 means 1). The emitted order is
	// byte-for-byte identical for every setting; only wall time changes.
	Workers int

	// Cumulative activity counters across every Sort on this Sorter
	// (external builds reuse one Sorter for the x phase and every slab's
	// y phase). Atomics, so a monitoring goroutine may snapshot them with
	// Stats while a sort runs.
	sorts         atomic.Uint64
	entriesSorted atomic.Uint64
	runsSpilled   atomic.Uint64
	merges        atomic.Uint64
}

// Stats is a snapshot of a Sorter's cumulative activity. RunsSpilled is
// the number of sorted runs written to temp files; a sort whose input fit
// in one in-memory run spills nothing and performs no merge, so
// RunsSpilled == 0 with Sorts > 0 means the external machinery was never
// needed.
type Stats struct {
	// Sorts counts completed Sort/SortSlice calls.
	Sorts uint64
	// EntriesSorted is the total entries ingested across all sorts.
	EntriesSorted uint64
	// RunsSpilled is the number of sorted runs written to temp files.
	RunsSpilled uint64
	// Merges counts k-way merge phases run (one per sort that spilled).
	Merges uint64
}

// Stats snapshots the sorter's cumulative counters. Fields are read
// independently; the snapshot is coherent only to within in-flight sorts.
func (s *Sorter) Stats() Stats {
	return Stats{
		Sorts:         s.sorts.Load(),
		EntriesSorted: s.entriesSorted.Load(),
		RunsSpilled:   s.runsSpilled.Load(),
		Merges:        s.merges.Load(),
	}
}

// NewSorter creates a sorter for entries of the given dimensionality that
// keeps at most runSize entries in memory per run. Temporary run files
// are created in tmpDir ("" means the OS default).
func NewSorter(dims, runSize int, tmpDir string) (*Sorter, error) {
	if dims <= 0 {
		return nil, fmt.Errorf("extsort: invalid dims %d", dims)
	}
	if runSize < 2 {
		return nil, fmt.Errorf("extsort: run size %d too small", runSize)
	}
	return &Sorter{dims: dims, runSize: runSize, tmpDir: tmpDir}, nil
}

// entrySize is the on-disk size of one entry.
func (s *Sorter) entrySize() int { return 16*s.dims + 8 }

func (s *Sorter) workers() int {
	if s.Workers < 1 {
		return 1
	}
	return s.Workers
}

// sortRun stably sorts one run in memory; stability keeps the output
// identical to the historical sequential implementation when less admits
// ties.
func sortRun(run []node.Entry, less Less) {
	slices.SortStableFunc(run, func(a, b node.Entry) int {
		switch {
		case less(&a, &b):
			return -1
		case less(&b, &a):
			return 1
		default:
			return 0
		}
	})
}

// spillRun sorts a completed run and writes it to a fresh temp file. On
// any failure the temp file is closed and removed before returning; the
// caller only ever owns a fully written file.
func (s *Sorter) spillRun(run []node.Entry, less Less) (_ *os.File, err error) {
	sortRun(run, less)
	f, err := os.CreateTemp(s.tmpDir, "extsort-run-*")
	if err != nil {
		return nil, err
	}
	defer func() {
		if err != nil {
			err = errors.Join(err, f.Close())
			if rmErr := os.Remove(f.Name()); rmErr != nil {
				err = errors.Join(err, rmErr)
			}
		}
	}()
	w := bufio.NewWriterSize(f, 1<<16)
	buf := make([]byte, s.entrySize())
	for i := range run {
		s.encode(&run[i], buf)
		if _, werr := w.Write(buf); werr != nil {
			return nil, werr
		}
	}
	if ferr := w.Flush(); ferr != nil {
		return nil, ferr
	}
	return f, nil
}

// Sort consumes entries from next (which returns false when exhausted)
// and emits them in order to emit. Both callbacks may be called many
// times; emit's entry is only valid during the call. next and emit are
// always called from the Sort goroutine — the internal concurrency never
// touches them.
func (s *Sorter) Sort(less Less, next func() (node.Entry, bool), emit func(node.Entry) error) (err error) {
	workers := s.workers()

	var (
		mu       sync.Mutex
		files    []*os.File // indexed by run sequence number: merge order = spill order
		firstErr error
	)
	fail := func(e error) {
		if e == nil {
			return
		}
		mu.Lock()
		if firstErr == nil {
			firstErr = e
		}
		mu.Unlock()
	}
	failed := func() error {
		mu.Lock()
		defer mu.Unlock()
		return firstErr
	}
	setFile := func(seq int, f *os.File) {
		mu.Lock()
		for len(files) <= seq {
			files = append(files, nil)
		}
		files[seq] = f
		mu.Unlock()
	}
	// Every spilled temp file — including ones registered after a failure —
	// is closed and removed exactly once, with close/remove errors joined
	// into the returned error instead of dropped.
	defer func() {
		mu.Lock()
		fs := files
		files = nil
		mu.Unlock()
		for _, f := range fs {
			if f == nil {
				continue
			}
			err = errors.Join(err, f.Close())
			if rmErr := os.Remove(f.Name()); rmErr != nil {
				err = errors.Join(err, rmErr)
			}
		}
	}()

	// Phase 1: run generation. The ingest loop below keeps calling next
	// while up to `workers` goroutines sort and spill completed runs.
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	freeBufs := make(chan []node.Entry, workers+1)
	newRun := func() []node.Entry {
		select {
		case b := <-freeBufs:
			return b
		default:
			return make([]node.Entry, 0, s.runSize)
		}
	}
	spawnSpill := func(run []node.Entry, seq int) {
		wg.Add(1)
		sem <- struct{}{} // bounded pool: ingest waits only when all workers are busy
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if failed() == nil {
				f, e := s.spillRun(run, less)
				if e != nil {
					fail(e)
				} else {
					setFile(seq, f)
				}
			}
			select {
			case freeBufs <- run[:0]:
			default:
			}
		}()
	}

	total := 0
	runsSpawned := 0
	run := newRun()
	for failed() == nil {
		e, ok := next()
		if !ok {
			break
		}
		if e.Rect.Dim() != s.dims {
			fail(fmt.Errorf("extsort: entry dim %d, sorter dim %d", e.Rect.Dim(), s.dims))
			break
		}
		run = append(run, node.Entry{Rect: e.Rect.Clone(), Ref: e.Ref})
		total++
		if len(run) >= s.runSize {
			spawnSpill(run, runsSpawned)
			runsSpawned++
			run = newRun()
		}
	}

	// Everything fit in one in-memory run: no files, no merge.
	if runsSpawned == 0 {
		if e := failed(); e != nil {
			return e
		}
		sortRun(run, less)
		for i := range run {
			if err := emit(run[i]); err != nil {
				return err
			}
		}
		s.sorts.Add(1)
		s.entriesSorted.Add(uint64(total))
		return nil
	}
	if len(run) > 0 && failed() == nil {
		spawnSpill(run, runsSpawned)
		runsSpawned++
	}
	wg.Wait()
	if e := failed(); e != nil {
		return e
	}

	// Phase 2: k-way merge with per-run read-ahead. Each run file gets a
	// background reader that stays up to two decoded batches ahead of the
	// heap, so merge CPU overlaps run I/O.
	mu.Lock()
	fs := files
	mu.Unlock()
	prefetchers := make([]*prefetch, len(fs))
	var rwg sync.WaitGroup
	// Stop the readers before the file-cleanup defer above closes the
	// files out from under them (defers run last-in first-out).
	defer func() {
		for _, p := range prefetchers {
			if p != nil {
				close(p.stop)
			}
		}
		rwg.Wait()
	}()
	for i, f := range fs {
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return err
		}
		p := &prefetch{
			batches: make(chan runBatch, 2),
			stop:    make(chan struct{}),
		}
		prefetchers[i] = p
		rwg.Add(1)
		go func(f *os.File, p *prefetch) {
			defer rwg.Done()
			defer close(p.batches)
			rr := &runReader{
				r:    bufio.NewReaderSize(f, 1<<16),
				buf:  make([]byte, s.entrySize()),
				dims: s.dims,
			}
			for {
				batch := make([]node.Entry, 0, prefetchBatch)
				for len(batch) < prefetchBatch {
					e, ok, rerr := rr.next()
					if rerr != nil {
						select {
						case p.batches <- runBatch{err: rerr}:
						case <-p.stop:
						}
						return
					}
					if !ok {
						break
					}
					batch = append(batch, e)
				}
				if len(batch) == 0 {
					return
				}
				select {
				case p.batches <- runBatch{entries: batch}:
				case <-p.stop:
					return
				}
				if len(batch) < prefetchBatch {
					return // short batch: the run is exhausted
				}
			}
		}(f, p)
	}

	h := &mergeHeap{less: less}
	for i, p := range prefetchers {
		e, ok, perr := p.next()
		if perr != nil {
			return perr
		}
		if ok {
			h.items = append(h.items, mergeItem{entry: e, src: i})
		}
	}
	heap.Init(h)
	emitted := 0
	for h.Len() > 0 {
		top := h.items[0]
		if err := emit(top.entry); err != nil {
			return err
		}
		emitted++
		e, ok, perr := prefetchers[top.src].next()
		if perr != nil {
			return perr
		}
		if ok {
			h.items[0] = mergeItem{entry: e, src: top.src}
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	if emitted != total {
		return fmt.Errorf("extsort: emitted %d of %d entries", emitted, total)
	}
	s.sorts.Add(1)
	s.entriesSorted.Add(uint64(total))
	s.runsSpilled.Add(uint64(runsSpawned))
	s.merges.Add(1)
	return nil
}

// runBatch is one block of decoded entries handed from a prefetch reader
// to the merge loop; err terminates the run.
type runBatch struct {
	entries []node.Entry
	err     error
}

// prefetch is the merge loop's view of one run: a channel of read-ahead
// batches plus the batch currently being consumed.
type prefetch struct {
	batches chan runBatch
	stop    chan struct{}
	cur     []node.Entry
	pos     int
}

// next returns the run's next entry, blocking on the reader only when the
// read-ahead is empty.
func (p *prefetch) next() (node.Entry, bool, error) {
	for p.pos >= len(p.cur) {
		b, ok := <-p.batches
		if !ok {
			return node.Entry{}, false, nil
		}
		if b.err != nil {
			return node.Entry{}, false, b.err
		}
		p.cur, p.pos = b.entries, 0
	}
	e := p.cur[p.pos]
	p.pos++
	return e, true, nil
}

// SortSlice sorts entries in place using external runs; a convenience for
// callers holding a full slice that still want bounded sort memory.
func (s *Sorter) SortSlice(entries []node.Entry, less Less) error {
	i := 0
	next := func() (node.Entry, bool) {
		if i >= len(entries) {
			return node.Entry{}, false
		}
		e := entries[i]
		i++
		return e, true
	}
	j := 0
	emit := func(e node.Entry) error {
		entries[j] = node.Entry{Rect: e.Rect.Clone(), Ref: e.Ref}
		j++
		return nil
	}
	return s.Sort(less, next, emit)
}

func (s *Sorter) encode(e *node.Entry, buf []byte) {
	off := 0
	for d := 0; d < s.dims; d++ {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(e.Rect.Min[d]))
		off += 8
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(e.Rect.Max[d]))
		off += 8
	}
	binary.LittleEndian.PutUint64(buf[off:], e.Ref)
}

// runReader streams entries back from one run file.
type runReader struct {
	r    *bufio.Reader
	buf  []byte
	dims int
}

func (r *runReader) next() (node.Entry, bool, error) {
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		if err == io.EOF {
			return node.Entry{}, false, nil
		}
		return node.Entry{}, false, err
	}
	e := node.Entry{Rect: newRect(r.dims)}
	off := 0
	for d := 0; d < r.dims; d++ {
		e.Rect.Min[d] = math.Float64frombits(binary.LittleEndian.Uint64(r.buf[off:]))
		off += 8
		e.Rect.Max[d] = math.Float64frombits(binary.LittleEndian.Uint64(r.buf[off:]))
		off += 8
	}
	e.Ref = binary.LittleEndian.Uint64(r.buf[off:])
	return e, true, nil
}

func newRect(dims int) geom.Rect {
	return geom.Rect{Min: make(geom.Point, dims), Max: make(geom.Point, dims)}
}

// mergeItem is one head-of-run entry in the merge heap.
type mergeItem struct {
	entry node.Entry
	src   int
}

type mergeHeap struct {
	items []mergeItem
	less  Less
}

func (h *mergeHeap) Len() int { return len(h.items) }
func (h *mergeHeap) Less(i, j int) bool {
	return h.less(&h.items[i].entry, &h.items[j].entry)
}
func (h *mergeHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap) Push(x any)    { h.items = append(h.items, x.(mergeItem)) }
func (h *mergeHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
