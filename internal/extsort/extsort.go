// Package extsort provides external-memory sorting of R-tree entries, so
// STR packing scales past main memory — the regime the paper targets
// ("data sets likely to be used by near term future applications" exceed
// the buffer, and packing is preprocessing over files).
//
// The implementation is the classical two-phase external merge sort:
// fixed-size runs are sorted in memory and spilled to a temporary file;
// a k-way merge (container/heap) streams the runs back in order. Entries
// are serialized with the same fixed-width binary layout the node pages
// use.
package extsort

import (
	"bufio"
	"container/heap"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"strtree/internal/geom"
	"strtree/internal/node"
)

// Less orders entries; it must be a strict weak ordering.
type Less func(a, b *node.Entry) bool

// ByCenter returns a comparator on the center coordinate of one axis, the
// ordering every STR phase uses.
func ByCenter(axis int) Less {
	return func(a, b *node.Entry) bool {
		return a.Rect.CenterAxis(axis) < b.Rect.CenterAxis(axis)
	}
}

// Sorter sorts streams of entries, spilling to disk when a run exceeds
// the in-memory budget.
type Sorter struct {
	dims    int
	runSize int
	tmpDir  string
}

// NewSorter creates a sorter for entries of the given dimensionality that
// keeps at most runSize entries in memory at a time. Temporary run files
// are created in tmpDir ("" means the OS default).
func NewSorter(dims, runSize int, tmpDir string) (*Sorter, error) {
	if dims <= 0 {
		return nil, fmt.Errorf("extsort: invalid dims %d", dims)
	}
	if runSize < 2 {
		return nil, fmt.Errorf("extsort: run size %d too small", runSize)
	}
	return &Sorter{dims: dims, runSize: runSize, tmpDir: tmpDir}, nil
}

// entrySize is the on-disk size of one entry.
func (s *Sorter) entrySize() int { return 16*s.dims + 8 }

// Sort consumes entries from next (which returns false when exhausted)
// and emits them in order to emit. Both callbacks may be called many
// times; emit's entry is only valid during the call.
func (s *Sorter) Sort(less Less, next func() (node.Entry, bool), emit func(node.Entry) error) error {
	// Phase 1: build sorted runs.
	var (
		run   []node.Entry
		files []*os.File
	)
	defer func() {
		for _, f := range files {
			f.Close()
			os.Remove(f.Name())
		}
	}()
	flushRun := func() error {
		if len(run) == 0 {
			return nil
		}
		sort.SliceStable(run, func(i, j int) bool { return less(&run[i], &run[j]) })
		f, err := os.CreateTemp(s.tmpDir, "extsort-run-*")
		if err != nil {
			return err
		}
		w := bufio.NewWriterSize(f, 1<<16)
		buf := make([]byte, s.entrySize())
		for i := range run {
			s.encode(&run[i], buf)
			if _, err := w.Write(buf); err != nil {
				f.Close()
				os.Remove(f.Name())
				return err
			}
		}
		if err := w.Flush(); err != nil {
			f.Close()
			os.Remove(f.Name())
			return err
		}
		files = append(files, f)
		run = run[:0]
		return nil
	}

	total := 0
	for {
		e, ok := next()
		if !ok {
			break
		}
		if e.Rect.Dim() != s.dims {
			return fmt.Errorf("extsort: entry dim %d, sorter dim %d", e.Rect.Dim(), s.dims)
		}
		run = append(run, node.Entry{Rect: e.Rect.Clone(), Ref: e.Ref})
		total++
		if len(run) >= s.runSize {
			if err := flushRun(); err != nil {
				return err
			}
		}
	}

	// Everything fit in one in-memory run: no files needed.
	if len(files) == 0 {
		sort.SliceStable(run, func(i, j int) bool { return less(&run[i], &run[j]) })
		for i := range run {
			if err := emit(run[i]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := flushRun(); err != nil {
		return err
	}

	// Phase 2: k-way merge of the runs.
	readers := make([]*runReader, len(files))
	for i, f := range files {
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return err
		}
		readers[i] = &runReader{
			r:    bufio.NewReaderSize(f, 1<<16),
			buf:  make([]byte, s.entrySize()),
			dims: s.dims,
		}
	}
	h := &mergeHeap{less: less}
	for i, r := range readers {
		e, ok, err := r.next()
		if err != nil {
			return err
		}
		if ok {
			h.items = append(h.items, mergeItem{entry: e, src: i})
		}
	}
	heap.Init(h)
	emitted := 0
	for h.Len() > 0 {
		top := h.items[0]
		if err := emit(top.entry); err != nil {
			return err
		}
		emitted++
		e, ok, err := readers[top.src].next()
		if err != nil {
			return err
		}
		if ok {
			h.items[0] = mergeItem{entry: e, src: top.src}
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	if emitted != total {
		return fmt.Errorf("extsort: emitted %d of %d entries", emitted, total)
	}
	return nil
}

// SortSlice sorts entries in place using external runs; a convenience for
// callers holding a full slice that still want bounded sort memory.
func (s *Sorter) SortSlice(entries []node.Entry, less Less) error {
	i := 0
	next := func() (node.Entry, bool) {
		if i >= len(entries) {
			return node.Entry{}, false
		}
		e := entries[i]
		i++
		return e, true
	}
	j := 0
	emit := func(e node.Entry) error {
		entries[j] = node.Entry{Rect: e.Rect.Clone(), Ref: e.Ref}
		j++
		return nil
	}
	return s.Sort(less, next, emit)
}

func (s *Sorter) encode(e *node.Entry, buf []byte) {
	off := 0
	for d := 0; d < s.dims; d++ {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(e.Rect.Min[d]))
		off += 8
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(e.Rect.Max[d]))
		off += 8
	}
	binary.LittleEndian.PutUint64(buf[off:], e.Ref)
}

// runReader streams entries back from one run file.
type runReader struct {
	r    *bufio.Reader
	buf  []byte
	dims int
}

func (r *runReader) next() (node.Entry, bool, error) {
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		if err == io.EOF {
			return node.Entry{}, false, nil
		}
		return node.Entry{}, false, err
	}
	e := node.Entry{Rect: newRect(r.dims)}
	off := 0
	for d := 0; d < r.dims; d++ {
		e.Rect.Min[d] = math.Float64frombits(binary.LittleEndian.Uint64(r.buf[off:]))
		off += 8
		e.Rect.Max[d] = math.Float64frombits(binary.LittleEndian.Uint64(r.buf[off:]))
		off += 8
	}
	e.Ref = binary.LittleEndian.Uint64(r.buf[off:])
	return e, true, nil
}

func newRect(dims int) geom.Rect {
	return geom.Rect{Min: make(geom.Point, dims), Max: make(geom.Point, dims)}
}

// mergeItem is one head-of-run entry in the merge heap.
type mergeItem struct {
	entry node.Entry
	src   int
}

type mergeHeap struct {
	items []mergeItem
	less  Less
}

func (h *mergeHeap) Len() int { return len(h.items) }
func (h *mergeHeap) Less(i, j int) bool {
	return h.less(&h.items[i].entry, &h.items[j].entry)
}
func (h *mergeHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap) Push(x any)    { h.items = append(h.items, x.(mergeItem)) }
func (h *mergeHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
