package extsort

import (
	"errors"
	"os"
	"testing"

	"strtree/internal/node"
)

// dupEntries makes entries whose sort keys collide heavily (only 16
// distinct center positions), the case where run-sort stability is the
// only thing keeping the merged order deterministic.
func dupEntries(n int) []node.Entry {
	out := randEntries(n, 9)
	for i := range out {
		x := float64(i % 16)
		w := out[i].Rect.Max[0] - out[i].Rect.Min[0]
		out[i].Rect.Min[0], out[i].Rect.Max[0] = x, x+w
	}
	return out
}

// TestSortWorkerSweepIdentical runs the same spilling sort at several
// worker counts and requires the emitted sequence to match entry for
// entry, including on duplicate keys.
func TestSortWorkerSweepIdentical(t *testing.T) {
	entries := dupEntries(3000)
	collect := func(workers int) []node.Entry {
		s, err := NewSorter(2, 128, t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		s.Workers = workers
		var got []node.Entry
		if err := s.Sort(ByCenter(0), sliceSource(entries), func(e node.Entry) error {
			got = append(got, node.Entry{Rect: e.Rect.Clone(), Ref: e.Ref})
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return got
	}
	want := collect(1)
	for _, workers := range []int{2, 4, 8} {
		got := collect(workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d emitted %d entries, workers=1 emitted %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i].Ref != want[i].Ref {
				t.Fatalf("workers=%d position %d: ref %d, workers=1 put ref %d",
					workers, i, got[i].Ref, want[i].Ref)
			}
		}
	}
}

// countFiles returns how many entries dir currently holds.
func countFiles(t *testing.T, dir string) int {
	t.Helper()
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return len(names)
}

// TestSortEmitErrorCleansSpills fails the sort mid-merge (after runs have
// spilled) and checks that the error is returned and every temp file is
// gone.
func TestSortEmitErrorCleansSpills(t *testing.T) {
	dir := t.TempDir()
	s, err := NewSorter(2, 64, dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Workers = 4
	boom := errors.New("emit failed")
	emitted := 0
	err = s.Sort(ByCenter(0), sliceSource(randEntries(1000, 2)), func(node.Entry) error {
		emitted++
		if emitted == 100 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got error %v, want %v", err, boom)
	}
	if n := countFiles(t, dir); n != 0 {
		t.Fatalf("%d temp files left after emit failure", n)
	}
}

// TestSortIngestErrorCleansSpills kills the source mid-stream — after
// several runs have already spilled — via a dim mismatch, and checks the
// spilled runs are removed.
func TestSortIngestErrorCleansSpills(t *testing.T) {
	dir := t.TempDir()
	s, err := NewSorter(2, 64, dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Workers = 4
	good := randEntries(400, 3)
	i := 0
	src := func() (node.Entry, bool) {
		if i >= len(good) {
			// A 3-D straggler into the 2-D sorter: rejected at ingest,
			// well after the first runs spilled.
			return node.Entry{Rect: newRect(3)}, true
		}
		e := good[i]
		i++
		return e, true
	}
	err = s.Sort(ByCenter(0), src, func(node.Entry) error { return nil })
	if err == nil {
		t.Fatal("dim mismatch not reported")
	}
	if n := countFiles(t, dir); n != 0 {
		t.Fatalf("%d temp files left after ingest failure", n)
	}
}

// TestSortLeavesNoTempFiles pins the other half of the cleanup contract:
// a successful spilling sort removes every run file it created.
func TestSortLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := NewSorter(2, 64, dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Workers = 4
	if err := s.Sort(ByCenter(0), sliceSource(randEntries(1000, 4)), func(node.Entry) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if n := countFiles(t, dir); n != 0 {
		t.Fatalf("%d temp files left after successful sort", n)
	}
}
