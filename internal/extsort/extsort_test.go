package extsort

import (
	"math/rand"
	"sort"
	"testing"

	"strtree/internal/geom"
	"strtree/internal/node"
)

func randEntries(n int, seed int64) []node.Entry {
	rng := rand.New(rand.NewSource(seed))
	out := make([]node.Entry, n)
	for i := range out {
		x, y := rng.Float64(), rng.Float64()
		out[i] = node.Entry{Rect: geom.R2(x, y, x+0.01, y+0.01), Ref: uint64(i)}
	}
	return out
}

func sliceSource(entries []node.Entry) func() (node.Entry, bool) {
	i := 0
	return func() (node.Entry, bool) {
		if i >= len(entries) {
			return node.Entry{}, false
		}
		e := entries[i]
		i++
		return e, true
	}
}

func TestNewSorterValidation(t *testing.T) {
	if _, err := NewSorter(0, 100, ""); err == nil {
		t.Error("dims 0 accepted")
	}
	if _, err := NewSorter(2, 1, ""); err == nil {
		t.Error("run size 1 accepted")
	}
}

func TestSortInMemoryPath(t *testing.T) {
	// Fewer entries than the run size: no temp files.
	s, err := NewSorter(2, 1000, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	entries := randEntries(100, 1)
	var got []node.Entry
	if err := s.Sort(ByCenter(0), sliceSource(entries), func(e node.Entry) error {
		got = append(got, node.Entry{Rect: e.Rect.Clone(), Ref: e.Ref})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	checkSorted(t, got, entries, 0)
}

func TestSortSpillsAndMerges(t *testing.T) {
	// Run size 64 forces ~16 runs for 1000 entries.
	s, err := NewSorter(2, 64, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	entries := randEntries(1000, 2)
	var got []node.Entry
	if err := s.Sort(ByCenter(1), sliceSource(entries), func(e node.Entry) error {
		got = append(got, node.Entry{Rect: e.Rect.Clone(), Ref: e.Ref})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	checkSorted(t, got, entries, 1)
}

func TestSortSliceMatchesStdSort(t *testing.T) {
	s, err := NewSorter(2, 50, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	entries := randEntries(777, 3)
	want := append([]node.Entry(nil), entries...)
	sort.SliceStable(want, func(i, j int) bool {
		return want[i].Rect.CenterAxis(0) < want[j].Rect.CenterAxis(0)
	})
	if err := s.SortSlice(entries, ByCenter(0)); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if entries[i].Ref != want[i].Ref {
			t.Fatalf("order differs from stable sort at %d", i)
		}
	}
}

func TestSortEmptyInput(t *testing.T) {
	s, err := NewSorter(2, 10, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Sort(ByCenter(0), sliceSource(nil), func(node.Entry) error {
		t.Fatal("emit on empty input")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSortRejectsDimMismatch(t *testing.T) {
	s, err := NewSorter(3, 10, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	entries := randEntries(5, 4) // 2-D entries into a 3-D sorter
	err = s.Sort(ByCenter(0), sliceSource(entries), func(node.Entry) error { return nil })
	if err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestSort3D(t *testing.T) {
	s, err := NewSorter(3, 32, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	var entries []node.Entry
	for i := 0; i < 300; i++ {
		p := geom.Point{rng.Float64(), rng.Float64(), rng.Float64()}
		entries = append(entries, node.Entry{Rect: geom.PointRect(p), Ref: uint64(i)})
	}
	var got []node.Entry
	if err := s.Sort(ByCenter(2), sliceSource(entries), func(e node.Entry) error {
		got = append(got, node.Entry{Rect: e.Rect.Clone(), Ref: e.Ref})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 300 {
		t.Fatalf("emitted %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Rect.CenterAxis(2) < got[i-1].Rect.CenterAxis(2) {
			t.Fatalf("z order violated at %d", i)
		}
	}
}

func checkSorted(t *testing.T, got, input []node.Entry, axis int) {
	t.Helper()
	if len(got) != len(input) {
		t.Fatalf("emitted %d of %d entries", len(got), len(input))
	}
	seen := map[uint64]bool{}
	for i, e := range got {
		if seen[e.Ref] {
			t.Fatalf("ref %d duplicated", e.Ref)
		}
		seen[e.Ref] = true
		if i > 0 && e.Rect.CenterAxis(axis) < got[i-1].Rect.CenterAxis(axis) {
			t.Fatalf("order violated at %d", i)
		}
		if !e.Rect.Equal(input[e.Ref].Rect) {
			t.Fatalf("ref %d rect corrupted in transit", e.Ref)
		}
	}
}

func BenchmarkExternalSort100k(b *testing.B) {
	entries := randEntries(100000, 6)
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewSorter(2, 8192, dir)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		if err := s.Sort(ByCenter(0), sliceSource(entries), func(node.Entry) error {
			n++
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		if n != len(entries) {
			b.Fatal("lost entries")
		}
	}
}
