package node

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzUnmarshal throws arbitrary bytes at the page parser: it must never
// panic and must never return a node that violates basic sanity (the CRC
// makes random corruption overwhelmingly detectable; what we assert is
// graceful rejection, not acceptance).
func FuzzUnmarshal(f *testing.F) {
	// Seed with a valid page and light mutations of it.
	valid := make([]byte, 1024)
	n := sampleNode(2, 2, 20, rand.New(rand.NewSource(1)))
	if err := Marshal(n, valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	for _, at := range []int{0, 3, 6, 9, 50, 500} {
		mut := append([]byte(nil), valid...)
		mut[at] ^= 0xFF
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add([]byte{0x54, 0x52})

	f.Fuzz(func(t *testing.T, page []byte) {
		var out Node
		if err := Unmarshal(page, &out); err != nil {
			return // rejection is the expected outcome for junk
		}
		// Accepted pages must be internally consistent.
		if out.Dims <= 0 {
			t.Fatalf("accepted node with dims %d", out.Dims)
		}
		for i, e := range out.Entries {
			if !e.Rect.Valid() {
				t.Fatalf("accepted entry %d with invalid rect %v", i, e.Rect)
			}
			if e.Rect.Dim() != out.Dims {
				t.Fatalf("accepted entry %d with dim %d in %d-d node", i, e.Rect.Dim(), out.Dims)
			}
		}
	})
}

// FuzzNodeRoundTrip checks that any node the fuzzer can describe survives
// a marshal/unmarshal cycle bit-exactly, in any dimensionality, and that
// serialization is deterministic (two marshals of the same node produce
// identical pages — required by the invariant verifier's page round-trip
// check). The committed corpus under testdata/fuzz/FuzzNodeRoundTrip seeds
// the interesting boundaries: empty nodes, exactly-full nodes, leaf and
// internal levels, and the 1-d/8-d extremes.
func FuzzNodeRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(2), uint8(10))
	f.Add(int64(2), uint8(3), uint8(2), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, level, dims, count uint8) {
		rng := rand.New(rand.NewSource(seed))
		d := int(dims)
		if d < 1 {
			d = 1
		}
		if d > 8 {
			d = 8
		}
		c := int(count)
		if max := Capacity(2048, d); c > max {
			c = max
		}
		n := sampleNode(int(level), d, c, rng)
		page := make([]byte, 2048)
		if err := Marshal(n, page); err != nil {
			t.Fatal(err)
		}
		var got Node
		if err := Unmarshal(page, &got); err != nil {
			t.Fatal(err)
		}
		if got.Level != n.Level || got.Dims != n.Dims || len(got.Entries) != len(n.Entries) {
			t.Fatal("header mismatch after round trip")
		}
		for i := range n.Entries {
			if !got.Entries[i].Rect.Equal(n.Entries[i].Rect) || got.Entries[i].Ref != n.Entries[i].Ref {
				t.Fatalf("entry %d mismatch", i)
			}
		}
		// Re-marshal the decoded node: the page must reproduce exactly.
		again := make([]byte, 2048)
		if err := Marshal(&got, again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(page, again) {
			t.Fatal("re-marshal is not byte-identical")
		}
	})
}
