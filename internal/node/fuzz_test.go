package node

import (
	"math/rand"
	"testing"
)

// FuzzUnmarshal throws arbitrary bytes at the page parser: it must never
// panic and must never return a node that violates basic sanity (the CRC
// makes random corruption overwhelmingly detectable; what we assert is
// graceful rejection, not acceptance).
func FuzzUnmarshal(f *testing.F) {
	// Seed with a valid page and light mutations of it.
	valid := make([]byte, 1024)
	n := sampleNode(2, 2, 20, rand.New(rand.NewSource(1)))
	if err := Marshal(n, valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	for _, at := range []int{0, 3, 6, 9, 50, 500} {
		mut := append([]byte(nil), valid...)
		mut[at] ^= 0xFF
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add([]byte{0x54, 0x52})

	f.Fuzz(func(t *testing.T, page []byte) {
		var out Node
		if err := Unmarshal(page, &out); err != nil {
			return // rejection is the expected outcome for junk
		}
		// Accepted pages must be internally consistent.
		if out.Dims <= 0 {
			t.Fatalf("accepted node with dims %d", out.Dims)
		}
		for i, e := range out.Entries {
			if !e.Rect.Valid() {
				t.Fatalf("accepted entry %d with invalid rect %v", i, e.Rect)
			}
			if e.Rect.Dim() != out.Dims {
				t.Fatalf("accepted entry %d with dim %d in %d-d node", i, e.Rect.Dim(), out.Dims)
			}
		}
	})
}

// FuzzRoundTrip checks that any node the fuzzer can describe survives a
// marshal/unmarshal cycle bit-exactly.
func FuzzRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(10))
	f.Add(int64(2), uint8(3), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, level, count uint8) {
		rng := rand.New(rand.NewSource(seed))
		c := int(count)
		if max := Capacity(2048, 2); c > max {
			c = max
		}
		n := sampleNode(int(level), 2, c, rng)
		page := make([]byte, 2048)
		if err := Marshal(n, page); err != nil {
			t.Fatal(err)
		}
		var got Node
		if err := Unmarshal(page, &got); err != nil {
			t.Fatal(err)
		}
		if got.Level != n.Level || got.Dims != n.Dims || len(got.Entries) != len(n.Entries) {
			t.Fatal("header mismatch after round trip")
		}
		for i := range n.Entries {
			if !got.Entries[i].Rect.Equal(n.Entries[i].Rect) || got.Entries[i].Ref != n.Entries[i].Ref {
				t.Fatalf("entry %d mismatch", i)
			}
		}
	})
}
