package node

// View is the zero-copy counterpart of Unmarshal: a read-only window over
// the serialized bytes of one page that decodes fields on demand instead
// of materializing Node.Entries on the heap. The query read path iterates
// Views over buffer-pinned pages, so a traversal touches exactly the
// float64 words its predicate needs and allocates nothing per page.
//
// Lifetime contract: a View aliases the page slice it was created over and
// is valid only as long as those bytes are stable — for a buffer-managed
// page, between the buffer Fetch that pinned the frame and the matching
// Release (see internal/buffer.Frame). Views must never be stored,
// returned upward, or used after the pin is dropped; the traversal code in
// internal/rtree creates a View per visited page and lets it die inside
// the pin scope.
//
// Write paths (insert, delete, bulk load) keep using Unmarshal: they
// mutate entries in place and re-marshal, which needs the materialized
// form anyway, and their cost is dominated by page writes, not decoding.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"strtree/internal/geom"
)

// View is a lazily-decoded, read-only view over one serialized page.
// The zero View is invalid; construct with MakeView, which performs the
// same corruption checks as Unmarshal exactly once per page. A View is a
// small value (slice header plus three ints) intended to live on the
// stack; methods use value receivers so no View ever escapes to the heap.
type View struct {
	page  []byte
	dims  int
	level int
	count int
}

// MakeView validates page and returns a view over it. The checks are
// identical to Unmarshal's — magic, version, dimensionality, entry-count
// bounds, payload CRC, and per-entry rectangle validity (no NaNs, Min <=
// Max on every axis) — so a page accepted by one is accepted by the other
// and a page rejected by one is rejected by the other with the same
// sentinel error (FuzzViewEquivalence pins this). Validation decodes every
// float once but retains nothing: after MakeView returns, accessors read
// straight from the page bytes.
func MakeView(page []byte) (View, error) {
	if len(page) < HeaderSize {
		return View{}, fmt.Errorf("%w: page shorter than header", ErrCorrupt)
	}
	if binary.LittleEndian.Uint16(page[0:]) != Magic {
		return View{}, ErrBadMagic
	}
	if page[2] != Version {
		return View{}, fmt.Errorf("%w: version %d", ErrBadVersion, page[2])
	}
	dims := int(page[3])
	if dims == 0 {
		return View{}, fmt.Errorf("%w: zero dimensionality", ErrCorrupt)
	}
	level := int(binary.LittleEndian.Uint16(page[4:]))
	count := int(binary.LittleEndian.Uint16(page[6:]))
	end := HeaderSize + count*EntrySize(dims)
	if end > len(page) {
		return View{}, fmt.Errorf("%w: %d entries overflow the page", ErrCorrupt, count)
	}
	if got, want := crc32.ChecksumIEEE(page[HeaderSize:end]), binary.LittleEndian.Uint32(page[8:]); got != want {
		return View{}, fmt.Errorf("%w: crc %08x, header says %08x", ErrBadChecksum, got, want)
	}
	v := View{page: page, dims: dims, level: level, count: count}
	for i := 0; i < count; i++ {
		if !v.entryValid(i) {
			// Materialize the offending rectangle only on the error path,
			// to match Unmarshal's diagnostic.
			var r geom.Rect
			r.Min = make(geom.Point, dims)
			r.Max = make(geom.Point, dims)
			v.EntryRectInto(i, &r)
			return View{}, fmt.Errorf("%w: entry %d has invalid rectangle %v", ErrCorrupt, i, r)
		}
	}
	return v, nil
}

// entryValid reports whether entry i decodes to a well-formed rectangle:
// no NaN coordinates and Min <= Max on every axis (geom.Rect.Valid over
// the wire words, without building the rectangle).
func (v View) entryValid(i int) bool {
	off := HeaderSize + i*EntrySize(v.dims)
	for d := 0; d < v.dims; d++ {
		lo := math.Float64frombits(binary.LittleEndian.Uint64(v.page[off:]))
		hi := math.Float64frombits(binary.LittleEndian.Uint64(v.page[off+8:]))
		if math.IsNaN(lo) || math.IsNaN(hi) || lo > hi {
			return false
		}
		off += 16
	}
	return true
}

// Level returns the node's level (0 = leaf).
func (v View) Level() int { return v.level }

// IsLeaf reports whether the page holds a leaf node.
func (v View) IsLeaf() bool { return v.level == 0 }

// Dims returns the page's dimensionality.
func (v View) Dims() int { return v.dims }

// Count returns the number of entries on the page.
func (v View) Count() int { return v.count }

// entryOff returns the byte offset of entry i's first coordinate.
func (v View) entryOff(i int) int { return HeaderSize + i*EntrySize(v.dims) }

// EntryRef returns entry i's pointer: the child page number on internal
// levels, the opaque object identifier on leaves.
func (v View) EntryRef(i int) uint64 {
	off := v.entryOff(i) + 16*v.dims
	return binary.LittleEndian.Uint64(v.page[off:])
}

// EntryID is EntryRef under its leaf-level meaning: the data object's
// identifier. Provided so leaf-iterating code reads naturally.
func (v View) EntryID(i int) uint64 { return v.EntryRef(i) }

// EntryMin returns coordinate d of entry i's lower corner.
func (v View) EntryMin(i, d int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(v.page[v.entryOff(i)+16*d:]))
}

// EntryMax returns coordinate d of entry i's upper corner.
func (v View) EntryMax(i, d int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(v.page[v.entryOff(i)+16*d+8:]))
}

// EntryRect returns entry i's rectangle as a freshly allocated geom.Rect.
// Hot paths should prefer EntryRectInto with reused storage; this form
// exists for call sites where an owned rectangle is the point (error
// diagnostics, result materialization).
func (v View) EntryRect(i int) geom.Rect {
	r := geom.Rect{Min: make(geom.Point, v.dims), Max: make(geom.Point, v.dims)}
	v.EntryRectInto(i, &r)
	return r
}

// EntryRectInto decodes entry i's rectangle into dst, whose Min and Max
// must already have length Dims. dst may be reused across calls — the
// allocation-free traversal decodes every emitted match into one scratch
// rectangle.
func (v View) EntryRectInto(i int, dst *geom.Rect) {
	off := v.entryOff(i)
	for d := 0; d < v.dims; d++ {
		dst.Min[d] = math.Float64frombits(binary.LittleEndian.Uint64(v.page[off:]))
		dst.Max[d] = math.Float64frombits(binary.LittleEndian.Uint64(v.page[off+8:]))
		off += 16
	}
}

// AppendEntryCoords appends entry i's coordinates to dst as Min[0..dims)
// followed by Max[0..dims), the layout rectFromSlab-style consumers slice
// back into a geom.Rect. It lets a traversal bank coordinates in one
// growable slab instead of allocating a rectangle per retained entry.
func (v View) AppendEntryCoords(dst []float64, i int) []float64 {
	off := v.entryOff(i)
	for d := 0; d < v.dims; d++ {
		dst = append(dst, math.Float64frombits(binary.LittleEndian.Uint64(v.page[off:])))
		off += 16
	}
	off = v.entryOff(i) + 8
	for d := 0; d < v.dims; d++ {
		dst = append(dst, math.Float64frombits(binary.LittleEndian.Uint64(v.page[off:])))
		off += 16
	}
	return dst
}

// IntersectsQuery reports whether entry i's rectangle intersects q
// (closed-box semantics, exactly geom.Rect.Intersects), comparing raw
// float64 words in place. The kernel deliberately has no data-dependent
// early exit: the verdict accumulates across all k axes in one flag, so
// for the small fixed k of an R-tree page the loop runs the same
// instruction stream for hits and misses instead of taking a
// hard-to-predict branch per axis. q must have dimension Dims and contain
// no NaNs (the tree validates queries on entry; MakeView validated the
// page), which makes the accumulated comparison equivalent to the
// short-circuiting original.
func (v View) IntersectsQuery(q geom.Rect, i int) bool {
	off := v.entryOff(i)
	miss := false
	for d := 0; d < v.dims; d++ {
		lo := math.Float64frombits(binary.LittleEndian.Uint64(v.page[off:]))
		hi := math.Float64frombits(binary.LittleEndian.Uint64(v.page[off+8:]))
		miss = miss || lo > q.Max[d] || q.Min[d] > hi
		off += 16
	}
	return !miss
}

// MinDist returns the minimum Euclidean distance from point p to entry
// i's rectangle (0 if p is inside), decoded in place — the best-first
// nearest-neighbor traversal's distance kernel.
func (v View) MinDist(p geom.Point, i int) float64 {
	off := v.entryOff(i)
	sum := 0.0
	for d := range p {
		lo := math.Float64frombits(binary.LittleEndian.Uint64(v.page[off:]))
		hi := math.Float64frombits(binary.LittleEndian.Uint64(v.page[off+8:]))
		var dd float64
		switch {
		case p[d] < lo:
			dd = lo - p[d]
		case p[d] > hi:
			dd = p[d] - hi
		}
		sum += dd * dd
		off += 16
	}
	return math.Sqrt(sum)
}

// MBRInto computes the minimum bounding rectangle of the page's entries
// into dst, whose Min and Max must already have length Dims. It panics on
// an empty page, matching Node.MBR's contract.
func (v View) MBRInto(dst *geom.Rect) {
	if v.count == 0 {
		//strlint:ignore panics documented contract: an empty node has no MBR, matching Node.MBR
		panic("node: MBR of empty view")
	}
	v.EntryRectInto(0, dst)
	off := v.entryOff(1)
	for i := 1; i < v.count; i++ {
		for d := 0; d < v.dims; d++ {
			lo := math.Float64frombits(binary.LittleEndian.Uint64(v.page[off:]))
			hi := math.Float64frombits(binary.LittleEndian.Uint64(v.page[off+8:]))
			if lo < dst.Min[d] {
				dst.Min[d] = lo
			}
			if hi > dst.Max[d] {
				dst.Max[d] = hi
			}
			off += 16
		}
		off += 8
	}
}
