package node

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"strtree/internal/geom"
)

// randRect builds a valid random rectangle in k dims.
func randRect(rng *rand.Rand, dims int) geom.Rect {
	r := geom.Rect{Min: make(geom.Point, dims), Max: make(geom.Point, dims)}
	for d := 0; d < dims; d++ {
		a, b := rng.Float64()*100, rng.Float64()*100
		if a > b {
			a, b = b, a
		}
		r.Min[d], r.Max[d] = a, b
	}
	return r
}

// TestMutableViewByteIdentity drives a MutableView and a materialized Node
// through the same random operation sequence and asserts the patched page is
// byte-for-byte what Marshal produces from the Node at every step. This is
// the contract the invariant verifier's RoundTrip check relies on.
func TestMutableViewByteIdentity(t *testing.T) {
	for _, dims := range []int{1, 2, 3, 5} {
		for _, pageSize := range []int{256, 1024, 4096} {
			rng := rand.New(rand.NewSource(int64(dims*1000 + pageSize)))
			page := make([]byte, pageSize)
			shadow := make([]byte, pageSize)
			n := Node{Level: 0, Dims: dims}
			if err := Marshal(&n, page); err != nil {
				t.Fatalf("dims=%d page=%d: marshal empty: %v", dims, pageSize, err)
			}
			mv, err := MakeMutableView(page)
			if err != nil {
				t.Fatalf("dims=%d page=%d: MakeMutableView: %v", dims, pageSize, err)
			}
			slotCap := mv.SlotCapacity()
			for step := 0; step < 400; step++ {
				switch op := rng.Intn(3); {
				case op == 0 && len(n.Entries) < slotCap: // append
					r, ref := randRect(rng, dims), rng.Uint64()
					if err := mv.AppendEntry(r, ref); err != nil {
						t.Fatalf("step %d: AppendEntry: %v", step, err)
					}
					n.Entries = append(n.Entries, Entry{Rect: r.Clone(), Ref: ref})
				case op == 1 && len(n.Entries) > 0: // patch a rect
					i, r := rng.Intn(len(n.Entries)), randRect(rng, dims)
					if err := mv.SetEntryRect(i, r); err != nil {
						t.Fatalf("step %d: SetEntryRect: %v", step, err)
					}
					n.Entries[i].Rect = r.Clone()
				case op == 2 && len(n.Entries) > 0: // remove
					i := rng.Intn(len(n.Entries))
					if err := mv.RemoveEntry(i); err != nil {
						t.Fatalf("step %d: RemoveEntry: %v", step, err)
					}
					n.Entries = append(n.Entries[:i], n.Entries[i+1:]...)
				default:
					continue
				}
				if err := Marshal(&n, shadow); err != nil {
					t.Fatalf("step %d: shadow marshal: %v", step, err)
				}
				if !bytes.Equal(page, shadow) {
					t.Fatalf("dims=%d page=%d step=%d: patched page diverges from Marshal output", dims, pageSize, step)
				}
				// The patched page must stay acceptable to every decoder.
				var back Node
				if err := Unmarshal(page, &back); err != nil {
					t.Fatalf("step %d: Unmarshal of patched page: %v", step, err)
				}
				if _, err := MakeView(page); err != nil {
					t.Fatalf("step %d: MakeView of patched page: %v", step, err)
				}
			}
		}
	}
}

// TestMutableViewAppendCRCIncremental pins that the incremental CRC after an
// append equals a from-scratch checksum (the property crc32.Update provides;
// this test keeps it from regressing to a stale-CRC bug).
func TestMutableViewAppendCRCIncremental(t *testing.T) {
	page := make([]byte, 512)
	n := Node{Level: 3, Dims: 2}
	if err := Marshal(&n, page); err != nil {
		t.Fatal(err)
	}
	mv, err := MakeMutableView(page)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < mv.SlotCapacity(); i++ {
		if err := mv.AppendEntry(randRect(rng, 2), rng.Uint64()); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		// Unmarshal recomputes and verifies the CRC from scratch.
		var back Node
		if err := Unmarshal(page, &back); err != nil {
			t.Fatalf("append %d left a bad checksum: %v", i, err)
		}
		if back.Level != 3 || len(back.Entries) != i+1 {
			t.Fatalf("append %d: decoded level=%d count=%d", i, back.Level, len(back.Entries))
		}
	}
	if err := mv.AppendEntry(randRect(rng, 2), 1); err == nil {
		t.Fatal("append past SlotCapacity succeeded")
	}
}

// TestMutableViewRejects exercises the mutator error gates.
func TestMutableViewRejects(t *testing.T) {
	page := make([]byte, 256)
	n := Node{Level: 0, Dims: 2, Entries: []Entry{
		{Rect: geom.Rect{Min: geom.Point{0, 0}, Max: geom.Point{1, 1}}, Ref: 7},
	}}
	if err := Marshal(&n, page); err != nil {
		t.Fatal(err)
	}
	mv, err := MakeMutableView(page)
	if err != nil {
		t.Fatal(err)
	}
	bad3d := geom.Rect{Min: geom.Point{0, 0, 0}, Max: geom.Point{1, 1, 1}}
	nan := geom.Rect{Min: geom.Point{math.NaN(), 0}, Max: geom.Point{1, 1}}
	if err := mv.AppendEntry(bad3d, 1); err == nil {
		t.Error("AppendEntry accepted wrong dimensionality")
	}
	if err := mv.AppendEntry(nan, 1); err == nil {
		t.Error("AppendEntry accepted a NaN rectangle")
	}
	if err := mv.SetEntryRect(5, n.Entries[0].Rect); err == nil {
		t.Error("SetEntryRect accepted an out-of-range index")
	}
	if err := mv.SetEntryRect(0, nan); err == nil {
		t.Error("SetEntryRect accepted a NaN rectangle")
	}
	if err := mv.RemoveEntry(1); err == nil {
		t.Error("RemoveEntry accepted an out-of-range index")
	}
	if err := mv.RemoveEntry(-1); err == nil {
		t.Error("RemoveEntry accepted a negative index")
	}
	// None of the rejected calls may have corrupted the page.
	var back Node
	if err := Unmarshal(page, &back); err != nil {
		t.Fatalf("page corrupted by rejected mutations: %v", err)
	}
	if len(back.Entries) != 1 || back.Entries[0].Ref != 7 {
		t.Fatalf("page content changed by rejected mutations: %+v", back)
	}
	// MakeMutableView must reject what MakeView rejects.
	if _, err := MakeMutableView(page[:4]); err == nil {
		t.Error("MakeMutableView accepted a truncated page")
	}
	page[0] ^= 0xFF
	if _, err := MakeMutableView(page); err == nil {
		t.Error("MakeMutableView accepted a bad magic")
	}
	page[0] ^= 0xFF
}
