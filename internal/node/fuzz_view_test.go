package node

import (
	"errors"
	"math/rand"
	"testing"
)

// FuzzViewEquivalence throws arbitrary bytes at both page parsers and
// requires them to agree byte-for-byte: MakeView accepts exactly the pages
// Unmarshal accepts (and rejects with the same sentinel error), and on
// accepted pages every View accessor returns exactly what the
// materialized Node holds. This is the corruption-safety half of the
// zero-copy read path's correctness argument — the traversal half is
// pinned by internal/rtree's differential tests. The committed corpus
// under testdata/fuzz/FuzzViewEquivalence seeds valid pages of several
// shapes plus targeted mutations (header fields, payload, truncation).
func FuzzViewEquivalence(f *testing.F) {
	// Valid pages across levels, dimensionalities and fills.
	for _, tc := range []struct{ level, dims, count int }{
		{0, 2, 0}, {0, 2, 1}, {0, 2, 50}, {2, 2, 102}, {0, 1, 5}, {1, 8, 3},
	} {
		page := make([]byte, 4096)
		n := sampleNode(tc.level, tc.dims, tc.count, rand.New(rand.NewSource(int64(tc.level+tc.dims+tc.count))))
		if err := Marshal(n, page); err != nil {
			f.Fatal(err)
		}
		f.Add(page)
	}
	// Mutations of a valid page: header bytes, payload, truncations.
	base := make([]byte, 1024)
	if err := Marshal(sampleNode(1, 2, 20, rand.New(rand.NewSource(42))), base); err != nil {
		f.Fatal(err)
	}
	for _, at := range []int{0, 2, 3, 4, 6, 8, 12, 200} {
		mut := append([]byte(nil), base...)
		mut[at] ^= 0xFF
		f.Add(mut)
	}
	f.Add(base[:HeaderSize-1])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, page []byte) {
		var n Node
		uErr := Unmarshal(page, &n)
		v, vErr := MakeView(page)

		if (uErr == nil) != (vErr == nil) {
			t.Fatalf("acceptance disagrees: Unmarshal err %v, MakeView err %v", uErr, vErr)
		}
		if uErr != nil {
			// Same sentinel class on rejection.
			for _, sentinel := range []error{ErrBadMagic, ErrBadVersion, ErrBadChecksum, ErrCorrupt} {
				if errors.Is(uErr, sentinel) != errors.Is(vErr, sentinel) {
					t.Fatalf("rejection class disagrees for %v: Unmarshal %v, MakeView %v", sentinel, uErr, vErr)
				}
			}
			return
		}

		// Accepted: every accessor must match the materialized node.
		if v.Level() != n.Level || v.Dims() != n.Dims || v.Count() != len(n.Entries) {
			t.Fatalf("header disagrees: view (%d,%d,%d), node (%d,%d,%d)",
				v.Level(), v.Dims(), v.Count(), n.Level, n.Dims, len(n.Entries))
		}
		for i, e := range n.Entries {
			if v.EntryRef(i) != e.Ref {
				t.Fatalf("entry %d ref disagrees", i)
			}
			if !v.EntryRect(i).Equal(e.Rect) {
				t.Fatalf("entry %d rect disagrees", i)
			}
			for d := 0; d < n.Dims; d++ {
				//strlint:ignore floateq decode must be bit-exact
				if v.EntryMin(i, d) != e.Rect.Min[d] || v.EntryMax(i, d) != e.Rect.Max[d] {
					t.Fatalf("entry %d axis %d disagrees", i, d)
				}
			}
		}
	})
}
