package node

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"math/rand"
	"testing"

	"strtree/internal/geom"
)

// marshalSample serializes a sample node into a fresh page.
func marshalSample(t *testing.T, level, dims, count int, seed int64) ([]byte, *Node) {
	t.Helper()
	n := sampleNode(level, dims, count, rand.New(rand.NewSource(seed)))
	page := make([]byte, 4096)
	if err := Marshal(n, page); err != nil {
		t.Fatal(err)
	}
	return page, n
}

func TestViewAccessorsMatchUnmarshal(t *testing.T) {
	for _, tc := range []struct{ level, dims, count int }{
		{0, 2, 0},
		{0, 2, 1},
		{0, 2, 37},
		{3, 2, 102},
		{0, 1, 10},
		{2, 5, 8},
		{0, 8, 4},
	} {
		page, _ := marshalSample(t, tc.level, tc.dims, tc.count, int64(tc.level*1000+tc.dims*100+tc.count))
		var n Node
		if err := Unmarshal(page, &n); err != nil {
			t.Fatal(err)
		}
		v, err := MakeView(page)
		if err != nil {
			t.Fatalf("MakeView rejected a valid page: %v", err)
		}
		if v.Level() != n.Level || v.Dims() != n.Dims || v.Count() != len(n.Entries) {
			t.Fatalf("header mismatch: view (%d,%d,%d) vs node (%d,%d,%d)",
				v.Level(), v.Dims(), v.Count(), n.Level, n.Dims, len(n.Entries))
		}
		if v.IsLeaf() != n.IsLeaf() {
			t.Fatal("IsLeaf mismatch")
		}
		scratch := geom.Rect{Min: make(geom.Point, v.Dims()), Max: make(geom.Point, v.Dims())}
		for i, e := range n.Entries {
			if v.EntryRef(i) != e.Ref || v.EntryID(i) != e.Ref {
				t.Fatalf("entry %d ref mismatch", i)
			}
			if !v.EntryRect(i).Equal(e.Rect) {
				t.Fatalf("entry %d EntryRect mismatch", i)
			}
			v.EntryRectInto(i, &scratch)
			if !scratch.Equal(e.Rect) {
				t.Fatalf("entry %d EntryRectInto mismatch", i)
			}
			for d := 0; d < v.Dims(); d++ {
				//strlint:ignore floateq decode must be bit-exact
				if v.EntryMin(i, d) != e.Rect.Min[d] || v.EntryMax(i, d) != e.Rect.Max[d] {
					t.Fatalf("entry %d axis %d coordinate mismatch", i, d)
				}
			}
			coords := v.AppendEntryCoords(nil, i)
			for d := 0; d < v.Dims(); d++ {
				//strlint:ignore floateq decode must be bit-exact
				if coords[d] != e.Rect.Min[d] || coords[v.Dims()+d] != e.Rect.Max[d] {
					t.Fatalf("entry %d AppendEntryCoords mismatch", i)
				}
			}
		}
		if tc.count > 0 {
			v.MBRInto(&scratch)
			if !scratch.Equal(n.MBR()) {
				t.Fatalf("MBRInto %v != MBR %v", scratch, n.MBR())
			}
		}
	}
}

func TestViewIntersectsQueryMatchesGeom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dims := range []int{1, 2, 3, 5} {
		page, n := marshalSample(t, 0, dims, 30, int64(dims))
		v, err := MakeView(page)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 200; trial++ {
			lo := make(geom.Point, dims)
			hi := make(geom.Point, dims)
			for d := range lo {
				lo[d] = rng.Float64() * 1.5
				hi[d] = lo[d] + rng.Float64()*0.5
			}
			q := geom.Rect{Min: lo, Max: hi}
			for i, e := range n.Entries {
				if got, want := v.IntersectsQuery(q, i), q.Intersects(e.Rect); got != want {
					t.Fatalf("dims %d entry %d query %v: IntersectsQuery=%v, geom=%v", dims, i, q, got, want)
				}
			}
		}
		// Touching edges intersect (closed-box semantics).
		e0 := n.Entries[0].Rect
		touch := geom.Rect{Min: e0.Max.Clone(), Max: e0.Max.Clone()}
		if !v.IntersectsQuery(touch, 0) {
			t.Fatal("touching edge did not intersect")
		}
	}
}

func TestViewMinDistMatchesRect(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	page, n := marshalSample(t, 0, 2, 25, 11)
	v, err := MakeView(page)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 300; trial++ {
		p := geom.Point{rng.Float64()*3 - 1, rng.Float64()*3 - 1}
		for i, e := range n.Entries {
			want := refMinDist(p, e.Rect)
			//strlint:ignore floateq both sides run the identical float sequence on identical words
			if got := v.MinDist(p, i); got != want {
				t.Fatalf("entry %d point %v: MinDist=%g, ref=%g", i, p, got, want)
			}
		}
	}
}

// refMinDist mirrors internal/rtree's minDist formula.
func refMinDist(p geom.Point, r geom.Rect) float64 {
	sum := 0.0
	for i := range p {
		var d float64
		switch {
		case p[i] < r.Min[i]:
			d = r.Min[i] - p[i]
		case p[i] > r.Max[i]:
			d = p[i] - r.Max[i]
		}
		sum += d * d
	}
	return math.Sqrt(sum)
}

// TestViewRejectsWhatUnmarshalRejects corrupts a valid page every way
// Unmarshal detects and checks MakeView returns the same sentinel.
func TestViewRejectsWhatUnmarshalRejects(t *testing.T) {
	page, _ := marshalSample(t, 1, 2, 12, 3)
	corrupt := func(mutate func([]byte)) []byte {
		c := append([]byte(nil), page...)
		mutate(c)
		return c
	}
	cases := []struct {
		name string
		page []byte
		want error
	}{
		{"short", []byte{0x54, 0x52}, ErrCorrupt},
		{"magic", corrupt(func(p []byte) { p[0] = 0 }), ErrBadMagic},
		{"version", corrupt(func(p []byte) { p[2] = 99 }), ErrBadVersion},
		{"zero dims", corrupt(func(p []byte) { p[3] = 0 }), ErrCorrupt},
		{"count overflow", corrupt(func(p []byte) { p[6] = 0xFF; p[7] = 0xFF }), ErrCorrupt},
		{"payload flip", corrupt(func(p []byte) { p[100] ^= 0xFF }), ErrBadChecksum},
	}
	for _, tc := range cases {
		if _, err := MakeView(tc.page); !errors.Is(err, tc.want) {
			t.Errorf("%s: MakeView err %v, want %v", tc.name, err, tc.want)
		}
		var n Node
		if err := Unmarshal(tc.page, &n); !errors.Is(err, tc.want) {
			t.Errorf("%s: Unmarshal err %v, want %v (equivalence baseline)", tc.name, err, tc.want)
		}
	}

	// An invalid rectangle behind a recomputed CRC: both parsers must
	// reject with ErrCorrupt.
	bad, _ := marshalSample(t, 1, 2, 12, 3)
	writeInvertedEntry(bad)
	if _, err := MakeView(bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("inverted rect: MakeView err %v, want ErrCorrupt", err)
	}
	var n Node
	if err := Unmarshal(bad, &n); !errors.Is(err, ErrCorrupt) {
		t.Errorf("inverted rect: Unmarshal err %v, want ErrCorrupt", err)
	}
}

// writeInvertedEntry swaps entry 0's axis-0 interval so Min > Max and
// recomputes the payload CRC, producing a page that passes the checksum
// but fails rectangle validation.
func writeInvertedEntry(page []byte) {
	dims := int(page[3])
	count := int(binary.LittleEndian.Uint16(page[6:]))
	off := HeaderSize
	lo := binary.LittleEndian.Uint64(page[off:])
	hi := binary.LittleEndian.Uint64(page[off+8:])
	if math.Float64frombits(lo) == math.Float64frombits(hi) {
		// Degenerate interval: force a strict inversion instead of a swap.
		hi = math.Float64bits(math.Float64frombits(lo) - 1)
	}
	binary.LittleEndian.PutUint64(page[off:], hi)
	binary.LittleEndian.PutUint64(page[off+8:], lo)
	end := HeaderSize + count*EntrySize(dims)
	binary.LittleEndian.PutUint32(page[8:], crc32.ChecksumIEEE(page[HeaderSize:end]))
}

// TestViewZeroAllocAccess pins the zero-copy property: iterating a page
// through a View with reused scratch performs no heap allocations.
func TestViewZeroAllocAccess(t *testing.T) {
	page, _ := marshalSample(t, 0, 2, 102, 5)
	q := geom.R2(0.2, 0.2, 1.4, 1.4)
	scratch := geom.Rect{Min: make(geom.Point, 2), Max: make(geom.Point, 2)}
	var sink uint64
	allocs := testing.AllocsPerRun(100, func() {
		v, err := MakeView(page)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < v.Count(); i++ {
			if v.IntersectsQuery(q, i) {
				v.EntryRectInto(i, &scratch)
				sink += v.EntryRef(i)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("view iteration allocated %.1f times per run", allocs)
	}
	_ = sink
}
