package node

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"strtree/internal/geom"
)

func sampleNode(level, dims, count int, rng *rand.Rand) *Node {
	n := &Node{Level: level, Dims: dims}
	for i := 0; i < count; i++ {
		lo := make(geom.Point, dims)
		hi := make(geom.Point, dims)
		for d := 0; d < dims; d++ {
			lo[d] = rng.Float64()
			hi[d] = lo[d] + rng.Float64()
		}
		n.Entries = append(n.Entries, Entry{
			Rect: geom.Rect{Min: lo, Max: hi},
			Ref:  rng.Uint64(),
		})
	}
	return n
}

func TestCapacity(t *testing.T) {
	// 2-D entries are 40 bytes; a 4 KiB page holds 102 of them, covering
	// the paper's fan-out of 100.
	if got := Capacity(4096, 2); got != 102 {
		t.Fatalf("Capacity(4096, 2) = %d, want 102", got)
	}
	if got := Capacity(4096, 3); got != 72 {
		t.Fatalf("Capacity(4096, 3) = %d, want 72", got)
	}
	if EntrySize(2) != 40 {
		t.Fatalf("EntrySize(2) = %d", EntrySize(2))
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range []int{2, 3, 5} {
		for _, count := range []int{0, 1, Capacity(4096, dims) / 2, Capacity(4096, dims)} {
			n := sampleNode(3, dims, count, rng)
			page := make([]byte, 4096)
			if err := Marshal(n, page); err != nil {
				t.Fatalf("dims=%d count=%d: marshal: %v", dims, count, err)
			}
			var got Node
			if err := Unmarshal(page, &got); err != nil {
				t.Fatalf("dims=%d count=%d: unmarshal: %v", dims, count, err)
			}
			if got.Level != n.Level || got.Dims != n.Dims || len(got.Entries) != len(n.Entries) {
				t.Fatalf("header mismatch: %+v vs %+v", got, n)
			}
			for i := range n.Entries {
				if !got.Entries[i].Rect.Equal(n.Entries[i].Rect) || got.Entries[i].Ref != n.Entries[i].Ref {
					t.Fatalf("entry %d mismatch", i)
				}
			}
		}
	}
}

func TestUnmarshalReusesStorage(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := sampleNode(0, 2, 60, rng)
	page := make([]byte, 4096)
	if err := Marshal(n, page); err != nil {
		t.Fatal(err)
	}
	var reuse Node
	if err := Unmarshal(page, &reuse); err != nil {
		t.Fatal(err)
	}
	first := &reuse.Entries[0]
	// Second unmarshal of a smaller node must reuse the slice.
	n2 := sampleNode(0, 2, 10, rng)
	if err := Marshal(n2, page); err != nil {
		t.Fatal(err)
	}
	if err := Unmarshal(page, &reuse); err != nil {
		t.Fatal(err)
	}
	if len(reuse.Entries) != 10 {
		t.Fatalf("len = %d", len(reuse.Entries))
	}
	if &reuse.Entries[0] != first {
		t.Fatal("entry storage was reallocated")
	}
}

func TestMarshalErrors(t *testing.T) {
	page := make([]byte, 4096)
	if err := Marshal(&Node{Level: 0, Dims: 0}, page); err == nil {
		t.Error("zero dims accepted")
	}
	if err := Marshal(&Node{Level: -1, Dims: 2}, page); err == nil {
		t.Error("negative level accepted")
	}
	// Entry dim mismatch.
	n := &Node{Level: 0, Dims: 2, Entries: []Entry{{Rect: geom.UnitCube(3)}}}
	if err := Marshal(n, page); err == nil {
		t.Error("entry dimension mismatch accepted")
	}
	// Page too small.
	big := sampleNode(0, 2, 100, rand.New(rand.NewSource(3)))
	if err := Marshal(big, make([]byte, 256)); err == nil {
		t.Error("overfull page accepted")
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := sampleNode(1, 2, 20, rng)
	good := make([]byte, 4096)
	if err := Marshal(n, good); err != nil {
		t.Fatal(err)
	}
	var out Node

	corrupt := func(mutate func(p []byte)) error {
		p := append([]byte(nil), good...)
		mutate(p)
		return Unmarshal(p, &out)
	}

	if err := corrupt(func(p []byte) { p[0] = 0 }); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}
	if err := corrupt(func(p []byte) { p[2] = 9 }); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: %v", err)
	}
	if err := corrupt(func(p []byte) { p[100] ^= 0xFF }); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("payload flip: %v", err)
	}
	if err := corrupt(func(p []byte) { p[6] = 0xFF; p[7] = 0xFF }); !errors.Is(err, ErrCorrupt) {
		t.Errorf("oversized count: %v", err)
	}
	if err := Unmarshal(make([]byte, 4), &out); !errors.Is(err, ErrCorrupt) {
		t.Errorf("short page: %v", err)
	}
}

func TestNodeMBR(t *testing.T) {
	n := &Node{Level: 0, Dims: 2, Entries: []Entry{
		{Rect: geom.R2(0.1, 0.2, 0.3, 0.4)},
		{Rect: geom.R2(0.5, 0.0, 0.9, 0.1)},
	}}
	if got := n.MBR(); !got.Equal(geom.R2(0.1, 0.0, 0.9, 0.4)) {
		t.Fatalf("MBR = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MBR of empty node did not panic")
		}
	}()
	(&Node{Dims: 2}).MBR()
}

func TestIsLeafAndReset(t *testing.T) {
	n := &Node{Level: 0, Dims: 2, Entries: make([]Entry, 5)}
	if !n.IsLeaf() {
		t.Error("level 0 not leaf")
	}
	n.Reset(2, 3)
	if n.IsLeaf() || n.Level != 2 || n.Dims != 3 || len(n.Entries) != 0 {
		t.Errorf("after Reset: %+v", n)
	}
}

func TestMarshalDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := sampleNode(2, 2, 30, rng)
	p1 := make([]byte, 4096)
	p2 := make([]byte, 4096)
	for i := range p2 {
		p2[i] = 0xCC // dirty page
	}
	if err := Marshal(n, p1); err != nil {
		t.Fatal(err)
	}
	if err := Marshal(n, p2); err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("pages differ at byte %d", i)
		}
	}
}

func TestPropRoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(level uint8, seed int64) bool {
		n := sampleNode(int(level), 2, rng.Intn(Capacity(2048, 2)+1), rand.New(rand.NewSource(seed)))
		page := make([]byte, 2048)
		if err := Marshal(n, page); err != nil {
			return false
		}
		var got Node
		if err := Unmarshal(page, &got); err != nil {
			return false
		}
		if got.Level != n.Level || len(got.Entries) != len(n.Entries) {
			return false
		}
		for i := range n.Entries {
			if !got.Entries[i].Rect.Equal(n.Entries[i].Rect) || got.Entries[i].Ref != n.Entries[i].Ref {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarshal100(b *testing.B) {
	b.ReportAllocs()
	n := sampleNode(0, 2, 100, rand.New(rand.NewSource(7)))
	page := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Marshal(n, page); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshal100(b *testing.B) {
	b.ReportAllocs()
	n := sampleNode(0, 2, 100, rand.New(rand.NewSource(8)))
	page := make([]byte, 4096)
	if err := Marshal(n, page); err != nil {
		b.Fatal(err)
	}
	var out Node
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Unmarshal(page, &out); err != nil {
			b.Fatal(err)
		}
	}
}
