// Package node defines the on-page layout of an R-tree node and its binary
// serialization. Exactly one node is stored per disk page (paper Section
// 2.1: "we assume that exactly one node fits per disk page").
//
// Each node stores up to n entries; each entry is a rectangle R and a
// pointer P (paper Figure 1's structure). At the leaf level (Level == 0) R
// is the bounding box of a data object and P an opaque object identifier;
// at internal levels R is the MBR of the subtree rooted at page P.
//
// Page layout (little endian):
//
//	offset 0  uint16  magic 0x5254 ("RT")
//	offset 2  uint8   format version (1)
//	offset 3  uint8   dimensionality k
//	offset 4  uint16  level (0 = leaf)
//	offset 6  uint16  entry count
//	offset 8  uint32  CRC-32 (IEEE) of the entry payload
//	offset 12 entries count * (2k float64 MBR, uint64 ref)
package node

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"strtree/internal/geom"
)

const (
	// Magic identifies a serialized R-tree node page.
	Magic uint16 = 0x5254
	// Version is the current page format version.
	Version uint8 = 1
	// HeaderSize is the fixed number of bytes before the entries.
	HeaderSize = 12
)

// Errors returned by Unmarshal.
var (
	ErrBadMagic    = errors.New("node: bad page magic")
	ErrBadVersion  = errors.New("node: unsupported page version")
	ErrBadChecksum = errors.New("node: page checksum mismatch")
	ErrCorrupt     = errors.New("node: corrupt page")
)

// Entry is one (rectangle, pointer) pair.
type Entry struct {
	Rect geom.Rect
	// Ref is the child page number for internal nodes and an opaque object
	// identifier for leaves.
	Ref uint64
}

// Node is the in-memory form of one page.
type Node struct {
	Level   int // 0 = leaf
	Dims    int
	Entries []Entry
}

// EntrySize returns the serialized size of one entry in k dimensions.
func EntrySize(dims int) int { return 16*dims + 8 }

// Capacity returns the maximum entries per node for a page size and
// dimensionality: the paper's n. A 4096-byte page in 2-D holds 102, so the
// paper's n = 100 fits with room to spare.
func Capacity(pageSize, dims int) int {
	return (pageSize - HeaderSize) / EntrySize(dims)
}

// IsLeaf reports whether the node is at the leaf level.
func (n *Node) IsLeaf() bool { return n.Level == 0 }

// MBR returns the minimum bounding rectangle of the node's entries, the
// rectangle stored for this node one level up.
func (n *Node) MBR() geom.Rect {
	if len(n.Entries) == 0 {
		//strlint:ignore panics documented contract: an empty node has no MBR, and builders never produce one
		panic("node: MBR of empty node")
	}
	m := n.Entries[0].Rect.Clone()
	for _, e := range n.Entries[1:] {
		m.UnionInPlace(e.Rect)
	}
	return m
}

// Reset clears the node for reuse, keeping allocated capacity.
func (n *Node) Reset(level, dims int) {
	n.Level = level
	n.Dims = dims
	n.Entries = n.Entries[:0]
}

// Marshal serializes the node into page, which must be large enough for the
// header plus all entries.
func Marshal(n *Node, page []byte) error {
	if n.Dims <= 0 || n.Dims > 255 {
		return fmt.Errorf("node: dims %d out of range", n.Dims)
	}
	if n.Level < 0 || n.Level > math.MaxUint16 {
		return fmt.Errorf("node: level %d out of range", n.Level)
	}
	if len(n.Entries) > math.MaxUint16 {
		return fmt.Errorf("node: %d entries exceed format limit", len(n.Entries))
	}
	need := HeaderSize + len(n.Entries)*EntrySize(n.Dims)
	if need > len(page) {
		return fmt.Errorf("node: %d entries need %d bytes, page is %d", len(n.Entries), need, len(page))
	}
	binary.LittleEndian.PutUint16(page[0:], Magic)
	page[2] = Version
	page[3] = uint8(n.Dims)
	binary.LittleEndian.PutUint16(page[4:], uint16(n.Level))
	binary.LittleEndian.PutUint16(page[6:], uint16(len(n.Entries)))
	off := HeaderSize
	for i := range n.Entries {
		e := &n.Entries[i]
		if e.Rect.Dim() != n.Dims {
			return fmt.Errorf("node: entry %d has dim %d, node has %d", i, e.Rect.Dim(), n.Dims)
		}
		for d := 0; d < n.Dims; d++ {
			binary.LittleEndian.PutUint64(page[off:], math.Float64bits(e.Rect.Min[d]))
			off += 8
			binary.LittleEndian.PutUint64(page[off:], math.Float64bits(e.Rect.Max[d]))
			off += 8
		}
		binary.LittleEndian.PutUint64(page[off:], e.Ref)
		off += 8
	}
	binary.LittleEndian.PutUint32(page[8:], crc32.ChecksumIEEE(page[HeaderSize:off]))
	// Zero the tail so pages are deterministic byte-for-byte.
	for i := off; i < len(page); i++ {
		page[i] = 0
	}
	return nil
}

// Unmarshal parses a page into n, reusing n's entry storage where possible.
func Unmarshal(page []byte, n *Node) error {
	if len(page) < HeaderSize {
		return fmt.Errorf("%w: page shorter than header", ErrCorrupt)
	}
	if binary.LittleEndian.Uint16(page[0:]) != Magic {
		return ErrBadMagic
	}
	if page[2] != Version {
		return fmt.Errorf("%w: version %d", ErrBadVersion, page[2])
	}
	dims := int(page[3])
	if dims == 0 {
		return fmt.Errorf("%w: zero dimensionality", ErrCorrupt)
	}
	level := int(binary.LittleEndian.Uint16(page[4:]))
	count := int(binary.LittleEndian.Uint16(page[6:]))
	end := HeaderSize + count*EntrySize(dims)
	if end > len(page) {
		return fmt.Errorf("%w: %d entries overflow the page", ErrCorrupt, count)
	}
	if got, want := crc32.ChecksumIEEE(page[HeaderSize:end]), binary.LittleEndian.Uint32(page[8:]); got != want {
		return fmt.Errorf("%w: crc %08x, header says %08x", ErrBadChecksum, got, want)
	}
	n.Level = level
	n.Dims = dims
	if cap(n.Entries) < count {
		n.Entries = make([]Entry, count)
	} else {
		n.Entries = n.Entries[:count]
	}
	off := HeaderSize
	for i := 0; i < count; i++ {
		e := &n.Entries[i]
		if e.Rect.Dim() != dims {
			e.Rect = geom.Rect{Min: make(geom.Point, dims), Max: make(geom.Point, dims)}
		}
		for d := 0; d < dims; d++ {
			e.Rect.Min[d] = math.Float64frombits(binary.LittleEndian.Uint64(page[off:]))
			off += 8
			e.Rect.Max[d] = math.Float64frombits(binary.LittleEndian.Uint64(page[off:]))
			off += 8
		}
		e.Ref = binary.LittleEndian.Uint64(page[off:])
		off += 8
		if !e.Rect.Valid() {
			return fmt.Errorf("%w: entry %d has invalid rectangle %v", ErrCorrupt, i, e.Rect)
		}
	}
	return nil
}
