package node

// MutableView is the write-side counterpart of View: a window over the
// serialized bytes of one page that patches individual entry slots — append,
// rect update, removal — and the header CRC in place, without the
// Unmarshal → mutate → Marshal round trip the slow write path takes. The
// dynamic-mutation fast paths in internal/rtree use it for the common case
// (a leaf append or an ancestor-MBR patch on a node that does not split);
// structural changes (splits, condensation, forced reinsertion) still
// materialize the node, where the full entry set is needed anyway.
//
// Byte determinism is the load-bearing contract: after any sequence of
// MutableView operations the page bytes are exactly what Marshal would have
// produced for the equivalent Node. The invariant verifier's RoundTrip check
// re-marshals every decoded node and compares byte-for-byte against the raw
// page, so any divergence — a stale CRC, a non-zeroed vacated slot — is a
// test failure, not a latent mismatch. That works because Marshal zeroes the
// page tail, so the bytes beyond the payload are zero on every page this
// package ever wrote; AppendEntry writes over zeros and RemoveEntry restores
// them.
//
// Lifetime is the same pin-scope contract as View: a MutableView aliases the
// page slice and is valid only while those bytes are stable — for a
// buffer-managed page, between the buffer FetchMut that write-pinned the
// frame and the matching ReleaseMut (see internal/buffer).

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"strtree/internal/geom"
)

// MutableView extends View with in-place mutation of entry slots. Construct
// with MakeMutableView; the zero value is invalid. Unlike View it uses a
// pointer receiver for mutators so the cached entry count stays coherent
// across operations on the same page.
type MutableView struct {
	View
}

// MakeMutableView validates page with exactly MakeView's checks (magic,
// version, dimensionality, count bounds, payload CRC, per-entry rectangle
// validity — same sentinel errors) and returns a mutable view over it.
func MakeMutableView(page []byte) (MutableView, error) {
	v, err := MakeView(page)
	if err != nil {
		return MutableView{}, err
	}
	return MutableView{View: v}, nil
}

// SlotCapacity returns the number of entry slots that physically fit on the
// page. The tree's configured node capacity may be smaller; AppendEntry only
// enforces the physical bound.
func (m *MutableView) SlotCapacity() int {
	return (len(m.page) - HeaderSize) / EntrySize(m.dims)
}

// AppendEntry writes (r, ref) into the next entry slot, bumps the header
// count, and extends the CRC incrementally over just the appended bytes —
// crc32.Update over the new payload suffix gives the same checksum a full
// recompute would, so the append costs O(entry), not O(page). r must have
// the page's dimensionality and be valid (no NaNs, Min <= Max per axis):
// the same gates Marshal and Unmarshal apply.
func (m *MutableView) AppendEntry(r geom.Rect, ref uint64) error {
	if r.Dim() != m.dims {
		return fmt.Errorf("node: append entry has dim %d, page has %d", r.Dim(), m.dims)
	}
	if !r.Valid() {
		return fmt.Errorf("%w: appending invalid rectangle %v", ErrCorrupt, r)
	}
	if m.count >= m.SlotCapacity() || m.count >= math.MaxUint16 {
		return fmt.Errorf("node: page full at %d entries", m.count)
	}
	off := m.entryOff(m.count)
	start := off
	for d := 0; d < m.dims; d++ {
		binary.LittleEndian.PutUint64(m.page[off:], math.Float64bits(r.Min[d]))
		off += 8
		binary.LittleEndian.PutUint64(m.page[off:], math.Float64bits(r.Max[d]))
		off += 8
	}
	binary.LittleEndian.PutUint64(m.page[off:], ref)
	off += 8
	crc := binary.LittleEndian.Uint32(m.page[8:])
	crc = crc32.Update(crc, crc32.IEEETable, m.page[start:off])
	binary.LittleEndian.PutUint32(m.page[8:], crc)
	m.count++
	binary.LittleEndian.PutUint16(m.page[6:], uint16(m.count))
	return nil
}

// SetEntryRect overwrites entry i's rectangle and recomputes the payload
// CRC. The ancestor-MBR patch of the mutation fast path: the child pointer
// stays, only the box grows or shrinks.
func (m *MutableView) SetEntryRect(i int, r geom.Rect) error {
	if i < 0 || i >= m.count {
		return fmt.Errorf("node: entry %d out of range [0, %d)", i, m.count)
	}
	if r.Dim() != m.dims {
		return fmt.Errorf("node: rectangle has dim %d, page has %d", r.Dim(), m.dims)
	}
	if !r.Valid() {
		return fmt.Errorf("%w: setting invalid rectangle %v", ErrCorrupt, r)
	}
	off := m.entryOff(i)
	for d := 0; d < m.dims; d++ {
		binary.LittleEndian.PutUint64(m.page[off:], math.Float64bits(r.Min[d]))
		off += 8
		binary.LittleEndian.PutUint64(m.page[off:], math.Float64bits(r.Max[d]))
		off += 8
	}
	m.rewriteCRC()
	return nil
}

// RemoveEntry deletes entry i, shifting later entries left one slot, zeroing
// the vacated slot (restoring Marshal's zeroed-tail invariant), decrementing
// the header count, and recomputing the payload CRC.
func (m *MutableView) RemoveEntry(i int) error {
	if i < 0 || i >= m.count {
		return fmt.Errorf("node: entry %d out of range [0, %d)", i, m.count)
	}
	es := EntrySize(m.dims)
	end := m.entryOff(m.count)
	off := m.entryOff(i)
	copy(m.page[off:end-es], m.page[off+es:end])
	for b := end - es; b < end; b++ {
		m.page[b] = 0
	}
	m.count--
	binary.LittleEndian.PutUint16(m.page[6:], uint16(m.count))
	m.rewriteCRC()
	return nil
}

// rewriteCRC recomputes the checksum over the full entry payload. Used by
// the mutators that cannot extend the CRC incrementally (rect patches and
// removals touch interior bytes).
func (m *MutableView) rewriteCRC() {
	end := m.entryOff(m.count)
	binary.LittleEndian.PutUint32(m.page[8:], crc32.ChecksumIEEE(m.page[HeaderSize:end]))
}
