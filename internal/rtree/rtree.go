// Package rtree implements the paged R-tree the STR paper evaluates: a
// Guttman R-tree whose nodes live one-per-disk-page behind an LRU buffer
// pool, with bottom-up bulk loading (the paper's "General Algorithm",
// Section 2.2), dynamic insertion and deletion (for the paper's
// motivation: comparing packed trees against one-at-a-time loading), and
// point/region intersection queries whose cost is measured in buffer
// misses.
//
// Mutations are not atomic across pages: an Insert or Delete that fails
// midway on an I/O error can leave the tree structurally inconsistent
// until rebuilt from its entries. That matches the paper's scope —
// packing and querying — not crash recovery; a deployment needing
// durability layers a write-ahead log beneath the pager.
package rtree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"

	"strtree/internal/buffer"
	"strtree/internal/geom"
	"strtree/internal/node"
	"strtree/internal/storage"
)

// SplitAlgorithm selects the node-splitting heuristic for dynamic inserts.
type SplitAlgorithm uint8

const (
	// SplitLinear is Guttman's linear-cost split.
	SplitLinear SplitAlgorithm = iota
	// SplitQuadratic is Guttman's quadratic-cost split, the variant his
	// paper recommends.
	SplitQuadratic
)

// String returns the split algorithm's name.
func (s SplitAlgorithm) String() string {
	switch s {
	case SplitLinear:
		return "linear"
	case SplitQuadratic:
		return "quadratic"
	case SplitRStar:
		return "rstar"
	default:
		return fmt.Sprintf("SplitAlgorithm(%d)", uint8(s))
	}
}

// Config controls tree creation.
type Config struct {
	// Dims is the dimensionality k of the indexed rectangles.
	Dims int
	// Capacity is the maximum entries per node, the paper's n (100 in all
	// its experiments). Zero means "as many as fit in a page".
	Capacity int
	// MinFill is the minimum entries per non-root node enforced by dynamic
	// deletes, Guttman's m <= M/2. Zero means 40% of Capacity.
	MinFill int
	// Split selects the overflow-split heuristic for dynamic inserts.
	Split SplitAlgorithm
	// ForcedReinsert enables the R*-tree's forced reinsertion: the first
	// time a node overflows at each level during one insertion, the 30%
	// of its entries farthest from the node center are reinserted instead
	// of splitting, which keeps MBRs tighter under dynamic load.
	ForcedReinsert bool
	// Workers bounds the goroutines bulk loads may use (write-behind page
	// emission; packers add their own sort parallelism on top). It is a
	// runtime knob, not persisted: trees reopened later default to 1.
	// Values < 1 mean 1. The packed tree bytes are identical for every
	// setting.
	Workers int
}

// Tree is a paged R-tree. All page access goes through the buffer manager,
// so its DiskReads counter is exactly the paper's number of disk accesses.
// A Tree is not safe for concurrent mutation. Concurrent Search calls on
// one Tree are safe while no mutation runs: the read path touches only
// immutable tree fields, per-query pooled traversal state, and the buffer
// manager, whose pin protocol keeps a fetched page's bytes stable until
// release (queries decode them in place through node.View inside that pin
// scope; write paths copy them out with node.Unmarshal). Use a sharded
// manager (buffer.Sharded) so concurrent readers
// do not serialize behind one buffer mutex, or independent Trees sharing a
// pager for fully separate buffer accounting.
type Tree struct {
	pool           buffer.Manager
	dims           int
	capacity       int
	minFill        int
	split          SplitAlgorithm
	forcedReinsert bool
	workers        int
	buildStats     BuildStats

	metaPage storage.PageID
	root     storage.PageID
	height   int // number of levels; 0 = empty, 1 = root is a leaf
	count    uint64
	free     []storage.PageID

	// reinsert carries forced-reinsertion state for the insertion in
	// flight (single-writer, like all mutations).
	reinsert struct {
		active  bool
		done    map[int]bool
		pending []orphan
	}

	// noInPlace disables the MutableView mutation fast paths (mutate.go);
	// the zero value keeps them on. Toggled by SetInPlaceMutation.
	noInPlace bool
	// mut is the reusable scratch of the mutation fast paths
	// (single-writer, like all mutations).
	mut struct {
		path   []mutStep
		r1, r2 geom.Rect
	}
	// mutStats counts in-place vs structural mutations. Atomic so a
	// serving layer can snapshot them while a writer runs; see
	// MutateStats.
	mutStats struct {
		inPlaceInserts    atomic.Uint64
		structuralInserts atomic.Uint64
		inPlaceDeletes    atomic.Uint64
		structuralDeletes atomic.Uint64
	}

	// Zero-copy read-path counters (traverse.go). Atomic because
	// concurrent Search calls are allowed; see ReadStats.
	readQueries atomic.Uint64
	viewPages   atomic.Uint64
	travAllocs  atomic.Uint64
}

const (
	metaMagic   uint32 = 0x4D525453 // "STRM"
	metaVersion byte   = 1
	metaFixed          = 28 // bytes before the free-page list
)

// Errors returned by tree operations.
var (
	ErrNotEmpty = errors.New("rtree: tree is not empty")
	ErrEmpty    = errors.New("rtree: tree is empty")
	ErrBadMeta  = errors.New("rtree: bad meta page")
)

// Create initializes a new empty tree on the pool's pager. The pager must
// be empty: the tree claims page 0 for its metadata. To place several
// trees on one pager (each with its own meta page), use CreateAt.
func Create(pool buffer.Manager, cfg Config) (*Tree, error) {
	if pool.Pager().NumPages() != 0 {
		return nil, fmt.Errorf("rtree: pager already holds %d pages", pool.Pager().NumPages())
	}
	return CreateAt(pool, cfg)
}

// CreateAt initializes a new empty tree whose meta page is freshly
// allocated from the pool's pager, wherever that lands. Callers (e.g. a
// multi-layer catalog) record the returned tree's MetaPage to reopen it
// later with OpenAt.
func CreateAt(pool buffer.Manager, cfg Config) (*Tree, error) {
	if cfg.Dims <= 0 || cfg.Dims > 255 {
		return nil, fmt.Errorf("rtree: invalid dims %d", cfg.Dims)
	}
	pageCap := node.Capacity(pool.Pager().PageSize(), cfg.Dims)
	if pageCap < 2 {
		return nil, fmt.Errorf("rtree: page size %d too small for %d-d nodes", pool.Pager().PageSize(), cfg.Dims)
	}
	if cfg.Capacity == 0 {
		cfg.Capacity = pageCap
	}
	if cfg.Capacity < 2 || cfg.Capacity > pageCap {
		return nil, fmt.Errorf("rtree: capacity %d out of range [2, %d]", cfg.Capacity, pageCap)
	}
	if cfg.MinFill == 0 {
		cfg.MinFill = cfg.Capacity * 2 / 5
		if cfg.MinFill < 1 {
			cfg.MinFill = 1
		}
	}
	if cfg.MinFill < 1 || cfg.MinFill > cfg.Capacity/2 {
		return nil, fmt.Errorf("rtree: min fill %d out of range [1, %d]", cfg.MinFill, cfg.Capacity/2)
	}
	f, err := pool.Create()
	if err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	t := &Tree{
		pool:           pool,
		dims:           cfg.Dims,
		capacity:       cfg.Capacity,
		minFill:        cfg.MinFill,
		split:          cfg.Split,
		forcedReinsert: cfg.ForcedReinsert,
		workers:        workers,
		metaPage:       f.ID(),
		root:           storage.NilPage,
	}
	t.encodeMeta(f.Data())
	f.MarkDirty()
	pool.Release(f)
	return t, nil
}

// Open loads an existing tree whose meta page is page 0 (the single-tree
// layout written by Create).
func Open(pool buffer.Manager) (*Tree, error) {
	return OpenAt(pool, 0)
}

// OpenAt loads an existing tree from the given meta page.
func OpenAt(pool buffer.Manager, metaPage storage.PageID) (*Tree, error) {
	if int(metaPage) >= pool.Pager().NumPages() {
		return nil, fmt.Errorf("%w: meta page %d out of range", ErrBadMeta, metaPage)
	}
	f, err := pool.Fetch(metaPage)
	if err != nil {
		return nil, err
	}
	defer pool.Release(f)
	t := &Tree{pool: pool, metaPage: metaPage, workers: 1}
	if err := t.decodeMeta(f.Data()); err != nil {
		return nil, err
	}
	return t, nil
}

// SetWorkers adjusts the bulk-load goroutine bound (values < 1 mean 1) —
// the runtime counterpart of Config.Workers for reopened trees. It must
// not be called while a bulk load runs.
func (t *Tree) SetWorkers(w int) {
	if w < 1 {
		w = 1
	}
	t.workers = w
}

// Workers returns the tree's bulk-load goroutine bound.
func (t *Tree) Workers() int { return t.workers }

// MetaPage returns the page holding the tree's metadata.
func (t *Tree) MetaPage() storage.PageID { return t.metaPage }

func (t *Tree) encodeMeta(page []byte) {
	binary.LittleEndian.PutUint32(page[0:], metaMagic)
	page[4] = metaVersion
	page[5] = byte(t.dims)
	binary.LittleEndian.PutUint16(page[6:], uint16(t.capacity))
	binary.LittleEndian.PutUint16(page[8:], uint16(t.minFill))
	binary.LittleEndian.PutUint16(page[10:], uint16(t.height))
	binary.LittleEndian.PutUint32(page[12:], uint32(t.root))
	binary.LittleEndian.PutUint64(page[16:], t.count)
	page[24] = byte(t.split)
	page[25] = 0
	if t.forcedReinsert {
		page[25] |= 1
	}
	// Persist as much of the free list as fits; overflowing ids are leaked,
	// which costs space but never correctness.
	maxFree := (len(page) - metaFixed) / 4
	n := len(t.free)
	if n > maxFree {
		n = maxFree
	}
	binary.LittleEndian.PutUint16(page[26:], uint16(n))
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(page[metaFixed+4*i:], uint32(t.free[i]))
	}
}

func (t *Tree) decodeMeta(page []byte) error {
	if len(page) < metaFixed || binary.LittleEndian.Uint32(page[0:]) != metaMagic {
		return ErrBadMeta
	}
	if page[4] != metaVersion {
		return fmt.Errorf("%w: version %d", ErrBadMeta, page[4])
	}
	t.dims = int(page[5])
	t.capacity = int(binary.LittleEndian.Uint16(page[6:]))
	t.minFill = int(binary.LittleEndian.Uint16(page[8:]))
	t.height = int(binary.LittleEndian.Uint16(page[10:]))
	t.root = storage.PageID(binary.LittleEndian.Uint32(page[12:]))
	t.count = binary.LittleEndian.Uint64(page[16:])
	t.split = SplitAlgorithm(page[24])
	t.forcedReinsert = page[25]&1 != 0
	nfree := int(binary.LittleEndian.Uint16(page[26:]))
	if metaFixed+4*nfree > len(page) {
		return fmt.Errorf("%w: free list overflows page", ErrBadMeta)
	}
	t.free = make([]storage.PageID, nfree)
	for i := range t.free {
		t.free[i] = storage.PageID(binary.LittleEndian.Uint32(page[metaFixed+4*i:]))
	}
	return nil
}

// writeMeta persists the in-memory metadata to the meta page.
func (t *Tree) writeMeta() error {
	f, err := t.pool.Fetch(t.metaPage)
	if err != nil {
		return err
	}
	t.encodeMeta(f.Data())
	f.MarkDirty()
	t.pool.Release(f)
	return nil
}

// Dims returns the tree's dimensionality.
func (t *Tree) Dims() int { return t.dims }

// Capacity returns the maximum entries per node (the paper's n).
func (t *Tree) Capacity() int { return t.capacity }

// MinFill returns the minimum entries per non-root node.
func (t *Tree) MinFill() int { return t.minFill }

// Height returns the number of levels (0 for an empty tree, 1 when the
// root is a leaf).
func (t *Tree) Height() int { return t.height }

// Len returns the number of data entries in the tree.
func (t *Tree) Len() int { return int(t.count) }

// Root returns the root page id, or storage.NilPage for an empty tree.
func (t *Tree) Root() storage.PageID { return t.root }

// Pool returns the tree's buffer manager, whose Stats carry the
// disk-access counts the experiments report.
func (t *Tree) Pool() buffer.Manager { return t.pool }

// Flush writes all buffered dirty pages and the metadata to the pager.
func (t *Tree) Flush() error {
	if err := t.writeMeta(); err != nil {
		return err
	}
	return t.pool.FlushAll()
}

// readNode loads the node stored on page id into dst.
func (t *Tree) readNode(id storage.PageID, dst *node.Node) error {
	f, err := t.pool.Fetch(id)
	if err != nil {
		return err
	}
	err = node.Unmarshal(f.Data(), dst)
	t.pool.Release(f)
	if err != nil {
		return fmt.Errorf("rtree: page %d: %w", id, err)
	}
	return nil
}

// writeNode serializes n onto page id.
func (t *Tree) writeNode(id storage.PageID, n *node.Node) error {
	f, err := t.pool.Fetch(id)
	if err != nil {
		return err
	}
	err = node.Marshal(n, f.Data())
	if err == nil {
		f.MarkDirty()
	}
	t.pool.Release(f)
	return err
}

// newPage allocates a page for a new node, recycling freed pages first.
func (t *Tree) newPage() (storage.PageID, error) {
	if n := len(t.free); n > 0 {
		id := t.free[n-1]
		t.free = t.free[:n-1]
		return id, nil
	}
	f, err := t.pool.Create()
	if err != nil {
		return storage.NilPage, err
	}
	id := f.ID()
	t.pool.Release(f)
	return id, nil
}

// freePage returns a page to the allocator.
func (t *Tree) freePage(id storage.PageID) {
	t.free = append(t.free, id)
}

// FreePages returns a copy of the free-page list: pages released by
// deletes and splits-gone-wrong, awaiting recycling by newPage. The
// invariant verifier asserts it is disjoint from the live tree.
func (t *Tree) FreePages() []storage.PageID {
	out := make([]storage.PageID, len(t.free))
	copy(out, t.free)
	return out
}

// checkEntry validates a data entry before insertion.
func (t *Tree) checkEntry(r geom.Rect) error {
	if r.Dim() != t.dims {
		return fmt.Errorf("rtree: rectangle dimension %d, tree dimension %d", r.Dim(), t.dims)
	}
	if !r.Valid() {
		return fmt.Errorf("rtree: invalid rectangle %v", r)
	}
	return nil
}

// Walk visits every node in the tree in depth-first order, passing the page
// id and decoded node. Returning false from fn stops the walk. The walk
// goes through the buffer pool and therefore counts as accesses; callers
// measuring queries should reset pool stats afterwards.
func (t *Tree) Walk(fn func(id storage.PageID, n *node.Node) bool) error {
	if t.height == 0 {
		return nil
	}
	stop := false
	return t.walk(t.root, fn, &stop)
}

func (t *Tree) walk(id storage.PageID, fn func(storage.PageID, *node.Node) bool, stop *bool) error {
	var n node.Node
	if err := t.readNode(id, &n); err != nil {
		return err
	}
	if !fn(id, &n) {
		*stop = true
		return nil
	}
	if n.IsLeaf() {
		return nil
	}
	for _, e := range n.Entries {
		if *stop {
			return nil
		}
		if err := t.walk(storage.PageID(e.Ref), fn, stop); err != nil {
			return err
		}
	}
	return nil
}

// Bounds returns the MBR of the whole tree (the root node's MBR) and
// whether the tree is non-empty.
func (t *Tree) Bounds() (geom.Rect, bool, error) {
	if t.height == 0 {
		return geom.Rect{}, false, nil
	}
	var root node.Node
	if err := t.readNode(t.root, &root); err != nil {
		return geom.Rect{}, false, err
	}
	if len(root.Entries) == 0 {
		return geom.Rect{}, false, nil
	}
	return root.MBR(), true, nil
}

// NumNodes counts the pages occupied by tree nodes (excluding the meta
// page). It walks the tree.
func (t *Tree) NumNodes() (int, error) {
	n := 0
	err := t.Walk(func(storage.PageID, *node.Node) bool { n++; return true })
	return n, err
}

// Utilization returns the average leaf fill fraction: data entries
// divided by leaf slots. Packed trees sit at ~1.0 (the paper's
// near-100% space utilization); Guttman-loaded trees around 0.65-0.70.
func (t *Tree) Utilization() (float64, error) {
	if t.height == 0 {
		return 0, nil
	}
	leaves := 0
	err := t.Walk(func(_ storage.PageID, n *node.Node) bool {
		if n.IsLeaf() {
			leaves++
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	return float64(t.count) / float64(leaves*t.capacity), nil
}

// NodesPerLevel returns the node count at each level, root first. The
// paper's Table 1 derives buffer percentages from these totals.
func (t *Tree) NodesPerLevel() ([]int, error) {
	if t.height == 0 {
		return nil, nil
	}
	counts := make([]int, t.height)
	err := t.Walk(func(_ storage.PageID, n *node.Node) bool {
		counts[t.height-1-n.Level]++
		return true
	})
	return counts, err
}
