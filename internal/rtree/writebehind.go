package rtree

import (
	"sync"
	"sync/atomic"
	"time"

	"strtree/internal/node"
	"strtree/internal/storage"
)

// writeBehindQueue is how many finished nodes may wait for the background
// writer before packing blocks. At fan-out 100 and a 4 KiB page this is
// a few hundred KiB of queued entries — enough to ride out a slow write
// without letting memory grow with the tree.
const writeBehindQueue = 64

// pageJob is one finished node waiting to be serialized onto its page.
// Ownership of n.Entries transfers to the writer with the job: the
// producer must not touch the slice afterwards (it computes the node MBR
// before emitting for exactly this reason).
type pageJob struct {
	id      storage.PageID
	n       node.Node
	recycle bool // hand n.Entries back through the free list after writing
}

// pageWriter emits finished nodes during a bulk load. With t.workers > 1
// it serializes and writes pages on a background goroutine behind a
// bounded queue, so packing the next node overlaps page I/O; otherwise it
// writes inline. Errors are first-error-wins: after a write fails,
// remaining jobs are drained without touching the pager and close()
// returns the first failure.
//
// The split of tree state is strict: the build goroutine owns page
// allocation (t.newPage, t.free) and tree metadata; the writer goroutine
// only calls t.writeNode, which goes through the buffer manager's own
// locking. The jobs channel provides the happens-before edge between
// filling a node's entries and the writer reading them.
type pageWriter struct {
	t     *Tree
	async bool

	jobs chan pageJob
	free chan []node.Entry
	wg   sync.WaitGroup

	mu     sync.Mutex
	err    error // guarded by mu
	closed bool  // guarded by mu

	pages int
	// queuePeak is the deepest the job queue got during the build — the
	// observability signal for "is the writer keeping up or is packing
	// about to block". Written and read from the build goroutine only.
	queuePeak  int
	writeNanos atomic.Int64
}

func (t *Tree) newPageWriter() *pageWriter {
	w := &pageWriter{t: t, async: t.workers > 1}
	if w.async {
		w.jobs = make(chan pageJob, writeBehindQueue)
		w.free = make(chan []node.Entry, writeBehindQueue+1)
		w.wg.Add(1)
		go w.run()
	}
	return w
}

func (w *pageWriter) fail(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.mu.Unlock()
}

func (w *pageWriter) firstErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// run drains the job queue on the background goroutine.
func (w *pageWriter) run() {
	defer w.wg.Done()
	for job := range w.jobs {
		if w.firstErr() == nil {
			t0 := time.Now()
			if err := w.t.writeNode(job.id, &job.n); err != nil {
				w.fail(err)
			}
			w.writeNanos.Add(int64(time.Since(t0)))
		}
		if job.recycle {
			select {
			case w.free <- job.n.Entries[:0]:
			default:
			}
		}
	}
}

// emit hands a finished node to the writer. In async mode ownership of
// n.Entries transfers with the call; the producer must have read
// everything it needs (the MBR) beforehand and must not reuse the slice
// except via recycleOrNew.
func (w *pageWriter) emit(id storage.PageID, n *node.Node, recycle bool) error {
	w.pages++
	if !w.async {
		t0 := time.Now()
		err := w.t.writeNode(id, n)
		w.writeNanos.Add(int64(time.Since(t0)))
		return err
	}
	if err := w.firstErr(); err != nil {
		return err
	}
	// Depth including the job about to enqueue; len is a momentary reading
	// (the writer drains concurrently) but a high-water mark of it is the
	// right "was the queue ever near blocking" signal.
	if d := len(w.jobs) + 1; d > w.queuePeak {
		w.queuePeak = d
	}
	w.jobs <- pageJob{id: id, n: node.Node{Level: n.Level, Dims: n.Dims, Entries: n.Entries}, recycle: recycle}
	return nil
}

// recycleOrNew returns an entry buffer for the producer's next node. In
// sync mode the write has already completed, so the old buffer is simply
// truncated; in async mode the old buffer now belongs to the writer, so a
// recycled buffer (or a fresh one) comes back instead.
func (w *pageWriter) recycleOrNew(old []node.Entry, capHint int) []node.Entry {
	if !w.async {
		return old[:0]
	}
	select {
	case b := <-w.free:
		return b
	default:
		return make([]node.Entry, 0, capHint)
	}
}

// close drains the queue, stops the background writer and returns the
// first write error. It is idempotent, so bulk loads both defer it (for
// early error returns) and call it explicitly before flushing.
func (w *pageWriter) close() error {
	w.mu.Lock()
	already := w.closed
	w.closed = true
	w.mu.Unlock()
	if w.async && !already {
		close(w.jobs)
		w.wg.Wait()
	}
	return w.firstErr()
}

// writeTime reports the cumulative wall time spent serializing and
// writing pages. In async mode this overlaps the ordering time rather
// than adding to it.
func (w *pageWriter) writeTime() time.Duration {
	return time.Duration(w.writeNanos.Load())
}
