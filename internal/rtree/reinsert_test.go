package rtree

import (
	"testing"

	"strtree/internal/buffer"
	"strtree/internal/geom"
	"strtree/internal/node"
	"strtree/internal/storage"
)

func TestEvictFarthest(t *testing.T) {
	n := &node.Node{Level: 0, Dims: 2, Entries: []node.Entry{
		{Rect: geom.R2(0.49, 0.49, 0.51, 0.51), Ref: 1}, // center
		{Rect: geom.R2(0.48, 0.48, 0.52, 0.52), Ref: 2}, // center
		{Rect: geom.R2(0.0, 0.0, 0.02, 0.02), Ref: 3},   // far corner
		{Rect: geom.R2(0.97, 0.97, 1.0, 1.0), Ref: 4},   // far corner
	}}
	evicted := evictFarthest(n, 2)
	if len(evicted) != 2 || len(n.Entries) != 2 {
		t.Fatalf("evicted %d, kept %d", len(evicted), len(n.Entries))
	}
	for _, e := range evicted {
		if e.Ref != 3 && e.Ref != 4 {
			t.Fatalf("evicted central entry %d", e.Ref)
		}
	}
	// At least one entry is always evicted.
	if got := evictFarthest(n, 0); len(got) != 1 {
		t.Fatalf("zero-count eviction returned %d", len(got))
	}
}

func TestForcedReinsertInsertCorrect(t *testing.T) {
	pool := buffer.NewPool(storage.NewMemPager(4096), 512)
	tr, err := Create(pool, Config{Dims: 2, Capacity: 10, Split: SplitRStar, ForcedReinsert: true})
	if err != nil {
		t.Fatal(err)
	}
	entries := randRects(1500, 85)
	for _, e := range entries {
		if err := tr.Insert(e.Rect, e.Ref); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 1500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	checkSearchAgainstBrute(t, tr, entries, 86)
}

func TestForcedReinsertImprovesQuality(t *testing.T) {
	entries := randRects(3000, 87)
	leafArea := func(cfg Config) float64 {
		pool := buffer.NewPool(storage.NewMemPager(4096), 1024)
		tr, err := Create(pool, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if err := tr.Insert(e.Rect, e.Ref); err != nil {
				t.Fatal(err)
			}
		}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		area := 0.0
		if err := tr.Walk(func(_ storage.PageID, n *node.Node) bool {
			if n.IsLeaf() {
				area += n.MBR().Area()
			}
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return area
	}
	plain := leafArea(Config{Dims: 2, Capacity: 16, Split: SplitRStar})
	reins := leafArea(Config{Dims: 2, Capacity: 16, Split: SplitRStar, ForcedReinsert: true})
	if reins > plain*1.10 {
		t.Fatalf("forced reinsert leaf area %.4f much worse than plain %.4f", reins, plain)
	}
}

func TestForcedReinsertPersists(t *testing.T) {
	pool := buffer.NewPool(storage.NewMemPager(4096), 64)
	tr, err := Create(pool, Config{Dims: 2, Capacity: 8, ForcedReinsert: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(geom.R2(0, 0, 0.1, 0.1), 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(pool)
	if err != nil {
		t.Fatal(err)
	}
	if !re.forcedReinsert {
		t.Fatal("forcedReinsert flag lost across reopen")
	}
}

func TestForcedReinsertWithDeletes(t *testing.T) {
	pool := buffer.NewPool(storage.NewMemPager(4096), 512)
	tr, err := Create(pool, Config{Dims: 2, Capacity: 8, Split: SplitRStar, ForcedReinsert: true})
	if err != nil {
		t.Fatal(err)
	}
	entries := randRects(500, 88)
	for _, e := range entries {
		if err := tr.Insert(e.Rect, e.Ref); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range entries[:250] {
		ok, err := tr.Delete(e.Rect, e.Ref)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("ref %d missing", e.Ref)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	checkSearchAgainstBrute(t, tr, entries[250:], 89)
}
