package rtree

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"strtree/internal/buffer"
	"strtree/internal/geom"
	"strtree/internal/node"
	"strtree/internal/storage"
)

// xSortOrderer is a minimal packing order (sort by center x) sufficient to
// exercise BulkLoad; the real algorithms live in internal/pack.
type xSortOrderer struct{}

func (xSortOrderer) Name() string { return "xsort" }
func (xSortOrderer) Order(entries []node.Entry, n, level int) {
	sort.Slice(entries, func(i, j int) bool {
		return entries[i].Rect.CenterAxis(0) < entries[j].Rect.CenterAxis(0)
	})
}

func newTree(t testing.TB, capacity int) *Tree {
	t.Helper()
	pool := buffer.NewPool(storage.NewMemPager(4096), 256)
	tr, err := Create(pool, Config{Dims: 2, Capacity: capacity})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func randRects(n int, seed int64) []node.Entry {
	rng := rand.New(rand.NewSource(seed))
	out := make([]node.Entry, n)
	for i := range out {
		x, y := rng.Float64(), rng.Float64()
		w, h := rng.Float64()*0.02, rng.Float64()*0.02
		r, _ := geom.NewRect(geom.Pt2(x, y), geom.Pt2(x+w, y+h))
		out[i] = node.Entry{Rect: r, Ref: uint64(i)}
	}
	return out
}

// bruteSearch returns the refs of entries intersecting q.
func bruteSearch(entries []node.Entry, q geom.Rect) map[uint64]bool {
	out := map[uint64]bool{}
	for _, e := range entries {
		if q.Intersects(e.Rect) {
			out[e.Ref] = true
		}
	}
	return out
}

// treeSearch returns the refs the tree reports for q.
func treeSearch(t *testing.T, tr *Tree, q geom.Rect) map[uint64]bool {
	t.Helper()
	out := map[uint64]bool{}
	if err := tr.Search(q, func(e node.Entry) bool {
		out[e.Ref] = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func checkSearchAgainstBrute(t *testing.T, tr *Tree, entries []node.Entry, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 50; i++ {
		x, y := rng.Float64(), rng.Float64()
		e := rng.Float64() * 0.3
		q, _ := geom.NewRect(geom.Pt2(x, y), geom.UnitSquare().Clamp(geom.Pt2(x+e, y+e)))
		want := bruteSearch(entries, q)
		got := treeSearch(t, tr, q)
		if len(got) != len(want) {
			t.Fatalf("query %v: got %d results, want %d", q, len(got), len(want))
		}
		for ref := range want {
			if !got[ref] {
				t.Fatalf("query %v: missing ref %d", q, ref)
			}
		}
	}
}

func TestCreateValidation(t *testing.T) {
	mk := func() *buffer.Pool { return buffer.NewPool(storage.NewMemPager(4096), 16) }
	if _, err := Create(mk(), Config{Dims: 0}); err == nil {
		t.Error("dims 0 accepted")
	}
	if _, err := Create(mk(), Config{Dims: 2, Capacity: 1}); err == nil {
		t.Error("capacity 1 accepted")
	}
	if _, err := Create(mk(), Config{Dims: 2, Capacity: 500}); err == nil {
		t.Error("capacity beyond page accepted")
	}
	if _, err := Create(mk(), Config{Dims: 2, Capacity: 100, MinFill: 90}); err == nil {
		t.Error("minFill > capacity/2 accepted")
	}
	// Defaults.
	tr, err := Create(mk(), Config{Dims: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Capacity() != 102 || tr.MinFill() != 40 {
		t.Errorf("defaults: capacity %d minFill %d", tr.Capacity(), tr.MinFill())
	}
	// Non-empty pager rejected.
	pool := mk()
	if _, err := pool.Create(); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(pool, Config{Dims: 2}); err == nil {
		t.Error("non-empty pager accepted")
	}
}

func TestBulkLoadSmall(t *testing.T) {
	tr := newTree(t, 4)
	entries := randRects(37, 1)
	if err := tr.BulkLoad(append([]node.Entry(nil), entries...), xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 37 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// 37 items, cap 4: 10 leaves, 3 internal, 1 root -> height 3.
	if tr.Height() != 3 {
		t.Fatalf("Height = %d", tr.Height())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	checkSearchAgainstBrute(t, tr, entries, 2)
}

func TestBulkLoadEmptyAndSingle(t *testing.T) {
	tr := newTree(t, 4)
	if err := tr.BulkLoad(nil, xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	if tr.Height() != 0 || tr.Len() != 0 {
		t.Fatalf("empty load: height %d len %d", tr.Height(), tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := treeSearch(t, tr, geom.UnitSquare()); len(got) != 0 {
		t.Fatal("empty tree returned results")
	}

	tr2 := newTree(t, 4)
	one := randRects(1, 3)
	if err := tr2.BulkLoad(append([]node.Entry(nil), one...), xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	if tr2.Height() != 1 || tr2.Len() != 1 {
		t.Fatalf("single load: height %d len %d", tr2.Height(), tr2.Len())
	}
	if err := tr2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadRejectsNonEmpty(t *testing.T) {
	tr := newTree(t, 4)
	if err := tr.Insert(geom.R2(0, 0, 0.1, 0.1), 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.BulkLoad(randRects(5, 4), xSortOrderer{}); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("err = %v", err)
	}
}

func TestBulkLoadRejectsBadEntries(t *testing.T) {
	tr := newTree(t, 4)
	bad := []node.Entry{{Rect: geom.UnitCube(3), Ref: 1}}
	if err := tr.BulkLoad(bad, xSortOrderer{}); err == nil {
		t.Fatal("3-d entry accepted by 2-d tree")
	}
}

func TestBulkLoadUtilization(t *testing.T) {
	// Packed trees fill every node (except possibly the last per level) to
	// capacity: near-100% utilization, one of the paper's headline claims.
	tr := newTree(t, 10)
	entries := randRects(1000, 5)
	if err := tr.BulkLoad(entries, xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	perLevel, err := tr.NodesPerLevel()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 10, 100} // root, internal, leaves
	if len(perLevel) != 3 {
		t.Fatalf("levels = %v", perLevel)
	}
	for i := range want {
		if perLevel[i] != want[i] {
			t.Fatalf("NodesPerLevel = %v, want %v", perLevel, want)
		}
	}
	full := 0
	if err := tr.Walk(func(_ storage.PageID, n *node.Node) bool {
		if len(n.Entries) == 10 {
			full++
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if full != 111 {
		t.Fatalf("only %d of 111 nodes are full", full)
	}
}

func TestInsertSearchMatchesBrute(t *testing.T) {
	for _, split := range []SplitAlgorithm{SplitLinear, SplitQuadratic} {
		t.Run(split.String(), func(t *testing.T) {
			pool := buffer.NewPool(storage.NewMemPager(4096), 256)
			tr, err := Create(pool, Config{Dims: 2, Capacity: 8, Split: split})
			if err != nil {
				t.Fatal(err)
			}
			entries := randRects(500, 6)
			for _, e := range entries {
				if err := tr.Insert(e.Rect, e.Ref); err != nil {
					t.Fatal(err)
				}
			}
			if tr.Len() != 500 {
				t.Fatalf("Len = %d", tr.Len())
			}
			if tr.Height() < 3 {
				t.Fatalf("height = %d, expected >= 3 with capacity 8", tr.Height())
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			checkSearchAgainstBrute(t, tr, entries, 7)
		})
	}
}

func TestInsertDimensionMismatch(t *testing.T) {
	tr := newTree(t, 4)
	if err := tr.Insert(geom.UnitCube(3), 1); err == nil {
		t.Fatal("3-d insert accepted")
	}
	if err := tr.Insert(geom.Rect{Min: geom.Pt2(1, 0), Max: geom.Pt2(0, 1)}, 1); err == nil {
		t.Fatal("invalid rect accepted")
	}
}

func TestDeleteHalf(t *testing.T) {
	tr := newTree(t, 8)
	entries := randRects(400, 8)
	if err := tr.BulkLoad(append([]node.Entry(nil), entries...), xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	for i, e := range entries {
		if i%2 == 0 {
			continue
		}
		ok, err := tr.Delete(e.Rect, e.Ref)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("entry %d not found for deletion", i)
		}
	}
	if tr.Len() != 200 {
		t.Fatalf("Len after deletes = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	var kept []node.Entry
	for i, e := range entries {
		if i%2 == 0 {
			kept = append(kept, e)
		}
	}
	checkSearchAgainstBrute(t, tr, kept, 9)

	// Deleting something absent reports false.
	ok, err := tr.Delete(geom.R2(0.9999, 0.9999, 1, 1), 424242)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("phantom delete succeeded")
	}
}

func TestDeleteAllEmptiesTree(t *testing.T) {
	tr := newTree(t, 4)
	entries := randRects(64, 10)
	for _, e := range entries {
		if err := tr.Insert(e.Rect, e.Ref); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range entries {
		ok, err := tr.Delete(e.Rect, e.Ref)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("ref %d not found", e.Ref)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("after deleting ref %d: %v", e.Ref, err)
		}
	}
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Fatalf("len %d height %d after deleting all", tr.Len(), tr.Height())
	}
	// Tree is reusable after emptying.
	if err := tr.Insert(entries[0].Rect, entries[0].Ref); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestMixedInsertDeleteAgainstReference(t *testing.T) {
	pool := buffer.NewPool(storage.NewMemPager(4096), 256)
	tr, err := Create(pool, Config{Dims: 2, Capacity: 6, Split: SplitQuadratic})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	live := map[uint64]geom.Rect{}
	nextRef := uint64(0)
	for op := 0; op < 2000; op++ {
		if len(live) == 0 || rng.Intn(3) > 0 {
			x, y := rng.Float64(), rng.Float64()
			r, _ := geom.NewRect(geom.Pt2(x, y), geom.Pt2(x+rng.Float64()*0.05, y+rng.Float64()*0.05))
			if err := tr.Insert(r, nextRef); err != nil {
				t.Fatal(err)
			}
			live[nextRef] = r
			nextRef++
		} else {
			// Delete a random live entry.
			var ref uint64
			for ref = range live {
				break
			}
			ok, err := tr.Delete(live[ref], ref)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("live ref %d not found", ref)
			}
			delete(live, ref)
		}
		if op%100 == 99 {
			if err := tr.Validate(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			if tr.Len() != len(live) {
				t.Fatalf("op %d: Len %d, want %d", op, tr.Len(), len(live))
			}
		}
	}
	// Final full check.
	var entries []node.Entry
	for ref, r := range live {
		entries = append(entries, node.Entry{Rect: r, Ref: ref})
	}
	checkSearchAgainstBrute(t, tr, entries, 12)
}

// TestDeleteDeepCollapseStress hammers a skinny tree (capacity 3,
// min fill 1) whose root collapses by multiple levels at once, which is
// the only path where a dissolved orphan subtree can sit above the new
// root and must itself be dissolved during reinsertion.
func TestDeleteDeepCollapseStress(t *testing.T) {
	pool := buffer.NewPool(storage.NewMemPager(4096), 512)
	tr, err := Create(pool, Config{Dims: 2, Capacity: 3, MinFill: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(321))
	live := map[uint64]geom.Rect{}
	next := uint64(0)
	for round := 0; round < 6; round++ {
		// Grow tall.
		for i := 0; i < 120; i++ {
			x, y := rng.Float64(), rng.Float64()
			r := geom.R2(x, y, x, y)
			if err := tr.Insert(r, next); err != nil {
				t.Fatal(err)
			}
			live[next] = r
			next++
		}
		// Shrink almost to nothing, forcing repeated multi-level
		// collapses and orphan cascades.
		for len(live) > 3 {
			var ref uint64
			for ref = range live {
				break
			}
			ok, err := tr.Delete(live[ref], ref)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("live ref %d not found (entries lost)", ref)
			}
			delete(live, ref)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if tr.Len() != len(live) {
			t.Fatalf("round %d: Len %d, model %d", round, tr.Len(), len(live))
		}
		// Every survivor findable.
		for ref, r := range live {
			found := false
			if err := tr.Search(r, func(e node.Entry) bool {
				found = found || e.Ref == ref
				return !found
			}); err != nil {
				t.Fatal(err)
			}
			if !found {
				t.Fatalf("round %d: survivor %d unfindable", round, ref)
			}
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tr := newTree(t, 4)
	if err := tr.BulkLoad(randRects(100, 13), xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := tr.Search(geom.UnitSquare(), func(node.Entry) bool {
		n++
		return n < 5
	}); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("early stop visited %d entries", n)
	}
}

func TestCountAndAll(t *testing.T) {
	tr := newTree(t, 8)
	entries := randRects(200, 14)
	if err := tr.BulkLoad(append([]node.Entry(nil), entries...), xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	q := geom.R2(0.2, 0.2, 0.6, 0.6)
	want := len(bruteSearch(entries, q))
	got, err := tr.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
	all, err := tr.All(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != want {
		t.Fatalf("All returned %d, want %d", len(all), want)
	}
}

func TestSearchPoint(t *testing.T) {
	tr := newTree(t, 4)
	if err := tr.Insert(geom.R2(0.2, 0.2, 0.4, 0.4), 7); err != nil {
		t.Fatal(err)
	}
	hits := 0
	if err := tr.SearchPoint(geom.Pt2(0.3, 0.3), func(e node.Entry) bool {
		hits++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if hits != 1 {
		t.Fatalf("point query hits = %d", hits)
	}
	if err := tr.SearchPoint(geom.Pt2(0.9, 0.9), func(node.Entry) bool {
		t.Fatal("false positive")
		return true
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tree.db")
	pg, err := storage.CreateFilePager(path, 4096)
	if err != nil {
		t.Fatal(err)
	}
	pool := buffer.NewPool(pg, 64)
	tr, err := Create(pool, Config{Dims: 2, Capacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	entries := randRects(300, 15)
	if err := tr.BulkLoad(append([]node.Entry(nil), entries...), xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := pg.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := pg.Close(); err != nil {
		t.Fatal(err)
	}

	pg2, err := storage.OpenFilePager(path, 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer pg2.Close()
	tr2, err := Open(buffer.NewPool(pg2, 64))
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != 300 || tr2.Capacity() != 16 || tr2.Dims() != 2 {
		t.Fatalf("reopened: len %d cap %d dims %d", tr2.Len(), tr2.Capacity(), tr2.Dims())
	}
	if err := tr2.Validate(); err != nil {
		t.Fatal(err)
	}
	checkSearchAgainstBrute(t, tr2, entries, 16)
}

func TestOpenRejectsGarbage(t *testing.T) {
	pool := buffer.NewPool(storage.NewMemPager(4096), 8)
	if _, err := Open(pool); !errors.Is(err, ErrBadMeta) {
		t.Fatalf("open empty pager: %v", err)
	}
	f, err := pool.Create()
	if err != nil {
		t.Fatal(err)
	}
	copy(f.Data(), []byte("not a tree"))
	pool.Release(f)
	if _, err := Open(pool); !errors.Is(err, ErrBadMeta) {
		t.Fatalf("open garbage: %v", err)
	}
}

func TestDiskAccessCounting(t *testing.T) {
	// A cold point query on a packed tree of height 3 where exactly one
	// path matches must read exactly 3 pages; re-running it warm must read
	// zero.
	pool := buffer.NewPool(storage.NewMemPager(4096), 128)
	tr, err := Create(pool, Config{Dims: 2, Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	// 64 tiny, well-separated boxes on a 8x8 grid.
	var entries []node.Entry
	for i := 0; i < 64; i++ {
		x := float64(i%8) / 8
		y := float64(i/8) / 8
		entries = append(entries, node.Entry{
			Rect: geom.R2(x+0.01, y+0.01, x+0.02, y+0.02),
			Ref:  uint64(i),
		})
	}
	if err := tr.BulkLoad(entries, xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	if tr.Height() != 3 {
		t.Fatalf("height = %d", tr.Height())
	}
	if err := pool.Invalidate(); err != nil {
		t.Fatal(err)
	}
	pool.ResetStats()
	if _, err := tr.Count(geom.R2(0.015, 0.015, 0.016, 0.016)); err != nil {
		t.Fatal(err)
	}
	cold := pool.Stats().DiskReads
	if cold < 3 || cold > 4 {
		t.Fatalf("cold accesses = %d, want 3 (one path) or 4 (one MBR overlap)", cold)
	}
	pool.ResetStats()
	if _, err := tr.Count(geom.R2(0.015, 0.015, 0.016, 0.016)); err != nil {
		t.Fatal(err)
	}
	if warm := pool.Stats().DiskReads; warm != 0 {
		t.Fatalf("warm accesses = %d, want 0", warm)
	}
}

func TestWalkStops(t *testing.T) {
	tr := newTree(t, 4)
	if err := tr.BulkLoad(randRects(100, 17), xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	visits := 0
	if err := tr.Walk(func(storage.PageID, *node.Node) bool {
		visits++
		return visits < 3
	}); err != nil {
		t.Fatal(err)
	}
	if visits != 3 {
		t.Fatalf("walk visited %d nodes after stop", visits)
	}
}

func TestUtilization(t *testing.T) {
	tr := newTree(t, 10)
	if u, err := tr.Utilization(); err != nil || u != 0 {
		t.Fatalf("empty tree utilization %g err %v", u, err)
	}
	if err := tr.BulkLoad(randRects(1000, 90), xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	u, err := tr.Utilization()
	if err != nil {
		t.Fatal(err)
	}
	if u != 1.0 {
		t.Fatalf("packed utilization = %g, want 1.0", u)
	}
	// Dynamic tree sits lower.
	dyn := newTree(t, 10)
	for _, e := range randRects(1000, 91) {
		if err := dyn.Insert(e.Rect, e.Ref); err != nil {
			t.Fatal(err)
		}
	}
	du, err := dyn.Utilization()
	if err != nil {
		t.Fatal(err)
	}
	if du >= 0.95 || du < 0.4 {
		t.Fatalf("dynamic utilization = %g, expected mid-range", du)
	}
}

func TestBoundsInternal(t *testing.T) {
	tr := newTree(t, 4)
	if _, ok, err := tr.Bounds(); err != nil || ok {
		t.Fatal("empty tree has bounds")
	}
	entries := randRects(50, 92)
	if err := tr.BulkLoad(append([]node.Entry(nil), entries...), xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	b, ok, err := tr.Bounds()
	if err != nil || !ok {
		t.Fatalf("bounds: %v %v", ok, err)
	}
	var rects []geom.Rect
	for _, e := range entries {
		rects = append(rects, e.Rect)
	}
	if want := geom.MBR(rects); !b.Equal(want) {
		t.Fatalf("bounds %v, want %v", b, want)
	}
}

func TestNumNodes(t *testing.T) {
	tr := newTree(t, 10)
	if err := tr.BulkLoad(randRects(1000, 18), xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	n, err := tr.NumNodes()
	if err != nil {
		t.Fatal(err)
	}
	if n != 111 {
		t.Fatalf("NumNodes = %d, want 111", n)
	}
}

func TestSplitDistributionRespectsMinFill(t *testing.T) {
	for _, split := range []SplitAlgorithm{SplitLinear, SplitQuadratic} {
		t.Run(split.String(), func(t *testing.T) {
			pool := buffer.NewPool(storage.NewMemPager(4096), 256)
			tr, err := Create(pool, Config{Dims: 2, Capacity: 10, MinFill: 4, Split: split})
			if err != nil {
				t.Fatal(err)
			}
			// Pathological input: identical rectangles, which stress the
			// tie-breaking paths.
			for i := 0; i < 200; i++ {
				if err := tr.Insert(geom.R2(0.5, 0.5, 0.6, 0.6), uint64(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			short := 0
			if err := tr.Walk(func(id storage.PageID, n *node.Node) bool {
				if id != tr.Root() && len(n.Entries) < 4 {
					short++
				}
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if short > 0 {
				t.Fatalf("%d nodes below min fill", short)
			}
		})
	}
}

func TestSplitAlgorithmString(t *testing.T) {
	if SplitLinear.String() != "linear" || SplitQuadratic.String() != "quadratic" {
		t.Fatal("split names wrong")
	}
	if s := SplitAlgorithm(9).String(); s != "SplitAlgorithm(9)" {
		t.Fatalf("unknown split name %q", s)
	}
}

func TestFreePageRecycling(t *testing.T) {
	tr := newTree(t, 4)
	entries := randRects(100, 19)
	for _, e := range entries {
		if err := tr.Insert(e.Rect, e.Ref); err != nil {
			t.Fatal(err)
		}
	}
	grown := tr.pool.Pager().NumPages()
	// Delete everything, then insert everything again: page count should
	// not grow much beyond the original, because freed pages are recycled.
	for _, e := range entries {
		if _, err := tr.Delete(e.Rect, e.Ref); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range entries {
		if err := tr.Insert(e.Rect, e.Ref); err != nil {
			t.Fatal(err)
		}
	}
	if after := tr.pool.Pager().NumPages(); after > grown+grown/2 {
		t.Fatalf("pages grew from %d to %d despite free list", grown, after)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMetaPersistsFreeList(t *testing.T) {
	path := filepath.Join(t.TempDir(), "free.db")
	pg, err := storage.CreateFilePager(path, 4096)
	if err != nil {
		t.Fatal(err)
	}
	pool := buffer.NewPool(pg, 64)
	tr, err := Create(pool, Config{Dims: 2, Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	entries := randRects(50, 20)
	for _, e := range entries {
		if err := tr.Insert(e.Rect, e.Ref); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range entries[:25] {
		if _, err := tr.Delete(e.Rect, e.Ref); err != nil {
			t.Fatal(err)
		}
	}
	freeBefore := len(tr.free)
	if freeBefore == 0 {
		t.Fatal("expected some freed pages")
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	pg.Close()

	pg2, err := storage.OpenFilePager(path, 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer pg2.Close()
	tr2, err := Open(buffer.NewPool(pg2, 64))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr2.free) != freeBefore {
		t.Fatalf("free list: %d persisted, %d before", len(tr2.free), freeBefore)
	}
	if err := tr2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoad3D(t *testing.T) {
	pool := buffer.NewPool(storage.NewMemPager(4096), 128)
	tr, err := Create(pool, Config{Dims: 3, Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	var entries []node.Entry
	for i := 0; i < 300; i++ {
		lo := geom.Point{rng.Float64(), rng.Float64(), rng.Float64()}
		hi := geom.Point{lo[0] + 0.01, lo[1] + 0.01, lo[2] + 0.01}
		entries = append(entries, node.Entry{Rect: geom.Rect{Min: lo, Max: hi}, Ref: uint64(i)})
	}
	if err := tr.BulkLoad(append([]node.Entry(nil), entries...), xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Brute-force check on a few 3-D queries.
	for i := 0; i < 20; i++ {
		lo := geom.Point{rng.Float64() * 0.8, rng.Float64() * 0.8, rng.Float64() * 0.8}
		hi := geom.Point{lo[0] + 0.2, lo[1] + 0.2, lo[2] + 0.2}
		q := geom.Rect{Min: lo, Max: hi}
		want := len(bruteSearch(entries, q))
		got, err := tr.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("3-d query %d: got %d, want %d", i, got, want)
		}
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	tr := newTree(t, 4)
	if err := tr.BulkLoad(randRects(64, 22), xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	// Corrupt: inflate the root's first entry rectangle.
	var root node.Node
	if err := tr.readNode(tr.Root(), &root); err != nil {
		t.Fatal(err)
	}
	root.Entries[0].Rect = geom.UnitSquare().Clone()
	if err := tr.writeNode(tr.Root(), &root); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err == nil {
		t.Fatal("validation passed on corrupted tree")
	}
}

func TestTreeAccessors(t *testing.T) {
	tr := newTree(t, 8)
	if tr.Dims() != 2 || tr.Pool() == nil || tr.Root() != storage.NilPage {
		t.Fatal("accessor values wrong on empty tree")
	}
	_ = fmt.Sprintf("%v", tr.Root())
}

func BenchmarkInsert(b *testing.B) {
	b.ReportAllocs()
	pool := buffer.NewPool(storage.NewMemPager(4096), 1024)
	tr, err := Create(pool, Config{Dims: 2, Capacity: 100})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, y := rng.Float64(), rng.Float64()
		if err := tr.Insert(geom.R2(x, y, x, y), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBulkLoad10k(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		pool := buffer.NewPool(storage.NewMemPager(4096), 1024)
		tr, err := Create(pool, Config{Dims: 2, Capacity: 100})
		if err != nil {
			b.Fatal(err)
		}
		entries := randRects(10000, 24)
		b.StartTimer()
		if err := tr.BulkLoad(entries, xSortOrderer{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchPacked(b *testing.B) {
	b.ReportAllocs()
	pool := buffer.NewPool(storage.NewMemPager(4096), 4096)
	tr, err := Create(pool, Config{Dims: 2, Capacity: 100})
	if err != nil {
		b.Fatal(err)
	}
	if err := tr.BulkLoad(randRects(50000, 25), xSortOrderer{}); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(26))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, y := rng.Float64()*0.9, rng.Float64()*0.9
		if _, err := tr.Count(geom.R2(x, y, x+0.1, y+0.1)); err != nil {
			b.Fatal(err)
		}
	}
}
