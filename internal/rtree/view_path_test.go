package rtree

import (
	"container/heap"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"strtree/internal/buffer"
	"strtree/internal/geom"
	"strtree/internal/node"
	"strtree/internal/storage"
)

// The tests in this file pin the zero-copy read path (traverse.go) to the
// materializing Unmarshal path it replaced: identical results in identical
// order, identical page-fetch sequences (and therefore identical paper
// disk-access counts under any buffer state), and zero steady-state heap
// allocations for Search and Count.

// traceFetches records the page-fetch sequence of fn via the pool tracer.
func traceFetches(pool buffer.Manager, fn func()) []storage.PageID {
	var seq []storage.PageID
	pool.SetTracer(func(id storage.PageID, hit bool) { seq = append(seq, id) })
	fn()
	pool.SetTracer(nil)
	return seq
}

func samePages(a, b []storage.PageID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// collect clones an emitted entry so it survives the callback.
func collect(dst *[]node.Entry) func(node.Entry) bool {
	return func(e node.Entry) bool {
		*dst = append(*dst, node.Entry{Rect: e.Rect.Clone(), Ref: e.Ref})
		return true
	}
}

func sameEntries(a, b []node.Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Ref != b[i].Ref || !a[i].Rect.Equal(b[i].Rect) {
			return false
		}
	}
	return true
}

// TestSearchResultsIdentical is the differential acceptance test: on
// packed trees shaped like the paper experiments, the view-path Search
// returns byte-identical entries in identical order to the Unmarshal
// reference, fetching the same pages in the same sequence, for full-range,
// selective, empty, and early-stopped queries.
func TestSearchResultsIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, tc := range []struct {
		n, capacity int
	}{
		{0, 8},   // empty tree
		{5, 8},   // root-only leaf
		{300, 8}, // three levels
		{2000, 16},
	} {
		t.Run(fmt.Sprintf("n=%d_cap=%d", tc.n, tc.capacity), func(t *testing.T) {
			tr := newTree(t, tc.capacity)
			if tc.n > 0 {
				if err := tr.BulkLoad(randRects(tc.n, int64(tc.n)), xSortOrderer{}); err != nil {
					t.Fatal(err)
				}
			}
			queries := []geom.Rect{
				geom.UnitSquare(),
				geom.R2(0.25, 0.25, 0.35, 0.35),
				geom.R2(0.9, 0.9, 0.90001, 0.90001),
				geom.R2(2, 2, 3, 3), // empty result
			}
			for i := 0; i < 20; i++ {
				x, y := rng.Float64(), rng.Float64()
				queries = append(queries, geom.R2(x, y, x+rng.Float64()*0.2, y+rng.Float64()*0.2))
			}
			for qi, q := range queries {
				var got, want []node.Entry
				gotSeq := traceFetches(tr.Pool(), func() {
					if err := tr.Search(q, collect(&got)); err != nil {
						t.Fatal(err)
					}
				})
				wantSeq := traceFetches(tr.Pool(), func() {
					if err := tr.SearchUnmarshal(q, collect(&want)); err != nil {
						t.Fatal(err)
					}
				})
				if !sameEntries(got, want) {
					t.Fatalf("query %d: view path returned %d entries, reference %d (or contents differ)", qi, len(got), len(want))
				}
				if !samePages(gotSeq, wantSeq) {
					t.Fatalf("query %d: fetch sequence diverged: view %v, reference %v", qi, gotSeq, wantSeq)
				}
			}
			// Early stop after m entries: same prefix, same fetches.
			if tc.n > 0 {
				for _, m := range []int{1, 3, 50} {
					var got, want []node.Entry
					stopAfter := func(dst *[]node.Entry) func(node.Entry) bool {
						return func(e node.Entry) bool {
							*dst = append(*dst, node.Entry{Rect: e.Rect.Clone(), Ref: e.Ref})
							return len(*dst) < m
						}
					}
					gotSeq := traceFetches(tr.Pool(), func() {
						if err := tr.Search(geom.UnitSquare(), stopAfter(&got)); err != nil {
							t.Fatal(err)
						}
					})
					wantSeq := traceFetches(tr.Pool(), func() {
						if err := tr.SearchUnmarshal(geom.UnitSquare(), stopAfter(&want)); err != nil {
							t.Fatal(err)
						}
					})
					if !sameEntries(got, want) || !samePages(gotSeq, wantSeq) {
						t.Fatalf("early stop at %d diverged", m)
					}
				}
			}
		})
	}
}

// TestCountMatchesReference pins Count (view path) to counting through the
// Unmarshal reference.
func TestCountMatchesReference(t *testing.T) {
	tr := newTree(t, 16)
	if err := tr.BulkLoad(randRects(1500, 8), xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 30; i++ {
		x, y := rng.Float64(), rng.Float64()
		q := geom.R2(x, y, x+rng.Float64()*0.3, y+rng.Float64()*0.3)
		got, err := tr.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		if err := tr.SearchUnmarshal(q, func(node.Entry) bool { want++; return true }); err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("query %d: Count=%d, reference=%d", i, got, want)
		}
	}
}

// refNearest is the retired container/heap implementation of Nearest,
// kept verbatim as the oracle for pop-order and fetch-sequence identity.
func refNearest(t *Tree, p geom.Point, fn func(e node.Entry, dist float64) bool) error {
	if len(p) != t.dims {
		return t.checkEntry(geom.PointRect(p))
	}
	if t.height == 0 {
		return nil
	}
	pq := &refDistQueue{}
	heap.Push(pq, refDistItem{dist: 0, page: t.root, isNode: true})
	var n node.Node
	for pq.Len() > 0 {
		it := heap.Pop(pq).(refDistItem)
		if !it.isNode {
			if !fn(it.entry, it.dist) {
				return nil
			}
			continue
		}
		if err := t.readNode(it.page, &n); err != nil {
			return err
		}
		for _, e := range n.Entries {
			d := minDist(p, e.Rect)
			if n.IsLeaf() {
				heap.Push(pq, refDistItem{dist: d, entry: node.Entry{Rect: e.Rect.Clone(), Ref: e.Ref}, isNode: false})
			} else {
				heap.Push(pq, refDistItem{dist: d, page: storage.PageID(e.Ref), isNode: true})
			}
		}
	}
	return nil
}

type refDistItem struct {
	dist   float64
	page   storage.PageID
	entry  node.Entry
	isNode bool
}

type refDistQueue []refDistItem

func (q refDistQueue) Len() int { return len(q) }
func (q refDistQueue) Less(i, j int) bool {
	//strlint:ignore floateq exact tie-break, mirroring the production heap
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	return !q[i].isNode && q[j].isNode
}
func (q refDistQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *refDistQueue) Push(x any)   { *q = append(*q, x.(refDistItem)) }
func (q *refDistQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// TestNearestMatchesReference pins the typed-heap view-path Nearest to the
// container/heap reference: identical (entry, distance) stream, identical
// fetch sequence — including duplicate-heavy inputs that stress tie-breaks.
func TestNearestMatchesReference(t *testing.T) {
	for _, dup := range []bool{false, true} {
		tr := newTree(t, 8)
		entries := randRects(600, 17)
		if dup {
			// Many identical rectangles: every heap tie-break fires.
			for i := range entries {
				entries[i].Rect = entries[i%7].Rect.Clone()
			}
		}
		if err := tr.BulkLoad(entries, xSortOrderer{}); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(23))
		for trial := 0; trial < 15; trial++ {
			p := geom.Pt2(rng.Float64(), rng.Float64())
			limit := 1 + rng.Intn(40)
			type hit struct {
				ref  uint64
				rect geom.Rect
				dist float64
			}
			var got, want []hit
			take := func(dst *[]hit) func(node.Entry, float64) bool {
				return func(e node.Entry, d float64) bool {
					*dst = append(*dst, hit{ref: e.Ref, rect: e.Rect.Clone(), dist: d})
					return len(*dst) < limit
				}
			}
			gotSeq := traceFetches(tr.Pool(), func() {
				if err := tr.Nearest(p, take(&got)); err != nil {
					t.Fatal(err)
				}
			})
			wantSeq := traceFetches(tr.Pool(), func() {
				if err := refNearest(tr, p, take(&want)); err != nil {
					t.Fatal(err)
				}
			})
			if len(got) != len(want) {
				t.Fatalf("dup=%v trial %d: view emitted %d, reference %d", dup, trial, len(got), len(want))
			}
			for i := range got {
				//strlint:ignore floateq both paths run the identical float sequence
				if got[i].ref != want[i].ref || got[i].dist != want[i].dist || !got[i].rect.Equal(want[i].rect) {
					t.Fatalf("dup=%v trial %d: result %d diverged: view (%d,%g), reference (%d,%g)",
						dup, trial, i, got[i].ref, got[i].dist, want[i].ref, want[i].dist)
				}
			}
			if !samePages(gotSeq, wantSeq) {
				t.Fatalf("dup=%v trial %d: fetch sequence diverged", dup, trial)
			}
		}
	}
}

// refJoin is the retired recursive join, kept as the oracle.
func refJoin(a, b *Tree, dist float64, fn func(ea, eb node.Entry) bool) error {
	var visit func(pa, pb storage.PageID) (bool, error)
	near := func(x, y geom.Rect) bool {
		//strlint:ignore floateq 0 is the exact intersection-join sentinel
		if dist == 0 {
			return x.Intersects(y)
		}
		return x.Dist(y) <= dist
	}
	visit = func(pa, pb storage.PageID) (bool, error) {
		var na, nb node.Node
		if err := a.readNode(pa, &na); err != nil {
			return false, err
		}
		if err := b.readNode(pb, &nb); err != nil {
			return false, err
		}
		switch {
		case na.IsLeaf() && nb.IsLeaf():
			for _, ea := range na.Entries {
				for _, eb := range nb.Entries {
					if near(ea.Rect, eb.Rect) && !fn(ea, eb) {
						return false, nil
					}
				}
			}
			return true, nil
		case !na.IsLeaf() && (nb.IsLeaf() || na.Level >= nb.Level):
			mbr := nb.MBR()
			var kids []storage.PageID
			for _, e := range na.Entries {
				if near(mbr, e.Rect) {
					kids = append(kids, storage.PageID(e.Ref))
				}
			}
			for _, child := range kids {
				more, err := visit(child, pb)
				if err != nil || !more {
					return more, err
				}
			}
			return true, nil
		default:
			mbr := na.MBR()
			var kids []storage.PageID
			for _, e := range nb.Entries {
				if near(mbr, e.Rect) {
					kids = append(kids, storage.PageID(e.Ref))
				}
			}
			for _, child := range kids {
				more, err := visit(pa, child)
				if err != nil || !more {
					return more, err
				}
			}
			return true, nil
		}
	}
	if a.height == 0 || b.height == 0 {
		return nil
	}
	_, err := visit(a.root, b.root)
	return err
}

// TestJoinMatchesReference pins the pair-stack view-path join to the
// recursive reference: identical pair stream and identical per-tree fetch
// sequences, for intersection and within-distance joins across trees of
// different heights.
func TestJoinMatchesReference(t *testing.T) {
	ta := newTree(t, 8)
	if err := ta.BulkLoad(randRects(500, 3), xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	tb := newTree(t, 8)
	if err := tb.BulkLoad(randRects(60, 4), xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	for _, dist := range []float64{0, 0.05} {
		for _, pair := range [][2]*Tree{{ta, tb}, {tb, ta}, {ta, ta}} {
			a, b := pair[0], pair[1]
			type match struct{ ra, rb uint64 }
			var got, want []match
			gotA := traceFetches(a.Pool(), func() {
				if err := JoinWithin(a, b, dist, func(ea, eb node.Entry) bool {
					got = append(got, match{ea.Ref, eb.Ref})
					return true
				}); err != nil {
					t.Fatal(err)
				}
			})
			wantA := traceFetches(a.Pool(), func() {
				if err := refJoin(a, b, dist, func(ea, eb node.Entry) bool {
					want = append(want, match{ea.Ref, eb.Ref})
					return true
				}); err != nil {
					t.Fatal(err)
				}
			})
			if len(got) != len(want) {
				t.Fatalf("dist=%g: view join emitted %d pairs, reference %d", dist, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("dist=%g: pair %d diverged: %v vs %v", dist, i, got[i], want[i])
				}
			}
			if !samePages(gotA, wantA) {
				t.Fatalf("dist=%g: fetch sequence on tree a diverged", dist)
			}
		}
	}
}

// TestScanMatchesWalk pins the explicit-stack Scan to the recursive Walk's
// preorder: same entries in the same order, same fetch sequence.
func TestScanMatchesWalk(t *testing.T) {
	tr := newTree(t, 8)
	if err := tr.BulkLoad(randRects(700, 6), xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	var got, want []node.Entry
	gotSeq := traceFetches(tr.Pool(), func() {
		if err := tr.Scan(collect(&got)); err != nil {
			t.Fatal(err)
		}
	})
	wantSeq := traceFetches(tr.Pool(), func() {
		if err := tr.Walk(func(_ storage.PageID, n *node.Node) bool {
			if n.IsLeaf() {
				for _, e := range n.Entries {
					want = append(want, node.Entry{Rect: e.Rect.Clone(), Ref: e.Ref})
				}
			}
			return true
		}); err != nil {
			t.Fatal(err)
		}
	})
	if !sameEntries(got, want) {
		t.Fatalf("Scan emitted %d entries, Walk %d (or contents differ)", len(got), len(want))
	}
	if !samePages(gotSeq, wantSeq) {
		t.Fatalf("fetch sequence diverged: Scan %v, Walk %v", gotSeq, wantSeq)
	}
}

// TestViewPathNoPinLeaks drives every traversal through early stops,
// cancellation, and a single-frame buffer pool; any missed Release on any
// exit path deadlocks or errors the next query.
func TestViewPathNoPinLeaks(t *testing.T) {
	pool := buffer.NewPool(storage.NewMemPager(4096), 1) // one frame: a leaked pin is fatal
	tr, err := Create(pool, Config{Dims: 2, Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.BulkLoad(randRects(400, 12), xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	q := geom.UnitSquare()
	// Early stop mid-leaf.
	if err := tr.Search(q, func(node.Entry) bool { return false }); err != nil {
		t.Fatal(err)
	}
	// Reentrant query from inside a callback, still on the 1-frame pool.
	ran := false
	if err := tr.Search(q, func(node.Entry) bool {
		if !ran {
			ran = true
			if _, err := tr.Count(geom.R2(0.4, 0.4, 0.6, 0.6)); err != nil {
				t.Fatalf("reentrant Count under 1-frame pool: %v", err)
			}
		}
		return false
	}); err != nil {
		t.Fatal(err)
	}
	// Cancelled context mid-traversal.
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err = tr.SearchContext(ctx, q, func(node.Entry) bool {
		calls++
		if calls == 3 {
			cancel()
		}
		return true
	})
	if err != context.Canceled {
		t.Fatalf("cancelled search returned %v", err)
	}
	// Nearest early stop and cancellation.
	if err := tr.Nearest(geom.Pt2(0.5, 0.5), func(node.Entry, float64) bool { return false }); err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if err := tr.NearestContext(ctx2, geom.Pt2(0.5, 0.5), func(node.Entry, float64) bool { return true }); err != context.Canceled {
		t.Fatalf("cancelled nearest returned %v", err)
	}
	// Join early stop.
	if err := Join(tr, tr, func(_, _ node.Entry) bool { return false }); err != nil {
		t.Fatal(err)
	}
	// Scan early stop.
	if err := tr.Scan(func(node.Entry) bool { return false }); err != nil {
		t.Fatal(err)
	}
	if pinned := pool.Stats().Pinned; pinned != 0 {
		t.Fatalf("%d frames still pinned after traversals", pinned)
	}
	// The tree is still fully queryable.
	if n, err := tr.Count(q); err != nil || n != 400 {
		t.Fatalf("after pin-leak gauntlet: Count=%d err=%v, want 400", n, err)
	}
}

// TestSearchZeroAlloc is the allocation-regression gate from the issue's
// acceptance criteria: with a warm traverser pool and a buffer pool big
// enough to hold the tree, steady-state Search and Count perform zero heap
// allocations per query.
func TestSearchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	tr := newTree(t, 102) // paper node capacity
	if err := tr.BulkLoad(randRects(5000, 77), xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	q := geom.R2(0.3, 0.3, 0.6, 0.6)
	found := 0
	// Warm the traverser pool and the buffer pool.
	if _, err := tr.Count(geom.UnitSquare()); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		found = 0
		if err := tr.Search(q, func(node.Entry) bool { found++; return true }); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("warm Search allocated %.1f times per query, want 0", allocs)
	}
	if found == 0 {
		t.Fatal("query matched nothing; the gate exercised no emission path")
	}
	n := 0
	if allocs := testing.AllocsPerRun(50, func() {
		var err error
		n, err = tr.Count(q)
		if err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("warm Count allocated %.1f times per query, want 0", allocs)
	}
	if n == 0 {
		t.Fatal("count was zero; the gate exercised no counting path")
	}
}

// TestNearestZeroAlloc extends the gate to the streaming nearest-neighbor
// path (NearestK itself returns freshly allocated result slices and is
// exempt by design).
func TestNearestZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	tr := newTree(t, 102)
	if err := tr.BulkLoad(randRects(5000, 78), xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	p := geom.Pt2(0.5, 0.5)
	if err := tr.Nearest(p, func(node.Entry, float64) bool { return false }); err != nil {
		t.Fatal(err)
	}
	k := 0
	if allocs := testing.AllocsPerRun(50, func() {
		k = 0
		if err := tr.Nearest(p, func(node.Entry, float64) bool { k++; return k < 10 }); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("warm Nearest allocated %.1f times per query, want 0", allocs)
	}
	if k != 10 {
		t.Fatalf("nearest emitted %d entries, want 10", k)
	}
}

// TestReadStatsCount checks the observability counters: one query, one
// page decode per visited node, and a flat TraverserAllocs once warm.
func TestReadStatsCount(t *testing.T) {
	tr := newTree(t, 8)
	if err := tr.BulkLoad(randRects(300, 5), xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Count(geom.UnitSquare()); err != nil { // warm pool
		t.Fatal(err)
	}
	before := tr.ReadStats()
	fetched := traceFetches(tr.Pool(), func() {
		if _, err := tr.Count(geom.UnitSquare()); err != nil {
			t.Fatal(err)
		}
	})
	after := tr.ReadStats()
	if after.Queries != before.Queries+1 {
		t.Fatalf("Queries went %d -> %d, want +1", before.Queries, after.Queries)
	}
	if got := after.ViewPages - before.ViewPages; got != uint64(len(fetched)) {
		t.Fatalf("ViewPages delta %d, fetched %d pages", got, len(fetched))
	}
	if after.TraverserAllocs != before.TraverserAllocs {
		t.Fatalf("warm query allocated a traverser (%d -> %d)", before.TraverserAllocs, after.TraverserAllocs)
	}
}
