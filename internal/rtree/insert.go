package rtree

import (
	"math"
	"slices"

	"strtree/internal/geom"
	"strtree/internal/node"
	"strtree/internal/storage"
)

// Insert adds one data entry using Guttman's dynamic insertion algorithm:
// ChooseLeaf descends by least area enlargement, overflowing nodes split
// (linear or quadratic per the tree's configuration), and MBRs are adjusted
// up the path. This is the one-object-at-a-time loading whose shortcomings
// — load time, space utilization and query quality — motivate packing in
// the paper's introduction.
func (t *Tree) Insert(r geom.Rect, ref uint64) error {
	if err := t.checkEntry(r); err != nil {
		return err
	}
	// Common case first: an in-place leaf append under write pins
	// (mutate.go), byte-identical to the slow path below but with no
	// decode/re-encode. It declines when the chosen leaf is full.
	if done, err := t.insertFast(r, ref); err != nil {
		return err
	} else if done {
		return nil
	}
	t.mutStats.structuralInserts.Add(1)
	e := node.Entry{Rect: r.Clone(), Ref: ref}
	if t.height == 0 {
		id, err := t.newPage()
		if err != nil {
			return err
		}
		root := node.Node{Level: 0, Dims: t.dims, Entries: []node.Entry{e}}
		if err := t.writeNode(id, &root); err != nil {
			return err
		}
		t.root = id
		t.height = 1
		t.count = 1
		return t.writeMeta()
	}
	if t.forcedReinsert {
		t.reinsert.active = true
		t.reinsert.done = make(map[int]bool)
		defer func() {
			t.reinsert.active = false
			t.reinsert.done = nil
			// On an error path undrained evictions must not leak into
			// the next insertion.
			t.reinsert.pending = t.reinsert.pending[:0]
		}()
	}
	if err := t.insertAtLevel(e, 0); err != nil {
		return err
	}
	// Forced reinsertion: entries evicted from overflowing nodes go back
	// in now; their levels are marked done, so a second overflow there
	// splits normally.
	for len(t.reinsert.pending) > 0 {
		o := t.reinsert.pending[len(t.reinsert.pending)-1]
		t.reinsert.pending = t.reinsert.pending[:len(t.reinsert.pending)-1]
		if err := t.insertAtLevel(o.entry, o.level); err != nil {
			return err
		}
	}
	t.count++
	return t.writeMeta()
}

// insertAtLevel places e at the given level (0 = leaf), growing the tree if
// the root splits. Reinsertion during deletion uses level > 0 to put
// orphaned subtrees back at their original height.
func (t *Tree) insertAtLevel(e node.Entry, level int) error {
	_, split, err := t.insert(t.root, e, level)
	if err != nil {
		return err
	}
	if split == nil {
		return nil
	}
	// Root split: the tree grows a level.
	var oldRoot node.Node
	if err := t.readNode(t.root, &oldRoot); err != nil {
		return err
	}
	newRootID, err := t.newPage()
	if err != nil {
		return err
	}
	newRoot := node.Node{
		Level: t.height,
		Dims:  t.dims,
		Entries: []node.Entry{
			{Rect: oldRoot.MBR(), Ref: uint64(t.root)},
			*split,
		},
	}
	if err := t.writeNode(newRootID, &newRoot); err != nil {
		return err
	}
	t.root = newRootID
	t.height++
	return nil
}

// insert recursively places e in the subtree rooted at page id. It returns
// the subtree's new MBR and, if the node on id overflowed and split, the
// entry for the freshly created sibling page.
func (t *Tree) insert(id storage.PageID, e node.Entry, targetLevel int) (geom.Rect, *node.Entry, error) {
	var n node.Node
	if err := t.readNode(id, &n); err != nil {
		return geom.Rect{}, nil, err
	}
	if n.Level == targetLevel {
		n.Entries = append(n.Entries, e)
		return t.finishNode(id, &n)
	}
	// ChooseSubtree: least enlargement, ties by least area.
	best := chooseSubtree(n.Entries, e.Rect)
	childRect, split, err := t.insert(storage.PageID(n.Entries[best].Ref), e, targetLevel)
	if err != nil {
		return geom.Rect{}, nil, err
	}
	n.Entries[best].Rect = childRect
	if split != nil {
		n.Entries = append(n.Entries, *split)
	}
	return t.finishNode(id, &n)
}

// finishNode writes n back to page id, splitting first if it overflowed.
// With forced reinsertion enabled, the first overflow at each level of an
// insertion evicts the 30% of entries farthest from the node center for
// reinsertion instead of splitting (R*-tree OverflowTreatment).
func (t *Tree) finishNode(id storage.PageID, n *node.Node) (geom.Rect, *node.Entry, error) {
	if len(n.Entries) <= t.capacity {
		if err := t.writeNode(id, n); err != nil {
			return geom.Rect{}, nil, err
		}
		return n.MBR(), nil, nil
	}
	if t.reinsert.active && id != t.root && !t.reinsert.done[n.Level] {
		t.reinsert.done[n.Level] = true
		evicted := evictFarthest(n, len(n.Entries)*3/10)
		for _, e := range evicted {
			t.reinsert.pending = append(t.reinsert.pending, orphan{level: n.Level, entry: e})
		}
		if err := t.writeNode(id, n); err != nil {
			return geom.Rect{}, nil, err
		}
		return n.MBR(), nil, nil
	}
	left, right := t.splitEntries(n.Entries)
	n.Entries = left
	if err := t.writeNode(id, n); err != nil {
		return geom.Rect{}, nil, err
	}
	sibID, err := t.newPage()
	if err != nil {
		return geom.Rect{}, nil, err
	}
	sib := node.Node{Level: n.Level, Dims: n.Dims, Entries: right}
	if err := t.writeNode(sibID, &sib); err != nil {
		return geom.Rect{}, nil, err
	}
	return n.MBR(), &node.Entry{Rect: sib.MBR(), Ref: uint64(sibID)}, nil
}

// evictFarthest removes the count entries whose centers are farthest from
// the node MBR's center, returning them (deep-copied) for reinsertion. At
// least one entry is evicted so the node drops below capacity.
func evictFarthest(n *node.Node, count int) []node.Entry {
	if count < 1 {
		count = 1
	}
	center := n.MBR().Center()
	type scored struct {
		idx  int
		dist float64
	}
	scores := make([]scored, len(n.Entries))
	for i := range n.Entries {
		d := 0.0
		for axis := range center {
			delta := n.Entries[i].Rect.CenterAxis(axis) - center[axis]
			d += delta * delta
		}
		scores[i] = scored{idx: i, dist: d}
	}
	slices.SortFunc(scores, func(a, b scored) int {
		switch {
		case a.dist > b.dist:
			return -1
		case a.dist < b.dist:
			return 1
		default:
			return 0
		}
	})
	evictSet := make(map[int]bool, count)
	for _, s := range scores[:count] {
		evictSet[s.idx] = true
	}
	var evicted, kept []node.Entry
	for i := range n.Entries {
		if evictSet[i] {
			evicted = append(evicted, node.Entry{Rect: n.Entries[i].Rect.Clone(), Ref: n.Entries[i].Ref})
		} else {
			kept = append(kept, n.Entries[i])
		}
	}
	n.Entries = kept
	return evicted
}

// chooseSubtree returns the index of the entry needing least enlargement to
// cover r, breaking ties by smallest area (Guttman's ChooseLeaf step CL3).
func chooseSubtree(entries []node.Entry, r geom.Rect) int {
	best := 0
	bestEnl := math.Inf(1)
	bestArea := math.Inf(1)
	for i := range entries {
		enl := entries[i].Rect.Enlargement(r)
		area := entries[i].Rect.Area()
		//strlint:ignore floateq exact tie-break on equal enlargement, per Guttman; a tolerance would misclassify near-ties
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// splitEntries divides an overflowing entry set (capacity+1 long) into two
// groups per the configured heuristic. Both groups receive at least
// minFill entries.
func (t *Tree) splitEntries(entries []node.Entry) (left, right []node.Entry) {
	switch t.split {
	case SplitQuadratic:
		return splitQuadratic(entries, t.minFill)
	case SplitRStar:
		return splitRStar(entries, t.minFill)
	default:
		return splitLinear(entries, t.minFill)
	}
}

// splitLinear is Guttman's linear split: pick the two seeds with greatest
// normalized separation along any axis, then assign the rest in input
// order to the group needing least enlargement.
func splitLinear(entries []node.Entry, minFill int) (left, right []node.Entry) {
	dims := entries[0].Rect.Dim()
	seedA, seedB := 0, 1
	bestSep := math.Inf(-1)
	for d := 0; d < dims; d++ {
		// Highest low side and lowest high side, plus the axis extent.
		hiLow, loHigh := 0, 0
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range entries {
			r := entries[i].Rect
			if r.Min[d] > entries[hiLow].Rect.Min[d] {
				hiLow = i
			}
			if r.Max[d] < entries[loHigh].Rect.Max[d] {
				loHigh = i
			}
			lo = math.Min(lo, r.Min[d])
			hi = math.Max(hi, r.Max[d])
		}
		if hiLow == loHigh {
			continue
		}
		sep := entries[hiLow].Rect.Min[d] - entries[loHigh].Rect.Max[d]
		if width := hi - lo; width > 0 {
			sep /= width
		}
		if sep > bestSep {
			bestSep = sep
			seedA, seedB = loHigh, hiLow
		}
	}
	return distribute(entries, seedA, seedB, minFill)
}

// splitQuadratic is Guttman's quadratic split: seeds are the pair wasting
// the most area if grouped together; remaining entries are assigned one at
// a time, each time picking the entry with the strongest preference.
func splitQuadratic(entries []node.Entry, minFill int) (left, right []node.Entry) {
	seedA, seedB := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			d := entries[i].Rect.Union(entries[j].Rect).Area() -
				entries[i].Rect.Area() - entries[j].Rect.Area()
			if d > worst {
				worst = d
				seedA, seedB = i, j
			}
		}
	}
	la := entries[seedA].Rect.Clone()
	lb := entries[seedB].Rect.Clone()
	left = append(left, entries[seedA])
	right = append(right, entries[seedB])
	rest := make([]node.Entry, 0, len(entries)-2)
	for i := range entries {
		if i != seedA && i != seedB {
			rest = append(rest, entries[i])
		}
	}
	for len(rest) > 0 {
		// Force-assign when one group must take everything left to reach
		// minFill.
		if len(left)+len(rest) == minFill {
			left = append(left, rest...)
			break
		}
		if len(right)+len(rest) == minFill {
			right = append(right, rest...)
			break
		}
		// PickNext: the entry with maximum |d1 - d2|.
		pick, pickDiff := 0, -1.0
		for i := range rest {
			d1 := la.Enlargement(rest[i].Rect)
			d2 := lb.Enlargement(rest[i].Rect)
			if diff := math.Abs(d1 - d2); diff > pickDiff {
				pick, pickDiff = i, diff
			}
		}
		e := rest[pick]
		rest = append(rest[:pick], rest[pick+1:]...)
		d1, d2 := la.Enlargement(e.Rect), lb.Enlargement(e.Rect)
		switch {
		case d1 < d2, d1 == d2 && la.Area() < lb.Area(), //strlint:ignore floateq exact tie-break on equal enlargement and area, per Guttman
			d1 == d2 && la.Area() == lb.Area() && len(left) <= len(right):
			left = append(left, e)
			la.UnionInPlace(e.Rect)
		default:
			right = append(right, e)
			lb.UnionInPlace(e.Rect)
		}
	}
	return left, right
}

// distribute assigns entries to the groups seeded by seedA and seedB by
// least enlargement, forcing assignment when a group must absorb the rest
// to reach minFill (shared by the linear split).
func distribute(entries []node.Entry, seedA, seedB, minFill int) (left, right []node.Entry) {
	la := entries[seedA].Rect.Clone()
	lb := entries[seedB].Rect.Clone()
	left = append(left, entries[seedA])
	right = append(right, entries[seedB])
	remaining := len(entries) - 2
	for i := range entries {
		if i == seedA || i == seedB {
			continue
		}
		e := entries[i]
		switch {
		case len(left)+remaining == minFill:
			left = append(left, e)
			la.UnionInPlace(e.Rect)
		case len(right)+remaining == minFill:
			right = append(right, e)
			lb.UnionInPlace(e.Rect)
		default:
			d1, d2 := la.Enlargement(e.Rect), lb.Enlargement(e.Rect)
			//strlint:ignore floateq exact tie-break on equal enlargement, per Guttman
			if d1 < d2 || (d1 == d2 && len(left) <= len(right)) {
				left = append(left, e)
				la.UnionInPlace(e.Rect)
			} else {
				right = append(right, e)
				lb.UnionInPlace(e.Rect)
			}
		}
		remaining--
	}
	return left, right
}
