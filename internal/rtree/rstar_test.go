package rtree

import (
	"math/rand"
	"testing"

	"strtree/internal/buffer"
	"strtree/internal/geom"
	"strtree/internal/node"
	"strtree/internal/storage"
)

func TestSplitRStarRespectsMinFill(t *testing.T) {
	entries := randRects(33, 71)
	left, right := splitRStar(entries, 13)
	if len(left)+len(right) != 33 {
		t.Fatalf("split lost entries: %d + %d", len(left), len(right))
	}
	if len(left) < 13 || len(right) < 13 {
		t.Fatalf("min fill violated: %d / %d", len(left), len(right))
	}
	// No entry duplicated or dropped.
	seen := map[uint64]bool{}
	for _, e := range append(append([]node.Entry(nil), left...), right...) {
		if seen[e.Ref] {
			t.Fatalf("ref %d duplicated", e.Ref)
		}
		seen[e.Ref] = true
	}
}

func TestSplitRStarSeparatesClusters(t *testing.T) {
	// Two well-separated clusters must end up in different groups with
	// zero overlap.
	var entries []node.Entry
	rng := rand.New(rand.NewSource(72))
	for i := 0; i < 10; i++ {
		x, y := rng.Float64()*0.1, rng.Float64()*0.1
		entries = append(entries, node.Entry{Rect: geom.R2(x, y, x+0.01, y+0.01), Ref: uint64(i)})
	}
	for i := 10; i < 20; i++ {
		x, y := 0.8+rng.Float64()*0.1, 0.8+rng.Float64()*0.1
		entries = append(entries, node.Entry{Rect: geom.R2(x, y, x+0.01, y+0.01), Ref: uint64(i)})
	}
	rng.Shuffle(len(entries), func(i, j int) { entries[i], entries[j] = entries[j], entries[i] })
	left, right := splitRStar(entries, 5)
	lm := geom.MBR(rects(left))
	rm := geom.MBR(rects(right))
	if lm.Intersects(rm) {
		t.Fatalf("R* split left overlapping groups: %v and %v", lm, rm)
	}
	// Each group holds exactly one cluster.
	for _, e := range left {
		if (e.Ref < 10) != (left[0].Ref < 10) {
			t.Fatal("clusters mixed within the left group")
		}
	}
}

func TestInsertWithRStarSplit(t *testing.T) {
	pool := buffer.NewPool(storage.NewMemPager(4096), 256)
	tr, err := Create(pool, Config{Dims: 2, Capacity: 8, Split: SplitRStar})
	if err != nil {
		t.Fatal(err)
	}
	entries := randRects(600, 73)
	for _, e := range entries {
		if err := tr.Insert(e.Rect, e.Ref); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	checkSearchAgainstBrute(t, tr, entries, 74)
	if SplitRStar.String() != "rstar" {
		t.Fatalf("String = %q", SplitRStar.String())
	}
}

func TestRStarBeatsLinearOnOverlap(t *testing.T) {
	// Build identical data with linear and R* splits; the R* tree's total
	// leaf area (overlap proxy) should not exceed the linear tree's by
	// much, and usually improves it.
	entries := randRects(2000, 75)
	build := func(split SplitAlgorithm) float64 {
		pool := buffer.NewPool(storage.NewMemPager(4096), 1024)
		tr, err := Create(pool, Config{Dims: 2, Capacity: 16, Split: split})
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if err := tr.Insert(e.Rect, e.Ref); err != nil {
				t.Fatal(err)
			}
		}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		area := 0.0
		if err := tr.Walk(func(_ storage.PageID, n *node.Node) bool {
			if n.IsLeaf() {
				area += n.MBR().Area()
			}
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return area
	}
	linear := build(SplitLinear)
	rstar := build(SplitRStar)
	if rstar > linear*1.05 {
		t.Fatalf("R* leaf area %.4f worse than linear %.4f", rstar, linear)
	}
}

func TestSearchWithin(t *testing.T) {
	tr := newTree(t, 8)
	entries := []node.Entry{
		{Rect: geom.R2(0.1, 0.1, 0.2, 0.2), Ref: 1},    // inside q
		{Rect: geom.R2(0.25, 0.25, 0.5, 0.5), Ref: 2},  // straddles q's edge
		{Rect: geom.R2(0.7, 0.7, 0.8, 0.8), Ref: 3},    // outside q
		{Rect: geom.R2(0.3, 0.05, 0.35, 0.45), Ref: 4}, // straddles q's top edge
	}
	if err := tr.BulkLoad(append([]node.Entry(nil), entries...), xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	q := geom.R2(0.0, 0.0, 0.4, 0.4)
	var within []uint64
	if err := tr.SearchWithin(q, func(e node.Entry) bool {
		within = append(within, e.Ref)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(within) != 1 || within[0] != 1 {
		t.Fatalf("SearchWithin = %v, want [1]", within)
	}
	// Intersection search over the same window sees three.
	n, err := tr.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("intersection count = %d, want 3", n)
	}
}

func TestSearchWithinMatchesBrute(t *testing.T) {
	tr := newTree(t, 8)
	entries := randRects(400, 76)
	if err := tr.BulkLoad(append([]node.Entry(nil), entries...), xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		x, y := rng.Float64()*0.7, rng.Float64()*0.7
		q := geom.R2(x, y, x+0.3, y+0.3)
		want := 0
		for _, e := range entries {
			if q.Contains(e.Rect) {
				want++
			}
		}
		got := 0
		if err := tr.SearchWithin(q, func(node.Entry) bool { got++; return true }); err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: within = %d, want %d", trial, got, want)
		}
	}
}
