package rtree

import (
	"strtree/internal/geom"
	"strtree/internal/node"
	"strtree/internal/storage"
)

// Search reports every data entry whose rectangle intersects q, using the
// paper's recursive procedure: starting at the root, retrieve all
// rectangles stored at a node that intersect Q; recurse into the subtrees
// of retrieved internal rectangles; report retrieved leaf rectangles.
// Returning false from fn stops the search early.
//
// Every node visited costs one buffer Fetch, so after a Search the pool's
// DiskReads delta is exactly the paper's "number of disk accesses to
// satisfy the query".
func (t *Tree) Search(q geom.Rect, fn func(e node.Entry) bool) error {
	if err := t.checkEntry(q); err != nil {
		return err
	}
	if t.height == 0 {
		return nil
	}
	_, err := t.search(t.root, q, fn)
	return err
}

func (t *Tree) search(id storage.PageID, q geom.Rect, fn func(node.Entry) bool) (more bool, err error) {
	var n node.Node
	if err := t.readNode(id, &n); err != nil {
		return false, err
	}
	if n.IsLeaf() {
		for _, e := range n.Entries {
			if !q.Intersects(e.Rect) {
				continue
			}
			if !fn(e) {
				return false, nil
			}
		}
		return true, nil
	}
	for _, e := range n.Entries {
		if !q.Intersects(e.Rect) {
			continue
		}
		more, err := t.search(storage.PageID(e.Ref), q, fn)
		if err != nil || !more {
			return more, err
		}
	}
	return true, nil
}

// SearchWithin reports every data entry whose rectangle is fully
// contained in q (window containment, as opposed to Search's
// intersection semantics). The traversal still descends by intersection:
// a subtree whose MBR merely overlaps q can hold fully contained entries.
func (t *Tree) SearchWithin(q geom.Rect, fn func(e node.Entry) bool) error {
	return t.Search(q, func(e node.Entry) bool {
		if !q.Contains(e.Rect) {
			return true
		}
		return fn(e)
	})
}

// SearchPoint reports every data entry whose rectangle contains p: the
// paper's "point query".
func (t *Tree) SearchPoint(p geom.Point, fn func(e node.Entry) bool) error {
	return t.Search(geom.PointRect(p), fn)
}

// Count returns the number of data entries intersecting q.
func (t *Tree) Count(q geom.Rect) (int, error) {
	n := 0
	err := t.Search(q, func(node.Entry) bool { n++; return true })
	return n, err
}

// All collects every data entry intersecting q. For large result sets
// prefer Search with a streaming callback.
func (t *Tree) All(q geom.Rect) ([]node.Entry, error) {
	var out []node.Entry
	err := t.Search(q, func(e node.Entry) bool {
		e.Rect = e.Rect.Clone()
		out = append(out, e)
		return true
	})
	return out, err
}
