package rtree

import (
	"strtree/internal/geom"
	"strtree/internal/node"
	"strtree/internal/storage"
)

// Search reports every data entry whose rectangle intersects q, using the
// paper's procedure: starting at the root, retrieve all rectangles stored
// at a node that intersect Q; descend into the subtrees of retrieved
// internal rectangles; report retrieved leaf rectangles. Returning false
// from fn stops the search early.
//
// The traversal runs on the zero-copy read path (traverse.go): pages are
// decoded in place through node.View and all traversal state is pooled, so
// a steady-state Search allocates nothing. Node visits happen in exactly
// the order of the recursive reference implementation (SearchUnmarshal),
// so the pool's DiskReads delta after a Search is still exactly the
// paper's "number of disk accesses to satisfy the query".
//
// The entry passed to fn aliases pooled traversal storage and is valid
// only during the callback; Clone its rectangle to retain it.
func (t *Tree) Search(q geom.Rect, fn func(e node.Entry) bool) error {
	return t.searchView(nil, q, fn)
}

// SearchUnmarshal is the recursive, materializing reference
// implementation of Search: every visited page is decoded with
// node.Unmarshal into a fresh node.Node. It visits the same pages in the
// same order and reports the same entries as Search, which the
// differential tests (TestSearchResultsIdentical) assert; it is retained
// as the oracle for those tests and allocates per visited node, so query
// paths should use Search.
func (t *Tree) SearchUnmarshal(q geom.Rect, fn func(e node.Entry) bool) error {
	if err := t.checkEntry(q); err != nil {
		return err
	}
	if t.height == 0 {
		return nil
	}
	_, err := t.searchRec(t.root, q, fn)
	return err
}

func (t *Tree) searchRec(id storage.PageID, q geom.Rect, fn func(node.Entry) bool) (more bool, err error) {
	var n node.Node
	if err := t.readNode(id, &n); err != nil {
		return false, err
	}
	if n.IsLeaf() {
		for _, e := range n.Entries {
			if !q.Intersects(e.Rect) {
				continue
			}
			if !fn(e) {
				return false, nil
			}
		}
		return true, nil
	}
	for _, e := range n.Entries {
		if !q.Intersects(e.Rect) {
			continue
		}
		more, err := t.searchRec(storage.PageID(e.Ref), q, fn)
		if err != nil || !more {
			return more, err
		}
	}
	return true, nil
}

// SearchWithin reports every data entry whose rectangle is fully
// contained in q (window containment, as opposed to Search's
// intersection semantics). The traversal still descends by intersection:
// a subtree whose MBR merely overlaps q can hold fully contained entries.
func (t *Tree) SearchWithin(q geom.Rect, fn func(e node.Entry) bool) error {
	return t.Search(q, func(e node.Entry) bool {
		if !q.Contains(e.Rect) {
			return true
		}
		return fn(e)
	})
}

// SearchPoint reports every data entry whose rectangle contains p: the
// paper's "point query".
func (t *Tree) SearchPoint(p geom.Point, fn func(e node.Entry) bool) error {
	return t.Search(geom.PointRect(p), fn)
}

// Count returns the number of data entries intersecting q. Like Search it
// runs on the zero-copy read path and allocates nothing at steady state.
func (t *Tree) Count(q geom.Rect) (int, error) {
	n := 0
	err := t.Search(q, func(node.Entry) bool { n++; return true })
	return n, err
}

// All collects every data entry intersecting q. For large result sets
// prefer Search with a streaming callback.
func (t *Tree) All(q geom.Rect) ([]node.Entry, error) {
	var out []node.Entry
	err := t.Search(q, func(e node.Entry) bool {
		e.Rect = e.Rect.Clone()
		out = append(out, e)
		return true
	})
	return out, err
}
