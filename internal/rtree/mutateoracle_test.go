package rtree_test

// Differential mutation-oracle harness: deterministic seeded random
// insert/delete sequences applied simultaneously to a Tree and to a plain
// slice oracle, with the tree held to the slice's answers — Search, Count,
// Nearest — and to a clean invariant.Check after every op. Everything is
// replayable from the printed seed. The external test package is deliberate:
// it exercises the exported surface and lets the harness import
// internal/invariant (which imports rtree) without a cycle.

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"testing"

	"strtree/internal/buffer"
	"strtree/internal/geom"
	"strtree/internal/invariant"
	"strtree/internal/node"
	"strtree/internal/rtree"
	"strtree/internal/storage"
)

// oracleEntry mirrors one data entry in the linear-scan oracle.
type oracleEntry struct {
	rect geom.Rect
	ref  uint64
}

// oracle is the naive reference index: a slice, scanned in full per query.
type oracle struct {
	entries []oracleEntry
}

func (o *oracle) insert(r geom.Rect, ref uint64) {
	o.entries = append(o.entries, oracleEntry{rect: r.Clone(), ref: ref})
}

// delete removes the first entry equal to (r, ref), reporting whether one
// existed — the same "remove one instance" semantics as Tree.Delete.
func (o *oracle) delete(r geom.Rect, ref uint64) bool {
	for i := range o.entries {
		if o.entries[i].ref == ref && o.entries[i].rect.Equal(r) {
			o.entries = append(o.entries[:i], o.entries[i+1:]...)
			return true
		}
	}
	return false
}

// searchRefs returns the sorted refs of all entries intersecting q.
func (o *oracle) searchRefs(q geom.Rect) []uint64 {
	var refs []uint64
	for i := range o.entries {
		if o.entries[i].rect.Intersects(q) {
			refs = append(refs, o.entries[i].ref)
		}
	}
	slices.Sort(refs)
	return refs
}

// minDist replicates the tree's point-to-rectangle distance kernel
// (node.View.MinDist) so distances compare exactly.
func minDist(p geom.Point, r geom.Rect) float64 {
	sum := 0.0
	for d := range p {
		var dd float64
		switch {
		case p[d] < r.Min[d]:
			dd = r.Min[d] - p[d]
		case p[d] > r.Max[d]:
			dd = p[d] - r.Max[d]
		}
		sum += dd * dd
	}
	return math.Sqrt(sum)
}

// nearestDists returns the k smallest entry distances from p, sorted.
func (o *oracle) nearestDists(p geom.Point, k int) []float64 {
	dists := make([]float64, 0, len(o.entries))
	for i := range o.entries {
		dists = append(dists, minDist(p, o.entries[i].rect))
	}
	slices.Sort(dists)
	if len(dists) > k {
		dists = dists[:k]
	}
	return dists
}

// mutOracleConfig parameterizes one harness run.
type mutOracleConfig struct {
	seed       int64
	ops        int
	dims       int
	pageSize   int
	bufPages   int
	split      rtree.SplitAlgorithm
	reinsert   bool
	dupHeavy   bool    // snap coordinates to a coarse grid: many equal keys
	pInsert    float64 // probability an op is an insert
	queryEvery int     // compare queries every n ops (1 = every op)
	slowOnly   bool    // force the structural path (differential reference)
}

func (c mutOracleConfig) String() string {
	return fmt.Sprintf("seed=%d ops=%d dims=%d page=%d split=%v reinsert=%v dup=%v",
		c.seed, c.ops, c.dims, c.pageSize, c.split, c.reinsert, c.dupHeavy)
}

// randOpRect draws a rectangle; dup-heavy configs snap to a 5^dims grid of
// unit cells so exact-duplicate keys are common.
func randOpRect(rng *rand.Rand, dims int, dupHeavy bool) geom.Rect {
	r := geom.Rect{Min: make(geom.Point, dims), Max: make(geom.Point, dims)}
	for d := 0; d < dims; d++ {
		if dupHeavy {
			cell := float64(rng.Intn(5))
			r.Min[d], r.Max[d] = cell, cell+1
		} else {
			lo := rng.Float64() * 100
			r.Min[d], r.Max[d] = lo, lo+rng.Float64()*10
		}
	}
	return r
}

// newMutTree builds an empty dynamic tree per the config.
func newMutTree(t testing.TB, c mutOracleConfig) *rtree.Tree {
	t.Helper()
	pool := buffer.NewPool(storage.NewMemPager(c.pageSize), c.bufPages)
	tr, err := rtree.Create(pool, rtree.Config{
		Dims:           c.dims,
		Split:          c.split,
		ForcedReinsert: c.reinsert,
	})
	if err != nil {
		t.Fatalf("%v: create: %v", c, err)
	}
	if c.slowOnly {
		tr.SetInPlaceMutation(false)
	}
	return tr
}

// runMutateOracle drives the op sequence, checking invariants after every
// op and query equivalence every queryEvery ops. It returns the tree for
// caller-side final assertions.
func runMutateOracle(t *testing.T, c mutOracleConfig) *rtree.Tree {
	t.Helper()
	rng := rand.New(rand.NewSource(c.seed))
	tr := newMutTree(t, c)
	var o oracle
	nextRef := uint64(1)

	for op := 0; op < c.ops; op++ {
		switch {
		case len(o.entries) == 0 || rng.Float64() < c.pInsert:
			var r geom.Rect
			var ref uint64
			switch {
			case len(o.entries) > 0 && rng.Float64() < 0.05:
				// Exact duplicate of a live entry, rect and ref alike.
				e := o.entries[rng.Intn(len(o.entries))]
				r, ref = e.rect.Clone(), e.ref
			default:
				r, ref = randOpRect(rng, c.dims, c.dupHeavy), nextRef
				nextRef++
			}
			if err := tr.Insert(r, ref); err != nil {
				t.Fatalf("%v: op %d: insert: %v", c, op, err)
			}
			o.insert(r, ref)
		case rng.Float64() < 0.1:
			// Delete a key that is not in the index: both sides miss.
			r := randOpRect(rng, c.dims, false)
			found, err := tr.Delete(r, nextRef+1<<40)
			if err != nil {
				t.Fatalf("%v: op %d: absent delete: %v", c, op, err)
			}
			if found {
				t.Fatalf("%v: op %d: delete of absent key reported found", c, op)
			}
		default:
			e := o.entries[rng.Intn(len(o.entries))]
			found, err := tr.Delete(e.rect, e.ref)
			if err != nil {
				t.Fatalf("%v: op %d: delete: %v", c, op, err)
			}
			if !found {
				t.Fatalf("%v: op %d: delete of live entry (ref %d) not found", c, op, e.ref)
			}
			o.delete(e.rect, e.ref)
		}

		if err := invariant.Check(tr, invariant.Config{RoundTrip: true}); err != nil {
			t.Fatalf("%v: op %d: invariants violated: %v", c, op, err)
		}
		if tr.Len() != len(o.entries) {
			t.Fatalf("%v: op %d: tree holds %d entries, oracle %d", c, op, tr.Len(), len(o.entries))
		}
		if c.queryEvery > 0 && op%c.queryEvery == 0 {
			compareQueries(t, c, op, rng, tr, &o)
		}
	}
	return tr
}

// compareQueries holds the tree to the oracle's answers for one random
// region query (Search and Count) and one nearest-neighbor probe.
func compareQueries(t *testing.T, c mutOracleConfig, op int, rng *rand.Rand, tr *rtree.Tree, o *oracle) {
	t.Helper()
	q := randOpRect(rng, c.dims, false)
	var got []uint64
	if err := tr.Search(q, func(e node.Entry) bool {
		got = append(got, e.Ref)
		return true
	}); err != nil {
		t.Fatalf("%v: op %d: search: %v", c, op, err)
	}
	slices.Sort(got)
	want := o.searchRefs(q)
	if !slices.Equal(got, want) {
		t.Fatalf("%v: op %d: search disagrees with oracle: tree %d refs, oracle %d refs", c, op, len(got), len(want))
	}
	n, err := tr.Count(q)
	if err != nil {
		t.Fatalf("%v: op %d: count: %v", c, op, err)
	}
	if n != len(want) {
		t.Fatalf("%v: op %d: count %d, oracle %d", c, op, n, len(want))
	}

	if len(o.entries) > 0 {
		p := make(geom.Point, c.dims)
		for d := range p {
			p[d] = rng.Float64() * 100
		}
		k := 1 + rng.Intn(4)
		_, dists, err := tr.NearestK(p, k)
		if err != nil {
			t.Fatalf("%v: op %d: nearestk: %v", c, op, err)
		}
		wantD := o.nearestDists(p, k)
		if len(dists) != len(wantD) {
			t.Fatalf("%v: op %d: nearestk returned %d results, oracle %d", c, op, len(dists), len(wantD))
		}
		for i := range dists {
			if dists[i] != wantD[i] { //strlint:ignore floateq both sides compute the identical distance kernel; exact equality is the assertion
				t.Fatalf("%v: op %d: nearest dist[%d] = %v, oracle %v", c, op, i, dists[i], wantD[i])
			}
		}
	}
}

// TestMutateOracle10kOps is the acceptance harness: a 10,000-op seeded
// random insert/delete sequence with invariants checked after every single
// op and full query equivalence against the linear-scan oracle.
func TestMutateOracle10kOps(t *testing.T) {
	tr := runMutateOracle(t, mutOracleConfig{
		seed:       1097, // replay any failure with this seed
		ops:        10000,
		dims:       2,
		pageSize:   256,
		bufPages:   64,
		split:      rtree.SplitQuadratic,
		pInsert:    0.55,
		queryEvery: 1,
	})
	ms := tr.MutateStats()
	if ms.InPlaceInserts == 0 || ms.InPlaceDeletes == 0 {
		t.Fatalf("fast path never ran: %+v", ms)
	}
	if ms.StructuralInserts == 0 || ms.StructuralDeletes == 0 {
		t.Fatalf("structural path never ran (splits/condensation untested): %+v", ms)
	}
}

// TestMutateOracleMatrix sweeps page sizes, dimensionalities, split
// algorithms, forced reinsertion, and duplicate-heavy key distributions.
func TestMutateOracleMatrix(t *testing.T) {
	cases := []mutOracleConfig{
		{seed: 2001, ops: 1500, dims: 2, pageSize: 256, split: rtree.SplitLinear},
		{seed: 2002, ops: 1500, dims: 2, pageSize: 512, split: rtree.SplitQuadratic, dupHeavy: true},
		{seed: 2003, ops: 1200, dims: 3, pageSize: 512, split: rtree.SplitQuadratic},
		{seed: 2004, ops: 1200, dims: 2, pageSize: 4096, split: rtree.SplitQuadratic},
		{seed: 2005, ops: 1200, dims: 2, pageSize: 256, split: rtree.SplitRStar, reinsert: true},
		{seed: 2006, ops: 1200, dims: 1, pageSize: 256, split: rtree.SplitLinear, dupHeavy: true},
	}
	for _, c := range cases {
		c.pInsert = 0.55
		c.bufPages = 64
		c.queryEvery = 5
		t.Run(c.String(), func(t *testing.T) { runMutateOracle(t, c) })
	}
}

// TestMutateFastSlowByteIdentity replays one op sequence into two trees —
// fast paths on and forced off — and requires byte-identical pagers: the
// MutableView shortcut must be a pure encoding change, invisible in the
// stored bytes.
func TestMutateFastSlowByteIdentity(t *testing.T) {
	base := mutOracleConfig{
		seed: 3001, ops: 3000, dims: 2, pageSize: 256, bufPages: 64,
		split: rtree.SplitQuadratic, pInsert: 0.55, queryEvery: 0,
	}
	slow := base
	slow.slowOnly = true

	fastTr := runMutateOracle(t, base)
	slowTr := runMutateOracle(t, slow)
	if n := fastTr.MutateStats().InPlaceInserts; n == 0 {
		t.Fatal("fast tree never took the in-place path")
	}
	if n := slowTr.MutateStats().InPlaceInserts; n != 0 {
		t.Fatalf("slow tree took the in-place path %d times", n)
	}
	if err := fastTr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := slowTr.Flush(); err != nil {
		t.Fatal(err)
	}
	pf, ps := fastTr.Pool().Pager(), slowTr.Pool().Pager()
	if pf.NumPages() != ps.NumPages() {
		t.Fatalf("page counts diverge: fast %d, slow %d", pf.NumPages(), ps.NumPages())
	}
	bf := make([]byte, base.pageSize)
	bs := make([]byte, base.pageSize)
	for id := 0; id < pf.NumPages(); id++ {
		if err := pf.ReadPage(storage.PageID(id), bf); err != nil {
			t.Fatal(err)
		}
		if err := ps.ReadPage(storage.PageID(id), bs); err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(bf, bs) {
			t.Fatalf("page %d differs between fast and slow mutation paths", id)
		}
	}
}
