// Context-aware query entry points. The serving layer (internal/server)
// enforces per-request deadlines by threading a context into query
// execution; these variants check the context once per node visit, so a
// cancelled or expired request stops within one page fetch instead of
// running its traversal to completion. The context-free methods in
// search.go and nearest.go stay untouched: the paper-reproduction
// experiments keep their exact call paths and access accounting.
package rtree

import (
	"container/heap"
	"context"

	"strtree/internal/geom"
	"strtree/internal/node"
	"strtree/internal/storage"
)

// SearchContext is Search with cooperative cancellation: ctx is consulted
// before every node read, and its error — context.Canceled or
// context.DeadlineExceeded — is returned as soon as it is observed.
// Matches already emitted stay emitted; the traversal simply stops.
func (t *Tree) SearchContext(ctx context.Context, q geom.Rect, fn func(e node.Entry) bool) error {
	if err := t.checkEntry(q); err != nil {
		return err
	}
	if t.height == 0 {
		return ctx.Err()
	}
	_, err := t.searchCtx(ctx, t.root, q, fn)
	return err
}

// searchCtx mirrors search (search.go) plus the per-node context check.
func (t *Tree) searchCtx(ctx context.Context, id storage.PageID, q geom.Rect, fn func(node.Entry) bool) (more bool, err error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	var n node.Node
	if err := t.readNode(id, &n); err != nil {
		return false, err
	}
	if n.IsLeaf() {
		for _, e := range n.Entries {
			if !q.Intersects(e.Rect) {
				continue
			}
			if !fn(e) {
				return false, nil
			}
		}
		return true, nil
	}
	for _, e := range n.Entries {
		if !q.Intersects(e.Rect) {
			continue
		}
		more, err := t.searchCtx(ctx, storage.PageID(e.Ref), q, fn)
		if err != nil || !more {
			return more, err
		}
	}
	return true, nil
}

// CountContext is Count under a context.
func (t *Tree) CountContext(ctx context.Context, q geom.Rect) (int, error) {
	n := 0
	err := t.SearchContext(ctx, q, func(node.Entry) bool { n++; return true })
	return n, err
}

// NearestContext is Nearest with cooperative cancellation, checked once
// per priority-queue pop — i.e. at least once per node read.
func (t *Tree) NearestContext(ctx context.Context, p geom.Point, fn func(e node.Entry, dist float64) bool) error {
	if len(p) != t.dims {
		return t.checkEntry(geom.PointRect(p)) // produces the dimension error
	}
	if t.height == 0 {
		return ctx.Err()
	}
	pq := &distQueue{}
	heap.Push(pq, distItem{dist: 0, page: t.root, isNode: true})
	var n node.Node
	for pq.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		it := heap.Pop(pq).(distItem)
		if !it.isNode {
			if !fn(it.entry, it.dist) {
				return nil
			}
			continue
		}
		if err := t.readNode(it.page, &n); err != nil {
			return err
		}
		for _, e := range n.Entries {
			d := minDist(p, e.Rect)
			if n.IsLeaf() {
				// Deep-copy the rectangle: n's entry storage is reused by
				// the next readNode.
				heap.Push(pq, distItem{dist: d, entry: node.Entry{Rect: e.Rect.Clone(), Ref: e.Ref}, isNode: false})
			} else {
				heap.Push(pq, distItem{dist: d, page: storage.PageID(e.Ref), isNode: true})
			}
		}
	}
	return nil
}

// NearestKContext collects the k nearest entries to p under a context.
func (t *Tree) NearestKContext(ctx context.Context, p geom.Point, k int) ([]node.Entry, []float64, error) {
	if k <= 0 {
		return nil, nil, nil
	}
	entries := make([]node.Entry, 0, k)
	dists := make([]float64, 0, k)
	err := t.NearestContext(ctx, p, func(e node.Entry, d float64) bool {
		entries = append(entries, e)
		dists = append(dists, d)
		return len(entries) < k
	})
	return entries, dists, err
}
