// Context-aware query entry points. The serving layer (internal/server)
// enforces per-request deadlines by threading a context into query
// execution; these variants check the context once per node visit, so a
// cancelled or expired request stops within one page fetch instead of
// running its traversal to completion. They share the zero-copy traversal
// implementations in traverse.go with the context-free methods — the only
// difference is a non-nil ctx, consulted at exactly the points the old
// recursive variants consulted it (before every node read, and once per
// priority-queue pop for nearest-neighbor search).
package rtree

import (
	"context"

	"strtree/internal/geom"
	"strtree/internal/node"
)

// SearchContext is Search with cooperative cancellation: ctx is consulted
// before every node read, and its error — context.Canceled or
// context.DeadlineExceeded — is returned as soon as it is observed.
// Matches already emitted stay emitted; the traversal simply stops.
func (t *Tree) SearchContext(ctx context.Context, q geom.Rect, fn func(e node.Entry) bool) error {
	return t.searchView(ctx, q, fn)
}

// CountContext is Count under a context.
func (t *Tree) CountContext(ctx context.Context, q geom.Rect) (int, error) {
	n := 0
	err := t.SearchContext(ctx, q, func(node.Entry) bool { n++; return true })
	return n, err
}

// NearestContext is Nearest with cooperative cancellation, checked once
// per priority-queue pop — i.e. at least once per node read.
func (t *Tree) NearestContext(ctx context.Context, p geom.Point, fn func(e node.Entry, dist float64) bool) error {
	return t.nearestView(ctx, p, fn)
}

// NearestKContext collects the k nearest entries to p under a context.
// The returned entries are deep copies and safe to retain.
func (t *Tree) NearestKContext(ctx context.Context, p geom.Point, k int) ([]node.Entry, []float64, error) {
	if k <= 0 {
		return nil, nil, nil
	}
	entries := make([]node.Entry, 0, k)
	dists := make([]float64, 0, k)
	err := t.NearestContext(ctx, p, func(e node.Entry, d float64) bool {
		entries = append(entries, node.Entry{Rect: e.Rect.Clone(), Ref: e.Ref})
		dists = append(dists, d)
		return len(entries) < k
	})
	return entries, dists, err
}
