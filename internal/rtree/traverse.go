// Zero-copy read path. Query traversals here iterate node.View over
// buffer-pinned page bytes with explicit reusable stacks instead of
// recursing with a freshly unmarshaled node.Node per frame, so a
// steady-state Search or Count performs zero heap allocations: all
// traversal state — the DFS stack, the best-first heap, the coordinate
// slabs results are banked into — lives in a pooled traverser that is
// reused across queries.
//
// Pin discipline is identical to the Unmarshal path: at most one frame is
// pinned at a time, and no user callback runs while a pin is held (leaf
// matches are banked into the traverser's slab, the pin is released, then
// the callback sees rectangles sliced out of the slab). That keeps
// reentrant queries from callbacks working on a single-frame buffer pool
// and keeps the fetch sequence — and therefore the paper's disk-access
// counts and LRU behavior — byte-identical to the recursive reference
// implementation (SearchUnmarshal), which the differential tests pin.
//
// Emitted node.Entry rectangles alias the traverser's slab and are valid
// only during the callback; Clone to retain. Write paths (insert.go,
// delete.go, build.go) keep node.Unmarshal: they mutate entries in place
// and re-marshal, which needs the materialized form anyway.
package rtree

import (
	"context"
	"fmt"
	"sync"

	"strtree/internal/buffer"
	"strtree/internal/geom"
	"strtree/internal/node"
	"strtree/internal/storage"
)

// ReadStats counts zero-copy read-path activity. All fields are cumulative
// since the Tree was opened; the serving layer samples them at scrape time.
type ReadStats struct {
	// Queries is the number of view-path traversals started
	// (Search/Count/Nearest/Scan families, plus one per side of a Join).
	Queries uint64
	// ViewPages is the number of pages decoded through node.View —
	// the read path's unit of decode work, one per node visit.
	ViewPages uint64
	// TraverserAllocs is the number of traverser pool misses, i.e. heap
	// allocations of traversal state. After warm-up this stays flat:
	// a growing value under steady load means queries are allocating.
	TraverserAllocs uint64
}

// ReadStats returns a snapshot of the zero-copy read-path counters.
func (t *Tree) ReadStats() ReadStats {
	return ReadStats{
		Queries:         t.readQueries.Load(),
		ViewPages:       t.viewPages.Load(),
		TraverserAllocs: t.travAllocs.Load(),
	}
}

// traverser is the reusable per-query traversal state. A query checks one
// out of travPool, uses it, and returns it; none of its buffers shrink, so
// after a few queries of a given shape no traversal allocates.
type traverser struct {
	stack []storage.PageID // DFS work list (search, scan)
	pairs []pagePair       // synchronized-traversal work list (join)
	pq    distHeap         // best-first queue (nearest)
	slab  []float64        // banked rectangle coordinates (mins then maxes per entry)
	refs  []uint64         // banked refs parallel to slab
	bankA banked           // join: node from tree a
	bankB banked           // join: node from tree b
	min   geom.Point       // scratch rectangle backing (join MBR filters)
	max   geom.Point
}

// pagePair is one node pair of a synchronized join traversal.
type pagePair struct {
	a, b storage.PageID
}

// travPool recycles traversers across queries and goroutines. It has no
// New func on purpose: a Get miss is observable, so TraverserAllocs can
// count exactly how often query state had to be heap-allocated.
var travPool sync.Pool

// getTraverser checks a traverser out of the pool, counting a miss against
// this tree when the pool is empty.
func (t *Tree) getTraverser() *traverser {
	v := travPool.Get()
	if v == nil {
		t.travAllocs.Add(1)
		return &traverser{}
	}
	return v.(*traverser)
}

// putTraverser returns tr to the pool with lengths reset but capacities
// kept, so the next query reuses the grown buffers.
func putTraverser(tr *traverser) {
	tr.stack = tr.stack[:0]
	tr.pairs = tr.pairs[:0]
	tr.pq = tr.pq[:0]
	tr.slab = tr.slab[:0]
	tr.refs = tr.refs[:0]
	travPool.Put(tr)
}

// rectScratch returns a reusable rectangle of the given dimensionality
// backed by the traverser's scratch points.
func (tr *traverser) rectScratch(dims int) geom.Rect {
	if cap(tr.min) < dims {
		tr.min = make(geom.Point, dims)
		tr.max = make(geom.Point, dims)
	}
	return geom.Rect{Min: tr.min[:dims], Max: tr.max[:dims]}
}

// fetchView pins page id and returns a validated view over its bytes.
// The caller must Release the frame on every exit path; the view aliases
// the frame's bytes and dies with the pin. Corruption errors carry the
// same page-tagged wrapping as readNode; raw fetch errors propagate
// unwrapped, exactly like the Unmarshal path.
func (t *Tree) fetchView(id storage.PageID) (*buffer.Frame, node.View, error) {
	f, err := t.pool.Fetch(id)
	if err != nil {
		return nil, node.View{}, err
	}
	v, err := node.MakeView(f.Data())
	if err == nil && v.Dims() != t.dims {
		err = fmt.Errorf("%w: page dimensionality %d, tree dimensionality %d", node.ErrCorrupt, v.Dims(), t.dims)
	}
	if err != nil {
		t.pool.Release(f)
		return nil, node.View{}, fmt.Errorf("rtree: page %d: %w", id, err)
	}
	t.viewPages.Add(1)
	return f, v, nil
}

// slabRect slices entry i's rectangle out of a coordinate slab laid out by
// node.View.AppendEntryCoords (dims mins then dims maxes per entry).
func slabRect(slab []float64, i, dims int) geom.Rect {
	off := i * 2 * dims
	return geom.Rect{Min: geom.Point(slab[off : off+dims]), Max: geom.Point(slab[off+dims : off+2*dims])}
}

// searchView is the shared implementation behind Search and SearchContext:
// an explicit-stack depth-first traversal that visits nodes in exactly the
// recursive reference order (children of a node are expanded leftmost
// first). A nil ctx skips cancellation checks; a non-nil ctx is consulted
// once per node visit, before the fetch, like searchRec's context variant
// always did.
func (t *Tree) searchView(ctx context.Context, q geom.Rect, fn func(node.Entry) bool) error {
	if err := t.checkEntry(q); err != nil {
		return err
	}
	if t.height == 0 {
		if ctx != nil {
			return ctx.Err()
		}
		return nil
	}
	t.readQueries.Add(1)
	tr := t.getTraverser()
	defer putTraverser(tr)
	dims := t.dims
	tr.stack = append(tr.stack[:0], t.root)
	for len(tr.stack) > 0 {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		top := len(tr.stack) - 1
		id := tr.stack[top]
		tr.stack = tr.stack[:top]
		f, v, err := t.fetchView(id)
		if err != nil {
			return err
		}
		if v.IsLeaf() {
			// Bank the matches, release the pin, then emit: callbacks run
			// unpinned, so they may issue queries of their own even on a
			// single-frame buffer pool.
			tr.slab = tr.slab[:0]
			tr.refs = tr.refs[:0]
			for i := 0; i < v.Count(); i++ {
				if v.IntersectsQuery(q, i) {
					tr.slab = v.AppendEntryCoords(tr.slab, i)
					tr.refs = append(tr.refs, v.EntryRef(i))
				}
			}
			t.pool.Release(f)
			for i, ref := range tr.refs {
				if !fn(node.Entry{Rect: slabRect(tr.slab, i, dims), Ref: ref}) {
					return nil
				}
			}
			continue
		}
		// Internal node: push matching children, then reverse the pushed
		// segment so the leftmost child pops first — the exact recursive
		// preorder, and therefore the exact fetch sequence.
		base := len(tr.stack)
		for i := 0; i < v.Count(); i++ {
			if v.IntersectsQuery(q, i) {
				tr.stack = append(tr.stack, storage.PageID(v.EntryRef(i)))
			}
		}
		t.pool.Release(f)
		reversePages(tr.stack[base:])
	}
	return nil
}

// reversePages reverses s in place.
func reversePages(s []storage.PageID) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// nearestView is the shared implementation behind Nearest and
// NearestContext: best-first search over a pooled typed heap. Leaf entry
// coordinates are banked into the traverser's slab at push time (the heap
// outlives the pin), and the heap replicates container/heap's sift
// algorithm exactly, so pop order — and with it the fetch sequence — is
// identical to the reference implementation's.
func (t *Tree) nearestView(ctx context.Context, p geom.Point, fn func(e node.Entry, dist float64) bool) error {
	if len(p) != t.dims {
		return t.checkEntry(geom.PointRect(p)) // produces the dimension error
	}
	if t.height == 0 {
		if ctx != nil {
			return ctx.Err()
		}
		return nil
	}
	t.readQueries.Add(1)
	tr := t.getTraverser()
	defer putTraverser(tr)
	dims := t.dims
	tr.pq = tr.pq[:0]
	tr.slab = tr.slab[:0]
	tr.pq.push(heapItem{dist: 0, ref: uint64(t.root), isNode: true})
	for len(tr.pq) > 0 {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		it := tr.pq.pop()
		if !it.isNode {
			off := it.slabOff
			e := node.Entry{
				Rect: geom.Rect{Min: geom.Point(tr.slab[off : off+dims]), Max: geom.Point(tr.slab[off+dims : off+2*dims])},
				Ref:  it.ref,
			}
			if !fn(e, it.dist) {
				return nil
			}
			continue
		}
		f, v, err := t.fetchView(storage.PageID(it.ref))
		if err != nil {
			return err
		}
		if v.IsLeaf() {
			for i := 0; i < v.Count(); i++ {
				d := v.MinDist(p, i)
				off := len(tr.slab)
				tr.slab = v.AppendEntryCoords(tr.slab, i)
				tr.pq.push(heapItem{dist: d, ref: v.EntryRef(i), slabOff: off})
			}
		} else {
			for i := 0; i < v.Count(); i++ {
				tr.pq.push(heapItem{dist: v.MinDist(p, i), ref: v.EntryRef(i), isNode: true})
			}
		}
		t.pool.Release(f)
	}
	return nil
}

// heapItem is a prioritized node page or banked data entry. Nodes carry
// their page id in ref; entries carry the data ref in ref and their
// coordinates at slabOff in the traverser's slab.
type heapItem struct {
	dist    float64
	ref     uint64
	slabOff int
	isNode  bool
}

// distHeap is a min-heap on (dist, entries-before-nodes). It replicates
// container/heap's sift-up/sift-down exactly — same comparisons, same
// swaps — so for any push sequence its pop order is identical to the
// container/heap implementation it replaced, without the interface boxing
// that allocated on every Push.
type distHeap []heapItem

func (h distHeap) less(i, j int) bool {
	//strlint:ignore floateq exact tie-break: only precisely equal distances defer to the entry-kind rule
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	return !h[i].isNode && h[j].isNode
}

func (h *distHeap) push(it heapItem) {
	*h = append(*h, it)
	h.up(len(*h) - 1)
}

func (h *distHeap) pop() heapItem {
	q := *h
	n := len(q) - 1
	q[0], q[n] = q[n], q[0]
	q.down(0, n)
	it := q[n]
	*h = q[:n]
	return it
}

func (h distHeap) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !h.less(j, i) {
			return
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (h distHeap) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			return
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && h.less(j2, j1) {
			j = j2 // right child
		}
		if !h.less(j, i) {
			return
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// banked is one node's entries copied out of a pinned view into reusable
// buffers, so a synchronized join can hold both sides of a node pair with
// no pin outstanding — the same one-pin-at-a-time discipline as the
// Unmarshal path, at the same decode cost, without its allocations.
type banked struct {
	level  int
	count  int
	coords []float64
	refs   []uint64
}

// bankNode fetches page id and copies its level, refs, and coordinates
// into dst, releasing the pin before returning.
func (t *Tree) bankNode(id storage.PageID, dst *banked) error {
	f, v, err := t.fetchView(id)
	if err != nil {
		return err
	}
	dst.level = v.Level()
	dst.count = v.Count()
	dst.coords = dst.coords[:0]
	dst.refs = dst.refs[:0]
	for i := 0; i < v.Count(); i++ {
		dst.coords = v.AppendEntryCoords(dst.coords, i)
		dst.refs = append(dst.refs, v.EntryRef(i))
	}
	t.pool.Release(f)
	return nil
}

// rect slices entry i's rectangle out of the bank.
func (b *banked) rect(i, dims int) geom.Rect {
	return slabRect(b.coords, i, dims)
}

// mbrInto computes the bank's minimum bounding rectangle into dst, whose
// Min and Max must have length dims. The bank must be non-empty.
func (b *banked) mbrInto(dst *geom.Rect, dims int) {
	copy(dst.Min, b.coords[:dims])
	copy(dst.Max, b.coords[dims:2*dims])
	for i := 1; i < b.count; i++ {
		off := i * 2 * dims
		for d := 0; d < dims; d++ {
			if lo := b.coords[off+d]; lo < dst.Min[d] {
				dst.Min[d] = lo
			}
			if hi := b.coords[off+dims+d]; hi > dst.Max[d] {
				dst.Max[d] = hi
			}
		}
	}
}
