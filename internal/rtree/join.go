package rtree

import (
	"fmt"

	"strtree/internal/geom"
	"strtree/internal/node"
	"strtree/internal/storage"
)

// Join reports every pair of data entries (ea from a, eb from b) whose
// rectangles intersect, using the classical synchronized depth-first
// traversal of both trees: a pair of nodes is expanded only if their MBRs
// intersect, so disjoint subtrees are never read. Returning false from fn
// stops the join.
//
// Joining a tree with itself reports symmetric pairs twice and every entry
// paired with itself; callers wanting unordered distinct pairs should
// filter on ea.Ref < eb.Ref.
func Join(a, b *Tree, fn func(ea, eb node.Entry) bool) error {
	return JoinWithin(a, b, 0, fn)
}

// JoinWithin reports every pair of data entries whose rectangles lie
// within Euclidean distance dist of each other (dist 0 reduces to the
// intersection join). Node pairs farther apart than dist are pruned
// before their subtrees are read.
//
// The traversal runs on the zero-copy read path: each popped node pair is
// banked out of its pinned views into pooled buffers (one pin at a time,
// both pages fetched per pair, exactly like the recursive reference), so
// a steady-state join allocates nothing. The entries passed to fn alias
// those pooled buffers and are valid only during the callback.
func JoinWithin(a, b *Tree, dist float64, fn func(ea, eb node.Entry) bool) error {
	if a.dims != b.dims {
		return fmt.Errorf("rtree: join dimensions disagree: %d vs %d", a.dims, b.dims)
	}
	if dist < 0 {
		return fmt.Errorf("rtree: negative join distance %g", dist)
	}
	if a.height == 0 || b.height == 0 {
		return nil
	}
	a.readQueries.Add(1)
	b.readQueries.Add(1)
	tr := a.getTraverser()
	defer putTraverser(tr)
	dims := a.dims
	filter := tr.rectScratch(dims)
	tr.pairs = append(tr.pairs[:0], pagePair{a: a.root, b: b.root})
	for len(tr.pairs) > 0 {
		top := len(tr.pairs) - 1
		pr := tr.pairs[top]
		tr.pairs = tr.pairs[:top]
		if err := a.bankNode(pr.a, &tr.bankA); err != nil {
			return err
		}
		if err := b.bankNode(pr.b, &tr.bankB); err != nil {
			return err
		}
		na, nb := &tr.bankA, &tr.bankB
		switch {
		case na.level == 0 && nb.level == 0:
			for i := 0; i < na.count; i++ {
				ra := na.rect(i, dims)
				for k := 0; k < nb.count; k++ {
					rb := nb.rect(k, dims)
					if !joinNear(dist, ra, rb) {
						continue
					}
					if !fn(node.Entry{Rect: ra, Ref: na.refs[i]}, node.Entry{Rect: rb, Ref: nb.refs[k]}) {
						return nil
					}
				}
			}

		case na.level > 0 && (nb.level == 0 || na.level >= nb.level):
			// Descend the taller (or internal) side a: expand each child of
			// na within the join distance of nb's MBR against the same nb.
			nb.mbrInto(&filter, dims)
			base := len(tr.pairs)
			for i := 0; i < na.count; i++ {
				if joinNear(dist, filter, na.rect(i, dims)) {
					tr.pairs = append(tr.pairs, pagePair{a: storage.PageID(na.refs[i]), b: pr.b})
				}
			}
			reversePairs(tr.pairs[base:])

		default:
			na.mbrInto(&filter, dims)
			base := len(tr.pairs)
			for i := 0; i < nb.count; i++ {
				if joinNear(dist, filter, nb.rect(i, dims)) {
					tr.pairs = append(tr.pairs, pagePair{a: pr.a, b: storage.PageID(nb.refs[i])})
				}
			}
			reversePairs(tr.pairs[base:])
		}
	}
	return nil
}

// joinNear reports whether two rectangles are within the join distance.
func joinNear(dist float64, a, b geom.Rect) bool {
	//strlint:ignore floateq 0 is the exact sentinel selecting an intersection join
	if dist == 0 {
		return a.Intersects(b)
	}
	return a.Dist(b) <= dist
}

// reversePairs reverses s in place, so pairs pushed in entry order pop in
// entry order — the recursive reference's depth-first expansion order.
func reversePairs(s []pagePair) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}
