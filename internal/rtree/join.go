package rtree

import (
	"fmt"

	"strtree/internal/geom"
	"strtree/internal/node"
	"strtree/internal/storage"
)

// Join reports every pair of data entries (ea from a, eb from b) whose
// rectangles intersect, using the classical synchronized depth-first
// traversal of both trees: a pair of nodes is expanded only if their MBRs
// intersect, so disjoint subtrees are never read. Returning false from fn
// stops the join.
//
// Joining a tree with itself reports symmetric pairs twice and every entry
// paired with itself; callers wanting unordered distinct pairs should
// filter on ea.Ref < eb.Ref.
func Join(a, b *Tree, fn func(ea, eb node.Entry) bool) error {
	return JoinWithin(a, b, 0, fn)
}

// JoinWithin reports every pair of data entries whose rectangles lie
// within Euclidean distance dist of each other (dist 0 reduces to the
// intersection join). Node pairs farther apart than dist are pruned
// before their subtrees are read.
func JoinWithin(a, b *Tree, dist float64, fn func(ea, eb node.Entry) bool) error {
	if a.dims != b.dims {
		return fmt.Errorf("rtree: join dimensions disagree: %d vs %d", a.dims, b.dims)
	}
	if dist < 0 {
		return fmt.Errorf("rtree: negative join distance %g", dist)
	}
	if a.height == 0 || b.height == 0 {
		return nil
	}
	j := &joiner{a: a, b: b, dist: dist, fn: fn}
	_, err := j.visit(a.root, b.root)
	return err
}

type joiner struct {
	a, b *Tree
	dist float64
	fn   func(ea, eb node.Entry) bool
}

// near reports whether two rectangles are within the join distance.
func (j *joiner) near(a, b geom.Rect) bool {
	//strlint:ignore floateq 0 is the exact sentinel selecting an intersection join
	if j.dist == 0 {
		return a.Intersects(b)
	}
	return a.Dist(b) <= j.dist
}

// visit expands the node pair (pa, pb). It returns false when the caller
// should stop the whole join.
func (j *joiner) visit(pa, pb storage.PageID) (more bool, err error) {
	var na, nb node.Node
	if err := j.a.readNode(pa, &na); err != nil {
		return false, err
	}
	if err := j.b.readNode(pb, &nb); err != nil {
		return false, err
	}
	switch {
	case na.IsLeaf() && nb.IsLeaf():
		for _, ea := range na.Entries {
			for _, eb := range nb.Entries {
				if !j.near(ea.Rect, eb.Rect) {
					continue
				}
				if !j.fn(ea, eb) {
					return false, nil
				}
			}
		}
		return true, nil

	case !na.IsLeaf() && (nb.IsLeaf() || na.Level >= nb.Level):
		// Descend the taller (or internal) side a. Copy the entries we
		// need before recursing: readNode reuses node storage.
		nbMBR := nb.MBR()
		children := j.childPages(&na, nbMBR)
		for _, child := range children {
			more, err := j.visit(child, pb)
			if err != nil || !more {
				return more, err
			}
		}
		return true, nil

	default:
		naMBR := na.MBR()
		children := j.childPages(&nb, naMBR)
		for _, child := range children {
			more, err := j.visit(pa, child)
			if err != nil || !more {
				return more, err
			}
		}
		return true, nil
	}
}

// childPages lists the children of n within the join distance of filter.
func (j *joiner) childPages(n *node.Node, filter geom.Rect) []storage.PageID {
	var out []storage.PageID
	for _, e := range n.Entries {
		if j.near(filter, e.Rect) {
			out = append(out, storage.PageID(e.Ref))
		}
	}
	return out
}
