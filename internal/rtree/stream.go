package rtree

import (
	"fmt"
	"time"

	"strtree/internal/node"
	"strtree/internal/storage"
)

// BulkLoadOrdered builds the tree bottom-up from a stream of leaf entries
// that are already in packing order (e.g. produced by pack.STRExternal).
// Only one node of leaf entries plus the parent entries of the levels
// above are held in memory — at fan-out 100 that is under 2% of the data
// set — so trees can be packed from inputs far larger than RAM. Levels
// above the leaves are ordered by o, exactly as in BulkLoad. With
// Workers > 1, finished leaves are written behind the stream consumption;
// the resulting tree bytes are identical either way.
func (t *Tree) BulkLoadOrdered(next func() (node.Entry, bool, error), o Orderer) (err error) {
	if t.height != 0 {
		return ErrNotEmpty
	}
	w := t.newPageWriter()
	defer func() {
		if cerr := w.close(); err == nil {
			err = cerr
		}
	}()
	var (
		parents []node.Entry
		n       = node.Node{Level: 0, Dims: t.dims}
		count   uint64
	)
	flush := func() error {
		if len(n.Entries) == 0 {
			return nil
		}
		id, err := t.newPage()
		if err != nil {
			return err
		}
		// The MBR must be taken before emit: the entry buffer rides the
		// job into the background writer, which recycles it via the free
		// list once the page is on disk.
		mbr := n.MBR()
		if err := w.emit(id, &n, true); err != nil {
			return err
		}
		parents = append(parents, node.Entry{Rect: mbr, Ref: uint64(id)})
		n.Entries = w.recycleOrNew(n.Entries, t.capacity)
		return nil
	}
	for {
		e, ok, rerr := next()
		if rerr != nil {
			return rerr
		}
		if !ok {
			break
		}
		if cerr := t.checkEntry(e.Rect); cerr != nil {
			return fmt.Errorf("entry %d: %w", count, cerr)
		}
		n.Entries = append(n.Entries, node.Entry{Rect: e.Rect.Clone(), Ref: e.Ref})
		count++
		if len(n.Entries) == t.capacity {
			if ferr := flush(); ferr != nil {
				return ferr
			}
		}
	}
	if ferr := flush(); ferr != nil {
		return ferr
	}
	if count == 0 {
		return t.writeMeta()
	}

	// Upper levels fit in memory (a factor of capacity smaller per level);
	// reuse the in-memory packing path.
	var stats BuildStats
	level := 1
	cur := parents
	for len(cur) > 1 {
		t0 := time.Now()
		o.Order(cur, t.capacity, level)
		stats.Order += time.Since(t0)
		up, perr := t.packLevel(w, cur, level)
		if perr != nil {
			return perr
		}
		cur = up
		level++
	}
	if cerr := w.close(); cerr != nil {
		return cerr
	}
	t.root = storage.PageID(cur[0].Ref)
	t.height = level
	t.count = count
	stats.Write = w.writeTime()
	stats.Pages = w.pages
	stats.QueuePeak = w.queuePeak
	t.buildStats = stats
	return t.Flush()
}
