package rtree

import (
	"fmt"

	"strtree/internal/node"
	"strtree/internal/storage"
)

// BulkLoadOrdered builds the tree bottom-up from a stream of leaf entries
// that are already in packing order (e.g. produced by pack.STRExternal).
// Only one node of leaf entries plus the parent entries of the levels
// above are held in memory — at fan-out 100 that is under 2% of the data
// set — so trees can be packed from inputs far larger than RAM. Levels
// above the leaves are ordered by o, exactly as in BulkLoad.
func (t *Tree) BulkLoadOrdered(next func() (node.Entry, bool, error), o Orderer) error {
	if t.height != 0 {
		return ErrNotEmpty
	}
	var (
		parents []node.Entry
		n       = node.Node{Level: 0, Dims: t.dims}
		count   uint64
	)
	flush := func() error {
		if len(n.Entries) == 0 {
			return nil
		}
		id, err := t.newPage()
		if err != nil {
			return err
		}
		if err := t.writeNode(id, &n); err != nil {
			return err
		}
		parents = append(parents, node.Entry{Rect: n.MBR(), Ref: uint64(id)})
		n.Entries = n.Entries[:0]
		return nil
	}
	for {
		e, ok, err := next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if err := t.checkEntry(e.Rect); err != nil {
			return fmt.Errorf("entry %d: %w", count, err)
		}
		n.Entries = append(n.Entries, node.Entry{Rect: e.Rect.Clone(), Ref: e.Ref})
		count++
		if len(n.Entries) == t.capacity {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	if count == 0 {
		return t.writeMeta()
	}

	// Upper levels fit in memory (a factor of capacity smaller per level);
	// reuse the in-memory packing path.
	level := 1
	cur := parents
	for len(cur) > 1 {
		o.Order(cur, t.capacity, level)
		up, err := t.packLevel(cur, level)
		if err != nil {
			return err
		}
		cur = up
		level++
	}
	t.root = storage.PageID(cur[0].Ref)
	t.height = level
	t.count = count
	return t.Flush()
}
