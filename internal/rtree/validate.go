package rtree

import (
	"fmt"

	"strtree/internal/node"
	"strtree/internal/storage"
)

// Validate checks the structural invariants of the tree and returns the
// first violation found:
//
//   - every path from the root has the same length (balance);
//   - node levels decrease by exactly one per step and leaves are level 0;
//   - every internal entry's rectangle is exactly the MBR of its child
//     (packing and the dynamic algorithms both maintain tight MBRs);
//   - no node except the root is empty, and no node exceeds capacity;
//   - every page is referenced at most once (no sharing, no cycles);
//   - the entry count matches Len().
func (t *Tree) Validate() error {
	if t.height == 0 {
		if t.root != storage.NilPage {
			return fmt.Errorf("rtree: empty tree with root page %d", t.root)
		}
		if t.count != 0 {
			return fmt.Errorf("rtree: empty tree with count %d", t.count)
		}
		return nil
	}
	seen := map[storage.PageID]bool{t.metaPage: true}
	entries, err := t.validate(t.root, t.height-1, seen)
	if err != nil {
		return err
	}
	if entries != int(t.count) {
		return fmt.Errorf("rtree: found %d data entries, meta says %d", entries, t.count)
	}
	return nil
}

func (t *Tree) validate(id storage.PageID, wantLevel int, seen map[storage.PageID]bool) (int, error) {
	if seen[id] {
		return 0, fmt.Errorf("rtree: page %d referenced twice", id)
	}
	seen[id] = true
	var n node.Node
	if err := t.readNode(id, &n); err != nil {
		return 0, err
	}
	if n.Level != wantLevel {
		return 0, fmt.Errorf("rtree: page %d at level %d, expected %d", id, n.Level, wantLevel)
	}
	if n.Dims != t.dims {
		return 0, fmt.Errorf("rtree: page %d has dims %d, tree has %d", id, n.Dims, t.dims)
	}
	if len(n.Entries) > t.capacity {
		return 0, fmt.Errorf("rtree: page %d holds %d entries, capacity %d", id, len(n.Entries), t.capacity)
	}
	if len(n.Entries) == 0 && id != t.root {
		return 0, fmt.Errorf("rtree: page %d is empty", id)
	}
	if n.IsLeaf() {
		return len(n.Entries), nil
	}
	total := 0
	for i, e := range n.Entries {
		childID := storage.PageID(e.Ref)
		var child node.Node
		if err := t.readNode(childID, &child); err != nil {
			return 0, err
		}
		if len(child.Entries) == 0 {
			return 0, fmt.Errorf("rtree: page %d child %d (page %d) is empty", id, i, childID)
		}
		if got := child.MBR(); !got.Equal(e.Rect) {
			return 0, fmt.Errorf("rtree: page %d entry %d rect %v != child MBR %v", id, i, e.Rect, got)
		}
		sub, err := t.validate(childID, wantLevel-1, seen)
		if err != nil {
			return 0, err
		}
		total += sub
	}
	return total, nil
}
