package rtree

import (
	"errors"
	"testing"

	"strtree/internal/buffer"
	"strtree/internal/geom"
	"strtree/internal/node"
	"strtree/internal/storage"
)

var errInjected = errors.New("injected fault")

// faultyTree builds a packed tree whose pager can inject failures.
func faultyTree(t *testing.T, n int) (*Tree, *storage.FaultyPager) {
	t.Helper()
	fp := storage.NewFaultyPager(storage.NewMemPager(4096))
	pool := buffer.NewPool(fp, 64)
	tr, err := Create(pool, Config{Dims: 2, Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.BulkLoad(randRects(n, 61), xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	if err := pool.Invalidate(); err != nil {
		t.Fatal(err)
	}
	return tr, fp
}

func TestSearchSurfacesReadError(t *testing.T) {
	tr, fp := faultyTree(t, 300)
	fp.FailReads(func(id storage.PageID) error {
		if id != storage.PageID(tr.Root()) && id != 0 {
			return errInjected
		}
		return nil
	})
	err := tr.Search(geom.UnitSquare(), func(node.Entry) bool { return true })
	if !errors.Is(err, errInjected) {
		t.Fatalf("search did not surface the read error: %v", err)
	}
}

func TestInsertSurfacesAllocError(t *testing.T) {
	tr, fp := faultyTree(t, 300)
	fp.FailAllocs(func() error { return errInjected })
	// Fill one leaf until it must split, forcing an allocation.
	var err error
	for i := 0; i < 20; i++ {
		if err = tr.Insert(geom.R2(0.5, 0.5, 0.51, 0.51), uint64(1000+i)); err != nil {
			break
		}
	}
	if !errors.Is(err, errInjected) {
		t.Fatalf("insert did not surface the alloc error: %v", err)
	}
}

func TestDeleteSurfacesReadError(t *testing.T) {
	tr, fp := faultyTree(t, 300)
	entries, err := tr.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Pool().Invalidate(); err != nil {
		t.Fatal(err)
	}
	reads := 0
	fp.FailReads(func(storage.PageID) error {
		reads++
		if reads > 2 {
			return errInjected
		}
		return nil
	})
	_, err = tr.Delete(entries[0].Rect, entries[0].Ref)
	if !errors.Is(err, errInjected) {
		t.Fatalf("delete did not surface the read error: %v", err)
	}
}

func TestBulkLoadSurfacesWriteError(t *testing.T) {
	fp := storage.NewFaultyPager(storage.NewMemPager(4096))
	// A 2-page pool forces page writes during the build.
	pool := buffer.NewPool(fp, 2)
	tr, err := Create(pool, Config{Dims: 2, Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	fp.FailWrites(func(storage.PageID) error { return errInjected })
	err = tr.BulkLoad(randRects(500, 62), xSortOrderer{})
	if !errors.Is(err, errInjected) {
		t.Fatalf("bulk load did not surface the write error: %v", err)
	}
}

func TestValidateSurfacesChecksumCorruption(t *testing.T) {
	// Flip a byte in a node page behind the tree's back: Validate must
	// report the checksum failure instead of trusting the page.
	inner := storage.NewMemPager(4096)
	pool := buffer.NewPool(inner, 64)
	tr, err := Create(pool, Config{Dims: 2, Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.BulkLoad(randRects(100, 63), xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := pool.Invalidate(); err != nil {
		t.Fatal(err)
	}
	// Corrupt a leaf page (any page that is not meta and not root).
	var victim storage.PageID = 1
	if victim == tr.Root() {
		victim = 2
	}
	buf := make([]byte, 4096)
	if err := inner.ReadPage(victim, buf); err != nil {
		t.Fatal(err)
	}
	buf[100] ^= 0xFF
	if err := inner.WritePage(victim, buf); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err == nil {
		t.Fatal("validation accepted a corrupted page")
	} else if !errors.Is(err, node.ErrBadChecksum) {
		t.Fatalf("expected checksum error, got: %v", err)
	}
}
