package rtree

import (
	"fmt"

	"strtree/internal/node"
	"strtree/internal/storage"
)

// Orderer is a packing algorithm: it permutes entries into the sequence in
// which they will be cut into nodes of capacity n. The paper's three
// algorithms (NX, HS, STR) differ only in this ordering; the surrounding
// build is identical (Section 2.2, "General Algorithm"). The level argument
// lets an implementation behave differently above the leaves, though none
// of the paper's algorithms do.
type Orderer interface {
	// Order permutes entries in place. n is the node capacity; level is the
	// tree level being packed (0 = leaf).
	Order(entries []node.Entry, n int, level int)
	// Name identifies the algorithm in reports ("STR", "HS", "NX", ...).
	Name() string
}

// BulkLoad builds the tree bottom-up from the given data entries following
// the paper's General Algorithm:
//
//  1. Order the r rectangles into ceil(r/n) consecutive groups of n, each
//     group destined for one leaf (the Orderer's job).
//  2. Load the groups into pages and keep (MBR, page-number) per page.
//  3. Recursively pack these MBRs into nodes at the next level, proceeding
//     upwards, until the root node is created.
//
// Packed nodes are filled to exactly n entries (the last node per level may
// hold fewer), which yields the near-100% space utilization the paper
// credits packing for. The tree must be empty. The input slice is permuted
// in place.
func (t *Tree) BulkLoad(entries []node.Entry, o Orderer) error {
	if t.height != 0 {
		return ErrNotEmpty
	}
	for i := range entries {
		if err := t.checkEntry(entries[i].Rect); err != nil {
			return fmt.Errorf("entry %d: %w", i, err)
		}
	}
	if len(entries) == 0 {
		return t.writeMeta()
	}
	level := 0
	cur := entries
	for {
		o.Order(cur, t.capacity, level)
		parents, err := t.packLevel(cur, level)
		if err != nil {
			return err
		}
		if len(parents) == 1 {
			t.root = storage.PageID(parents[0].Ref)
			t.height = level + 1
			break
		}
		cur = parents
		level++
	}
	t.count = uint64(len(entries))
	return t.Flush()
}

// packLevel writes the ordered entries into nodes of capacity t.capacity at
// the given level and returns the parent entries (MBR, page) for the next
// level up.
func (t *Tree) packLevel(entries []node.Entry, level int) ([]node.Entry, error) {
	numNodes := (len(entries) + t.capacity - 1) / t.capacity
	parents := make([]node.Entry, 0, numNodes)
	n := node.Node{Level: level, Dims: t.dims}
	for start := 0; start < len(entries); start += t.capacity {
		end := start + t.capacity
		if end > len(entries) {
			end = len(entries)
		}
		n.Entries = entries[start:end]
		id, err := t.newPage()
		if err != nil {
			return nil, err
		}
		if err := t.writeNode(id, &n); err != nil {
			return nil, err
		}
		parents = append(parents, node.Entry{Rect: n.MBR(), Ref: uint64(id)})
	}
	return parents, nil
}
