package rtree

import (
	"fmt"
	"time"

	"strtree/internal/node"
	"strtree/internal/storage"
)

// Orderer is a packing algorithm: it permutes entries into the sequence in
// which they will be cut into nodes of capacity n. The paper's three
// algorithms (NX, HS, STR) differ only in this ordering; the surrounding
// build is identical (Section 2.2, "General Algorithm"). The level argument
// lets an implementation behave differently above the leaves, though none
// of the paper's algorithms do.
type Orderer interface {
	// Order permutes entries in place. n is the node capacity; level is the
	// tree level being packed (0 = leaf).
	Order(entries []node.Entry, n int, level int)
	// Name identifies the algorithm in reports ("STR", "HS", "NX", ...).
	Name() string
}

// BuildStats reports where the last bulk load on a Tree spent its time.
type BuildStats struct {
	// Order is the wall time inside Orderer.Order across all levels.
	Order time.Duration
	// Write is the cumulative time serializing nodes onto pages. With
	// Workers > 1 the writes run behind the packing, so Write overlaps
	// Order instead of adding to the build's wall time.
	Write time.Duration
	// Pages is the number of node pages written.
	Pages int
	// QueuePeak is the write-behind queue's high-water mark (0 for
	// single-worker builds, which write inline). A peak near the queue
	// capacity means packing outran the writer and was close to blocking
	// on page I/O.
	QueuePeak int
}

// LastBuildStats returns the phase breakdown of the most recent BulkLoad
// or BulkLoadOrdered on this Tree (zero if none ran).
func (t *Tree) LastBuildStats() BuildStats { return t.buildStats }

// BulkLoad builds the tree bottom-up from the given data entries following
// the paper's General Algorithm:
//
//  1. Order the r rectangles into ceil(r/n) consecutive groups of n, each
//     group destined for one leaf (the Orderer's job).
//  2. Load the groups into pages and keep (MBR, page-number) per page.
//  3. Recursively pack these MBRs into nodes at the next level, proceeding
//     upwards, until the root node is created.
//
// Packed nodes are filled to exactly n entries (the last node per level may
// hold fewer), which yields the near-100% space utilization the paper
// credits packing for. The tree must be empty. The input slice is permuted
// in place. With Workers > 1, page writes run behind the packing on a
// background goroutine; the resulting tree bytes are identical either way.
func (t *Tree) BulkLoad(entries []node.Entry, o Orderer) (err error) {
	if t.height != 0 {
		return ErrNotEmpty
	}
	for i := range entries {
		if err := t.checkEntry(entries[i].Rect); err != nil {
			return fmt.Errorf("entry %d: %w", i, err)
		}
	}
	if len(entries) == 0 {
		return t.writeMeta()
	}
	w := t.newPageWriter()
	defer func() {
		if cerr := w.close(); err == nil {
			err = cerr
		}
	}()
	var stats BuildStats
	level := 0
	cur := entries
	for {
		t0 := time.Now()
		o.Order(cur, t.capacity, level)
		stats.Order += time.Since(t0)
		parents, perr := t.packLevel(w, cur, level)
		if perr != nil {
			return perr
		}
		if len(parents) == 1 {
			t.root = storage.PageID(parents[0].Ref)
			t.height = level + 1
			break
		}
		cur = parents
		level++
	}
	if cerr := w.close(); cerr != nil {
		return cerr
	}
	t.count = uint64(len(entries))
	stats.Write = w.writeTime()
	stats.Pages = w.pages
	stats.QueuePeak = w.queuePeak
	t.buildStats = stats
	return t.Flush()
}

// packLevel cuts the ordered entries into nodes of capacity t.capacity at
// the given level, emits each through the page writer, and returns the
// parent entries (MBR, page) for the next level up. The MBR is computed
// before emitting because emit transfers ownership of the entry slice to
// the (possibly asynchronous) writer.
func (t *Tree) packLevel(w *pageWriter, entries []node.Entry, level int) ([]node.Entry, error) {
	numNodes := (len(entries) + t.capacity - 1) / t.capacity
	parents := make([]node.Entry, 0, numNodes)
	for start := 0; start < len(entries); start += t.capacity {
		end := start + t.capacity
		if end > len(entries) {
			end = len(entries)
		}
		n := node.Node{Level: level, Dims: t.dims, Entries: entries[start:end]}
		id, err := t.newPage()
		if err != nil {
			return nil, err
		}
		mbr := n.MBR()
		if err := w.emit(id, &n, false); err != nil {
			return nil, err
		}
		parents = append(parents, node.Entry{Rect: mbr, Ref: uint64(id)})
	}
	return parents, nil
}
