package rtree

import (
	"strtree/internal/node"
	"strtree/internal/storage"
)

// Scan streams every data entry in the tree in leaf order (for packed
// trees, the packing order). Returning false from fn stops the scan. The
// entry's rectangle aliases internal storage and is only valid during the
// callback.
func (t *Tree) Scan(fn func(e node.Entry) bool) error {
	return t.Walk(func(_ storage.PageID, n *node.Node) bool {
		if !n.IsLeaf() {
			return true
		}
		for _, e := range n.Entries {
			if !fn(e) {
				return false
			}
		}
		return true
	})
}

// Entries collects deep copies of every data entry in the tree, the input
// needed to repack it (CompactInto).
func (t *Tree) Entries() ([]node.Entry, error) {
	out := make([]node.Entry, 0, t.count)
	err := t.Scan(func(e node.Entry) bool {
		out = append(out, node.Entry{Rect: e.Rect.Clone(), Ref: e.Ref})
		return true
	})
	return out, err
}

// CompactInto repacks this tree's current contents into dst, which must be
// an empty tree of the same dimensionality, using the given packing order.
// This realizes the maintenance strategy behind the paper's proposed
// "dynamic R-tree variants based on the STR packing algorithm": run
// dynamic updates against a tree, then periodically rebuild it packed to
// recover near-100% utilization and query quality.
func (t *Tree) CompactInto(dst *Tree, o Orderer) error {
	entries, err := t.Entries()
	if err != nil {
		return err
	}
	return dst.BulkLoad(entries, o)
}
