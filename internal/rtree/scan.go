package rtree

import (
	"strtree/internal/node"
	"strtree/internal/storage"
)

// Scan streams every data entry in the tree in leaf order (for packed
// trees, the packing order). Returning false from fn stops the scan. The
// scan runs on the zero-copy read path with a pooled explicit stack,
// visiting nodes in the same depth-first preorder as Walk. The entry's
// rectangle aliases pooled traversal storage and is only valid during the
// callback; Clone it to retain it (Entries does).
func (t *Tree) Scan(fn func(e node.Entry) bool) error {
	if t.height == 0 {
		return nil
	}
	t.readQueries.Add(1)
	tr := t.getTraverser()
	defer putTraverser(tr)
	dims := t.dims
	tr.stack = append(tr.stack[:0], t.root)
	for len(tr.stack) > 0 {
		top := len(tr.stack) - 1
		id := tr.stack[top]
		tr.stack = tr.stack[:top]
		f, v, err := t.fetchView(id)
		if err != nil {
			return err
		}
		if v.IsLeaf() {
			tr.slab = tr.slab[:0]
			tr.refs = tr.refs[:0]
			for i := 0; i < v.Count(); i++ {
				tr.slab = v.AppendEntryCoords(tr.slab, i)
				tr.refs = append(tr.refs, v.EntryRef(i))
			}
			t.pool.Release(f)
			for i, ref := range tr.refs {
				if !fn(node.Entry{Rect: slabRect(tr.slab, i, dims), Ref: ref}) {
					return nil
				}
			}
			continue
		}
		base := len(tr.stack)
		for i := 0; i < v.Count(); i++ {
			tr.stack = append(tr.stack, storage.PageID(v.EntryRef(i)))
		}
		t.pool.Release(f)
		reversePages(tr.stack[base:])
	}
	return nil
}

// Entries collects deep copies of every data entry in the tree, the input
// needed to repack it (CompactInto).
func (t *Tree) Entries() ([]node.Entry, error) {
	out := make([]node.Entry, 0, t.count)
	err := t.Scan(func(e node.Entry) bool {
		out = append(out, node.Entry{Rect: e.Rect.Clone(), Ref: e.Ref})
		return true
	})
	return out, err
}

// CompactInto repacks this tree's current contents into dst, which must be
// an empty tree of the same dimensionality, using the given packing order.
// This realizes the maintenance strategy behind the paper's proposed
// "dynamic R-tree variants based on the STR packing algorithm": run
// dynamic updates against a tree, then periodically rebuild it packed to
// recover near-100% utilization and query quality.
func (t *Tree) CompactInto(dst *Tree, o Orderer) error {
	entries, err := t.Entries()
	if err != nil {
		return err
	}
	return dst.BulkLoad(entries, o)
}
