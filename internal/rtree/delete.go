package rtree

import (
	"strtree/internal/geom"
	"strtree/internal/node"
	"strtree/internal/storage"
)

// Delete removes the data entry with exactly this rectangle and reference,
// following Guttman's algorithm: FindLeaf, remove, CondenseTree (underfull
// nodes are dissolved and their entries reinserted at their original
// level), and the root is collapsed when it has a single child. It reports
// whether an entry was removed.
func (t *Tree) Delete(r geom.Rect, ref uint64) (bool, error) {
	if err := t.checkEntry(r); err != nil {
		return false, err
	}
	if t.height == 0 {
		return false, nil
	}
	// Common case first: an in-place leaf removal under write pins
	// (mutate.go), byte-identical to the slow path below. It declines
	// when the leaf would fall under minFill (condensation) or the root
	// would empty.
	if handled, found, err := t.deleteFast(r, ref); err != nil {
		return false, err
	} else if handled {
		return found, nil
	}
	t.mutStats.structuralDeletes.Add(1)
	var orphans []orphan
	found, _, _, err := t.delete(t.root, r, ref, &orphans)
	if err != nil {
		return false, err
	}
	if !found {
		return false, nil
	}
	t.count--

	// Collapse the root: an internal root with one child is replaced by
	// that child; an empty leaf root empties the tree.
	for {
		var root node.Node
		if err := t.readNode(t.root, &root); err != nil {
			return false, err
		}
		if root.IsLeaf() {
			if len(root.Entries) == 0 && t.count == 0 {
				t.freePage(t.root)
				t.root = storage.NilPage
				t.height = 0
			}
			break
		}
		if len(root.Entries) != 1 {
			break
		}
		t.freePage(t.root)
		t.root = storage.PageID(root.Entries[0].Ref)
		t.height--
	}

	// Reinsert orphaned entries at their original levels, processed as a
	// stack (higher-level subtree entries first). A stack, not an indexed
	// walk: dissolving a too-tall orphan below pushes its children back
	// onto the list, and those must be processed too.
	for len(orphans) > 0 {
		o := orphans[len(orphans)-1]
		orphans = orphans[:len(orphans)-1]
		if t.height == 0 {
			// Tree emptied; orphans can only be leaf entries in that case.
			id, err := t.newPage()
			if err != nil {
				return false, err
			}
			n := node.Node{Level: 0, Dims: t.dims, Entries: []node.Entry{o.entry}}
			if err := t.writeNode(id, &n); err != nil {
				return false, err
			}
			t.root = id
			t.height = 1
			continue
		}
		level := o.level
		if level >= t.height {
			// The tree shrank below the orphan's level; re-add its
			// children instead. (Rare: only when the root collapsed.)
			var n node.Node
			if err := t.readNode(storage.PageID(o.entry.Ref), &n); err != nil {
				return false, err
			}
			t.freePage(storage.PageID(o.entry.Ref))
			for _, e := range n.Entries {
				orphans = append(orphans, orphan{level: n.Level, entry: e})
			}
			continue
		}
		if err := t.insertAtLevel(o.entry, level); err != nil {
			return false, err
		}
	}
	return true, t.writeMeta()
}

// orphan is an entry displaced by CondenseTree, remembered with the level
// it must be reinserted at. For level 0 the entry is a data entry; for
// level L > 0 it points at a subtree of height L.
type orphan struct {
	level int
	entry node.Entry
}

// delete searches the subtree on page id for the entry. It returns whether
// the entry was found, the subtree's new MBR, and whether the node on id
// became underfull and was dissolved (in which case its surviving entries
// are queued in orphans and the page freed; the caller must drop its entry
// for id).
func (t *Tree) delete(id storage.PageID, r geom.Rect, ref uint64, orphans *[]orphan) (found bool, mbr geom.Rect, dissolved bool, err error) {
	var n node.Node
	if err := t.readNode(id, &n); err != nil {
		return false, geom.Rect{}, false, err
	}
	if n.IsLeaf() {
		at := -1
		for i := range n.Entries {
			if n.Entries[i].Ref == ref && n.Entries[i].Rect.Equal(r) {
				at = i
				break
			}
		}
		if at < 0 {
			return false, geom.Rect{}, false, nil
		}
		n.Entries = append(n.Entries[:at], n.Entries[at+1:]...)
		return t.afterRemoval(id, &n, orphans)
	}
	for i := range n.Entries {
		if !n.Entries[i].Rect.Intersects(r) {
			continue
		}
		childID := storage.PageID(n.Entries[i].Ref)
		found, childMBR, childGone, err := t.delete(childID, r, ref, orphans)
		if err != nil {
			return false, geom.Rect{}, false, err
		}
		if !found {
			continue
		}
		if childGone {
			n.Entries = append(n.Entries[:i], n.Entries[i+1:]...)
		} else {
			n.Entries[i].Rect = childMBR
		}
		return t.afterRemoval(id, &n, orphans)
	}
	return false, geom.Rect{}, false, nil
}

// afterRemoval finishes a node one of whose entries changed or vanished:
// if the node is the root or still adequately full it is written back;
// otherwise it dissolves into orphans.
func (t *Tree) afterRemoval(id storage.PageID, n *node.Node, orphans *[]orphan) (bool, geom.Rect, bool, error) {
	isRoot := id == t.root
	if !isRoot && len(n.Entries) < t.minFill {
		for _, e := range n.Entries {
			*orphans = append(*orphans, orphan{level: n.Level, entry: e})
		}
		t.freePage(id)
		return true, geom.Rect{}, true, nil
	}
	if err := t.writeNode(id, n); err != nil {
		return false, geom.Rect{}, false, err
	}
	if len(n.Entries) == 0 {
		return true, geom.UnitCube(t.dims), false, nil // empty root; MBR unused
	}
	return true, n.MBR(), false, nil
}
