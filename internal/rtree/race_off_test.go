//go:build !race

package rtree

// raceEnabled reports whether the race detector is active; its
// instrumentation allocates, so allocation-count gates skip under -race.
const raceEnabled = false
