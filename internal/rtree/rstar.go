package rtree

import (
	"cmp"
	"math"
	"slices"

	"strtree/internal/geom"
	"strtree/internal/node"
)

// SplitRStar is the topological split of Beckmann et al.'s R*-tree — the
// "other dynamic algorithms [1]" the paper credits with improving R-tree
// quality while "still not competitive ... when compared to loading
// algorithms". It is implemented here so the repository can measure that
// claim directly (BenchmarkAblationSplits): choose the split axis by
// minimum total margin over all distributions, then the split index by
// minimum overlap (ties: minimum total area).
const SplitRStar SplitAlgorithm = 2

// splitRStar divides an overflowing entry set per the R*-tree split.
func splitRStar(entries []node.Entry, minFill int) (left, right []node.Entry) {
	dims := entries[0].Rect.Dim()
	m := len(entries)
	if minFill < 1 {
		minFill = 1
	}
	maxK := m - minFill // split positions: minFill .. maxK

	// ChooseSplitAxis: for each axis, sort by lower then by upper value
	// and sum the margins of every legal distribution; pick the axis with
	// the smallest sum.
	bestAxis, bestMargin := 0, math.Inf(1)
	for d := 0; d < dims; d++ {
		for _, byUpper := range []bool{false, true} {
			sortAxis(entries, d, byUpper)
			margin := 0.0
			for k := minFill; k <= maxK; k++ {
				margin += geom.MBR(rects(entries[:k])).Margin() +
					geom.MBR(rects(entries[k:])).Margin()
			}
			if margin < bestMargin {
				bestMargin, bestAxis = margin, d
			}
		}
	}

	// ChooseSplitIndex on the chosen axis: minimum overlap, ties by area.
	bestK, bestOverlap, bestArea := minFill, math.Inf(1), math.Inf(1)
	var bestUpper bool
	for _, byUpper := range []bool{false, true} {
		sortAxis(entries, bestAxis, byUpper)
		for k := minFill; k <= maxK; k++ {
			l := geom.MBR(rects(entries[:k]))
			r := geom.MBR(rects(entries[k:]))
			overlap := 0.0
			if inter, ok := l.Intersect(r); ok {
				overlap = inter.Area()
			}
			area := l.Area() + r.Area()
			//strlint:ignore floateq exact tie-break on equal overlap, per Beckmann et al.
			if overlap < bestOverlap || (overlap == bestOverlap && area < bestArea) {
				bestOverlap, bestArea, bestK, bestUpper = overlap, area, k, byUpper
			}
		}
	}
	sortAxis(entries, bestAxis, bestUpper)
	left = append([]node.Entry(nil), entries[:bestK]...)
	right = append([]node.Entry(nil), entries[bestK:]...)
	return left, right
}

func sortAxis(entries []node.Entry, axis int, byUpper bool) {
	key := func(e node.Entry) float64 {
		if byUpper {
			return e.Rect.Max[axis]
		}
		return e.Rect.Min[axis]
	}
	slices.SortStableFunc(entries, func(a, b node.Entry) int {
		if c := cmp.Compare(key(a), key(b)); c != 0 || byUpper {
			return c
		}
		// Lower-bound ties break on the upper bound, keeping the stable
		// sort deterministic.
		return cmp.Compare(a.Rect.Max[axis], b.Rect.Max[axis])
	})
}

func rects(entries []node.Entry) []geom.Rect {
	out := make([]geom.Rect, len(entries))
	for i := range entries {
		out[i] = entries[i].Rect
	}
	return out
}
