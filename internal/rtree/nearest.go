package rtree

import (
	"math"

	"strtree/internal/geom"
	"strtree/internal/node"
)

// Nearest streams data entries in order of increasing distance from p
// (branch-and-bound best-first search in the style of Hjaltason and
// Samet). Distance is the minimum Euclidean distance from p to the entry's
// rectangle, so entries containing p arrive first with distance 0.
// Returning false from fn stops the search; a k-nearest-neighbor query
// returns false after consuming k entries.
//
// The search runs on the zero-copy read path (traverse.go): the priority
// queue and the coordinate slab backing emitted rectangles are pooled, so
// a steady-state Nearest allocates nothing. The entry passed to fn aliases
// that pooled storage and is valid only during the callback; Clone its
// rectangle to retain it (NearestK does).
//
// Like Search, every node visited costs one buffer fetch, so the pool's
// DiskReads delta measures the query's I/O.
func (t *Tree) Nearest(p geom.Point, fn func(e node.Entry, dist float64) bool) error {
	return t.nearestView(nil, p, fn)
}

// NearestK collects the k nearest entries to p. The returned entries are
// deep copies and safe to retain.
func (t *Tree) NearestK(p geom.Point, k int) ([]node.Entry, []float64, error) {
	if k <= 0 {
		return nil, nil, nil
	}
	entries := make([]node.Entry, 0, k)
	dists := make([]float64, 0, k)
	err := t.Nearest(p, func(e node.Entry, d float64) bool {
		entries = append(entries, node.Entry{Rect: e.Rect.Clone(), Ref: e.Ref})
		dists = append(dists, d)
		return len(entries) < k
	})
	return entries, dists, err
}

// minDist returns the squared-free Euclidean distance from a point to the
// nearest point of a rectangle (0 if the point is inside). node.View's
// MinDist kernel runs this exact float sequence over the wire words; the
// equivalence tests compare against this reference.
func minDist(p geom.Point, r geom.Rect) float64 {
	sum := 0.0
	for i := range p {
		var d float64
		switch {
		case p[i] < r.Min[i]:
			d = r.Min[i] - p[i]
		case p[i] > r.Max[i]:
			d = p[i] - r.Max[i]
		}
		sum += d * d
	}
	return math.Sqrt(sum)
}
