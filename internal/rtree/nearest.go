package rtree

import (
	"container/heap"
	"math"

	"strtree/internal/geom"
	"strtree/internal/node"
	"strtree/internal/storage"
)

// Nearest streams data entries in order of increasing distance from p
// (branch-and-bound best-first search in the style of Hjaltason and
// Samet). Distance is the minimum Euclidean distance from p to the entry's
// rectangle, so entries containing p arrive first with distance 0.
// Returning false from fn stops the search; a k-nearest-neighbor query
// returns false after consuming k entries.
//
// Like Search, every node visited costs one buffer fetch, so the pool's
// DiskReads delta measures the query's I/O.
func (t *Tree) Nearest(p geom.Point, fn func(e node.Entry, dist float64) bool) error {
	if len(p) != t.dims {
		return t.checkEntry(geom.PointRect(p)) // produces the dimension error
	}
	if t.height == 0 {
		return nil
	}
	pq := &distQueue{}
	heap.Push(pq, distItem{dist: 0, page: t.root, isNode: true})
	var n node.Node
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if !it.isNode {
			if !fn(it.entry, it.dist) {
				return nil
			}
			continue
		}
		if err := t.readNode(it.page, &n); err != nil {
			return err
		}
		for _, e := range n.Entries {
			d := minDist(p, e.Rect)
			if n.IsLeaf() {
				// Deep-copy the rectangle: n's entry storage is reused by
				// the next readNode.
				heap.Push(pq, distItem{dist: d, entry: node.Entry{Rect: e.Rect.Clone(), Ref: e.Ref}, isNode: false})
			} else {
				heap.Push(pq, distItem{dist: d, page: storage.PageID(e.Ref), isNode: true})
			}
		}
	}
	return nil
}

// NearestK collects the k nearest entries to p.
func (t *Tree) NearestK(p geom.Point, k int) ([]node.Entry, []float64, error) {
	if k <= 0 {
		return nil, nil, nil
	}
	entries := make([]node.Entry, 0, k)
	dists := make([]float64, 0, k)
	err := t.Nearest(p, func(e node.Entry, d float64) bool {
		entries = append(entries, e)
		dists = append(dists, d)
		return len(entries) < k
	})
	return entries, dists, err
}

// minDist returns the squared-free Euclidean distance from a point to the
// nearest point of a rectangle (0 if the point is inside).
func minDist(p geom.Point, r geom.Rect) float64 {
	sum := 0.0
	for i := range p {
		var d float64
		switch {
		case p[i] < r.Min[i]:
			d = r.Min[i] - p[i]
		case p[i] > r.Max[i]:
			d = p[i] - r.Max[i]
		}
		sum += d * d
	}
	return math.Sqrt(sum)
}

// distItem is a prioritized node page or data entry.
type distItem struct {
	dist   float64
	page   storage.PageID
	entry  node.Entry
	isNode bool
}

// distQueue is a min-heap on distance; ties prefer data entries so results
// surface as early as possible.
type distQueue []distItem

func (q distQueue) Len() int { return len(q) }
func (q distQueue) Less(i, j int) bool {
	//strlint:ignore floateq exact tie-break: only precisely equal distances defer to the entry-kind rule
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	return !q[i].isNode && q[j].isNode
}
func (q distQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *distQueue) Push(x any)   { *q = append(*q, x.(distItem)) }
func (q *distQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}
