package rtree

import (
	"errors"
	"testing"

	"strtree/internal/geom"
	"strtree/internal/node"
)

func sliceStream(entries []node.Entry) func() (node.Entry, bool, error) {
	i := 0
	return func() (node.Entry, bool, error) {
		if i >= len(entries) {
			return node.Entry{}, false, nil
		}
		e := entries[i]
		i++
		return e, true, nil
	}
}

func TestBulkLoadOrderedMatchesBulkLoad(t *testing.T) {
	entries := randRects(1234, 81)
	ordered := append([]node.Entry(nil), entries...)
	xSortOrderer{}.Order(ordered, 16, 0)

	a := newTree(t, 16)
	if err := a.BulkLoad(append([]node.Entry(nil), entries...), xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	b := newTree(t, 16)
	if err := b.BulkLoadOrdered(sliceStream(ordered), xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	if b.Len() != a.Len() || b.Height() != a.Height() {
		t.Fatalf("stream build: len %d/%d height %d/%d", b.Len(), a.Len(), b.Height(), a.Height())
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, q := range []geom.Rect{
		geom.R2(0, 0, 0.3, 0.3), geom.R2(0.4, 0.4, 0.8, 0.9), geom.UnitSquare(),
	} {
		ca, err := a.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		cb, err := b.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		if ca != cb {
			t.Fatalf("counts differ for %v: %d vs %d", q, ca, cb)
		}
	}
}

func TestBulkLoadOrderedEmptyAndErrors(t *testing.T) {
	tr := newTree(t, 8)
	if err := tr.BulkLoadOrdered(sliceStream(nil), xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	if tr.Height() != 0 {
		t.Fatalf("empty stream built height %d", tr.Height())
	}
	// Non-empty tree rejected.
	if err := tr.Insert(geom.R2(0, 0, 0.1, 0.1), 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.BulkLoadOrdered(sliceStream(randRects(5, 82)), xSortOrderer{}); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("err = %v", err)
	}
	// Stream error propagates.
	tr2 := newTree(t, 8)
	boom := errors.New("boom")
	n := 0
	err := tr2.BulkLoadOrdered(func() (node.Entry, bool, error) {
		n++
		if n > 3 {
			return node.Entry{}, false, boom
		}
		return randRects(1, int64(n))[0], true, nil
	}, xSortOrderer{})
	if !errors.Is(err, boom) {
		t.Fatalf("stream error lost: %v", err)
	}
	// Bad entry rejected.
	tr3 := newTree(t, 8)
	bad := []node.Entry{{Rect: geom.UnitCube(3), Ref: 1}}
	if err := tr3.BulkLoadOrdered(sliceStream(bad), xSortOrderer{}); err == nil {
		t.Fatal("3-D entry accepted")
	}
}

func TestBulkLoadOrderedUtilization(t *testing.T) {
	ordered := randRects(1000, 83)
	xSortOrderer{}.Order(ordered, 10, 0)
	tr := newTree(t, 10)
	if err := tr.BulkLoadOrdered(sliceStream(ordered), xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	perLevel, err := tr.NodesPerLevel()
	if err != nil {
		t.Fatal(err)
	}
	if len(perLevel) != 3 || perLevel[2] != 100 {
		t.Fatalf("NodesPerLevel = %v", perLevel)
	}
}
