package rtree

// Mutation fast paths: the common-case Insert (a leaf with room) and Delete
// (a leaf that stays adequately full) patch pages in place through
// node.MutableView under buffer write pins instead of the Unmarshal →
// mutate → Marshal round trip insert.go and delete.go take. The fast path
// is purely an encoding shortcut: it makes exactly the placement decisions
// the slow path would make — the same chooseSubtree comparisons over the
// same float64 values, the same DFS find-leaf order — so the resulting tree
// is byte-for-byte identical to slow-path output (the differential tests in
// mutateoracle_test.go and the benchmark baseline's Guttman-built trees
// both pin this). Structural changes — node splits, forced reinsertion,
// underfull condensation, root growth or collapse — fall back to the slow
// path, which materializes nodes anyway.

import (
	"errors"
	"fmt"
	"math"

	"strtree/internal/geom"
	"strtree/internal/node"
	"strtree/internal/storage"
)

// MutateStats counts how dynamic mutations were executed: in place through
// MutableView patches, or structurally through the materializing slow path
// (splits, reinsertion, condensation, tree growth/collapse, bootstraps).
type MutateStats struct {
	InPlaceInserts    uint64
	StructuralInserts uint64
	InPlaceDeletes    uint64
	StructuralDeletes uint64
}

// MutateStats returns the tree's mutation-path counters.
func (t *Tree) MutateStats() MutateStats {
	return MutateStats{
		InPlaceInserts:    t.mutStats.inPlaceInserts.Load(),
		StructuralInserts: t.mutStats.structuralInserts.Load(),
		InPlaceDeletes:    t.mutStats.inPlaceDeletes.Load(),
		StructuralDeletes: t.mutStats.structuralDeletes.Load(),
	}
}

// SetInPlaceMutation toggles the MutableView fast paths. On by default;
// disabling forces every mutation through the materializing slow path. The
// differential tests run identical op sequences both ways and require
// byte-identical trees; it is also an escape hatch for ablation benches.
func (t *Tree) SetInPlaceMutation(enabled bool) { t.noInPlace = !enabled }

// mutStep is one node on the root-to-leaf path of an in-place mutation.
type mutStep struct {
	id  storage.PageID
	idx int // chosen (insert) or matched (delete) entry index in this node
	// grow is set on insert descent when the chosen entry's rectangle must
	// be enlarged to cover the new entry. Covers-propagation makes the
	// flags monotone up the path: once an ancestor covers the new
	// rectangle, every higher ancestor does too.
	grow bool
	// count is the node's entry count, recorded on the delete find so the
	// minFill decision needs no refetch.
	count int
}

// mutScratch lazily sizes the reusable rectangles to the tree's dims.
func (t *Tree) mutScratch() {
	if t.mut.r1.Dim() != t.dims {
		t.mut.r1 = geom.Rect{Min: make(geom.Point, t.dims), Max: make(geom.Point, t.dims)}
		t.mut.r2 = geom.Rect{Min: make(geom.Point, t.dims), Max: make(geom.Point, t.dims)}
	}
}

// insertFast attempts the in-place leaf append. It reports whether the
// insert was fully handled; false means the structural slow path must run
// (empty tree, or the chosen leaf is full). On success it has already
// bumped the entry count and persisted the metadata.
func (t *Tree) insertFast(r geom.Rect, ref uint64) (bool, error) {
	if t.height == 0 || t.noInPlace {
		return false, nil
	}
	t.mutScratch()
	path := t.mut.path[:0]
	defer func() { t.mut.path = path[:0] }()

	// Descent: replicate chooseSubtree's exact comparisons over lazily
	// decoded views, recording the chosen child at each internal node.
	id := t.root
	for {
		f, err := t.pool.Fetch(id)
		if err != nil {
			return false, err
		}
		v, err := node.MakeView(f.Data())
		if err != nil {
			t.pool.Release(f)
			return false, fmt.Errorf("rtree: page %d: %w", id, err)
		}
		if v.IsLeaf() {
			full := v.Count() >= t.capacity
			t.pool.Release(f)
			if full {
				return false, nil // split or forced reinsertion: slow path
			}
			path = append(path, mutStep{id: id, idx: -1})
			break
		}
		best, grow := chooseSubtreeView(v, r, &t.mut.r1)
		child := storage.PageID(v.EntryRef(best))
		t.pool.Release(f)
		path = append(path, mutStep{id: id, idx: best, grow: grow})
		id = child
	}

	// Patch bottom-up under write pins: append on the leaf, then enlarge
	// each ancestor's entry rectangle until one already covers r.
	if err := t.patchAppend(path[len(path)-1].id, r, ref); err != nil {
		return false, err
	}
	for j := len(path) - 2; j >= 0; j-- {
		if !path[j].grow {
			break
		}
		if err := t.patchGrow(path[j].id, path[j].idx, r); err != nil {
			return false, err
		}
	}
	t.count++
	t.mutStats.inPlaceInserts.Add(1)
	return true, t.writeMeta()
}

// patchAppend write-pins the leaf and appends (r, ref) in place.
func (t *Tree) patchAppend(id storage.PageID, r geom.Rect, ref uint64) error {
	f, err := t.pool.FetchMut(id)
	if err != nil {
		return err
	}
	mv, err := node.MakeMutableView(f.Data())
	if err == nil {
		err = mv.AppendEntry(r, ref)
	}
	if err != nil {
		err = fmt.Errorf("rtree: page %d: %w", id, err)
	}
	return errors.Join(err, t.pool.ReleaseMut(f))
}

// patchGrow write-pins an internal node and unions r into entry idx's
// rectangle — the in-place form of the slow path's MBR adjustment. The
// union of the stored rectangle (the child's tight MBR) with r equals the
// child's recomputed MBR, so the bytes match the slow path's.
func (t *Tree) patchGrow(id storage.PageID, idx int, r geom.Rect) error {
	f, err := t.pool.FetchMut(id)
	if err != nil {
		return err
	}
	mv, err := node.MakeMutableView(f.Data())
	if err == nil {
		mv.EntryRectInto(idx, &t.mut.r1)
		t.mut.r1.UnionInPlace(r)
		err = mv.SetEntryRect(idx, t.mut.r1)
	}
	if err != nil {
		err = fmt.Errorf("rtree: page %d: %w", id, err)
	}
	return errors.Join(err, t.pool.ReleaseMut(f))
}

// chooseSubtreeView is chooseSubtree over a lazily decoded view: least
// enlargement, ties by least area, same float64 comparisons on the same
// values. It also reports whether the chosen entry must grow to cover r.
func chooseSubtreeView(v node.View, r geom.Rect, scratch *geom.Rect) (best int, grow bool) {
	bestEnl := math.Inf(1)
	bestArea := math.Inf(1)
	for i := 0; i < v.Count(); i++ {
		v.EntryRectInto(i, scratch)
		enl := scratch.Enlargement(r)
		area := scratch.Area()
		//strlint:ignore floateq exact tie-break on equal enlargement, per Guttman; must mirror chooseSubtree bit-for-bit
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	v.EntryRectInto(best, scratch)
	return best, !scratch.Contains(r)
}

// deleteFast attempts the in-place leaf removal. handled reports whether
// the delete was fully answered (including "not found"); handled == false
// means the condensing slow path must run. On a successful removal it has
// already decremented the entry count and persisted the metadata.
func (t *Tree) deleteFast(r geom.Rect, ref uint64) (handled, found bool, err error) {
	if t.height == 0 || t.noInPlace {
		return false, false, nil
	}
	t.mutScratch()
	path := t.mut.path[:0]
	defer func() { t.mut.path = path[:0] }()

	found, err = t.findLeafFast(t.root, r, ref, &path)
	if err != nil {
		return false, false, err
	}
	if !found {
		return true, false, nil
	}
	leaf := path[len(path)-1]
	isRoot := leaf.id == t.root
	after := leaf.count - 1
	if (!isRoot && after < t.minFill) || (isRoot && after == 0) {
		return false, false, nil // condensation or root collapse: slow path
	}

	// Remove on the leaf and compute its shrunken MBR into r1.
	if err := t.patchRemove(leaf.id, leaf.idx, &t.mut.r1); err != nil {
		return false, false, err
	}
	// Tighten ancestors bottom-up until one's stored rectangle already
	// equals the child's new MBR (nothing above can change past that).
	for j := len(path) - 2; j >= 0; j-- {
		changed, err := t.patchShrink(path[j].id, path[j].idx, &t.mut.r1)
		if err != nil {
			return false, false, err
		}
		if !changed {
			break
		}
	}
	t.count--
	t.mutStats.inPlaceDeletes.Add(1)
	return true, true, t.writeMeta()
}

// findLeafFast is the view-based FindLeaf: depth-first over intersecting
// children in entry order — delete.go's exact traversal — recording the
// path to the first leaf holding (r, ref). Candidate children are banked
// while the node is pinned so at most one pin is held at any moment.
func (t *Tree) findLeafFast(id storage.PageID, r geom.Rect, ref uint64, path *[]mutStep) (bool, error) {
	f, err := t.pool.Fetch(id)
	if err != nil {
		return false, err
	}
	v, err := node.MakeView(f.Data())
	if err != nil {
		t.pool.Release(f)
		return false, fmt.Errorf("rtree: page %d: %w", id, err)
	}
	if v.IsLeaf() {
		for i := 0; i < v.Count(); i++ {
			if v.EntryRef(i) == ref {
				v.EntryRectInto(i, &t.mut.r2)
				if t.mut.r2.Equal(r) {
					count := v.Count()
					t.pool.Release(f)
					*path = append(*path, mutStep{id: id, idx: i, count: count})
					return true, nil
				}
			}
		}
		t.pool.Release(f)
		return false, nil
	}
	type cand struct {
		idx int
		id  storage.PageID
	}
	var cands []cand
	for i := 0; i < v.Count(); i++ {
		if v.IntersectsQuery(r, i) {
			cands = append(cands, cand{idx: i, id: storage.PageID(v.EntryRef(i))})
		}
	}
	t.pool.Release(f)
	for _, c := range cands {
		*path = append(*path, mutStep{id: id, idx: c.idx})
		found, err := t.findLeafFast(c.id, r, ref, path)
		if err != nil || found {
			return found, err
		}
		*path = (*path)[:len(*path)-1]
	}
	return false, nil
}

// patchRemove write-pins the leaf, removes entry idx in place, and computes
// the leaf's new MBR into newMBR. The caller guarantees the leaf keeps at
// least one entry.
func (t *Tree) patchRemove(id storage.PageID, idx int, newMBR *geom.Rect) error {
	f, err := t.pool.FetchMut(id)
	if err != nil {
		return err
	}
	mv, err := node.MakeMutableView(f.Data())
	if err == nil {
		err = mv.RemoveEntry(idx)
	}
	if err == nil {
		mv.MBRInto(newMBR)
	}
	if err != nil {
		err = fmt.Errorf("rtree: page %d: %w", id, err)
	}
	return errors.Join(err, t.pool.ReleaseMut(f))
}

// patchShrink write-pins an internal node and replaces entry idx's
// rectangle with the child's new MBR, then overwrites newMBR with this
// node's own recomputed MBR for the next level up. It reports whether the
// stored rectangle actually changed; when it did not, ancestors above are
// untouched by construction.
func (t *Tree) patchShrink(id storage.PageID, idx int, newMBR *geom.Rect) (bool, error) {
	f, err := t.pool.FetchMut(id)
	if err != nil {
		return false, err
	}
	mv, err := node.MakeMutableView(f.Data())
	if err != nil {
		return false, errors.Join(fmt.Errorf("rtree: page %d: %w", id, err), t.pool.ReleaseMut(f))
	}
	mv.EntryRectInto(idx, &t.mut.r2)
	if t.mut.r2.Equal(*newMBR) {
		return false, t.pool.ReleaseMut(f)
	}
	err = mv.SetEntryRect(idx, *newMBR)
	if err == nil {
		mv.MBRInto(newMBR)
	}
	if err != nil {
		err = fmt.Errorf("rtree: page %d: %w", id, err)
	}
	return true, errors.Join(err, t.pool.ReleaseMut(f))
}
