package rtree_test

// FuzzMutateInvariants drives byte-decoded insert/delete sequences against
// the differential oracle and the invariant verifier: whatever op sequence
// the fuzzer invents, the tree must keep every structural invariant after
// every op (including byte-exact page round-trips, which covers the
// MutableView CRC patches) and answer queries exactly like the linear scan.
// The committed corpus under testdata/fuzz seeds the interesting shapes:
// pure insert growth, churn with deletes, duplicate-heavy keys, and
// root-collapse sequences. CI runs a 30s smoke; nightly runs 10 minutes.

import (
	"slices"
	"testing"

	"strtree/internal/geom"
	"strtree/internal/invariant"
	"strtree/internal/node"
	"strtree/internal/rtree"
)

// fuzzOps caps the ops decoded from one input so a single case stays fast
// enough for the fuzzer to explore widely.
const fuzzOps = 128

// decodeFuzzRect derives a small valid rectangle from three bytes: the low
// nibbles place the corner on a 16x16 grid (so duplicates and overlaps are
// common), the high bits size it.
func decodeFuzzRect(b0, x, y byte) geom.Rect {
	lox := float64(x % 16)
	loy := float64(y % 16)
	w := 1 + float64(b0>>4)/8
	return geom.Rect{Min: geom.Point{lox, loy}, Max: geom.Point{lox + w, loy + w}}
}

func FuzzMutateInvariants(f *testing.F) {
	// Insert-only growth through several splits.
	grow := make([]byte, 0, 3*40)
	for i := 0; i < 40; i++ {
		grow = append(grow, byte(i*2), byte(i*7), byte(i*13))
	}
	f.Add(grow)
	// Churn: alternating inserts and deletes.
	churn := make([]byte, 0, 3*60)
	for i := 0; i < 60; i++ {
		churn = append(churn, byte(i), byte(i*5), byte(i*11))
	}
	f.Add(churn)
	// Duplicate-heavy: the same cell over and over, then deletes.
	dup := make([]byte, 0, 3*48)
	for i := 0; i < 32; i++ {
		dup = append(dup, 0, 3, 3)
	}
	for i := 0; i < 16; i++ {
		dup = append(dup, byte(2*i+1), 0, 0)
	}
	f.Add(dup)
	// Drain to empty: grow then delete everything (root collapse).
	drain := make([]byte, 0, 3*40)
	for i := 0; i < 20; i++ {
		drain = append(drain, byte(i*2), byte(i*3), byte(i*9))
	}
	for i := 0; i < 20; i++ {
		drain = append(drain, byte(2*i+1), 0, 0)
	}
	f.Add(drain)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr := newMutTree(t, mutOracleConfig{
			dims: 2, pageSize: 256, bufPages: 32, split: rtree.SplitQuadratic,
		})
		var o oracle
		nextRef := uint64(1)
		for op := 0; op < fuzzOps && len(data) >= 3; op++ {
			b0, x, y := data[0], data[1], data[2]
			data = data[3:]
			if b0%2 == 0 { // insert
				r := decodeFuzzRect(b0, x, y)
				if err := tr.Insert(r, nextRef); err != nil {
					t.Fatalf("op %d: insert: %v", op, err)
				}
				o.insert(r, nextRef)
				nextRef++
			} else { // delete
				if len(o.entries) > 0 {
					idx := (int(b0>>1) + int(x)*31 + int(y)*257) % len(o.entries)
					e := o.entries[idx]
					found, err := tr.Delete(e.rect, e.ref)
					if err != nil {
						t.Fatalf("op %d: delete: %v", op, err)
					}
					if !found {
						t.Fatalf("op %d: delete of live entry ref %d not found", op, e.ref)
					}
					o.delete(e.rect, e.ref)
				} else {
					found, err := tr.Delete(decodeFuzzRect(b0, x, y), nextRef+1<<40)
					if err != nil {
						t.Fatalf("op %d: absent delete: %v", op, err)
					}
					if found {
						t.Fatalf("op %d: delete on empty tree reported found", op)
					}
				}
			}
			if err := invariant.Check(tr, invariant.Config{RoundTrip: true}); err != nil {
				t.Fatalf("op %d: invariants violated: %v", op, err)
			}
			if tr.Len() != len(o.entries) {
				t.Fatalf("op %d: tree holds %d entries, oracle %d", op, tr.Len(), len(o.entries))
			}
		}
		// Final query sweep: a few fixed windows over the grid domain.
		for _, q := range []geom.Rect{
			{Min: geom.Point{0, 0}, Max: geom.Point{17, 17}},
			{Min: geom.Point{2, 2}, Max: geom.Point{6, 6}},
			{Min: geom.Point{10.5, 0.5}, Max: geom.Point{12.5, 15.5}},
		} {
			var got []uint64
			if err := tr.Search(q, func(e node.Entry) bool {
				got = append(got, e.Ref)
				return true
			}); err != nil {
				t.Fatalf("final search: %v", err)
			}
			slices.Sort(got)
			if want := o.searchRefs(q); !slices.Equal(got, want) {
				t.Fatalf("final search disagrees with oracle on %v: tree %d refs, oracle %d", q, len(got), len(want))
			}
		}
	})
}
