package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"strtree/internal/buffer"
	"strtree/internal/geom"
	"strtree/internal/node"
	"strtree/internal/storage"
)

func TestMinDist(t *testing.T) {
	r := geom.R2(0.2, 0.2, 0.4, 0.4)
	cases := []struct {
		p    geom.Point
		want float64
	}{
		{geom.Pt2(0.3, 0.3), 0},               // inside
		{geom.Pt2(0.2, 0.2), 0},               // on corner
		{geom.Pt2(0.5, 0.3), 0.1},             // right of box
		{geom.Pt2(0.3, 0.1), 0.1},             // below box
		{geom.Pt2(0.5, 0.5), math.Sqrt2 / 10}, // diagonal from corner
	}
	for i, c := range cases {
		if got := minDist(c.p, r); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: minDist(%v) = %g, want %g", i, c.p, got, c.want)
		}
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	tr := newTree(t, 8)
	entries := randRects(400, 31)
	if err := tr.BulkLoad(append([]node.Entry(nil), entries...), xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 30; trial++ {
		p := geom.Pt2(rng.Float64(), rng.Float64())
		const k = 7
		got, dists, err := tr.NearestK(p, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != k {
			t.Fatalf("NearestK returned %d", len(got))
		}
		// Brute force.
		type cand struct {
			ref uint64
			d   float64
		}
		cands := make([]cand, len(entries))
		for i, e := range entries {
			cands[i] = cand{e.Ref, minDist(p, e.Rect)}
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
		for i := 0; i < k; i++ {
			if math.Abs(dists[i]-cands[i].d) > 1e-12 {
				t.Fatalf("trial %d rank %d: dist %g, brute force %g", trial, i, dists[i], cands[i].d)
			}
		}
		// Distances are non-decreasing.
		for i := 1; i < k; i++ {
			if dists[i] < dists[i-1] {
				t.Fatalf("distances not sorted: %v", dists)
			}
		}
	}
}

func TestNearestFullDrain(t *testing.T) {
	tr := newTree(t, 4)
	entries := randRects(50, 33)
	if err := tr.BulkLoad(append([]node.Entry(nil), entries...), xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	if err := tr.Nearest(geom.Pt2(0.5, 0.5), func(e node.Entry, d float64) bool {
		if seen[e.Ref] {
			t.Fatalf("ref %d visited twice", e.Ref)
		}
		seen[e.Ref] = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 50 {
		t.Fatalf("nearest drained %d of 50 entries", len(seen))
	}
}

func TestNearestEmptyAndErrors(t *testing.T) {
	tr := newTree(t, 4)
	if err := tr.Nearest(geom.Pt2(0.5, 0.5), func(node.Entry, float64) bool {
		t.Fatal("callback on empty tree")
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Nearest(geom.Point{0.5, 0.5, 0.5}, func(node.Entry, float64) bool { return true }); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	entries, dists, err := tr.NearestK(geom.Pt2(0, 0), 0)
	if err != nil || entries != nil || dists != nil {
		t.Fatal("NearestK(0) should be a no-op")
	}
}

func TestNearestPrunes(t *testing.T) {
	// With well-separated clusters, a nearest-1 query must not read the
	// whole tree: far subtrees are pruned by the bound.
	pool := buffer.NewPool(storage.NewMemPager(4096), 512)
	tr, err := Create(pool, Config{Dims: 2, Capacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	var entries []node.Entry
	ref := uint64(0)
	for cx := 0.1; cx < 1; cx += 0.2 {
		for cy := 0.1; cy < 1; cy += 0.2 {
			for i := 0; i < 64; i++ {
				x := cx + float64(i%8)*0.001
				y := cy + float64(i/8)*0.001
				entries = append(entries, node.Entry{Rect: geom.PointRect(geom.Pt2(x, y)), Ref: ref})
				ref++
			}
		}
	}
	if err := tr.BulkLoad(entries, xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	total, err := tr.NumNodes()
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Invalidate(); err != nil {
		t.Fatal(err)
	}
	pool.ResetStats()
	if _, _, err := tr.NearestK(geom.Pt2(0.105, 0.105), 1); err != nil {
		t.Fatal(err)
	}
	reads := pool.Stats().DiskReads
	if reads > int64(total)/3 {
		t.Fatalf("nearest-1 read %d of %d nodes: no pruning", reads, total)
	}
}

func TestJoinMatchesBruteForce(t *testing.T) {
	mk := func(seed int64, n int) (*Tree, []node.Entry) {
		tr := newTree(t, 8)
		entries := randRects(n, seed)
		if err := tr.BulkLoad(append([]node.Entry(nil), entries...), xSortOrderer{}); err != nil {
			t.Fatal(err)
		}
		return tr, entries
	}
	ta, ea := mk(41, 300)
	tb, eb := mk(42, 200)

	want := map[[2]uint64]bool{}
	for _, a := range ea {
		for _, b := range eb {
			if a.Rect.Intersects(b.Rect) {
				want[[2]uint64{a.Ref, b.Ref}] = true
			}
		}
	}
	got := map[[2]uint64]bool{}
	if err := Join(ta, tb, func(a, b node.Entry) bool {
		key := [2]uint64{a.Ref, b.Ref}
		if got[key] {
			t.Fatalf("pair %v reported twice", key)
		}
		got[key] = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("join found %d pairs, brute force %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("join missed pair %v", k)
		}
	}
}

func TestJoinDifferentHeights(t *testing.T) {
	// A tall tree joined with a single-leaf tree exercises the
	// height-balancing descent.
	tall := newTree(t, 4)
	tallEntries := randRects(300, 43)
	if err := tall.BulkLoad(append([]node.Entry(nil), tallEntries...), xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	short := newTree(t, 4)
	shortEntries := randRects(3, 44)
	if err := short.BulkLoad(append([]node.Entry(nil), shortEntries...), xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, a := range tallEntries {
		for _, b := range shortEntries {
			if a.Rect.Intersects(b.Rect) {
				want++
			}
		}
	}
	got := 0
	if err := Join(tall, short, func(a, b node.Entry) bool { got++; return true }); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("join found %d pairs, want %d", got, want)
	}
	// And in the other order.
	got = 0
	if err := Join(short, tall, func(a, b node.Entry) bool { got++; return true }); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("reversed join found %d pairs, want %d", got, want)
	}
}

func TestJoinWithinMatchesBruteForce(t *testing.T) {
	ta := newTree(t, 8)
	ea := randRects(250, 91)
	if err := ta.BulkLoad(append([]node.Entry(nil), ea...), xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	tb := newTree(t, 8)
	eb := randRects(200, 92)
	if err := tb.BulkLoad(append([]node.Entry(nil), eb...), xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	for _, dist := range []float64{0, 0.01, 0.05, 0.2} {
		want := 0
		for _, a := range ea {
			for _, b := range eb {
				if a.Rect.Dist(b.Rect) <= dist {
					want++
				}
			}
		}
		got := 0
		if err := JoinWithin(ta, tb, dist, func(a, b node.Entry) bool { got++; return true }); err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("dist %g: join found %d pairs, brute force %d", dist, got, want)
		}
	}
	// Negative distance rejected.
	if err := JoinWithin(ta, tb, -1, func(a, b node.Entry) bool { return true }); err == nil {
		t.Fatal("negative distance accepted")
	}
}

func TestJoinEarlyStopAndErrors(t *testing.T) {
	ta := newTree(t, 4)
	if err := ta.BulkLoad(randRects(100, 45), xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := Join(ta, ta, func(a, b node.Entry) bool { n++; return n < 10 }); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("early stop after %d pairs", n)
	}
	// Dimension mismatch.
	pool := buffer.NewPool(storage.NewMemPager(4096), 32)
	t3, err := Create(pool, Config{Dims: 3, Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := Join(ta, t3, func(a, b node.Entry) bool { return true }); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	// Empty trees join to nothing.
	empty := newTree(t, 4)
	if err := Join(ta, empty, func(a, b node.Entry) bool {
		t.Fatal("pair from empty join")
		return true
	}); err != nil {
		t.Fatal(err)
	}
}

func TestScanAndEntries(t *testing.T) {
	tr := newTree(t, 8)
	entries := randRects(200, 46)
	if err := tr.BulkLoad(append([]node.Entry(nil), entries...), xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	if err := tr.Scan(func(e node.Entry) bool {
		seen[e.Ref] = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 200 {
		t.Fatalf("scan saw %d entries", len(seen))
	}
	// Early stop.
	n := 0
	if err := tr.Scan(func(node.Entry) bool { n++; return n < 5 }); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("scan early stop at %d", n)
	}
	// Entries returns deep copies matching the originals.
	got, err := tr.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 200 {
		t.Fatalf("Entries returned %d", len(got))
	}
	byRef := map[uint64]geom.Rect{}
	for _, e := range entries {
		byRef[e.Ref] = e.Rect
	}
	for _, e := range got {
		if !e.Rect.Equal(byRef[e.Ref]) {
			t.Fatalf("entry %d rect mismatch", e.Ref)
		}
	}
}

func TestCompactInto(t *testing.T) {
	// Build a fragmented tree with inserts and deletes, then compact it.
	src := newTree(t, 8)
	entries := randRects(600, 47)
	for _, e := range entries {
		if err := src.Insert(e.Rect, e.Ref); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range entries[:200] {
		if _, err := src.Delete(e.Rect, e.Ref); err != nil {
			t.Fatal(err)
		}
	}
	srcNodes, err := src.NumNodes()
	if err != nil {
		t.Fatal(err)
	}

	dst := newTree(t, 8)
	if err := src.CompactInto(dst, xSortOrderer{}); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 400 {
		t.Fatalf("compacted len = %d", dst.Len())
	}
	if err := dst.Validate(); err != nil {
		t.Fatal(err)
	}
	dstNodes, err := dst.NumNodes()
	if err != nil {
		t.Fatal(err)
	}
	if dstNodes >= srcNodes {
		t.Fatalf("compaction did not shrink: %d -> %d nodes", srcNodes, dstNodes)
	}
	// Same answers.
	q := geom.R2(0.25, 0.25, 0.5, 0.5)
	a, err := src.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dst.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("counts differ after compaction: %d vs %d", a, b)
	}
	// Compacting into a non-empty tree fails.
	if err := src.CompactInto(dst, xSortOrderer{}); err == nil {
		t.Fatal("compact into non-empty tree accepted")
	}
}

func BenchmarkNearestK10(b *testing.B) {
	b.ReportAllocs()
	pool := buffer.NewPool(storage.NewMemPager(4096), 4096)
	tr, err := Create(pool, Config{Dims: 2, Capacity: 100})
	if err != nil {
		b.Fatal(err)
	}
	if err := tr.BulkLoad(randRects(50000, 48), xSortOrderer{}); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(49))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tr.NearestK(geom.Pt2(rng.Float64(), rng.Float64()), 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoin(b *testing.B) {
	b.ReportAllocs()
	mk := func(seed int64) *Tree {
		pool := buffer.NewPool(storage.NewMemPager(4096), 4096)
		tr, err := Create(pool, Config{Dims: 2, Capacity: 100})
		if err != nil {
			b.Fatal(err)
		}
		if err := tr.BulkLoad(randRects(10000, seed), xSortOrderer{}); err != nil {
			b.Fatal(err)
		}
		return tr
	}
	ta, tb := mk(50), mk(51)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := Join(ta, tb, func(a, bb node.Entry) bool { n++; return true }); err != nil {
			b.Fatal(err)
		}
	}
}
