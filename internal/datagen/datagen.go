// Package datagen produces the four data-set families of the STR paper's
// evaluation (Section 3), all normalized to the unit square:
//
//  1. Synthetic: uniformly distributed squares with a chosen density, and
//     point data as the density-0 special case — generated exactly per the
//     paper's recipe.
//  2. GIS: a stand-in for the TIGER Long Beach County line segments
//     (53,145 segments, mildly skewed).
//  3. VLSI: a stand-in for the Bell Labs CIF chip data (453,994
//     rectangles, highly skewed in location and size, largest roughly
//     40,000 times the smallest).
//  4. CFD: a stand-in for the Boeing 737 cross-section mesh points
//     (52,510 nodes, dense near the airfoil surfaces, sparse far field,
//     no points inside the bodies).
//
// The real TIGER/VLSI/CFD files are not distributable with this
// repository; each stand-in reproduces the structural properties the paper
// identifies as driving packing performance (see DESIGN.md Section 4 for
// the substitution argument). All generators are deterministic in their
// seed.
package datagen

import (
	"math"
	"math/rand"

	"strtree/internal/geom"
	"strtree/internal/node"
)

// Paper data-set sizes.
const (
	// TigerSize is the number of line segments in the Long Beach data set.
	TigerSize = 53145
	// VLSISize is the number of rectangles in the Bell Labs CIF data set.
	VLSISize = 453994
	// CFDSize is the mesh size used in the paper's CFD experiments.
	CFDSize = 52510
	// CFDSmallSize is the small mesh plotted in the paper's Figures 5-6.
	CFDSmallSize = 5088
)

// UniformSquares generates r squares per the paper's synthetic recipe: the
// lower-left corner is uniform in the unit square; the square's area is
// uniform between 0 and twice the average area, where the average area is
// density/r; coordinates beyond 1.0 are clamped to 1.0 (so boundary squares
// become rectangles, as in the paper). Density 0 produces point data.
func UniformSquares(r int, density float64, seed int64) []node.Entry {
	rng := rand.New(rand.NewSource(seed))
	avgArea := 0.0
	if r > 0 {
		avgArea = density / float64(r)
	}
	out := make([]node.Entry, r)
	for i := range out {
		x, y := rng.Float64(), rng.Float64()
		side := math.Sqrt(rng.Float64() * 2 * avgArea)
		out[i] = node.Entry{
			Rect: geom.R2(x, y, math.Min(x+side, 1), math.Min(y+side, 1)),
			Ref:  uint64(i),
		}
	}
	return out
}

// UniformPoints generates r uniformly distributed points (density 0).
func UniformPoints(r int, seed int64) []node.Entry {
	return UniformSquares(r, 0, seed)
}

// Tiger generates r line-segment MBRs resembling a county street network:
// a mildly skewed mix of axis-aligned and diagonal street segments, denser
// around a downtown core and a few secondary centers. Use r = TigerSize
// for the paper's configuration.
func Tiger(r int, seed int64) []node.Entry {
	rng := rand.New(rand.NewSource(seed))
	// Secondary population centers (fractions of the unit square).
	centers := []struct{ x, y, sd, w float64 }{
		{0.35, 0.55, 0.10, 0.30}, // downtown
		{0.65, 0.30, 0.07, 0.15},
		{0.20, 0.20, 0.06, 0.10},
		{0.75, 0.75, 0.08, 0.10},
	}
	out := make([]node.Entry, r)
	for i := range out {
		var cx, cy float64
		u := rng.Float64()
		acc := 0.0
		clustered := false
		for _, c := range centers {
			acc += c.w
			if u < acc {
				cx = clamp01(c.x + rng.NormFloat64()*c.sd)
				cy = clamp01(c.y + rng.NormFloat64()*c.sd)
				clustered = true
				break
			}
		}
		if !clustered { // uniform background grid of streets
			cx, cy = rng.Float64(), rng.Float64()
		}
		// Street segments: mostly axis-aligned, some diagonal; length is
		// exponential with a short mean (city blocks).
		length := rng.ExpFloat64() * 0.004
		if length > 0.05 {
			length = 0.05
		}
		var dx, dy float64
		switch rng.Intn(4) {
		case 0: // horizontal
			dx, dy = length, 0
		case 1: // vertical
			dx, dy = 0, length
		default: // diagonal
			theta := rng.Float64() * 2 * math.Pi
			dx, dy = length*math.Cos(theta), length*math.Sin(theta)
		}
		x2, y2 := clamp01(cx+dx), clamp01(cy+dy)
		rect, _ := geom.NewRect(geom.Pt2(cx, cy), geom.Pt2(x2, y2))
		out[i] = node.Entry{Rect: rect, Ref: uint64(i)}
	}
	return Normalize(out)
}

// VLSI generates r rectangles resembling a chip layout: hierarchically
// clustered cells with log-uniform rectangle sizes spanning the 4.6
// decades the paper reports (largest about 40,000 times the smallest),
// leaving parts of the die covered by thousands of rectangles and other
// parts empty. Use r = VLSISize for the paper's configuration.
func VLSI(r int, seed int64) []node.Entry {
	rng := rand.New(rand.NewSource(seed))
	// Hierarchy: a handful of macro blocks, each with many standard cells.
	type cell struct{ x, y, sd, w float64 }
	var cells []cell
	totalW := 0.0
	nBlocks := 5 + rng.Intn(3)
	for b := 0; b < nBlocks; b++ {
		bx := 0.1 + 0.8*rng.Float64()
		by := 0.1 + 0.8*rng.Float64()
		bsd := 0.015 + 0.04*rng.Float64()
		// Zipf-like weights across blocks too: one or two macro blocks
		// hold most of the geometry, as on a real die.
		blockW := 1.0 / math.Pow(float64(b+1), 1.3)
		nCells := 10 + rng.Intn(30)
		for c := 0; c < nCells; c++ {
			// Zipf-like weights: a few cells dominate.
			w := blockW / math.Pow(float64(c+1), 1.3)
			cells = append(cells, cell{
				x:  clamp01(bx + rng.NormFloat64()*bsd),
				y:  clamp01(by + rng.NormFloat64()*bsd),
				sd: 0.002 + 0.02*rng.Float64(),
				w:  w,
			})
			totalW += w
		}
	}
	// Cumulative weights for sampling.
	cum := make([]float64, len(cells))
	acc := 0.0
	for i, c := range cells {
		acc += c.w / totalW
		cum[i] = acc
	}
	const (
		minArea   = 1e-9
		sizeRatio = 40000.0 // paper: largest ~40,000x the smallest
	)
	out := make([]node.Entry, r)
	for i := range out {
		// Pick a cell by weight (binary search on cum).
		u := rng.Float64()
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		c := cells[lo]
		cx := clamp01(c.x + rng.NormFloat64()*c.sd)
		cy := clamp01(c.y + rng.NormFloat64()*c.sd)
		// Log-uniform area across the full size ratio; aspect ratio
		// log-uniform in [1/8, 8] (wires and cells).
		area := minArea * math.Exp(rng.Float64()*math.Log(sizeRatio))
		aspect := math.Exp((rng.Float64()*2 - 1) * math.Log(8))
		w := math.Sqrt(area * aspect)
		h := area / w
		rect, _ := geom.NewRect(
			geom.Pt2(cx-w/2, cy-h/2),
			geom.Pt2(cx+w/2, cy+h/2),
		)
		out[i] = node.Entry{Rect: rect, Ref: uint64(i)}
	}
	return Normalize(out)
}

// ellipse is a rotated elliptical body (a wing element cross-section).
type ellipse struct {
	cx, cy float64 // center
	a, b   float64 // semi-axes (a along the chord)
	theta  float64 // rotation in radians
}

// contains reports whether the point is strictly inside the body.
func (e ellipse) contains(x, y float64) bool {
	dx, dy := x-e.cx, y-e.cy
	cos, sin := math.Cos(-e.theta), math.Sin(-e.theta)
	u := dx*cos - dy*sin
	v := dx*sin + dy*cos
	return (u*u)/(e.a*e.a)+(v*v)/(e.b*e.b) < 1
}

// at returns the point at parametric angle phi on the ellipse scaled by
// factor s >= 1 (s = 1 is the surface, s > 1 is outside).
func (e ellipse) at(phi, s float64) (x, y float64) {
	u := e.a * s * math.Cos(phi)
	v := e.b * s * math.Sin(phi)
	cos, sin := math.Cos(e.theta), math.Sin(e.theta)
	return e.cx + u*cos - v*sin, e.cy + u*sin + v*cos
}

// cfdBodies is the simulated 737 cross-section: a main wing element and a
// deployed flap, placed so the dense region sits inside the paper's query
// box (0.48,0.48)-(0.6,0.6).
var cfdBodies = []ellipse{
	{cx: 0.530, cy: 0.502, a: 0.034, b: 0.0075, theta: -0.10}, // main element
	{cx: 0.575, cy: 0.489, a: 0.013, b: 0.0030, theta: -0.45}, // flap
}

// CFD generates r mesh points resembling the paper's computational fluid
// dynamics data: points dense in boundary layers hugging the wing and flap
// surfaces (exponential falloff with distance), a sparse far field, and no
// points inside the bodies themselves — the "blank oval-ish areas" of the
// paper's Figure 5. Use r = CFDSize for the paper's experiments and
// r = CFDSmallSize for its Figure 5 plot.
func CFD(r int, seed int64) []node.Entry {
	rng := rand.New(rand.NewSource(seed))
	out := make([]node.Entry, 0, r)
	ref := uint64(0)
	for len(out) < r {
		var x, y float64
		switch p := rng.Float64(); {
		case p < 0.60: // main-element boundary layer
			x, y = surfacePoint(rng, cfdBodies[0], 0.05)
		case p < 0.82: // flap boundary layer
			x, y = surfacePoint(rng, cfdBodies[1], 0.12)
		case p < 0.94: // wake / near field around the whole assembly
			x = 0.54 + rng.NormFloat64()*0.05
			y = 0.50 + rng.NormFloat64()*0.03
		default: // far field, density decaying with distance
			d := rng.ExpFloat64() * 0.18
			theta := rng.Float64() * 2 * math.Pi
			x = 0.54 + d*math.Cos(theta)
			y = 0.50 + d*math.Sin(theta)
		}
		if x < 0 || x > 1 || y < 0 || y > 1 {
			continue
		}
		if cfdBodies[0].contains(x, y) || cfdBodies[1].contains(x, y) {
			continue
		}
		out = append(out, node.Entry{Rect: geom.PointRect(geom.Pt2(x, y)), Ref: ref})
		ref++
	}
	return out
}

// surfacePoint samples a point in the boundary layer of the body: uniform
// angle around the surface, exponential offset outward.
func surfacePoint(rng *rand.Rand, e ellipse, falloff float64) (x, y float64) {
	phi := rng.Float64() * 2 * math.Pi
	// Offset scale factor: 1 + Exp(mean falloff), keeping the point outside.
	s := 1 + 1e-3 + rng.ExpFloat64()*falloff
	return e.at(phi, s)
}

// CFDQueryRegion is the restricted query area the paper uses for the CFD
// experiments: the box (0.48,0.48)-(0.6,0.6) around the wing, where the
// data is concentrated.
func CFDQueryRegion() geom.Rect { return geom.R2(0.48, 0.48, 0.6, 0.6) }

// Normalize rescales entries so their joint bounding box becomes the unit
// square ("To provide a uniform experiment space we normalize all data
// sets to the unit square"). Degenerate axes are centered at 0.5. The
// input is modified in place and returned.
func Normalize(entries []node.Entry) []node.Entry {
	if len(entries) == 0 {
		return entries
	}
	dims := entries[0].Rect.Dim()
	lo := make([]float64, dims)
	hi := make([]float64, dims)
	for d := 0; d < dims; d++ {
		lo[d], hi[d] = math.Inf(1), math.Inf(-1)
	}
	for _, e := range entries {
		for d := 0; d < dims; d++ {
			lo[d] = math.Min(lo[d], e.Rect.Min[d])
			hi[d] = math.Max(hi[d], e.Rect.Max[d])
		}
	}
	for i := range entries {
		r := &entries[i].Rect
		for d := 0; d < dims; d++ {
			//strlint:ignore floateq hi and lo are min/max of the same values, so equality exactly detects a degenerate axis
			if hi[d] == lo[d] {
				r.Min[d], r.Max[d] = 0.5, 0.5
				continue
			}
			scale := 1 / (hi[d] - lo[d])
			r.Min[d] = (r.Min[d] - lo[d]) * scale
			r.Max[d] = (r.Max[d] - lo[d]) * scale
		}
	}
	return entries
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
