package datagen

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"strtree/internal/node"
)

// WriteCSV writes entries as "x0,y0,x1,y1,id" rows, the format
// cmd/strload consumes. Only 2-D entries are supported.
func WriteCSV(w io.Writer, entries []node.Entry) error {
	cw := csv.NewWriter(w)
	rec := make([]string, 5)
	for _, e := range entries {
		if e.Rect.Dim() != 2 {
			return fmt.Errorf("datagen: WriteCSV supports 2-D entries, got %d-D", e.Rect.Dim())
		}
		rec[0] = strconv.FormatFloat(e.Rect.Min[0], 'g', -1, 64)
		rec[1] = strconv.FormatFloat(e.Rect.Min[1], 'g', -1, 64)
		rec[2] = strconv.FormatFloat(e.Rect.Max[0], 'g', -1, 64)
		rec[3] = strconv.FormatFloat(e.Rect.Max[1], 'g', -1, 64)
		rec[4] = strconv.FormatUint(e.Ref, 10)
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Catalog maps data-set names to their generators at paper sizes, for
// tools that let the user pick a data set by name.
func Catalog() map[string]func(r int, seed int64) []node.Entry {
	return map[string]func(r int, seed int64) []node.Entry{
		"uniform": func(r int, seed int64) []node.Entry { return UniformSquares(r, 5.0, seed) },
		"points":  UniformPoints,
		"tiger":   Tiger,
		"vlsi":    VLSI,
		"cfd":     CFD,
	}
}

// DefaultSize returns the paper's size for a catalog data set (50,000 for
// the synthetic families).
func DefaultSize(name string) int {
	switch name {
	case "tiger":
		return TigerSize
	case "vlsi":
		return VLSISize
	case "cfd":
		return CFDSize
	default:
		return 50000
	}
}
