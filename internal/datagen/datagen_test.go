package datagen

import (
	"math"
	"testing"

	"strtree/internal/geom"
	"strtree/internal/node"
)

func inUnitSquare(t *testing.T, entries []node.Entry) {
	t.Helper()
	u := geom.UnitSquare()
	for i, e := range entries {
		if !e.Rect.Valid() {
			t.Fatalf("entry %d invalid: %v", i, e.Rect)
		}
		if !u.Contains(e.Rect) {
			t.Fatalf("entry %d outside unit square: %v", i, e.Rect)
		}
	}
}

func totalArea(entries []node.Entry) float64 {
	a := 0.0
	for _, e := range entries {
		a += e.Rect.Area()
	}
	return a
}

func TestUniformSquaresDensity(t *testing.T) {
	// Paper: density = sum of areas. Interior clamping loses a little, so
	// allow 15% slack.
	for _, d := range []float64{1.0, 2.5, 5.0} {
		entries := UniformSquares(20000, d, 1)
		if len(entries) != 20000 {
			t.Fatalf("len = %d", len(entries))
		}
		inUnitSquare(t, entries)
		got := totalArea(entries)
		if got < d*0.80 || got > d*1.05 {
			t.Fatalf("density %g: total area %g", d, got)
		}
	}
}

func TestUniformPointsAreDegenerate(t *testing.T) {
	entries := UniformPoints(1000, 2)
	inUnitSquare(t, entries)
	for i, e := range entries {
		if e.Rect.Area() != 0 || !e.Rect.Min.Equal(e.Rect.Max) {
			t.Fatalf("entry %d is not a point: %v", i, e.Rect)
		}
	}
	if totalArea(entries) != 0 {
		t.Fatal("point data has nonzero density")
	}
}

func TestUniformCoverageIsUniform(t *testing.T) {
	// Chi-square-ish sanity: each quadrant holds 25% +- 3% of the points.
	entries := UniformPoints(40000, 3)
	var q [4]int
	for _, e := range entries {
		i := 0
		if e.Rect.Min[0] > 0.5 {
			i++
		}
		if e.Rect.Min[1] > 0.5 {
			i += 2
		}
		q[i]++
	}
	for i, n := range q {
		frac := float64(n) / 40000
		if frac < 0.22 || frac > 0.28 {
			t.Fatalf("quadrant %d has fraction %.3f", i, frac)
		}
	}
}

func TestDeterminism(t *testing.T) {
	gens := map[string]func(seed int64) []node.Entry{
		"uniform": func(s int64) []node.Entry { return UniformSquares(500, 2, s) },
		"tiger":   func(s int64) []node.Entry { return Tiger(500, s) },
		"vlsi":    func(s int64) []node.Entry { return VLSI(500, s) },
		"cfd":     func(s int64) []node.Entry { return CFD(500, s) },
	}
	for name, gen := range gens {
		a, b := gen(42), gen(42)
		for i := range a {
			if !a[i].Rect.Equal(b[i].Rect) {
				t.Fatalf("%s: run differs at entry %d", name, i)
			}
		}
		c := gen(43)
		same := true
		for i := range a {
			if !a[i].Rect.Equal(c[i].Rect) {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: different seeds produced identical data", name)
		}
	}
}

func TestTigerShape(t *testing.T) {
	entries := Tiger(20000, 4)
	if len(entries) != 20000 {
		t.Fatalf("len = %d", len(entries))
	}
	inUnitSquare(t, entries)
	// Line segments: thin boxes, tiny total area.
	if a := totalArea(entries); a > 0.5 {
		t.Fatalf("segment data has area %g", a)
	}
	// Mild skew: the densest of a 4x4 grid of cells should hold well more
	// than 1/16 of the segments but not the majority.
	counts := gridCounts(entries, 4)
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	frac := float64(max) / float64(len(entries))
	if frac < 0.10 || frac > 0.50 {
		t.Fatalf("densest cell fraction %.3f, want mild skew in [0.10, 0.50]", frac)
	}
}

func TestVLSIShape(t *testing.T) {
	entries := VLSI(30000, 5)
	inUnitSquare(t, entries)
	// Size skew: largest/smallest area ratio must span about the paper's
	// 40,000x (normalization rescales, so compare within the set).
	minA, maxA := math.Inf(1), 0.0
	for _, e := range entries {
		a := e.Rect.Area()
		if a <= 0 {
			continue
		}
		minA = math.Min(minA, a)
		maxA = math.Max(maxA, a)
	}
	if ratio := maxA / minA; ratio < 1000 {
		t.Fatalf("size ratio only %.0f, want heavy size skew", ratio)
	}
	// Location skew: some cells of an 8x8 grid empty or nearly so, one
	// cell holding a big share.
	counts := gridCounts(entries, 8)
	max, empties := 0, 0
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c < 30000/640 { // under a tenth of the uniform share
			empties++
		}
	}
	if float64(max)/30000 < 0.10 {
		t.Fatalf("densest cell only %.3f of data, want strong clustering", float64(max)/30000)
	}
	if empties < 8 {
		t.Fatalf("only %d near-empty cells, want empty regions like a real die", empties)
	}
}

func TestCFDShape(t *testing.T) {
	entries := CFD(CFDSmallSize, 6)
	if len(entries) != CFDSmallSize {
		t.Fatalf("len = %d", len(entries))
	}
	inUnitSquare(t, entries)
	// All points, none inside the bodies.
	for i, e := range entries {
		if e.Rect.Area() != 0 {
			t.Fatalf("entry %d not a point", i)
		}
		x, y := e.Rect.Min[0], e.Rect.Min[1]
		for _, b := range cfdBodies {
			if b.contains(x, y) {
				t.Fatalf("entry %d inside a body at (%g, %g)", i, x, y)
			}
		}
	}
	// The majority of the data sits in the paper's restricted query box.
	box := CFDQueryRegion()
	in := 0
	for _, e := range entries {
		if box.ContainsPoint(e.Rect.Min) {
			in++
		}
	}
	if frac := float64(in) / float64(len(entries)); frac < 0.55 {
		t.Fatalf("only %.2f of CFD points in the query box, paper says the majority", frac)
	}
}

func TestCFDQueryRegion(t *testing.T) {
	if !CFDQueryRegion().Equal(geom.R2(0.48, 0.48, 0.6, 0.6)) {
		t.Fatal("CFD query region drifted from the paper's box")
	}
}

func TestNormalize(t *testing.T) {
	entries := []node.Entry{
		{Rect: geom.R2(10, 100, 20, 150)},
		{Rect: geom.R2(30, 200, 50, 300)},
	}
	Normalize(entries)
	mbr := geom.MBR([]geom.Rect{entries[0].Rect, entries[1].Rect})
	if !mbr.Equal(geom.UnitSquare()) {
		t.Fatalf("normalized MBR = %v", mbr)
	}
	// Relative geometry preserved: first rect is the left quarter in x.
	if got := entries[0].Rect.Max[0]; math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("x scale broken: %g", got)
	}
}

func TestNormalizeDegenerate(t *testing.T) {
	// All on one vertical line: x axis collapses to 0.5.
	entries := []node.Entry{
		{Rect: geom.R2(3, 1, 3, 2)},
		{Rect: geom.R2(3, 5, 3, 9)},
	}
	Normalize(entries)
	for i, e := range entries {
		if e.Rect.Min[0] != 0.5 || e.Rect.Max[0] != 0.5 {
			t.Fatalf("entry %d x = [%g, %g]", i, e.Rect.Min[0], e.Rect.Max[0])
		}
	}
	if Normalize(nil) != nil {
		t.Fatal("Normalize(nil) != nil")
	}
}

// gridCounts counts entry centers per cell of a g x g grid.
func gridCounts(entries []node.Entry, g int) []int {
	counts := make([]int, g*g)
	for _, e := range entries {
		x := int(e.Rect.CenterAxis(0) * float64(g))
		y := int(e.Rect.CenterAxis(1) * float64(g))
		if x >= g {
			x = g - 1
		}
		if y >= g {
			y = g - 1
		}
		counts[y*g+x]++
	}
	return counts
}

func BenchmarkUniformSquares50k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		UniformSquares(50000, 5, int64(i))
	}
}

func BenchmarkCFD50k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		CFD(50000, int64(i))
	}
}
