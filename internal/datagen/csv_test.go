package datagen

import (
	"bytes"
	"strings"
	"testing"

	"strtree/internal/geom"
	"strtree/internal/node"
)

func TestWriteCSV(t *testing.T) {
	entries := []node.Entry{
		{Rect: geom.R2(0.1, 0.2, 0.3, 0.4), Ref: 7},
		{Rect: geom.R2(0, 0, 1, 1), Ref: 8},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, entries); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines", len(lines))
	}
	if lines[0] != "0.1,0.2,0.3,0.4,7" {
		t.Fatalf("line 0 = %q", lines[0])
	}
	if lines[1] != "0,0,1,1,8" {
		t.Fatalf("line 1 = %q", lines[1])
	}
}

func TestWriteCSVRejects3D(t *testing.T) {
	entries := []node.Entry{{Rect: geom.UnitCube(3), Ref: 1}}
	if err := WriteCSV(&bytes.Buffer{}, entries); err == nil {
		t.Fatal("3-D entry accepted")
	}
}

func TestCatalogCoversPaperFamilies(t *testing.T) {
	cat := Catalog()
	for _, name := range []string{"uniform", "points", "tiger", "vlsi", "cfd"} {
		gen, ok := cat[name]
		if !ok {
			t.Fatalf("catalog missing %q", name)
		}
		entries := gen(50, 1)
		if len(entries) != 50 {
			t.Fatalf("%s generated %d items", name, len(entries))
		}
	}
}

func TestDefaultSize(t *testing.T) {
	cases := map[string]int{
		"tiger":   TigerSize,
		"vlsi":    VLSISize,
		"cfd":     CFDSize,
		"uniform": 50000,
		"points":  50000,
	}
	for name, want := range cases {
		if got := DefaultSize(name); got != want {
			t.Errorf("DefaultSize(%q) = %d, want %d", name, got, want)
		}
	}
}
