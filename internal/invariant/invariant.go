// Package invariant is a runtime structural verifier for packed R-trees:
// it walks a tree page by page and asserts the properties the STR paper's
// correctness argument rests on, failing with a descriptive error at the
// first violation.
//
// The checks, and where the paper claims them:
//
//   - Balance: every path from the root has the same length, node levels
//     decrease by exactly one per step, and leaves are level 0 (R-trees
//     are "height-balanced", Section 1).
//   - Tight MBRs: every internal entry's rectangle is exactly the minimum
//     bounding rectangle of its child node — not merely containing it
//     (Figure 1's structure; a shrunken MBR loses query results, a loose
//     one costs extra disk accesses).
//   - Fill bounds: no node exceeds the capacity n and no non-root node is
//     empty ("Each R-Tree node contains at most n entries", Section 2.1).
//   - Packed fill (optional, Config.Packed): a bulk-loaded tree fills
//     every node to exactly n entries except the last node of each level
//     — ceil(p/n) nodes per level — which is what gives packing its
//     near-100% space utilization (Section 2.2, "General Algorithm").
//   - Page round-trip (optional, Config.RoundTrip): re-serializing each
//     decoded node reproduces the stored page byte for byte, so what the
//     verifier saw is exactly what is on disk ("one node per page",
//     Section 2.1).
//   - Accounting: no page is referenced twice, and the number of data
//     entries found equals the tree's recorded count.
package invariant

import (
	"bytes"
	"errors"
	"fmt"

	"strtree/internal/node"
	"strtree/internal/rtree"
	"strtree/internal/storage"
)

// Sentinel errors, one per invariant class; every returned error wraps
// exactly one of these and adds page-level detail.
var (
	// ErrUnbalanced reports a node at the wrong level: unequal root-leaf
	// path lengths or levels not decreasing by one.
	ErrUnbalanced = errors.New("invariant: unbalanced tree")
	// ErrShrunkenMBR reports an internal entry whose rectangle fails to
	// contain its child's MBR: the subtree leaks out of its advertised
	// bounds and queries silently lose results.
	ErrShrunkenMBR = errors.New("invariant: entry MBR does not contain child MBR")
	// ErrLooseMBR reports an internal entry whose rectangle contains but
	// does not equal its child's MBR: correct results, wasted disk reads.
	ErrLooseMBR = errors.New("invariant: entry MBR not tight around child MBR")
	// ErrOverfullNode reports a node holding more than capacity entries.
	ErrOverfullNode = errors.New("invariant: node exceeds capacity")
	// ErrEmptyNode reports an empty non-root node.
	ErrEmptyNode = errors.New("invariant: empty non-root node")
	// ErrPackedFill reports a bulk-loaded level that is not packed to
	// capacity (only the last node of a level may be short).
	ErrPackedFill = errors.New("invariant: packed fill violated")
	// ErrPageRoundTrip reports a node whose re-serialization differs from
	// the stored page bytes.
	ErrPageRoundTrip = errors.New("invariant: page round-trip mismatch")
	// ErrPageShared reports a page referenced from two places.
	ErrPageShared = errors.New("invariant: page referenced twice")
	// ErrCount reports a mismatch between data entries found and the
	// tree's recorded count.
	ErrCount = errors.New("invariant: entry count mismatch")
	// ErrDims reports a node whose dimensionality differs from the tree's.
	ErrDims = errors.New("invariant: dimensionality mismatch")
	// ErrFreeListLive reports a free-list page that is still referenced by
	// the live tree — recycling it would hand a live node's page to a new
	// node. Dynamic deletes are the only producer of free pages, so this
	// guards the write path's page accounting.
	ErrFreeListLive = errors.New("invariant: free-list page is referenced by the tree")
)

// Config selects the optional strict checks.
type Config struct {
	// Packed additionally asserts the STR packing fill factor: every node
	// except the last of each level holds exactly capacity entries. True
	// for freshly bulk-loaded trees (any packing algorithm); false for
	// trees mutated by Insert/Delete.
	Packed bool
	// RoundTrip additionally re-serializes every node and compares it
	// against the stored page bytes.
	RoundTrip bool
}

// Check walks the whole tree and returns the first invariant violation,
// or nil. It reads every page through the tree's buffer pool, so callers
// measuring I/O should reset pool stats afterwards.
func Check(t *rtree.Tree, cfg Config) error {
	if t.Height() == 0 {
		if t.Len() != 0 {
			return fmt.Errorf("%w: empty tree with count %d", ErrCount, t.Len())
		}
		return nil
	}
	c := &checker{
		tree: t,
		cfg:  cfg,
		seen: map[storage.PageID]bool{t.MetaPage(): true},
		// nodes/entries per level, indexed by node.Level (0 = leaf).
		nodes:   make([]int, t.Height()),
		entries: make([]int, t.Height()),
	}
	if cfg.RoundTrip {
		c.scratch = make([]byte, t.Pool().Pager().PageSize())
	}
	found, err := c.walk(t.Root(), t.Height()-1)
	if err != nil {
		return err
	}
	if found != t.Len() {
		return fmt.Errorf("%w: found %d data entries, meta records %d", ErrCount, found, t.Len())
	}
	// The free list must be disjoint from every live page the walk saw
	// (including the meta page) and hold no duplicates: a violation means
	// newPage will eventually hand a live page to a fresh node.
	freeSeen := make(map[storage.PageID]bool)
	for _, id := range t.FreePages() {
		if c.seen[id] {
			return fmt.Errorf("%w: page %d", ErrFreeListLive, id)
		}
		if freeSeen[id] {
			return fmt.Errorf("%w: page %d listed twice in the free list", ErrFreeListLive, id)
		}
		freeSeen[id] = true
	}
	if cfg.Packed {
		if err := c.checkPackedFill(); err != nil {
			return err
		}
	}
	return nil
}

type checker struct {
	tree    *rtree.Tree
	cfg     Config
	seen    map[storage.PageID]bool
	nodes   []int
	entries []int
	scratch []byte
}

// walk verifies the subtree rooted at id, which must sit at wantLevel, and
// returns the number of data entries beneath it.
func (c *checker) walk(id storage.PageID, wantLevel int) (int, error) {
	if c.seen[id] {
		return 0, fmt.Errorf("%w: page %d", ErrPageShared, id)
	}
	c.seen[id] = true
	var n node.Node
	raw, err := c.readPage(id, &n)
	if err != nil {
		return 0, err
	}
	if n.Level != wantLevel {
		return 0, fmt.Errorf("%w: page %d at level %d, expected level %d", ErrUnbalanced, id, n.Level, wantLevel)
	}
	if n.Dims != c.tree.Dims() {
		return 0, fmt.Errorf("%w: page %d has %d dims, tree has %d", ErrDims, id, n.Dims, c.tree.Dims())
	}
	if len(n.Entries) > c.tree.Capacity() {
		return 0, fmt.Errorf("%w: page %d holds %d entries, capacity is %d",
			ErrOverfullNode, id, len(n.Entries), c.tree.Capacity())
	}
	if len(n.Entries) == 0 && id != c.tree.Root() {
		return 0, fmt.Errorf("%w: page %d", ErrEmptyNode, id)
	}
	if c.cfg.RoundTrip && raw != nil {
		if err := node.Marshal(&n, c.scratch); err != nil {
			return 0, fmt.Errorf("%w: page %d: %v", ErrPageRoundTrip, id, err)
		}
		if !bytes.Equal(raw, c.scratch) {
			return 0, fmt.Errorf("%w: page %d re-serializes differently", ErrPageRoundTrip, id)
		}
	}
	c.nodes[n.Level]++
	c.entries[n.Level] += len(n.Entries)
	if n.IsLeaf() {
		return len(n.Entries), nil
	}
	// Internal node: every entry rectangle must be exactly its child's
	// MBR. Entries are copied before recursing because the decoded node's
	// storage is reused by child reads.
	entries := make([]node.Entry, len(n.Entries))
	copy(entries, n.Entries)
	for i := range entries {
		entries[i].Rect = entries[i].Rect.Clone()
	}
	total := 0
	for i, e := range entries {
		childID := storage.PageID(e.Ref)
		var child node.Node
		if _, err := c.readPage(childID, &child); err != nil {
			return 0, err
		}
		if len(child.Entries) == 0 {
			return 0, fmt.Errorf("%w: page %d (child %d of page %d)", ErrEmptyNode, childID, i, id)
		}
		got := child.MBR()
		if !e.Rect.Contains(got) {
			return 0, fmt.Errorf("%w: page %d entry %d advertises %v, child page %d covers %v",
				ErrShrunkenMBR, id, i, e.Rect, childID, got)
		}
		if !e.Rect.Equal(got) {
			return 0, fmt.Errorf("%w: page %d entry %d advertises %v, child page %d covers %v",
				ErrLooseMBR, id, i, e.Rect, childID, got)
		}
		sub, err := c.walk(childID, wantLevel-1)
		if err != nil {
			return 0, err
		}
		total += sub
	}
	return total, nil
}

// readPage fetches page id, decodes it into n and, when round-trip
// checking is on, returns a private copy of the raw bytes.
func (c *checker) readPage(id storage.PageID, n *node.Node) ([]byte, error) {
	f, err := c.tree.Pool().Fetch(id)
	if err != nil {
		return nil, err
	}
	defer c.tree.Pool().Release(f)
	var raw []byte
	if c.cfg.RoundTrip {
		raw = append([]byte(nil), f.Data()...)
	}
	if err := node.Unmarshal(f.Data(), n); err != nil {
		return nil, fmt.Errorf("invariant: page %d: %w", id, err)
	}
	return raw, nil
}

// checkPackedFill asserts the paper's packing guarantee level by level:
// with e entries to place at a level and capacity n, the level must use
// exactly ceil(e/n) nodes, i.e. every node but the last is full.
func (c *checker) checkPackedFill() error {
	cap := c.tree.Capacity()
	for level := range c.nodes {
		wantNodes := (c.entries[level] + cap - 1) / cap
		if c.nodes[level] != wantNodes {
			return fmt.Errorf("%w: level %d stores %d entries in %d nodes; packing requires ceil(%d/%d) = %d nodes",
				ErrPackedFill, level, c.entries[level], c.nodes[level], c.entries[level], cap, wantNodes)
		}
	}
	return nil
}
