package invariant_test

import (
	"errors"
	"math/rand"
	"testing"

	"strtree/internal/buffer"
	"strtree/internal/geom"
	"strtree/internal/invariant"
	"strtree/internal/node"
	"strtree/internal/pack"
	"strtree/internal/rtree"
	"strtree/internal/storage"
)

// strict turns on every check; a healthy bulk-loaded tree must pass it.
var strict = invariant.Config{Packed: true, RoundTrip: true}

// packedTree bulk-loads count random rectangles with STR at capacity 8 so
// even modest counts produce a multi-level tree with corruptible internals.
func packedTree(t *testing.T, count int) (*rtree.Tree, *buffer.Pool) {
	t.Helper()
	pool := buffer.NewPool(storage.NewMemPager(storage.DefaultPageSize), 64)
	tr, err := rtree.Create(pool, rtree.Config{Dims: 2, Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	entries := make([]node.Entry, count)
	for i := range entries {
		x, y := rng.Float64(), rng.Float64()
		entries[i] = node.Entry{
			Rect: geom.R2(x, y, x+0.01*rng.Float64(), y+0.01*rng.Float64()),
			Ref:  uint64(i),
		}
	}
	if err := tr.BulkLoad(entries, pack.STR{}); err != nil {
		t.Fatal(err)
	}
	return tr, pool
}

// corruptPage decodes page id, hands the node to mutate, and writes the
// re-serialized node back through the pager so the CRC stays valid: the
// corruption is structural, not a storage fault, and must be caught by the
// invariant walk rather than the page decoder.
func corruptPage(t *testing.T, pool *buffer.Pool, id storage.PageID, mutate func(n *node.Node)) {
	t.Helper()
	buf := make([]byte, pool.Pager().PageSize())
	if err := pool.Pager().ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	var n node.Node
	if err := node.Unmarshal(buf, &n); err != nil {
		t.Fatal(err)
	}
	mutate(&n)
	if err := node.Marshal(&n, buf); err != nil {
		t.Fatal(err)
	}
	if err := pool.Pager().WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	// Drop cached frames so the checker rereads the corrupted bytes.
	if err := pool.Invalidate(); err != nil {
		t.Fatal(err)
	}
}

// readNode decodes one page outside the checker.
func readNode(t *testing.T, pool *buffer.Pool, id storage.PageID) node.Node {
	t.Helper()
	buf := make([]byte, pool.Pager().PageSize())
	if err := pool.Pager().ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	var n node.Node
	if err := node.Unmarshal(buf, &n); err != nil {
		t.Fatal(err)
	}
	n.Entries = append([]node.Entry(nil), n.Entries...)
	for i := range n.Entries {
		n.Entries[i].Rect = n.Entries[i].Rect.Clone()
	}
	return n
}

// leftmostLeaf follows first-child references from the root down to a
// leaf page.
func leftmostLeaf(t *testing.T, pool *buffer.Pool, tr *rtree.Tree) storage.PageID {
	t.Helper()
	id := tr.Root()
	for {
		n := readNode(t, pool, id)
		if n.IsLeaf() {
			return id
		}
		id = storage.PageID(n.Entries[0].Ref)
	}
}

func TestPackedTreePassesStrictCheck(t *testing.T) {
	for _, count := range []int{0, 1, 7, 8, 9, 64, 65, 1000} {
		tr, _ := packedTree(t, count)
		if err := invariant.Check(tr, strict); err != nil {
			t.Errorf("count=%d: healthy packed tree rejected: %v", count, err)
		}
	}
}

func TestDynamicTreePassesCheck(t *testing.T) {
	pool := buffer.NewPool(storage.NewMemPager(storage.DefaultPageSize), 64)
	tr, err := rtree.Create(pool, rtree.Config{Dims: 2, Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		x, y := rng.Float64(), rng.Float64()
		if err := tr.Insert(geom.R2(x, y, x+0.01, y+0.01), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Insert-built trees satisfy every universal invariant but not the
	// packed fill factor.
	if err := invariant.Check(tr, invariant.Config{RoundTrip: true}); err != nil {
		t.Errorf("healthy dynamic tree rejected: %v", err)
	}
	if err := invariant.Check(tr, strict); !errors.Is(err, invariant.ErrPackedFill) {
		t.Errorf("dynamic tree passed the packed fill check: %v", err)
	}
}

func TestDetectsShrunkenMBR(t *testing.T) {
	tr, pool := packedTree(t, 1000)
	// Shrink the first entry of the root: its subtree now leaks outside
	// the advertised rectangle.
	corruptPage(t, pool, tr.Root(), func(n *node.Node) {
		r := &n.Entries[0].Rect
		for d := range r.Max {
			r.Max[d] = r.Min[d] + (r.Max[d]-r.Min[d])/4
		}
	})
	err := invariant.Check(tr, strict)
	if !errors.Is(err, invariant.ErrShrunkenMBR) {
		t.Fatalf("want ErrShrunkenMBR, got: %v", err)
	}
	t.Logf("rejected with: %v", err)
}

func TestDetectsLooseMBR(t *testing.T) {
	tr, pool := packedTree(t, 1000)
	corruptPage(t, pool, tr.Root(), func(n *node.Node) {
		n.Entries[0].Rect.Max[0] += 1.0
	})
	err := invariant.Check(tr, strict)
	if !errors.Is(err, invariant.ErrLooseMBR) {
		t.Fatalf("want ErrLooseMBR, got: %v", err)
	}
	t.Logf("rejected with: %v", err)
}

func TestDetectsOverfullNode(t *testing.T) {
	tr, pool := packedTree(t, 1000)
	// Duplicate an entry inside a full leaf: the page still fits the copy
	// (capacity 8 is far below the 4 KiB page limit) and the node's MBR is
	// unchanged, so only the fill bound can catch it.
	leafID := leftmostLeaf(t, pool, tr)
	corruptPage(t, pool, leafID, func(n *node.Node) {
		n.Entries = append(n.Entries, n.Entries[0])
	})
	err := invariant.Check(tr, strict)
	if !errors.Is(err, invariant.ErrOverfullNode) {
		t.Fatalf("want ErrOverfullNode, got: %v", err)
	}
	t.Logf("rejected with: %v", err)
}

func TestDetectsSkewedHeight(t *testing.T) {
	tr, pool := packedTree(t, 1000)
	// Claim a leaf sits one level higher than it does: one root-leaf path
	// is now shorter than the others.
	leafID := leftmostLeaf(t, pool, tr)
	corruptPage(t, pool, leafID, func(n *node.Node) {
		n.Level = 1
	})
	err := invariant.Check(tr, strict)
	if !errors.Is(err, invariant.ErrUnbalanced) {
		t.Fatalf("want ErrUnbalanced, got: %v", err)
	}
	t.Logf("rejected with: %v", err)
}

func TestDetectsCountMismatch(t *testing.T) {
	tr, pool := packedTree(t, 1000)
	// Drop a data entry from a leaf without updating the parent: the leaf
	// MBR may stay valid (interior entry), but the total no longer matches
	// the metadata count. Pick an entry whose rectangle does not touch the
	// leaf's MBR so the tightness check stays satisfied.
	leafID := leftmostLeaf(t, pool, tr)
	leaf := readNode(t, pool, leafID)
	mbr := leaf.MBR()
	drop := -1
	for i, e := range leaf.Entries {
		inner := true
		for d := 0; d < leaf.Dims; d++ {
			if e.Rect.Min[d] == mbr.Min[d] || e.Rect.Max[d] == mbr.Max[d] {
				inner = false
				break
			}
		}
		if inner {
			drop = i
			break
		}
	}
	if drop < 0 {
		t.Skip("no interior entry in the probed leaf")
	}
	corruptPage(t, pool, leafID, func(n *node.Node) {
		n.Entries = append(n.Entries[:drop], n.Entries[drop+1:]...)
	})
	err := invariant.Check(tr, invariant.Config{})
	if !errors.Is(err, invariant.ErrCount) {
		t.Fatalf("want ErrCount, got: %v", err)
	}
	t.Logf("rejected with: %v", err)
}

// TestDistinctErrors pins the acceptance criterion that each corruption
// class is rejected with its own sentinel, not a shared generic failure.
func TestDistinctErrors(t *testing.T) {
	sentinels := []error{
		invariant.ErrUnbalanced, invariant.ErrShrunkenMBR, invariant.ErrLooseMBR,
		invariant.ErrOverfullNode, invariant.ErrEmptyNode, invariant.ErrPackedFill,
		invariant.ErrPageRoundTrip, invariant.ErrPageShared, invariant.ErrCount,
		invariant.ErrDims,
	}
	seen := map[string]bool{}
	for _, s := range sentinels {
		if seen[s.Error()] {
			t.Fatalf("duplicate sentinel message %q", s.Error())
		}
		seen[s.Error()] = true
		for _, other := range sentinels {
			if s != other && errors.Is(s, other) {
				t.Fatalf("sentinel %v wraps %v", s, other)
			}
		}
	}
}
