package wkt

import (
	"errors"
	"testing"

	"strtree/internal/geom"
)

func mustMBR(t *testing.T, s string) geom.Rect {
	t.Helper()
	r, err := MBR(s)
	if err != nil {
		t.Fatalf("MBR(%q): %v", s, err)
	}
	return r
}

func TestPoint(t *testing.T) {
	if got := mustMBR(t, "POINT (3 4)"); !got.Equal(geom.R2(3, 4, 3, 4)) {
		t.Fatalf("got %v", got)
	}
	// Case-insensitive, flexible whitespace, negative and scientific.
	if got := mustMBR(t, "point(-1.5e1   2.25)"); !got.Equal(geom.R2(-15, 2.25, -15, 2.25)) {
		t.Fatalf("got %v", got)
	}
}

func TestPointZAndM(t *testing.T) {
	if got := mustMBR(t, "POINT Z (1 2 3)"); !got.Equal(geom.R2(1, 2, 1, 2)) {
		t.Fatalf("Z got %v", got)
	}
	if got := mustMBR(t, "POINT ZM (1 2 3 4)"); !got.Equal(geom.R2(1, 2, 1, 2)) {
		t.Fatalf("ZM got %v", got)
	}
}

func TestLineString(t *testing.T) {
	got := mustMBR(t, "LINESTRING (0 0, 10 5, 3 -2)")
	if !got.Equal(geom.R2(0, -2, 10, 5)) {
		t.Fatalf("got %v", got)
	}
}

func TestMultiPointBothForms(t *testing.T) {
	a := mustMBR(t, "MULTIPOINT ((1 1), (5 9))")
	b := mustMBR(t, "MULTIPOINT (1 1, 5 9)")
	want := geom.R2(1, 1, 5, 9)
	if !a.Equal(want) || !b.Equal(want) {
		t.Fatalf("got %v and %v", a, b)
	}
}

func TestPolygonWithHole(t *testing.T) {
	got := mustMBR(t, "POLYGON ((0 0, 8 0, 8 6, 0 6, 0 0), (2 2, 3 2, 3 3, 2 3, 2 2))")
	if !got.Equal(geom.R2(0, 0, 8, 6)) {
		t.Fatalf("got %v", got)
	}
}

func TestMultiLineStringAndMultiPolygon(t *testing.T) {
	got := mustMBR(t, "MULTILINESTRING ((0 0, 1 1), (5 5, 6 7))")
	if !got.Equal(geom.R2(0, 0, 6, 7)) {
		t.Fatalf("mls got %v", got)
	}
	got = mustMBR(t, "MULTIPOLYGON (((0 0, 2 0, 2 2, 0 0)), ((10 10, 12 10, 12 13, 10 10)))")
	if !got.Equal(geom.R2(0, 0, 12, 13)) {
		t.Fatalf("mp got %v", got)
	}
}

func TestGeometryCollection(t *testing.T) {
	got := mustMBR(t, "GEOMETRYCOLLECTION (POINT (1 2), LINESTRING (0 0, 5 5), POLYGON ((-1 -1, 3 -1, 3 3, -1 -1)))")
	if !got.Equal(geom.R2(-1, -1, 5, 5)) {
		t.Fatalf("got %v", got)
	}
}

func TestEmptyGeometries(t *testing.T) {
	for _, s := range []string{"POINT EMPTY", "LINESTRING EMPTY", "POLYGON EMPTY", "GEOMETRYCOLLECTION EMPTY"} {
		if _, err := MBR(s); !errors.Is(err, ErrEmpty) {
			t.Errorf("MBR(%q): %v, want ErrEmpty", s, err)
		}
	}
	// Collections with one empty member still use the others.
	got := mustMBR(t, "GEOMETRYCOLLECTION (POINT EMPTY, POINT (2 3))")
	if !got.Equal(geom.R2(2, 3, 2, 3)) {
		t.Fatalf("got %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"CIRCLE (1 2, 3)",
		"POINT 1 2",
		"POINT (1)",
		"POINT (1 2",
		"POINT (a b)",
		"LINESTRING ((0 0, 1 1))x",
		"POINT (1 2) garbage",
		"LINESTRING (0 0 , )",
	}
	for _, s := range cases {
		if _, err := MBR(s); err == nil {
			t.Errorf("MBR(%q) succeeded", s)
		}
	}
}

func TestWhitespaceTolerance(t *testing.T) {
	got := mustMBR(t, "  \tLINESTRING\n( 0  0 ,\r\n 2 3 )  ")
	if !got.Equal(geom.R2(0, 0, 2, 3)) {
		t.Fatalf("got %v", got)
	}
}

func BenchmarkMBRPolygon(b *testing.B) {
	s := "POLYGON ((0 0, 8 0, 8 6, 0 6, 0 0), (2 2, 3 2, 3 3, 2 3, 2 2))"
	for i := 0; i < b.N; i++ {
		if _, err := MBR(s); err != nil {
			b.Fatal(err)
		}
	}
}
