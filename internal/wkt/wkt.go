// Package wkt parses the common subset of OGC Well-Known Text geometry
// into minimum bounding rectangles. R-trees index MBRs, not exact shapes
// (paper Section 2.1: "arbitrary geometric objects are handled by
// representing each object by its minimum bounding rectangle"), so the
// bounding box is all an index loader needs from a geometry.
//
// Supported: POINT, MULTIPOINT, LINESTRING, MULTILINESTRING, POLYGON,
// MULTIPOLYGON and GEOMETRYCOLLECTION, in 2-D, including EMPTY. Z/M
// ordinates are accepted and ignored beyond the first two.
package wkt

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"strtree/internal/geom"
)

// ErrEmpty is returned for geometries with no points (e.g. "POINT EMPTY"),
// which have no bounding rectangle.
var ErrEmpty = fmt.Errorf("wkt: empty geometry has no bounding box")

// MBR parses a WKT string and returns the 2-D minimum bounding rectangle
// of the geometry.
func MBR(s string) (geom.Rect, error) {
	p := &parser{in: s}
	box := newBox()
	if err := p.geometry(&box); err != nil {
		return geom.Rect{}, err
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return geom.Rect{}, fmt.Errorf("wkt: trailing input at offset %d", p.pos)
	}
	if !box.touched {
		return geom.Rect{}, ErrEmpty
	}
	return geom.Rect{Min: geom.Pt2(box.minX, box.minY), Max: geom.Pt2(box.maxX, box.maxY)}, nil
}

// box accumulates coordinate extrema.
type box struct {
	minX, minY, maxX, maxY float64
	touched                bool
}

func newBox() box {
	inf := math.Inf(1)
	return box{minX: inf, minY: inf, maxX: -inf, maxY: -inf}
}

func (b *box) add(x, y float64) {
	if x < b.minX {
		b.minX = x
	}
	if y < b.minY {
		b.minY = y
	}
	if x > b.maxX {
		b.maxX = x
	}
	if y > b.maxY {
		b.maxY = y
	}
	b.touched = true
}

// parser is a recursive-descent WKT reader.
type parser struct {
	in  string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t' || p.in[p.pos] == '\n' || p.in[p.pos] == '\r') {
		p.pos++
	}
}

// word reads an uppercase identifier.
func (p *parser) word() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') {
			p.pos++
			continue
		}
		break
	}
	return strings.ToUpper(p.in[start:p.pos])
}

// peekWord reads a word without consuming it.
func (p *parser) peekWord() string {
	save := p.pos
	w := p.word()
	p.pos = save
	return w
}

func (p *parser) expect(c byte) error {
	p.skipSpace()
	if p.pos >= len(p.in) || p.in[p.pos] != c {
		return fmt.Errorf("wkt: expected %q at offset %d", string(c), p.pos)
	}
	p.pos++
	return nil
}

func (p *parser) accept(c byte) bool {
	p.skipSpace()
	if p.pos < len(p.in) && p.in[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

// number reads one float.
func (p *parser) number() (float64, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' {
			p.pos++
			continue
		}
		break
	}
	if start == p.pos {
		return 0, fmt.Errorf("wkt: expected number at offset %d", p.pos)
	}
	v, err := strconv.ParseFloat(p.in[start:p.pos], 64)
	if err != nil {
		return 0, fmt.Errorf("wkt: bad number %q: %w", p.in[start:p.pos], err)
	}
	return v, nil
}

// geometry parses one tagged geometry into b.
func (p *parser) geometry(b *box) error {
	tag := p.word()
	// Optional dimensionality suffix: Z, M, ZM.
	switch p.peekWord() {
	case "Z", "M", "ZM":
		p.word()
	}
	if p.peekWord() == "EMPTY" {
		p.word()
		return nil
	}
	switch tag {
	case "POINT":
		return p.parens(func() error { return p.coord(b) })
	case "MULTIPOINT":
		// Both "((1 2), (3 4))" and "(1 2, 3 4)" appear in the wild.
		return p.parens(func() error {
			return p.commaList(func() error {
				if p.accept('(') {
					if err := p.coord(b); err != nil {
						return err
					}
					return p.expect(')')
				}
				return p.coord(b)
			})
		})
	case "LINESTRING":
		return p.coordList(b)
	case "MULTILINESTRING", "POLYGON":
		return p.parens(func() error {
			return p.commaList(func() error { return p.coordList(b) })
		})
	case "MULTIPOLYGON":
		return p.parens(func() error {
			return p.commaList(func() error {
				return p.parens(func() error {
					return p.commaList(func() error { return p.coordList(b) })
				})
			})
		})
	case "GEOMETRYCOLLECTION":
		return p.parens(func() error {
			return p.commaList(func() error { return p.geometry(b) })
		})
	case "":
		return fmt.Errorf("wkt: missing geometry tag at offset %d", p.pos)
	default:
		return fmt.Errorf("wkt: unsupported geometry %q", tag)
	}
}

// parens runs body between '(' and ')'.
func (p *parser) parens(body func() error) error {
	if err := p.expect('('); err != nil {
		return err
	}
	if err := body(); err != nil {
		return err
	}
	return p.expect(')')
}

// commaList runs body one or more times separated by commas.
func (p *parser) commaList(body func() error) error {
	for {
		if err := body(); err != nil {
			return err
		}
		if !p.accept(',') {
			return nil
		}
	}
}

// coordList parses "(x y, x y, ...)".
func (p *parser) coordList(b *box) error {
	return p.parens(func() error {
		return p.commaList(func() error { return p.coord(b) })
	})
}

// coord parses "x y [z [m]]" and records the first two ordinates.
func (p *parser) coord(b *box) error {
	x, err := p.number()
	if err != nil {
		return err
	}
	y, err := p.number()
	if err != nil {
		return err
	}
	// Swallow optional Z / M ordinates.
	for i := 0; i < 2; i++ {
		save := p.pos
		if _, err := p.number(); err != nil {
			p.pos = save
			break
		}
	}
	b.add(x, y)
	return nil
}
