package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// emissionPrefixes name methods/functions that emit ordered output: page
// and byte writers, channel feeders, slice builders. A call with one of
// these prefixes (case-insensitive) inside a range-over-map body means map
// iteration order leaks into what the layer produces.
var emissionPrefixes = []string{
	"write", "emit", "append", "push", "put", "flush", "spill", "send", "encode",
}

var maporderCheck = &Check{
	Name: "maporder",
	Doc: "Flags range-over-map loops whose body emits ordered output " +
		"(appends to a slice, writes pages or bytes, sends on a channel) " +
		"inside the deterministic build layers (the root package, pack, " +
		"psort, extsort, rtree). Map iteration order is randomized per run, " +
		"so it must never reach build output: collect the keys, sort them, " +
		"then iterate. A loop that only collects into a slice which is " +
		"sorted later in the same block is accepted.",
	run: func(p *pass) {
		if !deterministicLayers[p.pkg.path] {
			return
		}
		for _, f := range p.pkg.files {
			p.walkFile(f, hooks{
				rangeOver: func(w *walker, sc *scope, s *ast.RangeStmt, rest []ast.Stmt) {
					if !isMapType(p.a, w.r.typeOf(sc, s.X)) {
						return
					}
					for _, em := range findEmissions(s.Body) {
						if em.collectVar != "" && sortedAfter(em.collectVar, rest) {
							continue
						}
						p.reportf(em.pos, "maporder",
							"map iteration order reaches ordered output (%s) in deterministic layer %s; sort the keys first",
							em.desc, pkgDisplay(p.pkg.path))
					}
				},
			})
		}
	},
}

// isMapType reports whether t is a map, following named types.
func isMapType(a *Analyzer, t typeRef) bool {
	t = deref(t)
	if t.kind == kNamed {
		t = deref(a.underlying(t))
	}
	return t.kind == kMap
}

// emission is one ordered-output site inside a range-over-map body.
type emission struct {
	pos        token.Pos
	desc       string
	collectVar string // non-empty for `x = append(x, ...)` collection
}

// findEmissions scans a range body for statements whose effect depends on
// iteration order: slice collection via append, calls to emission-named
// functions, and channel sends. Nested function literals are included —
// they run (or are scheduled) per iteration.
func findEmissions(body *ast.BlockStmt) []emission {
	var out []emission
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			out = append(out, emission{pos: x.Arrow, desc: "channel send"})
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && i < len(x.Lhs) {
					if lhs, ok := x.Lhs[i].(*ast.Ident); ok {
						out = append(out, emission{
							pos:        call.Pos(),
							desc:       "append to " + lhs.Name,
							collectVar: lhs.Name,
						})
					}
				}
			}
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "append" {
				return true // handled via the AssignStmt collection case
			}
			name := calleeBase(x)
			lower := strings.ToLower(name)
			for _, pre := range emissionPrefixes {
				if strings.HasPrefix(lower, pre) {
					out = append(out, emission{pos: x.Pos(), desc: "call to " + calleeName(x)})
					break
				}
			}
		}
		return true
	})
	return out
}

// calleeBase returns the bare function or method name of a call.
func calleeBase(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// sortedAfter reports whether the collected variable is passed to a
// sort call (sort.*, slices.Sort*) in the statements following the loop
// in the same block.
func sortedAfter(varName string, rest []ast.Stmt) bool {
	for _, st := range rest {
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return true
			}
			if !strings.Contains(strings.ToLower(calleeBase(call)), "sort") {
				return true
			}
			for _, arg := range call.Args {
				if id, ok := arg.(*ast.Ident); ok && id.Name == varName {
					found = true
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
