package lint

import (
	"go/ast"
	"go/token"
)

var floateqCheck = &Check{
	Name: "floateq",
	Doc: "Flags == and != where either operand is floating point. Exact " +
		"float comparison is almost always a rounding bug in geometry code; " +
		"compare with a tolerance, or annotate the rare exact-equality " +
		"contract with //strlint:ignore floateq <reason>.",
	run: func(p *pass) {
		for _, f := range p.pkg.files {
			p.walkFile(f, hooks{
				binary: func(w *walker, sc *scope, x *ast.BinaryExpr) {
					if x.Op != token.EQL && x.Op != token.NEQ {
						return
					}
					if p.a.isFloat(w.r.typeOf(sc, x.X)) || p.a.isFloat(w.r.typeOf(sc, x.Y)) {
						p.reportf(x.OpPos, "floateq",
							"%s on float operands; compare with a tolerance, or add //strlint:ignore floateq <reason> if exact equality is the contract", x.Op)
					}
				},
			})
		}
	},
}
