package lint

import (
	"fmt"
	"go/token"
	"strings"
)

// pass carries one package through the enabled checks: shared access to
// the module-wide symbol tables plus the finding sink. A pass is used by
// one goroutine at a time.
type pass struct {
	a   *Analyzer
	pkg *pkgInfo
	out []Finding
}

// reportf records a finding at pos.
func (p *pass) reportf(pos token.Pos, check, format string, args ...any) {
	p.report(pos, check, nil, format, args...)
}

// report records a finding at pos with an optional suggested fix.
func (p *pass) report(pos token.Pos, check string, fix *Fix, format string, args ...any) {
	p.out = append(p.out, Finding{
		Pos:     p.a.fset.Position(pos),
		Check:   check,
		Message: fmt.Sprintf(format, args...),
		Fix:     fix,
	})
}

// reportAt records a finding at an already-resolved position (used by the
// directive check, whose subjects are comments without AST nodes).
func (p *pass) reportAt(pos token.Position, check, format string, args ...any) {
	p.out = append(p.out, Finding{Pos: pos, Check: check, Message: fmt.Sprintf(format, args...)})
}

// offsetOf translates a token.Pos into (filename, byte offset) for fix
// edits.
func (p *pass) offsetOf(pos token.Pos) (string, int) {
	position := p.a.fset.Position(pos)
	return position.Filename, position.Offset
}

// replaceEdit builds an edit replacing [from, to) with text.
func (p *pass) replaceEdit(from, to token.Pos, text string) Edit {
	name, off := p.offsetOf(from)
	_, end := p.offsetOf(to)
	return Edit{Filename: name, Offset: off, End: end, Text: text}
}

// insertEdit builds an edit inserting text at pos.
func (p *pass) insertEdit(pos token.Pos, text string) Edit {
	return p.replaceEdit(pos, pos, text)
}

// libraryPackage reports whether path is library code (the root package or
// internal/*), where the panics, guardedby and ctxprop checks apply.
func libraryPackage(path string) bool {
	return path == "" || strings.HasPrefix(path, "internal/")
}

func pkgDisplay(path string) string {
	if path == "" {
		return "the root package"
	}
	return path
}
