package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

var guardedbyCheck = &Check{
	Name: "guardedby",
	Doc: "Enforces `// guarded by <mu>` field annotations: a method that " +
		"reads or writes an annotated field of its (pointer) receiver " +
		"without the named mutex held is a finding. The lock-state scan is " +
		"intraprocedural and linear: Lock/RLock adds the mutex to the held " +
		"set, Unlock/RUnlock removes it, `defer mu.Unlock()` keeps it held " +
		"to the end, and effects inside branches are discarded on exit. " +
		"Methods whose name ends in Locked are callee-holds-lock by " +
		"convention and are skipped. The check also flags mutex-by-value: " +
		"receivers or parameters whose type contains a sync.Mutex/RWMutex " +
		"passed by value, and annotations naming a nonexistent field.",
	run: runGuardedby,
}

// guardedType records one struct's `// guarded by` annotations.
type guardedType struct {
	guards map[string]string // field name -> mutex field name
}

func runGuardedby(p *pass) {
	if !libraryPackage(p.pkg.path) {
		return
	}
	annotated := collectGuards(p)
	for _, f := range p.pkg.files {
		for _, decl := range f.ast.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkMutexByValue(p, f, fd)
			if fd.Recv == nil || len(fd.Recv.List) == 0 || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue // callee-holds-lock convention
			}
			recvType := deref(p.a.parseTypeExpr(f, fd.Recv.List[0].Type))
			if recvType.kind != kNamed || recvType.pkg != p.pkg.path {
				continue
			}
			gt, ok := annotated[recvType.name]
			if !ok || len(fd.Recv.List[0].Names) == 0 {
				continue
			}
			recvName := fd.Recv.List[0].Names[0].Name
			if recvName == "_" {
				continue
			}
			g := &guardScan{p: p, recv: recvName, guards: gt.guards, method: fd.Name.Name}
			g.stmts(fd.Body.List, map[string]bool{})
		}
	}
}

// collectGuards parses `// guarded by <mu>` comments on struct fields and
// validates that the named mutex is itself a field of the struct.
func collectGuards(p *pass) map[string]*guardedType {
	out := map[string]*guardedType{}
	for _, f := range p.pkg.files {
		for _, decl := range f.ast.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				fieldNames := map[string]bool{}
				for _, fld := range st.Fields.List {
					for _, n := range fld.Names {
						fieldNames[n.Name] = true
					}
				}
				for _, fld := range st.Fields.List {
					mu, ok := guardAnnotation(fld)
					if !ok {
						continue
					}
					if !fieldNames[mu] {
						p.reportf(fld.Pos(), "guardedby",
							"guarded-by annotation names %q, which is not a field of %s", mu, ts.Name.Name)
						continue
					}
					gt := out[ts.Name.Name]
					if gt == nil {
						gt = &guardedType{guards: map[string]string{}}
						out[ts.Name.Name] = gt
					}
					for _, n := range fld.Names {
						gt.guards[n.Name] = mu
					}
				}
			}
		}
	}
	return out
}

// guardAnnotation extracts the mutex name from a field's trailing or doc
// comment of the form `// guarded by <mu>`. The annotation must start the
// comment — prose that merely mentions "guarded by the pool mutex"
// mid-sentence is not an annotation — and <mu> must be a plain
// identifier.
func guardAnnotation(fld *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{fld.Comment, fld.Doc} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			rest, ok := strings.CutPrefix(text, "guarded by ")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			mu := strings.TrimRight(fields[0], ".,;")
			if !isIdent(mu) {
				continue
			}
			return mu, true
		}
	}
	return "", false
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// checkMutexByValue flags receivers and parameters whose type directly
// contains a by-value sync.Mutex or sync.RWMutex but is itself passed by
// value, silently copying the lock.
func checkMutexByValue(p *pass, f *fileInfo, fd *ast.FuncDecl) {
	report := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, fld := range fl.List {
			t := p.a.parseTypeExpr(f, fld.Type)
			if t.kind == kPointer {
				continue
			}
			mu := mutexFieldOf(p.a, t)
			if mu == "" {
				continue
			}
			p.reportf(fld.Type.Pos(), "guardedby",
				"%s %s passes %s by value, copying its lock %s; use a pointer", fd.Name.Name, what, deref(t).name, mu)
		}
	}
	report(fd.Recv, "receiver")
	report(fd.Type.Params, "parameter")
}

// mutexFieldOf returns the name of a direct by-value sync.Mutex/RWMutex
// field of t, or "".
func mutexFieldOf(a *Analyzer, t typeRef) string {
	t = deref(t)
	if t.kind != kNamed {
		return ""
	}
	pkg := a.pkgs[t.pkg]
	if pkg == nil {
		return ""
	}
	ti := pkg.types[t.name]
	if ti == nil {
		return ""
	}
	var names []string
	for name := range ti.fields {
		names = append(names, name)
	}
	sortStrings(names)
	for _, name := range names {
		ft := ti.fields[name]
		if ft.kind == kNamed && ft.pkg == "sync" && (ft.name == "Mutex" || ft.name == "RWMutex") {
			return name
		}
	}
	return ""
}

// guardScan walks one method body tracking which mutexes are held.
type guardScan struct {
	p        *pass
	recv     string
	guards   map[string]string // field -> mutex
	method   string
	reported map[token.Pos]bool
}

func (g *guardScan) stmts(list []ast.Stmt, held map[string]bool) {
	for _, st := range list {
		g.stmt(st, held)
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// lockOp recognizes recv.mu.Lock/RLock/Unlock/RUnlock calls, returning the
// mutex field name and "lock" or "unlock".
func (g *guardScan) lockOp(e ast.Expr) (string, string) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	base, ok := inner.X.(*ast.Ident)
	if !ok || base.Name != g.recv {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return inner.Sel.Name, "lock"
	case "Unlock", "RUnlock":
		return inner.Sel.Name, "unlock"
	}
	return "", ""
}

func (g *guardScan) stmt(st ast.Stmt, held map[string]bool) {
	switch s := st.(type) {
	case *ast.ExprStmt:
		if mu, op := g.lockOp(s.X); op != "" {
			if op == "lock" {
				held[mu] = true
			} else {
				delete(held, mu)
			}
			return
		}
		g.check(s.X, held)
	case *ast.DeferStmt:
		if _, op := g.lockOp(s.Call); op == "unlock" {
			return // deferred unlock: the lock stays held to the end
		}
		g.check(s.Call, held)
	case *ast.BlockStmt:
		g.stmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			g.stmt(s.Init, held)
		}
		g.check(s.Cond, held)
		g.stmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			g.stmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			g.stmt(s.Init, held)
		}
		if s.Cond != nil {
			g.check(s.Cond, held)
		}
		inner := copyHeld(held)
		if s.Post != nil {
			g.stmt(s.Post, inner)
		}
		g.stmts(s.Body.List, inner)
	case *ast.RangeStmt:
		g.check(s.X, held)
		g.stmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			g.stmt(s.Init, held)
		}
		if s.Tag != nil {
			g.check(s.Tag, held)
		}
		g.caseClauses(s.Body, held)
	case *ast.TypeSwitchStmt:
		g.caseClauses(s.Body, held)
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CommClause); ok {
				inner := copyHeld(held)
				if clause.Comm != nil {
					g.stmt(clause.Comm, inner)
				}
				g.stmts(clause.Body, inner)
			}
		}
	case *ast.GoStmt:
		// The spawned goroutine does not inherit the held set.
		g.check(s.Call, map[string]bool{})
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			g.check(e, held)
		}
		for _, e := range s.Lhs {
			g.check(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			g.check(e, held)
		}
	case *ast.SendStmt:
		g.check(s.Chan, held)
		g.check(s.Value, held)
	case *ast.IncDecStmt:
		g.check(s.X, held)
	case *ast.DeclStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				g.check(e, held)
				return false
			}
			return true
		})
	case *ast.LabeledStmt:
		g.stmt(s.Stmt, held)
	}
}

func (g *guardScan) caseClauses(body *ast.BlockStmt, held map[string]bool) {
	for _, cc := range body.List {
		if clause, ok := cc.(*ast.CaseClause); ok {
			inner := copyHeld(held)
			for _, e := range clause.List {
				g.check(e, inner)
			}
			g.stmts(clause.Body, inner)
		}
	}
}

// check inspects one expression for unguarded accesses to annotated
// fields. Function literals are skipped: when they run is unknown, and
// unknown means no finding.
func (g *guardScan) check(e ast.Expr, held map[string]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok || base.Name != g.recv {
			return true
		}
		mu, guarded := g.guards[sel.Sel.Name]
		if !guarded || held[mu] {
			return true
		}
		if g.reported == nil {
			g.reported = map[token.Pos]bool{}
		}
		if g.reported[sel.Pos()] {
			return true
		}
		g.reported[sel.Pos()] = true
		g.p.reportf(sel.Sel.Pos(), "guardedby",
			"%s.%s is guarded by %s but accessed in %s without it held; lock %s first or rename the method with a Locked suffix",
			g.recv, sel.Sel.Name, mu, g.method, mu)
		return true
	})
}
