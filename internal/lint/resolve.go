package lint

import (
	"go/ast"
	"go/token"
)

// scope is a lexical scope: a chain of name -> type bindings built while
// walking a function body.
type scope struct {
	parent *scope
	vars   map[string]typeRef
}

func newScope(parent *scope) *scope {
	return &scope{parent: parent, vars: map[string]typeRef{}}
}

func (s *scope) lookup(name string) (typeRef, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if t, ok := cur.vars[name]; ok {
			return t, true
		}
	}
	return unknownType, false
}

func (s *scope) set(name string, t typeRef) {
	if name != "_" && name != "" {
		s.vars[name] = t
	}
}

// resolver answers "what is the type of this expression" against one
// file's import table and the module-wide symbol tables. All answers are
// best effort: unknown means the checks stay silent.
type resolver struct {
	a    *Analyzer
	file *fileInfo
}

// packagePath reports whether ident names an imported package (and is not
// shadowed by a local variable).
func (r *resolver) packagePath(sc *scope, ident *ast.Ident) (string, bool) {
	if _, shadowed := sc.lookup(ident.Name); shadowed {
		return "", false
	}
	path, ok := r.file.imports[ident.Name]
	if !ok {
		return "", false
	}
	return r.a.localPath(path), true
}

// typeOf resolves the type of an expression.
func (r *resolver) typeOf(sc *scope, e ast.Expr) typeRef {
	switch x := e.(type) {
	case *ast.BasicLit:
		switch x.Kind {
		case token.FLOAT:
			return typeRef{kind: kFloat}
		case token.INT, token.CHAR:
			return typeRef{kind: kInt}
		case token.STRING:
			return typeRef{kind: kString}
		case token.IMAG:
			return typeRef{kind: kComplex}
		}
	case *ast.Ident:
		if t, ok := sc.lookup(x.Name); ok {
			return t
		}
		if t, ok := r.file.pkg.vars[x.Name]; ok {
			return t
		}
		if sig, ok := r.file.pkg.funcs[x.Name]; ok {
			return typeRef{kind: kFunc, sig: sig}
		}
		switch x.Name {
		case "true", "false":
			return typeRef{kind: kBool}
		}
		if _, isType := r.file.pkg.types[x.Name]; isType {
			return unknownType // a bare type name is not a value
		}
	case *ast.ParenExpr:
		return r.typeOf(sc, x.X)
	case *ast.SelectorExpr:
		return r.selectorType(sc, x)
	case *ast.CallExpr:
		results, _ := r.callResults(sc, x)
		if len(results) > 0 {
			return results[0]
		}
	case *ast.IndexExpr:
		return r.a.elemOf(r.typeOf(sc, x.X))
	case *ast.SliceExpr:
		return r.typeOf(sc, x.X)
	case *ast.StarExpr:
		t := r.typeOf(sc, x.X)
		if t.kind == kPointer && t.elem != nil {
			return *t.elem
		}
	case *ast.UnaryExpr:
		switch x.Op {
		case token.AND:
			inner := r.typeOf(sc, x.X)
			return typeRef{kind: kPointer, elem: &inner}
		case token.ARROW:
			return r.a.elemOf(r.typeOf(sc, x.X))
		case token.NOT:
			return typeRef{kind: kBool}
		default:
			return r.typeOf(sc, x.X)
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			return typeRef{kind: kBool}
		default:
			if t := r.typeOf(sc, x.X); t.known() {
				return t
			}
			return r.typeOf(sc, x.Y)
		}
	case *ast.CompositeLit:
		if x.Type != nil {
			return r.a.parseTypeExpr(r.file, x.Type)
		}
	case *ast.TypeAssertExpr:
		if x.Type != nil {
			return r.a.parseTypeExpr(r.file, x.Type)
		}
	case *ast.FuncLit:
		return typeRef{kind: kFunc, sig: r.a.funcSigOf(r.file, x.Type)}
	}
	return unknownType
}

// selectorType resolves pkg.Name, value.Field and value.Method (as a
// value, not a call).
func (r *resolver) selectorType(sc *scope, sel *ast.SelectorExpr) typeRef {
	if x, ok := sel.X.(*ast.Ident); ok {
		if path, isPkg := r.packagePath(sc, x); isPkg {
			p := r.a.pkgs[path]
			if p == nil {
				return unknownType
			}
			if t, ok := p.vars[sel.Sel.Name]; ok {
				return t
			}
			if sig, ok := p.funcs[sel.Sel.Name]; ok {
				return typeRef{kind: kFunc, sig: sig}
			}
			return unknownType
		}
	}
	base := r.typeOf(sc, sel.X)
	if !base.known() {
		return unknownType
	}
	if ft := r.a.field(base, sel.Sel.Name); ft.known() {
		return ft
	}
	if sig, _ := r.a.method(base, sel.Sel.Name); sig != nil {
		return typeRef{kind: kFunc, sig: sig}
	}
	return unknownType
}

// callResults resolves the result types of a call expression and the
// module-relative (or stdlib) path of the package defining the callee; the
// path is "" when unknown or for conversions and builtins.
func (r *resolver) callResults(sc *scope, call *ast.CallExpr) ([]typeRef, string) {
	fun := call.Fun
	for {
		if p, ok := fun.(*ast.ParenExpr); ok {
			fun = p.X
			continue
		}
		break
	}
	switch f := fun.(type) {
	case *ast.Ident:
		if _, shadowed := sc.lookup(f.Name); !shadowed {
			// Conversion to a builtin basic type: float64(x), uint32(x)...
			if k, ok := builtinKinds[f.Name]; ok {
				return []typeRef{{kind: k}}, ""
			}
			switch f.Name {
			case "len", "cap":
				return []typeRef{{kind: kInt}}, ""
			case "make", "append":
				if len(call.Args) > 0 {
					if f.Name == "make" {
						return []typeRef{r.a.parseTypeExpr(r.file, call.Args[0])}, ""
					}
					return []typeRef{r.typeOf(sc, call.Args[0])}, ""
				}
				return nil, ""
			case "new":
				if len(call.Args) == 1 {
					inner := r.a.parseTypeExpr(r.file, call.Args[0])
					return []typeRef{{kind: kPointer, elem: &inner}}, ""
				}
				return nil, ""
			case "panic", "print", "println", "copy", "delete", "clear",
				"min", "max", "real", "imag", "complex", "recover":
				return nil, ""
			}
			// Conversion to a package-local named type: Point(x).
			if _, isType := r.file.pkg.types[f.Name]; isType {
				return []typeRef{{kind: kNamed, pkg: r.file.pkg.path, name: f.Name}}, ""
			}
			if sig, ok := r.file.pkg.funcs[f.Name]; ok {
				return sig.results, r.file.pkg.path
			}
		}
		// A local variable holding a function value.
		if t, ok := sc.lookup(f.Name); ok && t.kind == kFunc && t.sig != nil {
			return t.sig.results, ""
		}
	case *ast.SelectorExpr:
		if x, ok := f.X.(*ast.Ident); ok {
			if path, isPkg := r.packagePath(sc, x); isPkg {
				p := r.a.pkgs[path]
				if p == nil {
					return nil, path
				}
				if sig, ok := p.funcs[f.Sel.Name]; ok {
					return sig.results, path
				}
				if _, isType := p.types[f.Sel.Name]; isType {
					// Conversion pkg.T(x).
					return []typeRef{{kind: kNamed, pkg: path, name: f.Sel.Name}}, ""
				}
				return nil, path
			}
		}
		// Method call: resolve the receiver, then the method.
		recv := r.typeOf(sc, f.X)
		if !recv.known() {
			return nil, ""
		}
		if sig, pkg := r.a.method(recv, f.Sel.Name); sig != nil {
			return sig.results, pkg
		}
		// Calling a function-typed field.
		if ft := r.a.field(recv, f.Sel.Name); ft.kind == kFunc && ft.sig != nil {
			return ft.sig.results, ""
		}
	case *ast.FuncLit:
		return r.a.funcSigOf(r.file, f.Type).results, ""
	case *ast.ArrayType, *ast.MapType, *ast.StarExpr, *ast.ChanType, *ast.InterfaceType:
		// Conversion to a composite type literal.
		return []typeRef{r.a.parseTypeExpr(r.file, fun)}, ""
	}
	return nil, ""
}

// bindAssign records the types of newly defined variables in a := or var
// statement.
func (r *resolver) bindAssign(sc *scope, lhs []ast.Expr, rhs []ast.Expr) {
	names := make([]string, len(lhs))
	for i, l := range lhs {
		if id, ok := l.(*ast.Ident); ok {
			names[i] = id.Name
		}
	}
	switch {
	case len(rhs) == len(lhs):
		for i := range lhs {
			if names[i] != "" {
				sc.set(names[i], r.typeOf(sc, rhs[i]))
			}
		}
	case len(rhs) == 1 && len(lhs) > 1:
		switch v := rhs[0].(type) {
		case *ast.CallExpr:
			results, _ := r.callResults(sc, v)
			for i := range lhs {
				if names[i] == "" {
					continue
				}
				if i < len(results) {
					sc.set(names[i], results[i])
				} else {
					sc.set(names[i], unknownType)
				}
			}
		case *ast.TypeAssertExpr:
			// v, ok := x.(T)
			if names[0] != "" && v.Type != nil {
				sc.set(names[0], r.a.parseTypeExpr(r.file, v.Type))
			}
			if len(names) > 1 && names[1] != "" {
				sc.set(names[1], typeRef{kind: kBool})
			}
		case *ast.IndexExpr:
			// v, ok := m[k]
			if names[0] != "" {
				sc.set(names[0], r.a.elemOf(r.typeOf(sc, v.X)))
			}
			if len(names) > 1 && names[1] != "" {
				sc.set(names[1], typeRef{kind: kBool})
			}
		case *ast.UnaryExpr:
			// v, ok := <-ch
			if v.Op == token.ARROW {
				if names[0] != "" {
					sc.set(names[0], r.a.elemOf(r.typeOf(sc, v.X)))
				}
				if len(names) > 1 && names[1] != "" {
					sc.set(names[1], typeRef{kind: kBool})
				}
			}
		}
	}
}

// bindRange records the key and value types of a range statement.
func (r *resolver) bindRange(sc *scope, st *ast.RangeStmt) {
	setIdent := func(e ast.Expr, t typeRef) {
		if e == nil {
			return
		}
		if id, ok := e.(*ast.Ident); ok {
			sc.set(id.Name, t)
		}
	}
	over := r.typeOf(sc, st.X)
	u := r.a.underlying(over)
	if u.kind == kUnknown && over.kind != kNamed {
		u = over
	}
	switch deref(u).kind {
	case kSlice:
		setIdent(st.Key, typeRef{kind: kInt})
		setIdent(st.Value, r.a.elemOf(over))
	case kMap:
		setIdent(st.Key, unknownType)
		setIdent(st.Value, r.a.elemOf(over))
	case kString:
		setIdent(st.Key, typeRef{kind: kInt})
		setIdent(st.Value, typeRef{kind: kInt})
	case kChan:
		setIdent(st.Key, r.a.elemOf(over))
	case kInt:
		setIdent(st.Key, typeRef{kind: kInt})
	default:
		setIdent(st.Key, unknownType)
		setIdent(st.Value, unknownType)
	}
}
