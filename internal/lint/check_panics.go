package lint

import (
	"go/ast"
	"strings"
)

var panicsCheck = &Check{
	Name: "panics",
	Doc: "Flags panic() in library packages (the root package and " +
		"internal/*) outside must*/Must* helpers and init functions. " +
		"Library code returns errors; a panic crossing the API boundary " +
		"takes down a serving process.",
	run: func(p *pass) {
		if !libraryPackage(p.pkg.path) {
			return
		}
		for _, f := range p.pkg.files {
			p.walkFile(f, hooks{
				call: func(w *walker, sc *scope, call *ast.CallExpr) {
					id, ok := call.Fun.(*ast.Ident)
					if !ok || id.Name != "panic" {
						return
					}
					if _, shadowed := sc.lookup("panic"); shadowed {
						return
					}
					name := w.funcName()
					lower := strings.ToLower(name)
					if strings.HasPrefix(lower, "must") || name == "init" {
						return
					}
					p.reportf(call.Pos(), "panics",
						"panic in library function %s; return an error, or mark a documented contract with //strlint:ignore panics <reason>", name)
				},
			})
		}
	},
}
