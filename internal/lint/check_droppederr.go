package lint

import (
	"go/ast"
	"strings"
)

var droppederrCheck = &Check{
	Name: "droppederr",
	Doc: "Flags statement-level calls into the error-critical packages " +
		"(storage, buffer, query, server, extsort, pack, encoding/binary) " +
		"whose error result is discarded, including go and defer calls. A " +
		"dropped error in those layers corrupts a persistent tree or " +
		"silently truncates results. Suggested fix: discard explicitly " +
		"with a blank assignment.",
	run: func(p *pass) {
		for _, f := range p.pkg.files {
			p.walkFile(f, hooks{
				stmtCall: func(w *walker, sc *scope, call *ast.CallExpr, how string) {
					results, pkg := w.r.callResults(sc, call)
					if !droppedErrTargets[pkg] {
						return
					}
					hasErr := false
					for _, t := range results {
						if t.kind == kError {
							hasErr = true
							break
						}
					}
					if !hasErr {
						return
					}
					name := calleeName(call)
					verb := "call"
					if how != "" {
						verb = how + " call"
					}
					// A plain statement call can be fixed mechanically by
					// blanking every result; go/defer calls need a real
					// handler, so no fix is offered there.
					var fix *Fix
					if how == "" {
						blanks := strings.Repeat("_, ", len(results)-1) + "_ = "
						fix = &Fix{
							Message: "discard the error explicitly",
							Edits:   []Edit{p.insertEdit(call.Pos(), blanks)},
						}
					}
					p.report(call.Pos(), "droppederr", fix,
						"error from %s %s %s is discarded; handle it, or discard explicitly with _ =", pkg, verb, name)
				},
			})
		}
	},
}
