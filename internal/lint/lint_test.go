package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"strtree/internal/lint"
)

// loadDemo parses the fixture module once per test.
func loadDemo(t *testing.T) *lint.Analyzer {
	t.Helper()
	a, err := lint.Load(filepath.Join("testdata", "demo"))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func runAll(t *testing.T, a *lint.Analyzer) []lint.Finding {
	t.Helper()
	findings, err := a.Run(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

// byCheck buckets findings per check name.
func byCheck(findings []lint.Finding) map[string][]lint.Finding {
	out := map[string][]lint.Finding{}
	for _, f := range findings {
		out[f.Check] = append(out[f.Check], f)
	}
	return out
}

func TestLoadDemoModule(t *testing.T) {
	a := loadDemo(t)
	if a.Module() != "demo" {
		t.Fatalf("module = %q", a.Module())
	}
	want := []string{"", "internal/buffer", "internal/geom", "internal/pack", "internal/query", "internal/router", "internal/rtree", "internal/server", "internal/storage", "internal/widget"}
	got := a.Packages()
	if len(got) != len(want) {
		t.Fatalf("packages = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("packages = %v, want %v", got, want)
		}
	}
}

// TestEveryCheckFires proves all ten checks plus the directive validator
// are live, with the exact finding count each fixture was written for.
func TestEveryCheckFires(t *testing.T) {
	found := byCheck(runAll(t, loadDemo(t)))
	wantCounts := map[string]int{
		"floateq":     3, // two live in demo.go + one under the malformed directive
		"droppederr":  7, // plain call, defer, encoding/binary, go call, goroutine body, intra-package call, dropped write-pin release
		"panics":      1, // widget.Explode only; Must*/init exempt
		"loopcapture": 2, // goroutine capture + defer capture
		"imports":     3, // geom->storage violation + router->rtree violation + widget missing from table
		"directive":   4, // missing reason, unknown check, unknown verb, empty list entry
		"maporder":    2, // unsorted key collection + in-range write (sorted collection exempt)
		"timerand":    3, // time.Now, time.Since, rand.Intn in a build layer
		"guardedby":   3, // unguarded access, store-by-value, annotation naming a non-field
		"waitpair":    2, // named-function goroutine + signal-free literal
		"ctxprop":     3, // ignored Context method + function variants, context.Background
	}
	for check, want := range wantCounts {
		if got := len(found[check]); got != want {
			var lines []string
			for _, f := range found[check] {
				lines = append(lines, f.String())
			}
			t.Errorf("%s: %d findings, want %d:\n%s", check, got, want, strings.Join(lines, "\n"))
		}
	}
	for check := range found {
		if _, ok := wantCounts[check]; !ok {
			t.Errorf("unexpected findings for check %q: %v", check, found[check])
		}
	}
}

func TestFindingDetails(t *testing.T) {
	findings := runAll(t, loadDemo(t))
	wantSubstrings := []string{
		"panic in library function Explode",
		"loop variable i captured by go literal",
		"loop variable x captured by defer literal",
		"internal/geom must not import internal/storage",
		"internal/router must not import internal/rtree",
		"package internal/widget missing from the strlint layering table",
		"error from internal/storage defer call p.Close is discarded",
		"error from encoding/binary call binary.Write is discarded",
		"error from internal/query go call ex.Run is discarded",
		"error from internal/server call Shutdown is discarded",
		"malformed directive",
		`unknown check "floatqe"`,
		`unknown strlint directive "ignored"`,
		`empty check name in list "floateq,,panics"`,
		"map iteration order reaches ordered output",
		"time.Now in deterministic layer",
		"math/rand call rand.Intn in deterministic layer",
		"s.pages is guarded by mu but accessed in Get without it held",
		"Snapshot parameter passes Store by value, copying its lock mu",
		`guarded-by annotation names "lock", which is not a field of Store`,
		"goroutine in FireAndForget has no completion signal",
		"call to Scan ignores the incoming context; use ScanContext(ctx, ...)",
		"context.Background in library package internal/server severs",
	}
	all := make([]string, len(findings))
	for i, f := range findings {
		all[i] = f.String()
	}
	joined := strings.Join(all, "\n")
	for _, want := range wantSubstrings {
		if !strings.Contains(joined, want) {
			t.Errorf("no finding contains %q; findings:\n%s", want, joined)
		}
	}
}

// TestSuppression pins the directive semantics: a well-formed ignore on
// the preceding line and a file-ignore both silence findings, while a
// malformed one silences nothing.
func TestSuppression(t *testing.T) {
	findings := runAll(t, loadDemo(t))
	for _, f := range findings {
		base := filepath.Base(f.Pos.Filename)
		if base == "fileignore.go" {
			t.Errorf("file-ignore failed to suppress: %s", f)
		}
		if base == "demo.go" && f.Check == "floateq" {
			// Only the two undirected comparisons may fire; the suppressed
			// one sits two lines under its directive comment.
			msg := f.String()
			if strings.Contains(msg, "Intended") {
				t.Errorf("line directive failed to suppress: %s", msg)
			}
		}
	}
}

// TestCheckSelection proves the -checks filter restricts the run.
func TestCheckSelection(t *testing.T) {
	a := loadDemo(t)
	findings, err := a.Run(nil, []string{"panics"})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Check != "panics" {
			t.Errorf("selected panics only, got %s", f)
		}
	}
	if len(findings) != 1 {
		t.Errorf("panics findings = %d, want 1", len(findings))
	}
	if _, err := a.Run(nil, []string{"nosuch"}); err == nil {
		t.Error("unknown check name accepted")
	}
}

// TestPackageSelection proves the package filter restricts the run.
func TestPackageSelection(t *testing.T) {
	a := loadDemo(t)
	findings, err := a.Run([]string{"internal/widget"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if !strings.Contains(filepath.ToSlash(f.Pos.Filename), "internal/widget/") {
			t.Errorf("finding outside selected package: %s", f)
		}
	}
	if len(findings) != 2 { // panics + missing-from-table
		t.Errorf("widget findings = %d, want 2", len(findings))
	}
	if _, err := a.Run([]string{"internal/nosuch"}, nil); err == nil {
		t.Error("unknown package accepted")
	}
}

// TestRealModuleIsClean is the repository's own gate: strlint over the
// actual source tree, minus the committed baseline, must be silent. Any
// new finding either needs a fix, a reasoned //strlint:ignore, or a
// reviewed baseline entry — and every baseline entry must still match a
// real finding, so the debt list cannot rot.
func TestRealModuleIsClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	a, err := lint.Load(root)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := a.Run(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := lint.LoadBaseline(filepath.Join(root, ".strlint-baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	kept, stale := lint.ApplyBaseline(findings, entries, root)
	for _, f := range kept {
		t.Errorf("%s", f)
	}
	for _, msg := range stale {
		t.Errorf("stale baseline entry: %s", msg)
	}
}
