package lint

import (
	"go/ast"
)

// kind classifies a resolved type far enough for the checks: the analyzer
// is not a full type checker, it only needs to answer "is this a float?",
// "does this call return an error?" and "what package defines this
// method?".
type kind uint8

const (
	kUnknown kind = iota
	kFloat
	kInt
	kComplex
	kString
	kBool
	kError
	kNamed     // defined type; pkg+name locate its typeInfo
	kSlice     // includes arrays; elem set
	kMap       // elem is the value type
	kPointer   // elem set
	kChan      // elem set
	kFunc      // sig may be set (function literals, method values)
	kInterface // anonymous interface
	kStruct    // anonymous struct
)

// typeRef is a best-effort resolved type. The zero value means "unknown",
// which every consumer treats as "no finding" — the analyzer is
// deliberately conservative.
type typeRef struct {
	kind      kind
	pkg, name string // for kNamed: module-relative or stdlib import path + type name
	elem      *typeRef
	sig       *funcSig // for kFunc when known
}

var unknownType = typeRef{}

func (t typeRef) known() bool { return t.kind != kUnknown }

// funcSig is the part of a function signature the checks need.
type funcSig struct {
	params  []typeRef
	results []typeRef
}

func (s *funcSig) returnsError() bool {
	if s == nil {
		return false
	}
	for _, r := range s.results {
		if r.kind == kError {
			return true
		}
	}
	return false
}

// typeInfo is one defined type with its members.
type typeInfo struct {
	name       string
	underlying typeRef
	fields     map[string]typeRef  // struct fields
	methods    map[string]*funcSig // declared methods plus interface method sets
}

var builtinKinds = map[string]kind{
	"float32": kFloat, "float64": kFloat,
	"int": kInt, "int8": kInt, "int16": kInt, "int32": kInt, "int64": kInt,
	"uint": kInt, "uint8": kInt, "uint16": kInt, "uint32": kInt, "uint64": kInt,
	"uintptr": kInt, "byte": kInt, "rune": kInt,
	"complex64": kComplex, "complex128": kComplex,
	"string": kString, "bool": kBool, "error": kError,
}

// buildSymbols fills every package's type, function and variable tables.
// Types are registered first so member resolution across packages works
// regardless of declaration order.
func (a *Analyzer) buildSymbols() {
	for _, p := range a.pkgs {
		for _, f := range p.files {
			for _, decl := range f.ast.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					if ts, ok := spec.(*ast.TypeSpec); ok {
						p.types[ts.Name.Name] = &typeInfo{
							name:    ts.Name.Name,
							fields:  map[string]typeRef{},
							methods: map[string]*funcSig{},
						}
					}
				}
			}
		}
	}
	for _, p := range a.pkgs {
		for _, f := range p.files {
			a.collectFile(f)
		}
	}
}

func (a *Analyzer) collectFile(f *fileInfo) {
	p := f.pkg
	for _, decl := range f.ast.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			sig := a.funcSigOf(f, d.Type)
			if d.Recv == nil || len(d.Recv.List) == 0 {
				p.funcs[d.Name.Name] = sig
				continue
			}
			recv := a.parseTypeExpr(f, d.Recv.List[0].Type)
			for recv.kind == kPointer && recv.elem != nil {
				recv = *recv.elem
			}
			if recv.kind == kNamed {
				if ti := p.types[recv.name]; ti != nil {
					ti.methods[d.Name.Name] = sig
				}
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					a.collectTypeSpec(f, s)
				case *ast.ValueSpec:
					a.collectValueSpec(f, s)
				}
			}
		}
	}
}

func (a *Analyzer) collectTypeSpec(f *fileInfo, s *ast.TypeSpec) {
	ti := f.pkg.types[s.Name.Name]
	if ti == nil {
		return
	}
	switch t := s.Type.(type) {
	case *ast.StructType:
		ti.underlying = typeRef{kind: kStruct}
		for _, fld := range t.Fields.List {
			ft := a.parseTypeExpr(f, fld.Type)
			for _, name := range fld.Names {
				ti.fields[name.Name] = ft
			}
			// Embedded field: register under the type's base name so
			// promoted-field access still resolves.
			if len(fld.Names) == 0 {
				base := ft
				for base.kind == kPointer && base.elem != nil {
					base = *base.elem
				}
				if base.kind == kNamed {
					ti.fields[base.name] = ft
				}
			}
		}
	case *ast.InterfaceType:
		ti.underlying = typeRef{kind: kInterface}
		for _, m := range t.Methods.List {
			ft, ok := m.Type.(*ast.FuncType)
			if !ok || len(m.Names) == 0 {
				continue
			}
			sig := a.funcSigOf(f, ft)
			for _, name := range m.Names {
				ti.methods[name.Name] = sig
			}
		}
	default:
		ti.underlying = a.parseTypeExpr(f, s.Type)
	}
}

func (a *Analyzer) collectValueSpec(f *fileInfo, s *ast.ValueSpec) {
	p := f.pkg
	if s.Type != nil {
		t := a.parseTypeExpr(f, s.Type)
		for _, name := range s.Names {
			p.vars[name.Name] = t
		}
		return
	}
	// Initialized package-level values: resolve the initializer with an
	// empty scope. This catches the common forms (literals, conversions,
	// references to other declarations).
	r := &resolver{a: a, file: f}
	for i, name := range s.Names {
		if i < len(s.Values) {
			if t := r.typeOf(newScope(nil), s.Values[i]); t.known() {
				p.vars[name.Name] = t
			}
		}
	}
}

// funcSigOf resolves a function type's parameter and result types.
func (a *Analyzer) funcSigOf(f *fileInfo, ft *ast.FuncType) *funcSig {
	sig := &funcSig{}
	if ft.Params != nil {
		for _, fld := range ft.Params.List {
			t := a.parseTypeExpr(f, fld.Type)
			n := len(fld.Names)
			if n == 0 {
				n = 1
			}
			for i := 0; i < n; i++ {
				sig.params = append(sig.params, t)
			}
		}
	}
	if ft.Results != nil {
		for _, fld := range ft.Results.List {
			t := a.parseTypeExpr(f, fld.Type)
			n := len(fld.Names)
			if n == 0 {
				n = 1
			}
			for i := 0; i < n; i++ {
				sig.results = append(sig.results, t)
			}
		}
	}
	return sig
}

// parseTypeExpr resolves a type expression appearing in a declaration,
// using the declaring file's import table for qualified names.
func (a *Analyzer) parseTypeExpr(f *fileInfo, e ast.Expr) typeRef {
	switch t := e.(type) {
	case *ast.Ident:
		if k, ok := builtinKinds[t.Name]; ok {
			return typeRef{kind: k}
		}
		if t.Name == "any" {
			return typeRef{kind: kInterface}
		}
		return typeRef{kind: kNamed, pkg: f.pkg.path, name: t.Name}
	case *ast.SelectorExpr:
		if x, ok := t.X.(*ast.Ident); ok {
			if path, ok := f.imports[x.Name]; ok {
				return typeRef{kind: kNamed, pkg: a.localPath(path), name: t.Sel.Name}
			}
		}
		return unknownType
	case *ast.StarExpr:
		inner := a.parseTypeExpr(f, t.X)
		return typeRef{kind: kPointer, elem: &inner}
	case *ast.ArrayType:
		inner := a.parseTypeExpr(f, t.Elt)
		return typeRef{kind: kSlice, elem: &inner}
	case *ast.Ellipsis:
		inner := a.parseTypeExpr(f, t.Elt)
		return typeRef{kind: kSlice, elem: &inner}
	case *ast.MapType:
		inner := a.parseTypeExpr(f, t.Value)
		return typeRef{kind: kMap, elem: &inner}
	case *ast.ChanType:
		inner := a.parseTypeExpr(f, t.Value)
		return typeRef{kind: kChan, elem: &inner}
	case *ast.FuncType:
		return typeRef{kind: kFunc, sig: a.funcSigOf(f, t)}
	case *ast.InterfaceType:
		return typeRef{kind: kInterface}
	case *ast.StructType:
		return typeRef{kind: kStruct}
	case *ast.ParenExpr:
		return a.parseTypeExpr(f, t.X)
	}
	return unknownType
}

// localPath maps an import path onto the analyzer's package key: module
// packages become module-relative, everything else stays as-is (and only
// resolves if a synthetic table exists for it).
func (a *Analyzer) localPath(importPath string) string {
	if importPath == a.module {
		return ""
	}
	if rest, ok := cutModulePrefix(importPath, a.module); ok {
		return rest
	}
	return importPath
}

func cutModulePrefix(path, module string) (string, bool) {
	if len(path) > len(module)+1 && path[:len(module)] == module && path[len(module)] == '/' {
		return path[len(module)+1:], true
	}
	return "", false
}

// addSyntheticPackages registers signature tables for the standard-library
// packages the droppederr check targets. Only error-returning functions
// need to be listed.
func (a *Analyzer) addSyntheticPackages() {
	errResult := []typeRef{{kind: kError}}
	binary := &pkgInfo{
		path: "encoding/binary", name: "binary", synthetic: true,
		types: map[string]*typeInfo{},
		funcs: map[string]*funcSig{
			"Read":  {results: errResult},
			"Write": {results: errResult},
		},
		vars: map[string]typeRef{},
	}
	a.pkgs["encoding/binary"] = binary
}

// underlying follows named-type chains to a structural type, with a depth
// guard against cycles.
func (a *Analyzer) underlying(t typeRef) typeRef {
	for depth := 0; depth < 16; depth++ {
		if t.kind != kNamed {
			return t
		}
		p := a.pkgs[t.pkg]
		if p == nil {
			return unknownType
		}
		ti := p.types[t.name]
		if ti == nil {
			return unknownType
		}
		t = ti.underlying
	}
	return unknownType
}

// isFloat reports whether t is float32/float64 or a defined type whose
// underlying type is.
func (a *Analyzer) isFloat(t typeRef) bool {
	if t.kind == kFloat {
		return true
	}
	return a.underlying(t).kind == kFloat
}

// deref strips pointers.
func deref(t typeRef) typeRef {
	for t.kind == kPointer && t.elem != nil {
		t = *t.elem
	}
	return t
}

// method resolves a method on t, returning its signature and the package
// that defines it.
func (a *Analyzer) method(t typeRef, name string) (*funcSig, string) {
	t = deref(t)
	if t.kind != kNamed {
		return nil, ""
	}
	p := a.pkgs[t.pkg]
	if p == nil {
		return nil, ""
	}
	ti := p.types[t.name]
	if ti == nil {
		return nil, ""
	}
	if sig, ok := ti.methods[name]; ok {
		return sig, t.pkg
	}
	// Promoted methods through an embedded field.
	for _, ft := range ti.fields {
		base := deref(ft)
		if base.kind == kNamed && base.name != t.name {
			if sig, pkg := a.method(base, name); sig != nil {
				return sig, pkg
			}
		}
	}
	return nil, ""
}

// field resolves a struct field on t.
func (a *Analyzer) field(t typeRef, name string) typeRef {
	t = deref(t)
	if t.kind != kNamed {
		return unknownType
	}
	p := a.pkgs[t.pkg]
	if p == nil {
		return unknownType
	}
	ti := p.types[t.name]
	if ti == nil {
		return unknownType
	}
	if ft, ok := ti.fields[name]; ok {
		return ft
	}
	return unknownType
}

// elemOf returns the element type of a slice, array, pointer-to-array or
// map (value type), following named types.
func (a *Analyzer) elemOf(t typeRef) typeRef {
	t = deref(t)
	if t.kind == kNamed {
		t = a.underlying(t)
		t = deref(t)
	}
	switch t.kind {
	case kSlice, kMap, kChan:
		if t.elem != nil {
			return *t.elem
		}
	case kString:
		return typeRef{kind: kInt}
	}
	return unknownType
}
