package lint

import (
	"go/ast"
)

var waitpairCheck = &Check{
	Name: "waitpair",
	Doc: "Flags goroutine launches with no completion signal: the literal's " +
		"body must call a WaitGroup Done, close a channel, or send on one — " +
		"or, for named-function goroutines and literals that signal " +
		"internally, a sync.WaitGroup Add call must appear earlier in the " +
		"same enclosing function. A goroutine nothing can wait for outlives " +
		"shutdown and races teardown; the checksum tests cannot catch a " +
		"leak that only bites under load. Intraprocedural.",
	run: func(p *pass) {
		for _, f := range p.pkg.files {
			// addSeen tracks whether a WaitGroup.Add call has appeared
			// earlier (lexically) in the current top-level function. The
			// walk is lexical, so resetting on function-name change is
			// exact for top-level declarations.
			addSeen := false
			var curFunc string
			enter := func(w *walker) {
				if len(w.funcNames) > 0 && w.funcNames[0] != curFunc {
					curFunc = w.funcNames[0]
					addSeen = false
				}
			}
			p.walkFile(f, hooks{
				call: func(w *walker, sc *scope, call *ast.CallExpr) {
					enter(w)
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok || sel.Sel.Name != "Add" {
						return
					}
					t := deref(w.r.typeOf(sc, sel.X))
					if t.kind == kNamed && t.pkg == "sync" && t.name == "WaitGroup" {
						addSeen = true
					}
				},
				goStmt: func(w *walker, sc *scope, s *ast.GoStmt) {
					enter(w)
					if lit, ok := s.Call.Fun.(*ast.FuncLit); ok && signalsCompletion(lit.Body) {
						return
					}
					if addSeen {
						return
					}
					p.reportf(s.Pos(), "waitpair",
						"goroutine in %s has no completion signal (no WaitGroup Add/Done pairing, channel send, or close); callers cannot wait for it", w.funcName())
				},
			})
		}
	},
}

// signalsCompletion reports whether a goroutine body contains a completion
// signal another goroutine can wait on: a Done() call, a close(), or a
// channel send.
func signalsCompletion(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			switch f := x.Fun.(type) {
			case *ast.Ident:
				if f.Name == "close" {
					found = true
				}
			case *ast.SelectorExpr:
				if f.Sel.Name == "Done" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
