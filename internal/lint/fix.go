package lint

import (
	"fmt"
	"go/format"
	"os"
	"slices"
)

// ApplyFixes applies every suggested fix among the findings to the files
// on disk and returns the changed file names, sorted. Edits within one
// file are applied from the end of the file backwards so earlier offsets
// stay valid; overlapping edits (two fixes touching the same bytes) abort
// with an error rather than guessing. Rewritten files are gofmt-formatted,
// so applying fixes and re-running strlint converges: a second -fix run
// finds nothing left to do.
func ApplyFixes(findings []Finding) ([]string, error) {
	byFile := map[string][]Edit{}
	for _, f := range findings {
		if f.Fix == nil {
			continue
		}
		for _, e := range f.Fix.Edits {
			byFile[e.Filename] = append(byFile[e.Filename], e)
		}
	}
	var changed []string
	for name := range byFile {
		changed = append(changed, name)
	}
	slices.Sort(changed)
	for _, name := range changed {
		edits := byFile[name]
		slices.SortFunc(edits, func(a, b Edit) int { return a.Offset - b.Offset })
		for i := 1; i < len(edits); i++ {
			if edits[i].Offset < edits[i-1].End {
				return nil, fmt.Errorf("lint: overlapping fixes in %s at offset %d; re-run after applying the first", name, edits[i].Offset)
			}
		}
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		for i := len(edits) - 1; i >= 0; i-- {
			e := edits[i]
			if e.Offset < 0 || e.End > len(src) || e.Offset > e.End {
				return nil, fmt.Errorf("lint: fix edit out of range in %s (offset %d..%d of %d bytes)", name, e.Offset, e.End, len(src))
			}
			src = append(src[:e.Offset], append([]byte(e.Text), src[e.End:]...)...)
		}
		formatted, err := format.Source(src)
		if err != nil {
			return nil, fmt.Errorf("lint: fixed %s does not parse: %w", name, err)
		}
		info, err := os.Stat(name)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if err := os.WriteFile(name, formatted, info.Mode().Perm()); err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
	}
	return changed, nil
}

// Fixable reports how many of the findings carry a suggested fix.
func Fixable(findings []Finding) int {
	n := 0
	for _, f := range findings {
		if f.Fix != nil {
			n++
		}
	}
	return n
}
