package lint

import (
	"go/ast"
)

var loopcaptureCheck = &Check{
	Name: "loopcapture",
	Doc: "Flags go/defer function literals that capture a loop variable of " +
		"an enclosing for/range header. Per-iteration variables (Go 1.22) " +
		"make this safe in current toolchains, but the capture is still a " +
		"latent bug for any reader back-porting the code; pass the " +
		"variable as an argument.",
	run: func(p *pass) {
		for _, f := range p.pkg.files {
			p.walkFile(f, hooks{
				stmtCall: func(w *walker, sc *scope, call *ast.CallExpr, how string) {
					if how == "" || len(w.loopVars) == 0 {
						return
					}
					lit, ok := call.Fun.(*ast.FuncLit)
					if !ok {
						return
					}
					shadowed := map[string]bool{}
					if lit.Type.Params != nil {
						for _, fld := range lit.Type.Params.List {
							for _, n := range fld.Names {
								shadowed[n.Name] = true
							}
						}
					}
					reported := map[string]bool{}
					ast.Inspect(lit.Body, func(n ast.Node) bool {
						id, ok := n.(*ast.Ident)
						if !ok || shadowed[id.Name] || reported[id.Name] || !w.inLoop(id.Name) {
							return true
						}
						reported[id.Name] = true
						p.reportf(id.Pos(), "loopcapture",
							"loop variable %s captured by %s literal; pass it as an argument (unsafe before Go 1.22 per-iteration variables)", id.Name, how)
						return true
					})
				},
			})
		}
	},
}
