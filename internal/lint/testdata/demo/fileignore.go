//strlint:file-ignore floateq this whole file compares floats exactly on purpose
package demo

func fileWideA(a, b float64) bool { return a == b } // suppressed by file-ignore

func fileWideB(a, b float64) bool { return a != b } // suppressed by file-ignore
