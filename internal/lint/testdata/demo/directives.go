package demo

// The four malformed directives below each fire the directive check and
// suppress nothing.

//strlint:ignore floateq
func missingReason(a, b float64) bool {
	return a == b // still fires floateq: the directive above is malformed
}

//strlint:ignore floatqe typo in the check name
func unknownCheck() {}

//strlint:ignored floateq the verb has a trailing d
func unknownVerb() {}

//strlint:ignore floateq,,panics a double comma leaves an empty entry
func emptyEntry() {}
