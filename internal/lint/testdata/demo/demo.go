// Package demo is the strlint test fixture: every construct below is
// annotated with the finding it must (or must not) produce.
package demo

import (
	"bytes"
	"encoding/binary"

	"demo/internal/buffer"
	"demo/internal/query"
	"demo/internal/storage"
)

// EqualWeight fires floateq on the == operator.
func EqualWeight(a, b float64) bool {
	return a == b // want floateq
}

// DifferentWeight fires floateq on the != operator via a float32 field.
type scale struct{ factor float32 }

func (s scale) isIdentity() bool {
	return s.factor != 1 // want floateq
}

// EqualWeightIntended is the same comparison suppressed by a directive.
func EqualWeightIntended(a, b float64) bool {
	//strlint:ignore floateq bit-exact equality is this fixture's contract
	return a == b
}

// IntEqual must not fire: both operands are integers.
func IntEqual(a, b int) bool { return a == b }

// DropAll fires droppederr three ways: a plain call, a defer, and an
// encoding/binary write.
func DropAll(p *storage.Pager) {
	p.Flush()       // want droppederr
	defer p.Close() // want droppederr
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, uint32(7)) // want droppederr
}

// DropIntended is a discarded error under a directive.
func DropIntended(p *storage.Pager) {
	//strlint:ignore droppederr fixture: the error is deliberately dropped
	p.Flush()
}

// DropBatch fires droppederr two more ways, both goroutine-shaped: a
// batch executor fired off with a bare go statement (its error — a
// worker's page-read failure — vanishes with the goroutine), and a
// dropped error inside a goroutine body.
func DropBatch(ex *query.Executor, p *storage.Pager) {
	//strlint:ignore waitpair fixture isolates droppederr; the leak is the point
	go ex.Run() // want droppederr
	//strlint:ignore waitpair fixture isolates droppederr; the leak is the point
	go func() {
		p.Flush() // want droppederr
	}()
}

// DropWritePin fires droppederr on a dropped write-pin release: the
// error from buffer.ReleaseMut reports a pin-protocol pairing bug (a
// page released that was never write-pinned), and swallowing it leaves
// a dirty page pinned forever.
func DropWritePin(p *buffer.Pool) {
	f, err := p.FetchMut(7)
	if err != nil {
		return
	}
	p.ReleaseMut(f) // want droppederr
}

// DropWritePinHandled must not fire: the release error is consumed.
func DropWritePinHandled(p *buffer.Pool) error {
	f, err := p.FetchMut(7)
	if err != nil {
		return err
	}
	return p.ReleaseMut(f)
}

// DropBatchHandled must not fire: both goroutines consume their errors.
func DropBatchHandled(ex *query.Executor, errs chan<- error) {
	go func() {
		errs <- ex.Run()
	}()
	go func() {
		if err := ex.Drain(); err != nil {
			errs <- err
		}
	}()
}

// DropHandled must not fire: the error is consumed.
func DropHandled(p *storage.Pager) error {
	if err := p.Flush(); err != nil {
		return err
	}
	_ = p.Close()
	return nil
}

// CaptureLoop fires loopcapture for the goroutine and the defer.
func CaptureLoop(xs []int) {
	for i := range xs {
		//strlint:ignore waitpair fixture isolates loopcapture
		go func() {
			_ = xs[i] // want loopcapture
		}()
	}
	for _, x := range xs {
		defer func() {
			_ = x // want loopcapture
		}()
	}
}

// CaptureSafely must not fire: the loop variable is passed as an argument.
func CaptureSafely(xs []int) {
	for i := range xs {
		//strlint:ignore waitpair fixture isolates loopcapture
		go func(i int) {
			_ = xs[i]
		}(i)
	}
}
