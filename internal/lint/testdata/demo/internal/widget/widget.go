// Package widget is absent from the layering table (an imports finding in
// itself) and panics from ordinary library functions.
package widget

// Explode panics from plain library code: a panics finding.
func Explode() {
	panic("boom")
}

// MustExplode panics from a must-prefixed function: allowed by convention.
func MustExplode() {
	panic("boom")
}

func init() {
	if false {
		panic("unreachable") // init is exempt as well
	}
}
