// Package buffer mirrors the real module's buffer layer just enough for
// the droppederr fixture: the write-pin protocol's ReleaseMut returns an
// error that reports a pin-pairing bug, and dropping it hides a dirty
// page that will never be flushed.
package buffer

// Frame is a stand-in for a pinned page frame.
type Frame struct{}

// Pool is a stand-in for the page pool.
type Pool struct{}

// FetchMut pretends to take an exclusive write pin on a page.
func (p *Pool) FetchMut(id uint64) (*Frame, error) { return &Frame{}, nil }

// ReleaseMut pretends to release a write pin.
func (p *Pool) ReleaseMut(f *Frame) error { return nil }
