package server

import "context"

// DB is a stand-in for a handle whose methods have Context variants.
type DB struct{}

// Scan is the legacy entry point.
func (db *DB) Scan() int { return 1 }

// ScanContext is the cancellable variant.
func (db *DB) ScanContext(ctx context.Context) int {
	_ = ctx
	return 1
}

func find() int { return 2 }

func findContext(ctx context.Context) int {
	_ = ctx
	return 2
}

// Lookup fires ctxprop twice: both callees have Context siblings the
// incoming ctx never reaches.
func Lookup(ctx context.Context, db *DB) int {
	a := db.Scan() // want ctxprop
	b := find()    // want ctxprop
	return a + b
}

// LookupRight must not fire: the context is propagated.
func LookupRight(ctx context.Context, db *DB) int {
	return db.ScanContext(ctx) + findContext(ctx)
}

// Detached fires ctxprop: minting a root context in library code.
func Detached() context.Context {
	return context.Background() // want ctxprop
}
