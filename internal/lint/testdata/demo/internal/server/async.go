package server

import "sync"

// FireAndForget fires waitpair: a named-function goroutine with no
// WaitGroup Add anywhere before it.
func FireAndForget(work func()) {
	go work() // want waitpair
}

// LeakyLoop fires waitpair: the literal neither signals completion nor
// pairs with a WaitGroup.
func LeakyLoop(jobs []func()) {
	for _, j := range jobs {
		go func(j func()) { // want waitpair
			j()
		}(j)
	}
}

// Waited must not fire: Add precedes the launch and the body calls Done.
func Waited(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// RunNamed must not fire: a named-function goroutine is fine once an Add
// appears earlier in the same function.
func RunNamed(work func()) *sync.WaitGroup {
	var wg sync.WaitGroup
	wg.Add(1)
	go runAndDone(&wg, work)
	return &wg
}

func runAndDone(wg *sync.WaitGroup, work func()) {
	defer wg.Done()
	work()
}

// Signals must not fire: the body closes a channel callers can wait on.
func Signals(work func()) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	return done
}
