// Package server fixtures the droppederr check's intra-package rule:
// internal/server is itself a droppederr target, so even its own calls
// to its own functions must not discard errors.
package server

import "errors"

// Shutdown returns an error the caller must not drop.
func Shutdown() error { return errors.New("requests cut off mid-response") }

// Exit drops its own package's shutdown error on the floor.
func Exit() {
	Shutdown() // want droppederr
}

// ExitHandled must not fire: the error is consumed.
func ExitHandled() error {
	return Shutdown()
}

// ExitIntended must not fire: the discard is explicit.
func ExitIntended() {
	_ = Shutdown()
}
