// Package pack fixtures the determinism checks: internal/pack is one of
// the deterministic build layers, so map iteration order and wall-clock
// or random values must never reach its output.
package pack

import (
	"math/rand"
	"slices"
	"time"
)

// Writer consumes records in call order; its output depends on it.
type Writer struct{ records []string }

// WriteRecord appends one record to the output.
func (w *Writer) WriteRecord(k string, v int) {
	w.records = append(w.records, k)
}

// Keys fires maporder: the collected slice is returned unsorted, so map
// iteration order escapes.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want maporder
	}
	return out
}

// WriteAll fires maporder: each iteration writes a record, so the output
// order is the map's iteration order.
func WriteAll(m map[string]int, w *Writer) {
	for k, v := range m {
		w.WriteRecord(k, v) // want maporder
	}
}

// KeysSorted must not fire: the collection is sorted before use in the
// same block.
func KeysSorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

// SliceTotal must not fire: ranging over a slice is ordered.
func SliceTotal(xs []int) int {
	total := 0
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
		total += x
	}
	return total + len(out)
}

// Timed fires timerand twice: reading the wall clock in a build layer.
func Timed(work func()) time.Duration {
	start := time.Now() // want timerand
	work()
	return time.Since(start) // want timerand
}

// Shuffle fires timerand: randomness in a build layer.
func Shuffle(n int) int {
	return rand.Intn(n) // want timerand
}
