// Package router fixtures the serving-side layering rows: the fan-out
// router may reuse the server stack and the shard map, but must never
// reach into the tree internals directly — it sees data only through
// backends. Importing internal/rtree is the violation.
package router

import "demo/internal/rtree"

// Peek drags the tree internals into the routing layer.
func Peek(s *rtree.Store, id int) []byte { return s.Get(id) }
