// Package storage mirrors the real module's error-critical storage layer
// so the droppederr fixture can discard errors from it.
package storage

// Pager is a stand-in for the real pager.
type Pager struct{}

// Flush pretends to write buffered pages.
func (p *Pager) Flush() error { return nil }

// Close pretends to release the pager.
func (p *Pager) Close() error { return nil }

// Open pretends to open a pager.
func Open(path string) (*Pager, error) { return &Pager{}, nil }
