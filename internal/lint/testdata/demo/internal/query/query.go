// Package query mirrors the real module's batch-executor layer so the
// droppederr fixture can discard its errors — including on bare go
// statements, the failure mode that silently truncates query results.
package query

// Executor is a stand-in for the real batch executor.
type Executor struct{}

// Run pretends to fan a batch of queries across workers.
func (e *Executor) Run() error { return nil }

// Drain pretends to collect the workers' results.
func (e *Executor) Drain() error { return nil }
