// Package geom sits at the bottom of the layering table (no internal
// imports allowed) yet imports internal/storage: the imports fixture.
package geom

import "demo/internal/storage"

// Leak drags the storage layer into the geometry layer.
func Leak() (*storage.Pager, error) { return storage.Open("x") }
