// Package rtree fixtures the guardedby check: annotated fields must only
// be touched with their mutex held, and a mutex must never be copied.
package rtree

import "sync"

// Store is a page cache with annotated shared state.
type Store struct {
	mu    sync.Mutex
	pages map[int][]byte // guarded by mu
	count int            // guarded by mu
	// The annotation below names a nonexistent field and is itself a
	// finding.
	stale int // guarded by lock -- want guardedby
}

// Get fires guardedby: it reads pages without taking mu.
func (s *Store) Get(id int) []byte {
	return s.pages[id] // want guardedby
}

// Put must not fire: the lock is held for both accesses.
func (s *Store) Put(id int, b []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pages[id] = b
	s.count++
}

// Len must not fire: explicit unlock after the access.
func (s *Store) Len() int {
	s.mu.Lock()
	n := s.count
	s.mu.Unlock()
	return n
}

// countLocked must not fire: the Locked suffix marks the caller as the
// lock holder.
func (s *Store) countLocked() int { return s.count }

// Snapshot fires guardedby: it receives the Store by value, copying mu.
func Snapshot(s Store) int { // want guardedby
	return len(s.pages)
}
