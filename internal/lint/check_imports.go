package lint

import (
	"strings"
)

var importsCheck = &Check{
	Name: "imports",
	Doc: "Enforces the bottom-up layering table in rules.go: each library " +
		"package may import only its listed module-internal dependencies. " +
		"A library package missing from the table is itself a finding, so " +
		"the table cannot silently rot.",
	run: func(p *pass) {
		allowed, ok := layerAllowed[p.pkg.path]
		for _, f := range p.pkg.files {
			if !ok {
				if libraryPackage(p.pkg.path) {
					p.reportf(f.ast.Name.Pos(), "imports",
						"package %s missing from the strlint layering table (internal/lint/rules.go); add it with its allowed imports", pkgDisplay(p.pkg.path))
				}
				continue
			}
			for _, imp := range f.ast.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				rel, inModule := cutModulePrefix(path, p.a.module)
				if path == p.a.module {
					rel, inModule = "", true
				}
				if !inModule {
					continue
				}
				if !allowed[rel] {
					p.reportf(imp.Pos(), "imports",
						"layering violation: %s must not import %s (allowed: %s)",
						pkgDisplay(p.pkg.path), pkgDisplay(rel), allowedList(allowed))
				}
			}
		}
	},
}

func allowedList(allowed map[string]bool) string {
	if len(allowed) == 0 {
		return "none"
	}
	var names []string
	for p := range allowed {
		names = append(names, pkgDisplay(p))
	}
	sortStrings(names)
	return strings.Join(names, ", ")
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
