package lint

import (
	"go/ast"
	"go/token"
)

// hooks are the callbacks a check installs on the shared scope-resolved
// walk. All fields are optional. The walker maintains lexical scopes
// (name -> best-effort type) and the stacks the checks need (enclosing
// function names, loop-header variables), so each check stays a thin,
// self-contained rule.
type hooks struct {
	// binary fires on every binary expression.
	binary func(w *walker, sc *scope, x *ast.BinaryExpr)
	// call fires on every call expression, wherever it appears.
	call func(w *walker, sc *scope, x *ast.CallExpr)
	// stmtCall fires on statement-level calls: how is "" for a plain
	// expression statement, "go" or "defer" otherwise.
	stmtCall func(w *walker, sc *scope, x *ast.CallExpr, how string)
	// goStmt fires on every go statement, before its call is visited.
	goStmt func(w *walker, sc *scope, x *ast.GoStmt)
	// rangeOver fires on every range statement after its key/value
	// bindings are in scope; rest holds the statements following the
	// range in its enclosing block (for "sorted afterwards" detection).
	rangeOver func(w *walker, sc *scope, x *ast.RangeStmt, rest []ast.Stmt)
}

// walker traverses one file's functions with a live scope, invoking the
// installed hooks at the relevant nodes.
type walker struct {
	a    *Analyzer
	r    *resolver
	file *fileInfo
	h    hooks

	funcNames []string          // stack of enclosing function names
	loopVars  []map[string]bool // stack of loop-header variables
}

// walkFile runs one check's hooks over every function in every file of
// the pass's package.
func (p *pass) walkFile(f *fileInfo, h hooks) {
	w := &walker{
		a:    p.a,
		r:    &resolver{a: p.a, file: f},
		file: f,
		h:    h,
	}
	for _, decl := range f.ast.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok {
			w.walkFuncDecl(fd)
		}
	}
}

// funcName returns the name of the innermost enclosing function
// declaration, or "(unknown)".
func (w *walker) funcName() string {
	if len(w.funcNames) == 0 {
		return "(unknown)"
	}
	return w.funcNames[len(w.funcNames)-1]
}

// inLoop reports whether name is a loop-header variable of any enclosing
// for/range statement.
func (w *walker) inLoop(name string) bool {
	for _, vars := range w.loopVars {
		if vars[name] {
			return true
		}
	}
	return false
}

func (w *walker) walkFuncDecl(fd *ast.FuncDecl) {
	sc := newScope(nil)
	if fd.Recv != nil {
		for _, fld := range fd.Recv.List {
			t := w.a.parseTypeExpr(w.file, fld.Type)
			for _, name := range fld.Names {
				sc.set(name.Name, t)
			}
		}
	}
	w.bindFieldList(sc, fd.Type.Params)
	w.bindFieldList(sc, fd.Type.Results)
	w.funcNames = append(w.funcNames, fd.Name.Name)
	if fd.Body != nil {
		w.walkBlock(sc, fd.Body)
	}
	w.funcNames = w.funcNames[:len(w.funcNames)-1]
}

func (w *walker) bindFieldList(sc *scope, fl *ast.FieldList) {
	if fl == nil {
		return
	}
	for _, fld := range fl.List {
		t := w.a.parseTypeExpr(w.file, fld.Type)
		for _, name := range fld.Names {
			sc.set(name.Name, t)
		}
	}
}

func (w *walker) walkBlock(sc *scope, b *ast.BlockStmt) {
	inner := newScope(sc)
	for i, st := range b.List {
		w.walkStmt(inner, st, b.List[i+1:])
	}
}

// walkStmt visits one statement. rest holds the statements following st
// in the same block (empty when st is nested in a non-block position).
func (w *walker) walkStmt(sc *scope, st ast.Stmt, rest []ast.Stmt) {
	switch s := st.(type) {
	case *ast.BlockStmt:
		w.walkBlock(sc, s)
	case *ast.ExprStmt:
		w.visitExpr(sc, s.X)
		if call, ok := s.X.(*ast.CallExpr); ok && w.h.stmtCall != nil {
			w.h.stmtCall(w, sc, call, "")
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.visitExpr(sc, e)
		}
		for _, e := range s.Lhs {
			if _, ok := e.(*ast.Ident); !ok {
				w.visitExpr(sc, e)
			}
		}
		if s.Tok == token.DEFINE {
			w.r.bindAssign(sc, s.Lhs, s.Rhs)
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				w.visitExpr(sc, v)
			}
			if vs.Type != nil {
				t := w.a.parseTypeExpr(w.file, vs.Type)
				for _, name := range vs.Names {
					sc.set(name.Name, t)
				}
			} else {
				lhs := make([]ast.Expr, len(vs.Names))
				for i, n := range vs.Names {
					lhs[i] = n
				}
				w.r.bindAssign(sc, lhs, vs.Values)
			}
		}
	case *ast.DeferStmt:
		if w.h.stmtCall != nil {
			w.h.stmtCall(w, sc, s.Call, "defer")
		}
		w.visitExpr(sc, s.Call)
	case *ast.GoStmt:
		if w.h.goStmt != nil {
			w.h.goStmt(w, sc, s)
		}
		if w.h.stmtCall != nil {
			w.h.stmtCall(w, sc, s.Call, "go")
		}
		w.visitExpr(sc, s.Call)
	case *ast.IfStmt:
		inner := newScope(sc)
		if s.Init != nil {
			w.walkStmt(inner, s.Init, nil)
		}
		w.visitExpr(inner, s.Cond)
		w.walkBlock(inner, s.Body)
		if s.Else != nil {
			w.walkStmt(inner, s.Else, nil)
		}
	case *ast.ForStmt:
		inner := newScope(sc)
		vars := map[string]bool{}
		if s.Init != nil {
			w.walkStmt(inner, s.Init, nil)
			if as, ok := s.Init.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
				for _, l := range as.Lhs {
					if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
						vars[id.Name] = true
					}
				}
			}
		}
		if s.Cond != nil {
			w.visitExpr(inner, s.Cond)
		}
		if s.Post != nil {
			w.walkStmt(inner, s.Post, nil)
		}
		w.loopVars = append(w.loopVars, vars)
		w.walkBlock(inner, s.Body)
		w.loopVars = w.loopVars[:len(w.loopVars)-1]
	case *ast.RangeStmt:
		inner := newScope(sc)
		w.visitExpr(inner, s.X)
		vars := map[string]bool{}
		if s.Tok == token.DEFINE {
			w.r.bindRange(inner, s)
			for _, e := range []ast.Expr{s.Key, s.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					vars[id.Name] = true
				}
			}
		}
		if w.h.rangeOver != nil {
			w.h.rangeOver(w, inner, s, rest)
		}
		w.loopVars = append(w.loopVars, vars)
		w.walkBlock(inner, s.Body)
		w.loopVars = w.loopVars[:len(w.loopVars)-1]
	case *ast.SwitchStmt:
		inner := newScope(sc)
		if s.Init != nil {
			w.walkStmt(inner, s.Init, nil)
		}
		if s.Tag != nil {
			w.visitExpr(inner, s.Tag)
		}
		for _, cc := range s.Body.List {
			clause, ok := cc.(*ast.CaseClause)
			if !ok {
				continue
			}
			caseScope := newScope(inner)
			for _, e := range clause.List {
				w.visitExpr(caseScope, e)
			}
			for i, cs := range clause.Body {
				w.walkStmt(caseScope, cs, clause.Body[i+1:])
			}
		}
	case *ast.TypeSwitchStmt:
		inner := newScope(sc)
		if s.Init != nil {
			w.walkStmt(inner, s.Init, nil)
		}
		var bind string
		if as, ok := s.Assign.(*ast.AssignStmt); ok && len(as.Lhs) == 1 {
			if id, ok := as.Lhs[0].(*ast.Ident); ok {
				bind = id.Name
			}
			for _, e := range as.Rhs {
				if ta, ok := e.(*ast.TypeAssertExpr); ok {
					w.visitExpr(inner, ta.X)
				}
			}
		}
		for _, cc := range s.Body.List {
			clause, ok := cc.(*ast.CaseClause)
			if !ok {
				continue
			}
			caseScope := newScope(inner)
			if bind != "" {
				t := unknownType
				if len(clause.List) == 1 {
					t = w.a.parseTypeExpr(w.file, clause.List[0])
				}
				caseScope.set(bind, t)
			}
			for i, cs := range clause.Body {
				w.walkStmt(caseScope, cs, clause.Body[i+1:])
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			clause, ok := cc.(*ast.CommClause)
			if !ok {
				continue
			}
			caseScope := newScope(sc)
			if clause.Comm != nil {
				w.walkStmt(caseScope, clause.Comm, nil)
			}
			for i, cs := range clause.Body {
				w.walkStmt(caseScope, cs, clause.Body[i+1:])
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.visitExpr(sc, e)
		}
	case *ast.SendStmt:
		w.visitExpr(sc, s.Chan)
		w.visitExpr(sc, s.Value)
	case *ast.IncDecStmt:
		w.visitExpr(sc, s.X)
	case *ast.LabeledStmt:
		w.walkStmt(sc, s.Stmt, rest)
	}
}

// visitExpr recursively visits an expression, firing the expression-level
// hooks and descending into function literals with a fresh scope.
func (w *walker) visitExpr(sc *scope, e ast.Expr) {
	switch x := e.(type) {
	case *ast.BinaryExpr:
		if w.h.binary != nil {
			w.h.binary(w, sc, x)
		}
		w.visitExpr(sc, x.X)
		w.visitExpr(sc, x.Y)
	case *ast.CallExpr:
		if w.h.call != nil {
			w.h.call(w, sc, x)
		}
		w.visitExpr(sc, x.Fun)
		for _, arg := range x.Args {
			w.visitExpr(sc, arg)
		}
	case *ast.FuncLit:
		lit := newScope(sc)
		w.bindFieldList(lit, x.Type.Params)
		w.bindFieldList(lit, x.Type.Results)
		w.walkBlock(lit, x.Body)
	case *ast.ParenExpr:
		w.visitExpr(sc, x.X)
	case *ast.SelectorExpr:
		w.visitExpr(sc, x.X)
	case *ast.IndexExpr:
		w.visitExpr(sc, x.X)
		w.visitExpr(sc, x.Index)
	case *ast.SliceExpr:
		w.visitExpr(sc, x.X)
		for _, idx := range []ast.Expr{x.Low, x.High, x.Max} {
			if idx != nil {
				w.visitExpr(sc, idx)
			}
		}
	case *ast.StarExpr:
		w.visitExpr(sc, x.X)
	case *ast.UnaryExpr:
		w.visitExpr(sc, x.X)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			w.visitExpr(sc, el)
		}
	case *ast.KeyValueExpr:
		w.visitExpr(sc, x.Value)
	case *ast.TypeAssertExpr:
		w.visitExpr(sc, x.X)
	}
}

func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if x, ok := f.X.(*ast.Ident); ok {
			return x.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return "(call)"
}
