package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"slices"
	"strings"
)

// The baseline grandfathers known findings so strlint can gate on zero
// NEW findings while old, reasoned ones are paid down over time. An entry
// matches up to Count findings of one check in one file; the count is
// part of the key on purpose — if a file with 4 baselined timerand
// findings grows a 5th, the 5th still fires. Every entry carries a human
// reason, reviewed like code.

// BaselineEntry grandfathers Count findings of Check in File.
type BaselineEntry struct {
	Check  string `json:"check"`
	File   string `json:"file"` // module-relative, forward slashes
	Count  int    `json:"count"`
	Reason string `json:"reason"`
}

// LoadBaseline reads a baseline file. A missing file is an empty
// baseline, not an error, so fresh checkouts and tests need no stub file.
func LoadBaseline(path string) ([]BaselineEntry, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var entries []BaselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	for i, e := range entries {
		if e.Check == "" || e.File == "" || e.Count <= 0 || strings.TrimSpace(e.Reason) == "" {
			return nil, fmt.Errorf("lint: baseline %s entry %d: check, file, positive count and reason are all required", path, i)
		}
	}
	return entries, nil
}

// ApplyBaseline filters findings through the baseline: for each
// (check, file) the first Count position-sorted findings are dropped.
// It returns the surviving findings plus a message per stale entry (one
// that matched fewer findings than its count), so paid-down debt is
// flagged for removal from the file.
func ApplyBaseline(findings []Finding, entries []BaselineEntry, root string) ([]Finding, []string) {
	if len(entries) == 0 {
		return findings, nil
	}
	budget := map[string]int{}
	for _, e := range entries {
		budget[e.Check+"\x00"+e.File] += e.Count
	}
	matched := map[string]int{}
	kept := findings[:0]
	for _, f := range findings {
		key := f.Check + "\x00" + relSlash(root, f.Pos.Filename)
		if budget[key] > 0 {
			budget[key]--
			matched[key]++
			continue
		}
		kept = append(kept, f)
	}
	var stale []string
	for _, e := range entries {
		key := e.Check + "\x00" + e.File
		if left := budget[key]; left > 0 {
			stale = append(stale, fmt.Sprintf("baseline entry %s in %s expects %d finding(s), matched %d; shrink or remove it",
				e.Check, e.File, e.Count, matched[key]))
			budget[key] = 0 // report each surplus once
		}
	}
	return kept, stale
}

// WriteBaseline aggregates the findings into baseline entries and writes
// them to path with placeholder reasons for the author to fill in.
func WriteBaseline(path string, findings []Finding, root string) error {
	counts := map[string]map[string]int{} // check -> file -> count
	for _, f := range findings {
		file := relSlash(root, f.Pos.Filename)
		if counts[f.Check] == nil {
			counts[f.Check] = map[string]int{}
		}
		counts[f.Check][file]++
	}
	var entries []BaselineEntry
	for check, files := range counts {
		for file, n := range files {
			entries = append(entries, BaselineEntry{Check: check, File: file, Count: n, Reason: "TODO: justify or fix"})
		}
	}
	slices.SortFunc(entries, func(a, b BaselineEntry) int {
		if c := strings.Compare(a.Check, b.Check); c != 0 {
			return c
		}
		return strings.Compare(a.File, b.File)
	})
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
