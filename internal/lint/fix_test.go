package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"strtree/internal/lint"
)

// copyTree duplicates the demo fixture module into dst so -fix can write
// without touching the committed fixtures.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, info.Mode())
	})
	if err != nil {
		t.Fatal(err)
	}
}

// snapshot reads every .go file under root keyed by relative path.
func snapshot(t *testing.T, root string) map[string]string {
	t.Helper()
	out := map[string]string{}
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || filepath.Ext(path) != ".go" {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		out[rel] = string(data)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func run(t *testing.T, root string) []lint.Finding {
	t.Helper()
	a, err := lint.Load(root)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := a.Run(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

// TestApplyFixesRoundTrip proves the autofix engine end to end: fixable
// findings disappear after one apply, non-fixable ones survive, and a
// second apply is a byte-for-byte no-op (idempotency).
func TestApplyFixesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	copyTree(t, filepath.Join("testdata", "demo"), dir)

	before := run(t, dir)
	fixable := lint.Fixable(before)
	if fixable == 0 {
		t.Fatal("demo module has no fixable findings; the round trip tests nothing")
	}
	changed, err := lint.ApplyFixes(before)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) == 0 {
		t.Fatal("ApplyFixes reported no files changed")
	}

	after := run(t, dir)
	if got := lint.Fixable(after); got != 0 {
		var lines []string
		for _, f := range after {
			if f.Fix != nil {
				lines = append(lines, f.String())
			}
		}
		t.Fatalf("%d fixable findings survived their own fix: %v", got, lines)
	}
	if len(after) >= len(before) {
		t.Fatalf("findings did not shrink: %d -> %d", len(before), len(after))
	}
	// The specific demonstrations the fixtures were written for: every
	// droppederr plain call gained an `_ =` and both ctxprop call sites
	// switched to their Context variants.
	counts := map[string]int{}
	for _, f := range after {
		counts[f.Check]++
	}
	if counts["droppederr"] != 2 { // defer and go calls have no mechanical fix
		t.Errorf("droppederr after fix = %d, want 2", counts["droppederr"])
	}
	if counts["ctxprop"] != 1 { // only context.Background survives
		t.Errorf("ctxprop after fix = %d, want 1", counts["ctxprop"])
	}

	// Idempotency: re-applying on the already-fixed tree changes nothing.
	snapBefore := snapshot(t, dir)
	changed, err = lint.ApplyFixes(after)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 0 {
		t.Fatalf("second ApplyFixes touched files: %v", changed)
	}
	snapAfter := snapshot(t, dir)
	if len(snapBefore) != len(snapAfter) {
		t.Fatalf("file set changed: %d -> %d", len(snapBefore), len(snapAfter))
	}
	for rel, data := range snapBefore {
		if snapAfter[rel] != data {
			t.Errorf("%s changed on second apply", rel)
		}
	}
}
