package lint

// This file is strlint's repository-specific configuration: the layering
// table the imports check enforces and the packages whose dropped errors
// the droppederr check refuses to tolerate.

// droppedErrTargets are the packages whose error returns must never be
// silently discarded: the storage and buffer layers (a dropped error there
// corrupts a persistent tree), encoding/binary (a short read/write yields
// a garbage page), the query layer (a batch executor's error carries a
// worker's page-read failure — dropping it, especially on a `go` call,
// silently truncates query results), and the serving layer (a dropped
// drain or shutdown error hides requests that were cut off mid-response).
// Keys are module-relative paths or stdlib paths. The check fires on
// plain, defer and go calls alike, and inside goroutine bodies — including
// a target package's calls to its own functions.
var droppedErrTargets = map[string]bool{
	"internal/storage": true,
	"internal/buffer":  true,
	"internal/query":   true,
	"internal/server":  true,
	"internal/router":  true,
	"internal/extsort": true,
	"internal/pack":    true,
	"encoding/binary":  true,
}

// deterministicLayers are the packages on the bulk-load build path whose
// output must be byte-identical at any worker count (the PR-4 contract):
// the root strtree package (layer registry, catalog encoding), the packing
// pipeline and its sorters, and the tree writer. The maporder and timerand
// checks only fire here: map iteration order, wall-clock time and random
// numbers must never influence what these layers write.
var deterministicLayers = map[string]bool{
	"":                 true, // the root strtree package
	"internal/pack":    true,
	"internal/psort":   true,
	"internal/extsort": true,
	"internal/rtree":   true,
	// obs is not on the build path, but its expositions promise scrapers a
	// deterministic series order — the same "no map iteration into output"
	// discipline, so it opts into the maporder/timerand checks.
	"internal/obs": true,
}

// layerAllowed is the architecture of the module as an allowed-imports
// table: for each library package, the set of module-internal packages it
// may import ("" is the root strtree package). Anything else is a layering
// violation. The layering is strictly bottom-up:
//
//	geom, hilbert, storage, svg, histo (foundations: no internal imports)
//	node, wkt, geojson, server/wire    -> geom
//	obs                                -> histo
//	query                              -> geom, node
//	buffer, trace                      -> storage
//	datagen, extsort, psort            -> geom, node
//	pack                               -> extsort, geom, hilbert, node, psort
//	rtree                              -> buffer, geom, node, storage
//	metrics, invariant                 -> rtree and below
//	experiments                        -> everything below
//	strtree (root)                     -> the public surface's needs
//	router/shardmap                    -> geom, node, pack
//	server                             -> strtree root, geom, histo, obs, query, server/wire
//	router                             -> strtree root, geom, histo, node, obs, router/shardmap, server, server/wire
//	lint                               (standalone: no internal imports)
//
// internal/server and internal/router sit ABOVE the root: they serve the
// public Tree API over the network (the router multiplying it across a
// shard fleet, reusing server's client and connection I/O). That is safe
// (the root never imports them back) and keeps the serving layers off
// the paper-reproduction core's dependency graph. router/shardmap, by
// contrast, is a low layer: it only partitions entries with pack's STR
// tiling, so index-building tools can shard without touching the
// serving stack.
//
// Commands (cmd/*) and examples are deliberately unconstrained: they are
// leaves that may wire any layers together.
var layerAllowed = map[string]map[string]bool{
	"internal/geom":    {},
	"internal/hilbert": {},
	"internal/storage": {},
	"internal/svg":     {},
	"internal/lint":    {},
	"internal/histo":   {},
	"internal/obs":     {"internal/histo": true},
	"internal/node":    {"internal/geom": true},
	"internal/query":   {"internal/geom": true, "internal/node": true},
	"internal/wkt":     {"internal/geom": true},
	"internal/geojson": {"internal/geom": true},
	"internal/buffer":  {"internal/storage": true},
	"internal/trace":   {"internal/storage": true},
	"internal/datagen": {"internal/geom": true, "internal/node": true},
	"internal/extsort": {"internal/geom": true, "internal/node": true},
	"internal/psort":   {"internal/geom": true, "internal/node": true},
	"internal/pack": {
		"internal/extsort": true,
		"internal/geom":    true,
		"internal/hilbert": true,
		"internal/node":    true,
		"internal/psort":   true,
	},
	"internal/rtree": {
		"internal/buffer":  true,
		"internal/geom":    true,
		"internal/node":    true,
		"internal/storage": true,
	},
	"internal/metrics": {
		"internal/node":    true,
		"internal/rtree":   true,
		"internal/storage": true,
	},
	"internal/invariant": {
		"internal/buffer":  true,
		"internal/geom":    true,
		"internal/node":    true,
		"internal/rtree":   true,
		"internal/storage": true,
	},
	"internal/experiments": {
		"internal/buffer":  true,
		"internal/datagen": true,
		"internal/geom":    true,
		"internal/hilbert": true,
		"internal/metrics": true,
		"internal/node":    true,
		"internal/pack":    true,
		"internal/query":   true,
		"internal/rtree":   true,
		"internal/storage": true,
		"internal/trace":   true,
	},
	"internal/server/wire": {"internal/geom": true},
	"internal/router/shardmap": {
		"internal/geom": true,
		"internal/node": true,
		"internal/pack": true,
	},
	"internal/router": {
		"":                         true, // root strtree: the selftest builds backend trees
		"internal/geom":            true,
		"internal/histo":           true,
		"internal/node":            true,
		"internal/obs":             true,
		"internal/router/shardmap": true,
		"internal/server":          true,
		"internal/server/wire":     true,
	},
	"internal/server": {
		"":                     true, // the root strtree package: the served API
		"internal/geom":        true,
		"internal/histo":       true,
		"internal/obs":         true,
		"internal/query":       true,
		"internal/server/wire": true,
	},
	"": { // the root strtree package
		"internal/buffer":    true,
		"internal/geom":      true,
		"internal/invariant": true,
		"internal/metrics":   true,
		"internal/node":      true,
		"internal/pack":      true,
		"internal/query":     true,
		"internal/rtree":     true,
		"internal/storage":   true,
	},
}
