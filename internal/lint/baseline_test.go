package lint_test

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"strtree/internal/lint"
)

func finding(file string, line int, check string) lint.Finding {
	return lint.Finding{
		Pos:     token.Position{Filename: file, Line: line, Column: 1},
		Check:   check,
		Message: "m",
	}
}

// TestApplyBaselineCounts pins the count-aware semantics: a baseline entry
// absorbs at most Count findings of its check in its file, position order,
// and everything beyond the budget still fires.
func TestApplyBaselineCounts(t *testing.T) {
	root := string(filepath.Separator) + "repo"
	abs := func(rel string) string { return filepath.Join(root, rel) }
	findings := []lint.Finding{
		finding(abs("a.go"), 10, "timerand"),
		finding(abs("a.go"), 20, "timerand"),
		finding(abs("a.go"), 30, "timerand"), // over budget: must survive
		finding(abs("a.go"), 5, "maporder"),  // different check: must survive
		finding(abs("b.go"), 1, "timerand"),  // different file: must survive
	}
	entries := []lint.BaselineEntry{
		{Check: "timerand", File: "a.go", Count: 2, Reason: "stats only"},
	}
	kept, stale := lint.ApplyBaseline(findings, entries, root)
	if len(stale) != 0 {
		t.Fatalf("stale = %v", stale)
	}
	if len(kept) != 3 {
		t.Fatalf("kept %d findings, want 3: %v", len(kept), kept)
	}
	// The two earliest timerand findings in a.go are absorbed.
	for _, f := range kept {
		if f.Check == "timerand" && strings.HasSuffix(f.Pos.Filename, "a.go") && f.Pos.Line < 30 {
			t.Errorf("baselined finding survived: %v", f)
		}
	}
}

// TestApplyBaselineStale proves unused entries are reported rather than
// silently kept, so the debt list shrinks with the code.
func TestApplyBaselineStale(t *testing.T) {
	root := string(filepath.Separator) + "repo"
	findings := []lint.Finding{
		finding(filepath.Join(root, "a.go"), 1, "timerand"),
	}
	entries := []lint.BaselineEntry{
		{Check: "timerand", File: "a.go", Count: 2, Reason: "one was fixed"},
		{Check: "maporder", File: "gone.go", Count: 1, Reason: "file was deleted"},
	}
	kept, stale := lint.ApplyBaseline(findings, entries, root)
	if len(kept) != 0 {
		t.Fatalf("kept = %v", kept)
	}
	if len(stale) != 2 {
		t.Fatalf("stale = %v, want 2 messages", stale)
	}
	joined := strings.Join(stale, "\n")
	for _, want := range []string{"expects 2 finding(s), matched 1", "gone.go"} {
		if !strings.Contains(joined, want) {
			t.Errorf("stale messages missing %q:\n%s", want, joined)
		}
	}
}

// TestBaselineLoadValidation pins the file contract: missing file means no
// baseline, and entries without a reason are rejected loudly.
func TestBaselineLoadValidation(t *testing.T) {
	entries, err := lint.LoadBaseline(filepath.Join(t.TempDir(), "nonexistent.json"))
	if err != nil || entries != nil {
		t.Fatalf("missing baseline: entries=%v err=%v, want nil/nil", entries, err)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`[{"check":"timerand","file":"a.go","count":1}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := lint.LoadBaseline(bad); err == nil {
		t.Fatal("entry without reason accepted")
	}
	zero := filepath.Join(t.TempDir(), "zero.json")
	if err := os.WriteFile(zero, []byte(`[{"check":"timerand","file":"a.go","count":0,"reason":"r"}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := lint.LoadBaseline(zero); err == nil {
		t.Fatal("entry with zero count accepted")
	}
}

// TestWriteBaselineRoundTrip proves -write-baseline output loads back and
// absorbs exactly the findings it was generated from.
func TestWriteBaselineRoundTrip(t *testing.T) {
	root := string(filepath.Separator) + "repo"
	findings := []lint.Finding{
		finding(filepath.Join(root, "a.go"), 1, "timerand"),
		finding(filepath.Join(root, "a.go"), 2, "timerand"),
		finding(filepath.Join(root, "b.go"), 3, "maporder"),
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := lint.WriteBaseline(path, findings, root); err != nil {
		t.Fatal(err)
	}
	entries, err := lint.LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	kept, stale := lint.ApplyBaseline(findings, entries, root)
	if len(kept) != 0 || len(stale) != 0 {
		t.Fatalf("round trip not clean: kept=%v stale=%v", kept, stale)
	}
}
