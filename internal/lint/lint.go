// Package lint implements strlint, the repository's own static analyzer
// (run as `go run ./cmd/strlint ./...`). It is built on the standard
// library only — go/parser, go/ast, go/token — matching the module's
// stdlib-only rule, and its checks are tuned to this codebase rather than
// to Go in general:
//
//	floateq     ==/!= between floating-point values. The geometry and
//	            Hilbert layers are full of float64 arithmetic where exact
//	            comparison is almost always a bug; the few deliberate
//	            exact comparisons (MBR tightness, sentinel zeros) carry
//	            an ignore directive explaining why they are sound.
//	droppederr  a call into internal/storage, internal/buffer or
//	            encoding/binary whose error result is discarded. Dropped
//	            I/O errors silently corrupt persistent trees.
//	panics      panic() in library code (the root package and internal/*)
//	            outside must*/Must*/init functions. Library panics are
//	            allowed only as documented API contracts, marked with an
//	            ignore directive.
//	loopcapture a go or defer function literal capturing the loop
//	            variable of an enclosing for/range statement. Safe since
//	            Go 1.22's per-iteration variables, but flagged so the
//	            code stays correct if ever built or backported with an
//	            older toolchain.
//	imports     cross-layer imports that violate the layering table in
//	            rules.go (e.g. internal/geom must never import
//	            internal/storage).
//	directive   a malformed //strlint:ignore comment (unknown check name
//	            or missing reason).
//
// A finding is suppressed by a directive comment on the same line or the
// line above:
//
//	//strlint:ignore <check>[,<check>...] <reason>
//
// or for a whole file:
//
//	//strlint:file-ignore <check> <reason>
//
// The reason is mandatory: every suppression documents why the flagged
// code is deliberate.
package lint

import (
	"fmt"
	"go/token"
	"slices"
	"strings"
)

// Finding is one diagnostic produced by a check.
type Finding struct {
	Pos     token.Position
	Check   string
	Message string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
}

// AllChecks lists every check strlint knows, in reporting order.
var AllChecks = []string{"floateq", "droppederr", "panics", "loopcapture", "imports", "directive"}

func knownCheck(name string) bool {
	for _, c := range AllChecks {
		if c == name {
			return true
		}
	}
	return false
}

// Run executes the named checks (nil means all) over the given packages
// (import paths relative to the module root; nil means every loaded
// package) and returns the surviving findings sorted by position.
func (a *Analyzer) Run(pkgPaths, checks []string) ([]Finding, error) {
	enabled := map[string]bool{}
	if len(checks) == 0 {
		checks = AllChecks
	}
	for _, c := range checks {
		if !knownCheck(c) {
			return nil, fmt.Errorf("lint: unknown check %q (have %s)", c, strings.Join(AllChecks, ", "))
		}
		enabled[c] = true
	}
	var pkgs []*pkgInfo
	if len(pkgPaths) == 0 {
		for _, p := range a.pkgs {
			if !p.synthetic {
				pkgs = append(pkgs, p)
			}
		}
	} else {
		for _, path := range pkgPaths {
			p, ok := a.pkgs[path]
			if !ok || p.synthetic {
				return nil, fmt.Errorf("lint: package %q not found in module %s", path, a.module)
			}
			pkgs = append(pkgs, p)
		}
	}
	slices.SortFunc(pkgs, func(a, b *pkgInfo) int { return strings.Compare(a.path, b.path) })

	var all []Finding
	for _, p := range pkgs {
		all = append(all, a.checkPackage(p, enabled)...)
	}
	all = a.suppress(all)
	slices.SortFunc(all, func(a, b Finding) int {
		if c := strings.Compare(a.Pos.Filename, b.Pos.Filename); c != 0 {
			return c
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line - b.Pos.Line
		}
		return a.Pos.Column - b.Pos.Column
	})
	return all, nil
}

// suppress drops findings covered by an ignore directive and validates the
// directives themselves.
func (a *Analyzer) suppress(findings []Finding) []Finding {
	byFile := map[string]*fileInfo{}
	for _, p := range a.pkgs {
		for _, f := range p.files {
			byFile[f.name] = f
		}
	}
	out := findings[:0]
	for _, fd := range findings {
		if fd.Check == "directive" {
			out = append(out, fd) // directive misuse is never suppressible
			continue
		}
		f := byFile[fd.Pos.Filename]
		if f == nil || !f.suppressed(fd.Check, fd.Pos.Line) {
			out = append(out, fd)
		}
	}
	return out
}

// suppressed reports whether a finding of the given check at the given
// line is covered by one of the file's directives.
func (f *fileInfo) suppressed(check string, line int) bool {
	for _, d := range f.ignores {
		if !d.covers(check) {
			continue
		}
		if d.file || d.line == line || d.line == line-1 {
			return true
		}
	}
	return false
}

type directive struct {
	line   int
	checks []string
	reason string
	file   bool // file-scope (//strlint:file-ignore)
}

func (d directive) covers(check string) bool {
	for _, c := range d.checks {
		if c == check {
			return true
		}
	}
	return false
}
