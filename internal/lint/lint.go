// Package lint implements strlint, the repository's own static analyzer
// (run as `go run ./cmd/strlint ./...`). It is built on the standard
// library only — go/parser, go/ast, go/token — matching the module's
// stdlib-only rule, and its checks are tuned to this codebase rather than
// to Go in general.
//
// The package is organized as an analyzer registry (registry.go): each
// check is a self-contained analyzer with a name, a doc string, and a
// per-package run function over the shared AST and best-effort type
// tables, optionally attaching suggested fixes that `strlint -fix`
// applies as text edits. The registered checks:
//
//	floateq     ==/!= between floating-point values.
//	droppederr  discarded errors from the error-critical packages
//	            (storage, buffer, query, server, extsort, pack,
//	            encoding/binary).
//	panics      panic() in library code outside must*/Must*/init.
//	loopcapture go/defer literals capturing loop variables.
//	imports     cross-layer imports violating the table in rules.go.
//	maporder    range over a map that emits ordered output (appends,
//	            page writes, channel sends) in the deterministic build
//	            layers — iteration order would leak into the output.
//	timerand    time.Now/Since/Until or math/rand in the deterministic
//	            build layers.
//	guardedby   fields annotated `// guarded by <mu>` accessed without
//	            the lock held, and mutex-by-value copies.
//	waitpair    goroutines with no completion signal (no WaitGroup
//	            Add/Done pairing, channel send, or close).
//	ctxprop     context-taking exported functions that call a
//	            context-free sibling of a *Context variant, and
//	            context.Background()/TODO() in library packages.
//	directive   malformed //strlint:ignore comments.
//
// A finding is suppressed by a directive comment on the same line or the
// line above:
//
//	//strlint:ignore <check>[,<check>...] <reason>
//
// or for a whole file:
//
//	//strlint:file-ignore <check> <reason>
//
// The reason is mandatory: every suppression documents why the flagged
// code is deliberate. Findings may also be grandfathered in a committed
// baseline file (baseline.go) keyed by check, file and count.
package lint

import (
	"fmt"
	"go/token"
	"runtime"
	"slices"
	"strings"
	"sync"
)

// Finding is one diagnostic produced by a check.
type Finding struct {
	Pos     token.Position
	Check   string
	Message string
	// Fix, when non-nil, is a suggested fix `strlint -fix` can apply.
	Fix *Fix
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
}

// Fix is a suggested repair for a finding: a set of byte-range text
// edits within a single file.
type Fix struct {
	// Message describes the repair, e.g. "discard the error explicitly".
	Message string
	Edits   []Edit
}

// Edit replaces the byte range [Offset, End) of Filename with Text.
// Offset == End inserts.
type Edit struct {
	Filename string
	Offset   int
	End      int
	Text     string
}

// Run executes the named checks (nil means all) over the given packages
// (import paths relative to the module root; nil means every loaded
// package) and returns the surviving findings sorted by position.
// Packages are analyzed in parallel; output order is deterministic.
func (a *Analyzer) Run(pkgPaths, checks []string) ([]Finding, error) {
	var enabled []*Check
	if len(checks) == 0 {
		enabled = registry
	} else {
		for _, name := range checks {
			c := checkByName(name)
			if c == nil {
				return nil, fmt.Errorf("lint: unknown check %q (have %s)", name, strings.Join(AllChecks(), ", "))
			}
			enabled = append(enabled, c)
		}
	}
	var pkgs []*pkgInfo
	if len(pkgPaths) == 0 {
		for _, p := range a.pkgs {
			if !p.synthetic {
				pkgs = append(pkgs, p)
			}
		}
	} else {
		for _, path := range pkgPaths {
			p, ok := a.pkgs[path]
			if !ok || p.synthetic {
				return nil, fmt.Errorf("lint: package %q not found in module %s", path, a.module)
			}
			pkgs = append(pkgs, p)
		}
	}
	slices.SortFunc(pkgs, func(a, b *pkgInfo) int { return strings.Compare(a.path, b.path) })

	// One goroutine per package, bounded by GOMAXPROCS. The symbol tables
	// are read-only after Load, so checks for different packages never
	// share mutable state.
	perPkg := make([][]Finding, len(pkgs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, p := range pkgs {
		wg.Add(1)
		go func(i int, p *pkgInfo) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			ps := &pass{a: a, pkg: p}
			for _, c := range enabled {
				c.run(ps)
			}
			perPkg[i] = ps.out
		}(i, p)
	}
	wg.Wait()

	var all []Finding
	for _, fs := range perPkg {
		all = append(all, fs...)
	}
	all = a.suppress(all)
	slices.SortFunc(all, func(a, b Finding) int {
		if c := strings.Compare(a.Pos.Filename, b.Pos.Filename); c != 0 {
			return c
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line - b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column - b.Pos.Column
		}
		return strings.Compare(a.Check, b.Check)
	})
	return all, nil
}

// suppress drops findings covered by an ignore directive and validates the
// directives themselves.
func (a *Analyzer) suppress(findings []Finding) []Finding {
	byFile := map[string]*fileInfo{}
	for _, p := range a.pkgs {
		for _, f := range p.files {
			byFile[f.name] = f
		}
	}
	out := findings[:0]
	for _, fd := range findings {
		if fd.Check == "directive" {
			out = append(out, fd) // directive misuse is never suppressible
			continue
		}
		f := byFile[fd.Pos.Filename]
		if f == nil || !f.suppressed(fd.Check, fd.Pos.Line) {
			out = append(out, fd)
		}
	}
	return out
}

// suppressed reports whether a finding of the given check at the given
// line is covered by one of the file's directives.
func (f *fileInfo) suppressed(check string, line int) bool {
	for _, d := range f.ignores {
		if !d.covers(check) {
			continue
		}
		if d.file || d.line == line || d.line == line-1 {
			return true
		}
	}
	return false
}

type directive struct {
	line    int
	checks  []string
	reason  string
	file    bool   // file-scope (//strlint:file-ignore)
	problem string // non-empty when the directive is malformed
}

func (d directive) covers(check string) bool {
	if d.problem != "" {
		return false // a malformed directive never suppresses anything
	}
	for _, c := range d.checks {
		if c == check {
			return true
		}
	}
	return false
}
