package lint

import (
	"strings"
	"testing"
)

// FuzzIgnoreDirective hammers the directive parser with arbitrary comment
// text. The parser is the one place untrusted source content (comments)
// steers the analyzer, so it must never panic, and its invariants must
// hold on every input: a directive either carries a problem (and then
// suppresses nothing) or is fully formed.
func FuzzIgnoreDirective(f *testing.F) {
	seeds := []string{
		"//strlint:ignore floateq exact equality is the contract",
		"//strlint:file-ignore droppederr generated file",
		"//strlint:ignore floateq,panics reason here",
		"//strlint:ignore floateq",
		"//strlint:ignore",
		"//strlint:ignored floateq trailing d",
		"//strlint:ignore floateq,,panics empty entry",
		"//strlint:ignore ,floateq leading comma",
		"//strlint:",
		"//strlint: ignore floateq space after colon",
		"// not a directive at all",
		"//strlint:ignore\tfloateq\ttabs as separators",
		"//strlint:file-ignore",
		"//strlint:ignore   unicode space",
		"//strlint:ignore floateq \x00 null byte reason",
		strings.Repeat("//strlint:ignore a,", 1000),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		d, ok := parseIgnoreDirective(text)
		if !ok {
			// Not strlint-addressed: must be a zero directive.
			if d.problem != "" || len(d.checks) != 0 || d.reason != "" || d.file {
				t.Fatalf("not-ok parse returned non-zero directive: %+v", d)
			}
			if strings.HasPrefix(text, "//strlint:") {
				t.Fatalf("strlint-addressed comment dropped silently: %q", text)
			}
			return
		}
		if !strings.HasPrefix(text, "//strlint:") {
			t.Fatalf("non-directive accepted: %q", text)
		}
		if d.problem != "" {
			// A malformed directive must never suppress anything.
			for _, c := range allChecksFuzz() {
				if d.covers(c) {
					t.Fatalf("malformed directive %q suppresses %s", text, c)
				}
			}
			return
		}
		// Well-formed: checks and reason are both present and clean.
		if len(d.checks) == 0 || d.reason == "" {
			t.Fatalf("well-formed directive missing checks or reason: %q -> %+v", text, d)
		}
		for _, c := range d.checks {
			if c == "" {
				t.Fatalf("well-formed directive with empty check entry: %q", text)
			}
			if strings.ContainsAny(c, " \t") {
				t.Fatalf("check name contains whitespace: %q from %q", c, text)
			}
		}
	})
}

func allChecksFuzz() []string {
	names := AllChecks()
	return append(names, "floateq", "nosuch")
}
