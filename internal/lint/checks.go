package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// walker traverses one file's functions with a live scope, invoking the
// enabled checks at the relevant nodes.
type walker struct {
	a       *Analyzer
	r       *resolver
	file    *fileInfo
	enabled map[string]bool
	out     *[]Finding

	funcNames []string          // stack of enclosing function names
	loopVars  []map[string]bool // stack of loop-header variables
}

func (a *Analyzer) checkPackage(p *pkgInfo, enabled map[string]bool) []Finding {
	var out []Finding
	for _, f := range p.files {
		w := &walker{
			a:       a,
			r:       &resolver{a: a, file: f},
			file:    f,
			enabled: enabled,
			out:     &out,
		}
		if enabled["imports"] {
			w.checkImports()
		}
		if enabled["directive"] {
			w.checkDirectives()
		}
		for _, decl := range f.ast.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				w.walkFuncDecl(fd)
			}
		}
	}
	return out
}

func (w *walker) report(pos token.Pos, check, format string, args ...any) {
	*w.out = append(*w.out, Finding{
		Pos:     w.a.fset.Position(pos),
		Check:   check,
		Message: fmt.Sprintf(format, args...),
	})
}

// libraryPackage reports whether path is library code (the root package or
// internal/*), where the panics check applies.
func libraryPackage(path string) bool {
	return path == "" || strings.HasPrefix(path, "internal/")
}

// ---------------------------------------------------------------- walking

func (w *walker) walkFuncDecl(fd *ast.FuncDecl) {
	sc := newScope(nil)
	if fd.Recv != nil {
		for _, fld := range fd.Recv.List {
			t := w.a.parseTypeExpr(w.file, fld.Type)
			for _, name := range fld.Names {
				sc.set(name.Name, t)
			}
		}
	}
	w.bindFieldList(sc, fd.Type.Params)
	w.bindFieldList(sc, fd.Type.Results)
	w.funcNames = append(w.funcNames, fd.Name.Name)
	if fd.Body != nil {
		w.walkBlock(sc, fd.Body)
	}
	w.funcNames = w.funcNames[:len(w.funcNames)-1]
}

func (w *walker) bindFieldList(sc *scope, fl *ast.FieldList) {
	if fl == nil {
		return
	}
	for _, fld := range fl.List {
		t := w.a.parseTypeExpr(w.file, fld.Type)
		for _, name := range fld.Names {
			sc.set(name.Name, t)
		}
	}
}

func (w *walker) walkBlock(sc *scope, b *ast.BlockStmt) {
	inner := newScope(sc)
	for _, st := range b.List {
		w.walkStmt(inner, st)
	}
}

func (w *walker) walkStmt(sc *scope, st ast.Stmt) {
	switch s := st.(type) {
	case *ast.BlockStmt:
		w.walkBlock(sc, s)
	case *ast.ExprStmt:
		w.visitExpr(sc, s.X)
		if call, ok := s.X.(*ast.CallExpr); ok {
			w.checkDroppedErr(sc, call, "")
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.visitExpr(sc, e)
		}
		for _, e := range s.Lhs {
			if _, ok := e.(*ast.Ident); !ok {
				w.visitExpr(sc, e)
			}
		}
		if s.Tok == token.DEFINE {
			w.r.bindAssign(sc, s.Lhs, s.Rhs)
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				w.visitExpr(sc, v)
			}
			if vs.Type != nil {
				t := w.a.parseTypeExpr(w.file, vs.Type)
				for _, name := range vs.Names {
					sc.set(name.Name, t)
				}
			} else {
				lhs := make([]ast.Expr, len(vs.Names))
				for i, n := range vs.Names {
					lhs[i] = n
				}
				w.r.bindAssign(sc, lhs, vs.Values)
			}
		}
	case *ast.DeferStmt:
		w.checkDroppedErr(sc, s.Call, "defer")
		w.checkLoopCapture(s.Call, "defer")
		w.visitExpr(sc, s.Call)
	case *ast.GoStmt:
		w.checkDroppedErr(sc, s.Call, "go")
		w.checkLoopCapture(s.Call, "go")
		w.visitExpr(sc, s.Call)
	case *ast.IfStmt:
		inner := newScope(sc)
		if s.Init != nil {
			w.walkStmt(inner, s.Init)
		}
		w.visitExpr(inner, s.Cond)
		w.walkBlock(inner, s.Body)
		if s.Else != nil {
			w.walkStmt(inner, s.Else)
		}
	case *ast.ForStmt:
		inner := newScope(sc)
		vars := map[string]bool{}
		if s.Init != nil {
			w.walkStmt(inner, s.Init)
			if as, ok := s.Init.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
				for _, l := range as.Lhs {
					if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
						vars[id.Name] = true
					}
				}
			}
		}
		if s.Cond != nil {
			w.visitExpr(inner, s.Cond)
		}
		if s.Post != nil {
			w.walkStmt(inner, s.Post)
		}
		w.loopVars = append(w.loopVars, vars)
		w.walkBlock(inner, s.Body)
		w.loopVars = w.loopVars[:len(w.loopVars)-1]
	case *ast.RangeStmt:
		inner := newScope(sc)
		w.visitExpr(inner, s.X)
		vars := map[string]bool{}
		if s.Tok == token.DEFINE {
			w.r.bindRange(inner, s)
			for _, e := range []ast.Expr{s.Key, s.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					vars[id.Name] = true
				}
			}
		}
		w.loopVars = append(w.loopVars, vars)
		w.walkBlock(inner, s.Body)
		w.loopVars = w.loopVars[:len(w.loopVars)-1]
	case *ast.SwitchStmt:
		inner := newScope(sc)
		if s.Init != nil {
			w.walkStmt(inner, s.Init)
		}
		if s.Tag != nil {
			w.visitExpr(inner, s.Tag)
		}
		for _, cc := range s.Body.List {
			clause, ok := cc.(*ast.CaseClause)
			if !ok {
				continue
			}
			caseScope := newScope(inner)
			for _, e := range clause.List {
				w.visitExpr(caseScope, e)
			}
			for _, cs := range clause.Body {
				w.walkStmt(caseScope, cs)
			}
		}
	case *ast.TypeSwitchStmt:
		inner := newScope(sc)
		if s.Init != nil {
			w.walkStmt(inner, s.Init)
		}
		var bind string
		if as, ok := s.Assign.(*ast.AssignStmt); ok && len(as.Lhs) == 1 {
			if id, ok := as.Lhs[0].(*ast.Ident); ok {
				bind = id.Name
			}
			for _, e := range as.Rhs {
				if ta, ok := e.(*ast.TypeAssertExpr); ok {
					w.visitExpr(inner, ta.X)
				}
			}
		}
		for _, cc := range s.Body.List {
			clause, ok := cc.(*ast.CaseClause)
			if !ok {
				continue
			}
			caseScope := newScope(inner)
			if bind != "" {
				t := unknownType
				if len(clause.List) == 1 {
					t = w.a.parseTypeExpr(w.file, clause.List[0])
				}
				caseScope.set(bind, t)
			}
			for _, cs := range clause.Body {
				w.walkStmt(caseScope, cs)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			clause, ok := cc.(*ast.CommClause)
			if !ok {
				continue
			}
			caseScope := newScope(sc)
			if clause.Comm != nil {
				w.walkStmt(caseScope, clause.Comm)
			}
			for _, cs := range clause.Body {
				w.walkStmt(caseScope, cs)
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.visitExpr(sc, e)
		}
	case *ast.SendStmt:
		w.visitExpr(sc, s.Chan)
		w.visitExpr(sc, s.Value)
	case *ast.IncDecStmt:
		w.visitExpr(sc, s.X)
	case *ast.LabeledStmt:
		w.walkStmt(sc, s.Stmt)
	}
}

// visitExpr recursively visits an expression, firing the expression-level
// checks and descending into function literals with a fresh scope.
func (w *walker) visitExpr(sc *scope, e ast.Expr) {
	switch x := e.(type) {
	case *ast.BinaryExpr:
		w.checkFloatEq(sc, x)
		w.visitExpr(sc, x.X)
		w.visitExpr(sc, x.Y)
	case *ast.CallExpr:
		w.checkPanic(sc, x)
		w.visitExpr(sc, x.Fun)
		for _, arg := range x.Args {
			w.visitExpr(sc, arg)
		}
	case *ast.FuncLit:
		lit := newScope(sc)
		w.bindFieldList(lit, x.Type.Params)
		w.bindFieldList(lit, x.Type.Results)
		w.walkBlock(lit, x.Body)
	case *ast.ParenExpr:
		w.visitExpr(sc, x.X)
	case *ast.SelectorExpr:
		w.visitExpr(sc, x.X)
	case *ast.IndexExpr:
		w.visitExpr(sc, x.X)
		w.visitExpr(sc, x.Index)
	case *ast.SliceExpr:
		w.visitExpr(sc, x.X)
		for _, idx := range []ast.Expr{x.Low, x.High, x.Max} {
			if idx != nil {
				w.visitExpr(sc, idx)
			}
		}
	case *ast.StarExpr:
		w.visitExpr(sc, x.X)
	case *ast.UnaryExpr:
		w.visitExpr(sc, x.X)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			w.visitExpr(sc, el)
		}
	case *ast.KeyValueExpr:
		w.visitExpr(sc, x.Value)
	case *ast.TypeAssertExpr:
		w.visitExpr(sc, x.X)
	}
}

// ----------------------------------------------------------------- checks

// checkFloatEq flags == and != where either operand is floating point.
func (w *walker) checkFloatEq(sc *scope, be *ast.BinaryExpr) {
	if !w.enabled["floateq"] {
		return
	}
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	if w.a.isFloat(w.r.typeOf(sc, be.X)) || w.a.isFloat(w.r.typeOf(sc, be.Y)) {
		w.report(be.OpPos, "floateq",
			"%s on float operands; compare with a tolerance, or add //strlint:ignore floateq <reason> if exact equality is the contract", be.Op)
	}
}

// checkDroppedErr flags statement-level calls into the error-critical
// packages whose error result is discarded. how is "", "defer" or "go".
func (w *walker) checkDroppedErr(sc *scope, call *ast.CallExpr, how string) {
	if !w.enabled["droppederr"] {
		return
	}
	results, pkg := w.r.callResults(sc, call)
	if !droppedErrTargets[pkg] {
		return
	}
	hasErr := false
	for _, t := range results {
		if t.kind == kError {
			hasErr = true
			break
		}
	}
	if !hasErr {
		return
	}
	name := calleeName(call)
	verb := "call"
	if how != "" {
		verb = how + " call"
	}
	w.report(call.Pos(), "droppederr",
		"error from %s %s %s is discarded; handle it, or discard explicitly with _ =", pkg, verb, name)
}

func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if x, ok := f.X.(*ast.Ident); ok {
			return x.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return "(call)"
}

// checkPanic flags panic() in library packages outside must*/Must*/init.
func (w *walker) checkPanic(sc *scope, call *ast.CallExpr) {
	if !w.enabled["panics"] {
		return
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return
	}
	if _, shadowed := sc.lookup("panic"); shadowed {
		return
	}
	if !libraryPackage(w.file.pkg.path) {
		return
	}
	name := "(unknown)"
	if len(w.funcNames) > 0 {
		name = w.funcNames[len(w.funcNames)-1]
	}
	lower := strings.ToLower(name)
	if strings.HasPrefix(lower, "must") || name == "init" {
		return
	}
	w.report(call.Pos(), "panics",
		"panic in library function %s; return an error, or mark a documented contract with //strlint:ignore panics <reason>", name)
}

// checkLoopCapture flags go/defer function literals that capture a loop
// variable of an enclosing for/range header.
func (w *walker) checkLoopCapture(call *ast.CallExpr, how string) {
	if !w.enabled["loopcapture"] || len(w.loopVars) == 0 {
		return
	}
	lit, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	inLoop := func(name string) bool {
		for _, vars := range w.loopVars {
			if vars[name] {
				return true
			}
		}
		return false
	}
	shadowed := map[string]bool{}
	if lit.Type.Params != nil {
		for _, fld := range lit.Type.Params.List {
			for _, n := range fld.Names {
				shadowed[n.Name] = true
			}
		}
	}
	reported := map[string]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || shadowed[id.Name] || reported[id.Name] || !inLoop(id.Name) {
			return true
		}
		reported[id.Name] = true
		w.report(id.Pos(), "loopcapture",
			"loop variable %s captured by %s literal; pass it as an argument (unsafe before Go 1.22 per-iteration variables)", id.Name, how)
		return true
	})
}

// checkImports enforces the layering table in rules.go for one file.
func (w *walker) checkImports() {
	p := w.file.pkg
	allowed, ok := layerAllowed[p.path]
	if !ok {
		if libraryPackage(p.path) {
			w.report(w.file.ast.Name.Pos(), "imports",
				"package %s missing from the strlint layering table (internal/lint/rules.go); add it with its allowed imports", pkgDisplay(p.path))
		}
		return
	}
	for _, imp := range w.file.ast.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		rel, inModule := cutModulePrefix(path, w.a.module)
		if path == w.a.module {
			rel, inModule = "", true
		}
		if !inModule {
			continue
		}
		if !allowed[rel] {
			w.report(imp.Pos(), "imports",
				"layering violation: %s must not import %s (allowed: %s)",
				pkgDisplay(p.path), pkgDisplay(rel), allowedList(allowed))
		}
	}
}

func pkgDisplay(path string) string {
	if path == "" {
		return "the root package"
	}
	return path
}

func allowedList(allowed map[string]bool) string {
	if len(allowed) == 0 {
		return "none"
	}
	var names []string
	for p := range allowed {
		names = append(names, pkgDisplay(p))
	}
	sortStrings(names)
	return strings.Join(names, ", ")
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// checkDirectives validates the ignore directives themselves.
func (w *walker) checkDirectives() {
	for _, d := range w.file.ignores {
		pos := token.Position{Filename: w.file.name, Line: d.line, Column: 1}
		if len(d.checks) == 0 || d.reason == "" {
			*w.out = append(*w.out, Finding{Pos: pos, Check: "directive",
				Message: "malformed directive: want //strlint:ignore <check>[,<check>] <reason>"})
			continue
		}
		for _, c := range d.checks {
			if !knownCheck(c) || c == "directive" {
				*w.out = append(*w.out, Finding{Pos: pos, Check: "directive",
					Message: fmt.Sprintf("directive names unknown check %q (have %s)", c, strings.Join(AllChecks, ", "))})
			}
		}
	}
}
