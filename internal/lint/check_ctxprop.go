package lint

import (
	"go/ast"
)

var ctxpropCheck = &Check{
	Name: "ctxprop",
	Doc: "Enforces context propagation in library packages: an exported " +
		"function whose first parameter is a context.Context must not call " +
		"a function or method that has a *Context sibling without using it " +
		"— dropping the context there silently disables cancellation for " +
		"the whole traversal. Also flags context.Background() and " +
		"context.TODO() in library code, which sever the caller's " +
		"cancellation chain. Suggested fix: call the Context variant with " +
		"the incoming context.",
	run: func(p *pass) {
		if !libraryPackage(p.pkg.path) {
			return
		}
		for _, f := range p.pkg.files {
			checkBackground(p, f)
			for _, decl := range f.ast.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					checkCtxVariants(p, f, fd)
				}
			}
		}
	},
}

// checkBackground flags context.Background()/TODO() anywhere in a library
// file.
func checkBackground(p *pass, f *fileInfo) {
	ast.Inspect(f.ast, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || f.imports[id.Name] != "context" {
			return true
		}
		if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
			p.reportf(call.Pos(), "ctxprop",
				"context.%s in library package %s severs the caller's cancellation chain; plumb a ctx parameter through instead", sel.Sel.Name, pkgDisplay(p.pkg.path))
		}
		return true
	})
}

// checkCtxVariants flags calls inside an exported ctx-taking function to
// callees that have a *Context sibling the function ignores.
func checkCtxVariants(p *pass, f *fileInfo, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() || fd.Body == nil {
		return
	}
	ctxName, ok := ctxParam(p, f, fd)
	if !ok {
		return
	}
	// Best-effort scope: receiver + parameters, enough to resolve method
	// receivers like t.Search where t is the receiver or a parameter.
	sc := newScope(nil)
	if fd.Recv != nil {
		for _, fld := range fd.Recv.List {
			t := p.a.parseTypeExpr(f, fld.Type)
			for _, name := range fld.Names {
				sc.set(name.Name, t)
			}
		}
	}
	for _, fld := range fd.Type.Params.List {
		t := p.a.parseTypeExpr(f, fld.Type)
		for _, name := range fld.Names {
			sc.set(name.Name, t)
		}
	}
	r := &resolver{a: p.a, file: f}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && id.Name == ctxName {
				return true // the context is already passed down
			}
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			name := fun.Name
			if hasSuffixContext(name) {
				return true
			}
			if _, shadowed := sc.lookup(name); shadowed {
				return true
			}
			if p.pkg.funcs[name+"Context"] == nil {
				return true
			}
			reportVariant(p, call, fun, ctxName, name)
		case *ast.SelectorExpr:
			name := fun.Sel.Name
			if hasSuffixContext(name) {
				return true
			}
			base, ok := fun.X.(*ast.Ident)
			if !ok {
				return true
			}
			t := r.typeOf(sc, base)
			if !t.known() {
				return true
			}
			if sig, _ := p.a.method(t, name+"Context"); sig == nil {
				return true
			}
			reportVariant(p, call, fun.Sel, ctxName, name)
		}
		return true
	})
}

func hasSuffixContext(name string) bool {
	return len(name) > len("Context") && name[len(name)-len("Context"):] == "Context"
}

// ctxParam returns the name of fd's first parameter when its type is
// context.Context.
func ctxParam(p *pass, f *fileInfo, fd *ast.FuncDecl) (string, bool) {
	params := fd.Type.Params
	if params == nil || len(params.List) == 0 {
		return "", false
	}
	first := params.List[0]
	t := p.a.parseTypeExpr(f, first.Type)
	if t.kind != kNamed || t.pkg != "context" || t.name != "Context" || len(first.Names) == 0 {
		return "", false
	}
	name := first.Names[0].Name
	if name == "_" {
		return "", false
	}
	return name, true
}

// reportVariant emits the finding with a mechanical fix: rename the callee
// to its Context variant and pass the incoming context first.
func reportVariant(p *pass, call *ast.CallExpr, fun *ast.Ident, ctxName, name string) {
	edits := []Edit{p.replaceEdit(fun.Pos(), fun.End(), name+"Context")}
	if len(call.Args) > 0 {
		edits = append(edits, p.insertEdit(call.Args[0].Pos(), ctxName+", "))
	} else {
		edits = append(edits, p.insertEdit(call.Rparen, ctxName))
	}
	p.report(call.Pos(), "ctxprop", &Fix{
		Message: "call the Context variant with the incoming context",
		Edits:   edits,
	}, "call to %s ignores the incoming context; use %sContext(%s, ...) so cancellation propagates", name, name, ctxName)
}
