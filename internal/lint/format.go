package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// This file renders findings for machines. Two formats: a flat JSON array
// for scripting, and SARIF 2.1.0 for GitHub code scanning (PR
// annotations via codeql-action/upload-sarif). File paths are rendered
// module-relative with forward slashes in both, so output is stable
// across checkouts.

// jsonFinding is the -format json shape of one finding.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Check   string `json:"check"`
	Message string `json:"message"`
	HasFix  bool   `json:"hasFix"`
}

// WriteJSON renders the findings as an indented JSON array (always an
// array, never null) with root-relative paths.
func WriteJSON(w io.Writer, findings []Finding, root string) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File:    relSlash(root, f.Pos.Filename),
			Line:    f.Pos.Line,
			Column:  f.Pos.Column,
			Check:   f.Check,
			Message: f.Message,
			HasFix:  f.Fix != nil,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0 subset: exactly what GitHub code scanning consumes.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
	FullDescription  sarifMessage `json:"fullDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF renders the findings as a SARIF 2.1.0 log. Every registered
// check appears in the rule table (so code scanning can show rule help
// even for clean runs); findings map to error-level results because any
// finding fails the lint gate.
func WriteSARIF(w io.Writer, findings []Finding, root string) error {
	driver := sarifDriver{Name: "strlint"}
	for _, c := range Checks() {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               c.Name,
			ShortDescription: sarifMessage{Text: c.Name},
			FullDescription:  sarifMessage{Text: c.Doc},
		})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Check,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: relSlash(root, f.Pos.Filename)},
				Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// relSlash renders path relative to root with forward slashes; paths
// outside root pass through unchanged.
func relSlash(root, path string) string {
	if root == "" {
		return filepath.ToSlash(path)
	}
	if rel, err := filepath.Rel(root, path); err == nil && rel != "" && rel[0] != '.' {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(path)
}
