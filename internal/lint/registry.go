package lint

// The analyzer registry. Every check is a self-contained analyzer: a
// name, a one-paragraph doc string (surfaced by `strlint -list` and as
// the rule description in SARIF output), and a run function invoked once
// per package against the shared AST and best-effort type information.
// Checks report through the pass and may attach suggested fixes, which
// `strlint -fix` applies as text edits.

// Check is one registered analyzer.
type Check struct {
	// Name is the check's identifier, used in -checks selection,
	// //strlint:ignore directives, baseline entries and SARIF rule ids.
	Name string
	// Doc explains what the check flags and why, in one paragraph.
	Doc string
	// run reports this check's findings for one package.
	run func(p *pass)
}

// registry lists every analyzer in reporting order. New checks are added
// here and nowhere else: the driver, the directive validator and the
// SARIF rule table all derive from this slice. Populated in init so that
// checks whose messages enumerate the registry (directive) don't form an
// initialization cycle.
var registry []*Check

func init() {
	registry = []*Check{
		floateqCheck,
		droppederrCheck,
		panicsCheck,
		loopcaptureCheck,
		importsCheck,
		maporderCheck,
		timerandCheck,
		guardedbyCheck,
		waitpairCheck,
		ctxpropCheck,
		directiveCheck,
	}
}

// Checks returns the registered analyzers in reporting order.
func Checks() []*Check { return registry }

// AllChecks lists every check name, in reporting order.
func AllChecks() []string {
	names := make([]string, len(registry))
	for i, c := range registry {
		names[i] = c.Name
	}
	return names
}

func knownCheck(name string) bool {
	for _, c := range registry {
		if c.Name == name {
			return true
		}
	}
	return false
}

func checkByName(name string) *Check {
	for _, c := range registry {
		if c.Name == name {
			return c
		}
	}
	return nil
}
