package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
)

// Analyzer holds one parsed module plus the symbol tables the checks
// resolve types against.
type Analyzer struct {
	fset   *token.FileSet
	root   string
	module string
	pkgs   map[string]*pkgInfo // keyed by module-relative import path ("" = root package)
}

// pkgInfo is one parsed package with its collected symbols.
type pkgInfo struct {
	path  string // module-relative import path; "" for the module root package
	name  string
	dir   string
	files []*fileInfo

	types map[string]*typeInfo
	funcs map[string]*funcSig
	vars  map[string]typeRef

	// synthetic marks hand-written signature tables for standard-library
	// packages (encoding/binary); they have no files and are never linted.
	synthetic bool
}

// fileInfo is one parsed source file.
type fileInfo struct {
	name    string // absolute path, as recorded in findings
	ast     *ast.File
	pkg     *pkgInfo
	imports map[string]string // local name -> import path
	ignores []directive
}

// Load parses every non-test Go file under root (skipping testdata, hidden
// directories and vendored code) and builds the symbol tables. root must
// contain a go.mod naming the module.
func Load(root string) (*Analyzer, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	module, err := moduleName(abs)
	if err != nil {
		return nil, err
	}
	a := &Analyzer{
		fset:   token.NewFileSet(),
		root:   abs,
		module: module,
		pkgs:   map[string]*pkgInfo{},
	}
	if err := a.parseTree(); err != nil {
		return nil, err
	}
	a.addSyntheticPackages()
	a.buildSymbols()
	return a, nil
}

// Module returns the module path from go.mod.
func (a *Analyzer) Module() string { return a.module }

// Packages returns the loaded packages' module-relative import paths,
// sorted ("" is the root package).
func (a *Analyzer) Packages() []string {
	var out []string
	for path, p := range a.pkgs {
		if !p.synthetic {
			out = append(out, path)
		}
	}
	slices.Sort(out)
	return out
}

func moduleName(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

func (a *Analyzer) parseTree() error {
	return filepath.WalkDir(a.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != a.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		return a.parseFile(path)
	})
}

func (a *Analyzer) parseFile(path string) error {
	src, err := parser.ParseFile(a.fset, path, nil, parser.ParseComments)
	if err != nil {
		return fmt.Errorf("lint: %w", err)
	}
	rel, err := filepath.Rel(a.root, filepath.Dir(path))
	if err != nil {
		return err
	}
	pkgPath := filepath.ToSlash(rel)
	if pkgPath == "." {
		pkgPath = ""
	}
	p := a.pkgs[pkgPath]
	if p == nil {
		p = &pkgInfo{
			path:  pkgPath,
			name:  src.Name.Name,
			dir:   filepath.Dir(path),
			types: map[string]*typeInfo{},
			funcs: map[string]*funcSig{},
			vars:  map[string]typeRef{},
		}
		a.pkgs[pkgPath] = p
	}
	f := &fileInfo{name: path, ast: src, pkg: p, imports: map[string]string{}}
	for _, imp := range src.Imports {
		ipath, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		local := ipath[strings.LastIndexByte(ipath, '/')+1:]
		if imp.Name != nil {
			local = imp.Name.Name
		}
		if local != "_" && local != "." {
			f.imports[local] = ipath
		}
	}
	f.ignores = parseDirectives(a.fset, src)
	p.files = append(p.files, f)
	slices.SortFunc(p.files, func(a, b *fileInfo) int { return strings.Compare(a.name, b.name) })
	return nil
}

// parseDirectives extracts //strlint:ignore and //strlint:file-ignore
// comments. Malformed directives are kept with an empty check list so the
// directive check can report them.
func parseDirectives(fset *token.FileSet, src *ast.File) []directive {
	var out []directive
	for _, cg := range src.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//strlint:")
			if !ok {
				continue
			}
			fileScope := false
			switch {
			case strings.HasPrefix(text, "ignore"):
				text = strings.TrimPrefix(text, "ignore")
			case strings.HasPrefix(text, "file-ignore"):
				text = strings.TrimPrefix(text, "file-ignore")
				fileScope = true
			default:
				continue
			}
			d := directive{line: fset.Position(c.Pos()).Line, file: fileScope}
			fields := strings.Fields(text)
			if len(fields) >= 2 {
				d.checks = strings.Split(fields[0], ",")
				d.reason = strings.Join(fields[1:], " ")
			}
			out = append(out, d)
		}
	}
	return out
}

// relPath renders a file path relative to the module root for messages.
func (a *Analyzer) relPath(path string) string {
	if rel, err := filepath.Rel(a.root, path); err == nil {
		return filepath.ToSlash(rel)
	}
	return path
}
