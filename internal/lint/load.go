package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
)

// Analyzer holds one parsed module plus the symbol tables the checks
// resolve types against.
type Analyzer struct {
	fset   *token.FileSet
	root   string
	module string
	pkgs   map[string]*pkgInfo // keyed by module-relative import path ("" = root package)
}

// pkgInfo is one parsed package with its collected symbols.
type pkgInfo struct {
	path  string // module-relative import path; "" for the module root package
	name  string
	dir   string
	files []*fileInfo

	types map[string]*typeInfo
	funcs map[string]*funcSig
	vars  map[string]typeRef

	// synthetic marks hand-written signature tables for standard-library
	// packages (encoding/binary); they have no files and are never linted.
	synthetic bool
}

// fileInfo is one parsed source file.
type fileInfo struct {
	name    string // absolute path, as recorded in findings
	ast     *ast.File
	pkg     *pkgInfo
	imports map[string]string // local name -> import path
	ignores []directive
}

// Load parses every non-test Go file under root (skipping testdata, hidden
// directories and vendored code) and builds the symbol tables. root must
// contain a go.mod naming the module.
func Load(root string) (*Analyzer, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	module, err := moduleName(abs)
	if err != nil {
		return nil, err
	}
	a := &Analyzer{
		fset:   token.NewFileSet(),
		root:   abs,
		module: module,
		pkgs:   map[string]*pkgInfo{},
	}
	if err := a.parseTree(); err != nil {
		return nil, err
	}
	a.addSyntheticPackages()
	a.buildSymbols()
	return a, nil
}

// Module returns the module path from go.mod.
func (a *Analyzer) Module() string { return a.module }

// Packages returns the loaded packages' module-relative import paths,
// sorted ("" is the root package).
func (a *Analyzer) Packages() []string {
	var out []string
	for path, p := range a.pkgs {
		if !p.synthetic {
			out = append(out, path)
		}
	}
	slices.Sort(out)
	return out
}

func moduleName(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

func (a *Analyzer) parseTree() error {
	return filepath.WalkDir(a.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != a.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		return a.parseFile(path)
	})
}

func (a *Analyzer) parseFile(path string) error {
	src, err := parser.ParseFile(a.fset, path, nil, parser.ParseComments)
	if err != nil {
		return fmt.Errorf("lint: %w", err)
	}
	rel, err := filepath.Rel(a.root, filepath.Dir(path))
	if err != nil {
		return err
	}
	pkgPath := filepath.ToSlash(rel)
	if pkgPath == "." {
		pkgPath = ""
	}
	p := a.pkgs[pkgPath]
	if p == nil {
		p = &pkgInfo{
			path:  pkgPath,
			name:  src.Name.Name,
			dir:   filepath.Dir(path),
			types: map[string]*typeInfo{},
			funcs: map[string]*funcSig{},
			vars:  map[string]typeRef{},
		}
		a.pkgs[pkgPath] = p
	}
	f := &fileInfo{name: path, ast: src, pkg: p, imports: map[string]string{}}
	for _, imp := range src.Imports {
		ipath, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		local := ipath[strings.LastIndexByte(ipath, '/')+1:]
		if imp.Name != nil {
			local = imp.Name.Name
		}
		if local != "_" && local != "." {
			f.imports[local] = ipath
		}
	}
	f.ignores = parseDirectives(a.fset, src)
	p.files = append(p.files, f)
	slices.SortFunc(p.files, func(a, b *fileInfo) int { return strings.Compare(a.name, b.name) })
	return nil
}

// parseDirectives extracts //strlint:ignore and //strlint:file-ignore
// comments. Malformed directives are kept with their problem recorded so
// the directive check can report them; a malformed directive never
// suppresses anything.
func parseDirectives(fset *token.FileSet, src *ast.File) []directive {
	var out []directive
	for _, cg := range src.Comments {
		for _, c := range cg.List {
			d, ok := parseIgnoreDirective(c.Text)
			if !ok {
				continue
			}
			d.line = fset.Position(c.Pos()).Line
			out = append(out, d)
		}
	}
	return out
}

// parseIgnoreDirective parses one comment's text as a strlint directive.
// ok is false when the comment is not strlint-addressed at all
// (no "//strlint:" prefix). Any comment that IS strlint-addressed always
// yields a directive; structural problems (unknown verb, missing check
// name or reason, empty entry in the check list) are recorded in
// directive.problem rather than silently dropped, so a typo cannot turn
// into an accidentally-inert suppression. The line field is left for the
// caller to fill in. This function is the fuzzing surface for
// FuzzIgnoreDirective: it must never panic on arbitrary input.
func parseIgnoreDirective(text string) (directive, bool) {
	rest, ok := strings.CutPrefix(text, "//strlint:")
	if !ok {
		return directive{}, false
	}
	verb := rest
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		verb = rest[:i]
	}
	var d directive
	switch verb {
	case "ignore":
	case "file-ignore":
		d.file = true
	default:
		d.problem = fmt.Sprintf("unknown strlint directive %q (want ignore or file-ignore)", verb)
		return d, true
	}
	body := strings.TrimSpace(rest[len(verb):])
	fields := strings.Fields(body)
	switch len(fields) {
	case 0:
		d.problem = "missing check name and reason: want //strlint:" + verb + " <check>[,<check>] <reason>"
		return d, true
	case 1:
		d.checks = strings.Split(fields[0], ",")
		d.problem = "missing reason: want //strlint:" + verb + " <check>[,<check>] <reason>"
		return d, true
	}
	d.checks = strings.Split(fields[0], ",")
	d.reason = strings.Join(fields[1:], " ")
	for _, c := range d.checks {
		if c == "" {
			d.problem = fmt.Sprintf("empty check name in list %q", fields[0])
			break
		}
	}
	return d, true
}

// relPath renders a file path relative to the module root for messages.
func (a *Analyzer) relPath(path string) string {
	if rel, err := filepath.Rel(a.root, path); err == nil {
		return filepath.ToSlash(rel)
	}
	return path
}
