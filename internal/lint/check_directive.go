package lint

import (
	"go/token"
	"strings"
)

var directiveCheck = &Check{
	Name: "directive",
	Doc: "Validates //strlint:ignore and //strlint:file-ignore comments " +
		"themselves: unknown verbs, missing check names or reasons, empty " +
		"entries in the check list, and references to unknown checks are " +
		"all findings. A malformed directive suppresses nothing, so a typo " +
		"can never silently disable a check; directive findings are " +
		"themselves unsuppressible.",
	run: func(p *pass) {
		for _, f := range p.pkg.files {
			for _, d := range f.ignores {
				pos := token.Position{Filename: f.name, Line: d.line, Column: 1}
				if d.problem != "" {
					p.reportAt(pos, "directive", "malformed directive: %s", d.problem)
					continue
				}
				if len(d.checks) == 0 || d.reason == "" {
					p.reportAt(pos, "directive",
						"malformed directive: want //strlint:ignore <check>[,<check>] <reason>")
					continue
				}
				for _, c := range d.checks {
					if !knownCheck(c) || c == "directive" {
						p.reportAt(pos, "directive",
							"directive names unknown check %q (have %s)", c, strings.Join(AllChecks(), ", "))
					}
				}
			}
		}
	},
}
