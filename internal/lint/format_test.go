package lint_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"strtree/internal/lint"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// golden runs the demo module and formats its findings with fn, comparing
// the result byte-for-byte against testdata/golden/<name>. Paths inside
// the output are module-relative, so the golden bytes are stable across
// machines.
func golden(t *testing.T, name string, fn func(w *bytes.Buffer, findings []lint.Finding, root string) error) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "demo"))
	if err != nil {
		t.Fatal(err)
	}
	a, err := lint.Load(root)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := a.Run(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fn(&buf, findings, root); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("%s drifted from golden file; run go test ./internal/lint -run TestFormat -update\ngot:\n%s", name, buf.String())
	}
}

func TestFormatJSONGolden(t *testing.T) {
	golden(t, "findings.json", func(w *bytes.Buffer, findings []lint.Finding, root string) error {
		return lint.WriteJSON(w, findings, root)
	})
}

func TestFormatSARIFGolden(t *testing.T) {
	golden(t, "findings.sarif", func(w *bytes.Buffer, findings []lint.Finding, root string) error {
		return lint.WriteSARIF(w, findings, root)
	})
}

// TestFormatJSONEmpty pins the no-findings encodings: JSON must be an
// empty array (never null, which breaks jq pipelines), and SARIF must
// still carry the full rules table so CI uploads validate.
func TestFormatJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := lint.WriteJSON(&buf, nil, "/x"); err != nil {
		t.Fatal(err)
	}
	var arr []json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &arr); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, buf.String())
	}
	if arr == nil {
		t.Fatalf("empty findings encoded as null, want []: %s", buf.String())
	}
}

func TestFormatSARIFEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := lint.WriteSARIF(&buf, nil, "/x"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string            `json:"name"`
					Rules []json.RawMessage `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Version != "2.1.0" || len(doc.Runs) != 1 {
		t.Fatalf("version %q runs %d", doc.Version, len(doc.Runs))
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name != "strlint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if got, want := len(run.Tool.Driver.Rules), len(lint.AllChecks()); got != want {
		t.Errorf("rules = %d, want %d (one per registered check)", got, want)
	}
	if run.Results == nil {
		t.Errorf("results encoded as null, want []")
	}
}
