package lint

import (
	"go/ast"
)

// clockFuncs are the time-package functions whose value differs between
// runs. Deliberately narrow: time.Duration arithmetic, formatting and
// timers are fine; reading the wall clock is not.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

var timerandCheck = &Check{
	Name: "timerand",
	Doc: "Flags time.Now/Since/Until and any math/rand use inside the " +
		"deterministic build layers (the root package, pack, psort, " +
		"extsort, rtree). Wall-clock readings and random numbers must " +
		"never influence build output — byte-identical indexes at any " +
		"worker count is the module's headline contract. Timing that " +
		"feeds only reporting (BuildStats durations) is grandfathered in " +
		"the committed baseline, where the reason is recorded.",
	run: func(p *pass) {
		if !deterministicLayers[p.pkg.path] {
			return
		}
		for _, f := range p.pkg.files {
			p.walkFile(f, hooks{
				call: func(w *walker, sc *scope, call *ast.CallExpr) {
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok {
						return
					}
					id, ok := sel.X.(*ast.Ident)
					if !ok {
						return
					}
					if _, shadowed := sc.lookup(id.Name); shadowed {
						return
					}
					switch w.file.imports[id.Name] {
					case "time":
						if clockFuncs[sel.Sel.Name] {
							p.reportf(call.Pos(), "timerand",
								"time.%s in deterministic layer %s; wall-clock values must not influence build output (baseline it if it only feeds stats)",
								sel.Sel.Name, pkgDisplay(p.pkg.path))
						}
					case "math/rand", "math/rand/v2":
						p.reportf(call.Pos(), "timerand",
							"math/rand call %s in deterministic layer %s; randomness must not influence build output",
							calleeName(call), pkgDisplay(p.pkg.path))
					}
				},
			})
		}
	},
}
