package geojson

import (
	"errors"
	"testing"

	"strtree/internal/geom"
)

func mustMBR(t *testing.T, s string) geom.Rect {
	t.Helper()
	r, err := MBR([]byte(s))
	if err != nil {
		t.Fatalf("MBR(%s): %v", s, err)
	}
	return r
}

func TestPoint(t *testing.T) {
	got := mustMBR(t, `{"type":"Point","coordinates":[3,4]}`)
	if !got.Equal(geom.R2(3, 4, 3, 4)) {
		t.Fatalf("got %v", got)
	}
	// Extra ordinates (elevation) ignored.
	got = mustMBR(t, `{"type":"Point","coordinates":[1,2,99]}`)
	if !got.Equal(geom.R2(1, 2, 1, 2)) {
		t.Fatalf("3-ordinate point: %v", got)
	}
}

func TestLineStringAndPolygon(t *testing.T) {
	got := mustMBR(t, `{"type":"LineString","coordinates":[[0,0],[10,5],[3,-2]]}`)
	if !got.Equal(geom.R2(0, -2, 10, 5)) {
		t.Fatalf("linestring: %v", got)
	}
	got = mustMBR(t, `{"type":"Polygon","coordinates":[[[0,0],[8,0],[8,6],[0,0]],[[2,2],[3,3],[2,3],[2,2]]]}`)
	if !got.Equal(geom.R2(0, 0, 8, 6)) {
		t.Fatalf("polygon: %v", got)
	}
}

func TestMultiGeometries(t *testing.T) {
	got := mustMBR(t, `{"type":"MultiPolygon","coordinates":[[[[0,0],[2,0],[2,2],[0,0]]],[[[10,10],[12,13],[10,13],[10,10]]]]}`)
	if !got.Equal(geom.R2(0, 0, 12, 13)) {
		t.Fatalf("multipolygon: %v", got)
	}
	got = mustMBR(t, `{"type":"GeometryCollection","geometries":[{"type":"Point","coordinates":[1,2]},{"type":"LineString","coordinates":[[0,0],[5,5]]}]}`)
	if !got.Equal(geom.R2(0, 0, 5, 5)) {
		t.Fatalf("collection: %v", got)
	}
}

func TestFeature(t *testing.T) {
	got := mustMBR(t, `{"type":"Feature","geometry":{"type":"Point","coordinates":[7,8]},"properties":{"name":"x"}}`)
	if !got.Equal(geom.R2(7, 8, 7, 8)) {
		t.Fatalf("feature: %v", got)
	}
}

func TestCollection(t *testing.T) {
	doc := `{"type":"FeatureCollection","features":[
		{"type":"Feature","id":42,"geometry":{"type":"Point","coordinates":[1,1]},"properties":{}},
		{"type":"Feature","geometry":null,"properties":{}},
		{"type":"Feature","geometry":{"type":"LineString","coordinates":[[0,0],[2,3]]},"properties":{}}
	]}`
	items, err := Collection([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("parsed %d items (null geometry should be skipped)", len(items))
	}
	if items[0].ID != 42 || !items[0].Rect.Equal(geom.R2(1, 1, 1, 1)) {
		t.Fatalf("item 0 = %+v", items[0])
	}
	if items[1].ID != 2 || !items[1].Rect.Equal(geom.R2(0, 0, 2, 3)) {
		t.Fatalf("item 1 = %+v", items[1])
	}
}

func TestCollectionOfSingleGeometry(t *testing.T) {
	items, err := Collection([]byte(`{"type":"Point","coordinates":[5,6]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || !items[0].Rect.Equal(geom.R2(5, 6, 5, 6)) {
		t.Fatalf("items = %+v", items)
	}
}

func TestErrors(t *testing.T) {
	bad := []string{
		``,
		`{}`,
		`{"type":"Circle","coordinates":[1,2]}`,
		`{"type":"Point"}`,
		`{"type":"Point","coordinates":[1]}`,
		`{"type":"Point","coordinates":"oops"}`,
		`{"type":"FeatureCollection","features":[{"type":"Point","coordinates":[1,2]}]}`,
	}
	for _, s := range bad {
		if _, err := Collection([]byte(s)); err == nil {
			t.Errorf("Collection(%s) succeeded", s)
		}
	}
	if _, err := MBR([]byte(`{"type":"GeometryCollection","geometries":[]}`)); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty collection: %v", err)
	}
	if _, err := MBR([]byte(`{"type":"Feature","geometry":null}`)); !errors.Is(err, ErrEmpty) {
		t.Errorf("null feature geometry: %v", err)
	}
}
