// Package geojson extracts minimum bounding rectangles from GeoJSON (RFC
// 7946) geometries, features and feature collections, for loading into an
// R-tree. As with the WKT loader, the index needs only each object's MBR
// (paper Section 2.1); exact shapes stay with the caller.
package geojson

import (
	"encoding/json"
	"fmt"
	"math"

	"strtree/internal/geom"
)

// ErrEmpty is returned for geometries containing no positions.
var ErrEmpty = fmt.Errorf("geojson: empty geometry has no bounding box")

// Item is one feature's bounding box and identifier.
type Item struct {
	Rect geom.Rect
	// ID is the feature's numeric "id" member when present, else the
	// feature's index in the collection.
	ID uint64
}

// object is the common shell of every GeoJSON object.
type object struct {
	Type        string            `json:"type"`
	Coordinates json.RawMessage   `json:"coordinates"`
	Geometries  []json.RawMessage `json:"geometries"`
	Geometry    json.RawMessage   `json:"geometry"`
	Features    []json.RawMessage `json:"features"`
	ID          json.RawMessage   `json:"id"`
}

// MBR returns the bounding rectangle of a single Geometry or Feature
// document.
func MBR(data []byte) (geom.Rect, error) {
	box := newBox()
	if err := addObject(data, &box); err != nil {
		return geom.Rect{}, err
	}
	return box.rect()
}

// Collection returns one Item per feature of a FeatureCollection (or a
// single Item for a lone Feature/Geometry document). Features whose
// geometry is null or empty are skipped.
func Collection(data []byte) ([]Item, error) {
	var obj object
	if err := json.Unmarshal(data, &obj); err != nil {
		return nil, fmt.Errorf("geojson: %w", err)
	}
	if obj.Type != "FeatureCollection" {
		r, err := MBR(data)
		if err != nil {
			return nil, err
		}
		return []Item{{Rect: r, ID: 0}}, nil
	}
	items := make([]Item, 0, len(obj.Features))
	for i, raw := range obj.Features {
		var feat object
		if err := json.Unmarshal(raw, &feat); err != nil {
			return nil, fmt.Errorf("geojson: feature %d: %w", i, err)
		}
		if feat.Type != "Feature" {
			return nil, fmt.Errorf("geojson: feature %d has type %q", i, feat.Type)
		}
		box := newBox()
		if len(feat.Geometry) == 0 || string(feat.Geometry) == "null" {
			continue
		}
		if err := addObject(feat.Geometry, &box); err != nil {
			return nil, fmt.Errorf("geojson: feature %d: %w", i, err)
		}
		r, err := box.rect()
		if err != nil {
			continue // empty geometry
		}
		id := uint64(i)
		if len(feat.ID) > 0 {
			var numeric uint64
			if err := json.Unmarshal(feat.ID, &numeric); err == nil {
				id = numeric
			}
		}
		items = append(items, Item{Rect: r, ID: id})
	}
	return items, nil
}

// addObject accumulates one geometry object's positions into box.
func addObject(data []byte, b *box) error {
	var obj object
	if err := json.Unmarshal(data, &obj); err != nil {
		return fmt.Errorf("geojson: %w", err)
	}
	switch obj.Type {
	case "Point", "MultiPoint", "LineString", "MultiLineString", "Polygon", "MultiPolygon":
		if len(obj.Coordinates) == 0 {
			return fmt.Errorf("geojson: %s without coordinates", obj.Type)
		}
		return addCoords(obj.Coordinates, b)
	case "GeometryCollection":
		for i, raw := range obj.Geometries {
			if err := addObject(raw, b); err != nil {
				return fmt.Errorf("geometry %d: %w", i, err)
			}
		}
		return nil
	case "Feature":
		if len(obj.Geometry) == 0 || string(obj.Geometry) == "null" {
			return nil
		}
		return addObject(obj.Geometry, b)
	case "":
		return fmt.Errorf("geojson: missing type")
	default:
		return fmt.Errorf("geojson: unsupported type %q", obj.Type)
	}
}

// addCoords walks arbitrarily nested coordinate arrays. A position is an
// array whose first element is a number; anything else is a list of
// positions (or lists of lists, for polygons and their multis).
func addCoords(raw json.RawMessage, b *box) error {
	// Try a position first.
	var pos []float64
	if err := json.Unmarshal(raw, &pos); err == nil {
		if len(pos) < 2 {
			return fmt.Errorf("geojson: position with %d ordinates", len(pos))
		}
		b.add(pos[0], pos[1])
		return nil
	}
	var list []json.RawMessage
	if err := json.Unmarshal(raw, &list); err != nil {
		return fmt.Errorf("geojson: bad coordinates: %w", err)
	}
	for _, el := range list {
		if err := addCoords(el, b); err != nil {
			return err
		}
	}
	return nil
}

type box struct {
	minX, minY, maxX, maxY float64
	touched                bool
}

func newBox() box {
	inf := math.Inf(1)
	return box{minX: inf, minY: inf, maxX: -inf, maxY: -inf}
}

func (b *box) add(x, y float64) {
	b.minX = math.Min(b.minX, x)
	b.minY = math.Min(b.minY, y)
	b.maxX = math.Max(b.maxX, x)
	b.maxY = math.Max(b.maxY, y)
	b.touched = true
}

func (b *box) rect() (geom.Rect, error) {
	if !b.touched {
		return geom.Rect{}, ErrEmpty
	}
	return geom.Rect{Min: geom.Pt2(b.minX, b.minY), Max: geom.Pt2(b.maxX, b.maxY)}, nil
}
