package hilbert

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// xy2dReference is the classic rotation-based 2-D Hilbert index from
// Warren/Wikipedia, used as an independent cross-check of the Skilling
// implementation.
func xy2dReference(order int, x, y uint32) uint64 {
	var d uint64
	for s := uint32(1) << uint(order-1); s > 0; s >>= 1 {
		var rx, ry uint32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		// Rotate quadrant.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
	}
	return d
}

func TestIndexOrder1(t *testing.T) {
	// The order-1 curve visits (0,0) (0,1) (1,1) (1,0): the U shape.
	want := map[[2]uint32]uint64{
		{0, 0}: 0,
		{0, 1}: 1,
		{1, 1}: 2,
		{1, 0}: 3,
	}
	for xy, d := range want {
		if got := Index2D(1, xy[0], xy[1]); got != d {
			t.Errorf("Index2D(1, %d, %d) = %d, want %d", xy[0], xy[1], got, d)
		}
	}
}

func TestIndexMatchesReference2D(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, order := range []int{2, 4, 8, 16, 31} {
		mask := uint32(1)<<uint(order) - 1
		for i := 0; i < 200; i++ {
			x, y := rng.Uint32()&mask, rng.Uint32()&mask
			got := Index2D(order, x, y)
			want := xy2dReference(order, x, y)
			if got != want {
				t.Fatalf("order %d: Index2D(%d,%d) = %d, reference = %d", order, x, y, got, want)
			}
		}
	}
}

func TestIndexCoordsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct{ order, dims int }{{4, 2}, {16, 2}, {31, 2}, {8, 3}, {10, 4}, {12, 5}}
	for _, c := range cases {
		mask := uint32(1)<<uint(c.order) - 1
		for i := 0; i < 100; i++ {
			in := make([]uint32, c.dims)
			for j := range in {
				in[j] = rng.Uint32() & mask
			}
			idx := Index(c.order, in)
			out := Coords(c.order, idx, c.dims)
			for j := range in {
				if in[j] != out[j] {
					t.Fatalf("order %d dims %d: round trip %v -> %d -> %v", c.order, c.dims, in, idx, out)
				}
			}
		}
	}
}

func TestCurveIsBijectiveSmall(t *testing.T) {
	// Exhaustively verify the order-3 2-D curve visits all 64 cells once.
	const order = 3
	seen := make(map[uint64][2]uint32)
	for x := uint32(0); x < 8; x++ {
		for y := uint32(0); y < 8; y++ {
			d := Index2D(order, x, y)
			if d >= 64 {
				t.Fatalf("index %d out of range", d)
			}
			if prev, dup := seen[d]; dup {
				t.Fatalf("cells (%d,%d) and %v share index %d", x, y, prev, d)
			}
			seen[d] = [2]uint32{x, y}
		}
	}
	if len(seen) != 64 {
		t.Fatalf("curve visited %d cells, want 64", len(seen))
	}
	// Consecutive indices must be adjacent cells (the defining Hilbert
	// property: unit steps).
	for d := uint64(0); d < 63; d++ {
		a, b := seen[d], seen[d+1]
		dx := int64(a[0]) - int64(b[0])
		dy := int64(a[1]) - int64(b[1])
		if dx*dx+dy*dy != 1 {
			t.Fatalf("indices %d and %d map to non-adjacent cells %v, %v", d, d+1, a, b)
		}
	}
}

func TestCurveContinuity3D(t *testing.T) {
	const order = 2 // 4x4x4 grid, 64 cells
	cells := make([][]uint32, 64)
	for d := uint64(0); d < 64; d++ {
		cells[d] = Coords(order, d, 3)
	}
	for d := 0; d < 63; d++ {
		var dist int64
		for i := 0; i < 3; i++ {
			delta := int64(cells[d][i]) - int64(cells[d+1][i])
			dist += delta * delta
		}
		if dist != 1 {
			t.Fatalf("3-D curve jumps between %v and %v", cells[d], cells[d+1])
		}
	}
}

func TestIndexPanicsOnBadInput(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("order too large", func() { Index(33, []uint32{0, 0}) })
	mustPanic("coordinate out of range", func() { Index(2, []uint32{4, 0}) })
	mustPanic("zero dims", func() { Index(4, nil) })
}

func TestMapperBasics(t *testing.T) {
	m, err := NewMapper(8, []float64{0, 0}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Order() != 8 || m.Dims() != 2 {
		t.Fatalf("Order/Dims = %d/%d", m.Order(), m.Dims())
	}
	if got := m.Cell([]float64{0, 0}); got[0] != 0 || got[1] != 0 {
		t.Errorf("Cell(origin) = %v", got)
	}
	if got := m.Cell([]float64{1, 1}); got[0] != 255 || got[1] != 255 {
		t.Errorf("Cell(1,1) = %v, want [255 255]", got)
	}
	// Clamping outside the box.
	if got := m.Cell([]float64{-5, 9}); got[0] != 0 || got[1] != 255 {
		t.Errorf("Cell(out of box) = %v", got)
	}
}

func TestMapperErrors(t *testing.T) {
	if _, err := NewMapper(8, []float64{0}, []float64{1, 1}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := NewMapper(8, []float64{1, 1}, []float64{0, 0}); err == nil {
		t.Error("inverted bounds accepted")
	}
	if _, err := NewMapper(40, []float64{0, 0}, []float64{1, 1}); err == nil {
		t.Error("oversized order accepted")
	}
	if _, err := NewMapper(0, []float64{0}, []float64{1}); err == nil {
		t.Error("zero order accepted")
	}
}

func TestMapperDegenerateAxis(t *testing.T) {
	m, err := NewMapper(8, []float64{0, 5}, []float64{1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Cell([]float64{0.5, 5}); got[1] != 0 {
		t.Errorf("degenerate axis cell = %v, want 0", got[1])
	}
}

func TestMapperKeyPreservesCurveOrder(t *testing.T) {
	m, err := NewMapper(4, []float64{0, 0}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Walk the order-4 curve; mapping cell centers back through the mapper
	// must produce strictly increasing keys.
	var prev uint64
	for d := uint64(0); d < 256; d++ {
		c := Coords(4, d, 2)
		p := []float64{(float64(c[0]) + 0.01) / 15.0, (float64(c[1]) + 0.01) / 15.0}
		key := m.Key(p)
		if d > 0 && key <= prev {
			t.Fatalf("key order violated at curve position %d: %d <= %d", d, key, prev)
		}
		prev = key
	}
}

func TestPropLocality(t *testing.T) {
	// Hilbert locality: points in the same half of the square share the
	// leading index bit pair constraint loosely. Instead of a vague claim we
	// check the concrete contractive property on random pairs: nearby cells
	// (Chebyshev distance 1) have closer-than-random average index distance.
	m, err := NewMapper(10, []float64{0, 0}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	var nearSum, farSum float64
	const trials = 2000
	for i := 0; i < trials; i++ {
		x, y := rng.Float64()*0.99, rng.Float64()*0.99
		k0 := m.Key([]float64{x, y})
		kNear := m.Key([]float64{x + 1.0/1024, y})
		kFar := m.Key([]float64{rng.Float64(), rng.Float64()})
		nearSum += absDiff(k0, kNear)
		farSum += absDiff(k0, kFar)
	}
	if nearSum >= farSum/4 {
		t.Fatalf("locality too weak: near avg %g vs far avg %g", nearSum/trials, farSum/trials)
	}
}

func absDiff(a, b uint64) float64 {
	if a > b {
		return float64(a - b)
	}
	return float64(b - a)
}

func TestPropRoundTripQuick(t *testing.T) {
	f := func(x, y uint32) bool {
		const order = 31
		mask := uint32(1)<<order - 1
		x &= mask
		y &= mask
		c := Coords(order, Index2D(order, x, y), 2)
		return c[0] == x && c[1] == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestCompare2DMatchesIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for _, order := range []int{1, 2, 5, 16, 31} {
		mask := uint64(1)<<uint(order) - 1
		for i := 0; i < 500; i++ {
			ax, ay := rng.Uint64()&mask, rng.Uint64()&mask
			bx, by := rng.Uint64()&mask, rng.Uint64()&mask
			da := Index2D(order, uint32(ax), uint32(ay))
			db := Index2D(order, uint32(bx), uint32(by))
			want := 0
			if da < db {
				want = -1
			} else if da > db {
				want = 1
			}
			if got := Compare2D(order, ax, ay, bx, by); got != want {
				t.Fatalf("order %d: Compare2D((%d,%d),(%d,%d)) = %d, indices %d vs %d",
					order, ax, ay, bx, by, got, da, db)
			}
		}
	}
}

func TestCompare2DHighPrecision(t *testing.T) {
	// Order 52: no 104-bit index exists, but comparison still works. Two
	// points that differ only in the lowest bit must order deterministically
	// and be a total order with a third point.
	const order = 52
	base := uint64(1)<<52 - 12345
	a := [2]uint64{base, base}
	b := [2]uint64{base + 1, base}
	c := [2]uint64{base, base + 1}
	if Compare2D(order, a[0], a[1], a[0], a[1]) != 0 {
		t.Fatal("point not equal to itself")
	}
	ab := Compare2D(order, a[0], a[1], b[0], b[1])
	ba := Compare2D(order, b[0], b[1], a[0], a[1])
	if ab == 0 || ab != -ba {
		t.Fatalf("comparison not antisymmetric: %d vs %d", ab, ba)
	}
	// Transitivity spot check over the triple.
	pts := [][2]uint64{a, b, c}
	for i := range pts {
		for j := range pts {
			for k := range pts {
				ij := Compare2D(order, pts[i][0], pts[i][1], pts[j][0], pts[j][1])
				jk := Compare2D(order, pts[j][0], pts[j][1], pts[k][0], pts[k][1])
				ik := Compare2D(order, pts[i][0], pts[i][1], pts[k][0], pts[k][1])
				if ij < 0 && jk < 0 && ik >= 0 {
					t.Fatalf("transitivity violated at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

func TestCompare2DAdjacency(t *testing.T) {
	// Walking the order-4 curve, each cell must compare less than its
	// successor.
	const order = 4
	for d := uint64(0); d < 255; d++ {
		a := Coords(order, d, 2)
		b := Coords(order, d+1, 2)
		if got := Compare2D(order, uint64(a[0]), uint64(a[1]), uint64(b[0]), uint64(b[1])); got != -1 {
			t.Fatalf("cell %d vs %d: Compare2D = %d", d, d+1, got)
		}
	}
}

func TestCompare2DPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("order 64 did not panic")
		}
	}()
	Compare2D(64, 0, 0, 1, 1)
}

func BenchmarkCompare2DOrder52(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Compare2D(52, uint64(i)*2654435761, uint64(i)*40503, uint64(i)*9176, uint64(i)*7)
	}
}

func BenchmarkIndex2DOrder31(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Index2D(31, uint32(i)&0x7fffffff, uint32(i*7)&0x7fffffff)
	}
}

func BenchmarkMapperKey(b *testing.B) {
	m, err := NewMapper(31, []float64{0, 0}, []float64{1, 1})
	if err != nil {
		b.Fatal(err)
	}
	p := []float64{0.37, 0.62}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Key(p)
	}
}
