// Package hilbert implements the Hilbert space-filling curve ordering used by
// the Hilbert-Sort (HS) packing algorithm of Kamel and Faloutsos, as
// described in Section 2.2 of the STR paper.
//
// The paper orders rectangles by the distance of their center points from
// the origin measured along the Hilbert curve of a conceptual
// 2^(2^sizeof(Exponent)+sizeof(Mantissa)) grid. In practice one never
// materializes that grid: coordinates are normalized into a finite-precision
// integer grid (Mapper) and the curve index is computed with a sense-and-
// rotation state machine. This package provides:
//
//   - Index: k-dimensional coordinates -> position along the curve
//     (Skilling's transpose algorithm, the modern formulation of the
//     sense/rotation tables referenced by the paper).
//   - Coords: the inverse mapping, used to verify bijectivity.
//   - Mapper: normalization of float64 coordinates in a bounding box onto
//     the integer grid, the practical equivalent of the paper's
//     exponent+mantissa construction.
//
// Curve indices fit in a uint64, which restricts order*dims to 64 bits;
// order 31 in two dimensions (the package default) gives a 4.3-billion-cell
// grid per axis, far finer than float64 data in the unit square requires.
package hilbert

import "fmt"

// MaxOrder2D is the finest 2-D curve order whose index fits in a uint64.
const MaxOrder2D = 31

// Index returns the position of the cell with the given coordinates along
// the Hilbert curve of the given order (bits per dimension). Coordinates
// must be < 2^order. It panics if order*len(coords) exceeds 64 or the input
// is out of range; callers construct coordinates through Mapper, which
// guarantees both.
func Index(order int, coords []uint32) uint64 {
	n := len(coords)
	checkOrder(order, n)
	x := make([]uint32, n)
	copy(x, coords)
	for i, c := range x {
		if order < 32 && c >= 1<<uint(order) {
			//strlint:ignore panics documented contract: callers construct coordinates through Mapper, which guarantees the range
			panic(fmt.Sprintf("hilbert: coordinate %d = %d out of range for order %d", i, c, order))
		}
	}
	axesToTranspose(x, order)
	return interleave(x, order)
}

// Coords is the inverse of Index: it returns the coordinates of the cell at
// the given position along the curve.
func Coords(order int, index uint64, dims int) []uint32 {
	checkOrder(order, dims)
	x := deinterleave(index, order, dims)
	transposeToAxes(x, order)
	return x
}

func checkOrder(order, dims int) {
	if order <= 0 || dims <= 0 || order*dims > 64 {
		//strlint:ignore panics documented contract: Index and Coords panic on orders that overflow a uint64 index
		panic(fmt.Sprintf("hilbert: invalid order %d for %d dimensions", order, dims))
	}
}

// axesToTranspose converts coordinates into the "transposed" Hilbert index
// in place. This is John Skilling's formulation (AIP Conf. Proc. 707, 2004)
// of the sense-and-rotation tables cited by Kamel and Faloutsos.
func axesToTranspose(x []uint32, order int) {
	n := len(x)
	m := uint32(1) << uint(order-1)
	// Inverse undo excess work.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < n; i++ {
			if x[i]&q != 0 {
				x[0] ^= p // invert
			} else { // exchange
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < n; i++ {
		x[i] ^= x[i-1]
	}
	var t uint32
	for q := m; q > 1; q >>= 1 {
		if x[n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < n; i++ {
		x[i] ^= t
	}
}

// transposeToAxes is the inverse of axesToTranspose.
func transposeToAxes(x []uint32, order int) {
	n := len(x)
	m := uint32(2) << uint(order-1)
	// Gray decode by H ^ (H/2).
	t := x[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint32(2); q != m; q <<= 1 {
		p := q - 1
		for i := n - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
}

// interleave packs the transposed representation into a single uint64 curve
// index, most significant bit plane first.
func interleave(x []uint32, order int) uint64 {
	var idx uint64
	for bit := order - 1; bit >= 0; bit-- {
		for i := 0; i < len(x); i++ {
			idx = idx<<1 | uint64((x[i]>>uint(bit))&1)
		}
	}
	return idx
}

// deinterleave unpacks a curve index into the transposed representation.
func deinterleave(idx uint64, order, dims int) []uint32 {
	x := make([]uint32, dims)
	pos := order*dims - 1
	for bit := order - 1; bit >= 0; bit-- {
		for i := 0; i < dims; i++ {
			x[i] |= uint32((idx>>uint(pos))&1) << uint(bit)
			pos--
		}
	}
	return x
}

// Index2D is a convenience wrapper for the two-dimensional case that
// dominates the paper's evaluation.
func Index2D(order int, x, y uint32) uint64 {
	return Index(order, []uint32{x, y})
}

// Compare2D reports the order of two cells along the 2-D Hilbert curve
// (-1, 0 or +1) without materializing curve indices. This is exactly the
// procedure the paper describes for HS packing: "the bits of each
// coordinate are examined until it can be determined that one of the
// points lies in a different subquadrant than the other ... In practice,
// one does not store or compute all bit values on the hypothetical grid."
// Because no 2*order-bit index is built, the order may be up to 63 bits
// per axis — fine enough to distinguish any two float64 coordinates, the
// paper's exponent+mantissa construction realized.
func Compare2D(order int, ax, ay, bx, by uint64) int {
	if order <= 0 || order > 63 {
		//strlint:ignore panics documented contract: a compare order outside 1..63 is a programming error
		panic(fmt.Sprintf("hilbert: invalid 2-D compare order %d", order))
	}
	// Walk quadrants from the top. Both points share the same rotation
	// state until their subquadrants diverge; the quadrant's position
	// along the curve (0..3) decides the order at the first divergence.
	for s := uint64(1) << uint(order-1); s > 0; s >>= 1 {
		arx, ary := (ax&s) != 0, (ay&s) != 0
		brx, bry := (bx&s) != 0, (by&s) != 0
		ad := quadrantRank(arx, ary)
		bd := quadrantRank(brx, bry)
		if ad != bd {
			if ad < bd {
				return -1
			}
			return 1
		}
		// Same subquadrant: apply that quadrant's rotation to both
		// points and descend (the rotation of the classic d2xy walk).
		ax, ay = rotate(s, ax, ay, arx, ary)
		bx, by = rotate(s, bx, by, brx, bry)
	}
	return 0
}

// quadrantRank maps a quadrant's (rx, ry) bits to its position along the
// curve: (3*rx) XOR ry of the classic algorithm.
func quadrantRank(rx, ry bool) int {
	r := 0
	if rx {
		r = 3
	}
	if ry {
		r ^= 1
	}
	return r
}

// rotate is the quadrant rotation of the classic 2-D Hilbert walk,
// reduced to the bits below s (higher bits are never consulted again).
func rotate(s, x, y uint64, rx, ry bool) (uint64, uint64) {
	lowX, lowY := x&(s-1), y&(s-1)
	if ry {
		return lowX, lowY
	}
	if rx {
		lowX = s - 1 - lowX
		lowY = s - 1 - lowY
	}
	return lowY, lowX // swap x and y
}

// Mapper normalizes float64 coordinates inside a bounding box onto the
// integer grid of a Hilbert curve. It is the practical realization of the
// paper's observation that any float can be placed on a sufficiently fine
// conceptual grid: data normalized to the unit square (as all the paper's
// data sets are) loses nothing at order 31.
type Mapper struct {
	order int
	min   []float64
	scale []float64 // (2^order - 1) / extent, or 0 for degenerate axes
}

// NewMapper builds a Mapper for points inside the box [min,max] in each
// axis. Axes with zero extent map every coordinate to cell 0.
func NewMapper(order int, min, max []float64) (*Mapper, error) {
	if len(min) != len(max) || len(min) == 0 {
		return nil, fmt.Errorf("hilbert: bad bounds dimensions %d/%d", len(min), len(max))
	}
	if order <= 0 || order*len(min) > 64 {
		return nil, fmt.Errorf("hilbert: order %d unsupported for %d dims", order, len(min))
	}
	m := &Mapper{
		order: order,
		min:   append([]float64(nil), min...),
		scale: make([]float64, len(min)),
	}
	cells := float64(uint64(1)<<uint(order) - 1)
	for i := range min {
		if max[i] < min[i] {
			return nil, fmt.Errorf("hilbert: inverted bounds on axis %d", i)
		}
		if extent := max[i] - min[i]; extent > 0 {
			m.scale[i] = cells / extent
		}
	}
	return m, nil
}

// Order reports the curve order (bits per dimension) of the mapper.
func (m *Mapper) Order() int { return m.order }

// Dims reports the dimensionality of the mapper.
func (m *Mapper) Dims() int { return len(m.min) }

// Cell maps a point to its integer grid coordinates, clamping values
// outside the bounding box onto the boundary.
func (m *Mapper) Cell(p []float64) []uint32 {
	out := make([]uint32, len(m.min))
	m.CellInto(p, out)
	return out
}

// CellInto is Cell without allocation; out must have length Dims().
func (m *Mapper) CellInto(p []float64, out []uint32) {
	maxCell := uint64(1)<<uint(m.order) - 1
	for i := range m.min {
		v := (p[i] - m.min[i]) * m.scale[i]
		switch {
		//strlint:ignore floateq scale is exactly 0 for degenerate axes by construction
		case v <= 0 || m.scale[i] == 0:
			out[i] = 0
		case uint64(v) >= maxCell:
			out[i] = uint32(maxCell)
		default:
			out[i] = uint32(v)
		}
	}
}

// Key returns the Hilbert curve index of a point: its distance from the
// origin along the curve, the sort key of the HS packing algorithm.
func (m *Mapper) Key(p []float64) uint64 {
	cell := make([]uint32, len(m.min))
	m.CellInto(p, cell)
	axesToTranspose(cell, m.order)
	return interleave(cell, m.order)
}
