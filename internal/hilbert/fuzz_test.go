package hilbert

import "testing"

// FuzzHilbertMonotone pins the consistency contract between the package's
// two curve implementations, which HS packing depends on: the bitwise
// Compare2D (the paper's "examine bits until the subquadrants diverge"
// procedure) must order any two cells exactly as their materialized curve
// indices do, must be antisymmetric, and Coords must invert Index. The
// committed corpus under testdata/fuzz/FuzzHilbertMonotone seeds the
// boundaries: order 1, the 31-bit maximum, equal points, adjacent cells,
// and the corners of the grid.
func FuzzHilbertMonotone(f *testing.F) {
	f.Add(uint8(4), uint32(3), uint32(5), uint32(5), uint32(3))
	f.Add(uint8(0), uint32(0), uint32(0), uint32(1), uint32(1))
	f.Fuzz(func(t *testing.T, ord uint8, ax, ay, bx, by uint32) {
		order := int(ord)%MaxOrder2D + 1 // 1..31, so Index2D stays computable
		mask := uint32(1)<<uint(order) - 1
		ax, ay, bx, by = ax&mask, ay&mask, bx&mask, by&mask

		ia := Index2D(order, ax, ay)
		ib := Index2D(order, bx, by)
		want := 0
		switch {
		case ia < ib:
			want = -1
		case ia > ib:
			want = 1
		}
		got := Compare2D(order, uint64(ax), uint64(ay), uint64(bx), uint64(by))
		if got != want {
			t.Fatalf("order %d: Compare2D((%d,%d),(%d,%d)) = %d, indices %d vs %d want %d",
				order, ax, ay, bx, by, got, ia, ib, want)
		}
		if rev := Compare2D(order, uint64(bx), uint64(by), uint64(ax), uint64(ay)); rev != -got {
			t.Fatalf("order %d: Compare2D is not antisymmetric: %d then %d", order, got, rev)
		}
		// A curve index identifies exactly one cell.
		if got == 0 && (ax != bx || ay != by) {
			t.Fatalf("order %d: distinct cells (%d,%d) and (%d,%d) compare equal", order, ax, ay, bx, by)
		}
		// Coords inverts Index: the paper's curve is a bijection on the grid.
		c := Coords(order, ia, 2)
		if c[0] != ax || c[1] != ay {
			t.Fatalf("order %d: Coords(Index(%d,%d)) = (%d,%d)", order, ax, ay, c[0], c[1])
		}
	})
}
