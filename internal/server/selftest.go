package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"strtree"
	"strtree/internal/geom"
	"strtree/internal/histo"
	"strtree/internal/query"
)

// SelftestConfig tunes the in-process load harness behind
// `strserve -selftest`.
type SelftestConfig struct {
	// Clients is the number of concurrent client connections; 0 means 8.
	Clients int
	// QueriesPerClient is each client's query count; 0 means 200.
	QueriesPerClient int
	// Size is the packed tree's item count; 0 means 20000.
	Size int
	// Shards is the tree's buffer shard count; 0 means 8.
	Shards int
	// MaxInFlight is the server's admission cap; 0 means 2*Clients, so
	// steady load is admitted and rejections only appear under bursts.
	MaxInFlight int
	// Seed fixes data and workload generation.
	Seed int64
	// AdminAddr, when non-empty, binds the admin HTTP endpoint there
	// ("127.0.0.1:0" for an ephemeral port) and extends the selftest into
	// an admin smoke test: /healthz must answer 200 under load, /metrics
	// must expose non-zero request counters and one buffer series per
	// shard, /stats must serve JSON, and /healthz must flip to 503 the
	// moment the drain begins.
	AdminAddr string
}

func (c SelftestConfig) withDefaults() SelftestConfig {
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.QueriesPerClient <= 0 {
		c.QueriesPerClient = 200
	}
	if c.Size <= 0 {
		c.Size = 20000
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * c.Clients
	}
	return c
}

// uniformItems generates n uniformly placed squares in the unit square,
// the paper's UNIFORM distribution shape, sized for ~5% total coverage.
func uniformItems(n int, seed int64) []strtree.Item {
	rng := rand.New(rand.NewSource(seed))
	side := 0.0
	if n > 0 {
		// total area 0.05 spread over n squares
		side = math.Sqrt(0.05 / float64(n))
	}
	items := make([]strtree.Item, n)
	for i := range items {
		x := rng.Float64() * (1 - side)
		y := rng.Float64() * (1 - side)
		items[i] = strtree.Item{
			Rect: geom.Rect{Min: geom.Pt2(x, y), Max: geom.Pt2(x+side, y+side)},
			ID:   uint64(i),
		}
	}
	return items
}

// Selftest packs an in-memory tree, serves it on a loopback listener,
// hammers it with cfg.Clients concurrent protocol clients, and writes a
// throughput and latency report to w. It exercises the full stack —
// codec, admission, deadlines, drain — in one process, so it doubles as
// a smoke test: any status other than OK or Overloaded fails it.
func Selftest(w io.Writer, cfg SelftestConfig) error {
	cfg = cfg.withDefaults()

	tree, err := strtree.New(strtree.Options{BufferPages: 256, BufferShards: cfg.Shards})
	if err != nil {
		return err
	}
	defer func() { _ = tree.Close() }()
	if err := tree.BulkLoad(uniformItems(cfg.Size, cfg.Seed), strtree.PackSTR); err != nil {
		return err
	}

	srv := New(tree, Config{MaxInFlight: cfg.MaxInFlight})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	addr := ln.Addr().String()

	var adminURL string
	if cfg.AdminAddr != "" {
		adminLn, err := net.Listen("tcp", cfg.AdminAddr)
		if err != nil {
			return fmt.Errorf("selftest: admin listen: %w", err)
		}
		adminSrv := &http.Server{Handler: srv.AdminHandler()}
		adminDone := make(chan struct{})
		go func() {
			defer close(adminDone)
			_ = adminSrv.Serve(adminLn) // returns http.ErrServerClosed on Close
		}()
		defer func() {
			_ = adminSrv.Close()
			<-adminDone
		}()
		adminURL = "http://" + adminLn.Addr().String()
		if status, body, err := httpGet(adminURL + "/healthz"); err != nil {
			return fmt.Errorf("selftest: admin /healthz: %w", err)
		} else if status != http.StatusOK || body != "ok\n" {
			return fmt.Errorf("selftest: admin /healthz before drain = %d %q, want 200 \"ok\"", status, body)
		}
	}

	// Workload: the paper's 1% region queries, a disjoint slice per client.
	total := cfg.Clients * cfg.QueriesPerClient
	qs := query.Regions(total, query.Extent1Pct, cfg.Seed+1)

	var (
		lat        histo.Histogram
		overloaded atomic.Uint64
		firstErr   error
		errOnce    sync.Once
		wg         sync.WaitGroup
	)
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := Dial(addr)
			defer func() { _ = cl.Close() }()
			for _, q := range qs[c*cfg.QueriesPerClient : (c+1)*cfg.QueriesPerClient] {
				t0 := time.Now()
				_, err := cl.Count(q)
				lat.Observe(time.Since(t0))
				if errors.Is(err, ErrOverloaded) {
					overloaded.Add(1)
					continue
				}
				if err != nil {
					errOnce.Do(func() { firstErr = fmt.Errorf("client %d: %w", c, err) })
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if adminURL != "" {
		if err := verifyAdmin(w, adminURL, cfg.Shards); err != nil {
			return fmt.Errorf("selftest: %w", err)
		}
		// The k8s readiness sequence: flip /healthz before draining so
		// routers stop sending traffic, then verify the flip is visible.
		srv.MarkNotReady()
		if status, _, err := httpGet(adminURL + "/healthz"); err != nil {
			return fmt.Errorf("selftest: admin /healthz: %w", err)
		} else if status != http.StatusServiceUnavailable {
			return fmt.Errorf("selftest: admin /healthz after MarkNotReady = %d, want 503", status)
		}
	}

	//strlint:ignore ctxprop selftest is a self-contained harness; its shutdown deadline is the root
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("selftest: drain: %w", err)
	}
	if adminURL != "" {
		// The admin endpoint outlives the drain — scraping a draining
		// server is exactly when the numbers matter — and keeps saying 503.
		if status, _, err := httpGet(adminURL + "/healthz"); err != nil {
			return fmt.Errorf("selftest: admin /healthz: %w", err)
		} else if status != http.StatusServiceUnavailable {
			return fmt.Errorf("selftest: admin /healthz during drain = %d, want 503", status)
		}
		fmt.Fprintf(w, "  admin: /healthz flipped to 503 before and during drain\n")
	}
	if err := <-serveErr; err != nil {
		return fmt.Errorf("selftest: serve: %w", err)
	}
	if firstErr != nil {
		return fmt.Errorf("selftest: %w", firstErr)
	}

	st := srv.Stats()
	sum := lat.Summarize()
	served := sum.Count - overloaded.Load()
	fmt.Fprintf(w, "selftest: %d clients x %d queries against %d items (%d buffer shards)\n",
		cfg.Clients, cfg.QueriesPerClient, cfg.Size, cfg.Shards)
	fmt.Fprintf(w, "  served %d, overloaded %d, wall %v, %.0f qps\n",
		served, overloaded.Load(), elapsed.Round(time.Millisecond),
		float64(served)/elapsed.Seconds())
	fmt.Fprintf(w, "  client latency: p50 %v  p95 %v  p99 %v  max %v\n",
		time.Duration(sum.P50), time.Duration(sum.P95),
		time.Duration(sum.P99), time.Duration(sum.Max))
	fmt.Fprintf(w, "  server: accepted %d rejected %d completed %d timed-out %d failed %d\n",
		st.Accepted, st.Rejected, st.Completed, st.TimedOut, st.Failed)
	fmt.Fprintf(w, "  buffer: logical %d disk %d (hit ratio %.3f)\n",
		st.LogicalReads, st.DiskReads, hitRatio(st.LogicalReads, st.DiskReads))
	if st.Failed > 0 {
		return fmt.Errorf("selftest: %d requests failed server-side", st.Failed)
	}
	return nil
}

func hitRatio(logical, disk uint64) float64 {
	if logical == 0 {
		return 0
	}
	return 1 - float64(disk)/float64(logical)
}

// httpGet fetches one admin URL, returning status code and body.
func httpGet(url string) (int, string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, "", err
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", err
	}
	return resp.StatusCode, string(body), nil
}

// verifyAdmin asserts the admin endpoint's post-load contract: /metrics
// is Prometheus text with non-zero request counters and one buffer
// series per shard, and /stats serves a JSON array.
func verifyAdmin(w io.Writer, adminURL string, shards int) error {
	status, body, err := httpGet(adminURL + "/metrics")
	if err != nil {
		return fmt.Errorf("admin /metrics: %w", err)
	}
	if status != http.StatusOK {
		return fmt.Errorf("admin /metrics = %d, want 200", status)
	}
	for _, typeLine := range []string{
		"# TYPE strserve_requests_total counter",
		"# TYPE strserve_op_latency_seconds summary",
		"# TYPE strserve_buffer_hits_total counter",
		"# TYPE strserve_buffer_pinned_frames gauge",
	} {
		if !strings.Contains(body, typeLine+"\n") {
			return fmt.Errorf("admin /metrics: missing %q", typeLine)
		}
	}
	var requests float64
	hitShards := 0
	for _, line := range strings.Split(body, "\n") {
		val := func() (float64, error) {
			i := strings.LastIndexByte(line, ' ')
			return strconv.ParseFloat(line[i+1:], 64)
		}
		switch {
		case strings.HasPrefix(line, "strserve_requests_total{"):
			v, err := val()
			if err != nil {
				return fmt.Errorf("admin /metrics: bad sample %q: %w", line, err)
			}
			requests += v
		case strings.HasPrefix(line, "strserve_buffer_hits_total{"):
			if _, err := val(); err != nil {
				return fmt.Errorf("admin /metrics: bad sample %q: %w", line, err)
			}
			hitShards++
		}
	}
	if requests < 0.5 { // counters are integral; < 0.5 means none
		return fmt.Errorf("admin /metrics: strserve_requests_total is zero after load")
	}
	if hitShards != shards {
		return fmt.Errorf("admin /metrics: %d buffer hit series, want one per shard (%d)", hitShards, shards)
	}
	status, statsBody, err := httpGet(adminURL + "/stats")
	if err != nil {
		return fmt.Errorf("admin /stats: %w", err)
	}
	if status != http.StatusOK || !strings.HasPrefix(strings.TrimSpace(statsBody), "[") {
		return fmt.Errorf("admin /stats = %d %.40q, want a 200 JSON array", status, statsBody)
	}
	fmt.Fprintf(w, "  admin: /metrics ok (%.0f requests, %d shard series), /stats ok\n", requests, hitShards)
	return nil
}
