package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"strtree"
	"strtree/internal/geom"
	"strtree/internal/histo"
	"strtree/internal/query"
)

// SelftestConfig tunes the in-process load harness behind
// `strserve -selftest`.
type SelftestConfig struct {
	// Clients is the number of concurrent client connections; 0 means 8.
	Clients int
	// QueriesPerClient is each client's query count; 0 means 200.
	QueriesPerClient int
	// Size is the packed tree's item count; 0 means 20000.
	Size int
	// Shards is the tree's buffer shard count; 0 means 8.
	Shards int
	// MaxInFlight is the server's admission cap; 0 means 2*Clients, so
	// steady load is admitted and rejections only appear under bursts.
	MaxInFlight int
	// Seed fixes data and workload generation.
	Seed int64
}

func (c SelftestConfig) withDefaults() SelftestConfig {
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.QueriesPerClient <= 0 {
		c.QueriesPerClient = 200
	}
	if c.Size <= 0 {
		c.Size = 20000
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * c.Clients
	}
	return c
}

// uniformItems generates n uniformly placed squares in the unit square,
// the paper's UNIFORM distribution shape, sized for ~5% total coverage.
func uniformItems(n int, seed int64) []strtree.Item {
	rng := rand.New(rand.NewSource(seed))
	side := 0.0
	if n > 0 {
		// total area 0.05 spread over n squares
		side = math.Sqrt(0.05 / float64(n))
	}
	items := make([]strtree.Item, n)
	for i := range items {
		x := rng.Float64() * (1 - side)
		y := rng.Float64() * (1 - side)
		items[i] = strtree.Item{
			Rect: geom.Rect{Min: geom.Pt2(x, y), Max: geom.Pt2(x+side, y+side)},
			ID:   uint64(i),
		}
	}
	return items
}

// Selftest packs an in-memory tree, serves it on a loopback listener,
// hammers it with cfg.Clients concurrent protocol clients, and writes a
// throughput and latency report to w. It exercises the full stack —
// codec, admission, deadlines, drain — in one process, so it doubles as
// a smoke test: any status other than OK or Overloaded fails it.
func Selftest(w io.Writer, cfg SelftestConfig) error {
	cfg = cfg.withDefaults()

	tree, err := strtree.New(strtree.Options{BufferPages: 256, BufferShards: cfg.Shards})
	if err != nil {
		return err
	}
	defer func() { _ = tree.Close() }()
	if err := tree.BulkLoad(uniformItems(cfg.Size, cfg.Seed), strtree.PackSTR); err != nil {
		return err
	}

	srv := New(tree, Config{MaxInFlight: cfg.MaxInFlight})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	addr := ln.Addr().String()

	// Workload: the paper's 1% region queries, a disjoint slice per client.
	total := cfg.Clients * cfg.QueriesPerClient
	qs := query.Regions(total, query.Extent1Pct, cfg.Seed+1)

	var (
		lat        histo.Histogram
		overloaded atomic.Uint64
		firstErr   error
		errOnce    sync.Once
		wg         sync.WaitGroup
	)
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := Dial(addr)
			defer func() { _ = cl.Close() }()
			for _, q := range qs[c*cfg.QueriesPerClient : (c+1)*cfg.QueriesPerClient] {
				t0 := time.Now()
				_, err := cl.Count(q)
				lat.Observe(time.Since(t0))
				if errors.Is(err, ErrOverloaded) {
					overloaded.Add(1)
					continue
				}
				if err != nil {
					errOnce.Do(func() { firstErr = fmt.Errorf("client %d: %w", c, err) })
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	//strlint:ignore ctxprop selftest is a self-contained harness; its shutdown deadline is the root
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("selftest: drain: %w", err)
	}
	if err := <-serveErr; err != nil {
		return fmt.Errorf("selftest: serve: %w", err)
	}
	if firstErr != nil {
		return fmt.Errorf("selftest: %w", firstErr)
	}

	st := srv.Stats()
	sum := lat.Summarize()
	served := sum.Count - overloaded.Load()
	fmt.Fprintf(w, "selftest: %d clients x %d queries against %d items (%d buffer shards)\n",
		cfg.Clients, cfg.QueriesPerClient, cfg.Size, cfg.Shards)
	fmt.Fprintf(w, "  served %d, overloaded %d, wall %v, %.0f qps\n",
		served, overloaded.Load(), elapsed.Round(time.Millisecond),
		float64(served)/elapsed.Seconds())
	fmt.Fprintf(w, "  client latency: p50 %v  p95 %v  p99 %v  max %v\n",
		time.Duration(sum.P50), time.Duration(sum.P95),
		time.Duration(sum.P99), time.Duration(sum.Max))
	fmt.Fprintf(w, "  server: accepted %d rejected %d completed %d timed-out %d failed %d\n",
		st.Accepted, st.Rejected, st.Completed, st.TimedOut, st.Failed)
	fmt.Fprintf(w, "  buffer: logical %d disk %d (hit ratio %.3f)\n",
		st.LogicalReads, st.DiskReads, hitRatio(st.LogicalReads, st.DiskReads))
	if st.Failed > 0 {
		return fmt.Errorf("selftest: %d requests failed server-side", st.Failed)
	}
	return nil
}

func hitRatio(logical, disk uint64) float64 {
	if logical == 0 {
		return 0
	}
	return 1 - float64(disk)/float64(logical)
}
