package server

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"strtree"
)

// adminFixture is a served tree plus an httptest server over the admin
// handler, with a protocol client pointed at the query port.
type adminFixture struct {
	srv   *Server
	admin *httptest.Server
	cl    *Client
	logs  *logBuf
}

type logBuf struct {
	mu    sync.Mutex
	lines []string
}

func (l *logBuf) logf(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lines = append(l.lines, format)
}

func (l *logBuf) contains(substr string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, ln := range l.lines {
		if strings.Contains(ln, substr) {
			return true
		}
	}
	return false
}

func newAdminFixture(t *testing.T, cfg Config) *adminFixture {
	t.Helper()
	tree, err := strtree.New(strtree.Options{BufferShards: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { _ = tree.Close() })
	if err := tree.BulkLoad(uniformItems(2000, 7), strtree.PackSTR); err != nil {
		t.Fatalf("BulkLoad: %v", err)
	}
	logs := &logBuf{}
	cfg.Logf = logs.logf
	srv := New(tree, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	admin := httptest.NewServer(srv.AdminHandler())
	t.Cleanup(admin.Close)
	cl := Dial(ln.Addr().String())
	t.Cleanup(func() { _ = cl.Close() })
	return &adminFixture{srv: srv, admin: admin, cl: cl, logs: logs}
}

func (f *adminFixture) get(t *testing.T, path string) (int, string) {
	t.Helper()
	status, body, err := httpGet(f.admin.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return status, body
}

// TestAdminRoundTrip drives real requests through the wire protocol and
// asserts the admin surface reflects them: request counters, per-shard
// buffer series, latency summaries, JSON stats and a healthy /healthz.
func TestAdminRoundTrip(t *testing.T) {
	f := newAdminFixture(t, Config{})

	if status, body := f.get(t, "/healthz"); status != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q, want 200 ok", status, body)
	}

	for i := 0; i < 5; i++ {
		if _, err := f.cl.Count(strtree.R2(0.1, 0.1, 0.3, 0.3)); err != nil {
			t.Fatalf("Count: %v", err)
		}
	}
	if _, err := f.cl.Search(strtree.R2(0.4, 0.4, 0.5, 0.5)); err != nil {
		t.Fatalf("Search: %v", err)
	}

	status, body := f.get(t, "/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics = %d, want 200", status)
	}
	for _, want := range []string{
		"# TYPE strserve_requests_total counter\n",
		"strserve_requests_total{op=\"count\"} 5\n",
		"strserve_requests_total{op=\"search\"} 1\n",
		"# TYPE strserve_op_latency_seconds summary\n",
		"strserve_op_latency_seconds_count{op=\"count\"} 5\n",
		"strserve_buffer_hits_total{shard=\"0\"}",
		"strserve_buffer_hits_total{shard=\"3\"}",
		"strserve_buffer_pinned_frames{shard=\"0\"} 0\n",
		"# TYPE strserve_read_queries_total counter\n",
		"strserve_read_queries_total 6\n",
		"# TYPE strserve_view_pages_total counter\n",
		"# TYPE strserve_traverser_allocs_total counter\n",
		"strserve_draining 0\n",
		"strserve_ready 1\n",
		"strserve_tree_items 2000\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\nbody:\n%s", want, body)
		}
	}

	status, body = f.get(t, "/stats")
	if status != http.StatusOK {
		t.Fatalf("/stats = %d, want 200", status)
	}
	var families []struct {
		Name   string `json:"name"`
		Series []struct {
			Labels map[string]string `json:"labels"`
			Value  *float64          `json:"value"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(body), &families); err != nil {
		t.Fatalf("/stats does not parse as JSON: %v", err)
	}
	found := false
	for _, fam := range families {
		if fam.Name != "strserve_requests_total" {
			continue
		}
		for _, s := range fam.Series {
			if s.Labels["op"] == "count" && s.Value != nil && *s.Value == 5 {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("/stats missing strserve_requests_total{op=count} == 5")
	}

	if status, _ := f.get(t, "/debug/pprof/cmdline"); status != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d, want 200", status)
	}
}

// TestAdminHealthzDrain pins the readiness sequence: 200 while serving,
// 503 after MarkNotReady (still serving), 503 once Shutdown drains.
func TestAdminHealthzDrain(t *testing.T) {
	f := newAdminFixture(t, Config{})

	f.srv.MarkNotReady()
	if status, body := f.get(t, "/healthz"); status != http.StatusServiceUnavailable || body != "draining\n" {
		t.Fatalf("/healthz after MarkNotReady = %d %q, want 503 draining", status, body)
	}
	// Not ready is advisory: requests are still served.
	if _, err := f.cl.Count(strtree.R2(0, 0, 1, 1)); err != nil {
		t.Fatalf("Count while not ready: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := f.srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if status, _ := f.get(t, "/healthz"); status != http.StatusServiceUnavailable {
		t.Fatalf("/healthz during drain = %d, want 503", status)
	}
	if _, body := f.get(t, "/metrics"); !strings.Contains(body, "strserve_draining 1\n") {
		t.Errorf("/metrics after drain missing strserve_draining 1")
	}
}

// TestSlowQueryLog pins the slow-query log: with a threshold of 1ns every
// request is slow, so the counter climbs and Logf sees the line.
func TestSlowQueryLog(t *testing.T) {
	f := newAdminFixture(t, Config{SlowQueryThreshold: time.Nanosecond})

	if _, err := f.cl.Count(strtree.R2(0.1, 0.1, 0.2, 0.2)); err != nil {
		t.Fatalf("Count: %v", err)
	}
	if !f.logs.contains("slow query") {
		t.Errorf("no slow-query log line after a request over threshold")
	}
	if _, body := f.get(t, "/metrics"); !strings.Contains(body, "strserve_slow_queries_total 1\n") {
		t.Errorf("/metrics missing strserve_slow_queries_total 1")
	}
}
