package server

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"strtree/internal/geom"
)

// TestServerMutateOps drives the mutation ops through a real client over
// a real socket: inserts become visible to queries, deletes report found
// versus miss correctly, the returned lengths track the tree, and the
// tree still passes the full invariant verifier afterwards.
func TestServerMutateOps(t *testing.T) {
	tree := buildTree(t, 200)
	defer func() { _ = tree.Close() }()
	srv, addr := startServer(t, tree, Config{Mutable: true})
	cl := Dial(addr)
	defer func() { _ = cl.Close() }()

	base := tree.Len()
	r := geom.R2(10, 10, 11, 11) // outside the uniform [0,1) build data
	n, err := cl.Insert(r, 9001)
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if int(n) != base+1 {
		t.Fatalf("Insert returned length %d, want %d", n, base+1)
	}
	items, err := cl.Search(geom.R2(9.5, 9.5, 11.5, 11.5))
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || items[0].ID != 9001 {
		t.Fatalf("inserted item not visible to Search: %+v", items)
	}

	found, n, err := cl.Delete(r, 9001)
	if err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if !found || int(n) != base {
		t.Fatalf("Delete = (%t, %d), want (true, %d)", found, n, base)
	}
	// Exact-match miss: same rectangle, wrong ID.
	if err := func() error {
		_, err := cl.Insert(r, 9002)
		return err
	}(); err != nil {
		t.Fatal(err)
	}
	found, _, err = cl.Delete(r, 9999)
	if err != nil {
		t.Fatalf("miss Delete: %v", err)
	}
	if found {
		t.Fatal("Delete with wrong ID reported found")
	}
	if srv.MutationsApplied() != 3 {
		t.Fatalf("MutationsApplied = %d, want 3 (two inserts + one found delete)", srv.MutationsApplied())
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("post-mutation invariants: %v", err)
	}
}

// TestServerMutateRejectedWhenReadOnly pins the default: a server built
// without Mutable refuses mutations in-band and never touches the tree.
func TestServerMutateRejectedWhenReadOnly(t *testing.T) {
	tree := buildTree(t, 100)
	defer func() { _ = tree.Close() }()
	_, addr := startServer(t, tree, Config{})
	cl := Dial(addr)
	defer func() { _ = cl.Close() }()

	before := tree.Len()
	if _, err := cl.Insert(geom.R2(0, 0, 1, 1), 1); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("read-only Insert error = %v, want ErrBadRequest", err)
	}
	if _, _, err := cl.Delete(geom.R2(0, 0, 1, 1), 1); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("read-only Delete error = %v, want ErrBadRequest", err)
	}
	if tree.Len() != before {
		t.Fatalf("read-only server mutated the tree: %d -> %d", before, tree.Len())
	}
}

// TestServerMutateDimsMismatch: a 3-d rectangle against the 2-d tree is
// answered with StatusBadRequest, not an internal error.
func TestServerMutateDimsMismatch(t *testing.T) {
	tree := buildTree(t, 50)
	defer func() { _ = tree.Close() }()
	_, addr := startServer(t, tree, Config{Mutable: true})
	cl := Dial(addr)
	defer func() { _ = cl.Close() }()

	bad := geom.Rect{Min: geom.Point{0, 0, 0}, Max: geom.Point{1, 1, 1}}
	if _, err := cl.Insert(bad, 1); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("3-d Insert error = %v, want ErrBadRequest", err)
	}
}

// TestServerMutateConcurrentWithQueries hammers the tree lock: writer
// goroutines insert and delete through the wire while reader goroutines
// query, and the tree must come out consistent. Run under -race this is
// the serving layer's mutation/query exclusion proof.
func TestServerMutateConcurrentWithQueries(t *testing.T) {
	tree := buildTree(t, 300)
	defer func() { _ = tree.Close() }()
	_, addr := startServer(t, tree, Config{Mutable: true, MaxInFlight: 32})

	const writers, readers, opsEach = 2, 4, 40
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := Dial(addr)
			defer func() { _ = cl.Close() }()
			rng := rand.New(rand.NewSource(int64(7000 + w)))
			for i := 0; i < opsEach; i++ {
				id := uint64(w)<<32 | uint64(i)
				lo := rng.Float64() * 5
				r := geom.R2(lo, lo, lo+0.1, lo+0.1)
				if _, err := cl.Insert(r, id); err != nil {
					errs <- err
					return
				}
				if i%2 == 1 {
					if _, _, err := cl.Delete(r, id); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl := Dial(addr)
			defer func() { _ = cl.Close() }()
			rng := rand.New(rand.NewSource(int64(8000 + g)))
			for i := 0; i < opsEach; i++ {
				lo := rng.Float64() * 5
				if _, err := cl.Search(geom.R2(lo, lo, lo+1, lo+1)); err != nil {
					errs <- err
					return
				}
				if _, err := cl.Count(geom.R2(0, 0, 6, 6)); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("post-churn invariants: %v", err)
	}
}
