package server

import (
	"bytes"
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"strtree"
	"strtree/internal/geom"
	"strtree/internal/server/wire"
	"strtree/internal/storage"
)

// buildTree packs n uniform squares into an in-memory tree.
func buildTree(t *testing.T, n int) *strtree.Tree {
	t.Helper()
	tree, err := strtree.New(strtree.Options{Capacity: 16, BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.BulkLoad(uniformItems(n, 42), strtree.PackSTR); err != nil {
		t.Fatal(err)
	}
	return tree
}

// startServer serves tree on a loopback listener and returns the server,
// its address, and a cleanup that drains it.
func startServer(t *testing.T, tree *strtree.Tree, cfg Config) (*Server, string) {
	t.Helper()
	srv := New(tree, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if !srv.Draining() {
			if err := srv.Shutdown(ctx); err != nil {
				t.Errorf("shutdown: %v", err)
			}
		}
		if err := <-serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

// TestServerOps cross-checks every op against direct tree calls through
// a real client over a real socket.
func TestServerOps(t *testing.T) {
	tree := buildTree(t, 500)
	defer func() { _ = tree.Close() }()
	_, addr := startServer(t, tree, Config{})
	cl := Dial(addr)
	defer func() { _ = cl.Close() }()

	q := geom.R2(0.2, 0.2, 0.6, 0.6)
	wantN, err := tree.Count(q)
	if err != nil {
		t.Fatal(err)
	}

	items, err := cl.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != wantN {
		t.Fatalf("Search returned %d items, want %d", len(items), wantN)
	}

	n, err := cl.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if int(n) != wantN {
		t.Fatalf("Count = %d, want %d", n, wantN)
	}

	p := geom.Pt2(0.5, 0.5)
	wantPt, err := tree.All(strtree.PointRect(p))
	if err != nil {
		t.Fatal(err)
	}
	ptItems, err := cl.SearchPoint(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ptItems) != len(wantPt) {
		t.Fatalf("SearchPoint returned %d items, want %d", len(ptItems), len(wantPt))
	}

	wantNb, wantD, err := tree.NearestK(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	nbs, err := cl.Nearest(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbs) != len(wantNb) {
		t.Fatalf("Nearest returned %d, want %d", len(nbs), len(wantNb))
	}
	for i := range nbs {
		if nbs[i].Item.ID != wantNb[i].ID || nbs[i].Dist != wantD[i] {
			t.Fatalf("neighbor %d: (%d, %v), want (%d, %v)",
				i, nbs[i].Item.ID, nbs[i].Dist, wantNb[i].ID, wantD[i])
		}
	}

	qs := []geom.Rect{geom.R2(0, 0, 0.3, 0.3), geom.R2(0.7, 0.7, 1, 1), q}
	wantBatch, err := tree.SearchBatch(qs, 2)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := cl.Batch(qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(wantBatch) {
		t.Fatalf("batch has %d results, want %d", len(batch), len(wantBatch))
	}
	for i := range batch {
		if len(batch[i]) != len(wantBatch[i]) {
			t.Fatalf("batch query %d: %d matches, want %d", i, len(batch[i]), len(wantBatch[i]))
		}
	}

	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// 5 query requests completed so far (Stats itself is in flight).
	if st.Completed != 5 || st.Accepted != 6 {
		t.Fatalf("stats counters: completed=%d accepted=%d", st.Completed, st.Accepted)
	}
	if st.Latency.Count != 5 || st.PerOp[wire.OpSearch-1].Count != 1 {
		t.Fatalf("latency digests: all=%d search=%d",
			st.Latency.Count, st.PerOp[wire.OpSearch-1].Count)
	}
	if st.LogicalReads == 0 {
		t.Fatal("stats carry no buffer counters")
	}
}

// gatedTree builds a tree on a faulty pager whose disk reads park on
// gate until it is closed. The hook is armed only after the build and a
// DropCaches, so queries are guaranteed to hit it.
func gatedTree(t *testing.T, gate chan struct{}) *strtree.Tree {
	t.Helper()
	fp := storage.NewFaultyPager(storage.NewMemPager(4096))
	tree, err := strtree.NewOnPager(fp, strtree.Options{Capacity: 16, BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.BulkLoad(uniformItems(500, 42), strtree.PackSTR); err != nil {
		t.Fatal(err)
	}
	if err := tree.DropCaches(); err != nil {
		t.Fatal(err)
	}
	fp.FailReads(func(storage.PageID) error {
		<-gate
		return nil
	})
	return tree
}

// waitFor polls cond for up to 2s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestServerOverload parks one slow query in the single admission slot
// and checks the next request fast-fails with ErrOverloaded — and that
// the connection survives the rejection.
func TestServerOverload(t *testing.T) {
	gate := make(chan struct{})
	tree := gatedTree(t, gate)
	defer func() { _ = tree.Close() }()
	srv, addr := startServer(t, tree, Config{MaxInFlight: 1})

	slow := Dial(addr)
	defer func() { _ = slow.Close() }()
	slowDone := make(chan error, 1)
	go func() {
		_, err := slow.Count(geom.R2(0, 0, 1, 1))
		slowDone <- err
	}()
	waitFor(t, "slow query to occupy the slot", func() bool {
		return srv.inFlight.Load() == 1
	})

	fast := Dial(addr)
	defer func() { _ = fast.Close() }()
	if _, err := fast.Count(geom.R2(0, 0, 1, 1)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second query err = %v, want ErrOverloaded", err)
	}
	if got := srv.rejected.Load(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}

	close(gate)
	if err := <-slowDone; err != nil {
		t.Fatalf("parked query failed after gate opened: %v", err)
	}
	// The rejected client's connection must still work.
	if _, err := fast.Count(geom.R2(0, 0, 1, 1)); err != nil {
		t.Fatalf("retry on same connection: %v", err)
	}
}

// TestServerDeadline delays every disk read past the request deadline
// and checks the server answers StatusDeadline within one node visit.
func TestServerDeadline(t *testing.T) {
	fp := storage.NewFaultyPager(storage.NewMemPager(4096))
	tree, err := strtree.NewOnPager(fp, strtree.Options{Capacity: 16, BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tree.Close() }()
	if err := tree.BulkLoad(uniformItems(500, 42), strtree.PackSTR); err != nil {
		t.Fatal(err)
	}
	if err := tree.DropCaches(); err != nil {
		t.Fatal(err)
	}
	fp.FailReads(func(storage.PageID) error {
		time.Sleep(5 * time.Millisecond)
		return nil
	})

	srv, addr := startServer(t, tree, Config{})
	cl := Dial(addr)
	defer func() { _ = cl.Close() }()
	cl.SetRequestTimeout(time.Millisecond)
	if _, err := cl.Count(geom.R2(0, 0, 1, 1)); !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	waitFor(t, "timeout counter", func() bool { return srv.timedOut.Load() == 1 })
}

// TestServerDrain is the drain-semantics proof: with a query parked on
// faulty storage, Shutdown must refuse new connections and new requests
// while letting the parked query finish and deliver its response.
func TestServerDrain(t *testing.T) {
	gate := make(chan struct{})
	tree := gatedTree(t, gate)
	defer func() { _ = tree.Close() }()
	srv, addr := startServer(t, tree, Config{})

	// An idle connection opened before the drain begins.
	idle := Dial(addr)
	defer func() { _ = idle.Close() }()
	if _, err := idle.Stats(); err != nil {
		t.Fatal(err)
	}

	// Park a query on the storage gate.
	slow := Dial(addr)
	defer func() { _ = slow.Close() }()
	type result struct {
		n   uint64
		err error
	}
	slowDone := make(chan result, 1)
	go func() {
		n, err := slow.Count(geom.R2(0, 0, 1, 1))
		slowDone <- result{n, err}
	}()
	waitFor(t, "slow query to start", func() bool { return srv.inFlight.Load() == 1 })

	// Begin the drain; it must block on the parked query.
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	waitFor(t, "drain to begin", srv.Draining)

	// New connections are refused: the listener is closed.
	waitFor(t, "listener to close", func() bool {
		conn, err := net.DialTimeout("tcp", addr, 100*time.Millisecond)
		if err != nil {
			return true
		}
		// Connection races ahead of the close on some kernels: a request
		// on it must still be refused or the socket dropped.
		_ = conn.Close()
		return false
	})

	// The pre-existing idle connection gets an in-band draining refusal.
	if _, err := idle.Stats(); !errors.Is(err, ErrDraining) {
		t.Fatalf("request during drain: err = %v, want ErrDraining", err)
	}

	// Shutdown is still waiting on the parked query.
	select {
	case err := <-shutdownDone:
		t.Fatalf("shutdown returned %v with a query still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	// Release the storage gate: the parked query completes and its
	// response is delivered before the connection closes.
	close(gate)
	res := <-slowDone
	if res.err != nil {
		t.Fatalf("in-flight query failed during drain: %v", res.err)
	}
	if res.n != 500 {
		t.Fatalf("in-flight query returned %d matches, want 500", res.n)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("clean drain returned %v", err)
	}
}

// TestServerDrainDeadline forces the drain deadline with a query that
// never unparks on its own: Shutdown must cancel it and return ctx's
// error instead of hanging.
func TestServerDrainDeadline(t *testing.T) {
	gate := make(chan struct{})
	fp := storage.NewFaultyPager(storage.NewMemPager(4096))
	tree, err := strtree.NewOnPager(fp, strtree.Options{Capacity: 16, BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tree.Close() }()
	if err := tree.BulkLoad(uniformItems(500, 42), strtree.PackSTR); err != nil {
		t.Fatal(err)
	}
	if err := tree.DropCaches(); err != nil {
		t.Fatal(err)
	}
	// Every read waits on the gate; the query re-parks on each node, so
	// without cancellation the drain would never finish. One release per
	// read lets exactly the in-progress read complete.
	var reads atomic.Int64
	fp.FailReads(func(storage.PageID) error {
		reads.Add(1)
		<-gate
		return nil
	})

	srv, addr := startServer(t, tree, Config{})
	cl := Dial(addr)
	defer func() { _ = cl.Close() }()
	done := make(chan error, 1)
	go func() {
		_, err := cl.Count(geom.R2(0, 0, 1, 1))
		done <- err
	}()
	waitFor(t, "query to park", func() bool { return reads.Load() >= 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err = srv.Shutdown(ctx)
	// Unpark the read so the cancelled traversal can observe its context.
	close(gate)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain err = %v, want DeadlineExceeded", err)
	}
	if err := <-done; err == nil {
		t.Fatal("cancelled in-flight query reported success")
	}
	// The unparked handler may still be unwinding its traversal; wait for
	// it to release its slot before the deferred tree.Close.
	waitFor(t, "handler to unwind", func() bool { return srv.inFlight.Load() == 0 })
}

// TestServerBadRequest sends garbage and checks for an in-band
// bad-request answer followed by connection close.
func TestServerBadRequest(t *testing.T) {
	tree := buildTree(t, 100)
	defer func() { _ = tree.Close() }()
	_, addr := startServer(t, tree, Config{})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if err := wire.WriteFrame(conn, []byte{0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	frame, err := wire.ReadFrame(conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := wire.ParseResponse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusBadRequest {
		t.Fatalf("status = %v, want bad request", resp.Status)
	}
	// The server closes the connection after a protocol violation.
	if _, err := wire.ReadFrame(conn, nil); err == nil {
		t.Fatal("connection stayed open after bad request")
	}
}

// TestSelftest smoke-runs the in-process harness with small parameters.
func TestSelftest(t *testing.T) {
	var out bytes.Buffer
	err := Selftest(&out, SelftestConfig{
		Clients: 4, QueriesPerClient: 25, Size: 2000, Seed: 1,
	})
	if err != nil {
		t.Fatalf("selftest: %v\n%s", err, out.String())
	}
	if !bytes.Contains(out.Bytes(), []byte("qps")) {
		t.Fatalf("report missing throughput:\n%s", out.String())
	}
}
