// Package wire defines strserve's length-prefixed binary protocol: the
// request/response codec internal/server and its client speak over TCP.
//
// Framing: every message is one frame —
//
//	offset 0  uint32  payload length (little endian, <= MaxFrame)
//	offset 4  payload
//
// Request payload:
//
//	offset 0  uint8   protocol version (1)
//	offset 1  uint8   op
//	offset 2  uint32  per-request deadline in milliseconds (0 = server default)
//	offset 6  op-specific body
//
// Response payload:
//
//	offset 0  uint8   protocol version (1)
//	offset 1  uint8   status
//	offset 2  uint8   op echo (selects the body layout)
//	offset 3  body: UTF-8 error string (uint32 length prefix) for non-OK
//	          statuses, the op's result body for StatusOK
//
// Rectangles travel as uint8 dims + 2*dims float64 (min corner then max
// corner), points as uint8 dims + dims float64, both little endian —
// the same encoding/binary conventions as internal/node's page format.
// Parsing is strict: corners must be ordered, floats finite, lengths
// bounded (MaxDims, MaxBatch, MaxFrame), and the payload consumed
// exactly, so a parsed message re-encodes to identical bytes — the
// round-trip property FuzzWireRoundTrip hammers.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"strtree/internal/geom"
)

const (
	// Version is the protocol version; the first payload byte of every
	// message.
	Version uint8 = 1
	// MaxFrame bounds a frame payload; larger frames are rejected before
	// allocation, so a corrupt or hostile length prefix cannot balloon
	// memory.
	MaxFrame = 16 << 20
	// MaxDims bounds rectangle and point dimensionality on the wire.
	MaxDims = 16
	// MaxBatch bounds the queries in one batch request.
	MaxBatch = 1 << 16
	// MaxK bounds a nearest-neighbor request's k.
	MaxK = 1 << 20
)

// Op identifies a request kind.
type Op uint8

// The protocol's operations.
const (
	OpSearch      Op = 1 // window query: all items intersecting a rectangle
	OpSearchPoint Op = 2 // point query: all items containing a point
	OpCount       Op = 3 // window query returning only the match count
	OpNearest     Op = 4 // k nearest neighbors of a point
	OpBatch       Op = 5 // many window queries in one round trip
	OpStats       Op = 6 // server counters and latency digests
	OpInsert      Op = 7 // add one item (rectangle + ID) to the tree
	OpDelete      Op = 8 // remove the item matching rectangle + ID exactly
)

// NumOps is the number of defined operations; ops are 1..NumOps.
const NumOps = 8

// String returns the op's protocol name.
func (o Op) String() string {
	switch o {
	case OpSearch:
		return "search"
	case OpSearchPoint:
		return "searchpoint"
	case OpCount:
		return "count"
	case OpNearest:
		return "nearest"
	case OpBatch:
		return "batch"
	case OpStats:
		return "stats"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// valid reports whether the op is one of the defined operations.
func (o Op) valid() bool { return o >= 1 && o <= NumOps }

// Status is a response's outcome code.
type Status uint8

// Response statuses. Only StatusOK carries a result body; the rest carry
// an error string.
const (
	StatusOK          Status = 0 // request served
	StatusOverloaded  Status = 1 // admission control rejected: in-flight cap hit
	StatusDraining    Status = 2 // server is shutting down, not accepting work
	StatusDeadline    Status = 3 // per-request deadline expired mid-query
	StatusBadRequest  Status = 4 // malformed or out-of-bounds request
	StatusInternal    Status = 5 // query execution failed server-side
	StatusUnavailable Status = 6 // a backend this request needs is down (router)
)

// maxStatus is the highest defined status; parse and encode both reject
// anything above it.
const maxStatus = StatusUnavailable

// String returns the status's protocol name.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusOverloaded:
		return "overloaded"
	case StatusDraining:
		return "draining"
	case StatusDeadline:
		return "deadline exceeded"
	case StatusBadRequest:
		return "bad request"
	case StatusInternal:
		return "internal error"
	case StatusUnavailable:
		return "unavailable"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Codec errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")
	ErrTruncated     = errors.New("wire: truncated message")
	ErrTrailing      = errors.New("wire: trailing bytes after message")
	ErrVersion       = errors.New("wire: unsupported protocol version")
	ErrBadOp         = errors.New("wire: unknown op")
	ErrBadStatus     = errors.New("wire: unknown status")
	ErrBadGeometry   = errors.New("wire: invalid geometry")
	ErrTooLarge      = errors.New("wire: length field exceeds protocol bound")
)

// Request is one decoded client request. Fields beyond Op and
// TimeoutMillis are op-specific: Query for OpSearch/OpCount and the
// mutation ops, Point for OpSearchPoint/OpNearest, K for OpNearest,
// Batch for OpBatch, ID for OpInsert/OpDelete.
type Request struct {
	Op            Op
	TimeoutMillis uint32
	Query         geom.Rect
	Point         geom.Point
	K             uint32
	Batch         []geom.Rect
	// ID is the item identifier for OpInsert/OpDelete; Query carries the
	// item's rectangle for both (exact match required on delete).
	ID uint64
}

// Item is one query match: the indexed rectangle and its object ID.
type Item struct {
	Rect geom.Rect
	ID   uint64
}

// Neighbor is one nearest-neighbor match with its distance.
type Neighbor struct {
	Item Item
	Dist float64
}

// Summary is a latency digest: observation count plus headline moments,
// all durations in nanoseconds.
type Summary struct {
	Count                    uint64
	Mean, P50, P95, P99, Max uint64
}

// Stats is the server's counter snapshot, the OpStats response body.
type Stats struct {
	// Admission and completion counters since server start.
	InFlight  uint64 // requests executing right now
	Accepted  uint64 // requests admitted past the semaphore
	Rejected  uint64 // fast-failed with StatusOverloaded
	TimedOut  uint64 // failed with StatusDeadline
	Failed    uint64 // failed with StatusInternal
	Completed uint64 // finished with StatusOK
	Draining  bool   // server is in its drain phase
	// Buffer-pool counters from the served tree (the paper's metrics).
	LogicalReads uint64
	DiskReads    uint64
	DiskWrites   uint64
	Evictions    uint64
	// Latency digests: all requests, then per-op indexed Op-1.
	Latency Summary
	PerOp   [NumOps]Summary
}

// Response is one decoded server response. Op echoes the request and
// selects which result field is populated; Err carries the error string
// for non-OK statuses.
type Response struct {
	Status    Status
	Op        Op
	Err       string
	Items     []Item // OpSearch, OpSearchPoint
	Count     uint64 // OpCount; tree length after OpInsert/OpDelete
	Neighbors []Neighbor
	Batch     [][]Item // OpBatch; inner slices may be nil for no matches
	Stats     Stats    // OpStats
	// Found reports whether OpDelete removed an item; exact-match misses
	// are StatusOK with Found false, not an error.
	Found bool
}

// ------------------------------------------------------------- framing

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, reusing buf when it is large enough. It
// returns io.EOF only on a clean boundary (no bytes read); a frame cut
// short mid-message surfaces io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

// ------------------------------------------------------- low-level codec

// reader is a bounds-checked cursor over one payload.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) || r.off+n < r.off {
		r.fail(ErrTruncated)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) f64() float64 {
	return math.Float64frombits(r.u64())
}

// finite rejects NaN and infinities: they cannot appear in a valid query
// and break the codec's round-trip comparability.
func (r *reader) finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		r.fail(ErrBadGeometry)
	}
	return v
}

func (r *reader) point() geom.Point {
	dims := int(r.u8())
	if r.err != nil {
		return nil
	}
	if dims < 1 || dims > MaxDims {
		r.fail(ErrBadGeometry)
		return nil
	}
	p := make(geom.Point, dims)
	for i := range p {
		p[i] = r.finite(r.f64())
	}
	if r.err != nil {
		return nil
	}
	return p
}

func (r *reader) rect() geom.Rect {
	dims := int(r.u8())
	if r.err != nil {
		return geom.Rect{}
	}
	if dims < 1 || dims > MaxDims {
		r.fail(ErrBadGeometry)
		return geom.Rect{}
	}
	lo := make(geom.Point, dims)
	hi := make(geom.Point, dims)
	for i := range lo {
		lo[i] = r.finite(r.f64())
	}
	for i := range hi {
		hi[i] = r.finite(r.f64())
	}
	if r.err != nil {
		return geom.Rect{}
	}
	for i := range lo {
		if lo[i] > hi[i] {
			r.fail(ErrBadGeometry)
			return geom.Rect{}
		}
	}
	return geom.Rect{Min: lo, Max: hi}
}

func (r *reader) str() string {
	n := r.u32()
	if n > MaxFrame {
		r.fail(ErrTooLarge)
		return ""
	}
	b := r.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}

// done errors unless the payload was consumed exactly.
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return ErrTrailing
	}
	return nil
}

func appendU32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

func appendU64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

func appendF64(dst []byte, v float64) []byte {
	return appendU64(dst, math.Float64bits(v))
}

func appendPoint(dst []byte, p geom.Point) []byte {
	dst = append(dst, uint8(len(p)))
	for _, v := range p {
		dst = appendF64(dst, v)
	}
	return dst
}

func appendRect(dst []byte, q geom.Rect) []byte {
	dst = append(dst, uint8(len(q.Min)))
	for _, v := range q.Min {
		dst = appendF64(dst, v)
	}
	for _, v := range q.Max {
		dst = appendF64(dst, v)
	}
	return dst
}

func appendStr(dst []byte, s string) []byte {
	dst = appendU32(dst, uint32(len(s)))
	return append(dst, s...)
}

// checkPoint validates a point for encoding, mirroring the parser.
func checkPoint(p geom.Point) error {
	if len(p) < 1 || len(p) > MaxDims {
		return ErrBadGeometry
	}
	for _, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return ErrBadGeometry
		}
	}
	return nil
}

// checkRect validates a rectangle for encoding, mirroring the parser.
func checkRect(q geom.Rect) error {
	if len(q.Min) < 1 || len(q.Min) > MaxDims || len(q.Min) != len(q.Max) {
		return ErrBadGeometry
	}
	for i := range q.Min {
		lo, hi := q.Min[i], q.Max[i]
		if math.IsNaN(lo) || math.IsInf(lo, 0) || math.IsNaN(hi) || math.IsInf(hi, 0) || lo > hi {
			return ErrBadGeometry
		}
	}
	return nil
}

// ------------------------------------------------------------- requests

// AppendRequest encodes req onto dst and returns the extended slice. The
// request is validated as the parser would: geometry finite and ordered,
// lengths within protocol bounds.
func AppendRequest(dst []byte, req *Request) ([]byte, error) {
	if !req.Op.valid() {
		return nil, ErrBadOp
	}
	dst = append(dst, Version, uint8(req.Op))
	dst = appendU32(dst, req.TimeoutMillis)
	switch req.Op {
	case OpSearch, OpCount:
		if err := checkRect(req.Query); err != nil {
			return nil, err
		}
		dst = appendRect(dst, req.Query)
	case OpSearchPoint:
		if err := checkPoint(req.Point); err != nil {
			return nil, err
		}
		dst = appendPoint(dst, req.Point)
	case OpNearest:
		if err := checkPoint(req.Point); err != nil {
			return nil, err
		}
		if req.K < 1 || req.K > MaxK {
			return nil, ErrTooLarge
		}
		dst = appendPoint(dst, req.Point)
		dst = appendU32(dst, req.K)
	case OpBatch:
		if len(req.Batch) > MaxBatch {
			return nil, ErrTooLarge
		}
		dst = appendU32(dst, uint32(len(req.Batch)))
		for _, q := range req.Batch {
			if err := checkRect(q); err != nil {
				return nil, err
			}
			dst = appendRect(dst, q)
		}
	case OpStats:
		// no body
	case OpInsert, OpDelete:
		if err := checkRect(req.Query); err != nil {
			return nil, err
		}
		dst = appendRect(dst, req.Query)
		dst = appendU64(dst, req.ID)
	}
	return dst, nil
}

// ParseRequest decodes one request payload, strictly: unknown versions,
// ops, malformed geometry, out-of-bound lengths and trailing bytes all
// error.
func ParseRequest(payload []byte) (*Request, error) {
	r := &reader{buf: payload}
	if v := r.u8(); r.err == nil && v != Version {
		return nil, ErrVersion
	}
	op := Op(r.u8())
	if r.err == nil && !op.valid() {
		return nil, ErrBadOp
	}
	req := &Request{Op: op, TimeoutMillis: r.u32()}
	switch op {
	case OpSearch, OpCount:
		req.Query = r.rect()
	case OpSearchPoint:
		req.Point = r.point()
	case OpNearest:
		req.Point = r.point()
		req.K = r.u32()
		if r.err == nil && (req.K < 1 || req.K > MaxK) {
			return nil, ErrTooLarge
		}
	case OpBatch:
		n := r.u32()
		if r.err == nil && n > MaxBatch {
			return nil, ErrTooLarge
		}
		if r.err == nil && n > 0 {
			req.Batch = make([]geom.Rect, 0, min(int(n), 1024))
			for i := uint32(0); i < n && r.err == nil; i++ {
				req.Batch = append(req.Batch, r.rect())
			}
		}
	case OpStats:
		// no body
	case OpInsert, OpDelete:
		req.Query = r.rect()
		req.ID = r.u64()
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return req, nil
}

// ------------------------------------------------------------ responses

func appendItems(dst []byte, items []Item) ([]byte, error) {
	dst = appendU32(dst, uint32(len(items)))
	for _, it := range items {
		if err := checkRect(it.Rect); err != nil {
			return nil, err
		}
		dst = appendRect(dst, it.Rect)
		dst = appendU64(dst, it.ID)
	}
	return dst, nil
}

func (r *reader) items() []Item {
	n := r.u32()
	if r.err != nil {
		return nil
	}
	// Bound the pre-allocation, not the count: large result sets arrive
	// in frames already capped by MaxFrame.
	out := make([]Item, 0, min(int(n), 1024))
	for i := uint32(0); i < n && r.err == nil; i++ {
		rect := r.rect()
		id := r.u64()
		if r.err == nil {
			out = append(out, Item{Rect: rect, ID: id})
		}
	}
	return out
}

func appendSummary(dst []byte, s Summary) []byte {
	dst = appendU64(dst, s.Count)
	dst = appendU64(dst, s.Mean)
	dst = appendU64(dst, s.P50)
	dst = appendU64(dst, s.P95)
	dst = appendU64(dst, s.P99)
	return appendU64(dst, s.Max)
}

func (r *reader) summary() Summary {
	return Summary{
		Count: r.u64(),
		Mean:  r.u64(),
		P50:   r.u64(),
		P95:   r.u64(),
		P99:   r.u64(),
		Max:   r.u64(),
	}
}

func appendStats(dst []byte, s *Stats) []byte {
	dst = appendU64(dst, s.InFlight)
	dst = appendU64(dst, s.Accepted)
	dst = appendU64(dst, s.Rejected)
	dst = appendU64(dst, s.TimedOut)
	dst = appendU64(dst, s.Failed)
	dst = appendU64(dst, s.Completed)
	if s.Draining {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = appendU64(dst, s.LogicalReads)
	dst = appendU64(dst, s.DiskReads)
	dst = appendU64(dst, s.DiskWrites)
	dst = appendU64(dst, s.Evictions)
	dst = appendSummary(dst, s.Latency)
	for i := range s.PerOp {
		dst = appendSummary(dst, s.PerOp[i])
	}
	return dst
}

func (r *reader) stats() Stats {
	var s Stats
	s.InFlight = r.u64()
	s.Accepted = r.u64()
	s.Rejected = r.u64()
	s.TimedOut = r.u64()
	s.Failed = r.u64()
	s.Completed = r.u64()
	switch r.u8() {
	case 0:
	case 1:
		s.Draining = true
	default:
		r.fail(ErrTruncated)
	}
	s.LogicalReads = r.u64()
	s.DiskReads = r.u64()
	s.DiskWrites = r.u64()
	s.Evictions = r.u64()
	s.Latency = r.summary()
	for i := range s.PerOp {
		s.PerOp[i] = r.summary()
	}
	return s
}

// AppendResponse encodes resp onto dst and returns the extended slice.
func AppendResponse(dst []byte, resp *Response) ([]byte, error) {
	if !resp.Op.valid() {
		return nil, ErrBadOp
	}
	if resp.Status > maxStatus {
		return nil, ErrBadStatus
	}
	dst = append(dst, Version, uint8(resp.Status), uint8(resp.Op))
	if resp.Status != StatusOK {
		if len(resp.Err) > MaxFrame/2 {
			return nil, ErrTooLarge
		}
		return appendStr(dst, resp.Err), nil
	}
	var err error
	switch resp.Op {
	case OpSearch, OpSearchPoint:
		if dst, err = appendItems(dst, resp.Items); err != nil {
			return nil, err
		}
	case OpCount:
		dst = appendU64(dst, resp.Count)
	case OpNearest:
		dst = appendU32(dst, uint32(len(resp.Neighbors)))
		for _, nb := range resp.Neighbors {
			if err := checkRect(nb.Item.Rect); err != nil {
				return nil, err
			}
			if math.IsNaN(nb.Dist) || math.IsInf(nb.Dist, 0) {
				return nil, ErrBadGeometry
			}
			dst = appendRect(dst, nb.Item.Rect)
			dst = appendU64(dst, nb.Item.ID)
			dst = appendF64(dst, nb.Dist)
		}
	case OpBatch:
		if len(resp.Batch) > MaxBatch {
			return nil, ErrTooLarge
		}
		dst = appendU32(dst, uint32(len(resp.Batch)))
		for _, items := range resp.Batch {
			if dst, err = appendItems(dst, items); err != nil {
				return nil, err
			}
		}
	case OpStats:
		dst = appendStats(dst, &resp.Stats)
	case OpInsert:
		dst = appendU64(dst, resp.Count)
	case OpDelete:
		if resp.Found {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = appendU64(dst, resp.Count)
	}
	return dst, nil
}

// ParseResponse decodes one response payload with the same strictness as
// ParseRequest.
func ParseResponse(payload []byte) (*Response, error) {
	r := &reader{buf: payload}
	if v := r.u8(); r.err == nil && v != Version {
		return nil, ErrVersion
	}
	status := Status(r.u8())
	if r.err == nil && status > maxStatus {
		return nil, ErrBadStatus
	}
	op := Op(r.u8())
	if r.err == nil && !op.valid() {
		return nil, ErrBadOp
	}
	resp := &Response{Status: status, Op: op}
	if r.err == nil && status != StatusOK {
		resp.Err = r.str()
		if err := r.done(); err != nil {
			return nil, err
		}
		return resp, nil
	}
	switch op {
	case OpSearch, OpSearchPoint:
		resp.Items = r.items()
	case OpCount:
		resp.Count = r.u64()
	case OpNearest:
		n := r.u32()
		if r.err == nil {
			out := make([]Neighbor, 0, min(int(n), 1024))
			for i := uint32(0); i < n && r.err == nil; i++ {
				rect := r.rect()
				id := r.u64()
				dist := r.finite(r.f64())
				if r.err == nil {
					out = append(out, Neighbor{Item: Item{Rect: rect, ID: id}, Dist: dist})
				}
			}
			resp.Neighbors = out
		}
	case OpBatch:
		n := r.u32()
		if r.err == nil && n > MaxBatch {
			return nil, ErrTooLarge
		}
		if r.err == nil {
			resp.Batch = make([][]Item, 0, min(int(n), 1024))
			for i := uint32(0); i < n && r.err == nil; i++ {
				resp.Batch = append(resp.Batch, r.items())
			}
		}
	case OpStats:
		resp.Stats = r.stats()
	case OpInsert:
		resp.Count = r.u64()
	case OpDelete:
		switch r.u8() {
		case 0:
		case 1:
			resp.Found = true
		default:
			r.fail(ErrTruncated)
		}
		resp.Count = r.u64()
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return resp, nil
}
