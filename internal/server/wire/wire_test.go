package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"

	"strtree/internal/geom"
)

// sampleRequests covers every op with representative bodies.
func sampleRequests() []*Request {
	return []*Request{
		{Op: OpSearch, TimeoutMillis: 250, Query: geom.R2(0.1, 0.2, 0.3, 0.4)},
		{Op: OpCount, Query: geom.R2(0, 0, 1, 1)},
		{Op: OpSearchPoint, Point: geom.Pt2(0.5, 0.25)},
		{Op: OpNearest, Point: geom.Pt2(0.9, 0.1), K: 7, TimeoutMillis: 1000},
		{Op: OpBatch, Batch: []geom.Rect{geom.R2(0, 0, 0.5, 0.5), geom.R2(0.5, 0.5, 1, 1)}},
		{Op: OpBatch},
		{Op: OpStats},
		{Op: OpInsert, Query: geom.R2(1, 2, 3, 4), ID: 7},
		{Op: OpDelete, Query: geom.R2(1, 2, 3, 4), ID: 1 << 42, TimeoutMillis: 50},
	}
}

// sampleResponses covers every op and every status.
func sampleResponses() []*Response {
	stats := Stats{
		InFlight: 3, Accepted: 100, Rejected: 5, TimedOut: 2, Failed: 1,
		Completed: 92, Draining: true,
		LogicalReads: 12345, DiskReads: 678, DiskWrites: 9, Evictions: 10,
		Latency: Summary{Count: 100, Mean: 1000, P50: 900, P95: 2000, P99: 5000, Max: 9000},
	}
	stats.PerOp[OpSearch-1] = Summary{Count: 50, P99: 1111}
	return []*Response{
		{Op: OpSearch, Items: []Item{{Rect: geom.R2(0, 0, 1, 1), ID: 42}}},
		{Op: OpSearchPoint, Items: nil},
		{Op: OpCount, Count: 12345},
		{Op: OpNearest, Neighbors: []Neighbor{{Item: Item{Rect: geom.R2(0, 0, 0.1, 0.1), ID: 7}, Dist: 0.25}}},
		{Op: OpBatch, Batch: [][]Item{{{Rect: geom.R2(0, 0, 1, 1), ID: 1}}, {}}},
		{Op: OpStats, Stats: stats},
		{Op: OpSearch, Status: StatusOverloaded, Err: "in-flight cap reached"},
		{Op: OpCount, Status: StatusDraining, Err: "server draining"},
		{Op: OpBatch, Status: StatusDeadline, Err: "deadline exceeded"},
		{Op: OpStats, Status: StatusBadRequest, Err: "bad dims"},
		{Op: OpNearest, Status: StatusInternal, Err: "page read failed"},
		{Op: OpInsert, Count: 1001},
		{Op: OpDelete, Found: true, Count: 1000},
		{Op: OpDelete, Found: false, Count: 0},
		{Op: OpInsert, Status: StatusBadRequest, Err: "server is read-only"},
	}
}

// TestRequestRoundTrip: encode -> parse -> encode must be byte-identical,
// and the parsed form must match field-for-field.
func TestRequestRoundTrip(t *testing.T) {
	for _, req := range sampleRequests() {
		enc, err := AppendRequest(nil, req)
		if err != nil {
			t.Fatalf("%v: encode: %v", req.Op, err)
		}
		got, err := ParseRequest(enc)
		if err != nil {
			t.Fatalf("%v: parse: %v", req.Op, err)
		}
		if got.Op != req.Op || got.TimeoutMillis != req.TimeoutMillis || got.K != req.K {
			t.Fatalf("%v: header fields drifted: %+v vs %+v", req.Op, got, req)
		}
		re, err := AppendRequest(nil, got)
		if err != nil {
			t.Fatalf("%v: re-encode: %v", req.Op, err)
		}
		if !bytes.Equal(enc, re) {
			t.Fatalf("%v: re-encode differs:\n%x\n%x", req.Op, enc, re)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	for _, resp := range sampleResponses() {
		enc, err := AppendResponse(nil, resp)
		if err != nil {
			t.Fatalf("%v/%v: encode: %v", resp.Op, resp.Status, err)
		}
		got, err := ParseResponse(enc)
		if err != nil {
			t.Fatalf("%v/%v: parse: %v", resp.Op, resp.Status, err)
		}
		if got.Status != resp.Status || got.Op != resp.Op || got.Err != resp.Err {
			t.Fatalf("%v: header drifted: %+v", resp.Op, got)
		}
		if resp.Op == OpStats && resp.Status == StatusOK && !reflect.DeepEqual(got.Stats, resp.Stats) {
			t.Fatalf("stats drifted:\n%+v\n%+v", got.Stats, resp.Stats)
		}
		re, err := AppendResponse(nil, got)
		if err != nil {
			t.Fatalf("%v: re-encode: %v", resp.Op, err)
		}
		if !bytes.Equal(enc, re) {
			t.Fatalf("%v: re-encode differs:\n%x\n%x", resp.Op, enc, re)
		}
	}
}

// TestParseRequestRejects pins the strict-parse failure modes.
func TestParseRequestRejects(t *testing.T) {
	good, err := AppendRequest(nil, &Request{Op: OpSearch, Query: geom.R2(0, 0, 1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		payload []byte
		want    error
	}{
		{"empty", nil, ErrTruncated},
		{"bad version", append([]byte{99}, good[1:]...), ErrVersion},
		{"bad op", []byte{Version, 0, 0, 0, 0, 0}, ErrBadOp},
		{"op out of range", []byte{Version, 200, 0, 0, 0, 0}, ErrBadOp},
		{"truncated rect", good[:len(good)-3], ErrTruncated},
		{"trailing bytes", append(append([]byte{}, good...), 0xAB), ErrTrailing},
	}
	for _, tc := range cases {
		if _, err := ParseRequest(tc.payload); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	// Inverted rectangle: min > max in axis 1.
	bad := append([]byte{Version, uint8(OpSearch)}, 0, 0, 0, 0)
	bad = append(bad, 2)
	for _, v := range []float64{0, 5, 1, 1} {
		bad = appendF64(bad, v)
	}
	if _, err := ParseRequest(bad); !errors.Is(err, ErrBadGeometry) {
		t.Errorf("inverted rect: err = %v", err)
	}
	// NaN corner.
	nan := append([]byte{Version, uint8(OpSearch)}, 0, 0, 0, 0)
	nan = append(nan, 2)
	for _, v := range []uint64{math.Float64bits(math.NaN()), 0, 0, 0} {
		nan = appendU64(nan, v)
	}
	if _, err := ParseRequest(nan); !errors.Is(err, ErrBadGeometry) {
		t.Errorf("NaN corner: err = %v", err)
	}
	// Nearest with k = 0.
	if _, err := AppendRequest(nil, &Request{Op: OpNearest, Point: geom.Pt2(0, 0), K: 0}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("k=0 encode: err = %v", err)
	}
	// Dims out of range.
	wide := append([]byte{Version, uint8(OpSearchPoint)}, 0, 0, 0, 0)
	wide = append(wide, MaxDims+1)
	if _, err := ParseRequest(wide); !errors.Is(err, ErrBadGeometry) {
		t.Errorf("dims overflow: err = %v", err)
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	if _, err := AppendRequest(nil, &Request{Op: 0}); !errors.Is(err, ErrBadOp) {
		t.Errorf("op 0: %v", err)
	}
	if _, err := AppendRequest(nil, &Request{Op: OpSearch, Query: geom.Rect{Min: geom.Pt2(1, 1), Max: geom.Point{0}}}); !errors.Is(err, ErrBadGeometry) {
		t.Errorf("mismatched dims: %v", err)
	}
	if _, err := AppendResponse(nil, &Response{Op: OpSearch, Status: 99}); !errors.Is(err, ErrBadStatus) {
		t.Errorf("bad status: %v", err)
	}
	big := make([]geom.Rect, MaxBatch+1)
	for i := range big {
		big[i] = geom.R2(0, 0, 1, 1)
	}
	if _, err := AppendRequest(nil, &Request{Op: OpBatch, Batch: big}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized batch: %v", err)
	}
}

// TestFraming pins the length-prefix transport: clean EOF between frames,
// unexpected EOF inside one, size cap enforced before allocation.
func TestFraming(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{1, 2, 3}, {}, bytes.Repeat([]byte{0xCC}, 1000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	var scratch []byte
	for i, want := range payloads {
		got, err := ReadFrame(&buf, scratch)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %x, want %x", i, got, want)
		}
		scratch = got
	}
	if _, err := ReadFrame(&buf, scratch); err != io.EOF {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}

	// Mid-frame truncation.
	var cut bytes.Buffer
	if err := WriteFrame(&cut, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	trunc := cut.Bytes()[:cut.Len()-2]
	if _, err := ReadFrame(bytes.NewReader(trunc), nil); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated frame: %v, want io.ErrUnexpectedEOF", err)
	}

	// Hostile length prefix: rejected before any allocation.
	var huge bytes.Buffer
	huge.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&huge, nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: %v", err)
	}
	if err := WriteFrame(io.Discard, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized write: %v", err)
	}
}

func TestOpAndStatusStrings(t *testing.T) {
	for op := Op(1); op <= NumOps; op++ {
		if s := op.String(); s == "" || s[0] == 'o' && s != "op(0)" && len(s) < 2 {
			t.Errorf("op %d has no name", op)
		}
	}
	if Op(99).String() != "op(99)" {
		t.Errorf("unknown op name: %s", Op(99).String())
	}
	for st := StatusOK; st <= maxStatus; st++ {
		if st.String() == "" || strings.HasPrefix(st.String(), "status(") {
			t.Errorf("status %d has no name", st)
		}
	}
	if Status(99).String() != "status(99)" {
		t.Errorf("unknown status name: %s", Status(99).String())
	}
}

// TestStatusUnavailableRoundTrip pins the router's backend-down status:
// it parses, re-encodes byte-identically, and the next status byte up is
// still rejected as unknown.
func TestStatusUnavailableRoundTrip(t *testing.T) {
	enc, err := AppendResponse(nil, &Response{
		Op: OpSearch, Status: StatusUnavailable, Err: "shard 2 unavailable",
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseResponse(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusUnavailable || got.Err != "shard 2 unavailable" {
		t.Fatalf("round trip = %+v", got)
	}
	re, err := AppendResponse(nil, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, enc) {
		t.Fatalf("re-encode differs:\n in %x\nout %x", enc, re)
	}
	bad := append([]byte(nil), enc...)
	bad[1] = uint8(maxStatus) + 1
	if _, err := ParseResponse(bad); !errors.Is(err, ErrBadStatus) {
		t.Fatalf("status %d accepted: %v", maxStatus+1, err)
	}
}
