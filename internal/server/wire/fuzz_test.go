package wire

import (
	"bytes"
	"testing"

	"strtree/internal/geom"
)

// FuzzWireRoundTrip fuzzes the codec's strict-parse/re-encode contract
// over raw payload bytes: any payload ParseRequest (or ParseResponse)
// accepts must re-encode to the identical byte string and re-parse
// without error — the protocol has exactly one encoding per message.
// Rejected payloads must fail with an error, never a panic or a hang.
// CI runs this target for a 30s smoke on every push (.github/workflows).
func FuzzWireRoundTrip(f *testing.F) {
	// Seed corpus: one well-formed payload per op and status family.
	for _, req := range []*Request{
		{Op: OpSearch, TimeoutMillis: 100, Query: geom.R2(0.1, 0.2, 0.3, 0.4)},
		{Op: OpSearchPoint, Point: geom.Pt2(0.5, 0.5)},
		{Op: OpCount, Query: geom.R2(0, 0, 1, 1)},
		{Op: OpNearest, Point: geom.Pt2(0.25, 0.75), K: 10},
		{Op: OpBatch, Batch: []geom.Rect{geom.R2(0, 0, 0.5, 0.5), geom.R2(0.5, 0.5, 1, 1)}},
		{Op: OpStats},
		{Op: OpInsert, Query: geom.R2(1, 2, 3, 4), ID: 7},
		{Op: OpDelete, Query: geom.R2(1, 2, 3, 4), ID: 9},
	} {
		enc, err := AppendRequest(nil, req)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	for _, resp := range []*Response{
		{Op: OpSearch, Items: []Item{{Rect: geom.R2(0, 0, 1, 1), ID: 42}}},
		{Op: OpCount, Count: 7},
		{Op: OpNearest, Neighbors: []Neighbor{{Item: Item{Rect: geom.R2(0, 0, 0.1, 0.1), ID: 3}, Dist: 1.5}}},
		{Op: OpBatch, Batch: [][]Item{{{Rect: geom.R2(0, 0, 1, 1), ID: 1}}, {}}},
		{Op: OpStats, Stats: Stats{Accepted: 10, Latency: Summary{Count: 10, P99: 500}}},
		{Op: OpSearch, Status: StatusOverloaded, Err: "in-flight cap reached"},
		{Op: OpCount, Status: StatusDeadline, Err: "deadline exceeded"},
		{Op: OpNearest, Status: StatusUnavailable, Err: "shard 1 unavailable"},
		{Op: OpInsert, Count: 101},
		{Op: OpDelete, Found: true, Count: 100},
	} {
		enc, err := AppendResponse(nil, resp)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}

	f.Fuzz(func(t *testing.T, payload []byte) {
		if req, err := ParseRequest(payload); err == nil {
			re, err := AppendRequest(nil, req)
			if err != nil {
				t.Fatalf("parsed request fails to re-encode: %v (%+v)", err, req)
			}
			if !bytes.Equal(re, payload) {
				t.Fatalf("request re-encode differs:\n in %x\nout %x", payload, re)
			}
			if _, err := ParseRequest(re); err != nil {
				t.Fatalf("re-encoded request fails to re-parse: %v", err)
			}
		}
		if resp, err := ParseResponse(payload); err == nil {
			re, err := AppendResponse(nil, resp)
			if err != nil {
				t.Fatalf("parsed response fails to re-encode: %v (%+v)", err, resp)
			}
			if !bytes.Equal(re, payload) {
				t.Fatalf("response re-encode differs:\n in %x\nout %x", payload, re)
			}
			if _, err := ParseResponse(re); err != nil {
				t.Fatalf("re-encoded response fails to re-parse: %v", err)
			}
		}
	})
}
