// Package server is strserve's network query-serving subsystem: a
// stdlib-only TCP server that puts a packed tree behind a socket for many
// independent clients — the regime the paper's LRU-buffer experiments
// simulate (Sections 3–4), where STR packing's fewer disk accesses per
// query pay off across heavy concurrent traffic.
//
// The server is production-shaped rather than a demo:
//
//   - one goroutine per connection, requests on a connection served in
//     order, connections served concurrently;
//   - admission control: a bounded semaphore caps in-flight requests, and
//     a request past the cap fast-fails with StatusOverloaded instead of
//     queueing unboundedly;
//   - per-request deadlines: each request's timeout (its own, else the
//     server default, capped at the server maximum) becomes a context
//     threaded into query execution, which checks it at every node visit;
//   - observability: per-op latency histograms (internal/histo), buffer
//     hit/miss counters and admission counters, all served over OpStats;
//   - graceful drain: Shutdown stops accepting, refuses new requests with
//     StatusDraining, lets in-flight requests finish under a deadline,
//     and only then closes connections.
//
// The wire protocol lives in internal/server/wire; a Go client with
// connection reuse in client.go; an in-process load harness in
// selftest.go.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"strtree"
	"strtree/internal/histo"
	"strtree/internal/obs"
	"strtree/internal/server/wire"
)

// Config tunes a Server. The zero value serves with sane defaults.
type Config struct {
	// MaxInFlight caps concurrently executing requests across all
	// connections — the admission semaphore's size. Requests arriving
	// past the cap are rejected immediately with StatusOverloaded.
	// 0 means 64.
	MaxInFlight int
	// DefaultTimeout applies to requests that carry no deadline of their
	// own. 0 means 5s.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested deadlines so a hostile client
	// cannot park a worker forever. 0 means 60s.
	MaxTimeout time.Duration
	// BatchWorkers is the executor pool size for OpBatch requests;
	// 0 means GOMAXPROCS.
	BatchWorkers int
	// Mutable enables the mutation ops (OpInsert/OpDelete). Mutations
	// take an exclusive tree lock while queries share a read lock, so a
	// mutation waits for running queries and vice versa. When false
	// (default) mutation requests are refused with StatusBadRequest and
	// the tree is never written.
	Mutable bool
	// SlowQueryThreshold enables the slow-query log: a request whose
	// execution takes at least this long gets one Logf line recording its
	// op, duration and result count, and increments the slow-query
	// counter. 0 disables the log.
	SlowQueryThreshold time.Duration
	// SlowLogJSON, when non-nil, additionally writes each slow query as
	// one self-contained JSON object (op, geometry, k, duration, results,
	// status) to this writer — the structured capture `strbench -replay`
	// re-executes. Writes are serialized; the writer need not be
	// concurrency-safe. Requires SlowQueryThreshold > 0 to fire.
	SlowLogJSON io.Writer
	// Logf, when non-nil, receives one line per server-side failure
	// (internal errors, accept errors) and per slow query. nil disables
	// logging.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.BatchWorkers <= 0 {
		c.BatchWorkers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Server serves queries against one opened tree. Create with New, run
// with Serve, stop with Shutdown. All exported methods are safe for
// concurrent use.
type Server struct {
	tree *strtree.Tree
	cfg  Config

	// sem is the admission semaphore: one slot per executing request.
	sem chan struct{}

	// baseCtx parents every request context; cancelled as a last resort
	// when a drain deadline expires with requests still running.
	baseCtx    context.Context
	cancelBase context.CancelFunc

	mu       sync.Mutex
	ln       net.Listener          // guarded by mu
	conns    map[net.Conn]struct{} // guarded by mu
	draining bool                  // guarded by mu

	// treeMu serializes mutations against queries: the tree's contract is
	// one writer OR many readers. Queries hold it shared for the duration
	// of execute; OpInsert/OpDelete hold it exclusively.
	treeMu sync.RWMutex
	// mutApplied counts mutations actually applied to the tree (inserts
	// plus found deletes), for the admin metrics endpoint.
	// guarded by treeMu
	mutApplied uint64

	reqWG  sync.WaitGroup // admitted requests (through response write)
	connWG sync.WaitGroup // connection handler goroutines

	inFlight  atomic.Int64
	accepted  atomic.Uint64
	rejected  atomic.Uint64
	timedOut  atomic.Uint64
	failed    atomic.Uint64
	completed atomic.Uint64
	slow      atomic.Uint64

	// notReady flips the admin /healthz endpoint to 503 ahead of the
	// actual drain (MarkNotReady), so load balancers stop routing before
	// requests start being refused.
	notReady atomic.Bool

	// Per-op breakdowns, indexed by Op-1: requests executed, failures
	// (internal errors), and deadline/cancellation expiries.
	reqOp      [wire.NumOps]atomic.Uint64
	errOp      [wire.NumOps]atomic.Uint64
	deadlineOp [wire.NumOps]atomic.Uint64

	latAll histo.Histogram
	latOp  [wire.NumOps]histo.Histogram

	// reg is the admin endpoint's metrics registry, built once in New;
	// its series sample the atomics above at scrape time.
	reg *obs.Registry

	// slowLog, when non-nil, receives one JSON record per slow query.
	slowLog *slowLogger
}

// New builds a server over an opened tree. The server does not own the
// tree: the caller closes it after Shutdown returns.
func New(tree *strtree.Tree, cfg Config) *Server {
	cfg = cfg.withDefaults()
	//strlint:ignore ctxprop the server owns its lifecycle root context; Shutdown cancels it
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		tree:       tree,
		cfg:        cfg,
		sem:        make(chan struct{}, cfg.MaxInFlight),
		baseCtx:    ctx,
		cancelBase: cancel,
		conns:      map[net.Conn]struct{}{},
	}
	s.reg = s.buildRegistry()
	if cfg.SlowLogJSON != nil {
		s.slowLog = &slowLogger{w: cfg.SlowLogJSON}
	}
	return s
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// ErrAlreadyServing is returned by a second Serve call.
var ErrAlreadyServing = errors.New("server: already serving")

// Serve accepts connections on ln until Shutdown. It blocks, returning
// nil after a drain-initiated stop or the first fatal accept error
// otherwise. The server takes ownership of ln.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.ln != nil {
		s.mu.Unlock()
		return ErrAlreadyServing
	}
	if s.draining {
		s.mu.Unlock()
		_ = ln.Close()
		return nil
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.Draining() {
				return nil
			}
			// Transient accept failures (fd pressure) should not kill
			// the server; anything else is fatal.
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				time.Sleep(10 * time.Millisecond)
				continue
			}
			s.logf("strserve: accept: %v", err)
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			_ = conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

// Addr returns the listener's address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// MarkNotReady flips the admin /healthz endpoint to 503 without starting
// the drain: queries keep being served. Call it a grace period before
// Shutdown so load balancers and orchestrators stop routing new clients
// here while the ones already connected finish normally (strserve's
// -drain-grace does exactly this). Shutdown implies it.
func (s *Server) MarkNotReady() { s.notReady.Store(true) }

// Ready reports whether the admin health endpoint should answer 200:
// neither marked not-ready nor draining.
func (s *Server) Ready() bool { return !s.notReady.Load() && !s.Draining() }

// handleConn serves one connection: frames are read and answered in
// order. Any transport or framing error closes the connection; request-
// level failures are answered in-band and keep the connection alive.
func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
		s.connWG.Done()
	}()
	h := &connHandler{srv: s, io: NewConnIO(conn)}
	h.io.Logf = func(format string, args ...any) {
		s.logf("strserve: "+format, args...)
	}
	var inBuf []byte
	for {
		payload, err := h.io.ReadFrame(inBuf)
		if err != nil {
			// EOF: client went away (or drain closed the socket). Either
			// way the conversation is over; nothing to answer.
			return
		}
		inBuf = payload
		if !h.serveOne(payload) {
			return
		}
	}
}

// connHandler carries one connection's framing through its requests.
type connHandler struct {
	srv *Server
	io  *ConnIO
}

// writeResp writes one response frame, reporting whether the connection
// is still healthy. For admitted requests it runs before the request
// slot is released, so a clean drain never closes a connection with a
// response still unwritten.
func (h *connHandler) writeResp(resp *wire.Response) bool {
	return h.io.WriteResponse(resp)
}

// serveOne parses, admits, executes and answers one request, returning
// whether the connection should stay open.
func (h *connHandler) serveOne(payload []byte) (keep bool) {
	s := h.srv
	req, err := wire.ParseRequest(payload)
	if err != nil {
		// Parse errors get an in-band answer, then the connection drops:
		// after a malformed frame the stream cannot be trusted.
		_ = h.writeResp(&wire.Response{
			Status: wire.StatusBadRequest,
			Op:     wire.OpSearch,
			Err:    err.Error(),
		})
		return false
	}

	release, status := s.admit()
	if status != wire.StatusOK {
		// Draining closes the connection after answering; overload keeps
		// it (the client is expected to back off and retry).
		ok := h.writeResp(&wire.Response{Status: status, Op: req.Op, Err: status.String()})
		return ok &&
			status == wire.StatusOverloaded
	}
	// release only after the response frame is written: a draining
	// Shutdown waits on this slot and must not close the connection with
	// the answer still buffered.
	defer release()

	ctx, cancel := context.WithTimeout(s.baseCtx, s.timeoutFor(req))
	defer cancel()

	start := time.Now()
	resp, err := s.execute(ctx, req)
	elapsed := time.Since(start)
	s.latAll.Observe(elapsed)
	s.latOp[req.Op-1].Observe(elapsed)
	s.reqOp[req.Op-1].Add(1)

	switch {
	case err == nil:
		s.completed.Add(1)
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		s.timedOut.Add(1)
		s.deadlineOp[req.Op-1].Add(1)
		resp = &wire.Response{Status: wire.StatusDeadline, Op: req.Op, Err: err.Error()}
	default:
		s.failed.Add(1)
		s.errOp[req.Op-1].Add(1)
		s.logf("strserve: %v request failed: %v", req.Op, err)
		resp = &wire.Response{Status: wire.StatusInternal, Op: req.Op, Err: err.Error()}
	}
	if t := s.cfg.SlowQueryThreshold; t > 0 && elapsed >= t {
		s.slow.Add(1)
		s.logf("strserve: slow query: op=%v dur=%v results=%d status=%v",
			req.Op, elapsed, resultCount(resp), resp.Status)
		if s.slowLog != nil {
			s.slowLog.log(s, slowRecord(req, resp, elapsed))
		}
	}
	return h.writeResp(resp)
}

// resultCount is the slow-query log's result-size figure: matches for
// searches, the count for counts, neighbors for nearest, summed matches
// for batches; error responses report 0.
func resultCount(resp *wire.Response) uint64 {
	switch {
	case resp.Status != wire.StatusOK:
		return 0
	case resp.Op == wire.OpCount:
		return resp.Count
	case resp.Op == wire.OpBatch:
		n := uint64(0)
		for _, items := range resp.Batch {
			n += uint64(len(items))
		}
		return n
	case resp.Op == wire.OpNearest:
		return uint64(len(resp.Neighbors))
	default:
		return uint64(len(resp.Items))
	}
}

// admit applies admission control: a full semaphore fast-fails with
// StatusOverloaded, a draining server with StatusDraining. On StatusOK
// the caller must invoke release exactly once after the response is
// written — the drain path waits on it.
func (s *Server) admit() (release func(), status wire.Status) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, wire.StatusDraining
	}
	select {
	case s.sem <- struct{}{}:
		// reqWG.Add must happen under mu, before Shutdown can flip
		// draining and call reqWG.Wait.
		s.reqWG.Add(1)
		s.mu.Unlock()
		s.inFlight.Add(1)
		s.accepted.Add(1)
		return func() {
			<-s.sem
			s.inFlight.Add(-1)
			s.reqWG.Done()
		}, wire.StatusOK
	default:
		s.mu.Unlock()
		s.rejected.Add(1)
		return nil, wire.StatusOverloaded
	}
}

// timeoutFor resolves a request's deadline: its own if set, else the
// default, never above the maximum.
func (s *Server) timeoutFor(req *wire.Request) time.Duration {
	d := s.cfg.DefaultTimeout
	if req.TimeoutMillis > 0 {
		d = time.Duration(req.TimeoutMillis) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// execute runs one admitted request against the tree. Queries hold the
// tree read lock so a concurrent mutation cannot change pages mid-
// traversal; mutations branch off to executeMutation and its exclusive
// lock.
func (s *Server) execute(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	if req.Op == wire.OpInsert || req.Op == wire.OpDelete {
		return s.executeMutation(req)
	}
	s.treeMu.RLock()
	defer s.treeMu.RUnlock()
	resp := &wire.Response{Status: wire.StatusOK, Op: req.Op}
	switch req.Op {
	case wire.OpSearch:
		var items []wire.Item
		err := s.tree.SearchContext(ctx, req.Query, func(it strtree.Item) bool {
			items = append(items, wire.Item{Rect: it.Rect.Clone(), ID: it.ID})
			return true
		})
		if err != nil {
			return nil, err
		}
		resp.Items = items
	case wire.OpSearchPoint:
		var items []wire.Item
		err := s.tree.SearchPointContext(ctx, req.Point, func(it strtree.Item) bool {
			items = append(items, wire.Item{Rect: it.Rect.Clone(), ID: it.ID})
			return true
		})
		if err != nil {
			return nil, err
		}
		resp.Items = items
	case wire.OpCount:
		n, err := s.tree.CountContext(ctx, req.Query)
		if err != nil {
			return nil, err
		}
		resp.Count = uint64(n)
	case wire.OpNearest:
		items, dists, err := s.tree.NearestKContext(ctx, req.Point, int(req.K))
		if err != nil {
			return nil, err
		}
		resp.Neighbors = make([]wire.Neighbor, len(items))
		for i, it := range items {
			resp.Neighbors[i] = wire.Neighbor{Item: wire.Item{Rect: it.Rect, ID: it.ID}, Dist: dists[i]}
		}
	case wire.OpBatch:
		results, err := s.tree.SearchBatchContext(ctx, req.Batch, s.cfg.BatchWorkers)
		if err != nil {
			return nil, err
		}
		resp.Batch = make([][]wire.Item, len(results))
		for i, items := range results {
			if items == nil {
				continue
			}
			out := make([]wire.Item, len(items))
			for j, it := range items {
				out[j] = wire.Item{Rect: it.Rect, ID: it.ID}
			}
			resp.Batch[i] = out
		}
	case wire.OpStats:
		resp.Stats = s.Stats()
	}
	return resp, nil
}

// executeMutation applies one OpInsert/OpDelete under the exclusive tree
// lock. Mutations are not cancellable mid-flight (the write path has no
// context variant; a single op is micro-seconds of work), so the request
// deadline only bounds the wait for the lock indirectly via the client.
// A dimensionality mismatch is the client's fault and answered in-band;
// storage failures surface as StatusInternal through the error return.
func (s *Server) executeMutation(req *wire.Request) (*wire.Response, error) {
	if !s.cfg.Mutable {
		return &wire.Response{
			Status: wire.StatusBadRequest,
			Op:     req.Op,
			Err:    "server is read-only: restart with mutations enabled to accept " + req.Op.String(),
		}, nil
	}
	if len(req.Query.Min) != s.tree.Dims() {
		return &wire.Response{
			Status: wire.StatusBadRequest,
			Op:     req.Op,
			Err:    fmt.Sprintf("rectangle has %d dims, tree has %d", len(req.Query.Min), s.tree.Dims()),
		}, nil
	}
	resp := &wire.Response{Status: wire.StatusOK, Op: req.Op}
	s.treeMu.Lock()
	defer s.treeMu.Unlock()
	switch req.Op {
	case wire.OpInsert:
		if err := s.tree.Insert(req.Query, req.ID); err != nil {
			return nil, err
		}
		s.mutApplied++
	case wire.OpDelete:
		found, err := s.tree.Delete(req.Query, req.ID)
		if err != nil {
			return nil, err
		}
		resp.Found = found
		if found {
			s.mutApplied++
		}
	}
	resp.Count = uint64(s.tree.Len())
	return resp, nil
}

// MutationsApplied returns the number of mutations applied to the tree
// since the server started (inserts plus found deletes).
func (s *Server) MutationsApplied() uint64 {
	s.treeMu.RLock()
	defer s.treeMu.RUnlock()
	return s.mutApplied
}

// Stats snapshots the server's counters, gauges and latency digests plus
// the served tree's buffer counters.
func (s *Server) Stats() wire.Stats {
	ts := s.tree.Stats()
	st := wire.Stats{
		InFlight:     uint64(s.inFlight.Load()),
		Accepted:     s.accepted.Load(),
		Rejected:     s.rejected.Load(),
		TimedOut:     s.timedOut.Load(),
		Failed:       s.failed.Load(),
		Completed:    s.completed.Load(),
		Draining:     s.Draining(),
		LogicalReads: uint64(ts.LogicalReads),
		DiskReads:    uint64(ts.DiskReads),
		DiskWrites:   uint64(ts.DiskWrites),
		Evictions:    uint64(ts.Evictions),
		Latency:      wire.Summary(s.latAll.Summarize()),
	}
	for i := range s.latOp {
		st.PerOp[i] = wire.Summary(s.latOp[i].Summarize())
	}
	return st
}

// Shutdown drains the server: it stops accepting connections, refuses
// new requests with StatusDraining, waits for in-flight requests to
// finish writing their responses, then closes every connection. If ctx
// expires first, outstanding request contexts are cancelled (queries
// unwind at their next node visit) and ctx's error is returned; on a
// clean drain it returns nil. After Shutdown returns nil every handler
// has exited and the tree is safe to Close.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("server: already shut down")
	}
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	s.notReady.Store(true)

	// Stop accepting. Serve's Accept unblocks with an error, sees
	// draining, and returns nil.
	if ln != nil {
		_ = ln.Close()
	}

	// Wait for admitted requests (through their response writes).
	done := make(chan struct{})
	go func() {
		s.reqWG.Wait()
		close(done)
	}()
	var drainErr error
	select {
	case <-done:
	case <-ctx.Done():
		drainErr = ctx.Err()
		// Force outstanding queries to unwind, then give them a moment
		// to observe the cancellation.
		s.cancelBase()
		select {
		case <-done:
		case <-time.After(time.Second):
			s.logf("strserve: drain deadline passed with requests still running")
		}
	}

	// Close every connection: parked readers get EOF and handlers exit.
	s.mu.Lock()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()

	if drainErr == nil {
		s.connWG.Wait()
	} else {
		// A stuck request (e.g. storage that never returns) can pin its
		// handler; bound the wait so a forced shutdown stays bounded.
		handlers := make(chan struct{})
		go func() {
			s.connWG.Wait()
			close(handlers)
		}()
		select {
		case <-handlers:
		case <-time.After(time.Second):
			s.logf("strserve: handlers still running after forced drain")
		}
	}
	s.cancelBase()
	return drainErr
}
