package server

// This file is the admin endpoint: the operational HTTP surface strserve
// exposes next to the query port (-admin). It serves Prometheus metrics,
// a JSON stats snapshot, a drain-aware health check and the stdlib pprof
// profiles. Bind it to loopback (or an otherwise trusted network): pprof
// and /stats expose internals that do not belong on the query-facing
// address.

import (
	"net/http"
	"net/http/pprof"
	"strconv"

	"strtree/internal/obs"
	"strtree/internal/server/wire"
)

// buildRegistry wires the server's, buffer's and batch executor's
// counters into an obs.Registry. Every series is Func-backed: scrapes
// sample the live atomics the serving path already maintains, so
// exposition never adds work to a request and never perturbs the
// counters it reports.
func (s *Server) buildRegistry() *obs.Registry {
	r := obs.NewRegistry()

	// Admission and lifecycle.
	r.GaugeFunc("strserve_inflight_requests", "Requests currently executing.",
		func() float64 { return float64(s.inFlight.Load()) })
	r.CounterFunc("strserve_accepted_total", "Requests admitted past the admission semaphore.", s.accepted.Load)
	r.CounterFunc("strserve_rejected_total", "Requests refused with StatusOverloaded.", s.rejected.Load)
	r.CounterFunc("strserve_completed_total", "Requests answered with StatusOK.", s.completed.Load)
	r.CounterFunc("strserve_timedout_total", "Requests that exceeded their deadline.", s.timedOut.Load)
	r.CounterFunc("strserve_failed_total", "Requests that failed with an internal error.", s.failed.Load)
	r.CounterFunc("strserve_slow_queries_total", "Requests at or above the slow-query threshold.", s.slow.Load)
	r.GaugeFunc("strserve_draining", "1 while the server refuses new work (drain in progress), else 0.",
		func() float64 {
			if s.Draining() {
				return 1
			}
			return 0
		})
	r.GaugeFunc("strserve_ready", "1 while the health endpoint reports ready, else 0.",
		func() float64 {
			if s.Ready() {
				return 1
			}
			return 0
		})

	// Per-op request, error and deadline counters plus latency summaries.
	for i := 0; i < wire.NumOps; i++ {
		op := obs.L("op", wire.Op(i+1).String())
		r.CounterFunc("strserve_requests_total", "Requests executed, by operation.", s.reqOp[i].Load, op)
		r.CounterFunc("strserve_errors_total", "Requests failed with an internal error, by operation.", s.errOp[i].Load, op)
		r.CounterFunc("strserve_deadline_exceeded_total", "Requests cut off by their deadline, by operation.", s.deadlineOp[i].Load, op)
		r.HistogramFunc("strserve_op_latency_seconds", "Request execution latency, by operation.", &s.latOp[i], op)
	}
	r.HistogramFunc("strserve_latency_seconds", "Request execution latency across all operations.", &s.latAll)

	// Per-shard buffer counters. Each closure snapshots all shards and
	// picks its own — O(shards) per series is irrelevant at scrape rates.
	shards := len(s.tree.ShardStats())
	for i := 0; i < shards; i++ {
		i := i
		shard := obs.L("shard", strconv.Itoa(i))
		r.CounterFunc("strserve_buffer_hits_total", "Page requests served from the buffer, by shard.",
			func() uint64 {
				st := s.tree.ShardStats()[i]
				return uint64(st.LogicalReads - st.DiskReads)
			}, shard)
		r.CounterFunc("strserve_buffer_misses_total", "Page requests that went to disk, by shard.",
			func() uint64 { return uint64(s.tree.ShardStats()[i].DiskReads) }, shard)
		r.CounterFunc("strserve_buffer_evictions_total", "Frames evicted, by shard.",
			func() uint64 { return uint64(s.tree.ShardStats()[i].Evictions) }, shard)
		r.GaugeFunc("strserve_buffer_pinned_frames", "Frames pinned right now, by shard.",
			func() float64 { return float64(s.tree.ShardStats()[i].Pinned) }, shard)
	}

	// Zero-copy read path: decode and allocation counters. A growing
	// allocs-to-queries ratio under steady load means the query path
	// regressed from allocation-free operation.
	r.CounterFunc("strserve_read_queries_total", "View-path query traversals started.",
		func() uint64 { return s.tree.ReadPathStats().Queries })
	r.CounterFunc("strserve_view_pages_total", "Pages decoded in place through node views (one per node visit on the read path).",
		func() uint64 { return s.tree.ReadPathStats().ViewPages })
	r.CounterFunc("strserve_traverser_allocs_total", "Traversal-state pool misses, i.e. heap allocations of query state.",
		func() uint64 { return s.tree.ReadPathStats().TraverserAllocs })

	// Batch executor activity (OpBatch requests).
	r.CounterFunc("strserve_batch_batches_total", "Batch requests completed by the executor.",
		func() uint64 { return s.tree.BatchExecStats().BatchesDone })
	r.CounterFunc("strserve_batch_queries_total", "Individual queries completed inside batches.",
		func() uint64 { return s.tree.BatchExecStats().QueriesDone })
	r.GaugeFunc("strserve_batch_queued_queries", "Batch queries admitted but not yet claimed by a worker.",
		func() float64 { return float64(s.tree.BatchExecStats().QueuedQueries) })
	r.GaugeFunc("strserve_batch_active_workers", "Batch workers currently executing a query.",
		func() float64 { return float64(s.tree.BatchExecStats().ActiveWorkers) })

	// Served-tree shape, for dashboards joining load to index size.
	r.GaugeFunc("strserve_tree_items", "Items in the served tree.",
		func() float64 { return float64(s.tree.Len()) })
	r.GaugeFunc("strserve_tree_height", "Levels in the served tree.",
		func() float64 { return float64(s.tree.Height()) })
	r.CounterFunc("strserve_mutations_applied_total",
		"Mutations applied to the served tree (inserts plus found deletes).",
		s.MutationsApplied)
	return r
}

// Registry returns the server's metrics registry, e.g. to register
// process-level series next to the serving ones.
func (s *Server) Registry() *obs.Registry { return s.reg }

// AdminHandler returns the admin HTTP surface:
//
//	/metrics        Prometheus text exposition (0.0.4)
//	/stats          the same series as JSON
//	/healthz        200 "ok" while ready; 503 "draining" once
//	                MarkNotReady or Shutdown has run
//	/debug/pprof/   the stdlib profiles
//
// The handler is safe for concurrent use and stays functional during and
// after a drain — scraping a draining server is exactly when the numbers
// matter.
func (s *Server) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.reg.WritePrometheus(w); err != nil {
			s.logf("strserve: admin: write /metrics: %v", err)
		}
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := s.reg.WriteJSON(w); err != nil {
			s.logf("strserve: admin: write /stats: %v", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !s.Ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			if _, err := w.Write([]byte("draining\n")); err != nil {
				s.logf("strserve: admin: write /healthz: %v", err)
			}
			return
		}
		if _, err := w.Write([]byte("ok\n")); err != nil {
			s.logf("strserve: admin: write /healthz: %v", err)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
