package server

// ConnIO is the server side of one protocol connection: buffered framed
// reads and encoded, flushed response writes with a reusable output
// buffer. It is the piece of the serving loop the fan-out router shares
// — the router speaks the same protocol to its clients, so it frames and
// answers exactly the way a backend does.

import (
	"bufio"
	"net"

	"strtree/internal/server/wire"
)

// ConnIO wraps one accepted connection's framing. Not safe for
// concurrent use: the protocol is strictly request/response per
// connection, so a single goroutine owns it.
type ConnIO struct {
	bw     *bufio.Writer
	br     *bufio.Reader
	outBuf []byte
	// Logf, when non-nil, receives one line per encode failure (a
	// response that cannot be encoded is a server bug worth logging).
	Logf func(format string, args ...any)
}

// NewConnIO wraps an accepted connection.
func NewConnIO(conn net.Conn) *ConnIO {
	return &ConnIO{br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
}

// ReadFrame reads one request frame, reusing buf when it fits.
func (h *ConnIO) ReadFrame(buf []byte) ([]byte, error) {
	return wire.ReadFrame(h.br, buf)
}

// WriteResponse encodes and flushes one response frame, reporting
// whether the connection is still healthy.
func (h *ConnIO) WriteResponse(resp *wire.Response) bool {
	out, err := wire.AppendResponse(h.outBuf[:0], resp)
	if err != nil {
		if h.Logf != nil {
			h.Logf("encode response: %v", err)
		}
		return false
	}
	h.outBuf = out
	if err := wire.WriteFrame(h.bw, out); err != nil {
		return false
	}
	return h.bw.Flush() == nil
}
