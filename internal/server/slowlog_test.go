package server

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"strtree/internal/geom"
	"strtree/internal/server/wire"
)

// lockedBuffer is an io.Writer safe for the server's concurrent
// connection handlers to share with the test's reader.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestSlowLogCapture drives every capturable op through a server whose
// slow threshold is 1ns (everything is slow), then decodes the JSON log
// and round-trips each record back into a wire request — the exact path
// strbench -replay takes.
func TestSlowLogCapture(t *testing.T) {
	tree := buildTree(t, 300)
	defer func() { _ = tree.Close() }()
	var log lockedBuffer
	_, addr := startServer(t, tree, Config{
		SlowQueryThreshold: time.Nanosecond,
		SlowLogJSON:        &log,
	})

	cl := Dial(addr)
	defer func() { _ = cl.Close() }()

	window := geom.R2(0.1, 0.1, 0.4, 0.4)
	items, err := cl.Search(window)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Count(window); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.SearchPoint(geom.Point{0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Nearest(geom.Point{0.5, 0.5}, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Batch([]geom.Rect{window, geom.R2(0.6, 0.6, 0.7, 0.7)}); err != nil {
		t.Fatal(err)
	}

	records, err := ReadSlowLog(strings.NewReader(log.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 5 {
		t.Fatalf("captured %d records, want 5:\n%s", len(records), log.String())
	}

	wantOps := []wire.Op{wire.OpSearch, wire.OpCount, wire.OpSearchPoint, wire.OpNearest, wire.OpBatch}
	for i, rec := range records {
		req, err := rec.Request()
		if err != nil {
			t.Fatalf("record %d (%s): %v", i, rec.Op, err)
		}
		if req.Op != wantOps[i] {
			t.Errorf("record %d: op %v, want %v", i, req.Op, wantOps[i])
		}
		if rec.Status != wire.StatusOK.String() {
			t.Errorf("record %d: status %q", i, rec.Status)
		}
		if rec.DurationNs <= 0 {
			t.Errorf("record %d: duration %d", i, rec.DurationNs)
		}
	}
	if records[0].Results != uint64(len(items)) {
		t.Errorf("search record results = %d, want %d", records[0].Results, len(items))
	}
	// The captured geometry must survive the round trip exactly.
	req0, _ := records[0].Request()
	if !req0.Query.Equal(window) {
		t.Errorf("search rect round-trip: %v, want %v", req0.Query, window)
	}
	req3, _ := records[3].Request()
	if req3.K != 3 || len(req3.Point) != 2 {
		t.Errorf("nearest record: k=%d point=%v", req3.K, req3.Point)
	}
	req4, _ := records[4].Request()
	if len(req4.Batch) != 2 {
		t.Errorf("batch record: %d windows, want 2", len(req4.Batch))
	}
}

// TestSlowLogThresholdFilters proves a generous threshold captures
// nothing: the log stays empty while queries still answer.
func TestSlowLogThresholdFilters(t *testing.T) {
	tree := buildTree(t, 100)
	defer func() { _ = tree.Close() }()
	var log lockedBuffer
	_, addr := startServer(t, tree, Config{
		SlowQueryThreshold: time.Hour,
		SlowLogJSON:        &log,
	})
	cl := Dial(addr)
	defer func() { _ = cl.Close() }()
	if _, err := cl.Count(geom.R2(0, 0, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if got := log.String(); got != "" {
		t.Fatalf("threshold 1h captured: %s", got)
	}
}

func TestSlowQueryRequestErrors(t *testing.T) {
	cases := []SlowQuery{
		{Op: "bogus"},
		{Op: "search"}, // missing rect
		{Op: "count", Rect: &RectJSON{Min: []float64{1, 1}, Max: []float64{0, 0}}}, // inverted
		{Op: "searchpoint"},                     // missing point
		{Op: "nearest", Point: []float64{0, 0}}, // missing k
		{Op: "batch", Batch: []RectJSON{{Min: []float64{1}, Max: []float64{0}}}},
	}
	for i, rec := range cases {
		if _, err := rec.Request(); err == nil {
			t.Errorf("case %d (%s): bad record accepted", i, rec.Op)
		}
	}
	// A stats record is valid and carries no geometry.
	rec := SlowQuery{Op: "stats"}
	req, err := rec.Request()
	if err != nil || req.Op != wire.OpStats {
		t.Errorf("stats record: %v, %v", req, err)
	}
}

func TestReadSlowLogRejectsGarbage(t *testing.T) {
	if _, err := ReadSlowLog(strings.NewReader(`{"op":"count"}` + "\n" + `{garbage`)); err == nil {
		t.Error("garbage line accepted")
	}
	records, err := ReadSlowLog(strings.NewReader(""))
	if err != nil || len(records) != 0 {
		t.Errorf("empty log: %v, %v", records, err)
	}
}

func TestRectJSONRoundTrip(t *testing.T) {
	r := geom.R2(0.25, 0.5, 0.75, 1)
	back, err := FromRect(r).ToRect()
	if err != nil || !back.Equal(r) {
		t.Fatalf("round trip: %v, %v", back, err)
	}
	if _, err := (RectJSON{Min: []float64{0, 0}, Max: []float64{1}}).ToRect(); err == nil {
		t.Error("mismatched corner dims accepted")
	}
}
