package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"strtree/internal/geom"
	"strtree/internal/server/wire"
)

// Client-side errors mapped from response statuses. A transport-level
// failure (dial, read, write) surfaces as-is; these sentinels cover the
// in-band refusals so callers can branch with errors.Is.
var (
	// ErrOverloaded means admission control rejected the request; the
	// connection stays usable — back off and retry.
	ErrOverloaded = errors.New("strserve: server overloaded")
	// ErrDraining means the server is shutting down and took no work.
	ErrDraining = errors.New("strserve: server draining")
	// ErrDeadline means the per-request deadline expired server-side.
	ErrDeadline = errors.New("strserve: deadline exceeded")
	// ErrBadRequest means the server rejected the request as malformed.
	ErrBadRequest = errors.New("strserve: bad request")
	// ErrUnavailable means a backend the request needed is down — the
	// router's in-band answer when a shard has no healthy replica.
	ErrUnavailable = errors.New("strserve: backend unavailable")
)

// Client speaks the wire protocol to one strserve server over a single
// reused TCP connection, redialing transparently after transport
// failures. Methods are safe for concurrent use; requests serialize on
// the connection (the protocol is strictly request/response, so one
// socket carries one request at a time).
type Client struct {
	addr string

	mu   sync.Mutex
	conn net.Conn      // guarded by mu
	br   *bufio.Reader // guarded by mu
	// guarded by mu. Per-request deadline sent to the server; 0 = server
	// default.
	timeout time.Duration
	// guarded by mu. Transport-level bounds: dialTimeout caps connection
	// establishment, ioTimeout caps one request's socket reads and writes
	// (a deadline set at the start of each round trip). 0 disables either.
	// The router sets both so a hung backend costs bounded time instead of
	// parking a scatter goroutine forever.
	dialTimeout time.Duration
	ioTimeout   time.Duration
	inBuf       []byte // guarded by mu
	outBuf      []byte // guarded by mu
}

// Dial creates a client for the server at addr. The connection is
// established lazily on first use and reused across requests.
func Dial(addr string) *Client {
	return &Client{addr: addr}
}

// SetRequestTimeout sets the per-request deadline sent with subsequent
// requests; zero restores the server's default.
func (c *Client) SetRequestTimeout(d time.Duration) {
	c.mu.Lock()
	c.timeout = d
	c.mu.Unlock()
}

// SetTransportTimeouts bounds the client's socket operations: dial caps
// connection establishment, io caps each round trip's reads and writes.
// Zero disables either bound. These are transport-level guards against a
// peer that stops responding; the in-band request deadline
// (SetRequestTimeout) remains the server-side budget.
func (c *Client) SetTransportTimeouts(dial, io time.Duration) {
	c.mu.Lock()
	c.dialTimeout = dial
	c.ioTimeout = io
	c.mu.Unlock()
}

// Close drops the connection. The client remains usable: the next
// request redials.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropLocked()
}

func (c *Client) dropLocked() error {
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	c.br = nil
	return err
}

func (c *Client) connectLocked() error {
	if c.conn != nil {
		return nil
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.dialTimeout) // 0 = no limit
	if err != nil {
		return err
	}
	c.conn = conn
	c.br = bufio.NewReader(conn)
	return nil
}

// Do sends one request and returns the decoded response, including
// in-band refusals (non-OK statuses) as responses rather than errors —
// the raw exchange the fan-out router forwards. A transport or protocol
// failure returns an error and drops the connection so the next call
// redials; per the protocol, draining and bad-request answers also drop
// it (the server closes its side after those).
func (c *Client) Do(req *wire.Request) (*wire.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.TimeoutMillis == 0 && c.timeout > 0 {
		req.TimeoutMillis = uint32(c.timeout / time.Millisecond)
		if req.TimeoutMillis == 0 {
			req.TimeoutMillis = 1
		}
	}
	payload, err := wire.AppendRequest(c.outBuf[:0], req)
	if err != nil {
		return nil, err
	}
	c.outBuf = payload
	if err := c.connectLocked(); err != nil {
		return nil, err
	}
	if c.ioTimeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.ioTimeout)); err != nil {
			_ = c.dropLocked()
			return nil, err
		}
	}
	if err := wire.WriteFrame(c.conn, payload); err != nil {
		_ = c.dropLocked()
		return nil, err
	}
	frame, err := wire.ReadFrame(c.br, c.inBuf)
	if err != nil {
		_ = c.dropLocked()
		return nil, err
	}
	c.inBuf = frame
	resp, err := wire.ParseResponse(frame)
	if err != nil {
		_ = c.dropLocked()
		return nil, err
	}
	if resp.Op != req.Op {
		_ = c.dropLocked()
		return nil, fmt.Errorf("strserve: response op %v for %v request", resp.Op, req.Op)
	}
	if resp.Status == wire.StatusDraining || resp.Status == wire.StatusBadRequest {
		_ = c.dropLocked()
	}
	return resp, nil
}

// roundTrip is Do plus the mapping of non-OK statuses to sentinel
// errors — the convenience the typed client methods build on.
func (c *Client) roundTrip(req *wire.Request) (*wire.Response, error) {
	resp, err := c.Do(req)
	if err != nil {
		return nil, err
	}
	if serr := statusErr(resp); serr != nil {
		return nil, serr
	}
	return resp, nil
}

// statusErr maps a non-OK response to its sentinel error.
func statusErr(resp *wire.Response) error {
	switch resp.Status {
	case wire.StatusOK:
		return nil
	case wire.StatusOverloaded:
		return ErrOverloaded
	case wire.StatusDraining:
		return ErrDraining
	case wire.StatusDeadline:
		return ErrDeadline
	case wire.StatusBadRequest:
		return fmt.Errorf("%w: %s", ErrBadRequest, resp.Err)
	case wire.StatusUnavailable:
		return fmt.Errorf("%w: %s", ErrUnavailable, resp.Err)
	default:
		return fmt.Errorf("strserve: server error: %s", resp.Err)
	}
}

// Search returns every indexed item intersecting q.
func (c *Client) Search(q geom.Rect) ([]wire.Item, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpSearch, Query: q})
	if err != nil {
		return nil, err
	}
	return resp.Items, nil
}

// SearchPoint returns every indexed item containing p.
func (c *Client) SearchPoint(p geom.Point) ([]wire.Item, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpSearchPoint, Point: p})
	if err != nil {
		return nil, err
	}
	return resp.Items, nil
}

// Count returns the number of indexed items intersecting q.
func (c *Client) Count(q geom.Rect) (uint64, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpCount, Query: q})
	if err != nil {
		return 0, err
	}
	return resp.Count, nil
}

// Nearest returns the k nearest indexed items to p with distances.
func (c *Client) Nearest(p geom.Point, k int) ([]wire.Neighbor, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpNearest, Point: p, K: uint32(k)})
	if err != nil {
		return nil, err
	}
	return resp.Neighbors, nil
}

// Batch runs many window queries in one round trip, results in input
// order.
func (c *Client) Batch(qs []geom.Rect) ([][]wire.Item, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpBatch, Batch: qs})
	if err != nil {
		return nil, err
	}
	return resp.Batch, nil
}

// Insert adds one item to the served tree and returns the tree's length
// afterwards. The server must be running with mutations enabled.
func (c *Client) Insert(r geom.Rect, id uint64) (uint64, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpInsert, Query: r, ID: id})
	if err != nil {
		return 0, err
	}
	return resp.Count, nil
}

// Delete removes the item matching (r, id) exactly, reporting whether
// one was found and the tree's length afterwards. A miss is not an
// error. The server must be running with mutations enabled.
func (c *Client) Delete(r geom.Rect, id uint64) (found bool, length uint64, err error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpDelete, Query: r, ID: id})
	if err != nil {
		return false, 0, err
	}
	return resp.Found, resp.Count, nil
}

// Stats fetches the server's counter snapshot.
func (c *Client) Stats() (wire.Stats, error) {
	resp, err := c.roundTrip(&wire.Request{Op: wire.OpStats})
	if err != nil {
		return wire.Stats{}, err
	}
	return resp.Stats, nil
}
