package server

// This file is the structured slow-query log: the JSON sibling of the
// plain-text Logf slow-query line. Each request at or over the slow
// threshold emits one self-contained JSON object capturing the query's
// shape (op, geometry, k), outcome (status, result count) and duration —
// enough for `strbench -replay` to re-execute the captured workload
// against an index and measure it, closing the capture-replay loop the
// roadmap asks for.

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"strtree/internal/geom"
	"strtree/internal/server/wire"
)

// RectJSON is a rectangle's JSON wire shape: min and max corners as
// coordinate arrays, any dimensionality.
type RectJSON struct {
	Min []float64 `json:"min"`
	Max []float64 `json:"max"`
}

// ToRect converts back to a geometry rectangle, validating shape.
func (r RectJSON) ToRect() (geom.Rect, error) {
	rect := geom.Rect{Min: geom.Point(r.Min), Max: geom.Point(r.Max)}
	if !rect.Valid() {
		return geom.Rect{}, fmt.Errorf("invalid rect min=%v max=%v", r.Min, r.Max)
	}
	return rect, nil
}

// FromRect converts a geometry rectangle to its JSON shape.
func FromRect(r geom.Rect) RectJSON {
	return RectJSON{Min: append([]float64(nil), r.Min...), Max: append([]float64(nil), r.Max...)}
}

// SlowQuery is one slow-query log record: everything needed to replay
// the request and compare its cost. Geometry fields are op-specific,
// mirroring wire.Request.
type SlowQuery struct {
	Op         string     `json:"op"`                   // wire op name
	Rect       *RectJSON  `json:"rect,omitempty"`       // search, count
	Point      []float64  `json:"point,omitempty"`      // searchpoint, nearest
	K          uint32     `json:"k,omitempty"`          // nearest
	Batch      []RectJSON `json:"batch,omitempty"`      // batch
	DurationNs int64      `json:"duration_ns"`          // server-side execution time
	Results    uint64     `json:"results"`              // resultCount of the response
	Status     string     `json:"status"`               // response status name
	UnixNanos  int64      `json:"unix_nanos,omitempty"` // capture timestamp
}

// slowLogger serializes slow-query records onto one writer. Concurrent
// connection handlers share it, so writes are mutex-guarded and each
// record is a single Write call of one line.
type slowLogger struct {
	mu sync.Mutex
	w  io.Writer // guarded by mu
}

// log encodes and writes one record; encoding or write failures surface
// through the server's Logf (the log is advisory, never fatal).
func (l *slowLogger) log(s *Server, rec *SlowQuery) {
	line, err := json.Marshal(rec)
	if err != nil {
		s.logf("strserve: slowlog: marshal: %v", err)
		return
	}
	line = append(line, '\n')
	l.mu.Lock()
	_, err = l.w.Write(line)
	l.mu.Unlock()
	if err != nil {
		s.logf("strserve: slowlog: write: %v", err)
	}
}

// slowRecord builds the JSON record for one slow request/response pair.
func slowRecord(req *wire.Request, resp *wire.Response, elapsed time.Duration) *SlowQuery {
	rec := &SlowQuery{
		Op:         req.Op.String(),
		DurationNs: int64(elapsed),
		Results:    resultCount(resp),
		Status:     resp.Status.String(),
		UnixNanos:  time.Now().UnixNano(),
	}
	switch req.Op {
	case wire.OpSearch, wire.OpCount:
		r := FromRect(req.Query)
		rec.Rect = &r
	case wire.OpSearchPoint:
		rec.Point = append([]float64(nil), req.Point...)
	case wire.OpNearest:
		rec.Point = append([]float64(nil), req.Point...)
		rec.K = req.K
	case wire.OpBatch:
		rec.Batch = make([]RectJSON, len(req.Batch))
		for i, q := range req.Batch {
			rec.Batch[i] = FromRect(q)
		}
	}
	return rec
}

// ReadSlowLog decodes a structured slow-query log: one JSON object per
// line, blank lines skipped. It is the reader strbench -replay uses.
func ReadSlowLog(r io.Reader) ([]SlowQuery, error) {
	dec := json.NewDecoder(r)
	var out []SlowQuery
	for {
		var rec SlowQuery
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("slowlog record %d: %w", len(out)+1, err)
		}
		out = append(out, rec)
	}
}

// Request converts a captured record back into the wire request it was
// logged from, validating geometry the way the protocol parser would.
func (q *SlowQuery) Request() (*wire.Request, error) {
	req := &wire.Request{}
	switch q.Op {
	case wire.OpSearch.String():
		req.Op = wire.OpSearch
	case wire.OpSearchPoint.String():
		req.Op = wire.OpSearchPoint
	case wire.OpCount.String():
		req.Op = wire.OpCount
	case wire.OpNearest.String():
		req.Op = wire.OpNearest
	case wire.OpBatch.String():
		req.Op = wire.OpBatch
	case wire.OpStats.String():
		req.Op = wire.OpStats
	default:
		return nil, fmt.Errorf("slowlog: unknown op %q", q.Op)
	}
	switch req.Op {
	case wire.OpSearch, wire.OpCount:
		if q.Rect == nil {
			return nil, fmt.Errorf("slowlog: %s record missing rect", q.Op)
		}
		rect, err := q.Rect.ToRect()
		if err != nil {
			return nil, fmt.Errorf("slowlog: %s: %w", q.Op, err)
		}
		req.Query = rect
	case wire.OpSearchPoint, wire.OpNearest:
		if len(q.Point) == 0 {
			return nil, fmt.Errorf("slowlog: %s record missing point", q.Op)
		}
		req.Point = geom.Point(q.Point)
		if req.Op == wire.OpNearest {
			if q.K < 1 {
				return nil, fmt.Errorf("slowlog: nearest record missing k")
			}
			req.K = q.K
		}
	case wire.OpBatch:
		req.Batch = make([]geom.Rect, len(q.Batch))
		for i, rj := range q.Batch {
			rect, err := rj.ToRect()
			if err != nil {
				return nil, fmt.Errorf("slowlog: batch[%d]: %w", i, err)
			}
			req.Batch[i] = rect
		}
	}
	return req, nil
}
