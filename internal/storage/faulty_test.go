package storage

import (
	"errors"
	"testing"
)

var errInjected = errors.New("injected fault")

func TestFaultyPagerPassThrough(t *testing.T) {
	f := NewFaultyPager(NewMemPager(64))
	defer f.Close()
	if f.PageSize() != 64 {
		t.Fatalf("PageSize = %d", f.PageSize())
	}
	id, err := f.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	buf[0] = 0x42
	if err := f.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 64)
	if err := f.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x42 {
		t.Fatal("pass-through corrupted data")
	}
	if f.NumPages() != 1 {
		t.Fatalf("NumPages = %d", f.NumPages())
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestFaultyPagerInjection(t *testing.T) {
	f := NewFaultyPager(NewMemPager(64))
	defer f.Close()
	if _, err := f.Alloc(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)

	f.FailReads(func(id PageID) error { return errInjected })
	if err := f.ReadPage(0, buf); !errors.Is(err, errInjected) {
		t.Fatalf("read fault not injected: %v", err)
	}
	f.FailReads(nil)
	if err := f.ReadPage(0, buf); err != nil {
		t.Fatalf("read fault not disarmed: %v", err)
	}

	f.FailWrites(func(id PageID) error {
		if id == 0 {
			return errInjected
		}
		return nil
	})
	if err := f.WritePage(0, buf); !errors.Is(err, errInjected) {
		t.Fatalf("write fault not injected: %v", err)
	}
	f.FailWrites(nil)

	f.FailAllocs(func() error { return errInjected })
	if _, err := f.Alloc(); !errors.Is(err, errInjected) {
		t.Fatalf("alloc fault not injected: %v", err)
	}
	f.FailAllocs(nil)
	if _, err := f.Alloc(); err != nil {
		t.Fatalf("alloc fault not disarmed: %v", err)
	}
}
