// Package storage provides the raw-disk substrate beneath the R-tree: a
// flat array of fixed-size pages addressed by PageID, with exactly one
// R-tree node stored per page as the paper assumes ("exactly one node fits
// per disk page, and hereafter we use the two terms interchangeably").
//
// The paper implements its buffer manager over a raw disk partition so the
// operating system cannot "false-buffer" evicted pages. We reproduce the
// property that matters for the paper's metric — every page request either
// hits our own buffer pool or is a counted disk access — by routing all
// I/O through a Pager and counting at the buffer layer (package buffer).
// Two Pagers are provided: MemPager for tests and experiments, and
// FilePager for on-disk persistence.
package storage

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// PageID addresses a page within a Pager. Pages are allocated densely
// starting at 0.
type PageID uint32

// NilPage is the sentinel for "no page"; no allocated page ever has it.
const NilPage PageID = 0xFFFFFFFF

// DefaultPageSize mirrors a common filesystem block: 4 KiB holds one
// 100-entry 2-D R-tree node with its header, matching the paper's fan-out.
const DefaultPageSize = 4096

// ErrPageOutOfRange is returned when reading or writing an unallocated page.
var ErrPageOutOfRange = errors.New("storage: page out of range")

// ErrClosed is returned by operations on a closed pager.
var ErrClosed = errors.New("storage: pager closed")

// Pager is a flat, random-access array of equal-size pages. Implementations
// must be safe for concurrent use.
type Pager interface {
	// PageSize returns the fixed size in bytes of every page.
	PageSize() int
	// Alloc reserves a new zeroed page and returns its id.
	Alloc() (PageID, error)
	// ReadPage copies page id into buf, which must be PageSize() long.
	ReadPage(id PageID, buf []byte) error
	// WritePage copies buf, which must be PageSize() long, into page id.
	WritePage(id PageID, buf []byte) error
	// NumPages returns the number of allocated pages.
	NumPages() int
	// Sync flushes any buffered state to stable storage.
	Sync() error
	// Close releases resources. The pager is unusable afterwards.
	Close() error
}

// Stats counts physical page operations at the pager level. The buffer pool
// keeps its own counters; these exist so tests can assert that buffering
// actually suppressed physical I/O.
type Stats struct {
	Reads  int64
	Writes int64
	Allocs int64
}

// counters is the internal atomic form of Stats.
type counters struct {
	reads  atomic.Int64
	writes atomic.Int64
	allocs atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{Reads: c.reads.Load(), Writes: c.writes.Load(), Allocs: c.allocs.Load()}
}

// MemPager is an in-memory Pager. It is the substrate for all experiments:
// the paper's metric is buffer misses, which are counted identically
// whether the page bytes live in RAM or on disk.
type MemPager struct {
	mu       sync.RWMutex
	pageSize int
	pages    [][]byte
	stats    counters
	closed   bool
}

// NewMemPager returns an empty in-memory pager with the given page size.
func NewMemPager(pageSize int) *MemPager {
	if pageSize <= 0 {
		//strlint:ignore panics documented contract: an invalid page size is a programming error, not a runtime condition
		panic(fmt.Sprintf("storage: invalid page size %d", pageSize))
	}
	return &MemPager{pageSize: pageSize}
}

// PageSize implements Pager.
func (m *MemPager) PageSize() int { return m.pageSize }

// Alloc implements Pager.
func (m *MemPager) Alloc() (PageID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return NilPage, ErrClosed
	}
	if len(m.pages) >= int(NilPage) {
		return NilPage, errors.New("storage: page space exhausted")
	}
	m.pages = append(m.pages, make([]byte, m.pageSize))
	m.stats.allocs.Add(1)
	return PageID(len(m.pages) - 1), nil
}

// ReadPage implements Pager.
func (m *MemPager) ReadPage(id PageID, buf []byte) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return ErrClosed
	}
	if err := m.check(id, buf); err != nil {
		return err
	}
	copy(buf, m.pages[id])
	m.stats.reads.Add(1)
	return nil
}

// WritePage implements Pager.
func (m *MemPager) WritePage(id PageID, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if err := m.check(id, buf); err != nil {
		return err
	}
	copy(m.pages[id], buf)
	m.stats.writes.Add(1)
	return nil
}

func (m *MemPager) check(id PageID, buf []byte) error {
	if int(id) >= len(m.pages) {
		return fmt.Errorf("%w: page %d of %d", ErrPageOutOfRange, id, len(m.pages))
	}
	if len(buf) != m.pageSize {
		return fmt.Errorf("storage: buffer size %d != page size %d", len(buf), m.pageSize)
	}
	return nil
}

// NumPages implements Pager.
func (m *MemPager) NumPages() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.pages)
}

// Sync implements Pager; memory is always "stable".
func (m *MemPager) Sync() error { return nil }

// Close implements Pager.
func (m *MemPager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.pages = nil
	return nil
}

// Stats returns a snapshot of the physical I/O counters.
func (m *MemPager) Stats() Stats { return m.stats.snapshot() }

// FilePager stores pages in a regular file, page i at byte offset
// i*PageSize. It gives the index durable persistence (cmd/strload) and a
// faithful stand-in for the paper's raw partition.
type FilePager struct {
	mu       sync.Mutex
	f        *os.File
	pageSize int
	n        int
	stats    Stats
	closed   bool
}

// CreateFilePager creates or truncates the file at path and returns an
// empty pager over it.
func CreateFilePager(path string, pageSize int) (*FilePager, error) {
	if pageSize <= 0 {
		return nil, fmt.Errorf("storage: invalid page size %d", pageSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: create %s: %w", path, err)
	}
	return &FilePager{f: f, pageSize: pageSize}, nil
}

// OpenFilePager opens an existing page file. The file length must be a
// multiple of pageSize.
func OpenFilePager(path string, pageSize int) (*FilePager, error) {
	if pageSize <= 0 {
		return nil, fmt.Errorf("storage: invalid page size %d", pageSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if fi.Size()%int64(pageSize) != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s length %d not a multiple of page size %d", path, fi.Size(), pageSize)
	}
	return &FilePager{f: f, pageSize: pageSize, n: int(fi.Size() / int64(pageSize))}, nil
}

// PageSize implements Pager.
func (p *FilePager) PageSize() int { return p.pageSize }

// Alloc implements Pager.
func (p *FilePager) Alloc() (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return NilPage, ErrClosed
	}
	if p.n >= int(NilPage) {
		return NilPage, errors.New("storage: page space exhausted")
	}
	id := PageID(p.n)
	zero := make([]byte, p.pageSize)
	if _, err := p.f.WriteAt(zero, int64(p.n)*int64(p.pageSize)); err != nil {
		return NilPage, fmt.Errorf("storage: extend: %w", err)
	}
	p.n++
	p.stats.Allocs++
	return id, nil
}

// ReadPage implements Pager.
func (p *FilePager) ReadPage(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if err := p.check(id, buf); err != nil {
		return err
	}
	if _, err := p.f.ReadAt(buf, int64(id)*int64(p.pageSize)); err != nil {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	p.stats.Reads++
	return nil
}

// WritePage implements Pager.
func (p *FilePager) WritePage(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if err := p.check(id, buf); err != nil {
		return err
	}
	if _, err := p.f.WriteAt(buf, int64(id)*int64(p.pageSize)); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	p.stats.Writes++
	return nil
}

func (p *FilePager) check(id PageID, buf []byte) error {
	if int(id) >= p.n {
		return fmt.Errorf("%w: page %d of %d", ErrPageOutOfRange, id, p.n)
	}
	if len(buf) != p.pageSize {
		return fmt.Errorf("storage: buffer size %d != page size %d", len(buf), p.pageSize)
	}
	return nil
}

// NumPages implements Pager.
func (p *FilePager) NumPages() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n
}

// Sync implements Pager.
func (p *FilePager) Sync() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	return p.f.Sync()
}

// Close implements Pager.
func (p *FilePager) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	return p.f.Close()
}

// Stats returns a snapshot of the physical I/O counters.
func (p *FilePager) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}
