package storage

import (
	"bytes"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

// pagerFactories lets every conformance test run against both
// implementations.
func pagerFactories(t *testing.T) map[string]func() Pager {
	t.Helper()
	return map[string]func() Pager{
		"mem": func() Pager { return NewMemPager(128) },
		"file": func() Pager {
			p, err := CreateFilePager(filepath.Join(t.TempDir(), "pages.db"), 128)
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
	}
}

func TestPagerAllocReadWrite(t *testing.T) {
	for name, mk := range pagerFactories(t) {
		t.Run(name, func(t *testing.T) {
			p := mk()
			defer p.Close()
			if p.PageSize() != 128 {
				t.Fatalf("PageSize = %d", p.PageSize())
			}
			id, err := p.Alloc()
			if err != nil {
				t.Fatal(err)
			}
			if id != 0 {
				t.Fatalf("first page id = %d, want 0", id)
			}
			// Fresh page is zeroed.
			buf := make([]byte, 128)
			for i := range buf {
				buf[i] = 0xAA
			}
			if err := p.ReadPage(id, buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, make([]byte, 128)) {
				t.Fatal("fresh page not zeroed")
			}
			// Write and read back.
			for i := range buf {
				buf[i] = byte(i)
			}
			if err := p.WritePage(id, buf); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, 128)
			if err := p.ReadPage(id, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, got) {
				t.Fatal("read back differs from write")
			}
			if p.NumPages() != 1 {
				t.Fatalf("NumPages = %d", p.NumPages())
			}
		})
	}
}

func TestPagerOutOfRange(t *testing.T) {
	for name, mk := range pagerFactories(t) {
		t.Run(name, func(t *testing.T) {
			p := mk()
			defer p.Close()
			buf := make([]byte, 128)
			if err := p.ReadPage(0, buf); !errors.Is(err, ErrPageOutOfRange) {
				t.Fatalf("read unallocated: err = %v", err)
			}
			if err := p.WritePage(5, buf); !errors.Is(err, ErrPageOutOfRange) {
				t.Fatalf("write unallocated: err = %v", err)
			}
		})
	}
}

func TestPagerBufferSizeMismatch(t *testing.T) {
	for name, mk := range pagerFactories(t) {
		t.Run(name, func(t *testing.T) {
			p := mk()
			defer p.Close()
			if _, err := p.Alloc(); err != nil {
				t.Fatal(err)
			}
			if err := p.ReadPage(0, make([]byte, 64)); err == nil {
				t.Fatal("short buffer accepted")
			}
			if err := p.WritePage(0, make([]byte, 256)); err == nil {
				t.Fatal("long buffer accepted")
			}
		})
	}
}

func TestPagerClosed(t *testing.T) {
	for name, mk := range pagerFactories(t) {
		t.Run(name, func(t *testing.T) {
			p := mk()
			if _, err := p.Alloc(); err != nil {
				t.Fatal(err)
			}
			if err := p.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := p.Alloc(); !errors.Is(err, ErrClosed) {
				t.Fatalf("Alloc after close: %v", err)
			}
			if err := p.ReadPage(0, make([]byte, 128)); !errors.Is(err, ErrClosed) {
				t.Fatalf("Read after close: %v", err)
			}
			if err := p.WritePage(0, make([]byte, 128)); !errors.Is(err, ErrClosed) {
				t.Fatalf("Write after close: %v", err)
			}
		})
	}
}

func TestMemPagerStats(t *testing.T) {
	p := NewMemPager(64)
	defer p.Close()
	id, _ := p.Alloc()
	buf := make([]byte, 64)
	for i := 0; i < 3; i++ {
		if err := p.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Reads != 3 || s.Writes != 1 || s.Allocs != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestFilePagerPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "persist.db")
	p, err := CreateFilePager(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 64)
	for i := range want {
		want[i] = byte(i * 3)
	}
	for i := 0; i < 4; i++ {
		if _, err := p.Alloc(); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.WritePage(2, want); err != nil {
		t.Fatal(err)
	}
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	q, err := OpenFilePager(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if q.NumPages() != 4 {
		t.Fatalf("reopened NumPages = %d, want 4", q.NumPages())
	}
	got := make([]byte, 64)
	if err := q.ReadPage(2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("persisted page corrupted")
	}
}

func TestFilePagerStats(t *testing.T) {
	p, err := CreateFilePager(filepath.Join(t.TempDir(), "s.db"), 64)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	id, _ := p.Alloc()
	buf := make([]byte, 64)
	if err := p.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := p.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.Allocs != 1 || s.Writes != 1 || s.Reads != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestOpenFilePagerRejectsBadLength(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.db")
	p, err := CreateFilePager(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc(); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if _, err := OpenFilePager(path, 48); err == nil {
		t.Fatal("misaligned page size accepted")
	}
	if _, err := OpenFilePager(filepath.Join(t.TempDir(), "missing.db"), 64); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestInvalidPageSizeRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMemPager(0) did not panic")
		}
	}()
	if _, err := CreateFilePager(filepath.Join(t.TempDir(), "x"), 0); err == nil {
		t.Fatal("CreateFilePager(0) accepted")
	}
	NewMemPager(0)
}

func TestMemPagerConcurrentAccess(t *testing.T) {
	p := NewMemPager(32)
	defer p.Close()
	const pages = 16
	for i := 0; i < pages; i++ {
		if _, err := p.Alloc(); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, 32)
			for i := 0; i < 200; i++ {
				id := PageID((w + i) % pages)
				for j := range buf {
					buf[j] = byte(w)
				}
				if err := p.WritePage(id, buf); err != nil {
					t.Error(err)
					return
				}
				if err := p.ReadPage(id, buf); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestPropWriteReadRoundTrip(t *testing.T) {
	p := NewMemPager(256)
	defer p.Close()
	id, _ := p.Alloc()
	f := func(data []byte) bool {
		page := make([]byte, 256)
		copy(page, data)
		if err := p.WritePage(id, page); err != nil {
			return false
		}
		got := make([]byte, 256)
		if err := p.ReadPage(id, got); err != nil {
			return false
		}
		return bytes.Equal(page, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
