package storage

import (
	"sync"
)

// FaultyPager wraps a Pager and injects failures on demand. It exists for
// failure-path testing across the repository (buffer eviction write-backs,
// partially built trees, query-time read errors) — the error-handling
// paths a database substrate must keep honest.
type FaultyPager struct {
	inner Pager

	mu sync.Mutex
	// failRead / failWrite / failAlloc return a non-nil error to inject a
	// failure for the given page; nil passes the call through.
	failRead  func(id PageID) error
	failWrite func(id PageID) error
	failAlloc func() error
}

// NewFaultyPager wraps inner with no failures armed.
func NewFaultyPager(inner Pager) *FaultyPager {
	return &FaultyPager{inner: inner}
}

// FailReads arms (or disarms, with nil) the read-failure hook.
func (f *FaultyPager) FailReads(hook func(id PageID) error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failRead = hook
}

// FailWrites arms (or disarms, with nil) the write-failure hook.
func (f *FaultyPager) FailWrites(hook func(id PageID) error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failWrite = hook
}

// FailAllocs arms (or disarms, with nil) the alloc-failure hook.
func (f *FaultyPager) FailAllocs(hook func() error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAlloc = hook
}

// PageSize implements Pager.
func (f *FaultyPager) PageSize() int { return f.inner.PageSize() }

// Alloc implements Pager.
func (f *FaultyPager) Alloc() (PageID, error) {
	f.mu.Lock()
	hook := f.failAlloc
	f.mu.Unlock()
	if hook != nil {
		if err := hook(); err != nil {
			return NilPage, err
		}
	}
	return f.inner.Alloc()
}

// ReadPage implements Pager.
func (f *FaultyPager) ReadPage(id PageID, buf []byte) error {
	f.mu.Lock()
	hook := f.failRead
	f.mu.Unlock()
	if hook != nil {
		if err := hook(id); err != nil {
			return err
		}
	}
	return f.inner.ReadPage(id, buf)
}

// WritePage implements Pager.
func (f *FaultyPager) WritePage(id PageID, buf []byte) error {
	f.mu.Lock()
	hook := f.failWrite
	f.mu.Unlock()
	if hook != nil {
		if err := hook(id); err != nil {
			return err
		}
	}
	return f.inner.WritePage(id, buf)
}

// NumPages implements Pager.
func (f *FaultyPager) NumPages() int { return f.inner.NumPages() }

// Sync implements Pager.
func (f *FaultyPager) Sync() error { return f.inner.Sync() }

// Close implements Pager.
func (f *FaultyPager) Close() error { return f.inner.Close() }
