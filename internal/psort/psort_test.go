package psort

import (
	"math"
	"math/rand"
	"slices"
	"testing"

	"strtree/internal/geom"
	"strtree/internal/node"
)

// refByKeys is the specification: a sequential stable sort by key.
func refByKeys(entries []node.Entry, keys []uint64) {
	idx := make([]int, len(entries))
	for i := range idx {
		idx[i] = i
	}
	slices.SortStableFunc(idx, func(a, b int) int {
		switch {
		case keys[a] < keys[b]:
			return -1
		case keys[a] > keys[b]:
			return 1
		default:
			return 0
		}
	})
	out := make([]node.Entry, len(entries))
	for i, j := range idx {
		out[i] = entries[j]
	}
	copy(entries, out)
}

func randomEntries(n int, keySpace uint64, seed int64) ([]node.Entry, []uint64) {
	rng := rand.New(rand.NewSource(seed))
	entries := make([]node.Entry, n)
	keys := make([]uint64, n)
	for i := range entries {
		x := rng.Float64()
		entries[i] = node.Entry{Rect: geom.R2(x, rng.Float64(), x+0.1, rng.Float64()+1), Ref: uint64(i)}
		keys[i] = rng.Uint64() % keySpace
	}
	return entries, keys
}

func sameEntries(t *testing.T, got, want []node.Entry, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d != %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Ref != want[i].Ref || !got[i].Rect.Equal(want[i].Rect) {
			t.Fatalf("%s: entry %d: got Ref=%d want Ref=%d", label, i, got[i].Ref, want[i].Ref)
		}
	}
}

// TestByKeysMatchesStableSort checks the kernel against the sequential
// stable-sort specification across sizes, key densities (heavy ties
// included) and worker counts — the determinism contract.
func TestByKeysMatchesStableSort(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 100, 1000, seqMin - 1, seqMin, seqMin + 1, 3*seqMin + 17, 50000} {
		for _, keySpace := range []uint64{1, 2, 7, 1 << 20, math.MaxUint64} {
			want, keys := randomEntries(n, keySpace, int64(n)*31+int64(keySpace%97))
			wantKeys := slices.Clone(keys)
			refByKeys(want, wantKeys)
			for _, workers := range []int{1, 2, 3, 4, 8, 16, 61} {
				got, gotKeys := randomEntries(n, keySpace, int64(n)*31+int64(keySpace%97))
				ByKeys(got, gotKeys, workers)
				sameEntries(t, got, want, "n="+itoa(n)+" space="+itoa(int(keySpace%1000))+" w="+itoa(workers))
			}
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestByCenter checks the center ordering itself and that every worker
// count produces the same permutation.
func TestByCenter(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 20000
	base := make([]node.Entry, n)
	for i := range base {
		// Coarse grid so duplicate centers are common.
		x := float64(rng.Intn(64))
		y := rng.Float64()
		base[i] = node.Entry{Rect: geom.R2(x, y, x+2, y+1), Ref: uint64(i)}
	}
	want := slices.Clone(base)
	ByCenter(want, 0, 1)
	for i := 1; i < len(want); i++ {
		a, b := want[i-1].Rect.CenterAxis(0), want[i].Rect.CenterAxis(0)
		if a > b {
			t.Fatalf("not sorted at %d: %v > %v", i, a, b)
		}
		//strlint:ignore floateq exact equality detects the tie runs whose stability is under test
		if a == b && want[i-1].Ref > want[i].Ref {
			t.Fatalf("tie at %d not in original order: %d before %d", i, want[i-1].Ref, want[i].Ref)
		}
	}
	for _, workers := range []int{2, 4, 8, 32} {
		got := slices.Clone(base)
		ByCenter(got, 0, workers)
		sameEntries(t, got, want, "workers="+itoa(workers))
	}
}

// TestFloat64Key checks the order-preserving bit mapping, including the
// signed-zero collapse.
func TestFloat64Key(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e300, -2.5, -1, -math.SmallestNonzeroFloat64,
		0, 1e-300, 1, 2.5, 1e300, math.Inf(1)}
	for i := 1; i < len(vals); i++ {
		if Float64Key(vals[i-1]) >= Float64Key(vals[i]) {
			t.Fatalf("key order broken between %v and %v", vals[i-1], vals[i])
		}
	}
	if Float64Key(math.Copysign(0, -1)) != Float64Key(0) {
		t.Fatalf("-0 and +0 must share a key")
	}
}

// TestByKeysFuncLazyComparator exercises the generic path with a
// struct key and a comparator, as the exact Hilbert order uses it.
func TestByKeysFuncLazyComparator(t *testing.T) {
	type xy struct{ x, y uint64 }
	rng := rand.New(rand.NewSource(4))
	n := 30000
	entries := make([]node.Entry, n)
	keys := make([]xy, n)
	for i := range entries {
		entries[i] = node.Entry{Rect: geom.R2(0, 0, 1, 1), Ref: uint64(i)}
		keys[i] = xy{rng.Uint64() % 16, rng.Uint64() % 16}
	}
	cmp := func(a, b xy) int {
		if a.x != b.x {
			if a.x < b.x {
				return -1
			}
			return 1
		}
		switch {
		case a.y < b.y:
			return -1
		case a.y > b.y:
			return 1
		default:
			return 0
		}
	}
	want := slices.Clone(entries)
	wantKeys := slices.Clone(keys)
	ByKeysFunc(want, wantKeys, cmp, 1)
	for _, workers := range []int{2, 8, 16} {
		got := slices.Clone(entries)
		gotKeys := slices.Clone(keys)
		ByKeysFunc(got, gotKeys, cmp, workers)
		sameEntries(t, got, want, "workers="+itoa(workers))
	}
}

// TestChunksCovers checks the parallel range helper covers [0, n) exactly
// once for awkward worker/size combinations.
func TestChunksCovers(t *testing.T) {
	for _, n := range []int{0, 1, 5, seqMin, seqMin + 3, 100003} {
		for _, workers := range []int{1, 2, 3, 7, 64, 100005} {
			hits := make([]int32, n)
			var mu chan struct{} = make(chan struct{}, 1)
			mu <- struct{}{}
			Chunks(n, workers, func(lo, hi int) {
				<-mu
				for i := lo; i < hi; i++ {
					hits[i]++
				}
				mu <- struct{}{}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d workers=%d: index %d covered %d times", n, workers, i, h)
				}
			}
		}
	}
}

func BenchmarkByCenter(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	entries := make([]node.Entry, 1<<20)
	for i := range entries {
		x, y := rng.Float64(), rng.Float64()
		entries[i] = node.Entry{Rect: geom.R2(x, y, x+0.01, y+0.01), Ref: uint64(i)}
	}
	for _, workers := range []int{1, 4, 8} {
		b.Run("workers="+itoa(workers), func(b *testing.B) {
			work := make([]node.Entry, len(entries))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(work, entries)
				ByCenter(work, 0, workers)
			}
		})
	}
}
